// Package repro reproduces "High-Bandwidth Packet Switching on the Raw
// General-Purpose Architecture" (Gleb A. Chuvpilo, MIT, 2002 / ICPP 2003)
// as a Go library: a cycle-level simulator of the Raw tiled processor, the
// Rotating Crossbar router built on its static networks, the baselines the
// paper compares against, and a benchmark harness that regenerates every
// table and figure of the evaluation. See README.md for a tour, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for paper-vs-measured
// results. The public API lives in internal/core.
package repro
