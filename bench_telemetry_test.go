// Telemetry-plane cost benchmark: the router consults the collector at
// two choke points — one nil guard per cycle in the control hook and one
// per quantum in the crossbar firmware. This benchmark proves the
// disabled plane is free and bounds what arming it costs —
// BENCH_telemetry.json records the numbers against the pre-telemetry
// baseline in BENCH_parallel.json (same benchmark body, same host), and
// scripts/bench_telemetry.sh regenerates the file and enforces the <1%
// disabled-overhead bar.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// BenchmarkTelemetryOverhead measures host ns per simulated router cycle
// under full load, exactly like BenchmarkSimulatorCyclesPerSecond's
// workers=1 leg, in three configurations:
//
//	off     cfg.Metrics == nil: every telemetry hook nil-guarded out
//	on      collector armed (per-quantum sampling + flight recorder)
//	export  snapshot assembly plus all three encoders, per op
//
// "off" is the number BENCH_telemetry.json compares against the recorded
// BENCH_parallel.json workers=1 baseline (<1% is the acceptance bar);
// "on" bounds the armed plane's cost; "export" prices the post-run
// snapshot (it never sits on the simulation's hot path).
func BenchmarkTelemetryOverhead(b *testing.B) {
	bench := func(metrics bool) func(b *testing.B) {
		return func(b *testing.B) {
			rcfg := router.DefaultConfig()
			if metrics {
				rcfg.Metrics = telemetry.New(telemetry.Config{})
			}
			r, err := core.New(core.Options{RouterConfig: &rcfg})
			if err != nil {
				b.Fatal(err)
			}
			gen := core.PermutationTraffic(1024, 1)
			r.RunSaturated(5000, gen) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.RunSaturated(200, gen) // 200 simulated cycles per op
			}
			b.ReportMetric(200, "sim-cycles/op")
		}
	}
	b.Run("off", bench(false))
	b.Run("on", bench(true))

	b.Run("export", func(b *testing.B) {
		rcfg := router.DefaultConfig()
		rcfg.Metrics = telemetry.New(telemetry.Config{})
		r, err := core.New(core.Options{RouterConfig: &rcfg})
		if err != nil {
			b.Fatal(err)
		}
		r.RunSaturated(20_000, core.PermutationTraffic(1024, 1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap := r.Cycle().TelemetrySnapshot()
			for _, format := range telemetry.Formats() {
				if _, err := snap.Encode(format); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
