# Verification tiers (see ROADMAP.md).
#
#   tier1  - build + unit/equivalence tests (the gate every change must pass)
#   tier2  - static analysis + the full suite under the race detector
#            (the parallel engine's data-race hygiene gate)
#   chaos  - the fault-injection chaos harness under the race detector
#            (fixed seed matrix; conservation + bit-for-bit replay)
#   soak   - the 20-seed degrade->restore chaos matrix under the race
#            detector, each seed with a mid-run checkpoint/restore that
#            must continue bit-for-bit identical to the uninterrupted
#            run, plus the fabric chip-loss soak (whole-chip kill ->
#            re-admission with a mid-arc fabric checkpoint)
#   soak-heal - the seeded fabric healing soak: each seed rides a
#            killtrunk -> ARQ -> restoretrunk -> killchip -> restorechip
#            arc on a healed ring, with a mid-heal (trunk dark, ARQ
#            pending) FABCKPT1 checkpoint that must continue
#            byte-identical, zero silent word loss at the end
#   fuzz   - short runs of the interpreter, allocator, fault-schedule,
#            chip-snapshot, topology-spec, and workload-spec fuzz targets
#   bench  - the simulator-speed benchmark at 1 and NumCPU workers
#   bench-telemetry - regenerate BENCH_telemetry.json; fails if the
#            disabled telemetry plane costs >1% vs the pre-telemetry
#            commit (interleaved same-session legs)
#   bench-engine - regenerate BENCH_engine.json; fails if the compiled
#            fast engine is not >=2x the reference interpreter on the
#            1,024-byte-packet steady-state workload (paired ref/fast
#            rounds in one binary)
#   bench-fault - regenerate BENCH_fault.json; fails if arming the
#            fabric healing plane costs an idle (fault-free) run >1%
#            versus healing disabled (interleaved paired legs)
#   bench-traffic - regenerate BENCH_traffic.json; fails if generating
#            one slice of open-loop arrivals (heavy-tailed flows) costs
#            >1% of the reference engine stepping the same cycles, and
#            byte-diffs the checked-in daymini trace artifact against a
#            regeneration from its preset spec
#   serve-smoke - the daemon-mode lifecycle smoke: boot rawrouter -serve
#            as a real process, drive healthz/readyz/metrics over HTTP
#            through a latched degrade + SLO violation, /drain to a
#            checkpoint, and restore it twice to byte-identical
#            continuations; plus the in-process serve suite under -race

GO ?= go
SOAK_SEEDS ?= 20

.PHONY: all tier1 tier2 chaos soak soak-heal fuzz bench bench-telemetry bench-engine bench-fault bench-traffic serve-smoke ci

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/fault
	$(GO) test -race -v -run 'TestWatchdog|TestManualDegrade|TestDegraded|TestDropConservation' ./internal/router

soak:
	SOAK_SEEDS=$(SOAK_SEEDS) $(GO) test -race -v -timeout 60m -run 'TestSoak' ./internal/fault
	SOAK_SEEDS=$(SOAK_SEEDS) $(GO) test -race -v -timeout 60m -run 'TestSoakChipLoss' ./internal/cluster
	$(GO) test -race -run 'TestRestore|TestDegradeRestore|TestAutoRestore|TestRouterSnapshot|TestLineFlap|TestReprobe' ./internal/router

soak-heal:
	SOAK_SEEDS=$(SOAK_SEEDS) $(GO) test -race -v -timeout 60m -run 'TestSoakHeal' ./internal/cluster

fuzz:
	$(GO) test ./internal/raw/asm -fuzz FuzzInterp -fuzztime 30s
	$(GO) test ./internal/rotor -fuzz FuzzAllocate -fuzztime 30s
	$(GO) test ./internal/fault -fuzz FuzzFaultSchedule -fuzztime 30s
	$(GO) test ./internal/raw -fuzz FuzzSnapshotRoundTrip -fuzztime 30s
	$(GO) test ./internal/cluster -fuzz FuzzTopologySpec -fuzztime 30s
	$(GO) test ./internal/traffic -fuzz FuzzWorkloadSpec -fuzztime 30s

bench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatorCyclesPerSecond -benchmem .

bench-telemetry:
	sh scripts/bench_telemetry.sh

bench-engine:
	sh scripts/bench_engine.sh

bench-fault:
	sh scripts/bench_fault.sh

bench-traffic:
	sh scripts/bench_traffic.sh

serve-smoke:
	$(GO) test -race ./internal/serve ./internal/cli
	sh scripts/serve_smoke.sh

ci: tier1 tier2 chaos soak soak-heal bench-telemetry bench-engine bench-fault bench-traffic serve-smoke
