# Verification tiers (see ROADMAP.md).
#
#   tier1  - build + unit/equivalence tests (the gate every change must pass)
#   tier2  - static analysis + the full suite under the race detector
#            (the parallel engine's data-race hygiene gate)
#   chaos  - the fault-injection chaos harness under the race detector
#            (fixed seed matrix; conservation + bit-for-bit replay)
#   fuzz   - short runs of the interpreter, allocator, and fault-schedule
#            fuzz targets
#   bench  - the simulator-speed benchmark at 1 and NumCPU workers

GO ?= go

.PHONY: all tier1 tier2 chaos fuzz bench ci

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/fault
	$(GO) test -race -v -run 'TestWatchdog|TestManualDegrade|TestDegraded|TestDropConservation' ./internal/router

fuzz:
	$(GO) test ./internal/raw/asm -fuzz FuzzInterp -fuzztime 30s
	$(GO) test ./internal/rotor -fuzz FuzzAllocate -fuzztime 30s
	$(GO) test ./internal/fault -fuzz FuzzFaultSchedule -fuzztime 30s

bench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatorCyclesPerSecond -benchmem .

ci: tier1 tier2 chaos
