# Verification tiers (see ROADMAP.md).
#
#   tier1  - build + unit/equivalence tests (the gate every change must pass)
#   tier2  - static analysis + the full suite under the race detector
#            (the parallel engine's data-race hygiene gate)
#   fuzz   - short runs of the interpreter and allocator fuzz targets
#   bench  - the simulator-speed benchmark at 1 and NumCPU workers

GO ?= go

.PHONY: all tier1 tier2 fuzz bench ci

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/raw/asm -fuzz FuzzInterp -fuzztime 30s
	$(GO) test ./internal/rotor -fuzz FuzzAllocate -fuzztime 30s

bench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatorCyclesPerSecond -benchmem .

ci: tier1 tier2
