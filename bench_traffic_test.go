// Traffic-plane cost benchmark: the open-loop arrival front-end runs on
// the host alongside the simulated router, so generating arrivals must
// be effectively free next to stepping the chip. BENCH_traffic.json
// records arrival generation for one 1,024-cycle slice of the
// heavy-tailed flows workload against the reference engine stepping the
// same 1,024 simulated cycles, and scripts/bench_traffic.sh regenerates
// the file and enforces the <1% generation-overhead bar.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// BenchmarkTrafficPlane measures the two sides of the open-loop
// arrival pipeline over the same 1,024 simulated cycles per op:
//
//	gen   one Process.Slice call on the heavy-tailed flows workload
//	      (bounded-Pareto sizes, Zipf destinations) — pure host work,
//	      no simulation
//	step  the reference-engine router stepping 1,024 cycles under
//	      saturated permutation traffic — the cost arrivals ride on
//
// The gate in scripts/bench_traffic.sh scores the paired ratio
// gen/step and requires it under 1%: trace-driven replay may not
// meaningfully slow the simulation it feeds.
func BenchmarkTrafficPlane(b *testing.B) {
	const sliceCycles = 1024

	b.Run("gen", func(b *testing.B) {
		w, err := traffic.Build(traffic.Spec{
			Pattern: "flows", Seed: 42, Rate: 0.8,
			Sizes: []int{64, 576, 1500}, Weights: []float64{7, 4, 1},
			Params: map[string]float64{"zipf": 1.1},
		})
		if err != nil {
			b.Fatal(err)
		}
		proc, err := w.OpenLoop(sliceCycles)
		if err != nil {
			b.Fatal(err)
		}
		var arrivals int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arrivals += len(proc.Slice(int64(i) % 4096))
		}
		b.ReportMetric(sliceCycles, "sim-cycles/op")
		b.ReportMetric(float64(arrivals)/float64(b.N), "arrivals/op")
	})

	b.Run("step", func(b *testing.B) {
		r, err := core.New(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		gen := core.PermutationTraffic(1024, 1)
		r.RunSaturated(5000, gen) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RunSaturated(sliceCycles, gen)
		}
		b.ReportMetric(sliceCycles, "sim-cycles/op")
	})
}
