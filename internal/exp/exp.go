// Package exp is the experiment harness: one entry point per table and
// figure of the paper (and per quantitative claim the design rests on),
// each returning the same rows/series the paper reports. The root-level
// benchmarks, the cmd/ tools, and EXPERIMENTS.md all drive these
// functions, so the numbers in the documentation are regenerable by
// construction.
package exp

import (
	"fmt"

	"repro/internal/click"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/netproc"
	"repro/internal/raw"
	"repro/internal/rotor"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/switchfab"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// PaperFigure71Peak holds the published Figure 7-1 (top) series in Gbps,
// indexed like traffic.Sizes; PaperFigure71Avg the bottom series.
var (
	PaperFigure71Peak = map[int]float64{64: 7.3, 128: 14.4, 256: 20.1, 512: 24.7, 1024: 26.9}
	PaperFigure71Avg  = map[int]float64{64: 5.0, 128: 9.9, 256: 13.8, 512: 16.9, 1024: 18.6}
	// PaperClickGbps is the Click bar of Figure 7-1.
	PaperClickGbps = 0.23
)

// workers is the host-parallelism degree applied to every cycle-level
// router the harness builds; see SetWorkers.
var workers int

// SetWorkers makes every cycle-level router the harness constructs shard
// its chip stepping across n host goroutines (threaded from the
// -workers flags of cmd/reproduce and the root benchmarks). The parallel
// engine is cycle-exact, so every regenerated table is identical at any
// worker count; only wall time changes.
func SetWorkers(n int) { workers = n }

// chipEngine is the chip cycle engine applied to every cycle-level
// router the harness builds; see SetEngine.
var chipEngine raw.Engine

// SetEngine makes every cycle-level router the harness constructs step
// its chip with the given engine (threaded from the -engine flags of
// cmd/reproduce and cmd/fabsim). Like SetWorkers, it cannot change any
// regenerated number — the fast engine is bit-for-bit equivalent — only
// wall time.
func SetEngine(e raw.Engine) { chipEngine = e }

// Quality selects experiment duration.
type Quality int

// Quick runs in benchmark loops; Full is for the recorded results.
const (
	Quick Quality = iota
	Full
)

func cyclesFor(q Quality, quick, full int64) int64 {
	if q == Quick {
		return quick
	}
	return full
}

// Figure71Point is one packet-size point of Figure 7-1.
type Figure71Point struct {
	SizeBytes int
	Gbps      float64
	Mpps      float64
	PaperGbps float64
	CyclesPkt float64
	Ratio     float64 // measured / paper
}

// Figure71 regenerates Figure 7-1: peak (conflict-free permutation) or
// average (uniform destinations) throughput of the cycle-level router
// across the packet-size sweep, plus the Click baseline bar.
func Figure71(q Quality, average bool) ([]Figure71Point, float64, *stats.Table) {
	cycles := cyclesFor(q, 40_000, 150_000)
	// Warm the lookup caches and the pipeline before measuring: the
	// compact-table working set (~1,024 hot level-1 slots under the
	// synthetic address mix) takes tens of thousands of cycles to become
	// resident, exactly as it would on the real chip.
	warm := cyclesFor(q, 80_000, 120_000)
	var pts []Figure71Point
	for i, size := range traffic.Sizes {
		r, err := core.New(core.Options{Workers: workers, ChipEngine: chipEngine})
		if err != nil {
			panic(err)
		}
		var gen core.TrafficGen
		if average {
			gen = core.UniformTraffic(size, uint64(size)+7)
		} else {
			gen = core.PermutationTraffic(size, 1+i%3)
		}
		res := r.RunMeasured(warm, cycles, gen)
		paper := PaperFigure71Peak[size]
		if average {
			paper = PaperFigure71Avg[size]
		}
		pt := Figure71Point{
			SizeBytes: size,
			Gbps:      res.Gbps,
			Mpps:      res.Mpps,
			PaperGbps: paper,
			Ratio:     stats.Ratio(res.Gbps, paper),
		}
		if res.Packets > 0 {
			pt.CyclesPkt = float64(res.Cycles) * 4 / float64(res.Packets)
		}
		pts = append(pts, pt)
	}
	clickGbps, _ := click.MLFFR(router.CanonicalTable(), 4, 64, int(cyclesFor(q, 5_000, 50_000)))

	kind := "Peak"
	if average {
		kind = "Average"
	}
	tb := &stats.Table{
		Caption: fmt.Sprintf("Figure 7-1 (%s throughput vs packet size, 250 MHz; Click baseline %.2f Gbps, paper 0.23)", kind, clickGbps),
		Headers: []string{"size(B)", "Gbps", "paper", "ratio", "Mpps", "cyc/pkt"},
	}
	for _, p := range pts {
		tb.AddRow(p.SizeBytes, p.Gbps, p.PaperGbps, p.Ratio, p.Mpps, p.CyclesPkt)
	}
	return pts, clickGbps, tb
}

// Figure73 regenerates the per-tile utilization strips of Figure 7-3 for
// 64-byte and 1,024-byte packets: the ASCII strip charts plus per-tile
// run/gray fractions over an 800-cycle window.
func Figure73(q Quality) (small, large *trace.Recorder, render string) {
	run := func(size int) *trace.Recorder {
		warm := cyclesFor(q, 30_000, 60_000)
		rec := trace.NewRecorder(16, warm, warm+800)
		cfg := router.DefaultConfig()
		cfg.Tracer = rec
		cfg.Workers = workers
		cfg.Engine = chipEngine
		r, err := router.New(cfg)
		if err != nil {
			panic(err)
		}
		rng := traffic.NewRNG(uint64(size))
		id := uint16(0)
		for c := int64(0); c < warm+1200; c += 200 {
			for p := 0; p < 4; p++ {
				for r.InputBacklogWords(p) < 4096 {
					id++
					pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
						traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
					r.OfferPacket(p, &pkt)
				}
			}
			r.Run(200)
		}
		return rec
	}
	small = run(64)
	large = run(1024)
	order := make([]int, 16)
	for i := range order {
		order[i] = i
	}
	render = "Figure 7-3 (top): 64-byte packets, 800 cycles\n" +
		small.ASCII(order, 8) +
		"\nFigure 7-3 (bottom): 1,024-byte packets, 800 cycles\n" +
		large.ASCII(order, 8)
	return small, large, render
}

// ConfigSpaceResult is the §6.1/§6.2 arithmetic (experiment E5).
type ConfigSpaceResult struct {
	Space          int     // 5^4 x 4 = 2,500
	WordsPerConfig float64 // 8192 / 2500 ≈ 3.3
	Minimized      int     // paper: 32; this reconstruction: 27
	Reduction      float64 // paper: 78x
	XbarProgWords  int     // generated switch program size
	SwMemWords     int     // 8,192 budget
}

// ConfigSpace regenerates the configuration-space minimization numbers.
func ConfigSpace() ConfigSpaceResult {
	ci := rotor.NewConfigIndex(4)
	xp, err := router.GenXbarProgram(0, ci)
	if err != nil {
		panic(err)
	}
	return ConfigSpaceResult{
		Space:          rotor.SpaceSize(4),
		WordsPerConfig: rotor.UnminimizedIMemNeed(4, raw.IMemWords),
		Minimized:      ci.Len(),
		Reduction:      float64(rotor.SpaceSize(4)) / float64(ci.Len()),
		XbarProgWords:  len(xp.Prog),
		SwMemWords:     raw.SwMemWords,
	}
}

// ConfigSpaceTable renders ConfigSpace as a table.
func ConfigSpaceTable() *stats.Table {
	r := ConfigSpace()
	tb := &stats.Table{
		Caption: "§6.1/§6.2 configuration space (paper: 2,500 -> 32 entries, 78x)",
		Headers: []string{"quantity", "value"},
	}
	tb.AddRow("global configurations (5^4 x 4)", r.Space)
	tb.AddRow("imem words per unminimized config", r.WordsPerConfig)
	tb.AddRow("minimized per-tile configs", r.Minimized)
	tb.AddRow("reduction", fmt.Sprintf("%.0fx", r.Reduction))
	tb.AddRow("generated crossbar switch program (words)", r.XbarProgWords)
	tb.AddRow("switch memory budget (words)", r.SwMemWords)
	return tb
}

// SecondNetworkAblation regenerates §5.3: goodput with one vs two static
// networks under uniform saturation (fabric engine).
func SecondNetworkAblation(q Quality) (one, two float64, tb *stats.Table) {
	cycles := cyclesFor(q, 300_000, 2_000_000)
	run := func(second bool) float64 {
		r, err := core.New(core.Options{Engine: core.EngineFabric, SecondNetwork: second})
		if err != nil {
			panic(err)
		}
		return r.RunSaturated(cycles, core.UniformTraffic(1024, 5)).Gbps
	}
	one, two = run(false), run(true)
	tb = &stats.Table{
		Caption: "§5.3 second static network ablation (paper: no improvement)",
		Headers: []string{"networks", "Gbps", "delta"},
	}
	tb.AddRow(1, one, "-")
	tb.AddRow(2, two, fmt.Sprintf("%+.2f%%", 100*(two-one)/one))
	return one, two, tb
}

// FairnessResult is the §5.4 study: per-input grant shares under an
// adversarial single-output flood.
func Fairness(q Quality) ([]float64, *stats.Table) {
	quanta := int(cyclesFor(q, 20_000, 100_000))
	fcfg := rotor.DefaultFabricConfig()
	f := rotor.NewFabric(fcfg)
	for i := 0; i < quanta; i++ {
		for p := 0; p < 4; p++ {
			if f.QueueLen(p) < 4 {
				f.Offer(p, 0, 64)
			}
		}
		f.StepQuantum()
	}
	var shares []float64
	tb := &stats.Table{
		Caption: "§5.4 fairness under all-to-one flood (paper: token prevents starvation)",
		Headers: []string{"input", "grants", "share"},
	}
	var total int64
	for p := 0; p < 4; p++ {
		total += f.GrantsPerInput[p]
	}
	for p := 0; p < 4; p++ {
		share := float64(f.GrantsPerInput[p]) / float64(total)
		shares = append(shares, share)
		tb.AddRow(p, f.GrantsPerInput[p], share)
	}
	return shares, tb
}

// HOLvsVOQ regenerates the §2.2.2 background claims: FIFO input queueing
// saturates near 2-sqrt(2) ≈ 0.586 while VOQ+iSLIP reaches ~1.0.
func HOLvsVOQ(q Quality) (fifo, voq, oq float64, tb *stats.Table) {
	slots := cyclesFor(q, 20_000, 200_000)
	rng := traffic.NewRNG(1)
	fifo = switchfab.SaturationThroughput(switchfab.NewFIFOSwitch(16, 64), rng.Fork(1), 2000, slots)
	voq = switchfab.SaturationThroughput(switchfab.NewVOQSwitch(16, 64, 3), rng.Fork(2), 2000, slots)
	oq = switchfab.SaturationThroughput(switchfab.NewOQSwitch(16), rng.Fork(3), 2000, slots)
	tb = &stats.Table{
		Caption: "§2.2.2 head-of-line blocking vs virtual output queueing (16 ports, uniform saturation)",
		Headers: []string{"switch", "throughput", "paper"},
	}
	tb.AddRow("FIFO input-queued", fifo, "≈0.586")
	tb.AddRow("VOQ + iSLIP(3)", voq, "≈1.0")
	tb.AddRow("ideal output-queued", oq, "1.0")
	return fifo, voq, oq, tb
}

// CellsVsVariable regenerates the §2.2.2 fixed-cell claim: variable-length
// scheduling limits throughput to ≈60 %.
func CellsVsVariable(q Quality) (cells, varlen float64, tb *stats.Table) {
	slots := cyclesFor(q, 20_000, 200_000)
	rng := traffic.NewRNG(2)
	cells = switchfab.SaturationThroughput(switchfab.NewVOQSwitch(16, 64, 3), rng.Fork(1), 2000, slots)
	varlen = switchfab.VarLenSaturation(switchfab.NewVarLenSwitch(16, 64), rng.Fork(2), []int{1, 4, 16}, 2000, slots)
	tb = &stats.Table{
		Caption: "§2.2.2 fixed cells vs variable-length packets (paper: ~100% vs ~60%)",
		Headers: []string{"mode", "throughput"},
	}
	tb.AddRow("fixed cells (VOQ+iSLIP)", cells)
	tb.AddRow("variable-length packets", varlen)
	return cells, varlen, tb
}

// QoS regenerates the §8.7 weighted-token study: grant shares of a
// contended output under weights {3,1,1,1}.
func QoS(q Quality) ([]float64, *stats.Table) {
	quanta := int(cyclesFor(q, 10_000, 60_000))
	fcfg := rotor.DefaultFabricConfig()
	fcfg.Weights = []int{3, 1, 1, 1}
	f := rotor.NewFabric(fcfg)
	for i := 0; i < quanta; i++ {
		for p := 0; p < 4; p++ {
			if f.QueueLen(p) < 4 {
				f.Offer(p, 2, 64)
			}
		}
		f.StepQuantum()
	}
	var total int64
	for p := 0; p < 4; p++ {
		total += f.GrantsPerInput[p]
	}
	var shares []float64
	tb := &stats.Table{
		Caption: "§8.7 weighted-token QoS, all inputs flooding output 2 (weights 3,1,1,1)",
		Headers: []string{"input", "weight", "share"},
	}
	for p := 0; p < 4; p++ {
		share := float64(f.GrantsPerInput[p]) / float64(total)
		shares = append(shares, share)
		tb.AddRow(p, fcfg.Weights[p], share)
	}
	return shares, tb
}

// Multicast regenerates the §8.6 study: goodput amplification from
// fanout-splitting vs sending unicast copies.
func Multicast(q Quality) (copies, fanout float64, tb *stats.Table) {
	quanta := int(cyclesFor(q, 10_000, 60_000))
	// Workload: every quantum, input 0 wants {1,2,3}.
	// Fanout-splitting: one arc serves all three members per quantum.
	served := 0
	for i := 0; i < quanta; i++ {
		a := rotor.AllocateMcast([]rotor.McastReq{rotor.McastTo(1, 2, 3), 0, 0, 0}, i%4)
		served += a.Granted[0].Count()
	}
	fanout = float64(served) / float64(quanta)
	// Unicast copies: the ingress sends three separate packets; one
	// transfer per quantum at best.
	f := rotor.NewFabric(rotor.DefaultFabricConfig())
	dst := 1
	for i := 0; i < quanta; i++ {
		for f.QueueLen(0) < 4 {
			f.Offer(0, 1+dst%3, 64)
			dst++
		}
		f.StepQuantum()
	}
	copies = float64(f.TotalPkts()) / float64(f.Quanta)
	tb = &stats.Table{
		Caption: "§8.6 multicast: egress deliveries per quantum, fanout-splitting vs unicast copies",
		Headers: []string{"mode", "deliveries/quantum"},
	}
	tb.AddRow("unicast copies", copies)
	tb.AddRow("fanout-splitting", fanout)
	return copies, fanout, tb
}

// Scale8 regenerates the §8.5 scaling study on the fabric engine: goodput
// and grant ratio for 4- and 8-port rings under uniform saturation.
func Scale8(q Quality) *stats.Table {
	cycles := cyclesFor(q, 300_000, 2_000_000)
	tb := &stats.Table{
		Caption: "§8.5 scaling: Rotating Crossbar rings under uniform saturation (fabric engine)",
		Headers: []string{"ports", "Gbps", "Gbps/port", "grant ratio"},
	}
	for _, n := range []int{4, 8, 16} {
		r, err := core.New(core.Options{Engine: core.EngineFabric, Ports: n})
		if err != nil {
			panic(err)
		}
		rng := traffic.NewRNG(uint64(n))
		res := r.RunSaturated(cycles, func(port int) core.Packet {
			return core.Packet{Dst: rng.Intn(n), SizeBytes: 1024}
		})
		f := r.Fabric()
		var grants, offered int64
		for p := 0; p < n; p++ {
			grants += f.GrantsPerInput[p]
			offered += f.GrantsPerInput[p] + f.BlockedPerInput[p]
		}
		tb.AddRow(n, res.Gbps, res.Gbps/float64(n), stats.Ratio(float64(grants), float64(offered)))
	}
	return tb
}

// Headline checks the §7.2 headline: ≈3.3 Mpps and ≈26.9 Gbps at 1,024
// bytes peak.
func Headline(q Quality) (mpps, gbps float64) {
	r, err := core.New(core.Options{Workers: workers, ChipEngine: chipEngine})
	if err != nil {
		panic(err)
	}
	res := r.RunMeasured(cyclesFor(q, 40_000, 80_000), cyclesFor(q, 60_000, 200_000),
		core.PermutationTraffic(1024, 1))
	return res.Mpps, res.Gbps
}

// LookupCost measures the route-lookup substrate: probes per lookup for
// Patricia vs the compact table on a realistic prefix mix (§8.2).
func LookupCost(routes int) *stats.Table {
	var t lookup.Patricia
	rng := traffic.NewRNG(99)
	_ = t.Insert(0, 0, 0)
	for i := 0; i < routes; i++ {
		plen := 8 + rng.Intn(17)
		_ = t.Insert(uint32(rng.Uint64()), plen, lookup.NextHop(rng.Intn(4)))
	}
	c := lookup.NewCompactTable(&t)
	var pProbes, cProbes int64
	const lookups = 20000
	for i := 0; i < lookups; i++ {
		addr := uint32(rng.Uint64())
		_, pp := t.Lookup(addr)
		_, cp := c.Lookup(addr)
		pProbes += int64(pp)
		cProbes += int64(cp)
	}
	tb := &stats.Table{
		Caption: fmt.Sprintf("§8.2 lookup structures, %d routes, %d random lookups", routes, lookups),
		Headers: []string{"structure", "mean probes", "memory (words)"},
	}
	tb.AddRow("patricia trie", float64(pProbes)/lookups, "-")
	tb.AddRow("compact 2-level", float64(cProbes)/lookups, c.MemoryWords())
	return tb
}

// DelayVsLoad sweeps offered load on the Rotating Crossbar fabric and
// reports mean and tail packet latency — the classic queueing curve that
// complements the paper's saturation-only measurements (input- and
// output-blocking "increase the delay of individual packets ... and make
// the delay random and unpredictable", §2.2.2).
func DelayVsLoad(q Quality) *stats.Table {
	quanta := int(cyclesFor(q, 20_000, 100_000))
	tb := &stats.Table{
		Caption: "Rotating Crossbar latency vs offered load (fabric engine, 256B packets; FIFO vs VOQ ingress)",
		Headers: []string{"offered", "achieved", "mean delay (cyc)", "p99 (cyc)", "voq mean delay"},
	}
	for _, load := range []float64{0.2, 0.4, 0.6, 0.65} {
		f := rotor.NewFabric(rotor.DefaultFabricConfig())
		rng := traffic.NewRNG(uint64(load*1000) + 3)
		for i := 0; i < quanta; i++ {
			for p := 0; p < 4; p++ {
				if rng.Float64() < load {
					f.Offer(p, rng.Intn(4), 64)
				}
			}
			f.StepQuantum()
		}
		v := rotor.NewVOQFabric(rotor.DefaultFabricConfig())
		rng2 := traffic.NewRNG(uint64(load*1000) + 3)
		for i := 0; i < quanta; i++ {
			for p := 0; p < 4; p++ {
				if rng2.Float64() < load {
					v.Offer(p, rng2.Intn(4), 64)
				}
			}
			v.StepQuantum()
		}
		achieved := float64(f.TotalPkts()) / float64(f.Quanta) / 4
		tb.AddRow(load, achieved, f.Latency.Mean(), f.Latency.Quantile(0.99), v.Latency.Mean())
	}
	return tb
}

// McastCells regenerates the §2.2.2 cell-level multicast claim: crossbar
// fanout-splitting vs atomic multicast service vs input replication.
func McastCells(q Quality) (atomic, splitting, replication float64, tb *stats.Table) {
	slots := cyclesFor(q, 20_000, 100_000)
	rng := traffic.NewRNG(13)
	atomic, splitting, replication = switchfab.McastThroughput(8, 3, rng, 2000, slots)
	tb = &stats.Table{
		Caption: "§2.2.2 multicast cells (8 ports, fanout 3): fanout-splitting vs atomic service (paper: +40%)",
		Headers: []string{"strategy", "output throughput"},
	}
	tb.AddRow("atomic multicast service", atomic)
	tb.AddRow("crossbar fanout-splitting", splitting)
	tb.AddRow("input replication (unicast VOQ)", replication)
	return atomic, splitting, replication, tb
}

// McastCycle measures the §8.6 extension at cycle level: a mixed
// unicast/multicast workload through the real router, reporting the
// egress-copy amplification fanout-splitting provides.
func McastCycle(q Quality) (amplification float64, tb *stats.Table) {
	cfg := router.DefaultConfig()
	cfg.Multicast = true
	cfg.Groups = map[ip.Addr]uint8{ip.AddrFrom(224, 1, 1, 1): 0b1111}
	cfg.Workers = workers
	cfg.Engine = chipEngine
	r, err := router.New(cfg)
	if err != nil {
		panic(err)
	}
	rng := traffic.NewRNG(7)
	id := uint16(0)
	cycles := cyclesFor(q, 60_000, 200_000)
	for c := int64(0); c < cycles; c += 200 {
		for p := 0; p < 4; p++ {
			for r.InputBacklogWords(p) < 4096 {
				id++
				var pkt ip.Packet
				if rng.Float64() < 0.3 {
					pkt = ip.NewPacket(traffic.PortAddr(p, uint32(id)), ip.AddrFrom(224, 1, 1, 1), 64, 256, id)
				} else {
					pkt = ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, 256, id)
				}
				r.OfferPacket(p, &pkt)
			}
		}
		r.Run(200)
	}
	var in, out int64
	for p := 0; p < 4; p++ {
		in += r.Stats().PktsIn[p]
		out += r.Stats().PktsOut[p]
	}
	amplification = stats.Ratio(float64(out), float64(in))
	tb = &stats.Table{
		Caption: "§8.6 multicast at cycle level (30% of packets to a 4-member group)",
		Headers: []string{"quantity", "value"},
	}
	tb.AddRow("packets in", in)
	tb.AddRow("egress copies out", out)
	tb.AddRow("amplification", amplification)
	tb.AddRow("throughput (Gbps)", r.ThroughputGbps())
	return amplification, tb
}

// ISLIPIterations sweeps the scheduler's iteration count — the Cisco GSR
// design point §2.2.2 describes ("attempts to quickly converge on a
// conflict-free match in multiple iterations"): one iteration already
// buys most of the throughput, and a couple more close the gap.
func ISLIPIterations(q Quality) *stats.Table {
	slots := cyclesFor(q, 20_000, 100_000)
	tb := &stats.Table{
		Caption: "§2.2.2 iSLIP iteration count (16 ports, uniform saturation)",
		Headers: []string{"iterations", "throughput"},
	}
	rng := traffic.NewRNG(4)
	for _, iters := range []int{1, 2, 3, 4} {
		got := switchfab.SaturationThroughput(
			switchfab.NewVOQSwitch(16, 64, iters), rng.Fork(uint64(iters)), 2000, slots)
		tb.AddRow(iters, got)
	}
	return tb
}

// ClusterScaling regenerates the §8.5 multi-chip composition study at
// cycle level: two 4-port chips joined by a two-link trunk sustain full
// external bandwidth for balanced cross-chip traffic, paying a second
// traversal in latency.
func ClusterScaling(q Quality) *stats.Table {
	rounds := int(cyclesFor(q, 250, 600))
	run := func(remote bool) (gbps float64, c *cluster.TwoChip) {
		c, err := cluster.NewTwoChip(router.DefaultConfig())
		if err != nil {
			panic(err)
		}
		id := uint16(0)
		for i := 0; i < rounds; i++ {
			for p := 0; p < 4; p++ {
				for c.InputBacklogWords(p) < 4096 {
					id++
					dst := p ^ 1
					if remote {
						dst = (p + 2) % 4
					}
					pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
						traffic.PortAddr(dst, uint32(id)), 64, 1024, id)
					c.OfferPacket(p, &pkt)
				}
			}
			c.Run(200)
		}
		return stats.Gbps(c.ExternalWordsOut()*4, c.Cycle(), 250e6), c
	}
	local, _ := run(false)
	remote, rc := run(true)
	tb := &stats.Table{
		Caption: "§8.5 two-chip composition (cycle level): 2-link trunk, balanced traffic",
		Headers: []string{"traffic", "Gbps", "trunk words A->B"},
	}
	tb.AddRow("chip-local pairs", local, 0)
	tb.AddRow("all cross-chip", remote, rc.TrunkWords[0])
	return tb
}

// FullUtilization regenerates the §8.1 study: single-FIFO ingress (the
// paper's design, HOL-limited to ≈0.69 of peak) vs VOQ-organized ingress
// buffers, under uniform saturation (fabric engine). The VOQ variant
// needs no new switch code — every transfer is still a minimized unicast
// configuration — only the ingress buffer layout changes.
func FullUtilization(q Quality) (fifoRatio, voqRatio float64, tb *stats.Table) {
	quanta := int(cyclesFor(q, 30_000, 150_000))
	rng := traffic.NewRNG(8)
	cfg := rotor.DefaultFabricConfig()

	fifo := rotor.NewFabric(cfg)
	for i := 0; i < quanta; i++ {
		for p := 0; p < 4; p++ {
			if fifo.QueueLen(p) < 4 {
				fifo.Offer(p, rng.Intn(4), 256)
			}
		}
		fifo.StepQuantum()
	}
	voq := rotor.NewVOQFabric(cfg)
	for i := 0; i < quanta; i++ {
		for p := 0; p < 4; p++ {
			if voq.QueueLen(p) < 8 {
				voq.Offer(p, rng.Intn(4), 256)
			}
		}
		voq.StepQuantum()
	}
	// Normalize to the zero-contention peak (words per cycle at 4 ports
	// streaming one word per cycle minus quantum overhead).
	peak := 4.0 * 256 / float64(cfg.OverheadCycles+256)
	fifoRatio = float64(fifo.TotalWords()) / float64(fifo.Cycles) / peak
	voqRatio = float64(voq.TotalWords()) / float64(voq.Cycles) / peak
	tb = &stats.Table{
		Caption: "§8.1 pursuing full utilization: ingress buffering vs average/peak ratio (uniform saturation)",
		Headers: []string{"ingress buffers", "avg/peak", "paper"},
	}
	tb.AddRow("single FIFO (the thesis's design)", fifoRatio, "0.69")
	tb.AddRow("virtual output queues (§8.1+§2.2.2)", voqRatio, "-")
	return fifoRatio, voqRatio, tb
}

// PIMvsISLIP regenerates the scheduler comparison behind the GSR's
// choice: randomized PIM vs round-robin iSLIP at one iteration, uniform
// saturation and a conflict-free permutation.
func PIMvsISLIP(q Quality) *stats.Table {
	slots := cyclesFor(q, 20_000, 100_000)
	tb := &stats.Table{
		Caption: "PIM vs iSLIP at one iteration (16 ports; PIM(1) theory: 1-1/e ≈ 0.63)",
		Headers: []string{"scheduler", "uniform saturation"},
	}
	pim := switchfab.SaturationThroughput(
		switchfab.NewPIMSwitch(16, 64, 1, traffic.NewRNG(41)), traffic.NewRNG(42), 2000, slots)
	islip := switchfab.SaturationThroughput(
		switchfab.NewVOQSwitch(16, 64, 1), traffic.NewRNG(42), 2000, slots)
	pim4 := switchfab.SaturationThroughput(
		switchfab.NewPIMSwitch(16, 64, 4, traffic.NewRNG(43)), traffic.NewRNG(42), 2000, slots)
	tb.AddRow("PIM, 1 iteration", pim)
	tb.AddRow("PIM, 4 iterations", pim4)
	tb.AddRow("iSLIP, 1 iteration", islip)
	return tb
}

// CycleLatency measures end-to-end packet latency through the cycle-level
// router under light load: offer one packet at a time and time its
// delivery — the number the fabric engine's histogram approximates.
func CycleLatency(q Quality) *stats.Table {
	tb := &stats.Table{
		Caption: "cycle-level router latency, unloaded (pin to pin)",
		Headers: []string{"size(B)", "hops", "cycles", "µs@250MHz"},
	}
	trials := int(cyclesFor(q, 5, 20))
	for _, size := range []int{64, 1024} {
		for _, dst := range []int{1, 2} { // 1 ring hop and 2 ring hops
			var total int64
			for k := 0; k < trials; k++ {
				r, err := router.New(router.DefaultConfig())
				if err != nil {
					panic(err)
				}
				pkt := ip.NewPacket(traffic.PortAddr(0, uint32(k)), traffic.PortAddr(dst, uint32(k)), 64, size, uint16(k))
				r.OfferPacket(0, &pkt)
				if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[dst] >= 1 }, 50_000) {
					panic("latency probe stuck")
				}
				total += r.Cycle()
			}
			mean := float64(total) / float64(trials)
			tb.AddRow(size, dst, mean, mean/250)
		}
	}
	return tb
}

// QuantumAblation sweeps the crossbar quantum size — the §4.3/§5.1 design
// choice ("one quantum of routing time ... measured by the number of
// 32-bit words"). Small quanta pay the per-quantum control cost more
// often; the paper's 256-word default lets a full 1,024-byte packet
// amortize it in one shot.
func QuantumAblation(q Quality) *stats.Table {
	cycles := cyclesFor(q, 40_000, 120_000)
	warm := cyclesFor(q, 40_000, 80_000)
	tb := &stats.Table{
		Caption: "quantum-size ablation: peak throughput at 1,024B packets (cycle level)",
		Headers: []string{"quantum (words)", "Gbps", "frags/pkt"},
	}
	for _, qw := range []int{64, 128, 256} {
		r, err := core.New(core.Options{QuantumWords: qw, Workers: workers, ChipEngine: chipEngine})
		if err != nil {
			panic(err)
		}
		res := r.RunMeasured(warm, cycles, core.PermutationTraffic(1024, 1))
		tb.AddRow(qw, res.Gbps, (256+qw-1)/qw)
	}
	return tb
}

// NetprocConvergence measures control-plane convergence time vs topology
// size on ring topologies (diameter n/2).
func NetprocConvergence() *stats.Table {
	tb := &stats.Table{
		Caption: "control-plane (RIP) convergence on rings",
		Headers: []string{"routers", "diameter", "rounds to converge"},
	}
	for _, n := range []int{4, 8, 16, 32} {
		nw := netproc.NewNetwork()
		for i := 0; i < n; i++ {
			nw.AddNode(i).Attach(netproc.Prefix{Addr: uint32(i+1) << 24, Len: 8}, 0)
		}
		for i := 0; i < n; i++ {
			nw.Link(i, 1, (i+1)%n, 2)
		}
		ticks := nw.RunUntilStable(10 * n)
		tb.AddRow(n, n/2, ticks)
	}
	return tb
}

// DegradedCrossbar quantifies graceful degradation (the robustness
// extension): the rotating crossbar with one crossbar tile masked out of
// the token rotation — three live ports on a three-stop ring — against
// the healthy four-port fabric, under saturated conflict-free traffic
// among the live ports. The per-live-port ratio isolates protocol
// overhead of the degraded header exchange from the expected 3/4
// capacity loss.
func DegradedCrossbar(q Quality) (healthy, degraded []float64, tb *stats.Table) {
	cycles := cyclesFor(q, 30_000, 120_000)
	run := func(size, dead int) float64 {
		cfg := router.DefaultConfig()
		cfg.Workers = workers
		cfg.Engine = chipEngine
		r, err := router.New(cfg)
		if err != nil {
			panic(err)
		}
		var live []int
		for p := 0; p < 4; p++ {
			if p != dead {
				live = append(live, p)
			}
		}
		if dead >= 0 {
			if err := r.Degrade(dead); err != nil {
				panic(err)
			}
		}
		id := uint16(0)
		for c := int64(0); c < cycles; c += 200 {
			for i, p := range live {
				dst := live[(i+1)%len(live)]
				for r.InputBacklogWords(p) < 4096 {
					id++
					pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
						traffic.PortAddr(dst, uint32(id)), 64, size, id)
					r.OfferPacket(p, &pkt)
				}
			}
			r.Run(200)
		}
		return r.ThroughputGbps()
	}
	tb = &stats.Table{
		Caption: "degraded rotating crossbar: 3 live ports vs 4 (one crossbar tile masked)",
		Headers: []string{"size(B)", "healthy Gbps", "degraded Gbps", "ratio", "per-port ratio"},
	}
	for _, size := range []int{64, 256, 1024} {
		h := run(size, -1)
		d := run(size, 2)
		healthy = append(healthy, h)
		degraded = append(degraded, d)
		tb.AddRow(size, h, d, stats.Ratio(d, h), stats.Ratio(d/3, h/4))
	}
	return healthy, degraded, tb
}

// reprobeQuanta is the line-flap retry backoff base (in quanta) the
// recovery experiments run with; 0 keeps the default (latched LineDown).
var reprobeQuanta int

// SetReprobeQuanta configures line-flap retry for RestoredCrossbar
// (fabsim/reproduce -reprobe).
func SetReprobeQuanta(n int) { reprobeQuanta = n }

// RestoredCrossbar quantifies port re-admission (the recovery
// extension): a router that degraded port 2 away, drained, restored it,
// and served out the probation window, measured against a router that
// never failed — same saturated uniform workload, same measurement
// window. The acceptance bar for the recovery design is that the
// restored fabric is within 1% of healthy: re-admission leaves the
// healthy rotor entries bitwise unchanged and the transition slots cost
// only the one re-entry quantum.
func RestoredCrossbar(q Quality) (healthy, restored []float64, tb *stats.Table) {
	warmup := cyclesFor(q, 10_000, 20_000)
	window := cyclesFor(q, 40_000, 100_000)
	run := func(size int, arc bool) float64 {
		cfg := router.DefaultConfig()
		cfg.Workers = workers
		cfg.Engine = chipEngine
		cfg.ReprobeQuanta = reprobeQuanta
		r, err := router.New(cfg)
		if err != nil {
			panic(err)
		}
		if arc {
			if err := r.Degrade(2); err != nil {
				panic(err)
			}
			r.Run(10_000)
			if err := r.Restore(2); err != nil {
				panic(err)
			}
			if !r.Chip.RunUntil(func() bool {
				return r.DeadPort() < 0 && r.ProbationPort() < 0
			}, 100_000) {
				panic("exp: restore never completed")
			}
		}
		rng := traffic.NewRNG(1234)
		id := uint16(0)
		feed := func(cycles int64) {
			for c := int64(0); c < cycles; c += 200 {
				for p := 0; p < 4; p++ {
					for r.InputBacklogWords(p) < 4096 {
						id++
						pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
							traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
						r.OfferPacket(p, &pkt)
					}
				}
				r.Run(200)
			}
		}
		feed(warmup)
		var start int64
		for p := 0; p < 4; p++ {
			start += r.OutputWords(p)
		}
		startCycle := r.Cycle()
		feed(window)
		var words int64
		for p := 0; p < 4; p++ {
			words += r.OutputWords(p)
		}
		return stats.Gbps((words-start)*4, r.Cycle()-startCycle, cfg.ClockHz)
	}
	tb = &stats.Table{
		Caption: "restored rotating crossbar: after degrade(port2) -> restore -> probation vs never-failed",
		Headers: []string{"size(B)", "healthy Gbps", "restored Gbps", "ratio"},
	}
	for _, size := range []int{64, 256, 1024} {
		h := run(size, false)
		g := run(size, true)
		healthy = append(healthy, h)
		restored = append(restored, g)
		tb.AddRow(size, h, g, stats.Ratio(g, h))
	}
	return healthy, restored, tb
}

// Telemetry exercises the telemetry plane end to end: a saturated
// uniform workload with the per-quantum collector armed, reported
// entirely from the exported snapshot (never from router internals).
// Because sampling happens on the cycle-hook goroutine, the snapshot —
// and therefore every number in the table — is bit-for-bit identical at
// any worker count.
func Telemetry(q Quality) (snap telemetry.Snapshot, tb *stats.Table) {
	cfg := router.DefaultConfig()
	cfg.Workers = workers
	cfg.Engine = chipEngine
	cfg.Metrics = telemetry.New(telemetry.Config{})
	r, err := router.New(cfg)
	if err != nil {
		panic(err)
	}
	rng := traffic.NewRNG(42)
	id := uint16(0)
	cycles := cyclesFor(q, 40_000, 150_000)
	for c := int64(0); c < cycles; c += 200 {
		for p := 0; p < 4; p++ {
			for r.InputBacklogWords(p) < 4096 {
				id++
				pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
					traffic.PortAddr(rng.Intn(4), uint32(id)), 64, 1024, id)
				r.OfferPacket(p, &pkt)
			}
		}
		r.Run(200)
	}
	snap = r.TelemetrySnapshot()
	tb = &stats.Table{
		Caption: "telemetry plane: per-quantum metrics over a saturated uniform workload",
		Headers: []string{"port", "granted q", "denied q", "words granted", "link util", "token-wait mean"},
	}
	for p := 0; p < 4; p++ {
		ps := snap.Ports[p]
		tb.AddRow(p, ps.GrantedQuanta, ps.DeniedQuanta, ps.WordsGranted,
			ps.LinkUtilization, ps.TokenWait.Mean())
	}
	return snap, tb
}
