package exp_test

import (
	"strconv"
	"testing"

	"repro/internal/exp"
)

// TestHeavyTail: the production-traffic comparison holds its headline
// shapes at quick quality — permutation (conflict-free) beats the
// conflicted workloads, every workload moves traffic, and the open-loop
// runs at each spec's configured rate drain completely.
func TestHeavyTail(t *testing.T) {
	pts, tb := exp.HeavyTail(exp.Quick)
	if len(pts) != 4 || tb == nil {
		t.Fatalf("got %d workloads", len(pts))
	}
	perm := pts[0]
	for _, p := range pts {
		if p.Gbps <= 0 {
			t.Fatalf("%s moved no traffic: %+v", p.Workload, p)
		}
		if p.DeliveredFrac < 0.999 || p.DeliveredFrac > 1.001 {
			t.Fatalf("%s open-loop delivered fraction %.4f; router failed to keep up at the configured rate", p.Workload, p.DeliveredFrac)
		}
		if p.Workload != perm.Workload && p.Gbps >= perm.Gbps {
			t.Fatalf("%s (%.2f Gbps) >= permutation (%.2f Gbps); output conflicts should cost throughput", p.Workload, p.Gbps, perm.Gbps)
		}
	}
}

// TestHeavyTailFabric: under Zipf-skewed flows the fabric ranking stays
// FIFO < VOQ <= ideal OQ, but the hot output caps even OQ well below
// the uniform-traffic saturation numbers.
func TestHeavyTailFabric(t *testing.T) {
	tb, err := exp.HeavyTailFabric(exp.Quick, "flows:alpha=1.3,zipf=1.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("got %d fabric rows", len(tb.Rows))
	}
	thr := func(i int) float64 {
		v, err := strconv.ParseFloat(tb.Rows[i][1], 64)
		if err != nil {
			t.Fatalf("row %d throughput %q: %v", i, tb.Rows[i][1], err)
		}
		return v
	}
	fifo, voq, oq := thr(0), thr(1), thr(2)
	if !(fifo < voq) {
		t.Fatalf("FIFO %.3f !< VOQ %.3f under skewed traffic", fifo, voq)
	}
	if voq > oq*1.01 {
		t.Fatalf("VOQ %.3f exceeds ideal OQ %.3f", voq, oq)
	}
	if oq > 0.95 {
		t.Fatalf("ideal OQ sustains %.3f under Zipf skew; hot-output saturation should cap it well below 1", oq)
	}
}
