package exp

import (
	"repro/internal/cluster"
	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// ScaleOut extends the §8.5 composition study from the two-chip trunk
// to the N-chip fabric: each topology kind at two sizes, all external
// ports offering balanced cross-fabric traffic (every packet leaves its
// source chip), reporting sustained external bandwidth and bisection
// occupancy. The table is the scaling story the paper's single trunk
// gestures at: a ring's bisection saturates while a mesh and fat-tree
// spread the same offered load over wider cuts.
func ScaleOut(q Quality) *stats.Table {
	rounds := int(cyclesFor(q, 60, 400))
	specs := []cluster.Spec{
		cluster.Ring(2), cluster.Ring(4),
		cluster.Mesh(2, 2), cluster.Mesh(4, 4),
		cluster.FatTree(2), cluster.FatTree(4),
	}
	tb := &stats.Table{
		Caption: "§8.5 scale-out fabrics (cycle level): balanced cross-chip traffic",
		Headers: []string{"topology", "chips", "externals", "Gbps", "bisection util"},
	}
	for _, spec := range specs {
		gbps, bisect := scaleOutRun(spec, rounds)
		tb.AddRow(spec.String(), spec.NumChips(), spec.Externals(), gbps, bisect)
	}
	return tb
}

// scaleOutRun drives one fabric instance and returns (Gbps, bisection
// utilization). Traffic is the antipodal pairing: external e sends to
// external (e + E/2) mod E, which always crosses chips and loads the
// bisection cut of every topology.
func scaleOutRun(spec cluster.Spec, rounds int) (float64, float64) {
	cfg := cluster.Config{Topology: spec, Router: router.DefaultConfig()}
	cfg.Router.Workers = workers
	cfg.Router.Engine = chipEngine
	f, err := cluster.NewFabric(cfg)
	if err != nil {
		panic(err)
	}
	ext := spec.Externals()
	id := uint16(0)
	for i := 0; i < rounds; i++ {
		for e := 0; e < ext; e++ {
			for f.InputBacklogWords(e) < 4096 {
				id++
				dst := (e + ext/2) % ext
				pkt := ip.NewPacket(traffic.PortAddr(e, uint32(id)),
					traffic.PortAddr(dst, uint32(id)), 64, 1024, id)
				f.OfferPacket(e, &pkt)
			}
		}
		f.Run(200)
	}
	snap := f.TelemetrySnapshot()
	return stats.Gbps(f.ExternalWordsOut()*4, f.Cycle(), cfg.Router.ClockHz),
		snap.BisectionUtilization
}
