package exp

import (
	"repro/internal/cluster"
	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// ScaleOut extends the §8.5 composition study from the two-chip trunk
// to the N-chip fabric: each topology kind at two sizes, all external
// ports offering balanced cross-fabric traffic (every packet leaves its
// source chip), reporting sustained external bandwidth and bisection
// occupancy. The table is the scaling story the paper's single trunk
// gestures at: a ring's bisection saturates while a mesh and fat-tree
// spread the same offered load over wider cuts.
//
// The two degraded columns extend the story to chip loss: the same
// workload with one chip down for the whole run, first with the static
// tables (traffic for the victim's externals is lost, and any route
// threaded through the victim strands at its trunks), then with the
// healing plane rerouting around the hole. "n/a" marks topologies whose
// surviving graph has no detour to heal (a 2-chip ring or fat-tree
// loses all paths between the survivors' externals and the victim's).
func ScaleOut(q Quality) *stats.Table {
	rounds := int(cyclesFor(q, 60, 400))
	specs := []cluster.Spec{
		cluster.Ring(2), cluster.Ring(4),
		cluster.Mesh(2, 2), cluster.Mesh(4, 4),
		cluster.FatTree(2), cluster.FatTree(4),
	}
	tb := &stats.Table{
		Caption: "§8.5 scale-out fabrics (cycle level): balanced cross-chip traffic, healthy and one chip down",
		Headers: []string{"topology", "chips", "externals", "Gbps", "bisection util", "Gbps 1-down", "Gbps healed"},
	}
	for _, spec := range specs {
		gbps, bisect := scaleOutRun(spec, rounds, scaleOutHealthy)
		row := []any{spec.String(), spec.NumChips(), spec.Externals(), gbps, bisect}
		if spec.PartitionRisk() != "" {
			// Losing a chip partitions this topology: there is no detour
			// for healing to find, so the degraded columns do not apply.
			row = append(row, "n/a", "n/a")
		} else {
			down, _ := scaleOutRun(spec, rounds, scaleOutDegraded)
			healed, _ := scaleOutRun(spec, rounds, scaleOutHealed)
			row = append(row, down, healed)
		}
		tb.AddRow(row...)
	}
	return tb
}

// Degraded-run modes: healthy, one chip down with static tables, one
// chip down with the healing plane rerouting around it.
const (
	scaleOutHealthy = iota
	scaleOutDegraded
	scaleOutHealed
)

// scaleOutVictim picks the chip to kill: a middle chip, so ring and
// mesh routes actually thread through it and static tables strand
// traffic a healed fabric detours.
func scaleOutVictim(spec cluster.Spec) int {
	return spec.NumChips() / 2
}

// scaleOutRun drives one fabric instance and returns (Gbps, bisection
// utilization). Traffic is the antipodal pairing: external e sends to
// external (e + E/2) mod E, which always crosses chips and loads the
// bisection cut of every topology. Degraded modes kill the victim chip
// before any traffic is offered and report the surviving externals'
// sustained bandwidth.
func scaleOutRun(spec cluster.Spec, rounds, mode int) (float64, float64) {
	cfg := cluster.Config{Topology: spec, Router: router.DefaultConfig()}
	cfg.Router.Workers = workers
	cfg.Router.Engine = chipEngine
	if mode == scaleOutHealed {
		cfg.Heal = cluster.HealConfig{Enabled: true}
	}
	f, err := cluster.NewFabric(cfg)
	if err != nil {
		panic(err)
	}
	if mode != scaleOutHealthy {
		if err := f.KillChip(scaleOutVictim(spec)); err != nil {
			panic(err)
		}
	}
	ext := spec.Externals()
	id := uint16(0)
	for i := 0; i < rounds; i++ {
		for e := 0; e < ext; e++ {
			// Refused offers (dead ingress, dead destination) never grow
			// the backlog; bound the fill by attempts so degraded runs
			// terminate.
			for tries := 0; f.InputBacklogWords(e) < 4096 && tries < 64; tries++ {
				id++
				dst := (e + ext/2) % ext
				pkt := ip.NewPacket(traffic.PortAddr(e, uint32(id)),
					traffic.PortAddr(dst, uint32(id)), 64, 1024, id)
				f.OfferPacket(e, &pkt)
			}
		}
		f.Run(200)
	}
	snap := f.TelemetrySnapshot()
	return stats.Gbps(f.ExternalWordsOut()*4, f.Cycle(), cfg.Router.ClockHz),
		snap.BisectionUtilization
}
