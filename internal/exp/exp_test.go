package exp_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/exp"
)

// TestFigure71PeakShape: monotone growth with packet size, each point
// within a factor band of the paper, Click two orders of magnitude below.
func TestFigure71PeakShape(t *testing.T) {
	pts, clickGbps, tb := exp.Figure71(exp.Quick, false)
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if i > 0 && p.Gbps <= pts[i-1].Gbps {
			t.Fatalf("throughput not monotone at %dB: %v", p.SizeBytes, pts)
		}
		if p.Ratio < 0.7 || p.Ratio > 1.3 {
			t.Fatalf("size %d: ratio to paper %.2f outside [0.7,1.3]", p.SizeBytes, p.Ratio)
		}
	}
	if clickGbps > 0.35 || clickGbps < 0.15 {
		t.Fatalf("Click bar %.3f, want ≈0.23", clickGbps)
	}
	if pts[4].Gbps/clickGbps < 50 {
		t.Fatalf("Raw/Click ratio %.0f, want two orders of magnitude", pts[4].Gbps/clickGbps)
	}
	if !strings.Contains(tb.String(), "Figure 7-1") {
		t.Fatal("table caption missing")
	}
}

// TestFigure71AverageRatio: average ≈ 0.6-0.7 of peak at every size.
func TestFigure71AverageRatio(t *testing.T) {
	peak, _, _ := exp.Figure71(exp.Quick, false)
	avg, _, _ := exp.Figure71(exp.Quick, true)
	for i := range peak {
		ratio := avg[i].Gbps / peak[i].Gbps
		if ratio < 0.52 || ratio > 0.82 {
			t.Fatalf("size %d: avg/peak %.2f, paper reports 0.69", peak[i].SizeBytes, ratio)
		}
	}
}

func TestFigure73(t *testing.T) {
	small, large, render := exp.Figure73(exp.Quick)
	for _, tile := range []int{4, 7, 8, 11} {
		if small.BlockedFraction(tile) < 0.05 {
			t.Fatalf("ingress tile %d shows no gray at 64B", tile)
		}
	}
	var s, l float64
	for tile := 0; tile < 16; tile++ {
		s += small.Utilization(tile)
		l += large.Utilization(tile)
	}
	if l <= s {
		t.Fatalf("utilization at 1024B (%.2f) not above 64B (%.2f)", l, s)
	}
	if !strings.Contains(render, "Figure 7-3") {
		t.Fatal("render missing")
	}
}

func TestConfigSpace(t *testing.T) {
	r := exp.ConfigSpace()
	if r.Space != 2500 {
		t.Fatalf("space %d", r.Space)
	}
	if math.Abs(r.WordsPerConfig-3.2768) > 0.01 {
		t.Fatalf("words/config %.3f", r.WordsPerConfig)
	}
	if r.Minimized != 27 {
		t.Fatalf("minimized %d", r.Minimized)
	}
	if r.XbarProgWords >= r.SwMemWords/8 {
		t.Fatalf("program %d words, too large", r.XbarProgWords)
	}
}

func TestSecondNetworkAblation(t *testing.T) {
	one, two, _ := exp.SecondNetworkAblation(exp.Quick)
	if d := math.Abs(two-one) / one; d > 0.01 {
		t.Fatalf("second network changed throughput %.2f%%", 100*d)
	}
}

func TestFairness(t *testing.T) {
	shares, _ := exp.Fairness(exp.Quick)
	for p, s := range shares {
		if math.Abs(s-0.25) > 0.02 {
			t.Fatalf("input %d share %.3f, want 0.25", p, s)
		}
	}
}

func TestHOLvsVOQ(t *testing.T) {
	fifo, voq, oq, _ := exp.HOLvsVOQ(exp.Quick)
	if math.Abs(fifo-0.586) > 0.04 {
		t.Fatalf("FIFO %.3f", fifo)
	}
	if voq < 0.95 || oq < 0.98 {
		t.Fatalf("VOQ %.3f OQ %.3f", voq, oq)
	}
}

func TestCellsVsVariable(t *testing.T) {
	cells, varlen, _ := exp.CellsVsVariable(exp.Quick)
	if varlen > cells-0.2 {
		t.Fatalf("variable-length %.3f should trail cells %.3f decisively", varlen, cells)
	}
}

func TestQoS(t *testing.T) {
	shares, _ := exp.QoS(exp.Quick)
	if shares[0] < 1.6*shares[1] {
		t.Fatalf("weighted input share %.3f vs %.3f: weight ineffective", shares[0], shares[1])
	}
}

func TestMulticast(t *testing.T) {
	copies, fanout, _ := exp.Multicast(exp.Quick)
	if fanout < 2.5*copies {
		t.Fatalf("fanout %.2f vs copies %.2f: expected ≈3x amplification", fanout, copies)
	}
}

func TestHeadline(t *testing.T) {
	mpps, gbps := exp.Headline(exp.Quick)
	if gbps < 24 || gbps > 28.5 {
		t.Fatalf("headline %.2f Gbps, paper 26.9", gbps)
	}
	if mpps < 2.9 || mpps > 3.6 {
		t.Fatalf("headline %.2f Mpps, paper 3.3", mpps)
	}
}

func TestScale8(t *testing.T) {
	tb := exp.Scale8(exp.Quick)
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestLookupCost(t *testing.T) {
	tb := exp.LookupCost(2000)
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestDelayVsLoad(t *testing.T) {
	tb := exp.DelayVsLoad(exp.Quick)
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestMcastCells(t *testing.T) {
	atomic, splitting, _, _ := exp.McastCells(exp.Quick)
	if splitting < atomic*1.2 {
		t.Fatalf("fanout-splitting %.3f vs atomic %.3f", splitting, atomic)
	}
}

func TestMcastCycle(t *testing.T) {
	amp, _ := exp.McastCycle(exp.Quick)
	// 30% of packets fan out 4x: expected amplification ≈ 0.7 + 0.3*4 = 1.9.
	if amp < 1.4 || amp > 2.4 {
		t.Fatalf("amplification %.2f, want ≈1.9", amp)
	}
}

func TestISLIPIterations(t *testing.T) {
	tb := exp.ISLIPIterations(exp.Quick)
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestClusterScaling(t *testing.T) {
	tb := exp.ClusterScaling(exp.Quick)
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestScaleOut(t *testing.T) {
	tb := exp.ScaleOut(exp.Quick)
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestFullUtilization(t *testing.T) {
	fifo, voq, _ := exp.FullUtilization(exp.Quick)
	if fifo < 0.55 || fifo > 0.8 {
		t.Fatalf("FIFO ratio %.3f, want ≈0.69", fifo)
	}
	if voq < 0.9 {
		t.Fatalf("VOQ ratio %.3f, want ≥0.9", voq)
	}
}

func TestPIMvsISLIP(t *testing.T) {
	tb := exp.PIMvsISLIP(exp.Quick)
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestCycleLatency(t *testing.T) {
	tb := exp.CycleLatency(exp.Quick)
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestQuantumAblation(t *testing.T) {
	tb := exp.QuantumAblation(exp.Quick)
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestNetprocConvergence(t *testing.T) {
	tb := exp.NetprocConvergence()
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestDegradedCrossbar(t *testing.T) {
	healthy, degraded, _ := exp.DegradedCrossbar(exp.Quick)
	for i := range healthy {
		ratio := degraded[i] / healthy[i]
		if ratio < 0.55 || ratio > 0.95 {
			t.Fatalf("point %d: degraded/healthy = %.3f, want ≈ 3/4", i, ratio)
		}
		perPort := (degraded[i] / 3) / (healthy[i] / 4)
		if perPort < 0.75 || perPort > 1.15 {
			t.Fatalf("point %d: per-live-port ratio %.3f, want ≈ 1", i, perPort)
		}
	}
}
