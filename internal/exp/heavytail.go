package exp

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/switchfab"
	"repro/internal/traffic"
)

// HeavyTailPoint is one workload row of the heavy-tail comparison.
type HeavyTailPoint struct {
	Workload string
	Gbps     float64
	Mpps     float64
	// DeliveredFrac is delivered/offered words for the open-loop run at
	// the spec's configured rate (1.0 = the router kept up and drained).
	DeliveredFrac float64
}

// HeavyTail contrasts the classic synthetic workloads the paper
// measures (permutation, uniform) against production-shaped traffic —
// IMIX packet sizes and heavy-tailed flows with Zipf destinations —
// on the same 4-port router. Saturated closed-loop throughput comes
// from RunMeasured over the workload's Source streams; the open-loop
// column replays the workload's timestamped arrival process at its
// configured rate via RunArrivals and reports the delivered fraction.
func HeavyTail(q Quality) ([]HeavyTailPoint, *stats.Table) {
	cycles := cyclesFor(q, 30_000, 120_000)
	warm := cyclesFor(q, 30_000, 80_000)
	slices := cyclesFor(q, 8, 48)
	specs := []string{
		"permutation:offset=1",
		"uniform",
		"imix",
		"flows:alpha=1.3,zipf=1.1",
	}
	var pts []HeavyTailPoint
	for _, text := range specs {
		s, err := traffic.ParseSpec(text)
		if err != nil {
			panic(err)
		}
		w, err := traffic.Build(s)
		if err != nil {
			panic(err)
		}

		// Saturated closed-loop throughput.
		r, err := core.New(core.Options{Workers: workers, ChipEngine: chipEngine})
		if err != nil {
			panic(err)
		}
		gen, err := core.WorkloadTraffic(w)
		if err != nil {
			panic(err)
		}
		res := r.RunMeasured(warm, cycles, gen)

		// Open-loop replay at the spec rate.
		proc, err := w.OpenLoop(1024)
		if err != nil {
			panic(err)
		}
		r2, err := core.New(core.Options{Workers: workers, ChipEngine: chipEngine})
		if err != nil {
			panic(err)
		}
		delivered, _ := r2.RunArrivals(proc, slices, 1<<20)
		var gotWords, wantWords int64
		for _, wds := range delivered {
			gotWords += wds
		}
		for k := int64(0); k < slices; k++ {
			for _, a := range proc.Slice(k) {
				pkt := a.Pkt
				wantWords += int64((pkt.SizeBytes + 3) / 4)
			}
		}
		frac := 0.0
		if wantWords > 0 {
			frac = float64(gotWords) / float64(wantWords)
		}
		pts = append(pts, HeavyTailPoint{Workload: text, Gbps: res.Gbps, Mpps: res.Mpps, DeliveredFrac: frac})
	}
	tb := &stats.Table{
		Caption: "Heavy-tailed production traffic vs the paper's synthetic workloads (4 ports, 250 MHz)",
		Headers: []string{"workload", "sat Gbps", "sat Mpps", "open-loop delivered"},
	}
	for _, p := range pts {
		tb.AddRow(p.Workload, p.Gbps, p.Mpps, p.DeliveredFrac)
	}
	return pts, tb
}

// HeavyTailFabric runs the §2.2.2 cell-fabric comparison (FIFO input
// queueing vs VOQ+iSLIP vs ideal output queueing) under an arbitrary
// workload's destination process instead of uniform saturation — Zipf
// skew concentrates load on hot outputs, which narrows the VOQ
// advantage the uniform benchmark shows. The spec is re-pointed at 16
// ports to match the background experiments.
func HeavyTailFabric(q Quality, specText string) (*stats.Table, error) {
	s, err := traffic.ParseSpec(specText)
	if err != nil {
		return nil, err
	}
	s.Ports = 16
	w, err := traffic.Build(s)
	if err != nil {
		return nil, err
	}
	slots := cyclesFor(q, 20_000, 200_000)
	tb := &stats.Table{
		Caption: "Cell fabrics under " + w.Spec.String() + " destinations (16 ports, saturated inputs)",
		Headers: []string{"switch", "throughput"},
	}
	for _, row := range []struct {
		name string
		fab  switchfab.Fabric
	}{
		{"FIFO input-queued", switchfab.NewFIFOSwitch(16, 64)},
		{"VOQ + iSLIP(3)", switchfab.NewVOQSwitch(16, 64, 3)},
		{"ideal output-queued", switchfab.NewOQSwitch(16)},
	} {
		th, err := switchfab.WorkloadSaturation(row.fab, w, 2000, slots)
		if err != nil {
			return nil, err
		}
		tb.AddRow(row.name, th)
	}
	return tb, nil
}
