package exp

// The traffic-plane acceptance test: one seeded heavy-tailed trace
// drives the Raw router (both engines, workers 1 and NumCPU), the serve
// daemon, and the Click baseline to the identical per-destination
// delivered-word ledger — the ledger recorded in the trace itself.

import (
	"runtime"
	"testing"

	"repro/internal/click"
	"repro/internal/core"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/traffic"
)

// ledgerSpec is a modest-rate heavy-tailed workload: low enough load
// that every offered word is delivered once in-flight work drains, so
// the delivered ledger equals the offered ledger exactly.
func ledgerSpec() traffic.Spec {
	return traffic.Spec{
		Pattern: "flows", Seed: 17, Rate: 0.15,
		Sizes: []int{64, 576, 1500}, Weights: []float64{7, 4, 1},
		Params: map[string]float64{"zipf": 1.2, "maxflow": 32},
	}
}

func TestTraceLedgerAcrossConsumers(t *testing.T) {
	const cyc, slices = 1024, 12
	w := traffic.MustBuild(ledgerSpec())
	tr, err := traffic.Record(w, cyc, slices)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) == 0 {
		t.Fatal("trace is empty")
	}
	want := tr.DstWords()
	replay := tr.Process(cyc)

	// Raw router: both engines, serial and parallel stepping, driven
	// once from the live process and once from the recorded trace.
	live, err := w.OpenLoop(cyc)
	if err != nil {
		t.Fatal(err)
	}
	configs := []struct {
		name    string
		engine  raw.Engine
		workers int
		proc    traffic.Process
	}{
		{"ref/w1/live", raw.EngineRef, 1, live},
		{"ref/wN/trace", raw.EngineRef, runtime.NumCPU(), replay},
		{"fast/w1/trace", raw.EngineFast, 1, replay},
		{"fast/wN/live", raw.EngineFast, runtime.NumCPU(), live},
	}
	for _, cfg := range configs {
		r, err := core.New(core.Options{Workers: cfg.workers, ChipEngine: cfg.engine})
		if err != nil {
			t.Fatal(err)
		}
		got, drained := r.RunArrivals(cfg.proc, slices, 1<<20)
		if !drained {
			t.Fatalf("%s: router did not drain", cfg.name)
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("%s: dst %d delivered %d words, trace ledger says %d (full: got %v want %v)",
					cfg.name, d, got[d], want[d], got, want)
			}
		}
	}

	// Click baseline: same process, same ledger.
	clickLedger, _, err := click.ReplayArrivals(router.CanonicalTable(), replay, slices)
	if err != nil {
		t.Fatal(err)
	}
	for d := range want {
		if clickLedger[d] != want[d] {
			t.Fatalf("click: dst %d delivered %d words, trace ledger says %d", d, clickLedger[d], want[d])
		}
	}

	// Serve daemon: the workload feeder admits the same arrivals; after
	// a clean drain the router's egress word counters match the ledger.
	feeder, err := serve.NewWorkloadFeeder(w, cyc)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := router.DefaultConfig()
	rr, err := core.New(core.Options{RouterConfig: &rcfg})
	if err != nil {
		t.Fatal(err)
	}
	d, err := serve.New(serve.Config{
		Router:      rr.Cycle(),
		Feeder:      feeder,
		SliceCycles: cyc,
		QueuePkts:   1 << 16,
		MaxSlices:   slices,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced {
		t.Fatal("serve drain was forced; ledger would be incomplete")
	}
	tot := d.Status().Ingest.Totals()
	if tot.ShedWords != 0 || tot.DrainDiscardedWords != 0 {
		t.Fatalf("serve shed %d / discarded %d words at rate 0.15; ledger invalid",
			tot.ShedWords, tot.DrainDiscardedWords)
	}
	for dst := range want {
		if got := rr.Cycle().OutputWords(dst); got != want[dst] {
			t.Fatalf("serve: dst %d delivered %d words, trace ledger says %d", dst, got, want[dst])
		}
	}
}
