// Package mem models the off-chip DRAM and the edge memory controllers
// that answer the data caches' miss traffic over the Raw memory dynamic
// network (§3.3, §8.2 of the paper). One Controller (a shared DRAM bank)
// serves the whole chip through one port per mesh row on the east edge,
// mirroring the Raw system's edge memory ports. Each port keeps its own
// message framing state: words from different rows never interleave
// within a message, but different ports deliver concurrently.
package mem

import "repro/internal/raw"

// Controller is the DRAM bank plus its per-row edge ports.
type Controller struct {
	// Latency is the DRAM access time in cycles between a request
	// completing arrival and the first response word entering the chip.
	Latency int
	// ServiceInterval is the minimum number of cycles between starting
	// two requests on one port (bank occupancy); 0 means fully pipelined.
	ServiceInterval int
	// ExtraLatency, if non-nil, returns additional access latency in
	// force when a request is served — the hook fault injection uses for
	// DRAM latency spikes (wire to Chip.FaultDRAMPenalty).
	ExtraLatency func() int

	width int
	store map[raw.Word]raw.Word

	// Stats
	Reads, Writes int64
}

// port is the raw.DynDevice bound to one boundary link.
type port struct {
	c        *Controller
	buf      []raw.Word
	queue    [][]raw.Word
	nextFree int64
	inflight []response
}

type response struct {
	due   int64
	words []raw.Word
}

// NewController builds a controller for a chip of the given mesh width
// (needed to address read replies) with the given DRAM latency.
func NewController(meshWidth, latency int) *Controller {
	return &Controller{
		Latency: latency,
		width:   meshWidth,
		store:   make(map[raw.Word]raw.Word),
	}
}

// Poke writes a word directly into DRAM (test and workload setup).
func (c *Controller) Poke(addr, val raw.Word) { c.store[addr] = val }

// Peek reads a word directly from DRAM.
func (c *Controller) Peek(addr raw.Word) raw.Word { return c.store[addr] }

// PokeWords writes a sequence starting at addr.
func (c *Controller) PokeWords(addr raw.Word, words []raw.Word) {
	for i, w := range words {
		c.store[addr+raw.Word(i)] = w
	}
}

// NewPort returns a raw.DynDevice serving this bank on one edge link.
func (c *Controller) NewPort() raw.DynDevice { return &port{c: c} }

// Attach connects the controller to the east edge of every row of chip —
// the standard placement used by the router.
func Attach(chip *raw.Chip, latency int) *Controller {
	cfg := chip.Config()
	c := NewController(cfg.Width, latency)
	for y := 0; y < cfg.Height; y++ {
		chip.AttachDynDevice(y*cfg.Width+cfg.Width-1, raw.DirE, raw.DynMemory, c.NewPort())
	}
	return c
}

// DevQuiesced implements raw.DeviceQuiescer: with no partial frame, no
// queued request, and no in-flight response, Tick with no arrivals
// mutates nothing (the nextFree comparison alone cannot change state),
// so skipped cycles are a provable no-op. In cache-resident steady state
// the ports sit in exactly this condition, which is what lets the
// macro-stepper run with the memory system attached.
func (p *port) DevQuiesced() bool {
	return len(p.buf) == 0 && len(p.queue) == 0 && len(p.inflight) == 0
}

// Tick implements raw.DynDevice for one edge port.
func (p *port) Tick(cycle int64, arrived []raw.Word) []raw.Word {
	p.buf = append(p.buf, arrived...)
	for len(p.buf) > 0 {
		_, _, plen := raw.DecodeDynHeader(p.buf[0])
		if len(p.buf) < 1+plen {
			break
		}
		msg := append([]raw.Word(nil), p.buf[:1+plen]...)
		p.buf = p.buf[1+plen:]
		p.queue = append(p.queue, msg)
	}
	// Start queued requests subject to the service interval.
	for len(p.queue) > 0 && cycle >= p.nextFree {
		msg := p.queue[0]
		p.queue = p.queue[1:]
		p.serve(cycle, msg)
		p.nextFree = cycle + int64(p.c.ServiceInterval)
	}
	// Release responses that are due.
	var out []raw.Word
	keep := p.inflight[:0]
	for _, r := range p.inflight {
		if r.due <= cycle {
			out = append(out, r.words...)
		} else {
			keep = append(keep, r)
		}
	}
	p.inflight = keep
	return out
}

func (p *port) serve(cycle int64, msg []raw.Word) {
	c := p.c
	op, tile := raw.DecodeMemCmd(msg[1])
	addr := msg[2]
	lat := int64(c.Latency)
	if c.ExtraLatency != nil {
		lat += int64(c.ExtraLatency())
	}
	switch op {
	case raw.MemCmdRead:
		c.Reads++
		words := make([]raw.Word, 0, 2+raw.CacheLineWords)
		words = append(words,
			raw.DynHeader(tile%c.width, tile/c.width, 1+raw.CacheLineWords),
			addr)
		for i := 0; i < raw.CacheLineWords; i++ {
			words = append(words, c.store[addr+raw.Word(i)])
		}
		p.inflight = append(p.inflight, response{due: cycle + lat, words: words})
	case raw.MemCmdWrite:
		c.Writes++
		for i := 0; i < raw.CacheLineWords; i++ {
			c.store[addr+raw.Word(i)] = msg[3+i]
		}
	}
}
