package mem_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/raw"
)

// fwSeq replays refill batches.
type fwSeq struct {
	steps []func(e *raw.Exec)
	i     int
}

func (f *fwSeq) Refill(e *raw.Exec) {
	if f.i < len(f.steps) {
		f.steps[f.i](e)
		f.i++
	}
}

func TestControllerReadWrite(t *testing.T) {
	chip := raw.NewChip(raw.DefaultConfig())
	ctrl := mem.Attach(chip, 20)
	ctrl.PokeWords(0x400, []raw.Word{1, 2, 3, 4, 5, 6, 7, 8})

	var got raw.Word
	fw := &fwSeq{steps: []func(e *raw.Exec){
		func(e *raw.Exec) {
			e.CacheRead(func() raw.Word { return 0x403 }, func(w raw.Word) { got = w })
		},
		func(e *raw.Exec) {
			e.CacheWrite(func() raw.Word { return 0x404 }, func() raw.Word { return 0x99 })
		},
	}}
	chip.Tile(10).Exec().SetFirmware(fw)
	chip.Run(300)
	if got != 4 {
		t.Fatalf("read %d, want 4", got)
	}
	if ctrl.Reads != 1 {
		t.Fatalf("controller served %d reads, want 1 (write hit the cached line)", ctrl.Reads)
	}
}

// TestWriteBackReachesDRAM forces an eviction and checks DRAM contents.
func TestWriteBackReachesDRAM(t *testing.T) {
	chip := raw.NewChip(raw.DefaultConfig())
	ctrl := mem.Attach(chip, 8)

	// Three conflicting lines (2-way set): the first, dirtied, must be
	// written back when the third arrives.
	const stride = 4096
	fw := &fwSeq{steps: []func(e *raw.Exec){
		func(e *raw.Exec) {
			e.CacheWrite(func() raw.Word { return 0x40 }, func() raw.Word { return 0xabc })
		},
		func(e *raw.Exec) { e.CacheRead(func() raw.Word { return 0x40 + stride }, nil) },
		func(e *raw.Exec) { e.CacheRead(func() raw.Word { return 0x40 + 2*stride }, nil) },
	}}
	chip.Tile(0).Exec().SetFirmware(fw)
	chip.Run(400)
	if ctrl.Writes != 1 {
		t.Fatalf("controller served %d writes, want 1", ctrl.Writes)
	}
	if ctrl.Peek(0x40) != 0xabc {
		t.Fatalf("DRAM[0x40] = %#x, want 0xabc", ctrl.Peek(0x40))
	}
}

// TestServiceInterval checks that a non-zero service interval separates
// two tiles' read completions.
func TestServiceInterval(t *testing.T) {
	measure := func(interval int) int64 {
		chip := raw.NewChip(raw.DefaultConfig())
		ctrl := mem.Attach(chip, 5)
		ctrl.ServiceInterval = interval
		var done [2]int64
		for i, tile := range []int{0, 1} {
			i := i
			chip.Tile(tile).Exec().SetFirmware(&fwSeq{steps: []func(e *raw.Exec){
				func(e *raw.Exec) {
					e.CacheRead(func() raw.Word { return raw.Word(0x1000 * (i + 1)) },
						func(raw.Word) { done[i] = chip.Cycle() })
				},
			}})
		}
		chip.Run(300)
		if done[0] == 0 || done[1] == 0 {
			t.Fatal("reads did not complete")
		}
		d := done[1] - done[0]
		if d < 0 {
			d = -d
		}
		return d
	}
	fast := measure(0)
	slow := measure(40)
	if slow <= fast {
		t.Fatalf("service interval had no effect: gap %d vs %d", slow, fast)
	}
}
