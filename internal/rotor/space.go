package rotor

import "sort"

// SpaceSize returns |Hdr|^n × |Token| — the unminimized configuration
// space of §6.1. For the 4-port router this is 5⁴ × 4 = 2,500.
func SpaceSize(n int) int {
	size := n // token positions
	for i := 0; i < n; i++ {
		size *= n + 1 // each header: empty or one of n egresses
	}
	return size
}

// EnumerateSpace calls f for every global configuration of an n-tile ring
// and returns the number visited.
func EnumerateSpace(n int, f func(GlobalConfig, Allocation)) int {
	hdrs := make([]Hdr, n)
	count := 0
	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			for token := 0; token < n; token++ {
				g := GlobalConfig{Hdrs: append([]Hdr(nil), hdrs...), Token: token}
				count++
				if f != nil {
					f(g, Allocate(g))
				}
			}
			return
		}
		for h := 0; h <= n; h++ {
			hdrs[pos] = Hdr(h)
			rec(pos + 1)
		}
	}
	rec(0)
	return count
}

// ConfigKey is the identity under which per-tile configurations are
// deduplicated: the Table 6.1 client assignment plus the expansion
// numbers. (The §6.2 in-blocked boolean parameterizes the tile processor,
// not the switch routine, so it is not part of the switch-code identity.)
type ConfigKey struct {
	Out, CWNext, CCWNext     Client
	OutHops, CWHops, CCWHops uint8
}

// Key returns the dedup identity of a tile configuration.
func (t TileConfig) Key() ConfigKey {
	return ConfigKey{
		Out: t.Out, CWNext: t.CWNext, CCWNext: t.CCWNext,
		OutHops: t.OutHops, CWHops: t.CWHops, CCWHops: t.CCWHops,
	}
}

// MinimizedConfigs enumerates the whole global space of an n-tile ring and
// returns the distinct per-tile configurations the allocator can ever
// produce, in a deterministic order. For n = 4 this is the
// "self-sufficient subset of 32 entries" of §6.2.
func MinimizedConfigs(n int) []ConfigKey {
	seen := make(map[ConfigKey]bool)
	EnumerateSpace(n, func(_ GlobalConfig, a Allocation) {
		for _, t := range a.Tiles {
			seen[t.Key()] = true
		}
	})
	keys := make([]ConfigKey, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func keyLess(a, b ConfigKey) bool {
	av := [6]uint8{uint8(a.Out), a.OutHops, uint8(a.CWNext), a.CWHops, uint8(a.CCWNext), a.CCWHops}
	bv := [6]uint8{uint8(b.Out), b.OutHops, uint8(b.CWNext), b.CWHops, uint8(b.CCWNext), b.CCWHops}
	for i := range av {
		if av[i] != bv[i] {
			return av[i] < bv[i]
		}
	}
	return false
}

// DegradedConfigs enumerates every global configuration reachable with
// one dead tile — all dead-tile choices, all live-header combinations,
// all live token positions — and returns the distinct per-tile
// configurations the degraded allocator can produce, deterministically
// ordered. These are the switch routines a surviving tile may need after
// fault recovery.
func DegradedConfigs(n int) []ConfigKey {
	seen := make(map[ConfigKey]bool)
	prio := make([]uint8, n)
	hdrs := make([]Hdr, n)
	for dead := 0; dead < n; dead++ {
		var rec func(pos int)
		rec = func(pos int) {
			if pos == n {
				for token := 0; token < n; token++ {
					if token == dead {
						continue
					}
					g := GlobalConfig{Hdrs: append([]Hdr(nil), hdrs...), Token: token}
					a := AllocateDegraded(g, prio, dead)
					for i, t := range a.Tiles {
						if i != dead {
							seen[t.Key()] = true
						}
					}
				}
				return
			}
			if pos == dead {
				hdrs[pos] = HdrEmpty
				rec(pos + 1)
				return
			}
			for h := 0; h <= n; h++ {
				if Hdr(h).Dest() == dead {
					continue // no stream targets the dead egress
				}
				hdrs[pos] = Hdr(h)
				rec(pos + 1)
			}
		}
		rec(0)
	}
	keys := make([]ConfigKey, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

// ReadmitConfigs enumerates every per-tile configuration the probation
// allocator (AllocateReadmit) can produce, over all choices of joining
// tile, all header combinations (the joining tile's own header is empty;
// other tiles may target the quarantined egress and get blocked), and
// all token positions — the re-admitted tile takes the token first, so
// token == joining is reachable. These are the transition slots of the
// fault-tolerant jump table: appended after the degraded configurations
// so healthy entries stay bitwise unchanged.
func ReadmitConfigs(n int) []ConfigKey {
	seen := make(map[ConfigKey]bool)
	prio := make([]uint8, n)
	hdrs := make([]Hdr, n)
	for joining := 0; joining < n; joining++ {
		var rec func(pos int)
		rec = func(pos int) {
			if pos == n {
				for token := 0; token < n; token++ {
					g := GlobalConfig{Hdrs: append([]Hdr(nil), hdrs...), Token: token}
					a := AllocateReadmit(g, prio, joining)
					for _, t := range a.Tiles {
						seen[t.Key()] = true
					}
				}
				return
			}
			if pos == joining {
				hdrs[pos] = HdrEmpty
				rec(pos + 1)
				return
			}
			for h := 0; h <= n; h++ {
				hdrs[pos] = Hdr(h)
				rec(pos + 1)
			}
		}
		rec(0)
	}
	keys := make([]ConfigKey, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

// ConfigIndex maps every reachable per-tile configuration to its slot in
// the switch-code jump table.
type ConfigIndex struct {
	keys  []ConfigKey
	index map[ConfigKey]int
}

// NewConfigIndex builds the jump-table index for an n-tile ring.
func NewConfigIndex(n int) *ConfigIndex {
	keys := MinimizedConfigs(n)
	ci := &ConfigIndex{keys: keys, index: make(map[ConfigKey]int, len(keys))}
	for i, k := range keys {
		ci.index[k] = i
	}
	return ci
}

// NewConfigIndexFT builds the fault-tolerant jump-table index: the
// healthy minimized configurations in their usual slots, followed by any
// configurations only the degraded allocator can produce, followed by
// the re-admission transition slots probation quanta can produce.
// Healthy slot numbers are unchanged, so programs generated against
// NewConfigIndex and NewConfigIndexFT dispatch healthy traffic
// identically.
func NewConfigIndexFT(n int) *ConfigIndex {
	ci := NewConfigIndex(n)
	for _, k := range DegradedConfigs(n) {
		if _, ok := ci.index[k]; !ok {
			ci.index[k] = len(ci.keys)
			ci.keys = append(ci.keys, k)
		}
	}
	for _, k := range ReadmitConfigs(n) {
		if _, ok := ci.index[k]; !ok {
			ci.index[k] = len(ci.keys)
			ci.keys = append(ci.keys, k)
		}
	}
	return ci
}

// Len returns the number of distinct configurations.
func (ci *ConfigIndex) Len() int { return len(ci.keys) }

// Of returns the jump-table slot of a tile configuration.
func (ci *ConfigIndex) Of(t TileConfig) int {
	i, ok := ci.index[t.Key()]
	if !ok {
		panic("rotor: configuration outside the minimized space")
	}
	return i
}

// Key returns the configuration at slot i.
func (ci *ConfigIndex) Key(i int) ConfigKey { return ci.keys[i] }

// UnminimizedIMemNeed returns the §6.1 arithmetic: with SPACE
// configurations sharing an 8,192-word instruction memory, how many
// instruction words are available per configuration ("approximately 3.3
// instructions ... obviously not enough").
func UnminimizedIMemNeed(n, imemWords int) float64 {
	return float64(imemWords) / float64(SpaceSize(n))
}
