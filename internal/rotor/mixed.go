package rotor

import "sort"

// Mixed unicast/multicast allocation — the §8.6 extension carried to full
// fidelity. Each tile's request is a member bitmask: a singleton mask is
// ordinary unicast and may take either ring direction (shortest arc
// first, exactly like Allocate); a multi-member mask travels clockwise
// only, fanout-splitting at every served member. Service is incremental:
// members whose egress is taken, or beyond the reachable clockwise arc,
// wait for a later quantum.

// MixedAllocation is the outcome of one mixed quantum.
type MixedAllocation struct {
	// Served[i] is the subset of input i's request granted this quantum.
	Served []McastReq
	// Tiles are the per-tile switch configurations; multicast tiles may
	// feed out and cwnext from the same client.
	Tiles []TileConfig
	// OutSrc[d] is the input whose stream feeds egress d this quantum
	// (-1 when idle) — the egress-header information every crossbar
	// processor needs.
	OutSrc []int
}

// AllocateMixed runs the token walk over member bitmasks.
func AllocateMixed(reqs []McastReq, token int) MixedAllocation {
	n := len(reqs)
	outClaimed := make([]bool, n)
	cwBusy := make([]bool, n)
	ccwBusy := make([]bool, n)
	a := MixedAllocation{
		Served: make([]McastReq, n),
		Tiles:  make([]TileConfig, n),
		OutSrc: make([]int, n),
	}
	for i := range a.OutSrc {
		a.OutSrc[i] = -1
	}

	for k := 0; k < n; k++ {
		i := (token + k) % n
		req := reqs[i]
		if req == 0 {
			continue
		}
		if req.Count() == 1 {
			// Unicast: identical to Allocate's policy.
			d := 0
			for !req.Has(d) {
				d++
			}
			if outClaimed[d] {
				a.Tiles[i].InBlocked = true
				continue
			}
			cwHops := (d - i + n) % n
			if cwHops == 0 {
				outClaimed[d] = true
				a.Served[i] = req
				a.OutSrc[d] = i
				paint(a.Tiles, Transfer{Src: i, Dst: d, CW: true, Hops: 0}, n)
				continue
			}
			granted := false
			for _, o := range directionOrder(i, d, n) {
				busy := cwBusy
				if !o.cw {
					busy = ccwBusy
				}
				if pathFree(busy, i, o.hops, o.cw, n) {
					claimPath(busy, i, o.hops, o.cw, n)
					outClaimed[d] = true
					a.Served[i] = req
					a.OutSrc[d] = i
					paint(a.Tiles, Transfer{Src: i, Dst: d, CW: o.cw, Hops: o.hops}, n)
					granted = true
					break
				}
			}
			if !granted {
				a.Tiles[i].InBlocked = true
			}
			continue
		}

		// Multicast: clockwise arc with fanout-splitting.
		var members []int // clockwise hop distances, ascending
		for h := 0; h < n; h++ {
			d := (i + h) % n
			if req.Has(d) && !outClaimed[d] {
				members = append(members, h)
			}
		}
		sort.Ints(members)
		maxReach := 0
		for m := 0; m < n-1; m++ {
			if cwBusy[(i+m)%n] {
				break
			}
			maxReach = m + 1
		}
		var served []int
		for _, h := range members {
			if h <= maxReach {
				served = append(served, h)
			}
		}
		if len(served) == 0 {
			a.Tiles[i].InBlocked = true
			continue
		}
		arc := served[len(served)-1]
		claimPath(cwBusy, i, arc, true, n)
		for _, h := range served {
			d := (i + h) % n
			outClaimed[d] = true
			a.Served[i] |= 1 << d
			a.OutSrc[d] = i
		}
		for h := 0; h <= arc; h++ {
			t := (i + h) % n
			cl := ClCWPrev
			if h == 0 {
				cl = ClIn
			}
			if a.Served[i].Has(t) {
				a.Tiles[t].Out = cl
				a.Tiles[t].OutHops = uint8(h)
			}
			if h < arc {
				a.Tiles[t].CWNext = cl
				a.Tiles[t].CWHops = uint8(h)
			}
		}
	}
	return a
}

// MixedConfigs enumerates every per-tile configuration the mixed
// allocator can produce over the full request space (16 masks per tile ×
// n tokens) — the multicast analogue of MinimizedConfigs. For n = 4 the
// space has 16⁴×4 = 262,144 global configurations.
func MixedConfigs(n int) []ConfigKey {
	seen := make(map[ConfigKey]bool)
	reqs := make([]McastReq, n)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == n {
			for token := 0; token < n; token++ {
				a := AllocateMixed(reqs, token)
				for _, tc := range a.Tiles {
					seen[tc.Key()] = true
				}
			}
			return
		}
		for m := 0; m < 1<<n; m++ {
			reqs[pos] = McastReq(m)
			rec(pos + 1)
		}
	}
	rec(0)
	keys := make([]ConfigKey, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

// NewMixedConfigIndex builds the jump-table index over the mixed space.
func NewMixedConfigIndex(n int) *ConfigIndex {
	keys := MixedConfigs(n)
	ci := &ConfigIndex{keys: keys, index: make(map[ConfigKey]int, len(keys))}
	for i, k := range keys {
		ci.index[k] = i
	}
	return ci
}
