// Fuzz harness for the Rotating Crossbar allocation walk: for arbitrary
// ring sizes, header vectors, and token positions, the schedule must
// grant each egress at most once, claim each directed ring link at most
// once, keep Granted consistent with Transfers, and always serve the
// token master.
package rotor_test

import (
	"testing"

	"repro/internal/rotor"
)

func FuzzAllocate(f *testing.F) {
	f.Add([]byte{2, 0, 1, 2, 3, 4})
	f.Add([]byte{6, 3, 1, 1, 1, 1, 1, 1})       // all-to-one
	f.Add([]byte{4, 1, 2, 3, 4, 1})             // rotated permutation
	f.Add([]byte{7, 5, 0, 0, 0, 0, 0, 0, 0})    // all empty
	f.Add([]byte{3, 2, 3, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		n := 2 + int(data[0])%7 // ring of 2..8 crossbar tiles
		token := int(data[1]) % n
		hdrs := make([]rotor.Hdr, n)
		for i := range hdrs {
			var b byte
			if 2+i < len(data) {
				b = data[2+i]
			}
			if v := int(b) % (n + 1); v > 0 {
				hdrs[i] = rotor.HdrTo(v - 1)
			}
		}
		a := rotor.Allocate(rotor.GlobalConfig{Hdrs: hdrs, Token: token})

		granted := make([]bool, n)
		egress := make([]bool, n)
		cwLink := make([]bool, n)  // clockwise link leaving tile i
		ccwLink := make([]bool, n) // counterclockwise link leaving tile i
		for _, tr := range a.Transfers {
			if tr.Src < 0 || tr.Src >= n || tr.Dst < 0 || tr.Dst >= n {
				t.Fatalf("transfer %+v out of range for n=%d", tr, n)
			}
			if hdrs[tr.Src].Dest() != tr.Dst {
				t.Errorf("input %d granted egress %d but requested %d", tr.Src, tr.Dst, hdrs[tr.Src].Dest())
			}
			if granted[tr.Src] {
				t.Errorf("input %d granted twice in one quantum", tr.Src)
			}
			granted[tr.Src] = true
			if egress[tr.Dst] {
				t.Errorf("egress %d granted twice in one quantum", tr.Dst)
			}
			egress[tr.Dst] = true
			wantCW := (tr.Dst - tr.Src + n) % n
			wantCCW := (tr.Src - tr.Dst + n) % n
			if (tr.CW && tr.Hops != wantCW) || (!tr.CW && tr.Hops != wantCCW) {
				t.Errorf("transfer %+v: hop count inconsistent with ring distance (cw %d, ccw %d)", tr, wantCW, wantCCW)
			}
			for m := 0; m < tr.Hops; m++ {
				if tr.CW {
					j := (tr.Src + m) % n
					if cwLink[j] {
						t.Errorf("clockwise link %d claimed twice", j)
					}
					cwLink[j] = true
				} else {
					j := (tr.Src - m + n) % n
					if ccwLink[j] {
						t.Errorf("counterclockwise link %d claimed twice", j)
					}
					ccwLink[j] = true
				}
			}
		}
		for i := 0; i < n; i++ {
			if a.Granted[i] != granted[i] {
				t.Errorf("Granted[%d] = %v but transfers say %v", i, a.Granted[i], granted[i])
			}
			if granted[i] && hdrs[i] == rotor.HdrEmpty {
				t.Errorf("empty input %d was granted", i)
			}
		}
		if hdrs[token] != rotor.HdrEmpty && !a.Granted[token] {
			t.Errorf("token master %d (header to %d) was not granted — the walk must always serve the master first", token, hdrs[token].Dest())
		}
	})
}

// TestTokenRotationFair pins the fairness consequence of token rotation:
// under a sustained all-to-one pattern, exactly one input wins each
// quantum, and over n quanta with the token advancing each time, every
// input wins exactly once — for every ring size and every hotspot.
func TestTokenRotationFair(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for hot := 0; hot < n; hot++ {
			hdrs := make([]rotor.Hdr, n)
			for i := range hdrs {
				hdrs[i] = rotor.HdrTo(hot)
			}
			wins := make([]int, n)
			token := 0
			for q := 0; q < n; q++ {
				a := rotor.Allocate(rotor.GlobalConfig{Hdrs: hdrs, Token: token})
				if len(a.Transfers) != 1 {
					t.Fatalf("n=%d hot=%d token=%d: %d transfers for a single egress, want 1", n, hot, token, len(a.Transfers))
				}
				wins[a.Transfers[0].Src]++
				token = rotor.NextToken(token, n)
			}
			for i, w := range wins {
				if w != 1 {
					t.Errorf("n=%d hot=%d: input %d won %d of %d quanta, want exactly 1", n, hot, i, w, n)
				}
			}
		}
	}
}
