package rotor_test

import (
	"testing"

	"repro/internal/rotor"
)

// TestReadmitHealthyPrefixUnchanged: re-admission transition slots are
// appended to the fault-tolerant index; the healthy minimized prefix must
// stay bitwise identical so already-generated healthy routines keep their
// jump-table slots across degrade→restore cycles.
func TestReadmitHealthyPrefixUnchanged(t *testing.T) {
	healthy := rotor.NewConfigIndex(4)
	ft := rotor.NewConfigIndexFT(4)
	if ft.Len() < healthy.Len() {
		t.Fatalf("FT index smaller than healthy index: %d < %d", ft.Len(), healthy.Len())
	}
	for i := 0; i < healthy.Len(); i++ {
		if ft.Key(i) != healthy.Key(i) {
			t.Fatalf("healthy slot %d changed: %+v != %+v", i, ft.Key(i), healthy.Key(i))
		}
	}
}

// TestReadmitConfigsCovered: every configuration the probation allocator
// can reach is in the FT index (Of panics on a miss), over the full
// enumerated probation space.
func TestReadmitConfigsCovered(t *testing.T) {
	ci := rotor.NewConfigIndexFT(4)
	for _, k := range rotor.ReadmitConfigs(4) {
		var tc rotor.TileConfig
		tc.Out, tc.CWNext, tc.CCWNext = k.Out, k.CWNext, k.CCWNext
		tc.OutHops, tc.CWHops, tc.CCWHops = k.OutHops, k.CWHops, k.CCWHops
		_ = ci.Of(tc) // panics if absent
	}
}

// TestAllocateReadmitProperties: during probation the joining tile's
// egress is never granted, its ring links are usable for relay, no
// output or ring link is claimed twice, and the walk honors headers.
func TestAllocateReadmitProperties(t *testing.T) {
	n := 4
	prio := make([]uint8, n)
	hdrs := make([]rotor.Hdr, n)
	for joining := 0; joining < n; joining++ {
		var relayed bool
		var rec func(pos int)
		rec = func(pos int) {
			if pos == n {
				for token := 0; token < n; token++ {
					g := rotor.GlobalConfig{Hdrs: append([]rotor.Hdr(nil), hdrs...), Token: token}
					a := rotor.AllocateReadmit(g, prio, joining)
					outSeen := make([]bool, n)
					for _, tr := range a.Transfers {
						if tr.Dst == joining {
							t.Fatalf("joining=%d: quarantined egress granted (%+v)", joining, tr)
						}
						if g.Hdrs[tr.Src].Dest() != tr.Dst {
							t.Fatalf("joining=%d: transfer ignores header (%+v)", joining, tr)
						}
						if outSeen[tr.Dst] {
							t.Fatalf("joining=%d: output %d claimed twice", joining, tr.Dst)
						}
						outSeen[tr.Dst] = true
						// A multi-hop path whose arc crosses the joining
						// tile proves its ring links are usable for relay.
						for h := 1; h <= tr.Hops; h++ {
							step := tr.Src
							if tr.CW {
								step = (tr.Src + h) % n
							} else {
								step = (tr.Src - h + n) % n
							}
							if step == joining && step != tr.Dst {
								relayed = true
							}
						}
					}
					if a.Granted[joining] {
						t.Fatalf("joining=%d granted a transfer with an empty header", joining)
					}
				}
				return
			}
			if pos == joining {
				hdrs[pos] = rotor.HdrEmpty
				rec(pos + 1)
				return
			}
			for h := 0; h <= n; h++ {
				hdrs[pos] = rotor.Hdr(h)
				rec(pos + 1)
			}
		}
		rec(0)
		if !relayed {
			t.Fatalf("joining=%d: no allocation relays through the joining tile", joining)
		}
	}
}

// TestAllocateReadmitPanicsOnRequest: a probation tile that requests a
// transfer violates the protocol and must panic loudly, not corrupt the
// distributed schedule.
func TestAllocateReadmitPanicsOnRequest(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a requesting probation tile")
		}
	}()
	g := rotor.GlobalConfig{Hdrs: []rotor.Hdr{rotor.HdrTo(1), 0, 0, 0}, Token: 0}
	rotor.AllocateReadmit(g, make([]uint8, 4), 0)
}
