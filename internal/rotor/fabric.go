package rotor

import "repro/internal/stats"

// FabricConfig parameterizes the quantum-stepped Rotating Crossbar
// simulator — the fast model used for property tests, parameter sweeps,
// and the Chapter 8 extension studies. Cycle accounting mirrors the
// cycle-level router: one quantum costs OverheadCycles of control (header
// exchange, configuration dispatch — Figure 6-2) plus one cycle per body
// word streamed.
type FabricConfig struct {
	// Ports is the ring size (4 in the paper; §8.5 explores more).
	Ports int
	// QuantumWords caps one fragment (default 256 words = one 1,024-byte
	// packet).
	QuantumWords int
	// OverheadCycles is the per-quantum control cost (default 54,
	// calibrated against the cycle-level router).
	OverheadCycles int
	// InputDepth bounds each ingress queue in packets (0 = unbounded;
	// §4.4 assumes large external buffering).
	InputDepth int
	// SecondNetwork adds the second Raw static network as a second pair
	// of ring channels — the §5.3 ablation.
	SecondNetwork bool
	// Weights, if set, give each port's token dwell in quanta — the
	// weighted round robin QoS of §5.4/§8.7.
	Weights []int
}

// DefaultFabricConfig returns the paper's configuration.
func DefaultFabricConfig() FabricConfig {
	return FabricConfig{Ports: DefaultPorts, QuantumWords: 256, OverheadCycles: 54}
}

// FabricPkt is a packet queued at a fabric input.
type FabricPkt struct {
	Dst   int
	Words int
	// Enq is the cycle the packet entered the input queue.
	Enq int64
	// Tag is an opaque caller identifier carried to delivery (used by
	// multi-fabric simulations such as the §8.8 LEO constellation).
	Tag int64
}

// Fabric is the quantum-stepped Rotating Crossbar.
type Fabric struct {
	cfg   FabricConfig
	inq   [][]FabricPkt
	sent  []int // words already sent of each head packet
	token int
	dwell int

	// Cycles is simulated time.
	Cycles int64
	// Quanta counts routing quanta.
	Quanta int64
	// WordsOut / PktsOut / BytesOut count goodput per egress.
	WordsOut []int64
	PktsOut  []int64
	// GrantsPerInput counts quanta each input sent in.
	GrantsPerInput []int64
	// BlockedPerInput counts quanta each input was denied while
	// backlogged.
	BlockedPerInput []int64
	// Latency is packet queue-to-delivery latency in cycles.
	Latency *stats.Histogram
	// PadWords counts bandwidth lost to padding short fragments up to
	// the quantum's streaming length.
	PadWords int64
	// Drops counts packets rejected by bounded input queues.
	Drops int64
	// OnDeliver, if non-nil, is called for every completed packet with
	// its egress port.
	OnDeliver func(port int, pkt FabricPkt)
}

// NewFabric builds a fabric.
func NewFabric(cfg FabricConfig) *Fabric {
	if cfg.Ports < 2 {
		panic("rotor: fabric needs at least 2 ports")
	}
	if cfg.QuantumWords <= 0 {
		cfg.QuantumWords = 256
	}
	if cfg.OverheadCycles < 0 {
		cfg.OverheadCycles = 0
	}
	if cfg.Weights != nil && len(cfg.Weights) != cfg.Ports {
		panic("rotor: weights must match port count")
	}
	return &Fabric{
		cfg:             cfg,
		inq:             make([][]FabricPkt, cfg.Ports),
		sent:            make([]int, cfg.Ports),
		WordsOut:        make([]int64, cfg.Ports),
		PktsOut:         make([]int64, cfg.Ports),
		GrantsPerInput:  make([]int64, cfg.Ports),
		BlockedPerInput: make([]int64, cfg.Ports),
		Latency:         stats.NewHistogram(24),
	}
}

// Config returns the fabric configuration.
func (f *Fabric) Config() FabricConfig { return f.cfg }

// Token returns the current master tile.
func (f *Fabric) Token() int { return f.token }

// Offer enqueues a packet at input port, reporting false on overflow.
func (f *Fabric) Offer(port int, dst, words int) bool {
	return f.OfferTagged(port, dst, words, 0)
}

// OfferTagged is Offer with a caller tag carried to delivery.
func (f *Fabric) OfferTagged(port int, dst, words int, tag int64) bool {
	if f.cfg.InputDepth > 0 && len(f.inq[port]) >= f.cfg.InputDepth {
		f.Drops++
		return false
	}
	f.inq[port] = append(f.inq[port], FabricPkt{Dst: dst, Words: words, Enq: f.Cycles, Tag: tag})
	return true
}

// QueueLen returns the packets waiting at an input.
func (f *Fabric) QueueLen(port int) int { return len(f.inq[port]) }

// Headers returns this quantum's header vector (head-of-line packets).
func (f *Fabric) Headers() []Hdr {
	hdrs := make([]Hdr, f.cfg.Ports)
	for i, q := range f.inq {
		if len(q) > 0 {
			hdrs[i] = HdrTo(q[0].Dst)
		}
	}
	return hdrs
}

// StepQuantum advances one routing quantum and returns the allocation it
// executed.
func (f *Fabric) StepQuantum() Allocation {
	hdrs := f.Headers()
	g := GlobalConfig{Hdrs: hdrs, Token: f.token}
	var a Allocation
	if f.cfg.SecondNetwork {
		a = AllocateChannels(g, 2)
	} else {
		a = Allocate(g)
	}

	// The streaming length of this quantum: the longest granted fragment.
	// All granted streams run in lockstep for L cycles (short ones pad).
	L := 0
	frag := make([]int, f.cfg.Ports)
	for i := range f.inq {
		if !a.Granted[i] {
			if hdrs[i] != HdrEmpty {
				f.BlockedPerInput[i]++
			}
			continue
		}
		p := &f.inq[i][0]
		n := p.Words - f.sent[i]
		if n > f.cfg.QuantumWords {
			n = f.cfg.QuantumWords
		}
		frag[i] = n
		if n > L {
			L = n
		}
	}

	for i := range f.inq {
		if !a.Granted[i] {
			continue
		}
		f.GrantsPerInput[i]++
		p := &f.inq[i][0]
		f.sent[i] += frag[i]
		f.PadWords += int64(L - frag[i])
		f.WordsOut[p.Dst] += int64(frag[i])
		if f.sent[i] >= p.Words {
			f.PktsOut[p.Dst]++
			f.Latency.Observe(f.Cycles + int64(f.cfg.OverheadCycles+L) - p.Enq)
			if f.OnDeliver != nil {
				f.OnDeliver(p.Dst, *p)
			}
			f.inq[i] = f.inq[i][1:]
			f.sent[i] = 0
		}
	}

	f.Cycles += int64(f.cfg.OverheadCycles + L)
	f.Quanta++

	// Rotate the token, honoring QoS weights (§8.7).
	f.dwell++
	w := 1
	if f.cfg.Weights != nil {
		w = f.cfg.Weights[f.token]
		if w < 1 {
			w = 1
		}
	}
	if f.dwell >= w {
		f.token = NextToken(f.token, f.cfg.Ports)
		f.dwell = 0
	}
	return a
}

// TotalWords returns goodput words delivered.
func (f *Fabric) TotalWords() int64 {
	var t int64
	for _, w := range f.WordsOut {
		t += w
	}
	return t
}

// TotalPkts returns packets delivered.
func (f *Fabric) TotalPkts() int64 {
	var t int64
	for _, p := range f.PktsOut {
		t += p
	}
	return t
}

// GoodputGbps converts delivered words to gigabits per second at clockHz.
func (f *Fabric) GoodputGbps(clockHz float64) float64 {
	return stats.Gbps(f.TotalWords()*4, f.Cycles, clockHz)
}

// AllocateChannels is Allocate with ch parallel ring channel pairs — the
// §5.3 second-static-network ablation. A transfer blocked on channel 0's
// clockwise and counterclockwise rings retries on channel 1, and so on.
// Egress ports remain single-channel (an Egress Processor consumes one
// word per cycle no matter how many networks feed the crossbar), which is
// the topological reason §5.3 finds the second network does not help.
func AllocateChannels(g GlobalConfig, ch int) Allocation {
	n := len(g.Hdrs)
	outClaimed := make([]bool, n)
	cwBusy := make([][]bool, ch)
	ccwBusy := make([][]bool, ch)
	for c := 0; c < ch; c++ {
		cwBusy[c] = make([]bool, n)
		ccwBusy[c] = make([]bool, n)
	}
	a := Allocation{Granted: make([]bool, n), Tiles: make([]TileConfig, n)}
	for k := 0; k < n; k++ {
		i := (g.Token + k) % n
		d := g.Hdrs[i].Dest()
		if d < 0 {
			continue
		}
		if outClaimed[d] {
			a.Tiles[i].InBlocked = true
			continue
		}
		cwHops := (d - i + n) % n
		if cwHops == 0 {
			outClaimed[d] = true
			a.Granted[i] = true
			a.Transfers = append(a.Transfers, Transfer{Src: i, Dst: d, CW: true, Hops: 0})
			continue
		}
		granted := false
		for c := 0; c < ch && !granted; c++ {
			for _, o := range directionOrder(i, d, n) {
				busy := cwBusy[c]
				if !o.cw {
					busy = ccwBusy[c]
				}
				if pathFree(busy, i, o.hops, o.cw, n) {
					claimPath(busy, i, o.hops, o.cw, n)
					granted = true
					a.Transfers = append(a.Transfers, Transfer{Src: i, Dst: d, CW: o.cw, Hops: o.hops})
					break
				}
			}
		}
		if granted {
			outClaimed[d] = true
			a.Granted[i] = true
		} else {
			a.Tiles[i].InBlocked = true
		}
	}
	// Per-tile switch configurations are only well defined for the single
	// physical network (two channels can pass two streams through one
	// tile in the same direction); the ablation consumes Granted only.
	if ch == 1 {
		for _, tr := range a.Transfers {
			paint(a.Tiles, tr, n)
		}
	}
	return a
}
