package rotor_test

import (
	"testing"
	"testing/quick"

	"repro/internal/rotor"
	"repro/internal/traffic"
)

// TestFigure5_1AllFourRoute reproduces the worked example of §5.2 /
// Figure 5-1: with the token at port 0 and destinations (2,3,0,1), all
// four ingress processors send simultaneously — ports 0 and 2 clockwise,
// ports 1 and 3 counterclockwise.
func TestFigure5_1AllFourRoute(t *testing.T) {
	g := rotor.GlobalConfig{
		Hdrs:  []rotor.Hdr{rotor.HdrTo(2), rotor.HdrTo(3), rotor.HdrTo(0), rotor.HdrTo(1)},
		Token: 0,
	}
	a := rotor.Allocate(g)
	if len(a.Transfers) != 4 {
		t.Fatalf("granted %d transfers, want 4", len(a.Transfers))
	}
	dir := map[int]bool{} // src -> cw
	for _, tr := range a.Transfers {
		dir[tr.Src] = tr.CW
		if tr.Hops != 2 {
			t.Fatalf("transfer %d->%d took %d hops, want 2", tr.Src, tr.Dst, tr.Hops)
		}
	}
	if !dir[0] || dir[1] || !dir[2] || dir[3] {
		t.Fatalf("directions src->cw = %v, want 0,2 clockwise and 1,3 counterclockwise", dir)
	}
	for i := 0; i < 4; i++ {
		if !a.Granted[i] || a.Tiles[i].InBlocked {
			t.Fatalf("input %d not granted", i)
		}
	}
}

// TestSpaceSize2500 checks the §6.1 arithmetic: |Hdr|⁴ × |Token| = 2,500,
// and that the unminimized space leaves only ≈3.3 instruction words per
// configuration in the 8,192-word memory.
func TestSpaceSize2500(t *testing.T) {
	if s := rotor.SpaceSize(4); s != 2500 {
		t.Fatalf("space size %d, want 2500", s)
	}
	if n := rotor.EnumerateSpace(4, nil); n != 2500 {
		t.Fatalf("enumerated %d configs, want 2500", n)
	}
	per := rotor.UnminimizedIMemNeed(4, 8192)
	if per < 3.2 || per > 3.4 {
		t.Fatalf("words per config %.2f, want ≈3.3 (§6.1)", per)
	}
}

// TestMinimizedConfigs checks the §6.2 minimization. The thesis reports a
// self-sufficient subset of 32 entries (a 78x reduction); our
// reconstruction of the underspecified walk yields 42 distinct per-tile
// switch routines (a 59x reduction) — same conclusion: the minimized
// space fits the 8,192-word memories with two orders of magnitude to
// spare, while the raw 2,500-config space does not.
func TestMinimizedConfigs(t *testing.T) {
	keys := rotor.MinimizedConfigs(4)
	if len(keys) != 27 {
		t.Fatalf("minimized to %d configs, want 27 (paper: 32)", len(keys))
	}
	reduction := float64(rotor.SpaceSize(4)) / float64(len(keys))
	if reduction < 50 {
		t.Fatalf("reduction %.0fx, want same order as the paper's 78x", reduction)
	}
	// Self-sufficiency: every allocation's per-tile configs are in the set.
	ci := rotor.NewConfigIndex(4)
	rotor.EnumerateSpace(4, func(_ rotor.GlobalConfig, a rotor.Allocation) {
		for _, tc := range a.Tiles {
			_ = ci.Of(tc) // panics if outside the set
		}
	})
	if ci.Len() != len(keys) {
		t.Fatalf("index has %d entries", ci.Len())
	}
}

// TestAllocationInvariants exhaustively checks, over all 2,500 global
// configurations, the properties Chapter 5 claims: no output claimed
// twice, no ring link claimed twice (deadlock-freedom by construction,
// §5.5), granted inputs' headers honored, blocked flags consistent.
func TestAllocationInvariants(t *testing.T) {
	n := 4
	count := rotor.EnumerateSpace(n, func(g rotor.GlobalConfig, a rotor.Allocation) {
		outSeen := make([]bool, n)
		cwSeen := make([]bool, n)
		ccwSeen := make([]bool, n)
		for _, tr := range a.Transfers {
			if g.Hdrs[tr.Src].Dest() != tr.Dst {
				t.Fatalf("%+v: transfer %v does not match header", g, tr)
			}
			if outSeen[tr.Dst] {
				t.Fatalf("%+v: output %d claimed twice", g, tr.Dst)
			}
			outSeen[tr.Dst] = true
			for m := 0; m < tr.Hops; m++ {
				if tr.CW {
					j := (tr.Src + m) % n
					if cwSeen[j] {
						t.Fatalf("%+v: cw link %d claimed twice", g, j)
					}
					cwSeen[j] = true
				} else {
					j := (tr.Src - m + n) % n
					if ccwSeen[j] {
						t.Fatalf("%+v: ccw link %d claimed twice", g, j)
					}
					ccwSeen[j] = true
				}
			}
		}
		for i := 0; i < n; i++ {
			want := g.Hdrs[i] != rotor.HdrEmpty && !a.Granted[i]
			if a.Tiles[i].InBlocked != want {
				t.Fatalf("%+v: tile %d blocked flag %v, want %v", g, i, a.Tiles[i].InBlocked, want)
			}
		}
	})
	if count != 2500 {
		t.Fatalf("visited %d configs", count)
	}
}

// TestMasterAlwaysGranted: the token holder with a non-empty header is
// always granted — the §5.4 fairness anchor.
func TestMasterAlwaysGranted(t *testing.T) {
	rotor.EnumerateSpace(4, func(g rotor.GlobalConfig, a rotor.Allocation) {
		if g.Hdrs[g.Token] != rotor.HdrEmpty && !a.Granted[g.Token] {
			t.Fatalf("master %d with header %v was denied", g.Token, g.Hdrs[g.Token])
		}
	})
}

// TestPermutationsAlwaysRoute: any conflict-free destination permutation
// routes completely in a single quantum on a single static network — the
// topological property behind §5.3's sufficiency claim.
func TestPermutationsAlwaysRoute(t *testing.T) {
	perms := permutations([]int{0, 1, 2, 3})
	for _, p := range perms {
		for token := 0; token < 4; token++ {
			hdrs := make([]rotor.Hdr, 4)
			for i, d := range p {
				hdrs[i] = rotor.HdrTo(d)
			}
			a := rotor.Allocate(rotor.GlobalConfig{Hdrs: hdrs, Token: token})
			if len(a.Transfers) != 4 {
				t.Fatalf("perm %v token %d: only %d transfers granted", p, token, len(a.Transfers))
			}
		}
	}
}

func permutations(s []int) [][]int {
	if len(s) <= 1 {
		return [][]int{append([]int(nil), s...)}
	}
	var out [][]int
	for i := range s {
		rest := append(append([]int(nil), s[:i]...), s[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]int{s[i]}, p...))
		}
	}
	return out
}

// TestTokenFairness (§5.4): with every input permanently backlogged, each
// input sends at least once in any window of Ports quanta.
func TestTokenFairness(t *testing.T) {
	f := rotor.NewFabric(rotor.DefaultFabricConfig())
	rng := traffic.NewRNG(11)
	// Adversarial backlog: everyone floods output 0.
	for q := 0; q < 400; q++ {
		for i := 0; i < 4; i++ {
			if f.QueueLen(i) < 4 {
				f.Offer(i, 0, 16)
			}
		}
		f.StepQuantum()
		_ = rng
	}
	for i := 0; i < 4; i++ {
		if f.GrantsPerInput[i] < 100-4 {
			t.Fatalf("input %d sent %d of ~100 fair shares", i, f.GrantsPerInput[i])
		}
	}
	// Windowed check: run again recording per-quantum grants.
	f2 := rotor.NewFabric(rotor.DefaultFabricConfig())
	var grants [][]bool
	for q := 0; q < 100; q++ {
		for i := 0; i < 4; i++ {
			if f2.QueueLen(i) < 4 {
				f2.Offer(i, 0, 16)
			}
		}
		a := f2.StepQuantum()
		grants = append(grants, append([]bool(nil), a.Granted...))
	}
	for start := 0; start+4 <= len(grants); start++ {
		for i := 0; i < 4; i++ {
			ok := false
			for w := 0; w < 4; w++ {
				if grants[start+w][i] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("input %d starved in quanta %d..%d", i, start, start+3)
			}
		}
	}
}

// TestUniformGrantRatio: under uniform i.i.d. destinations, the granted
// fraction per quantum sits near E[distinct outputs]/4 = 1-(3/4)^4·…
// ≈ 0.68 — which is exactly the paper's "average performance is only
// about 69% of the peak" (§7.3).
func TestUniformGrantRatio(t *testing.T) {
	f := rotor.NewFabric(rotor.DefaultFabricConfig())
	rng := traffic.NewRNG(77)
	var granted, offered int64
	for q := 0; q < 30000; q++ {
		for i := 0; i < 4; i++ {
			if f.QueueLen(i) < 2 {
				f.Offer(i, rng.Intn(4), 16)
			}
		}
		a := f.StepQuantum()
		for i := 0; i < 4; i++ {
			offered++
			if a.Granted[i] {
				granted++
			}
		}
	}
	ratio := float64(granted) / float64(offered)
	if ratio < 0.60 || ratio > 0.78 {
		t.Fatalf("uniform grant ratio %.3f, want ≈ 0.69 (§7.3)", ratio)
	}
}

// TestSecondNetworkNoHelp (§5.3): adding the second static network does
// not improve uniform-traffic throughput, because output contention, not
// ring bandwidth, binds.
func TestSecondNetworkNoHelp(t *testing.T) {
	run := func(second bool) int64 {
		cfg := rotor.DefaultFabricConfig()
		cfg.SecondNetwork = second
		f := rotor.NewFabric(cfg)
		rng := traffic.NewRNG(5)
		for q := 0; q < 20000; q++ {
			for i := 0; i < 4; i++ {
				if f.QueueLen(i) < 2 {
					f.Offer(i, rng.Intn(4), 64)
				}
			}
			f.StepQuantum()
		}
		return f.TotalWords()
	}
	one := run(false)
	two := run(true)
	diff := float64(two-one) / float64(one)
	if diff > 0.01 || diff < -0.01 {
		t.Fatalf("second network changed throughput by %.2f%% (one=%d two=%d); §5.3 predicts none",
			100*diff, one, two)
	}
}

// TestFabricConservation: every offered word is either still queued or
// delivered; completed packets arrive exactly once.
func TestFabricConservation(t *testing.T) {
	f := rotor.NewFabric(rotor.DefaultFabricConfig())
	rng := traffic.NewRNG(31)
	var offeredWords int64
	for q := 0; q < 5000; q++ {
		for i := 0; i < 4; i++ {
			if rng.Float64() < 0.7 && f.QueueLen(i) < 8 {
				w := 16 * (1 + rng.Intn(16))
				if f.Offer(i, rng.Intn(4), w) {
					offeredWords += int64(w)
				}
			}
		}
		f.StepQuantum()
	}
	// Drain.
	for q := 0; q < 20000; q++ {
		f.StepQuantum()
	}
	if f.TotalWords() != offeredWords {
		t.Fatalf("delivered %d words of %d offered", f.TotalWords(), offeredWords)
	}
}

// TestQoSWeightedToken (§8.7): a port with token weight 3 gets a
// proportionally larger share of a contended output.
func TestQoSWeightedToken(t *testing.T) {
	cfg := rotor.DefaultFabricConfig()
	cfg.Weights = []int{3, 1, 1, 1}
	f := rotor.NewFabric(cfg)
	for q := 0; q < 6000; q++ {
		for i := 0; i < 4; i++ {
			if f.QueueLen(i) < 2 {
				f.Offer(i, 2, 32) // everyone fights for output 2
			}
		}
		f.StepQuantum()
	}
	w0 := float64(f.GrantsPerInput[0])
	w1 := float64(f.GrantsPerInput[1])
	if w0/w1 < 1.5 {
		t.Fatalf("weighted port got %.0f grants vs %.0f: ratio %.2f, want > 1.5", w0, w1, w0/w1)
	}
}

// TestMulticastFanout (§8.6): one input reaches several egresses in one
// quantum via fanout-splitting.
func TestMulticastFanout(t *testing.T) {
	reqs := []rotor.McastReq{rotor.McastTo(1, 2, 3), 0, 0, 0}
	a := rotor.AllocateMcast(reqs, 0)
	if a.Granted[0].Count() != 3 {
		t.Fatalf("fanout served %d of 3 members", a.Granted[0].Count())
	}
	// Tiles 1 and 2 must both deliver and pass through.
	if a.Tiles[1].Out != rotor.ClCWPrev || a.Tiles[1].CWNext != rotor.ClCWPrev {
		t.Fatalf("tile 1 config %v", a.Tiles[1])
	}
	if a.Tiles[3].Out != rotor.ClCWPrev || a.Tiles[3].OutHops != 3 {
		t.Fatalf("tile 3 config %v", a.Tiles[3])
	}
}

// TestMulticastPartialService: contention trims the served subset, never
// the correctness.
func TestMulticastPartialService(t *testing.T) {
	reqs := []rotor.McastReq{rotor.McastTo(1), rotor.McastTo(1, 2), 0, 0}
	a := rotor.AllocateMcast(reqs, 0)
	if !a.Granted[0].Has(1) {
		t.Fatal("master's unicast-like request denied")
	}
	if a.Granted[1].Has(1) {
		t.Fatal("output 1 double-granted")
	}
	if !a.Granted[1].Has(2) {
		t.Fatal("free member 2 should be served")
	}
}

// TestAllocateProperty quick-checks invariants on random header vectors
// beyond the exhaustive 4-port sweep, at ring size 8 (§8.5 scaling).
func TestAllocateProperty(t *testing.T) {
	f := func(raw [8]uint8, token uint8) bool {
		n := 8
		hdrs := make([]rotor.Hdr, n)
		for i, r := range raw {
			hdrs[i] = rotor.Hdr(int(r) % (n + 1))
		}
		a := rotor.Allocate(rotor.GlobalConfig{Hdrs: hdrs, Token: int(token) % n})
		outSeen := make([]bool, n)
		for _, tr := range a.Transfers {
			if outSeen[tr.Dst] {
				return false
			}
			outSeen[tr.Dst] = true
			if tr.Hops < 0 || tr.Hops >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestHdrRoundTrip covers the header helpers.
func TestHdrRoundTrip(t *testing.T) {
	if rotor.HdrEmpty.Dest() != -1 {
		t.Fatal("empty header has a destination")
	}
	for d := 0; d < 4; d++ {
		if rotor.HdrTo(d).Dest() != d {
			t.Fatalf("HdrTo(%d) round trip failed", d)
		}
	}
}

// TestPaddingAccounting: mixed fragment lengths in one quantum cost
// padding, which the fabric reports.
func TestPaddingAccounting(t *testing.T) {
	f := rotor.NewFabric(rotor.DefaultFabricConfig())
	f.Offer(0, 1, 256) // long
	f.Offer(1, 2, 16)  // short: pads to 256 in the same quantum
	f.StepQuantum()
	if f.PadWords != 240 {
		t.Fatalf("padding %d words, want 240", f.PadWords)
	}
}

// TestMixedConfigsSupersetAndInvariants: the §8.6 mixed space contains
// the unicast space, stays small (51 entries for n=4), and every mixed
// allocation over a random sample respects the conflict-freedom
// invariants.
func TestMixedConfigsSupersetAndInvariants(t *testing.T) {
	mixed := rotor.MixedConfigs(4)
	if len(mixed) != 51 {
		t.Fatalf("mixed space has %d configs, want 51", len(mixed))
	}
	inMixed := map[rotor.ConfigKey]bool{}
	for _, k := range mixed {
		inMixed[k] = true
	}
	for _, k := range rotor.MinimizedConfigs(4) {
		if !inMixed[k] {
			t.Fatalf("unicast config %+v missing from mixed space", k)
		}
	}

	rng := traffic.NewRNG(321)
	for trial := 0; trial < 20000; trial++ {
		reqs := make([]rotor.McastReq, 4)
		for i := range reqs {
			reqs[i] = rotor.McastReq(rng.Intn(16))
		}
		token := rng.Intn(4)
		a := rotor.AllocateMixed(reqs, token)
		var outSeen rotor.McastReq
		for i := 0; i < 4; i++ {
			if a.Served[i]&^reqs[i] != 0 {
				t.Fatalf("reqs %v: input %d served unrequested members", reqs, i)
			}
			if a.Served[i]&outSeen != 0 {
				t.Fatalf("reqs %v token %d: egress double-granted", reqs, token)
			}
			outSeen |= a.Served[i]
		}
		// OutSrc consistency.
		for d := 0; d < 4; d++ {
			src := a.OutSrc[d]
			if outSeen.Has(d) != (src >= 0) {
				t.Fatalf("reqs %v: OutSrc[%d]=%d inconsistent with served set", reqs, d, src)
			}
			if src >= 0 && !a.Served[src].Has(d) {
				t.Fatalf("reqs %v: OutSrc[%d]=%d but input %d not serving it", reqs, d, src, src)
			}
		}
		// Master with a request is always served at least partially
		// (fairness extends to multicast).
		if reqs[token] != 0 && a.Served[token] == 0 {
			t.Fatalf("reqs %v: master %d fully denied", reqs, token)
		}
	}
}

// TestMixedUnicastMatchesAllocate: on unicast-only request vectors the
// mixed allocator grants exactly the same transfers as Allocate.
func TestMixedUnicastMatchesAllocate(t *testing.T) {
	rotor.EnumerateSpace(4, func(g rotor.GlobalConfig, a rotor.Allocation) {
		reqs := make([]rotor.McastReq, 4)
		for i, h := range g.Hdrs {
			if d := h.Dest(); d >= 0 {
				reqs[i] = rotor.McastTo(d)
			}
		}
		m := rotor.AllocateMixed(reqs, g.Token)
		for i := 0; i < 4; i++ {
			wantServed := rotor.McastReq(0)
			if a.Granted[i] {
				wantServed = rotor.McastTo(g.Hdrs[i].Dest())
			}
			if m.Served[i] != wantServed {
				t.Fatalf("%+v: input %d mixed served %v, unicast granted %v",
					g, i, m.Served[i], a.Granted[i])
			}
			if m.Tiles[i].Key() != a.Tiles[i].Key() {
				t.Fatalf("%+v: tile %d configs diverge: %v vs %v",
					g, i, m.Tiles[i], a.Tiles[i])
			}
		}
	})
}

// TestVOQIngressBeatsFIFO (§8.1): organizing the ingress buffers as
// virtual output queues removes head-of-line blocking and lifts uniform
// average throughput well above the paper's single-FIFO 69 %.
func TestVOQIngressBeatsFIFO(t *testing.T) {
	rng := traffic.NewRNG(6)
	cfg := rotor.DefaultFabricConfig()

	fifo := rotor.NewFabric(cfg)
	for q := 0; q < 30000; q++ {
		for p := 0; p < 4; p++ {
			if fifo.QueueLen(p) < 4 {
				fifo.Offer(p, rng.Intn(4), 64)
			}
		}
		fifo.StepQuantum()
	}

	voq := rotor.NewVOQFabric(cfg)
	for q := 0; q < 30000; q++ {
		for p := 0; p < 4; p++ {
			if voq.QueueLen(p) < 8 {
				voq.Offer(p, rng.Intn(4), 64)
			}
		}
		voq.StepQuantum()
	}

	fifoRatio := float64(fifo.TotalWords()) / float64(fifo.Cycles)
	voqRatio := float64(voq.TotalWords()) / float64(voq.Cycles)
	if voqRatio < fifoRatio*1.2 {
		t.Fatalf("VOQ ingress %.3f words/cycle vs FIFO %.3f: expected ≥ +20%%", voqRatio, fifoRatio)
	}
	var grants, offered int64
	for p := 0; p < 4; p++ {
		grants += voq.GrantsPerInput[p]
		offered += voq.GrantsPerInput[p] + voq.BlockedPerInput[p]
	}
	if ratio := float64(grants) / float64(offered); ratio < 0.85 {
		t.Fatalf("VOQ grant ratio %.3f, want ≥ 0.85 (HOL eliminated)", ratio)
	}
}

// TestVOQFragmentsStayOrdered: a multi-fragment packet pins its queue so
// fragments never interleave with other packets on the same egress.
func TestVOQFragmentsStayOrdered(t *testing.T) {
	cfg := rotor.DefaultFabricConfig()
	cfg.QuantumWords = 64
	f := rotor.NewVOQFabric(cfg)
	f.Offer(0, 1, 200) // 4 fragments
	f.Offer(0, 2, 32)  // would tempt the round-robin mid-packet
	for q := 0; q < 20; q++ {
		f.StepQuantum()
	}
	if f.PktsOut[1] != 1 || f.PktsOut[2] != 1 {
		t.Fatalf("deliveries %v", f.PktsOut)
	}
	if f.WordsOut[1] != 200 || f.WordsOut[2] != 32 {
		t.Fatalf("words %v", f.WordsOut)
	}
}

// TestPriorityArbitration (§8.7): under contention for one egress, the
// high-priority requester wins regardless of token position, and with
// equal priorities AllocatePrio degenerates to Allocate exactly.
func TestPriorityArbitration(t *testing.T) {
	// Inputs 1 and 3 both want egress 2; input 3 is high priority; the
	// token favors input 1.
	g := rotor.GlobalConfig{
		Hdrs:  []rotor.Hdr{0, rotor.HdrTo(2), 0, rotor.HdrTo(2)},
		Token: 1,
	}
	a := rotor.AllocatePrio(g, []uint8{0, 0, 0, 5})
	if !a.Granted[3] || a.Granted[1] {
		t.Fatalf("priority ignored: granted=%v", a.Granted)
	}
	// Equal priorities: identical to the plain walk, for the whole space.
	rotor.EnumerateSpace(4, func(g rotor.GlobalConfig, want rotor.Allocation) {
		got := rotor.AllocatePrio(g, []uint8{0, 0, 0, 0})
		for i := 0; i < 4; i++ {
			if got.Granted[i] != want.Granted[i] || got.Tiles[i].Key() != want.Tiles[i].Key() {
				t.Fatalf("%+v: equal-priority walk diverges at tile %d", g, i)
			}
		}
	})
}

// TestPriorityProtectsBandwidth: a high-priority flow keeps full service
// while best-effort flows fight over the leftovers.
func TestPriorityProtectsBandwidth(t *testing.T) {
	var hiGrants, loGrants int64
	token := 0
	for q := 0; q < 10000; q++ {
		// Input 0 is premium, always sending to egress 2; inputs 1-3 are
		// best effort, also flooding egress 2.
		g := rotor.GlobalConfig{
			Hdrs:  []rotor.Hdr{rotor.HdrTo(2), rotor.HdrTo(2), rotor.HdrTo(2), rotor.HdrTo(2)},
			Token: token,
		}
		a := rotor.AllocatePrio(g, []uint8{7, 0, 0, 0})
		if a.Granted[0] {
			hiGrants++
		}
		for i := 1; i < 4; i++ {
			if a.Granted[i] {
				loGrants++
			}
		}
		token = rotor.NextToken(token, 4)
	}
	if hiGrants != 10000 {
		t.Fatalf("premium input granted %d of 10000 quanta", hiGrants)
	}
	if loGrants != 0 {
		t.Fatalf("strict priority leaked %d grants to best effort on a saturated class", loGrants)
	}
}

// TestAllocationInvariantsN3N5: the walk's invariants hold for other ring
// sizes too (exhaustive at n=3, the 4^3*3 and 6^5*5 spaces).
func TestAllocationInvariantsN3N5(t *testing.T) {
	for _, n := range []int{3, 5} {
		hdrs := make([]rotor.Hdr, n)
		var rec func(pos int)
		rec = func(pos int) {
			if pos == n {
				for token := 0; token < n; token++ {
					a := rotor.Allocate(rotor.GlobalConfig{Hdrs: append([]rotor.Hdr(nil), hdrs...), Token: token})
					outSeen := make([]bool, n)
					for _, tr := range a.Transfers {
						if outSeen[tr.Dst] {
							t.Fatalf("n=%d: output %d double-granted", n, tr.Dst)
						}
						outSeen[tr.Dst] = true
					}
					if hdrs[token] != rotor.HdrEmpty && !a.Granted[token] {
						t.Fatalf("n=%d: master denied", n)
					}
				}
				return
			}
			for h := 0; h <= n; h++ {
				hdrs[pos] = rotor.Hdr(h)
				rec(pos + 1)
			}
		}
		rec(0)
	}
}

// TestMixedAllocatorExhaustive sweeps the entire 16^4 x 4 = 262,144 mixed
// request space and checks every §8.6 invariant. Skipped in -short mode.
func TestMixedAllocatorExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive mixed sweep skipped in -short mode")
	}
	reqs := make([]rotor.McastReq, 4)
	var rec func(pos int)
	count := 0
	rec = func(pos int) {
		if pos == 4 {
			for token := 0; token < 4; token++ {
				count++
				a := rotor.AllocateMixed(reqs, token)
				var outSeen rotor.McastReq
				for i := 0; i < 4; i++ {
					if a.Served[i]&^reqs[i] != 0 {
						t.Fatalf("reqs %v token %d: unrequested member served", reqs, token)
					}
					if a.Served[i]&outSeen != 0 {
						t.Fatalf("reqs %v token %d: egress double-granted", reqs, token)
					}
					outSeen |= a.Served[i]
				}
				if reqs[token] != 0 && a.Served[token] == 0 {
					t.Fatalf("reqs %v token %d: master fully denied", reqs, token)
				}
				for d := 0; d < 4; d++ {
					if outSeen.Has(d) != (a.OutSrc[d] >= 0) {
						t.Fatalf("reqs %v token %d: OutSrc inconsistent", reqs, token)
					}
				}
			}
			return
		}
		for m := 0; m < 16; m++ {
			reqs[pos] = rotor.McastReq(m)
			rec(pos + 1)
		}
	}
	rec(0)
	if count != 262144 {
		t.Fatalf("visited %d configurations", count)
	}
}
