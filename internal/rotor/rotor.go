// Package rotor implements the paper's primary contribution: the Rotating
// Crossbar — an efficient mapping of a router's dynamic switch-fabric
// communication pattern onto the compile-time static interconnect of the
// Raw processor's crossbar tiles (Chapters 5 and 6).
//
// The four Crossbar Processors form a ring with one full-duplex static
// link between neighbors (clockwise and counterclockwise channels). Each
// routing quantum, every crossbar tile holds at most one local packet
// header naming an egress port; a token — implemented as a synchronous
// counter local to every tile, never actually transmitted — names the
// master tile. All tiles exchange headers, then each runs the identical,
// deterministic allocation walk: starting at the master and proceeding
// downstream, each requester claims its egress port and a clockwise ring
// path if free, falling back to the counterclockwise path, else waiting
// for the next quantum. Because every tile computes the same allocation
// from the same inputs, no grants need to be communicated, and because the
// token advances each quantum, no input starves (§5.4) and no static
// network deadlock is possible (§5.5).
//
// The per-tile view of an allocation — which client (nothing, the local
// ingress, the clockwise-upstream stream, or the counterclockwise-upstream
// stream) feeds each of the tile's three servers (the egress link, the
// clockwise-downstream link, the counterclockwise-downstream link) — is
// the minimized configuration space of §6.2 / Table 6.1: the raw space of
// |Hdr|⁴ × |Token| = 5⁴×4 = 2,500 global configurations collapses to 32
// distinct per-tile configurations, small enough for a switch-code jump
// table in the 8,192-word tile memories.
package rotor

import "fmt"

// DefaultPorts is the paper's 4x4 router port count.
const DefaultPorts = 4

// Client identifies who feeds one of a crossbar tile's servers during the
// body phase (Table 6.1: clients are 0, in, cwprev, ccwprev).
type Client uint8

// The four clients of Table 6.1.
const (
	ClNone    Client = iota // server idle
	ClIn                    // the tile's own ingress processor
	ClCWPrev                // the stream arriving on the clockwise ring
	ClCCWPrev               // the stream arriving on the counterclockwise ring
)

// String returns the thesis's client names.
func (c Client) String() string {
	switch c {
	case ClNone:
		return "0"
	case ClIn:
		return "in"
	case ClCWPrev:
		return "cwprev"
	case ClCCWPrev:
		return "ccwprev"
	}
	return fmt.Sprintf("Client(%d)", uint8(c))
}

// TileConfig is one entry of the minimized configuration space: the client
// of each server (out, cwnext, ccwnext — Table 6.1), the expansion numbers
// (ring-hop distance from each stream's origin, which the switch code
// generator needs to software-pipeline route activation, §6.2), and the
// §6.2 boolean that is true when the tile's ingress cannot send this
// quantum.
type TileConfig struct {
	Out     Client
	CWNext  Client
	CCWNext Client
	// OutHops/CWHops/CCWHops are the expansion numbers: how many ring
	// hops the stream feeding that server has traveled when it reaches
	// this tile (0 for ClIn, else ≥ 1).
	OutHops   uint8
	CWHops    uint8
	CCWHops   uint8
	InBlocked bool
}

// Active reports whether the tile moves any words this quantum.
func (t TileConfig) Active() bool {
	return t.Out != ClNone || t.CWNext != ClNone || t.CCWNext != ClNone
}

// String renders the config in Table 6.1 vocabulary.
func (t TileConfig) String() string {
	blocked := ""
	if t.InBlocked {
		blocked = " in-blocked"
	}
	return fmt.Sprintf("out<-%s/%d cwnext<-%s/%d ccwnext<-%s/%d%s",
		t.Out, t.OutHops, t.CWNext, t.CWHops, t.CCWNext, t.CCWHops, blocked)
}

// Hdr is a crossbar tile's local header for a quantum: HdrEmpty when its
// ingress queue is empty, otherwise HdrTo(d) naming egress port d. With
// four ports |Hdr| = 5 (§6.1).
type Hdr uint8

// HdrEmpty is the empty-input header.
const HdrEmpty Hdr = 0

// HdrTo returns the header requesting egress port d.
func HdrTo(d int) Hdr { return Hdr(d + 1) }

// Dest returns the egress port, or -1 for HdrEmpty.
func (h Hdr) Dest() int { return int(h) - 1 }

// GlobalConfig is one point of the §6.1 configuration space.
type GlobalConfig struct {
	Hdrs  []Hdr // one per crossbar tile
	Token int
}

// Transfer is one granted input-to-output stream.
type Transfer struct {
	Src, Dst int
	// CW is the ring direction the stream takes.
	CW bool
	// Hops is the ring distance traveled (0 when Src's own egress is the
	// destination).
	Hops int
}

// Allocation is the deterministic outcome of the token walk for one
// global configuration.
type Allocation struct {
	Transfers []Transfer
	// Granted[i] reports whether input i sends this quantum.
	Granted []bool
	// Tiles[i] is crossbar tile i's minimized per-tile configuration.
	Tiles []TileConfig
}

// Allocate runs the Rotating Crossbar allocation walk (§5.1–§5.2) for an
// n-tile ring. All tiles run this same function on the same inputs, which
// is what makes the schedule distributed yet conflict-free.
func Allocate(g GlobalConfig) Allocation {
	n := len(g.Hdrs)
	if n < 2 {
		panic("rotor: ring needs at least two tiles")
	}
	if g.Token < 0 || g.Token >= n {
		panic("rotor: token out of range")
	}
	for i, h := range g.Hdrs {
		if d := h.Dest(); d >= n {
			panic(fmt.Sprintf("rotor: header at tile %d names egress %d of %d", i, d, n))
		}
	}
	order := make([]int, n)
	for k := 0; k < n; k++ {
		order[k] = (g.Token + k) % n
	}
	return allocateOrdered(g, order)
}

// pathOption is one candidate ring route.
type pathOption struct {
	cw   bool
	hops int
}

// directionOrder returns the candidate directions from tile i to egress d
// in preference order: shorter ring distance first, clockwise on ties.
// Preferring the shorter arc is what makes every conflict-free
// destination permutation routable in a single quantum on a single static
// network — the topological sufficiency property of §5.3. (A greedy
// clockwise-first walk can burn three links on a distance-1 destination
// and strand later requesters; see TestPermutationsAlwaysRoute.)
func directionOrder(i, d, n int) [2]pathOption {
	cwHops := (d - i + n) % n
	ccwHops := (i - d + n) % n
	if cwHops <= ccwHops {
		return [2]pathOption{{true, cwHops}, {false, ccwHops}}
	}
	return [2]pathOption{{false, ccwHops}, {true, cwHops}}
}

// pathFree checks the h consecutive ring links leaving tile i in the given
// direction.
func pathFree(busy []bool, i, h int, cw bool, n int) bool {
	for m := 0; m < h; m++ {
		var j int
		if cw {
			j = (i + m) % n
		} else {
			j = (i - m + n) % n
		}
		if busy[j] {
			return false
		}
	}
	return true
}

func claimPath(busy []bool, i, h int, cw bool, n int) {
	for m := 0; m < h; m++ {
		var j int
		if cw {
			j = (i + m) % n
		} else {
			j = (i - m + n) % n
		}
		busy[j] = true
	}
}

// paint writes one transfer into the per-tile configurations.
func paint(tiles []TileConfig, tr Transfer, n int) {
	if tr.Hops == 0 {
		tiles[tr.Src].Out = ClIn
		tiles[tr.Src].OutHops = 0
		return
	}
	if tr.CW {
		tiles[tr.Src].CWNext = ClIn
		tiles[tr.Src].CWHops = 0
		for m := 1; m < tr.Hops; m++ {
			t := (tr.Src + m) % n
			tiles[t].CWNext = ClCWPrev
			tiles[t].CWHops = uint8(m)
		}
		tiles[tr.Dst].Out = ClCWPrev
		tiles[tr.Dst].OutHops = uint8(tr.Hops)
		return
	}
	tiles[tr.Src].CCWNext = ClIn
	tiles[tr.Src].CCWHops = 0
	for m := 1; m < tr.Hops; m++ {
		t := (tr.Src - m + n) % n
		tiles[t].CCWNext = ClCCWPrev
		tiles[t].CCWHops = uint8(m)
	}
	tiles[tr.Dst].Out = ClCCWPrev
	tiles[tr.Dst].OutHops = uint8(tr.Hops)
}

// NextToken advances the token downstream (clockwise), as §5.2's "the
// token is passed to the next downstream crossbar tile".
func NextToken(token, n int) int { return (token + 1) % n }

// AllocatePrio is Allocate with per-tile priorities (§8.7: "letting
// Ingress Processors include priority information into the local header,
// and adding the arbitration code"): the walk serves priority classes
// strictly high-to-low, token order within a class. Every tile computes
// the same ordering from the same headers, so the schedule stays
// distributed. Strict priority protects high-class latency and bandwidth;
// a saturating high class can starve lower ones (the usual strict-priority
// trade — weighted tokens are the fairness-preserving alternative).
func AllocatePrio(g GlobalConfig, prio []uint8) Allocation {
	n := len(g.Hdrs)
	if len(prio) != n {
		panic("rotor: priority vector must match ring size")
	}
	order := make([]int, 0, n)
	var maxP uint8
	for _, p := range prio {
		if p > maxP {
			maxP = p
		}
	}
	for p := int(maxP); p >= 0; p-- {
		for k := 0; k < n; k++ {
			i := (g.Token + k) % n
			if int(prio[i]) == p {
				order = append(order, i)
			}
		}
	}
	return allocateOrdered(g, order)
}

// AllocateDegraded runs the prioritized allocation walk with one crossbar
// tile masked out of the fabric: the dead tile's egress is never granted
// and no ring path may enter or traverse it, so every stream falls back to
// the surviving ring direction (the CW/CCW fallback of §5.2 doing
// double duty as the fault-recovery path). The walk's order covers live
// tiles only — the token rotation skips the dead tile — so the schedule
// stays distributed: every surviving tile computes the same allocation
// from the same headers.
func AllocateDegraded(g GlobalConfig, prio []uint8, dead int) Allocation {
	n := len(g.Hdrs)
	if len(prio) != n {
		panic("rotor: priority vector must match ring size")
	}
	if dead < 0 || dead >= n {
		panic("rotor: dead tile out of range")
	}
	if g.Hdrs[dead] != HdrEmpty {
		panic("rotor: dead tile cannot request a transfer")
	}
	order := make([]int, 0, n-1)
	var maxP uint8
	for _, p := range prio {
		if p > maxP {
			maxP = p
		}
	}
	for p := int(maxP); p >= 0; p-- {
		for k := 0; k < n; k++ {
			i := (g.Token + k) % n
			if i != dead && int(prio[i]) == p {
				order = append(order, i)
			}
		}
	}
	return allocateMasked(g, order, dead)
}

// allocateOrdered runs the reservation walk over an explicit tile order.
func allocateOrdered(g GlobalConfig, order []int) Allocation {
	return allocateMasked(g, order, -1)
}

// allocateMasked is the reservation walk with an optional dead tile.
// Masking works entirely through the walk's existing claim state: the dead
// tile's egress starts claimed and both its outgoing ring links start
// busy. Any route terminating at the dead tile hits the out claim; any
// route entering it must also leave it and hits the busy link; so the
// unmodified path search simply routes around the hole — or blocks the
// requester, exactly as contention would.
func allocateMasked(g GlobalConfig, order []int, dead int) Allocation {
	return allocateSeeded(g, order, dead, dead)
}

// allocateSeeded is the reservation walk with pre-claimed resources:
// quarantined (if >= 0) has its egress claimed before the walk, severed
// (if >= 0) additionally has both its ring links claimed. Degraded mode
// severs the dead tile entirely; probation after re-admission only
// quarantines the joining tile's egress, leaving its ring links free so
// it relays traffic between its neighbors.
func allocateSeeded(g GlobalConfig, order []int, quarantined, severed int) Allocation {
	n := len(g.Hdrs)
	outClaimed := make([]bool, n)
	cwBusy := make([]bool, n)
	ccwBusy := make([]bool, n)
	if quarantined >= 0 {
		outClaimed[quarantined] = true
	}
	if severed >= 0 {
		cwBusy[severed] = true
		ccwBusy[severed] = true
	}
	a := Allocation{Granted: make([]bool, n), Tiles: make([]TileConfig, n)}
	for _, i := range order {
		d := g.Hdrs[i].Dest()
		if d < 0 {
			continue
		}
		if outClaimed[d] {
			a.Tiles[i].InBlocked = true
			continue
		}
		cwHops := (d - i + n) % n
		if cwHops == 0 {
			outClaimed[d] = true
			a.Granted[i] = true
			a.Transfers = append(a.Transfers, Transfer{Src: i, Dst: d, CW: true, Hops: 0})
			continue
		}
		granted := false
		for _, o := range directionOrder(i, d, n) {
			busy := cwBusy
			if !o.cw {
				busy = ccwBusy
			}
			if pathFree(busy, i, o.hops, o.cw, n) {
				claimPath(busy, i, o.hops, o.cw, n)
				outClaimed[d] = true
				a.Granted[i] = true
				a.Transfers = append(a.Transfers, Transfer{Src: i, Dst: d, CW: o.cw, Hops: o.hops})
				granted = true
				break
			}
		}
		if !granted {
			a.Tiles[i].InBlocked = true
		}
	}
	for _, tr := range a.Transfers {
		paint(a.Tiles, tr, n)
	}
	return a
}
