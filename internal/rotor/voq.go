package rotor

import "repro/internal/stats"

// VOQFabric is the §8.1 "pursuing full utilization" study: the paper's
// ingress keeps a single FIFO, so a head-of-line packet blocked on a busy
// egress idles the whole input (that is where the §7.3 69 % average
// comes from). Organizing each ingress's buffer as virtual output queues
// (§2.2.2's cure, applied to the Rotating Crossbar) lets the token walk
// pick, for each input, any queued output that is still free — no new
// switch code is needed, because every resulting transfer is still one of
// the minimized unicast configurations; only the ingress memory layout
// and the header-selection code change.
type VOQFabric struct {
	cfg FabricConfig
	// inq[port][dst] is the virtual output queue.
	inq   [][][]FabricPkt
	sent  []int // words sent of the in-progress head packet
	cur   []int // dst whose head packet is in progress (-1 = none)
	rr    []int // per-input round-robin pointer over outputs
	token int
	dwell int

	Cycles          int64
	Quanta          int64
	WordsOut        []int64
	PktsOut         []int64
	GrantsPerInput  []int64
	BlockedPerInput []int64
	Latency         *stats.Histogram
}

// NewVOQFabric builds the VOQ-ingress variant.
func NewVOQFabric(cfg FabricConfig) *VOQFabric {
	if cfg.Ports < 2 {
		panic("rotor: fabric needs at least 2 ports")
	}
	if cfg.QuantumWords <= 0 {
		cfg.QuantumWords = 256
	}
	f := &VOQFabric{
		cfg:             cfg,
		sent:            make([]int, cfg.Ports),
		cur:             make([]int, cfg.Ports),
		rr:              make([]int, cfg.Ports),
		WordsOut:        make([]int64, cfg.Ports),
		PktsOut:         make([]int64, cfg.Ports),
		GrantsPerInput:  make([]int64, cfg.Ports),
		BlockedPerInput: make([]int64, cfg.Ports),
		Latency:         stats.NewHistogram(24),
	}
	f.inq = make([][][]FabricPkt, cfg.Ports)
	for i := range f.inq {
		f.inq[i] = make([][]FabricPkt, cfg.Ports)
		f.cur[i] = -1
	}
	return f
}

// Offer enqueues a packet into input port's VOQ for dst.
func (f *VOQFabric) Offer(port, dst, words int) bool {
	if f.cfg.InputDepth > 0 && len(f.inq[port][dst]) >= f.cfg.InputDepth {
		return false
	}
	f.inq[port][dst] = append(f.inq[port][dst], FabricPkt{Dst: dst, Words: words, Enq: f.Cycles})
	return true
}

// QueueLen returns the total packets queued at an input.
func (f *VOQFabric) QueueLen(port int) int {
	n := 0
	for _, q := range f.inq[port] {
		n += len(q)
	}
	return n
}

// StepQuantum advances one quantum: the token walk picks, for each input
// in token order, a servable VOQ (in-progress packet first — fragments of
// one packet never interleave — else round-robin over non-empty queues
// whose egress and ring path are free).
func (f *VOQFabric) StepQuantum() {
	n := f.cfg.Ports
	outClaimed := make([]bool, n)
	cwBusy := make([]bool, n)
	ccwBusy := make([]bool, n)
	chosen := make([]int, n)
	for i := range chosen {
		chosen[i] = -1
	}

	tryGrant := func(i, d int) bool {
		if outClaimed[d] {
			return false
		}
		cwHops := (d - i + n) % n
		if cwHops == 0 {
			outClaimed[d] = true
			return true
		}
		for _, o := range directionOrder(i, d, n) {
			busy := cwBusy
			if !o.cw {
				busy = ccwBusy
			}
			if pathFree(busy, i, o.hops, o.cw, n) {
				claimPath(busy, i, o.hops, o.cw, n)
				outClaimed[d] = true
				return true
			}
		}
		return false
	}

	for k := 0; k < n; k++ {
		i := (f.token + k) % n
		if f.cur[i] >= 0 {
			// A partially-sent packet pins its VOQ (fragments of one
			// packet stay in order on one egress).
			if tryGrant(i, f.cur[i]) {
				chosen[i] = f.cur[i]
			} else {
				f.BlockedPerInput[i]++
			}
			continue
		}
		granted := false
		anyQueued := false
		for s := 0; s < n; s++ {
			d := (f.rr[i] + s) % n
			if len(f.inq[i][d]) == 0 {
				continue
			}
			anyQueued = true
			if tryGrant(i, d) {
				chosen[i] = d
				f.rr[i] = (d + 1) % n
				granted = true
				break
			}
		}
		if anyQueued && !granted {
			f.BlockedPerInput[i]++
		}
	}

	// Stream the chosen fragments in lockstep.
	L := 0
	frag := make([]int, n)
	for i, d := range chosen {
		if d < 0 {
			continue
		}
		p := &f.inq[i][d][0]
		m := p.Words - f.sent[i]
		if m > f.cfg.QuantumWords {
			m = f.cfg.QuantumWords
		}
		frag[i] = m
		if m > L {
			L = m
		}
	}
	for i, d := range chosen {
		if d < 0 {
			continue
		}
		f.GrantsPerInput[i]++
		p := &f.inq[i][d][0]
		f.sent[i] += frag[i]
		f.WordsOut[d] += int64(frag[i])
		if f.sent[i] >= p.Words {
			f.PktsOut[d]++
			f.Latency.Observe(f.Cycles + int64(f.cfg.OverheadCycles+L) - p.Enq)
			f.inq[i][d] = f.inq[i][d][1:]
			f.sent[i] = 0
			f.cur[i] = -1
		} else {
			f.cur[i] = d
		}
	}

	f.Cycles += int64(f.cfg.OverheadCycles + L)
	f.Quanta++
	f.dwell++
	w := 1
	if f.cfg.Weights != nil {
		w = f.cfg.Weights[f.token]
		if w < 1 {
			w = 1
		}
	}
	if f.dwell >= w {
		f.token = NextToken(f.token, n)
		f.dwell = 0
	}
}

// TotalWords returns delivered goodput words.
func (f *VOQFabric) TotalWords() int64 {
	var t int64
	for _, w := range f.WordsOut {
		t += w
	}
	return t
}

// GoodputGbps converts delivered words to Gbps at clockHz.
func (f *VOQFabric) GoodputGbps(clockHz float64) float64 {
	return stats.Gbps(f.TotalWords()*4, f.Cycles, clockHz)
}
