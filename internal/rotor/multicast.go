package rotor

// Multicast support (§8.6): "allowing a single Ingress Processor to send
// data to several Egress Processors simultaneously. This modification is
// trivial considering the ease of programmability of the switch fabric" —
// the static crossbar replicates a word to several outputs in one cycle
// (fanout-splitting), so a multicast stream costs its clockwise arc once
// and is peeled off at every member tile.

// McastReq is a multicast request: a bitmask of egress ports.
type McastReq uint32

// McastTo builds a request for the given egress ports.
func McastTo(ports ...int) McastReq {
	var m McastReq
	for _, p := range ports {
		m |= 1 << p
	}
	return m
}

// Has reports whether port p is in the set.
func (m McastReq) Has(p int) bool { return m>>p&1 == 1 }

// Count returns the fanout.
func (m McastReq) Count() int {
	c := 0
	for m != 0 {
		c += int(m & 1)
		m >>= 1
	}
	return c
}

// McastAllocation describes one quantum of multicast service.
type McastAllocation struct {
	// Granted[i] is the subset of input i's request served this quantum
	// (fanout-splitting: members whose egress was busy wait, the rest are
	// served — the discipline §2.2.2 credits with a 40% throughput gain).
	Granted []McastReq
	// Tiles carries the per-tile switch configuration; multicast tiles
	// may drive out and cwnext from the same client.
	Tiles []TileConfig
}

// AllocateMcast runs the token walk for multicast requests. Each granted
// stream travels clockwise through the arc spanning its served members,
// delivering at each; the arc's clockwise links must all be free
// (all-or-nothing per served subset: the subset is first trimmed to
// members whose egress is unclaimed, then to the longest prefix of the
// arc whose links are free).
func AllocateMcast(reqs []McastReq, token int) McastAllocation {
	n := len(reqs)
	outClaimed := make([]bool, n)
	cwBusy := make([]bool, n)
	a := McastAllocation{Granted: make([]McastReq, n), Tiles: make([]TileConfig, n)}

	for k := 0; k < n; k++ {
		i := (token + k) % n
		req := reqs[i]
		if req == 0 {
			continue
		}
		// Members in clockwise order from the source, with free egresses.
		var members []int // clockwise hop distances, ascending
		for h := 0; h < n; h++ {
			d := (i + h) % n
			if req.Has(d) && !outClaimed[d] {
				members = append(members, h)
			}
		}
		if len(members) == 0 {
			a.Tiles[i].InBlocked = true
			continue
		}
		// Trim to the longest reachable prefix: reaching a member h hops
		// away needs the h consecutive clockwise links from the source to
		// be free.
		maxReach := 0
		for m := 0; m < n-1; m++ {
			if cwBusy[(i+m)%n] {
				break
			}
			maxReach = m + 1
		}
		var served []int
		for _, h := range members {
			if h <= maxReach {
				served = append(served, h)
			}
		}
		if len(served) == 0 {
			a.Tiles[i].InBlocked = true
			continue
		}
		arc := served[len(served)-1]
		claimPath(cwBusy, i, arc, true, n)
		for _, h := range served {
			d := (i + h) % n
			outClaimed[d] = true
			a.Granted[i] |= 1 << d
		}
		// Paint the tiles along the arc.
		for h := 0; h <= arc; h++ {
			t := (i + h) % n
			cl := ClCWPrev
			if h == 0 {
				cl = ClIn
			}
			if a.Granted[i].Has(t) {
				a.Tiles[t].Out = cl
				a.Tiles[t].OutHops = uint8(h)
			}
			if h < arc {
				a.Tiles[t].CWNext = cl
				a.Tiles[t].CWHops = uint8(h)
			}
		}
	}
	return a
}
