package rotor

import "testing"

// TestDegradedNeverTouchesDeadTile: no grant may target the dead egress,
// and no painted stream may use the dead tile's servers, for every
// degraded global configuration.
func TestDegradedNeverTouchesDeadTile(t *testing.T) {
	const n = 4
	prio := make([]uint8, n)
	hdrs := make([]Hdr, n)
	for dead := 0; dead < n; dead++ {
		var rec func(pos int)
		rec = func(pos int) {
			if pos == n {
				for token := 0; token < n; token++ {
					if token == dead {
						continue
					}
					g := GlobalConfig{Hdrs: append([]Hdr(nil), hdrs...), Token: token}
					a := AllocateDegraded(g, prio, dead)
					if a.Granted[dead] {
						t.Fatalf("dead=%d hdrs=%v token=%d: dead tile granted", dead, hdrs, token)
					}
					if a.Tiles[dead].Active() {
						t.Fatalf("dead=%d hdrs=%v token=%d: dead tile painted %v",
							dead, hdrs, token, a.Tiles[dead])
					}
					for _, tr := range a.Transfers {
						if tr.Src == dead || tr.Dst == dead {
							t.Fatalf("dead=%d: transfer %+v touches dead tile", dead, tr)
						}
						// Walk the ring path and assert it avoids the hole.
						for m := 0; m <= tr.Hops; m++ {
							var at int
							if tr.CW {
								at = (tr.Src + m) % n
							} else {
								at = (tr.Src - m + n) % n
							}
							if at == dead {
								t.Fatalf("dead=%d: transfer %+v routes through dead tile", dead, tr)
							}
						}
					}
				}
				return
			}
			if pos == dead {
				hdrs[pos] = HdrEmpty
				rec(pos + 1)
				return
			}
			for h := 0; h <= n; h++ {
				if Hdr(h).Dest() == dead {
					continue
				}
				hdrs[pos] = Hdr(h)
				rec(pos + 1)
			}
		}
		rec(0)
	}
}

// TestDegradedSingleRequesterAlwaysGranted: with three live tiles and only
// one requester, the surviving ring must always route it — the long way
// round if the short arc crosses the hole.
func TestDegradedSingleRequesterAlwaysGranted(t *testing.T) {
	const n = 4
	prio := make([]uint8, n)
	for dead := 0; dead < n; dead++ {
		for src := 0; src < n; src++ {
			if src == dead {
				continue
			}
			for dst := 0; dst < n; dst++ {
				if dst == dead {
					continue
				}
				hdrs := make([]Hdr, n)
				hdrs[src] = HdrTo(dst)
				for token := 0; token < n; token++ {
					if token == dead {
						continue
					}
					a := AllocateDegraded(GlobalConfig{Hdrs: hdrs, Token: token}, prio, dead)
					if !a.Granted[src] {
						t.Fatalf("dead=%d src=%d dst=%d token=%d: sole requester denied",
							dead, src, dst, token)
					}
				}
			}
		}
	}
}

// TestFTIndexExtendsHealthyIndex: the fault-tolerant index must keep every
// healthy configuration at its healthy slot and cover all degraded
// configurations.
func TestFTIndexExtendsHealthyIndex(t *testing.T) {
	healthy := NewConfigIndex(4)
	ft := NewConfigIndexFT(4)
	if ft.Len() < healthy.Len() {
		t.Fatalf("FT index smaller than healthy: %d < %d", ft.Len(), healthy.Len())
	}
	for i := 0; i < healthy.Len(); i++ {
		if ft.Key(i) != healthy.Key(i) {
			t.Fatalf("slot %d differs: %+v != %+v", i, ft.Key(i), healthy.Key(i))
		}
	}
	for _, k := range DegradedConfigs(4) {
		var tc TileConfig
		tc.Out, tc.CWNext, tc.CCWNext = k.Out, k.CWNext, k.CCWNext
		tc.OutHops, tc.CWHops, tc.CCWHops = k.OutHops, k.CWHops, k.CCWHops
		ft.Of(tc) // must not panic
	}
	t.Logf("healthy=%d ft=%d (degraded-only=%d)", healthy.Len(), ft.Len(), ft.Len()-healthy.Len())
}
