package rotor

// Re-admission (robustness extension): after a degraded port's tiles
// recover, the fabric re-enters the port into token rotation at a
// quantum boundary. For a probation window the re-admitted tile runs the
// full healthy protocol — it exchanges headers, relays ring traffic, and
// holds the token — but its egress stays quarantined and its ingress
// sends only empty headers, so a tile that is not actually healthy again
// cannot corrupt committed streams; it can only wedge the header
// exchange, which the watchdog catches and re-degrades.

// AllocateReadmit runs the prioritized allocation walk during the
// probation window after tile joining rejoins the ring. The walk covers
// all n tiles in token order (the re-admitted tile is back in rotation),
// but the joining tile's egress is pre-claimed: no stream is granted to
// it until probation ends. Its ring links are free, so streams between
// its neighbors may relay through it — the first real work the
// re-admitted tile does. The joining tile must not request a transfer of
// its own (its ingress is still in probation and sends empty headers).
func AllocateReadmit(g GlobalConfig, prio []uint8, joining int) Allocation {
	n := len(g.Hdrs)
	if len(prio) != n {
		panic("rotor: priority vector must match ring size")
	}
	if joining < 0 || joining >= n {
		panic("rotor: joining tile out of range")
	}
	if g.Hdrs[joining] != HdrEmpty {
		panic("rotor: re-admitted tile cannot request a transfer during probation")
	}
	order := make([]int, 0, n)
	var maxP uint8
	for _, p := range prio {
		if p > maxP {
			maxP = p
		}
	}
	for p := int(maxP); p >= 0; p-- {
		for k := 0; k < n; k++ {
			i := (g.Token + k) % n
			if int(prio[i]) == p {
				order = append(order, i)
			}
		}
	}
	return allocateSeeded(g, order, joining, -1)
}
