// Package trace records per-tile, per-cycle processor activity and renders
// the utilization strips of the paper's Figure 7-3 ("gray means blocked on
// transmit, receive, or cache miss") as ASCII art and CSV.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/raw"
)

// Recorder implements raw.Tracer over a bounded cycle window.
type Recorder struct {
	// Start and End bound the recorded window [Start, End).
	Start, End int64
	tiles      int
	// states[tile][cycle-Start]
	states [][]raw.TileState
}

// NewRecorder records cycles [start, end) for a chip with tiles tiles.
func NewRecorder(tiles int, start, end int64) *Recorder {
	r := &Recorder{Start: start, End: end, tiles: tiles}
	r.states = make([][]raw.TileState, tiles)
	for i := range r.states {
		r.states[i] = make([]raw.TileState, end-start)
	}
	return r
}

// Record implements raw.Tracer.
func (r *Recorder) Record(cycle int64, tile int, state raw.TileState) {
	if cycle < r.Start || cycle >= r.End {
		return
	}
	r.states[tile][cycle-r.Start] = state
}

// States returns the recorded strip for one tile.
func (r *Recorder) States(tile int) []raw.TileState { return r.states[tile] }

// Utilization returns the fraction of recorded cycles tile spent running.
func (r *Recorder) Utilization(tile int) float64 {
	run := 0
	for _, s := range r.states[tile] {
		if s == raw.StateRun {
			run++
		}
	}
	if len(r.states[tile]) == 0 {
		return 0
	}
	return float64(run) / float64(len(r.states[tile]))
}

// BlockedFraction returns the fraction of recorded cycles tile spent
// blocked on transmit, receive, or cache miss — Figure 7-3's gray.
func (r *Recorder) BlockedFraction(tile int) float64 {
	blocked := 0
	for _, s := range r.states[tile] {
		if s.Blocked() {
			blocked++
		}
	}
	if len(r.states[tile]) == 0 {
		return 0
	}
	return float64(blocked) / float64(len(r.states[tile]))
}

// glyph maps a state to its strip character: running is solid, blocked is
// the paper's gray, idle is blank.
func glyph(s raw.TileState) byte {
	switch s {
	case raw.StateRun:
		return '#'
	case raw.StateStallSend, raw.StateStallRecv, raw.StateStallCache:
		return '.'
	default:
		return ' '
	}
}

// ASCII renders the Figure 7-3 strip chart: one row per tile (in the
// order given, typically 0..15), time left to right, downsampled by bin
// cycles per character (majority state per bin, blocked winning ties).
func (r *Recorder) ASCII(tiles []int, bin int) string {
	if bin < 1 {
		bin = 1
	}
	var b strings.Builder
	n := len(r.states[0])
	fmt.Fprintf(&b, "cycles %d..%d, %d cycle(s)/char: '#'=run '.'=blocked(gray) ' '=idle\n",
		r.Start, r.End, bin)
	for _, tile := range tiles {
		fmt.Fprintf(&b, "%2d |", tile)
		for off := 0; off < n; off += bin {
			end := off + bin
			if end > n {
				end = n
			}
			var run, blocked, idle int
			for _, s := range r.states[tile][off:end] {
				switch {
				case s == raw.StateRun:
					run++
				case s.Blocked():
					blocked++
				default:
					idle++
				}
			}
			switch {
			case blocked >= run && blocked >= idle && blocked > 0:
				b.WriteByte('.')
			case run >= idle && run > 0:
				b.WriteByte('#')
			default:
				b.WriteByte(' ')
			}
		}
		fmt.Fprintf(&b, "| run %4.0f%% gray %4.0f%%\n",
			100*r.Utilization(tile), 100*r.BlockedFraction(tile))
	}
	return b.String()
}

// CSV renders the raw strip as comma-separated state names, one row per
// tile, for external plotting.
func (r *Recorder) CSV(tiles []int) string {
	var b strings.Builder
	b.WriteString("tile")
	for c := r.Start; c < r.End; c++ {
		fmt.Fprintf(&b, ",c%d", c)
	}
	b.WriteByte('\n')
	for _, tile := range tiles {
		fmt.Fprintf(&b, "%d", tile)
		for _, s := range r.states[tile] {
			b.WriteByte(',')
			b.WriteString(s.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

var _ raw.Tracer = (*Recorder)(nil)

// Summary renders a per-tile run/gray/idle percentage table with an
// optional role label per tile.
func (r *Recorder) Summary(tiles []int, label func(tile int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-14s %6s %6s %6s\n", "tile", "role", "run%", "gray%", "idle%")
	for _, tile := range tiles {
		run := r.Utilization(tile)
		gray := r.BlockedFraction(tile)
		idle := 1 - run - gray
		name := ""
		if label != nil {
			name = label(tile)
		}
		fmt.Fprintf(&b, "%-4d %-14s %6.1f %6.1f %6.1f\n", tile, name, 100*run, 100*gray, 100*idle)
	}
	return b.String()
}
