package trace_test

import (
	"strings"
	"testing"

	"repro/internal/raw"
	"repro/internal/trace"
)

func TestRecorderWindow(t *testing.T) {
	r := trace.NewRecorder(2, 10, 20)
	r.Record(5, 0, raw.StateRun)  // before window: ignored
	r.Record(25, 0, raw.StateRun) // after window: ignored
	for c := int64(10); c < 20; c++ {
		st := raw.StateRun
		if c%2 == 0 {
			st = raw.StateStallSend
		}
		r.Record(c, 0, st)
		r.Record(c, 1, raw.StateIdle)
	}
	if u := r.Utilization(0); u != 0.5 {
		t.Fatalf("utilization %f, want 0.5", u)
	}
	if bf := r.BlockedFraction(0); bf != 0.5 {
		t.Fatalf("blocked %f, want 0.5", bf)
	}
	if u := r.Utilization(1); u != 0 {
		t.Fatalf("idle tile utilization %f", u)
	}
}

func TestASCIIRender(t *testing.T) {
	r := trace.NewRecorder(2, 0, 8)
	for c := int64(0); c < 8; c++ {
		r.Record(c, 0, raw.StateRun)
		r.Record(c, 1, raw.StateStallRecv)
	}
	out := r.ASCII([]int{0, 1}, 1)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "########") {
		t.Fatalf("run row: %q", lines[1])
	}
	if !strings.Contains(lines[2], "........") {
		t.Fatalf("blocked row: %q", lines[2])
	}
}

func TestASCIIBinning(t *testing.T) {
	r := trace.NewRecorder(1, 0, 10)
	for c := int64(0); c < 10; c++ {
		st := raw.StateRun
		if c >= 5 {
			st = raw.StateIdle
		}
		r.Record(c, 0, st)
	}
	out := r.ASCII([]int{0}, 5)
	row := strings.Split(strings.TrimSpace(out), "\n")[1]
	if !strings.Contains(row, "# ") {
		t.Fatalf("binned row %q, want one run bin then one idle bin", row)
	}
}

func TestCSV(t *testing.T) {
	r := trace.NewRecorder(1, 0, 3)
	r.Record(0, 0, raw.StateRun)
	r.Record(1, 0, raw.StateStallCache)
	r.Record(2, 0, raw.StateIdle)
	csv := r.CSV([]int{0})
	if !strings.Contains(csv, "run,stall-cache,idle") {
		t.Fatalf("csv: %q", csv)
	}
	if !strings.HasPrefix(csv, "tile,c0,c1,c2") {
		t.Fatalf("csv header: %q", csv)
	}
}

func TestSummary(t *testing.T) {
	r := trace.NewRecorder(2, 0, 10)
	for c := int64(0); c < 10; c++ {
		r.Record(c, 0, raw.StateRun)
		r.Record(c, 1, raw.StateStallSend)
	}
	out := r.Summary([]int{0, 1}, func(tile int) string { return "role" })
	if !strings.Contains(out, "100.0") {
		t.Fatalf("summary: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
}

func TestEmptyWindow(t *testing.T) {
	r := trace.NewRecorder(2, 100, 100)
	r.Record(100, 0, raw.StateRun) // end is exclusive: ignored
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("empty-window utilization %f, want 0", u)
	}
	if bf := r.BlockedFraction(0); bf != 0 {
		t.Fatalf("empty-window blocked %f, want 0", bf)
	}
	out := r.ASCII([]int{0, 1}, 4) // must not panic on zero-length strips
	if !strings.Contains(out, "cycles 100..100") {
		t.Fatalf("ascii header: %q", out)
	}
	csv := r.CSV([]int{0})
	if csv != "tile\n0\n" {
		t.Fatalf("empty-window csv %q, want header-only rows", csv)
	}
}

func TestBinLargerThanWindow(t *testing.T) {
	r := trace.NewRecorder(1, 0, 4)
	for c := int64(0); c < 4; c++ {
		r.Record(c, 0, raw.StateRun)
	}
	out := r.ASCII([]int{0}, 100)
	row := strings.Split(strings.TrimSpace(out), "\n")[1]
	// The whole window collapses into a single majority bin.
	if !strings.Contains(row, "|#|") {
		t.Fatalf("oversized bin row %q, want exactly one strip char", row)
	}
}

func TestCSVGolden(t *testing.T) {
	r := trace.NewRecorder(2, 5, 8)
	r.Record(5, 0, raw.StateRun)
	r.Record(6, 0, raw.StateStallSend)
	r.Record(7, 0, raw.StateStallRecv)
	r.Record(5, 1, raw.StateStallCache)
	// cycles 6,7 of tile 1 left at the zero state (idle).
	const want = "tile,c5,c6,c7\n" +
		"0,run,stall-send,stall-recv\n" +
		"1,stall-cache,idle,idle\n"
	if got := r.CSV([]int{0, 1}); got != want {
		t.Fatalf("csv golden mismatch:\ngot  %q\nwant %q", got, want)
	}
}

func TestEventKindWireNames(t *testing.T) {
	// The wire names are frozen: exporters and golden logs match on these
	// exact bytes.
	want := map[trace.EventKind]string{
		trace.EvUnknown:         "unknown",
		trace.EvLineDown:        "line-down",
		trace.EvLineUp:          "line-up",
		trace.EvDegrade:         "degrade",
		trace.EvRestoreDrain:    "restore-drain",
		trace.EvRestoreRejected: "restore-rejected",
		trace.EvReadmit:         "readmit",
		trace.EvLive:            "live",
		trace.EvFailStop:        "fail-stop",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
		if k != trace.EvUnknown && trace.KindOf(name) != k {
			t.Errorf("KindOf(%q) = %v, want %v", name, trace.KindOf(name), k)
		}
	}
	if got := trace.KindOf("no-such-event"); got != trace.EvUnknown {
		t.Errorf("KindOf(bogus) = %v, want EvUnknown", got)
	}
	if got := trace.EventKind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestEventLogRendering(t *testing.T) {
	l := &trace.EventLog{}
	l.Add(100, 2, trace.EvLineDown)
	l.AddDetail(250, 1, trace.EvFailStop, "tile 6 wedged")
	const want = "100 p2 line-down\n250 p1 fail-stop: tile 6 wedged\n"
	if got := l.String(); got != want {
		t.Fatalf("event log:\ngot  %q\nwant %q", got, want)
	}
}
