package trace_test

import (
	"strings"
	"testing"

	"repro/internal/raw"
	"repro/internal/trace"
)

func TestRecorderWindow(t *testing.T) {
	r := trace.NewRecorder(2, 10, 20)
	r.Record(5, 0, raw.StateRun)  // before window: ignored
	r.Record(25, 0, raw.StateRun) // after window: ignored
	for c := int64(10); c < 20; c++ {
		st := raw.StateRun
		if c%2 == 0 {
			st = raw.StateStallSend
		}
		r.Record(c, 0, st)
		r.Record(c, 1, raw.StateIdle)
	}
	if u := r.Utilization(0); u != 0.5 {
		t.Fatalf("utilization %f, want 0.5", u)
	}
	if bf := r.BlockedFraction(0); bf != 0.5 {
		t.Fatalf("blocked %f, want 0.5", bf)
	}
	if u := r.Utilization(1); u != 0 {
		t.Fatalf("idle tile utilization %f", u)
	}
}

func TestASCIIRender(t *testing.T) {
	r := trace.NewRecorder(2, 0, 8)
	for c := int64(0); c < 8; c++ {
		r.Record(c, 0, raw.StateRun)
		r.Record(c, 1, raw.StateStallRecv)
	}
	out := r.ASCII([]int{0, 1}, 1)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "########") {
		t.Fatalf("run row: %q", lines[1])
	}
	if !strings.Contains(lines[2], "........") {
		t.Fatalf("blocked row: %q", lines[2])
	}
}

func TestASCIIBinning(t *testing.T) {
	r := trace.NewRecorder(1, 0, 10)
	for c := int64(0); c < 10; c++ {
		st := raw.StateRun
		if c >= 5 {
			st = raw.StateIdle
		}
		r.Record(c, 0, st)
	}
	out := r.ASCII([]int{0}, 5)
	row := strings.Split(strings.TrimSpace(out), "\n")[1]
	if !strings.Contains(row, "# ") {
		t.Fatalf("binned row %q, want one run bin then one idle bin", row)
	}
}

func TestCSV(t *testing.T) {
	r := trace.NewRecorder(1, 0, 3)
	r.Record(0, 0, raw.StateRun)
	r.Record(1, 0, raw.StateStallCache)
	r.Record(2, 0, raw.StateIdle)
	csv := r.CSV([]int{0})
	if !strings.Contains(csv, "run,stall-cache,idle") {
		t.Fatalf("csv: %q", csv)
	}
	if !strings.HasPrefix(csv, "tile,c0,c1,c2") {
		t.Fatalf("csv header: %q", csv)
	}
}

func TestSummary(t *testing.T) {
	r := trace.NewRecorder(2, 0, 10)
	for c := int64(0); c < 10; c++ {
		r.Record(c, 0, raw.StateRun)
		r.Record(c, 1, raw.StateStallSend)
	}
	out := r.Summary([]int{0, 1}, func(tile int) string { return "role" })
	if !strings.Contains(out, "100.0") {
		t.Fatalf("summary: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
}
