package trace

import (
	"fmt"
	"strings"
)

// Event is one recovery-state-machine transition observed by the router:
// a line going down or coming back, a port degrading, a restore draining,
// a port re-admitted, probation ending, or a fail-stop. Events are
// emitted only from the simulation's main goroutine (the cycle hook and
// between-cycles reconfiguration), so the log is deterministic and
// race-free at any worker count.
type Event struct {
	Cycle int64
	Port  int
	Kind  string
}

// EventLog accumulates recovery events for tests and post-run reporting.
type EventLog struct {
	Events []Event
}

// Add appends one event.
func (l *EventLog) Add(cycle int64, port int, kind string) {
	l.Events = append(l.Events, Event{Cycle: cycle, Port: port, Kind: kind})
}

// String renders one event per line: "cycle port kind".
func (l *EventLog) String() string {
	var b strings.Builder
	for _, e := range l.Events {
		fmt.Fprintf(&b, "%d p%d %s\n", e.Cycle, e.Port, e.Kind)
	}
	return b.String()
}
