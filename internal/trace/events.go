package trace

import (
	"fmt"
	"strings"
)

// EventKind enumerates the recovery-state-machine transitions the router
// emits. Each kind has a stable wire name (its String form), used by the
// event log renderer, the telemetry flight recorder, and every exporter —
// renaming a kind is a schema change and must bump telemetry.SchemaVersion.
type EventKind uint8

const (
	// EvUnknown is the zero value; it never appears in a healthy log.
	EvUnknown EventKind = iota
	// EvLineDown: an ingress declared its input line dead (underrun
	// strikes exhausted, or the port's crossbar died).
	EvLineDown
	// EvLineUp: a line probe detected the input line carrying words again.
	EvLineUp
	// EvDegrade: the watchdog (or a direct Degrade call) masked a port's
	// crossbar tile out of the token rotation.
	EvDegrade
	// EvRestoreDrain: Restore began; live ingresses pause while in-flight
	// packets drain toward quiescence.
	EvRestoreDrain
	// EvRestoreRejected: a scheduled restore control fired but the router
	// refused it (wrong port, not degraded, already restoring).
	EvRestoreRejected
	// EvReadmit: the drained fabric was reconfigured and the dead port
	// re-entered the token rotation (probation may follow).
	EvReadmit
	// EvLive: the re-admitted port's probation window expired; full
	// service resumed.
	EvLive
	// EvFailStop: an unrecoverable condition parked the router for good.
	// The event's Detail carries the reason.
	EvFailStop
	// EvChipKill: a fabric-level control removed a whole chip from the
	// cluster; its trunks went silent and its external ports drop offered
	// traffic. The event's Port field carries the chip index.
	EvChipKill
	// EvChipRestore: the fabric re-admitted a killed chip with a freshly
	// constructed replacement. Port carries the chip index.
	EvChipRestore
	// EvTrunkKill: a fabric-level control darkened one inter-chip trunk.
	// Port carries the trunk index; Detail names the trunk.
	EvTrunkKill
	// EvTrunkRestore: the fabric re-lit a darkened trunk. Port carries
	// the trunk index; Detail names the trunk.
	EvTrunkRestore
	// EvHealReroute: the healing plane recomputed per-chip route tables
	// against the surviving topology. Port carries the heal epoch; Detail
	// summarizes the dead set.
	EvHealReroute
	// EvPartition: the surviving topology is disconnected — some live
	// chips cannot reach others, and traffic between them fails loudly
	// (PartitionError) instead of holding frames forever. Port carries
	// the heal epoch.
	EvPartition
	// EvSLOViolation: a serve-mode guardrail gate failed its threshold
	// over the sampling window. Port is -1 (plane-wide); Detail carries
	// "gate=NAME value=V limit=L".
	EvSLOViolation
	// EvSLOClear: every guardrail gate passed again after a violation;
	// the daemon leaves degraded service. Port is -1.
	EvSLOClear
	// EvDrainStart: the daemon stopped admitting ingest and began
	// draining in-flight words toward a checkpoint (SIGTERM or /drain).
	// Port is -1.
	EvDrainStart
	// EvCheckpoint: the daemon wrote a checkpoint blob. Port is -1;
	// Detail carries "bytes=N" (and "forced" if the drain budget expired
	// before quiescence).
	EvCheckpoint

	numEventKinds
)

// wireNames are the stable on-the-wire names. They are frozen: golden
// logs, telemetry exports, and the fault-grammar tests all match on these
// exact bytes.
var wireNames = [numEventKinds]string{
	EvUnknown:         "unknown",
	EvLineDown:        "line-down",
	EvLineUp:          "line-up",
	EvDegrade:         "degrade",
	EvRestoreDrain:    "restore-drain",
	EvRestoreRejected: "restore-rejected",
	EvReadmit:         "readmit",
	EvLive:            "live",
	EvFailStop:        "fail-stop",
	EvChipKill:        "chip-kill",
	EvChipRestore:     "chip-restore",
	EvTrunkKill:       "trunk-kill",
	EvTrunkRestore:    "trunk-restore",
	EvHealReroute:     "heal-reroute",
	EvPartition:       "partition",
	EvSLOViolation:    "slo-violation",
	EvSLOClear:        "slo-clear",
	EvDrainStart:      "drain-start",
	EvCheckpoint:      "checkpoint",
}

// String returns the kind's stable wire name.
func (k EventKind) String() string {
	if int(k) < len(wireNames) {
		return wireNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindOf maps a wire name back to its EventKind (EvUnknown if the name is
// not recognized).
func KindOf(name string) EventKind {
	for k, n := range wireNames {
		if n == name && k != int(EvUnknown) {
			return EventKind(k)
		}
	}
	return EvUnknown
}

// Event is one recovery-state-machine transition observed by the router:
// a line going down or coming back, a port degrading, a restore draining,
// a port re-admitted, probation ending, or a fail-stop. Events are
// emitted only from the simulation's main goroutine (the cycle hook and
// between-cycles reconfiguration), so the log is deterministic and
// race-free at any worker count.
type Event struct {
	Cycle int64
	Port  int
	Kind  EventKind
	// Detail is free-form context (the fail-stop reason); empty for most
	// kinds.
	Detail string
}

// String renders "kind" or "kind: detail" — the same bytes the
// stringly-typed log produced before kinds were typed.
func (e Event) String() string {
	if e.Detail == "" {
		return e.Kind.String()
	}
	return e.Kind.String() + ": " + e.Detail
}

// EventLog accumulates recovery events for tests and post-run reporting.
type EventLog struct {
	Events []Event
}

// Add appends one event.
func (l *EventLog) Add(cycle int64, port int, kind EventKind) {
	l.Events = append(l.Events, Event{Cycle: cycle, Port: port, Kind: kind})
}

// AddDetail appends one event carrying free-form context.
func (l *EventLog) AddDetail(cycle int64, port int, kind EventKind, detail string) {
	l.Events = append(l.Events, Event{Cycle: cycle, Port: port, Kind: kind, Detail: detail})
}

// String renders one event per line: "cycle port kind".
func (l *EventLog) String() string {
	var b strings.Builder
	for _, e := range l.Events {
		fmt.Fprintf(&b, "%d p%d %s\n", e.Cycle, e.Port, e.String())
	}
	return b.String()
}
