// Package lookup implements the longest-prefix-match route tables a
// router's lookup processors consult (§2.1 of the paper cites Patricia
// trees as the traditional implementation; §8.2 points at Degermark-style
// small forwarding tables as the future-work direction). Both structures
// report the number of memory probes a lookup performed so the cycle-level
// simulator can charge realistic lookup costs.
package lookup

import (
	"fmt"
	"math/bits"
)

// NextHop identifies an output port of the router.
type NextHop int32

// NoRoute is returned when no prefix covers an address.
const NoRoute NextHop = -1

// node is a binary (path-compressed) trie node.
type node struct {
	child [2]*node
	// route is the next hop installed at this node, or NoRoute.
	route NextHop
	// prefix/plen is the full prefix this node represents.
	prefix uint32
	plen   int
}

// Patricia is a path-compressed binary trie with longest-prefix matching
// over 32-bit IPv4 prefixes.
//
// The zero value is an empty table.
type Patricia struct {
	root   *node
	routes int
}

// Len returns the number of installed routes.
func (t *Patricia) Len() int { return t.routes }

// bit returns bit i (0 = most significant) of a.
func bit(a uint32, i int) int { return int(a >> (31 - i) & 1) }

// Insert installs or replaces prefix/plen -> nh. plen 0 installs a default
// route.
func (t *Patricia) Insert(prefix uint32, plen int, nh NextHop) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("lookup: bad prefix length %d", plen)
	}
	if nh < 0 {
		return fmt.Errorf("lookup: bad next hop %d", nh)
	}
	prefix = maskPrefix(prefix, plen)
	if t.root == nil {
		t.root = &node{route: NoRoute}
	}
	n := t.root
	for depth := 0; depth < plen; depth++ {
		b := bit(prefix, depth)
		if n.child[b] == nil {
			n.child[b] = &node{route: NoRoute, prefix: maskPrefix(prefix, depth+1), plen: depth + 1}
		}
		n = n.child[b]
	}
	if n.route == NoRoute {
		t.routes++
	}
	n.route = nh
	return nil
}

func maskPrefix(p uint32, plen int) uint32 {
	if plen == 0 {
		return 0
	}
	return p & (^uint32(0) << (32 - plen))
}

// Lookup returns the longest-prefix-match next hop for addr, and the
// number of trie nodes visited (the memory-probe count a lookup processor
// pays for).
func (t *Patricia) Lookup(addr uint32) (NextHop, int) {
	best := NoRoute
	probes := 0
	n := t.root
	for depth := 0; n != nil; depth++ {
		probes++
		if n.route != NoRoute {
			best = n.route
		}
		if depth == 32 {
			break
		}
		n = n.child[bit(addr, depth)]
	}
	return best, probes
}

// Walk visits every installed route in prefix order.
func (t *Patricia) Walk(f func(prefix uint32, plen int, nh NextHop)) {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if n.route != NoRoute {
			f(n.prefix, n.plen, n.route)
		}
		rec(n.child[0])
		rec(n.child[1])
	}
	rec(t.root)
}

// Delete removes prefix/plen if present, reporting whether it existed.
// (Nodes are left in place; the trie is rebuilt by callers that care about
// compaction.)
func (t *Patricia) Delete(prefix uint32, plen int) bool {
	prefix = maskPrefix(prefix, plen)
	n := t.root
	for depth := 0; n != nil && depth < plen; depth++ {
		n = n.child[bit(prefix, depth)]
	}
	if n == nil || n.route == NoRoute {
		return false
	}
	n.route = NoRoute
	t.routes--
	return true
}

// MaxDepth returns the deepest probe chain in the table — the worst-case
// lookup cost.
func (t *Patricia) MaxDepth() int {
	var rec func(n *node, d int) int
	rec = func(n *node, d int) int {
		if n == nil {
			return d
		}
		a := rec(n.child[0], d+1)
		b := rec(n.child[1], d+1)
		if a > b {
			return a
		}
		return b
	}
	return rec(t.root, 0)
}

// CommonPrefixLen returns the length of the longest common prefix of a and
// b — a helper for table generators.
func CommonPrefixLen(a, b uint32) int {
	return bits.LeadingZeros32(a ^ b)
}
