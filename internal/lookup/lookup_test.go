package lookup_test

import (
	"testing"
	"testing/quick"

	"repro/internal/lookup"
)

func mustInsert(t *testing.T, p *lookup.Patricia, prefix uint32, plen int, nh lookup.NextHop) {
	t.Helper()
	if err := p.Insert(prefix, plen, nh); err != nil {
		t.Fatal(err)
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	var p lookup.Patricia
	mustInsert(t, &p, 0x0A000000, 8, 1)  // 10/8 -> 1
	mustInsert(t, &p, 0x0A010000, 16, 2) // 10.1/16 -> 2
	mustInsert(t, &p, 0x0A010200, 24, 3) // 10.1.2/24 -> 3
	mustInsert(t, &p, 0, 0, 0)           // default -> 0

	cases := []struct {
		addr uint32
		want lookup.NextHop
	}{
		{0x0A010203, 3}, // 10.1.2.3
		{0x0A010303, 2}, // 10.1.3.3
		{0x0A020303, 1}, // 10.2.3.3
		{0x0B000001, 0}, // 11.0.0.1 -> default
	}
	for _, c := range cases {
		got, probes := p.Lookup(c.addr)
		if got != c.want {
			t.Errorf("lookup %#x = %d, want %d", c.addr, got, c.want)
		}
		if probes <= 0 || probes > 33 {
			t.Errorf("lookup %#x probes = %d out of range", c.addr, probes)
		}
	}
}

func TestNoRouteWithoutDefault(t *testing.T) {
	var p lookup.Patricia
	mustInsert(t, &p, 0xC0A80000, 16, 4)
	if nh, _ := p.Lookup(0x01020304); nh != lookup.NoRoute {
		t.Fatalf("got %d, want NoRoute", nh)
	}
}

func TestInsertReplaceAndDelete(t *testing.T) {
	var p lookup.Patricia
	mustInsert(t, &p, 0x0A000000, 8, 1)
	mustInsert(t, &p, 0x0A000000, 8, 9) // replace
	if p.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", p.Len())
	}
	if nh, _ := p.Lookup(0x0A000001); nh != 9 {
		t.Fatalf("replaced route = %d, want 9", nh)
	}
	if !p.Delete(0x0A000000, 8) {
		t.Fatal("delete reported missing")
	}
	if p.Delete(0x0A000000, 8) {
		t.Fatal("double delete reported present")
	}
	if nh, _ := p.Lookup(0x0A000001); nh != lookup.NoRoute {
		t.Fatalf("deleted route still resolves to %d", nh)
	}
}

func TestInsertValidation(t *testing.T) {
	var p lookup.Patricia
	if err := p.Insert(0, 33, 1); err == nil {
		t.Error("plen 33 accepted")
	}
	if err := p.Insert(0, 8, -2); err == nil {
		t.Error("negative next hop accepted")
	}
}

func TestHostRoutes(t *testing.T) {
	var p lookup.Patricia
	mustInsert(t, &p, 0xDEADBEEF, 32, 7)
	mustInsert(t, &p, 0xDEADBEE0, 28, 6)
	if nh, _ := p.Lookup(0xDEADBEEF); nh != 7 {
		t.Fatalf("host route = %d, want 7", nh)
	}
	if nh, _ := p.Lookup(0xDEADBEEE); nh != 6 {
		t.Fatalf("covering /28 = %d, want 6", nh)
	}
}

// TestCompactMatchesPatricia builds both structures from the same random
// table and property-checks agreement on random addresses.
func TestCompactMatchesPatricia(t *testing.T) {
	var p lookup.Patricia
	seed := uint64(12345)
	next := func() uint32 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return uint32(seed)
	}
	mustInsert(t, &p, 0, 0, 0)
	for i := 0; i < 500; i++ {
		plen := 8 + int(next()%17) // 8..24
		mustInsert(t, &p, next(), plen, lookup.NextHop(next()%4))
	}
	for i := 0; i < 40; i++ { // some long prefixes
		plen := 25 + int(next()%8)
		mustInsert(t, &p, next(), plen, lookup.NextHop(next()%4))
	}
	c := lookup.NewCompactTable(&p)
	if c.Len() != p.Len() {
		t.Fatalf("compact Len %d != patricia Len %d", c.Len(), p.Len())
	}
	f := func(addr uint32) bool {
		want, _ := p.Lookup(addr)
		got, probes := c.Lookup(addr)
		return got == want && probes >= 1 && probes <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactProbeCounts(t *testing.T) {
	var p lookup.Patricia
	mustInsert(t, &p, 0, 0, 0)
	mustInsert(t, &p, 0x0A000000, 8, 1)
	mustInsert(t, &p, 0x0A010280, 25, 2)
	c := lookup.NewCompactTable(&p)
	if _, probes := c.Lookup(0x0B000000); probes != 1 {
		t.Fatalf("short prefix took %d probes, want 1", probes)
	}
	if nh, probes := c.Lookup(0x0A010281); nh != 2 || probes != 2 {
		t.Fatalf("long prefix = (%d, %d probes), want (2, 2)", nh, probes)
	}
}

func TestMaxDepthAndWalk(t *testing.T) {
	var p lookup.Patricia
	mustInsert(t, &p, 0x80000000, 1, 1)
	mustInsert(t, &p, 0xFF000000, 8, 2)
	if d := p.MaxDepth(); d < 8 || d > 9 {
		t.Fatalf("MaxDepth = %d, want ~8", d)
	}
	var seen int
	p.Walk(func(_ uint32, _ int, _ lookup.NextHop) { seen++ })
	if seen != 2 {
		t.Fatalf("Walk visited %d routes, want 2", seen)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	if l := lookup.CommonPrefixLen(0xFF000000, 0xFF000001); l != 31 {
		t.Fatalf("got %d, want 31", l)
	}
	if l := lookup.CommonPrefixLen(0x00000000, 0x80000000); l != 0 {
		t.Fatalf("got %d, want 0", l)
	}
}
