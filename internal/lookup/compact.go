package lookup

// CompactTable is a two-level compressed forwarding table in the spirit of
// Degermark et al., "Small Forwarding Tables for Fast Routing Lookups"
// (SIGCOMM 1997), which §8.2 of the paper proposes for the Raw lookup
// processors: a direct-indexed 2^16-entry first level, with per-chunk
// second levels only where prefixes are longer than 16 bits. A lookup
// costs one probe for short prefixes and two for long ones — a property
// the cycle simulator exploits.
//
// Build one from a populated Patricia table with NewCompactTable.
type CompactTable struct {
	// level1[i] is either a next hop (>= 0), NoRoute (-1), or a chunk
	// pointer encoded as -(chunkIndex+2).
	level1 []int32
	// chunks holds 2^16-entry second levels indexed by the low 16 address
	// bits (a simplified, flat variant of Degermark's chunked level 2/3).
	chunks [][]NextHop
	routes int
}

const l1Bits = 16

// NewCompactTable flattens a Patricia table. Prefixes longer than 24 bits
// are expanded within their chunk (the classic trade of memory for probe
// count).
func NewCompactTable(t *Patricia) *CompactTable {
	c := &CompactTable{level1: make([]int32, 1<<l1Bits), routes: t.Len()}
	for i := range c.level1 {
		c.level1[i] = int32(NoRoute)
	}
	// Paint routes in increasing prefix-length order so longer prefixes
	// overwrite shorter ones (longest-prefix match by construction).
	type rt struct {
		prefix uint32
		plen   int
		nh     NextHop
	}
	var all []rt
	t.Walk(func(prefix uint32, plen int, nh NextHop) {
		all = append(all, rt{prefix, plen, nh})
	})
	for plen := 0; plen <= 32; plen++ {
		for _, r := range all {
			if r.plen != plen {
				continue
			}
			if plen <= l1Bits {
				base := r.prefix >> (32 - l1Bits)
				count := uint32(1) << (l1Bits - plen)
				if plen == 0 {
					base, count = 0, 1<<l1Bits
				}
				for i := uint32(0); i < count; i++ {
					slot := base + i
					if c.level1[slot] < int32(NoRoute) {
						// Chunk exists: paint the whole chunk.
						ch := c.chunks[-2-c.level1[slot]]
						for j := range ch {
							ch[j] = r.nh
						}
					} else {
						c.level1[slot] = int32(r.nh)
					}
				}
				continue
			}
			// Long prefix: ensure a chunk and paint the covered entries.
			slot := r.prefix >> (32 - l1Bits)
			ch := c.chunk(slot)
			low := r.prefix & 0xffff
			count := uint32(1) << (32 - plen)
			for i := uint32(0); i < count; i++ {
				ch[low+i] = r.nh
			}
		}
	}
	return c
}

// chunk returns (creating if needed) the second-level chunk for level-1
// slot, seeding it with the slot's current short-prefix route.
func (c *CompactTable) chunk(slot uint32) []NextHop {
	if c.level1[slot] < int32(NoRoute) {
		return c.chunks[-2-c.level1[slot]]
	}
	ch := make([]NextHop, 1<<16)
	seed := NextHop(c.level1[slot])
	for i := range ch {
		ch[i] = seed
	}
	idx := int32(len(c.chunks))
	c.chunks = append(c.chunks, ch)
	c.level1[slot] = -2 - idx
	return ch
}

// Lookup returns the next hop and the probe count (1 or 2).
func (c *CompactTable) Lookup(addr uint32) (NextHop, int) {
	v := c.level1[addr>>(32-l1Bits)]
	if v >= int32(NoRoute) {
		return NextHop(v), 1
	}
	return c.chunks[-2-v][addr&0xffff], 2
}

// Len returns the number of routes the table was built from.
func (c *CompactTable) Len() int { return c.routes }

// MemoryWords estimates the table's footprint in 32-bit words — the
// quantity §8.2 worries about fitting near the lookup tiles.
func (c *CompactTable) MemoryWords() int {
	return len(c.level1) + len(c.chunks)*(1<<16)
}

// Image serializes the table for loading into simulated DRAM: the level-1
// array (chunk pointers encoded as -(index+2), next hops as non-negative
// values, NoRoute as -1, all two's complement) and each chunk's next-hop
// array.
func (c *CompactTable) Image() (level1 []uint32, chunks [][]uint32) {
	level1 = make([]uint32, len(c.level1))
	for i, v := range c.level1 {
		level1[i] = uint32(v)
	}
	chunks = make([][]uint32, len(c.chunks))
	for i, ch := range c.chunks {
		words := make([]uint32, len(ch))
		for j, nh := range ch {
			words[j] = uint32(int32(nh))
		}
		chunks[i] = words
	}
	return level1, chunks
}
