package fault

import (
	"repro/internal/raw"
	"repro/internal/traffic"
)

// RandomOptions bounds a generated schedule. The zero value is filled
// with defaults by Random.
type RandomOptions struct {
	// Horizon is the cycle range faults are scheduled within.
	Horizon int64
	// MaxStalls / MaxFlaps / MaxFreezes / MaxDRAM cap the event counts
	// per class (the drawn count is uniform in [0, max]).
	MaxStalls, MaxFlaps, MaxFreezes, MaxDRAM int
	// MaxStallCycles bounds every stall/flap/freeze window. Keep this
	// far below any watchdog threshold for schedules that must stay
	// recoverable.
	MaxStallCycles int64
	// Tiles restricts freeze targets; nil allows any tile. Link faults
	// always draw from the full mesh.
	Tiles []int
	// NumTiles/Width describe the mesh (default 16/4).
	NumTiles, Width int
}

// Random generates a seeded, replayable schedule of recoverable faults:
// link stalls, link flaps, bounded tile freezes, and DRAM latency
// spikes. These classes pause progress without losing words, so a router
// subjected to them must still deliver every packet. Corruption, drops,
// and crashes change accounting and are composed explicitly by callers
// (see the chaos harness).
func Random(seed uint64, o RandomOptions) *Schedule {
	if o.Horizon <= 0 {
		o.Horizon = 100_000
	}
	if o.MaxStallCycles <= 0 {
		o.MaxStallCycles = 2000
	}
	if o.NumTiles <= 0 {
		o.NumTiles = 16
	}
	if o.Width <= 0 {
		o.Width = 4
	}
	rng := traffic.NewRNG(seed)
	s := &Schedule{}
	dirs := []raw.Dir{raw.DirN, raw.DirE, raw.DirS, raw.DirW}
	window := func() (start, dur int64) {
		start = int64(rng.Intn(int(o.Horizon)))
		dur = 1 + int64(rng.Intn(int(o.MaxStallCycles)))
		return
	}
	for i, n := 0, rng.Intn(o.MaxStalls+1); i < n; i++ {
		start, dur := window()
		s.Events = append(s.Events, Event{Kind: KindLink, Start: start, Dur: dur,
			Tile: rng.Intn(o.NumTiles), Dir: dirs[rng.Intn(4)]})
	}
	for i, n := 0, rng.Intn(o.MaxFlaps+1); i < n; i++ {
		start, dur := window()
		s.Events = append(s.Events, Event{Kind: KindFlap, Start: start,
			Dur: 1 + dur/8, Repeat: 2 + rng.Intn(6),
			Tile: rng.Intn(o.NumTiles), Dir: dirs[rng.Intn(4)]})
	}
	for i, n := 0, rng.Intn(o.MaxFreezes+1); i < n; i++ {
		start, dur := window()
		tile := rng.Intn(o.NumTiles)
		if len(o.Tiles) > 0 {
			tile = o.Tiles[rng.Intn(len(o.Tiles))]
		}
		s.Events = append(s.Events, Event{Kind: KindFreeze, Start: start, Dur: dur, Tile: tile})
	}
	for i, n := 0, rng.Intn(o.MaxDRAM+1); i < n; i++ {
		start, dur := window()
		s.Events = append(s.Events, Event{Kind: KindDRAM, Start: start, Dur: dur,
			Extra: 1 + rng.Intn(200)})
	}
	return s
}
