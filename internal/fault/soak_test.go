package fault_test

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// The degrade→restore soak matrix: every seed builds a scenario where a
// crossbar tile freezes under load and recoverable noise (link stalls,
// flaps, DRAM spikes), the watchdog degrades the fabric, the tile thaws,
// and AutoRestore re-admits the port — with a checkpoint taken mid-arc,
// restored into a fresh router at a different worker count, and the
// continuation required to be bit-for-bit identical to the uninterrupted
// run. SOAK_SEEDS widens the matrix (make soak runs 20 under -race).

// xbarTiles maps port → crossbar tile (Figure 7-2 ring 5→6→10→9).
var xbarTiles = [4]int{5, 6, 10, 9}

// nonXbarTiles restricts noise freezes so only the scenario's designated
// crossbar freeze can trigger the watchdog.
func nonXbarTiles() []int {
	var out []int
	for t := 0; t < 16; t++ {
		if t != 5 && t != 6 && t != 10 && t != 9 {
			out = append(out, t)
		}
	}
	return out
}

func soakSeeds(t *testing.T) int {
	if v := os.Getenv("SOAK_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SOAK_SEEDS %q", v)
		}
		return n
	}
	return 2
}

func soakCfg(workers int, eng raw.Engine, ev *trace.EventLog) router.Config {
	cfg := router.DefaultConfig()
	cfg.Workers = workers
	cfg.Engine = eng
	cfg.Watchdog = true
	cfg.WatchdogCycles = 3000
	cfg.AutoRestore = true
	cfg.Checkpoint = true
	cfg.UnderrunQuanta = 8
	cfg.ReprobeQuanta = 16
	cfg.Events = ev
	// The telemetry plane rides along the whole soak: it must neither
	// perturb the arc nor break checkpoint/restore determinism.
	cfg.Metrics = telemetry.New(telemetry.Config{})
	return cfg
}

// soakSchedule composes the per-seed scenario: recoverable noise plus
// one crossbar freeze long enough for the watchdog to degrade and late
// enough to thaw into the drain phase.
func soakSchedule(seed uint64) (*fault.Schedule, int) {
	noise := fault.Random(seed, fault.RandomOptions{
		Horizon: 10000, MaxStalls: 4, MaxFlaps: 2, MaxFreezes: 1,
		MaxDRAM: 2, MaxStallCycles: 1500, Tiles: nonXbarTiles(),
	})
	rng := traffic.NewRNG(seed ^ 0xD06)
	port := rng.Intn(4)
	start := int64(4000 + rng.Intn(4000))
	dur := int64(12000 + rng.Intn(4000))
	s := &fault.Schedule{Events: append(noise.Events, fault.Event{
		Kind: fault.KindFreeze, Start: start, Dur: dur, Tile: xbarTiles[port],
	})}
	return s, port
}

type soakRun struct {
	r    *router.Router
	ev   *trace.EventLog
	sent map[uint16]ip.Packet
}

func newSoakRun(t *testing.T, workers int, eng raw.Engine, sched *fault.Schedule) *soakRun {
	t.Helper()
	ev := &trace.EventLog{}
	r, err := router.New(soakCfg(workers, eng, ev))
	if err != nil {
		t.Fatal(err)
	}
	r.Chip.InstallFaults(fault.NewInjector(sched, 16))
	for _, c := range sched.Controls() {
		switch c.Kind {
		case fault.KindRestore:
			r.ScheduleRestore(c.Start, c.Tile)
		case fault.KindReprobe:
			r.ScheduleReprobe(c.Start, c.Tile)
		}
	}
	return &soakRun{r: r, ev: ev, sent: map[uint16]ip.Packet{}}
}

// feedPhase drives seeded traffic to the mid-arc cycle; the input log is
// complete by then, so the drain phase needs no harness state to replay.
func (s *soakRun) feedPhase(trafficSeed uint64) {
	rng := traffic.NewRNG(trafficSeed)
	id := uint16(0)
	sizes := []int{64, 128, 256, 512}
	for c := 0; c < 16000; c += 200 {
		for p := 0; p < 4; p++ {
			for s.r.InputBacklogWords(p) < 2048 {
				id++
				pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
					traffic.PortAddr(rng.Intn(4), uint32(id)), 64, sizes[rng.Intn(4)], id)
				s.sent[id] = pkt
				s.r.OfferPacket(p, &pkt)
			}
		}
		s.r.Run(200)
	}
}

func TestSoakDegradeRestoreMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("soak matrix skipped in -short")
	}
	seeds := soakSeeds(t)
	nc := runtime.NumCPU()
	if nc < 2 {
		nc = 2
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		sched, port := soakSchedule(seed)
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			// Uninterrupted reference: feed, checkpoint mid-arc, drain dry.
			ref := newSoakRun(t, 1, raw.EngineRef, sched)
			ref.feedPhase(seed + 100)
			blob, err := ref.r.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			ref.r.Run(34000)
			refFinal, err := ref.r.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// The arc must actually have happened: degrade, re-admit, live.
			log := ref.ev.String()
			for _, want := range []string{"degrade", "restore-drain", "readmit", "live"} {
				if !strings.Contains(log, want) {
					t.Fatalf("seed %d (port %d, %q): event log missing %q:\n%s",
						seed, port, sched, want, log)
				}
			}
			if ref.r.Failed() || ref.r.DeadPort() >= 0 {
				t.Fatalf("seed %d: fabric not healthy after arc: dead=%d failed=%v",
					seed, ref.r.DeadPort(), ref.r.Failed())
			}

			// The flight recorder must have seen the same arc the event
			// log did, under the typed kinds' stable wire names.
			snap := ref.r.TelemetrySnapshot()
			kinds := map[string]bool{}
			for _, e := range snap.Events {
				kinds[e.Kind] = true
			}
			for _, want := range []string{"degrade", "restore-drain", "readmit", "live"} {
				if !kinds[want] {
					t.Fatalf("seed %d: flight recorder missing %q; got %v", seed, want, kinds)
				}
			}

			// Conservation and integrity over the whole history.
			var in, out int64
			for p := 0; p < 4; p++ {
				in += ref.r.Stats().PktsIn[p]
				out += ref.r.Stats().PktsOut[p]
			}
			if in != out+ref.r.Stats().FabricLost {
				t.Fatalf("seed %d: conservation: PktsIn %d != PktsOut %d + FabricLost %d",
					seed, in, out, ref.r.Stats().FabricLost)
			}
			seen := map[uint16]bool{}
			for p := 0; p < 4; p++ {
				pkts, err := ref.r.DrainOutput(p)
				if err != nil {
					t.Fatalf("seed %d: output %d corrupt: %v", seed, p, err)
				}
				for _, pk := range pkts {
					want, ok := ref.sent[pk.Header.ID]
					if !ok {
						t.Fatalf("seed %d: unknown packet id %d delivered", seed, pk.Header.ID)
					}
					if seen[pk.Header.ID] {
						t.Fatalf("seed %d: packet id %d delivered twice", seed, pk.Header.ID)
					}
					seen[pk.Header.ID] = true
					for i := range want.Payload {
						if pk.Payload[i] != want.Payload[i] {
							t.Fatalf("seed %d: id %d payload word %d corrupted", seed, pk.Header.ID, i)
						}
					}
				}
			}

			// Crash-and-restore at a different worker count AND under the
			// other cycle engine: the restored continuation must land on
			// the identical final checkpoint. This is the cross-engine
			// checkpoint/restore gate — a ref-written blob replayed through
			// the fast engine's own step path, verified by digest.
			res := newSoakRun(t, nc, raw.EngineFast, sched)
			if err := res.r.RestoreSnapshot(blob); err != nil {
				t.Fatalf("seed %d: restore: %v", seed, err)
			}
			res.r.Run(34000)
			resFinal, err := res.r.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refFinal, resFinal) {
				t.Fatalf("seed %d: restored continuation (workers=%d, fast engine) diverged from uninterrupted run",
					seed, nc)
			}
		})
	}
}
