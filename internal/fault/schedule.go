// Package fault implements deterministic, seeded fault injection for the
// simulated Raw chip. A Schedule is a list of events — link stalls and
// flaps, tile freezes and crashes, single-bit corruption on a named link,
// word drops at an edge port, DRAM latency spikes — with a compact text
// encoding so a chaos run can be named, logged, and replayed exactly.
// An Injector compiles a schedule into the raw.FaultPlane hooks the chip
// consults while stepping; the same schedule at the same seed produces a
// bit-for-bit identical simulation at any worker count.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/raw"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindLink stalls one static link for a window of cycles: neither
	// endpoint can transfer a word across it.
	KindLink Kind = iota
	// KindFlap repeats a link stall: Repeat windows of Dur cycles, each
	// separated by Dur cycles of healthy operation.
	KindFlap
	// KindFreeze halts an entire tile for a window of cycles; it resumes
	// with its state intact.
	KindFreeze
	// KindCrash halts a tile permanently from Start on.
	KindCrash
	// KindCorrupt flips one bit of the WordIdx-th word ever popped from
	// the named link's input queue.
	KindCorrupt
	// KindDrop loses Count consecutive words at an edge port's pins,
	// starting with the WordIdx-th word ever pushed.
	KindDrop
	// KindDRAM adds Extra cycles of DRAM latency during the window.
	KindDRAM
	// KindRestore is a recovery control, not a fault: it schedules the
	// router's Restore(port) at Start. The injector ignores it; harnesses
	// feed Schedule.Controls() to the router so a chaos run's recovery
	// actions replay as deterministically as its faults. Tile carries the
	// port number.
	KindRestore
	// KindReprobe is a recovery control like KindRestore: it forces the
	// port's ingress to probe its down line at Start, regardless of the
	// backoff schedule.
	KindReprobe
	// KindKillChip is a fabric-level control: it removes whole chip K from
	// an N-chip cluster at Start (the chip stops stepping, its trunks go
	// silent, and its external ports drop offered traffic). Like the other
	// controls the injector ignores it; cluster harnesses consume it via
	// Schedule.ChipControls(). Tile carries the chip index.
	KindKillChip
	// KindRestoreChip is the companion control: the fabric re-admits chip
	// K at Start with a freshly constructed replacement chip.
	KindRestoreChip
	// KindKillTrunk is a fabric-level control for single-link loss: the
	// trunk between chips A (Tile) and B (Chip2) goes dark at Start. Both
	// chips keep running; the fabric's healing plane (if armed) reroutes
	// around the dead link and re-drives held frames.
	KindKillTrunk
	// KindRestoreTrunk is the companion control: the trunk between Tile
	// and Chip2 comes back at Start.
	KindRestoreTrunk
)

// Encoding bounds. The parser rejects values beyond these so that a
// hostile (fuzzed) schedule cannot make the injector allocate or loop
// unboundedly.
const (
	maxTile   = 1024
	maxChip   = 1023
	maxStart  = int64(1) << 40
	maxDur    = int64(1) << 30
	maxRepeat = 1 << 20
	maxWord   = int64(1) << 40
	maxCount  = int64(1) << 30
	maxExtra  = 1 << 20
	maxEvents = 1 << 12
)

// Event is one scheduled fault.
type Event struct {
	Kind    Kind
	Start   int64 // first affected cycle (link/flap/freeze/crash/dram)
	Dur     int64 // window length in cycles
	Repeat  int   // flap: number of stall windows
	Tile    int
	Dir     raw.Dir
	Net     int   // static network (0 or 1)
	WordIdx int64 // corrupt/drop: word index on the link (cumulative)
	Count   int64 // drop: words lost
	Bit     int   // corrupt: bit flipped (0..31)
	Extra   int   // dram: added latency cycles
	Chip2   int   // killtrunk/restoretrunk: the trunk's other chip (Tile is the first)
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

var dirNames = map[string]raw.Dir{"n": raw.DirN, "e": raw.DirE, "s": raw.DirS, "w": raw.DirW}

func dirName(d raw.Dir) string {
	switch d {
	case raw.DirN:
		return "n"
	case raw.DirE:
		return "e"
	case raw.DirS:
		return "s"
	case raw.DirW:
		return "w"
	}
	return "?"
}

// String renders the schedule in the canonical text encoding accepted by
// Parse. Parse(s.String()) reproduces s exactly for any parsed s.
func (s *Schedule) String() string {
	var b strings.Builder
	for i, e := range s.Events {
		if i > 0 {
			b.WriteByte(';')
		}
		link := func() {
			fmt.Fprintf(&b, "t%d.%s", e.Tile, dirName(e.Dir))
			if e.Net != 0 {
				fmt.Fprintf(&b, ".n%d", e.Net)
			}
		}
		switch e.Kind {
		case KindLink:
			fmt.Fprintf(&b, "link@%d+%d:", e.Start, e.Dur)
			link()
		case KindFlap:
			fmt.Fprintf(&b, "flap@%d+%dx%d:", e.Start, e.Dur, e.Repeat)
			link()
		case KindFreeze:
			fmt.Fprintf(&b, "freeze@%d+%d:t%d", e.Start, e.Dur, e.Tile)
		case KindCrash:
			fmt.Fprintf(&b, "crash@%d:t%d", e.Start, e.Tile)
		case KindCorrupt:
			fmt.Fprintf(&b, "corrupt:t%d.%s.w%d.b%d", e.Tile, dirName(e.Dir), e.WordIdx, e.Bit)
			if e.Net != 0 {
				fmt.Fprintf(&b, ".n%d", e.Net)
			}
		case KindDrop:
			fmt.Fprintf(&b, "drop:t%d.%s.w%d+%d", e.Tile, dirName(e.Dir), e.WordIdx, e.Count)
			if e.Net != 0 {
				fmt.Fprintf(&b, ".n%d", e.Net)
			}
		case KindDRAM:
			fmt.Fprintf(&b, "dram@%d+%d:+%d", e.Start, e.Dur, e.Extra)
		case KindRestore:
			fmt.Fprintf(&b, "restore@%d:p%d", e.Start, e.Tile)
		case KindReprobe:
			fmt.Fprintf(&b, "reprobe@%d:p%d", e.Start, e.Tile)
		case KindKillChip:
			fmt.Fprintf(&b, "killchip@%d:c%d", e.Start, e.Tile)
		case KindRestoreChip:
			fmt.Fprintf(&b, "restorechip@%d:c%d", e.Start, e.Tile)
		case KindKillTrunk:
			fmt.Fprintf(&b, "killtrunk@%d:c%d-c%d", e.Start, e.Tile, e.Chip2)
		case KindRestoreTrunk:
			fmt.Fprintf(&b, "restoretrunk@%d:c%d-c%d", e.Start, e.Tile, e.Chip2)
		}
	}
	return b.String()
}

// Parse decodes the text encoding: events joined by ';', each one of
//
//	link@START+DUR:tT.D[.nN]       stall link for DUR cycles
//	flap@START+DURxR:tT.D[.nN]     R stall windows of DUR, DUR apart
//	freeze@START+DUR:tT            freeze tile for DUR cycles
//	crash@START:tT                 freeze tile forever
//	corrupt:tT.D.wI.bB[.nN]        flip bit B of the I-th word popped
//	drop:tT.D.wI+C[.nN]            lose C words at the pins from word I
//	dram@START+DUR:+X              add X cycles of DRAM latency
//	restore@START:pP               control: restore port P at START
//	reprobe@START:pP               control: force port P's line probe
//	killchip@START:cK              control: remove fabric chip K at START
//	restorechip@START:cK           control: re-admit fabric chip K at START
//	killtrunk@START:cA-cB          control: the A<->B trunk goes dark at START
//	restoretrunk@START:cA-cB       control: the A<->B trunk comes back at START
//
// where D is one of n/e/s/w. Empty segments are ignored, so a trailing
// ';' is harmless.
func Parse(text string) (*Schedule, error) {
	s := &Schedule{}
	for _, seg := range strings.Split(text, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if len(s.Events) >= maxEvents {
			return nil, fmt.Errorf("fault: more than %d events", maxEvents)
		}
		e, err := parseEvent(seg)
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", seg, err)
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

// MustParse is Parse for compile-time-constant schedules.
func MustParse(text string) *Schedule {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

func parseEvent(seg string) (Event, error) {
	var e Event
	head, rest, ok := strings.Cut(seg, ":")
	if !ok {
		return e, fmt.Errorf("missing ':'")
	}
	kind, when, timed := strings.Cut(head, "@")
	switch kind {
	case "link", "flap":
		e.Kind = KindLink
		if kind == "flap" {
			e.Kind = KindFlap
		}
		if !timed {
			return e, fmt.Errorf("%s needs @start+dur", kind)
		}
		startS, durS, ok := strings.Cut(when, "+")
		if !ok {
			return e, fmt.Errorf("%s needs @start+dur", kind)
		}
		if e.Kind == KindFlap {
			var repS string
			durS, repS, ok = strings.Cut(durS, "x")
			if !ok {
				return e, fmt.Errorf("flap needs durxcount")
			}
			n, err := parseInt(repS, 1, int64(maxRepeat))
			if err != nil {
				return e, fmt.Errorf("repeat: %w", err)
			}
			e.Repeat = int(n)
		}
		var err error
		if e.Start, err = parseInt(startS, 0, maxStart); err != nil {
			return e, fmt.Errorf("start: %w", err)
		}
		if e.Dur, err = parseInt(durS, 1, maxDur); err != nil {
			return e, fmt.Errorf("dur: %w", err)
		}
		return e, parseLink(&e, rest, false, false)

	case "freeze":
		e.Kind = KindFreeze
		if !timed {
			return e, fmt.Errorf("freeze needs @start+dur")
		}
		startS, durS, ok := strings.Cut(when, "+")
		if !ok {
			return e, fmt.Errorf("freeze needs @start+dur")
		}
		var err error
		if e.Start, err = parseInt(startS, 0, maxStart); err != nil {
			return e, fmt.Errorf("start: %w", err)
		}
		if e.Dur, err = parseInt(durS, 1, maxDur); err != nil {
			return e, fmt.Errorf("dur: %w", err)
		}
		return e, parseTileOnly(&e, rest)

	case "crash":
		e.Kind = KindCrash
		if !timed {
			return e, fmt.Errorf("crash needs @start")
		}
		var err error
		if e.Start, err = parseInt(when, 0, maxStart); err != nil {
			return e, fmt.Errorf("start: %w", err)
		}
		return e, parseTileOnly(&e, rest)

	case "corrupt":
		e.Kind = KindCorrupt
		if timed {
			return e, fmt.Errorf("corrupt takes no @time")
		}
		return e, parseLink(&e, rest, true, false)

	case "drop":
		e.Kind = KindDrop
		if timed {
			return e, fmt.Errorf("drop takes no @time")
		}
		return e, parseLink(&e, rest, false, true)

	case "dram":
		e.Kind = KindDRAM
		if !timed {
			return e, fmt.Errorf("dram needs @start+dur")
		}
		startS, durS, ok := strings.Cut(when, "+")
		if !ok {
			return e, fmt.Errorf("dram needs @start+dur")
		}
		var err error
		if e.Start, err = parseInt(startS, 0, maxStart); err != nil {
			return e, fmt.Errorf("start: %w", err)
		}
		if e.Dur, err = parseInt(durS, 1, maxDur); err != nil {
			return e, fmt.Errorf("dur: %w", err)
		}
		extraS, ok := strings.CutPrefix(rest, "+")
		if !ok {
			return e, fmt.Errorf("dram needs :+extra")
		}
		n, err := parseInt(extraS, 1, int64(maxExtra))
		if err != nil {
			return e, fmt.Errorf("extra: %w", err)
		}
		e.Extra = int(n)
		return e, nil

	case "restore", "reprobe":
		e.Kind = KindRestore
		if kind == "reprobe" {
			e.Kind = KindReprobe
		}
		if !timed {
			return e, fmt.Errorf("%s needs @start", kind)
		}
		var err error
		if e.Start, err = parseInt(when, 0, maxStart); err != nil {
			return e, fmt.Errorf("start: %w", err)
		}
		portS, ok := strings.CutPrefix(rest, "p")
		if !ok {
			return e, fmt.Errorf("%s needs :pPORT", kind)
		}
		n, err := parseInt(portS, 0, 3)
		if err != nil {
			return e, fmt.Errorf("port: %w", err)
		}
		e.Tile = int(n)
		return e, nil

	case "killchip", "restorechip":
		e.Kind = KindKillChip
		if kind == "restorechip" {
			e.Kind = KindRestoreChip
		}
		if !timed {
			return e, fmt.Errorf("%s needs @start", kind)
		}
		var err error
		if e.Start, err = parseInt(when, 0, maxStart); err != nil {
			return e, fmt.Errorf("start: %w", err)
		}
		chipS, ok := strings.CutPrefix(rest, "c")
		if !ok {
			return e, fmt.Errorf("%s needs :cCHIP", kind)
		}
		n, err := parseInt(chipS, 0, maxChip)
		if err != nil {
			return e, fmt.Errorf("chip: %w", err)
		}
		e.Tile = int(n)
		return e, nil

	case "killtrunk", "restoretrunk":
		e.Kind = KindKillTrunk
		if kind == "restoretrunk" {
			e.Kind = KindRestoreTrunk
		}
		if !timed {
			return e, fmt.Errorf("%s needs @start", kind)
		}
		var err error
		if e.Start, err = parseInt(when, 0, maxStart); err != nil {
			return e, fmt.Errorf("start: %w", err)
		}
		aS, bS, ok := strings.Cut(rest, "-")
		if !ok {
			return e, fmt.Errorf("%s needs :cA-cB", kind)
		}
		aS, okA := strings.CutPrefix(aS, "c")
		bS, okB := strings.CutPrefix(bS, "c")
		if !okA || !okB {
			return e, fmt.Errorf("%s needs :cA-cB", kind)
		}
		a, err := parseInt(aS, 0, maxChip)
		if err != nil {
			return e, fmt.Errorf("chip A: %w", err)
		}
		b, err := parseInt(bS, 0, maxChip)
		if err != nil {
			return e, fmt.Errorf("chip B: %w", err)
		}
		e.Tile = int(a)
		e.Chip2 = int(b)
		return e, nil
	}
	return e, fmt.Errorf("unknown fault kind %q", kind)
}

// parseLink decodes tT.D[.wI.bB | .wI+C][.nN] operand lists.
func parseLink(e *Event, rest string, wantBit, wantCount bool) error {
	parts := strings.Split(rest, ".")
	if len(parts) < 2 {
		return fmt.Errorf("need tTILE.DIR")
	}
	tileS, ok := strings.CutPrefix(parts[0], "t")
	if !ok {
		return fmt.Errorf("need tTILE")
	}
	n, err := parseInt(tileS, 0, maxTile)
	if err != nil {
		return fmt.Errorf("tile: %w", err)
	}
	e.Tile = int(n)
	d, ok := dirNames[parts[1]]
	if !ok {
		return fmt.Errorf("bad direction %q", parts[1])
	}
	e.Dir = d
	parts = parts[2:]
	if wantBit || wantCount {
		if len(parts) == 0 || !strings.HasPrefix(parts[0], "w") {
			return fmt.Errorf("need .wINDEX")
		}
		wS := parts[0][1:]
		parts = parts[1:]
		if wantCount {
			idxS, cntS, ok := strings.Cut(wS, "+")
			if !ok {
				return fmt.Errorf("drop needs .wINDEX+COUNT")
			}
			if e.WordIdx, err = parseInt(idxS, 0, maxWord); err != nil {
				return fmt.Errorf("word: %w", err)
			}
			if e.Count, err = parseInt(cntS, 1, maxCount); err != nil {
				return fmt.Errorf("count: %w", err)
			}
		} else {
			if e.WordIdx, err = parseInt(wS, 0, maxWord); err != nil {
				return fmt.Errorf("word: %w", err)
			}
			if len(parts) == 0 || !strings.HasPrefix(parts[0], "b") {
				return fmt.Errorf("corrupt needs .bBIT")
			}
			b, err := parseInt(parts[0][1:], 0, 31)
			if err != nil {
				return fmt.Errorf("bit: %w", err)
			}
			e.Bit = int(b)
			parts = parts[1:]
		}
	}
	if len(parts) > 0 {
		netS, ok := strings.CutPrefix(parts[0], "n")
		if !ok || len(parts) > 1 {
			return fmt.Errorf("unexpected trailing %q", strings.Join(parts, "."))
		}
		n, err := parseInt(netS, 0, int64(raw.NumStaticNets-1))
		if err != nil {
			return fmt.Errorf("net: %w", err)
		}
		e.Net = int(n)
	}
	return nil
}

func parseTileOnly(e *Event, rest string) error {
	tileS, ok := strings.CutPrefix(rest, "t")
	if !ok {
		return fmt.Errorf("need tTILE")
	}
	n, err := parseInt(tileS, 0, maxTile)
	if err != nil {
		return fmt.Errorf("tile: %w", err)
	}
	e.Tile = int(n)
	return nil
}

func parseInt(s string, min, max int64) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if v < min || v > max {
		return 0, fmt.Errorf("%d out of range [%d,%d]", v, min, max)
	}
	return v, nil
}

// Controls returns the schedule's recovery-control events (KindRestore,
// KindReprobe) in start order. They are not faults — the injector skips
// them — so a harness forwards them to the router (ScheduleRestore,
// ScheduleReprobe) to replay a chaos run's recovery actions.
func (s *Schedule) Controls() []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Kind == KindRestore || e.Kind == KindReprobe {
			out = append(out, e)
		}
	}
	return sortEvents(out)
}

// ChipControls returns the schedule's fabric-level controls
// (KindKillChip, KindRestoreChip, KindKillTrunk, KindRestoreTrunk) in
// start order. Like Controls they are not chip faults — the injector
// skips them — so an N-chip cluster harness consumes them
// (cluster.Fabric.ApplySchedule) to replay a chip-loss or trunk-loss
// run's kill and re-admission deterministically.
func (s *Schedule) ChipControls() []Event {
	var out []Event
	for _, e := range s.Events {
		switch e.Kind {
		case KindKillChip, KindRestoreChip, KindKillTrunk, KindRestoreTrunk:
			out = append(out, e)
		}
	}
	return sortEvents(out)
}

// sortEvents orders timed events by start cycle (stable, so equal starts
// keep schedule order); untimed taps keep their relative order too.
func sortEvents(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
