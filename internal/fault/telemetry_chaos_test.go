package fault_test

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// runTelemetryChaos runs one faulted scenario with the telemetry plane
// armed on `workers` host workers and returns the exported snapshot.
// The schedule includes line flaps, so the flight recorder sees real
// recovery events, not just steady-state quanta.
func runTelemetryChaos(t *testing.T, workers int) telemetry.Snapshot {
	t.Helper()
	sched := fault.Random(11, fault.RandomOptions{
		Horizon: 8000, MaxStalls: 5, MaxFlaps: 2, MaxFreezes: 1,
		MaxDRAM: 2, MaxStallCycles: 1000,
	})
	cfg := router.DefaultConfig()
	cfg.Workers = workers
	cfg.Metrics = telemetry.New(telemetry.Config{})
	r, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Chip.InstallFaults(fault.NewInjector(sched, 16))

	rng := traffic.NewRNG(42)
	id := uint16(0)
	sizes := []int{64, 128, 256, 512}
	for c := 0; c < 12000; c += 200 {
		for p := 0; p < 4; p++ {
			for r.InputBacklogWords(p) < 2048 {
				id++
				pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
					traffic.PortAddr(rng.Intn(4), uint32(id)), 64, sizes[rng.Intn(4)], id)
				r.OfferPacket(p, &pkt)
			}
		}
		r.Run(200)
	}
	r.Run(30000)
	return r.TelemetrySnapshot()
}

// TestTelemetryExportBitForBit is the acceptance gate for the telemetry
// plane's determinism: the same faulted scenario run sequentially and on
// every host core must export byte-identical jsonl, csv, and Prometheus
// text. Sampling happens on the cycle-hook goroutine with the workers
// parked, so nothing about the snapshot may depend on host parallelism.
func TestTelemetryExportBitForBit(t *testing.T) {
	a := runTelemetryChaos(t, 1)
	if a.Quanta == 0 {
		t.Fatal("collector sampled no quanta")
	}
	if len(a.Recent) == 0 {
		t.Fatal("flight recorder is empty")
	}
	nc := runtime.NumCPU()
	if nc < 2 {
		nc = 2
	}
	b := runTelemetryChaos(t, nc)
	for _, format := range telemetry.Formats() {
		ea, err := a.Encode(format)
		if err != nil {
			t.Fatalf("encode %s (workers=1): %v", format, err)
		}
		eb, err := b.Encode(format)
		if err != nil {
			t.Fatalf("encode %s (workers=%d): %v", format, nc, err)
		}
		if !bytes.Equal(ea, eb) {
			t.Errorf("%s export differs between workers=1 and workers=%d", format, nc)
		}
	}
}

// TestTelemetryDisabledIsInert: arming the collector must not change a
// single observable router output — the plane watches, it never steers.
// (BenchmarkTelemetryOverhead guards the <1%% time budget; this guards
// behavior.)
func TestTelemetryDisabledIsInert(t *testing.T) {
	run := func(metrics bool) uint64 {
		cfg := router.DefaultConfig()
		if metrics {
			cfg.Metrics = telemetry.New(telemetry.Config{})
		}
		r, err := router.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := traffic.NewRNG(5)
		id := uint16(0)
		for c := 0; c < 6000; c += 200 {
			for p := 0; p < 4; p++ {
				for r.InputBacklogWords(p) < 2048 {
					id++
					pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
						traffic.PortAddr(rng.Intn(4), uint32(id)), 64, 256, id)
					r.OfferPacket(p, &pkt)
				}
			}
			r.Run(200)
		}
		r.Run(20000)
		h := fnv.New64a()
		fmt.Fprintf(h, "%+v", r.Stats())
		for p := 0; p < 4; p++ {
			fmt.Fprintf(h, " %d:%d", r.OutputWords(p), r.Quanta(p))
		}
		return h.Sum64()
	}
	if run(false) != run(true) {
		t.Fatal("arming the telemetry collector changed router behavior")
	}
}
