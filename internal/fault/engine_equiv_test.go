package fault_test

import (
	"bytes"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/fault"
	"repro/internal/raw"
	"repro/internal/telemetry"
)

// The engine oracle over the fault layer: every chaos and soak schedule
// is re-run under the compiled fast engine and must be indistinguishable
// from the reference interpreter — same fingerprint over cycle count,
// stats, dead/failed state, output words, quanta, and delivered
// payloads; same final checkpoint bytes; same telemetry exports. The
// chaos runs install a fault plane, which keeps macro-stepping disarmed
// (fault schedules perturb individual cycles), so they exercise the fast
// engine's per-cycle path; the soak runs have no fault plane, so the
// router's step hook lets macro windows engage mid-quantum and the
// byte-for-byte comparisons below cover the macro restore path too.
// Macro engagement counters themselves (StatsSnapshot/telemetry macro
// fields) are host-engine observability outside the equivalence surface:
// the fingerprints hash the embedded Stats only, and the telemetry
// export comparison normalizes the macro fields to zero first.

func chaosWorkerMatrix() int {
	nc := runtime.NumCPU()
	if nc < 2 {
		nc = 2
	}
	return nc
}

// TestChaosEngineEquivalence replays every pinned chaos schedule under
// the fast engine at workers 1 and NumCPU against the reference
// interpreter, failing on the first divergent fingerprint.
func TestChaosEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("engine chaos matrix skipped in -short")
	}
	nc := chaosWorkerMatrix()
	crashNoise := fault.Random(5, fault.RandomOptions{
		Horizon: 8000, MaxStalls: 4, MaxFlaps: 2, MaxFreezes: 0,
		MaxDRAM: 1, MaxStallCycles: 800,
	})
	scenarios := []struct {
		name        string
		sched       *fault.Schedule
		watchdog    bool
		trafficSeed uint64
		feed, drain int
	}{
		{"recoverable-seed1", fault.Random(1, fault.RandomOptions{
			Horizon: 10000, MaxStalls: 6, MaxFlaps: 3, MaxFreezes: 2,
			MaxDRAM: 2, MaxStallCycles: 1200,
		}), false, 101, 15000, 60000},
		{"recoverable-seed2", fault.Random(2, fault.RandomOptions{
			Horizon: 10000, MaxStalls: 6, MaxFlaps: 3, MaxFreezes: 2,
			MaxDRAM: 2, MaxStallCycles: 1200,
		}), false, 102, 15000, 60000},
		{"recoverable-seed3", fault.Random(3, fault.RandomOptions{
			Horizon: 10000, MaxStalls: 6, MaxFlaps: 3, MaxFreezes: 2,
			MaxDRAM: 2, MaxStallCycles: 1200,
		}), false, 103, 15000, 60000},
		{"replay-seed7", fault.Random(7, fault.RandomOptions{
			Horizon: 8000, MaxStalls: 5, MaxFlaps: 2, MaxFreezes: 1,
			MaxDRAM: 2, MaxStallCycles: 1000,
		}), false, 42, 12000, 50000},
		{"crash-degrade", &fault.Schedule{Events: append(crashNoise.Events,
			fault.MustParse("crash@5000:t10").Events...)}, true, 9, 18000, 70000},
		{"corruption-pin-drops", fault.MustParse(
			"corrupt:t4.w.w194.b9;corrupt:t4.w.w468.b4;drop:t11.e.w320+64"),
			false, 8, 8000, 40000},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ref := runChaos(t, sc.sched, sc.watchdog, 1, raw.EngineRef, sc.trafficSeed, sc.feed, sc.drain)
			for _, workers := range []int{1, nc} {
				fast := runChaos(t, sc.sched, sc.watchdog, workers, raw.EngineFast, sc.trafficSeed, sc.feed, sc.drain)
				if fast.dead != ref.dead || fast.failed != ref.failed {
					t.Fatalf("fast engine (workers=%d): health diverged: dead=%d failed=%v, want dead=%d failed=%v",
						workers, fast.dead, fast.failed, ref.dead, ref.failed)
				}
				if fast.stats != ref.stats {
					t.Fatalf("fast engine (workers=%d): stats diverged:\nfast %+v\nref  %+v",
						workers, fast.stats, ref.stats)
				}
				if len(fast.delivered) != len(ref.delivered) {
					t.Fatalf("fast engine (workers=%d): delivered %d packets, ref delivered %d",
						workers, len(fast.delivered), len(ref.delivered))
				}
				if fast.fp != ref.fp {
					t.Fatalf("fast engine (workers=%d): fingerprint diverged: %x vs ref %x",
						workers, fast.fp, ref.fp)
				}
			}
		})
	}
}

// TestSoakEngineEquivalence runs every soak seed's full degrade→restore
// arc under both engines and requires byte-identical final checkpoints,
// event logs, and telemetry exports. The fast run uses NumCPU workers,
// so one comparison covers both the engine and the worker matrix.
func TestSoakEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("engine soak matrix skipped in -short")
	}
	seeds := soakSeeds(t)
	nc := chaosWorkerMatrix()
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		sched, port := soakSchedule(seed)
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			drive := func(workers int, eng raw.Engine) (*soakRun, []byte) {
				s := newSoakRun(t, workers, eng, sched)
				s.feedPhase(seed + 100)
				s.r.Run(34000)
				blob, err := s.r.Snapshot()
				if err != nil {
					t.Fatalf("seed %d (%v engine): %v", seed, eng, err)
				}
				return s, blob
			}
			ref, refBlob := drive(1, raw.EngineRef)
			fast, fastBlob := drive(nc, raw.EngineFast)
			if rc, fc := ref.r.Cycle(), fast.r.Cycle(); rc != fc {
				t.Fatalf("seed %d (port %d): cycle count diverged: ref %d, fast %d", seed, port, rc, fc)
			}
			if !bytes.Equal(refBlob, fastBlob) {
				t.Fatalf("seed %d (port %d, %q): final checkpoint differs between engines", seed, port, sched)
			}
			if rl, fl := ref.ev.String(), fast.ev.String(); rl != fl {
				t.Fatalf("seed %d: event logs diverged:\nref:\n%s\nfast:\n%s", seed, rl, fl)
			}
			refSnap, fastSnap := ref.r.TelemetrySnapshot(), fast.r.TelemetrySnapshot()
			// The macro engagement fields describe the host engine (the
			// fast run macro-steps, the reference run cannot); zero them
			// on both sides so the comparison covers exactly the
			// simulation-visible surface.
			for _, s := range []*telemetry.Snapshot{&refSnap, &fastSnap} {
				s.MacroWindows, s.MacroCycles, s.MacroDisarms = 0, 0, nil
			}
			for _, format := range telemetry.Formats() {
				re, err := refSnap.Encode(format)
				if err != nil {
					t.Fatalf("encode %s (ref): %v", format, err)
				}
				fe, err := fastSnap.Encode(format)
				if err != nil {
					t.Fatalf("encode %s (fast): %v", format, err)
				}
				if !bytes.Equal(re, fe) {
					t.Errorf("seed %d: %s telemetry export differs between engines", seed, format)
				}
			}
		})
	}
}
