package fault

import "testing"

func windowOpts() RandomOptions {
	return RandomOptions{MaxStalls: 6, MaxFlaps: 3, MaxFreezes: 2, MaxDRAM: 2}
}

// TestWindowPure: Window is a pure function of its arguments — two calls
// agree event for event.
func TestWindowPure(t *testing.T) {
	a := Window(42, 1, 3, 100_000, windowOpts())
	b := Window(42, 1, 3, 100_000, windowOpts())
	if len(a.Events) == 0 {
		t.Fatal("window generated no events")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestWindowConfined: every event of window k starts inside
// [k*window, (k+1)*window).
func TestWindowConfined(t *testing.T) {
	const w = 50_000
	for k := int64(0); k < 4; k++ {
		s := Window(7, 0, k, w, windowOpts())
		for _, e := range s.Events {
			if e.Start < k*w || e.Start >= (k+1)*w {
				t.Fatalf("window %d event starts at %d, outside [%d, %d)", k, e.Start, k*w, (k+1)*w)
			}
		}
	}
}

// TestWindowEraDiverges: bumping the era redraws the window.
func TestWindowEraDiverges(t *testing.T) {
	a := Window(42, 0, 2, 100_000, windowOpts())
	b := Window(42, 1, 2, 100_000, windowOpts())
	same := len(a.Events) == len(b.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("era bump left the window unchanged")
	}
}

// TestUnionMerges: Union concatenates schedules (nils skipped) and keeps
// every event.
func TestUnionMerges(t *testing.T) {
	a := Window(1, 0, 0, 50_000, windowOpts())
	b := Window(1, 0, 1, 50_000, windowOpts())
	u := Union(nil, a, nil, b)
	if len(u.Events) != len(a.Events)+len(b.Events) {
		t.Fatalf("union has %d events, want %d", len(u.Events), len(a.Events)+len(b.Events))
	}
	if len(Union().Events) != 0 {
		t.Fatal("empty union not empty")
	}
}
