package fault

// Rolling chaos windows (serve-mode extension). A long-lived daemon
// cannot pre-generate one fixed-horizon schedule: it does not know how
// long it will run. Instead the soak loop asks for window k as the
// simulation reaches it, each window an independently seeded recoverable
// schedule confined to [k*window, (k+1)*window) cycles. The window
// function is pure — (seed, era, k, window, opts) fully determine the
// events — so a restore can regenerate every window the checkpointed run
// had installed and replay bit-for-bit, and a supervisor restart can bump
// `era` so the arc that killed the previous incarnation is not replayed
// verbatim against the restored state.

// mixWindowSeed derives window k's generator seed from the soak seed and
// restart era (splitmix64-style finalizer; any change alters every
// generated soak schedule).
func mixWindowSeed(seed, era uint64, k int64) uint64 {
	z := seed ^ (era+1)*0x9e3779b97f4a7c15 ^ (uint64(k)+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// Window generates the k-th rolling chaos window: a seeded recoverable
// schedule (the Random classes: link stalls, flaps, bounded freezes, DRAM
// spikes) whose events all start within [k*window, (k+1)*window). Event
// durations are bounded by opts.MaxStallCycles as in Random, so a window
// may bleed slightly into its successor — that overlap is deterministic
// and harmless to replay. opts.Horizon is ignored (the window length is
// the horizon).
func Window(seed, era uint64, k, window int64, opts RandomOptions) *Schedule {
	if window <= 0 {
		window = 100_000
	}
	opts.Horizon = window
	s := Random(mixWindowSeed(seed, era, k), opts)
	base := k * window
	for i := range s.Events {
		s.Events[i].Start += base
	}
	return s
}

// Union concatenates schedules into one (events in argument order; nil
// schedules are skipped). The injector compiled from the union of all
// windows installed so far is what a restored run must rebuild before
// replay: mid-run injector swaps are legal between cycles, but the replay
// sees only the final injector, so it must cover every window the
// original run experienced.
func Union(scheds ...*Schedule) *Schedule {
	u := &Schedule{}
	for _, s := range scheds {
		if s == nil {
			continue
		}
		u.Events = append(u.Events, s.Events...)
	}
	return u
}
