package fault_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/traffic"
)

// The chaos harness: randomized fault schedules crossed with traffic,
// asserting the three properties the robustness layer promises —
// conservation (every offered packet is delivered or counted in exactly
// one drop bucket), no duplication, and bit-for-bit replay of the whole
// scenario at any worker count.

type chaosResult struct {
	fp        uint64
	stats     router.Stats
	dead      int
	failed    bool
	offered   int64
	delivered []ip.Packet
	sent      map[uint16]ip.Packet
}

// runChaos runs one full scenario: build a router on `workers` host
// workers with the given cycle engine, install the schedule, feed seeded
// traffic for feedCycles, then drain for drainCycles and fingerprint
// everything observable.
func runChaos(t *testing.T, sched *fault.Schedule, watchdog bool, workers int, eng raw.Engine,
	trafficSeed uint64, feedCycles, drainCycles int) *chaosResult {
	t.Helper()
	cfg := router.DefaultConfig()
	cfg.Workers = workers
	cfg.Engine = eng
	if watchdog {
		cfg.Watchdog = true
		cfg.WatchdogCycles = 4000
	}
	r, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Chip.InstallFaults(fault.NewInjector(sched, 16))

	rng := traffic.NewRNG(trafficSeed)
	id := uint16(0)
	res := &chaosResult{sent: map[uint16]ip.Packet{}}
	sizes := []int{64, 128, 256, 512}
	for c := 0; c < feedCycles; c += 200 {
		for p := 0; p < 4; p++ {
			for r.InputBacklogWords(p) < 2048 {
				id++
				pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)),
					traffic.PortAddr(rng.Intn(4), uint32(id)), 64, sizes[rng.Intn(4)], id)
				res.sent[id] = pkt
				r.OfferPacket(p, &pkt)
				res.offered++
			}
		}
		r.Run(200)
	}
	r.Run(int64(drainCycles))

	res.stats = r.Stats().Stats
	res.dead = r.DeadPort()
	res.failed = r.Failed()
	h := fnv.New64a()
	// Fingerprint the simulation-visible counters (the embedded Stats),
	// not the full StatsSnapshot: its macro-step engagement fields are
	// host-engine observability (the disarm histogram only accumulates
	// under the fast engine) and are excluded from the equivalence
	// surface by design.
	fmt.Fprintf(h, "cycle=%d dead=%d failed=%v stats=%+v", r.Cycle(), res.dead, res.failed, res.stats)
	for p := 0; p < 4; p++ {
		fmt.Fprintf(h, " out%d=%d q%d=%d", p, r.OutputWords(p), p, r.Quanta(p))
		pkts, err := r.DrainOutput(p)
		if err != nil {
			t.Fatalf("workers=%d: output %d corrupt: %v", workers, p, err)
		}
		for _, pk := range pkts {
			fmt.Fprintf(h, " %d:%d:%d", p, pk.Header.ID, pk.Header.TotalLen)
			_ = binary.Write(h, binary.LittleEndian, pk.Payload)
		}
		res.delivered = append(res.delivered, pkts...)
	}
	res.fp = h.Sum64()
	return res
}

// checkNoDuplicates asserts unicast delivery: every delivered ID was sent
// and appears at most once.
func checkNoDuplicates(t *testing.T, res *chaosResult) {
	t.Helper()
	seen := map[uint16]bool{}
	for _, pk := range res.delivered {
		if _, ok := res.sent[pk.Header.ID]; !ok {
			t.Fatalf("delivered unknown packet id %d", pk.Header.ID)
		}
		if seen[pk.Header.ID] {
			t.Fatalf("packet id %d delivered twice", pk.Header.ID)
		}
		seen[pk.Header.ID] = true
	}
}

// TestChaosRecoverableFaults: schedules drawn only from the
// conservation-neutral classes (stalls, flaps, freezes, DRAM spikes)
// slow the fabric down but must not lose, duplicate, or corrupt a single
// packet.
func TestChaosRecoverableFaults(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		sched := fault.Random(seed, fault.RandomOptions{
			Horizon: 10000, MaxStalls: 6, MaxFlaps: 3, MaxFreezes: 2,
			MaxDRAM: 2, MaxStallCycles: 1200,
		})
		res := runChaos(t, sched, false, 1, raw.EngineRef, seed+100, 15000, 60000)
		if int64(len(res.delivered)) != res.offered {
			t.Fatalf("seed %d (%q): delivered %d of %d offered; stats %+v",
				seed, sched, len(res.delivered), res.offered, res.stats)
		}
		checkNoDuplicates(t, res)
		for _, pk := range res.delivered {
			want := res.sent[pk.Header.ID]
			for i := range want.Payload {
				if pk.Payload[i] != want.Payload[i] {
					t.Fatalf("seed %d: id %d payload word %d corrupted", seed, pk.Header.ID, i)
				}
			}
		}
	}
}

// TestChaosReplayBitForBit: one randomized scenario, three runs — twice
// sequential, once on every host core — must produce identical
// fingerprints over stats, output words, quanta, and delivered payloads.
func TestChaosReplayBitForBit(t *testing.T) {
	sched := fault.Random(7, fault.RandomOptions{
		Horizon: 8000, MaxStalls: 5, MaxFlaps: 2, MaxFreezes: 1,
		MaxDRAM: 2, MaxStallCycles: 1000,
	})
	a := runChaos(t, sched, false, 1, raw.EngineRef, 42, 12000, 50000)
	b := runChaos(t, sched, false, 1, raw.EngineRef, 42, 12000, 50000)
	if a.fp != b.fp {
		t.Fatalf("same-seed replay diverged: %x vs %x", a.fp, b.fp)
	}
	nc := runtime.NumCPU()
	if nc < 2 {
		nc = 2
	}
	c := runChaos(t, sched, false, nc, raw.EngineRef, 42, 12000, 50000)
	if a.fp != c.fp {
		t.Fatalf("parallel engine (workers=%d) diverged from sequential: %x vs %x", nc, a.fp, c.fp)
	}
}

// TestChaosCrashDegrade: a crossbar crash buried in recoverable noise.
// The watchdog must attribute it, the fabric must degrade (not halt),
// conservation must hold at the fabric boundary, and the whole scenario
// — including the watchdog's firing cycle — must replay bit-for-bit
// sequentially and in parallel.
func TestChaosCrashDegrade(t *testing.T) {
	noise := fault.Random(5, fault.RandomOptions{
		Horizon: 8000, MaxStalls: 4, MaxFlaps: 2, MaxFreezes: 0,
		MaxDRAM: 1, MaxStallCycles: 800,
	})
	sched := &fault.Schedule{Events: append(noise.Events,
		fault.MustParse("crash@5000:t10").Events...)}

	run := func(workers int) *chaosResult {
		return runChaos(t, sched, true, workers, raw.EngineRef, 9, 18000, 70000)
	}
	a := run(1)
	if a.dead != 2 { // tile 10 is port 2's crossbar
		t.Fatalf("dead port %d (failed=%v), want 2; stats %+v", a.dead, a.failed, a.stats)
	}
	if a.failed {
		t.Fatal("router fail-stopped instead of degrading")
	}
	checkNoDuplicates(t, a)
	var in, out int64
	for p := 0; p < 4; p++ {
		in += a.stats.PktsIn[p]
		out += a.stats.PktsOut[p]
	}
	if in != out+a.stats.FabricLost {
		t.Fatalf("conservation: PktsIn %d != PktsOut %d + FabricLost %d",
			in, out, a.stats.FabricLost)
	}
	if out <= a.stats.PktsOut[2] {
		t.Fatal("surviving ports forwarded nothing")
	}

	b := run(1)
	if a.fp != b.fp {
		t.Fatalf("crash scenario replay diverged: %x vs %x", a.fp, b.fp)
	}
	nc := runtime.NumCPU()
	if nc < 2 {
		nc = 2
	}
	c := run(nc)
	if a.fp != c.fp {
		t.Fatalf("crash scenario parallel (workers=%d) diverged: %x vs %x", nc, a.fp, c.fp)
	}
}

// TestChaosCorruptionAndPinDrops: precisely aimed bit flips and pin-level
// word loss. A header flip must be rejected by the ingress checksum and
// counted once in Stats.Dropped; a payload flip must deliver (exactly
// that bit wrong); a whole packet lost at the pins simply never enters
// the accounting. Everything else is delivered intact, and the scenario
// replays bit-for-bit at any worker count.
func TestChaosCorruptionAndPinDrops(t *testing.T) {
	const pktWords = 64 // 256-byte packets
	// Port 0's line enters tile 4 from the west; port 2's enters tile 11
	// from the east (Figure 7-2).
	sched := fault.MustParse(
		"corrupt:t4.w.w194.b9;" + // packet 3 (words 192..255), header word 2
			"corrupt:t4.w.w468.b4;" + // packet 7, wire word 20 = payload[15]
			"drop:t11.e.w320+64") // port 2 packet 5, dropped whole at the pins

	const perPort = 12
	run := func(workers int) (*chaosResult, *router.Router) {
		cfg := router.DefaultConfig()
		cfg.Workers = workers
		r, err := router.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Chip.InstallFaults(fault.NewInjector(sched, 16))
		res := &chaosResult{sent: map[uint16]ip.Packet{}}
		for p := 0; p < 4; p++ {
			for k := 0; k < perPort; k++ {
				id := uint16(p*100 + k + 1)
				dst := (p + 1 + k%3) % 4
				pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(dst, uint32(id)), 64, pktWords*4, id)
				res.sent[id] = pkt
				r.OfferPacket(p, &pkt)
				res.offered++
			}
		}
		r.Run(60000)
		res.stats = r.Stats().Stats
		h := fnv.New64a()
		// Embedded Stats only: macro engagement fields are host-engine
		// observability, outside the equivalence surface.
		fmt.Fprintf(h, "stats=%+v", res.stats)
		for p := 0; p < 4; p++ {
			pkts, err := r.DrainOutput(p)
			if err != nil {
				t.Fatalf("workers=%d output %d: %v", workers, p, err)
			}
			for _, pk := range pkts {
				fmt.Fprintf(h, " %d:%d", p, pk.Header.ID)
				_ = binary.Write(h, binary.LittleEndian, pk.Payload)
			}
			res.delivered = append(res.delivered, pkts...)
		}
		res.fp = h.Sum64()
		return res, r
	}

	a, _ := run(1)
	if got := a.stats.Dropped[0]; got != 1 {
		t.Fatalf("Dropped[0] = %d, want 1 (header corruption); stats %+v", got, a.stats)
	}
	// offered − 1 header-corrupt − 1 pin-dropped packets deliver.
	if int64(len(a.delivered)) != a.offered-2 {
		t.Fatalf("delivered %d, want %d; stats %+v", len(a.delivered), a.offered-2, a.stats)
	}
	checkNoDuplicates(t, a)
	for _, pk := range a.delivered {
		if pk.Header.ID == 4 || pk.Header.ID == 206 {
			t.Fatalf("packet id %d should have been lost", pk.Header.ID)
		}
		want := a.sent[pk.Header.ID]
		for i := range want.Payload {
			w := want.Payload[i]
			if pk.Header.ID == 8 && i == 15 {
				w ^= 1 << 4 // the injected payload flip
			}
			if pk.Payload[i] != w {
				t.Fatalf("id %d payload word %d: got %#x want %#x", pk.Header.ID, i, pk.Payload[i], w)
			}
		}
	}

	b, _ := run(1)
	if a.fp != b.fp {
		t.Fatalf("replay diverged: %x vs %x", a.fp, b.fp)
	}
	nc := runtime.NumCPU()
	if nc < 2 {
		nc = 2
	}
	c, _ := run(nc)
	if a.fp != c.fp {
		t.Fatalf("parallel run diverged: %x vs %x", a.fp, c.fp)
	}
}

// TestInjectorDisabledIsInert: sanity — an empty schedule must not change
// a single observable output word (guards the near-zero-cost claim
// functionally; BenchmarkFaultHookOverhead guards it in time).
func TestInjectorDisabledIsInert(t *testing.T) {
	run := func(install bool) uint64 {
		r, err := router.New(router.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if install {
			r.Chip.InstallFaults(fault.NewInjector(&fault.Schedule{}, 16))
		}
		pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 7), 64, 512, 3)
		r.OfferPacket(0, &pkt)
		r.Run(20000)
		h := fnv.New64a()
		fmt.Fprintf(h, "%+v %d", r.Stats().Stats, r.OutputWords(2))
		return h.Sum64()
	}
	if run(false) != run(true) {
		t.Fatal("an empty fault schedule changed router behavior")
	}
}
