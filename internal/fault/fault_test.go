package fault

import (
	"testing"

	"repro/internal/raw"
)

// route W->N forever on tile 0: a one-instruction streaming loop between
// two boundary links, the smallest fabric a link fault can bite.
func streamChip(t *testing.T) *raw.Chip {
	t.Helper()
	chip := raw.NewChip(raw.DefaultConfig())
	prog := []raw.SwInstr{{Op: raw.SwJump, Arg: 0,
		Routes: []raw.Route{{Dst: raw.DirN, Src: raw.DirW}}}}
	if err := chip.Tile(0).SetSwitchProgram(prog); err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestRoundTrip(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindLink, Start: 100, Dur: 50, Tile: 4, Dir: raw.DirW},
		{Kind: KindFlap, Start: 0, Dur: 10, Repeat: 3, Tile: 7, Dir: raw.DirE, Net: 1},
		{Kind: KindFreeze, Start: 5, Dur: 1000, Tile: 10},
		{Kind: KindCrash, Start: 2000, Tile: 5},
		{Kind: KindCorrupt, Tile: 4, Dir: raw.DirW, WordIdx: 17, Bit: 31},
		{Kind: KindDrop, Tile: 8, Dir: raw.DirW, WordIdx: 3, Count: 2},
		{Kind: KindDRAM, Start: 50, Dur: 25, Extra: 300},
		{Kind: KindKillChip, Start: 400, Tile: 3},
		{Kind: KindRestoreChip, Start: 900, Tile: 3},
	}}
	text := s.String()
	re, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	if re.String() != text {
		t.Fatalf("round trip changed encoding:\n %q\n %q", text, re.String())
	}
	if len(re.Events) != len(s.Events) {
		t.Fatalf("round trip changed event count: %d != %d", len(re.Events), len(s.Events))
	}
	for i := range s.Events {
		if re.Events[i] != s.Events[i] {
			t.Errorf("event %d changed: %+v != %+v", i, re.Events[i], s.Events[i])
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"link:t0.w",                        // missing window
		"link@5:t0.w",                      // missing dur
		"link@5+0:t0.w",                    // zero dur
		"freeze@1+2:t0.w",                  // trailing dir on a tile fault
		"crash@1:x0",                       // bad tile
		"corrupt:t0.w.w1",                  // missing bit
		"corrupt:t0.w.w1.b32",              // bit out of range
		"drop:t0.w.w1",                     // missing count
		"dram@1+1:5",                       // missing '+'
		"bogus@1+1:t0",                     // unknown kind
		"link@1+1:t0.p",                    // processor port is not a link
		"link@1+1:t0.w.n9",                 // bad net
		"link@99999999999999999999+1:t0.w", // overflow
		"killchip:c1",                      // missing cycle
		"killchip@5:t1",                    // tile target, not chip
		"killchip@5:c1024",                 // chip out of range
		"restorechip@5+10:c1",              // controls take no duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestChipControls: killchip@/restorechip@ ride the schedule as
// fabric-level controls — sorted out by ChipControls, skipped by the
// per-chip injector (Controls likewise excludes them).
func TestChipControls(t *testing.T) {
	s := MustParse("restorechip@900:c2;killchip@100:c2;freeze@5+10:t0;restore@50:p1")
	ctls := s.ChipControls()
	if len(ctls) != 2 || ctls[0].Kind != KindKillChip || ctls[0].Start != 100 ||
		ctls[1].Kind != KindRestoreChip || ctls[1].Tile != 2 {
		t.Fatalf("ChipControls = %+v", ctls)
	}
	for _, c := range s.Controls() {
		if c.Kind == KindKillChip || c.Kind == KindRestoreChip {
			t.Fatalf("chip control leaked into router controls: %+v", c)
		}
	}
	chip := streamChip(t)
	chip.InstallFaults(NewInjector(s, chip.NumTiles())) // must not panic or inject
	in := chip.StaticIn(0, raw.DirW)
	for w := 0; w < 4; w++ {
		in.Push(raw.Word(w))
	}
	chip.Run(30)
	if words, _ := chip.StaticOut(0, raw.DirN).Drain(); len(words) != 4 {
		t.Fatalf("chip controls perturbed the chip: %d words", len(words))
	}
}

func TestLinkStallDelaysWords(t *testing.T) {
	chip := streamChip(t)
	chip.InstallFaults(NewInjector(MustParse("link@2+30:t0.w"), chip.NumTiles()))
	in := chip.StaticIn(0, raw.DirW)
	for w := 0; w < 10; w++ {
		in.Push(raw.Word(w))
	}
	chip.Run(60)
	words, cycles := chip.StaticOut(0, raw.DirN).Drain()
	if len(words) != 10 {
		t.Fatalf("delivered %d words, want 10", len(words))
	}
	for i, w := range words {
		if w != raw.Word(i) {
			t.Fatalf("word %d = %d, corrupted by a pure stall", i, w)
		}
	}
	// The stall covers cycles [2,32): no word may cross the pins then.
	for i, c := range cycles {
		if c >= 2 && c < 32 {
			t.Fatalf("word %d exited at cycle %d, inside the stall window", i, c)
		}
	}
	if cycles[len(cycles)-1] < 32 {
		t.Fatalf("last word exited at %d, before the stall lifted", cycles[len(cycles)-1])
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	chip := streamChip(t)
	chip.InstallFaults(NewInjector(MustParse("corrupt:t0.w.w3.b5"), chip.NumTiles()))
	in := chip.StaticIn(0, raw.DirW)
	for w := 0; w < 8; w++ {
		in.Push(raw.Word(100 + w))
	}
	chip.Run(30)
	words, _ := chip.StaticOut(0, raw.DirN).Drain()
	if len(words) != 8 {
		t.Fatalf("delivered %d words, want 8", len(words))
	}
	for i, w := range words {
		want := raw.Word(100 + i)
		if i == 3 {
			want ^= 1 << 5
		}
		if w != want {
			t.Errorf("word %d = %d, want %d", i, w, want)
		}
	}
}

func TestEdgeDropLosesWords(t *testing.T) {
	chip := streamChip(t)
	chip.InstallFaults(NewInjector(MustParse("drop:t0.w.w2+3"), chip.NumTiles()))
	in := chip.StaticIn(0, raw.DirW)
	for w := 0; w < 10; w++ {
		in.Push(raw.Word(w))
	}
	chip.Run(30)
	words, _ := chip.StaticOut(0, raw.DirN).Drain()
	want := []raw.Word{0, 1, 5, 6, 7, 8, 9}
	if len(words) != len(want) {
		t.Fatalf("delivered %d words, want %d", len(words), len(want))
	}
	for i, w := range words {
		if w != want[i] {
			t.Errorf("word %d = %d, want %d", i, w, want[i])
		}
	}
	if got := in.Consumed(); got != int64(len(want)) {
		t.Errorf("Consumed() = %d, want %d", got, len(want))
	}
}

func TestFreezeAndCrashStopTile(t *testing.T) {
	chip := streamChip(t)
	chip.InstallFaults(NewInjector(MustParse("freeze@0+40:t0"), chip.NumTiles()))
	in := chip.StaticIn(0, raw.DirW)
	in.Push(1, 2, 3)
	chip.Run(40)
	if words, _ := chip.StaticOut(0, raw.DirN).Drain(); len(words) != 0 {
		t.Fatalf("frozen tile moved %d words", len(words))
	}
	chip.Run(20)
	if words, _ := chip.StaticOut(0, raw.DirN).Drain(); len(words) != 3 {
		t.Fatalf("thawed tile delivered %d words, want 3", len(words))
	}

	chip2 := streamChip(t)
	chip2.InstallFaults(NewInjector(MustParse("crash@5:t0"), chip2.NumTiles()))
	chip2.StaticIn(0, raw.DirW).Push(1, 2, 3, 4, 5, 6, 7, 8)
	chip2.Run(100)
	words, _ := chip2.StaticOut(0, raw.DirN).Drain()
	if len(words) >= 8 {
		t.Fatalf("crashed tile delivered all %d words", len(words))
	}
}

func TestFlapWindows(t *testing.T) {
	inj := NewInjector(MustParse("flap@10+5x3:t2.e"), 16)
	stalledAt := func(c int64) bool {
		inj.BeginCycle(c)
		return inj.LinkStalled(2, raw.DirE, 0)
	}
	// Windows: [10,15) [20,25) [30,35).
	for _, tc := range []struct {
		cycle int64
		want  bool
	}{{9, false}, {10, true}, {14, true}, {15, false}, {19, false},
		{20, true}, {24, true}, {25, false}, {30, true}, {34, true}, {35, false}, {100, false}} {
		if got := stalledAt(tc.cycle); got != tc.want {
			t.Errorf("cycle %d: stalled = %v, want %v", tc.cycle, got, tc.want)
		}
	}
}

func TestDRAMPenaltyWindow(t *testing.T) {
	inj := NewInjector(MustParse("dram@10+5:+100;dram@12+2:+300"), 16)
	for _, tc := range []struct {
		cycle int64
		want  int
	}{{9, 0}, {10, 100}, {12, 300}, {13, 300}, {14, 100}, {15, 0}} {
		inj.BeginCycle(tc.cycle)
		if got := inj.DRAMPenalty(); got != tc.want {
			t.Errorf("cycle %d: penalty = %d, want %d", tc.cycle, got, tc.want)
		}
	}
}

func TestRandomReplayable(t *testing.T) {
	o := RandomOptions{Horizon: 50_000, MaxStalls: 4, MaxFlaps: 3, MaxFreezes: 2, MaxDRAM: 2}
	a := Random(42, o).String()
	b := Random(42, o).String()
	if a != b {
		t.Fatalf("same seed produced different schedules:\n %q\n %q", a, b)
	}
	if c := Random(43, o).String(); c == a && a != "" {
		t.Fatalf("different seeds produced identical non-empty schedules")
	}
	// Generated schedules must round-trip like hand-written ones.
	re, err := Parse(a)
	if err != nil {
		t.Fatalf("Parse(generated): %v", err)
	}
	if re.String() != a {
		t.Fatalf("generated schedule is not canonical:\n %q\n %q", a, re.String())
	}
}

// TestDisabledPlaneIsInert pins the no-faults contract: a chip without an
// installed plane behaves identically to one with a nil-removed plane.
func TestDisabledPlaneIsInert(t *testing.T) {
	run := func(install bool) []raw.Word {
		chip := streamChip(t)
		if install {
			chip.InstallFaults(NewInjector(&Schedule{}, chip.NumTiles()))
			chip.InstallFaults(nil)
		}
		in := chip.StaticIn(0, raw.DirW)
		for w := 0; w < 6; w++ {
			in.Push(raw.Word(w))
		}
		chip.Run(20)
		words, _ := chip.StaticOut(0, raw.DirN).Drain()
		return words
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("nil-removed plane changed behavior: %v vs %v", a, b)
	}
}
