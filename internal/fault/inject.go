package fault

import (
	"repro/internal/raw"
)

// linkKey names one static input queue: the reading tile, the direction
// the words arrive from, and the static network.
type linkKey struct {
	tile int
	dir  raw.Dir
	net  int
}

// popTap holds the corruption taps on one link plus the link's cumulative
// pop counter. Each link has exactly one popping tile, so count has a
// single writer even under the parallel engine.
type popTap struct {
	count int64
	taps  []Event // KindCorrupt, ordered by WordIdx
	next  int
}

// pushTap holds the drop windows on one edge port plus its cumulative
// push counter. Edge pushes happen between cycles on the testbench side,
// so count is single-threaded.
type pushTap struct {
	count int64
	taps  []Event // KindDrop, ordered by WordIdx
	next  int
}

// Injector compiles a Schedule into the raw.FaultPlane hooks. Per-cycle
// state (frozen tiles, stalled links, DRAM penalty) is recomputed in
// BeginCycle on the main goroutine and only read during the cycle, so the
// injector is race-free and deterministic at any worker count.
type Injector struct {
	numTiles int
	timed    []Event // link/flap/freeze/crash/dram, sorted by Start

	frozen  []bool
	stalled map[linkKey]bool
	penalty int

	pops   map[linkKey]*popTap
	pushes map[linkKey]*pushTap
}

var _ raw.FaultPlane = (*Injector)(nil)

// NewInjector compiles a schedule for a chip with numTiles tiles. Events
// naming tiles outside the chip are ignored (the schedule encoding allows
// larger meshes than the one under test).
func NewInjector(s *Schedule, numTiles int) *Injector {
	inj := &Injector{
		numTiles: numTiles,
		frozen:   make([]bool, numTiles),
		stalled:  make(map[linkKey]bool),
		pops:     make(map[linkKey]*popTap),
		pushes:   make(map[linkKey]*pushTap),
	}
	var timed []Event
	for _, e := range s.Events {
		if e.Tile >= numTiles && e.Kind != KindDRAM {
			continue
		}
		switch e.Kind {
		case KindRestore, KindReprobe, KindKillChip, KindRestoreChip,
			KindKillTrunk, KindRestoreTrunk:
			// Recovery and fabric controls target the router or cluster,
			// not the chip; harnesses route them via Schedule.Controls()
			// and Schedule.ChipControls().
			continue
		case KindCorrupt:
			k := linkKey{e.Tile, e.Dir, e.Net}
			t := inj.pops[k]
			if t == nil {
				t = &popTap{}
				inj.pops[k] = t
			}
			t.taps = insertByWordIdx(t.taps, e)
		case KindDrop:
			k := linkKey{e.Tile, e.Dir, e.Net}
			t := inj.pushes[k]
			if t == nil {
				t = &pushTap{}
				inj.pushes[k] = t
			}
			t.taps = insertByWordIdx(t.taps, e)
		default:
			timed = append(timed, e)
		}
	}
	inj.timed = sortEvents(timed)
	return inj
}

// insertByWordIdx keeps a tap list ordered by WordIdx (stable insertion;
// tap lists are tiny).
func insertByWordIdx(taps []Event, e Event) []Event {
	i := len(taps)
	for i > 0 && taps[i-1].WordIdx > e.WordIdx {
		i--
	}
	taps = append(taps, Event{})
	copy(taps[i+1:], taps[i:])
	taps[i] = e
	return taps
}

// BeginCycle recomputes the cycle's fault state from the timed events.
// Schedules are small (a chaos run carries tens of events), so a linear
// sweep per cycle is cheaper than maintaining incremental activation
// lists — and trivially deterministic.
func (inj *Injector) BeginCycle(cycle int64) {
	for i := range inj.frozen {
		inj.frozen[i] = false
	}
	clear(inj.stalled)
	inj.penalty = 0
	for i := range inj.timed {
		e := &inj.timed[i]
		if e.Start > cycle {
			break // sorted: nothing later is active yet
		}
		switch e.Kind {
		case KindLink:
			if cycle < e.Start+e.Dur {
				inj.stalled[linkKey{e.Tile, e.Dir, e.Net}] = true
			}
		case KindFlap:
			// Repeat windows of Dur stalled, Dur healthy between them.
			off := cycle - e.Start
			if off < int64(e.Repeat)*2*e.Dur-e.Dur && (off/e.Dur)%2 == 0 {
				inj.stalled[linkKey{e.Tile, e.Dir, e.Net}] = true
			}
		case KindFreeze:
			if cycle < e.Start+e.Dur {
				inj.frozen[e.Tile] = true
			}
		case KindCrash:
			inj.frozen[e.Tile] = true
		case KindDRAM:
			if cycle < e.Start+e.Dur && e.Extra > inj.penalty {
				inj.penalty = e.Extra
			}
		}
	}
}

// TileFrozen implements raw.FaultPlane.
func (inj *Injector) TileFrozen(tile int) bool { return inj.frozen[tile] }

// LinkStalled implements raw.FaultPlane.
func (inj *Injector) LinkStalled(tile int, d raw.Dir, net int) bool {
	if len(inj.stalled) == 0 {
		return false
	}
	return inj.stalled[linkKey{tile, d, net}]
}

// CorruptPop implements raw.FaultPlane.
func (inj *Injector) CorruptPop(tile int, d raw.Dir, net int, w raw.Word) raw.Word {
	t := inj.pops[linkKey{tile, d, net}]
	if t == nil {
		return w
	}
	idx := t.count
	t.count++
	for t.next < len(t.taps) && t.taps[t.next].WordIdx <= idx {
		if t.taps[t.next].WordIdx == idx {
			w ^= 1 << t.taps[t.next].Bit
		}
		t.next++
	}
	return w
}

// DropEdgeWord implements raw.FaultPlane.
func (inj *Injector) DropEdgeWord(tile int, d raw.Dir, net int) bool {
	t := inj.pushes[linkKey{tile, d, net}]
	if t == nil {
		return false
	}
	idx := t.count
	t.count++
	for t.next < len(t.taps) {
		e := &t.taps[t.next]
		if idx >= e.WordIdx+e.Count {
			t.next++
			continue
		}
		return idx >= e.WordIdx
	}
	return false
}

// DRAMPenalty implements raw.FaultPlane.
func (inj *Injector) DRAMPenalty() int { return inj.penalty }
