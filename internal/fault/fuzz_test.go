package fault

import (
	"testing"

	"repro/internal/raw"
)

// FuzzFaultSchedule asserts the schedule grammar's safety contract: any
// input either fails Parse or yields a schedule that (a) re-encodes
// canonically — Parse(String()) reproduces both the text and the events —
// and (b) can be compiled and driven as an injector without panicking.
func FuzzFaultSchedule(f *testing.F) {
	f.Add("link@2+30:t0.w")
	f.Add("flap@10+5x3:t2.e;freeze@5+1000:t10;crash@2000:t5")
	f.Add("corrupt:t4.w.w17.b31;drop:t8.w.w3+2.n1;dram@50+25:+300")
	f.Add("link@0+1:t1023.s.n1;;  freeze@0+1:t0 ;")
	f.Add("drop:t0.n.w0+1;drop:t0.n.w0+1073741824")
	f.Add("crash@3000:t6;restore@20000:p1;reprobe@100:p0")
	f.Add("killchip@1000:c2;restorechip@5000:c2")
	f.Add("killtrunk@100:c0-c1;restoretrunk@200:c1-c0;killchip@300:c3")
	f.Add("killtrunk@0:c0-c0;killtrunk@1:c1073741824-c0")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		canon := s.String()
		re, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if re.String() != canon {
			t.Fatalf("canonical form is unstable:\n %q\n %q", canon, re.String())
		}
		if len(re.Events) != len(s.Events) {
			t.Fatalf("event count changed across round trip: %d != %d", len(re.Events), len(s.Events))
		}
		for i := range s.Events {
			if re.Events[i] != s.Events[i] {
				t.Fatalf("event %d changed across round trip: %+v != %+v", i, re.Events[i], s.Events[i])
			}
		}

		// The injector must not panic on any parseable schedule.
		inj := NewInjector(s, 16)
		cycles := []int64{0, 1, 2, 63, 1 << 20, maxStart}
		for _, e := range s.Events {
			cycles = append(cycles, e.Start-1, e.Start, e.Start+1, e.Start+e.Dur-1, e.Start+e.Dur)
		}
		for _, c := range cycles {
			if c < 0 {
				continue
			}
			inj.BeginCycle(c)
			for tile := 0; tile < 16; tile++ {
				_ = inj.TileFrozen(tile)
			}
			_ = inj.LinkStalled(3, raw.DirE, 0)
			_ = inj.DRAMPenalty()
		}
		for i := 0; i < 64; i++ {
			_ = inj.CorruptPop(i%16, raw.Dir(i%4), i%2, raw.Word(i))
			_ = inj.DropEdgeWord(i%16, raw.Dir(i%4), i%2)
		}
	})
}
