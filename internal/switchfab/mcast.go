package switchfab

// Multicast cell switching (§2.2.2): "if multicast traffic is queued
// separately, then the crossbar may be used to replicate cells, rather
// than wasting precious memory bandwidth at the input, and if the
// crossbar implements fanout-splitting for multicast packets, then the
// system throughput can be increased by 40%". Two strategies are modeled:
//
//   - input replication: a multicast cell is copied into the unicast VOQs,
//     one copy per member, and each copy crosses the fabric separately;
//   - fanout-splitting: the cell sits in a separate multicast queue and,
//     each slot, is delivered simultaneously to every *free* member
//     output (the crossbar replicates), retiring members as they are
//     served until the fanout set drains.

// MCell is a multicast cell with a member bitmask.
type MCell struct {
	Members uint32
	Arrived int64
}

// McastSwitch is an input-queued switch with per-input multicast queues.
// With FanoutSplitting (the default) a head cell is delivered to every
// currently-free member and retires members incrementally; without it the
// cell waits until all its members are free at once (atomic service) —
// the strategy the paper says costs ~40% of system throughput.
type McastSwitch struct {
	n    int
	q    [][]MCell
	cap  int
	slot int64
	rr   int // round-robin start input for output arbitration

	// FanoutSplitting enables incremental member service.
	FanoutSplitting bool
}

// NewMcastSwitch builds an n-port fanout-splitting switch.
func NewMcastSwitch(n, bufCap int) *McastSwitch {
	return &McastSwitch{n: n, q: make([][]MCell, n), cap: bufCap, FanoutSplitting: true}
}

// Ports returns the port count.
func (s *McastSwitch) Ports() int { return s.n }

// Slot returns the current slot number.
func (s *McastSwitch) Slot() int64 { return s.slot }

// Offer enqueues a multicast cell at an input.
func (s *McastSwitch) Offer(input int, c MCell) bool {
	if s.cap > 0 && len(s.q[input]) >= s.cap {
		return false
	}
	s.q[input] = append(s.q[input], c)
	return true
}

// Step runs one slot and returns the number of output-side deliveries
// (copies placed on output lines) and the number of cells fully retired.
func (s *McastSwitch) Step() (deliveries, retired int) {
	outFree := uint32(1)<<s.n - 1
	for k := 0; k < s.n; k++ {
		i := (s.rr + k) % s.n
		if len(s.q[i]) == 0 {
			continue
		}
		c := &s.q[i][0]
		serve := c.Members & outFree
		if serve == 0 {
			continue
		}
		if !s.FanoutSplitting && serve != c.Members {
			continue // atomic service: wait for every member at once
		}
		outFree &^= serve
		c.Members &^= serve
		for m := serve; m != 0; m &= m - 1 {
			deliveries++
		}
		if c.Members == 0 {
			s.q[i] = s.q[i][1:]
			retired++
		}
	}
	s.rr = (s.rr + 1) % s.n
	s.slot++
	return deliveries, retired
}

// McastThroughput compares three multicast strategies at saturation for
// random multicast traffic with the given fanout, returning output-side
// throughput (deliveries per output per slot) for each: atomic service
// (no fanout-splitting), fanout-splitting, and input replication through
// a unicast VOQ switch.
func McastThroughput(n, fanout int, rng interface{ Intn(int) int }, warmup, slots int64) (atomic, splitting, replication float64) {
	randMembers := func() uint32 {
		var m uint32
		for c := 0; c < fanout; c++ {
			for {
				b := uint32(1) << rng.Intn(n)
				if m&b == 0 {
					m |= b
					break
				}
			}
		}
		return m
	}
	runMcast := func(split bool) float64 {
		fs := NewMcastSwitch(n, 16)
		fs.FanoutSplitting = split
		var del int64
		for t := int64(0); t < warmup+slots; t++ {
			for i := 0; i < n; i++ {
				fs.Offer(i, MCell{Members: randMembers(), Arrived: fs.Slot()})
			}
			d, _ := fs.Step()
			if t >= warmup {
				del += int64(d)
			}
		}
		return float64(del) / float64(slots) / float64(n)
	}
	atomic = runMcast(false)
	splitting = runMcast(true)

	// Input replication: each member becomes a unicast cell in a VOQ
	// switch; the input link can inject only one copy per slot (the
	// "wasting precious memory bandwidth at the input" cost).
	vs := NewVOQSwitch(n, 16, 3)
	var pend [][]int // per input, flattened member lists awaiting injection
	pend = make([][]int, n)
	var repDel int64
	for t := int64(0); t < warmup+slots; t++ {
		for i := 0; i < n; i++ {
			if len(pend[i]) == 0 {
				m := randMembers()
				for b := 0; b < n; b++ {
					if m>>b&1 == 1 {
						pend[i] = append(pend[i], b)
					}
				}
			}
			// One copy crosses the input memory per slot.
			if len(pend[i]) > 0 {
				if vs.Offer(i, Cell{Dst: pend[i][0], Arrived: vs.Slot()}) {
					pend[i] = pend[i][1:]
				}
			}
		}
		out := vs.Step()
		if t >= warmup {
			for _, c := range out {
				if c != nil {
					repDel++
				}
			}
		}
	}
	replication = float64(repDel) / float64(slots) / float64(n)
	return atomic, splitting, replication
}
