package switchfab

import (
	"fmt"

	"repro/internal/traffic"
)

func errPortMismatch(got, want int) error {
	return fmt.Errorf("switchfab: workload has %d ports, fabric has %d", got, want)
}

// SaturationThroughput drives every input of a cell fabric at 100 % offered
// load with uniform destinations for slots slots (after warmup) and returns
// the achieved throughput — the measurement behind the §2.2.2 HOL-blocking
// and VOQ claims.
func SaturationThroughput(f Fabric, rng *traffic.RNG, warmup, slots int64) float64 {
	n := f.Ports()
	m := NewMeter(n)
	// Keep input buffers backlogged: top each up to a healthy depth every
	// slot (unbounded buffers absorb this; bounded ones reject).
	for t := int64(0); t < warmup+slots; t++ {
		for i := 0; i < n; i++ {
			f.Offer(i, Cell{Dst: rng.Intn(n), Arrived: f.Slot()})
		}
		out := f.Step()
		if t >= warmup {
			m.Observe(f.Slot()-1, out)
		}
	}
	return m.Throughput()
}

// LoadPoint holds one point of a load sweep.
type LoadPoint struct {
	Offered    float64
	Throughput float64
	MeanDelay  float64
}

// LoadSweep measures throughput and delay across Bernoulli offered loads.
func LoadSweep(mk func() Fabric, rng *traffic.RNG, loads []float64, warmup, slots int64) []LoadPoint {
	var pts []LoadPoint
	for _, load := range loads {
		f := mk()
		n := f.Ports()
		m := NewMeter(n)
		r := rng.Fork(uint64(load*1e6) + 1)
		for t := int64(0); t < warmup+slots; t++ {
			for i := 0; i < n; i++ {
				if r.Float64() < load {
					f.Offer(i, Cell{Dst: r.Intn(n), Arrived: f.Slot()})
				}
			}
			out := f.Step()
			if t >= warmup {
				m.Observe(f.Slot()-1, out)
			}
		}
		pts = append(pts, LoadPoint{Offered: load, Throughput: m.Throughput(), MeanDelay: m.MeanDelay()})
	}
	return pts
}

// WorkloadSaturation drives a cell fabric at 100 % offered load with
// destinations drawn from a compiled workload's per-port sources —
// the declarative replacement for the hand-rolled uniform/Bernoulli
// loops above. Cell fabrics move fixed-size cells, so only the
// workload's destination process matters here; sizes are exercised by
// the packet-granularity baselines.
func WorkloadSaturation(f Fabric, w *traffic.Workload, warmup, slots int64) (float64, error) {
	n := f.Ports()
	srcs, err := w.Sources()
	if err != nil {
		return 0, err
	}
	if len(srcs) != n {
		return 0, errPortMismatch(len(srcs), n)
	}
	m := NewMeter(n)
	for t := int64(0); t < warmup+slots; t++ {
		for i := 0; i < n; i++ {
			f.Offer(i, Cell{Dst: srcs[i].Next().Dst, Arrived: f.Slot()})
		}
		out := f.Step()
		if t >= warmup {
			m.Observe(f.Slot()-1, out)
		}
	}
	return m.Throughput(), nil
}

// VarLenSaturation drives a variable-length switch at full load with
// packet lengths drawn from lens (uniformly) and returns slot-weighted
// throughput.
func VarLenSaturation(s *VarLenSwitch, rng *traffic.RNG, lens []int, warmup, slots int64) float64 {
	n := s.Ports()
	m := NewVarLenMeter(n)
	for t := int64(0); t < warmup+slots; t++ {
		for i := 0; i < n; i++ {
			s.Offer(i, Packet{
				Dst:     rng.Intn(n),
				Slots:   lens[rng.Intn(len(lens))],
				Arrived: s.Slot(),
			})
		}
		done := s.Step()
		if t >= warmup {
			m.Observe(s.Slot()-1, done)
		}
	}
	return m.Throughput()
}
