package switchfab

import "repro/internal/traffic"

// SaturationThroughput drives every input of a cell fabric at 100 % offered
// load with uniform destinations for slots slots (after warmup) and returns
// the achieved throughput — the measurement behind the §2.2.2 HOL-blocking
// and VOQ claims.
func SaturationThroughput(f Fabric, rng *traffic.RNG, warmup, slots int64) float64 {
	n := f.Ports()
	m := NewMeter(n)
	// Keep input buffers backlogged: top each up to a healthy depth every
	// slot (unbounded buffers absorb this; bounded ones reject).
	for t := int64(0); t < warmup+slots; t++ {
		for i := 0; i < n; i++ {
			f.Offer(i, Cell{Dst: rng.Intn(n), Arrived: f.Slot()})
		}
		out := f.Step()
		if t >= warmup {
			m.Observe(f.Slot()-1, out)
		}
	}
	return m.Throughput()
}

// LoadPoint holds one point of a load sweep.
type LoadPoint struct {
	Offered    float64
	Throughput float64
	MeanDelay  float64
}

// LoadSweep measures throughput and delay across Bernoulli offered loads.
func LoadSweep(mk func() Fabric, rng *traffic.RNG, loads []float64, warmup, slots int64) []LoadPoint {
	var pts []LoadPoint
	for _, load := range loads {
		f := mk()
		n := f.Ports()
		m := NewMeter(n)
		r := rng.Fork(uint64(load*1e6) + 1)
		for t := int64(0); t < warmup+slots; t++ {
			for i := 0; i < n; i++ {
				if r.Float64() < load {
					f.Offer(i, Cell{Dst: r.Intn(n), Arrived: f.Slot()})
				}
			}
			out := f.Step()
			if t >= warmup {
				m.Observe(f.Slot()-1, out)
			}
		}
		pts = append(pts, LoadPoint{Offered: load, Throughput: m.Throughput(), MeanDelay: m.MeanDelay()})
	}
	return pts
}

// VarLenSaturation drives a variable-length switch at full load with
// packet lengths drawn from lens (uniformly) and returns slot-weighted
// throughput.
func VarLenSaturation(s *VarLenSwitch, rng *traffic.RNG, lens []int, warmup, slots int64) float64 {
	n := s.Ports()
	m := NewVarLenMeter(n)
	for t := int64(0); t < warmup+slots; t++ {
		for i := 0; i < n; i++ {
			s.Offer(i, Packet{
				Dst:     rng.Intn(n),
				Slots:   lens[rng.Intn(len(lens))],
				Arrived: s.Slot(),
			})
		}
		done := s.Step()
		if t >= warmup {
			m.Observe(s.Slot()-1, done)
		}
	}
	return m.Throughput()
}
