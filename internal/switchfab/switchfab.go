// Package switchfab implements the slotted crossbar switch fabric models
// behind Chapter 2 of the paper: the FIFO input-queued switch whose
// head-of-line blocking caps throughput near 58.6 %, the virtual-output-
// queued switch scheduled by McKeown's iSLIP (the Cisco 12000 GSR
// backplane, §2.2.2), an ideal output-queued switch, and a variable-length
// (non-cell) scheduling mode that demonstrates the ≈60 % claim motivating
// fixed-size cells.
//
// Time advances in cell slots. Each input and output can move one cell per
// slot; the crossbar itself is non-blocking.
package switchfab

// Cell is one fixed-size unit crossing the fabric.
type Cell struct {
	Dst     int
	Arrived int64
}

// Fabric is a slotted switch model.
type Fabric interface {
	// Ports returns the port count N (N inputs, N outputs).
	Ports() int
	// Offer enqueues one cell at an input. It reports false if the input
	// buffer is full (the cell is dropped by the caller).
	Offer(input int, c Cell) bool
	// Step simulates one slot and returns the cells delivered, indexed by
	// output (nil entries idle).
	Step() []*Cell
	// Slot returns the current slot number.
	Slot() int64
}

// Meter accumulates delivery statistics over a run.
type Meter struct {
	Delivered int64
	DelaySum  int64
	Slots     int64
	PerOutput []int64
}

// NewMeter builds a meter for an n-port fabric.
func NewMeter(n int) *Meter { return &Meter{PerOutput: make([]int64, n)} }

// Observe records one slot's deliveries.
func (m *Meter) Observe(slot int64, out []*Cell) {
	m.Slots++
	for o, c := range out {
		if c != nil {
			m.Delivered++
			m.PerOutput[o]++
			m.DelaySum += slot - c.Arrived
		}
	}
}

// Throughput returns delivered cells per output per slot (1.0 = 100 %).
func (m *Meter) Throughput() float64 {
	if m.Slots == 0 {
		return 0
	}
	return float64(m.Delivered) / float64(m.Slots) / float64(len(m.PerOutput))
}

// MeanDelay returns the mean queueing delay in slots.
func (m *Meter) MeanDelay() float64 {
	if m.Delivered == 0 {
		return 0
	}
	return float64(m.DelaySum) / float64(m.Delivered)
}

// FIFOSwitch is the input-queued switch with a single FIFO per input —
// the design §2.2.2 shows loses ≈41 % of its bandwidth to head-of-line
// blocking (saturation throughput 2-√2 ≈ 0.586 for large N).
type FIFOSwitch struct {
	n     int
	q     [][]Cell
	cap   int
	slot  int64
	rrOut []int // per-output round-robin pointer over inputs
}

// NewFIFOSwitch builds an n-port FIFO-IQ switch with per-input capacity
// bufCap (0 = unbounded).
func NewFIFOSwitch(n, bufCap int) *FIFOSwitch {
	return &FIFOSwitch{n: n, q: make([][]Cell, n), cap: bufCap, rrOut: make([]int, n)}
}

// Ports implements Fabric.
func (s *FIFOSwitch) Ports() int { return s.n }

// Slot implements Fabric.
func (s *FIFOSwitch) Slot() int64 { return s.slot }

// Offer implements Fabric.
func (s *FIFOSwitch) Offer(input int, c Cell) bool {
	if s.cap > 0 && len(s.q[input]) >= s.cap {
		return false
	}
	s.q[input] = append(s.q[input], c)
	return true
}

// Step implements Fabric: each input bids for its head cell's output; each
// output grants round-robin among bidders.
func (s *FIFOSwitch) Step() []*Cell {
	out := make([]*Cell, s.n)
	granted := make([]bool, s.n) // per input
	for o := 0; o < s.n; o++ {
		for k := 0; k < s.n; k++ {
			i := (s.rrOut[o] + k) % s.n
			if granted[i] || len(s.q[i]) == 0 || s.q[i][0].Dst != o {
				continue
			}
			c := s.q[i][0]
			s.q[i] = s.q[i][1:]
			out[o] = &c
			granted[i] = true
			s.rrOut[o] = (i + 1) % s.n
			break
		}
	}
	s.slot++
	return out
}

// QueueLen returns the occupancy of an input queue.
func (s *FIFOSwitch) QueueLen(input int) int { return len(s.q[input]) }

// OQSwitch is the ideal output-queued switch: arrivals bypass the fabric
// into per-output queues; each output transmits one cell per slot. It is
// the throughput/delay lower bound the VOQ switch is compared against.
type OQSwitch struct {
	n    int
	q    [][]Cell
	slot int64
}

// NewOQSwitch builds an ideal n-port output-queued switch.
func NewOQSwitch(n int) *OQSwitch { return &OQSwitch{n: n, q: make([][]Cell, n)} }

// Ports implements Fabric.
func (s *OQSwitch) Ports() int { return s.n }

// Slot implements Fabric.
func (s *OQSwitch) Slot() int64 { return s.slot }

// Offer implements Fabric.
func (s *OQSwitch) Offer(_ int, c Cell) bool {
	s.q[c.Dst] = append(s.q[c.Dst], c)
	return true
}

// Step implements Fabric.
func (s *OQSwitch) Step() []*Cell {
	out := make([]*Cell, s.n)
	for o := 0; o < s.n; o++ {
		if len(s.q[o]) > 0 {
			c := s.q[o][0]
			s.q[o] = s.q[o][1:]
			out[o] = &c
		}
	}
	s.slot++
	return out
}
