package switchfab

import "repro/internal/traffic"

// PIMSwitch is a VOQ crossbar scheduled by Parallel Iterative Matching
// (Anderson et al., 1993) — the randomized scheduler iSLIP was designed
// to beat. Each iteration: every unmatched output grants a uniformly
// random requesting input; every unmatched input accepts a uniformly
// random grant. With one iteration PIM converges to ≈ 63 % (1−1/e)
// throughput under uniform saturation and never desynchronizes on
// permutation traffic the way iSLIP's round-robin pointers do — the
// contrast that motivated the GSR's scheduler choice (§2.2.2).
type PIMSwitch struct {
	n    int
	voq  [][][]Cell
	cap  int
	slot int64
	rng  *traffic.RNG

	// Iterations per slot.
	Iterations int
}

// NewPIMSwitch builds an n-port PIM switch with the given iteration count
// and a deterministic randomness source.
func NewPIMSwitch(n, bufCap, iters int, rng *traffic.RNG) *PIMSwitch {
	if iters < 1 {
		iters = 1
	}
	s := &PIMSwitch{n: n, cap: bufCap, Iterations: iters, rng: rng}
	s.voq = make([][][]Cell, n)
	for i := range s.voq {
		s.voq[i] = make([][]Cell, n)
	}
	return s
}

// Ports implements Fabric.
func (s *PIMSwitch) Ports() int { return s.n }

// Slot implements Fabric.
func (s *PIMSwitch) Slot() int64 { return s.slot }

// Offer implements Fabric.
func (s *PIMSwitch) Offer(input int, c Cell) bool {
	q := &s.voq[input][c.Dst]
	if s.cap > 0 && len(*q) >= s.cap {
		return false
	}
	*q = append(*q, c)
	return true
}

// Step implements Fabric.
func (s *PIMSwitch) Step() []*Cell {
	n := s.n
	matchIn := make([]int, n)
	matchOut := make([]int, n)
	for i := range matchIn {
		matchIn[i] = -1
		matchOut[i] = -1
	}
	for iter := 0; iter < s.Iterations; iter++ {
		// Grant: each unmatched output picks a random requesting input.
		grant := make([]int, n)
		for o := 0; o < n; o++ {
			grant[o] = -1
			if matchOut[o] >= 0 {
				continue
			}
			var req []int
			for i := 0; i < n; i++ {
				if matchIn[i] < 0 && len(s.voq[i][o]) > 0 {
					req = append(req, i)
				}
			}
			if len(req) > 0 {
				grant[o] = req[s.rng.Intn(len(req))]
			}
		}
		// Accept: each input picks a random grant.
		progress := false
		for i := 0; i < n; i++ {
			if matchIn[i] >= 0 {
				continue
			}
			var offers []int
			for o := 0; o < n; o++ {
				if grant[o] == i {
					offers = append(offers, o)
				}
			}
			if len(offers) == 0 {
				continue
			}
			o := offers[s.rng.Intn(len(offers))]
			matchIn[i] = o
			matchOut[o] = i
			progress = true
		}
		if !progress {
			break
		}
	}
	out := make([]*Cell, n)
	for o := 0; o < n; o++ {
		i := matchOut[o]
		if i < 0 {
			continue
		}
		q := &s.voq[i][o]
		c := (*q)[0]
		*q = (*q)[1:]
		out[o] = &c
	}
	s.slot++
	return out
}
