package switchfab_test

import (
	"math"
	"testing"

	"repro/internal/switchfab"
	"repro/internal/traffic"
)

// TestHOLBlockingSaturation reproduces the classic input-queued FIFO
// result the paper leans on (§2.2.2): saturation throughput approaches
// 2-√2 ≈ 0.586 for large N, "wasting approximately 40% of the switch
// bandwidth".
func TestHOLBlockingSaturation(t *testing.T) {
	f := switchfab.NewFIFOSwitch(16, 64)
	got := switchfab.SaturationThroughput(f, traffic.NewRNG(1), 2000, 50000)
	want := 2 - math.Sqrt2
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("FIFO-IQ saturation throughput %.3f, want ≈ %.3f", got, want)
	}
}

// TestVOQiSLIPSaturation: with VOQs and iSLIP, "HOL blocking can be
// eliminated entirely. This raises the system throughput from 60% to
// 100%".
func TestVOQiSLIPSaturation(t *testing.T) {
	f := switchfab.NewVOQSwitch(16, 64, 3)
	got := switchfab.SaturationThroughput(f, traffic.NewRNG(2), 2000, 50000)
	if got < 0.97 {
		t.Fatalf("VOQ+iSLIP saturation throughput %.3f, want ≈ 1.0", got)
	}
}

// TestOQIdeal: the output-queued switch trivially achieves 100 %.
func TestOQIdeal(t *testing.T) {
	f := switchfab.NewOQSwitch(8)
	got := switchfab.SaturationThroughput(f, traffic.NewRNG(3), 1000, 20000)
	if got < 0.99 {
		t.Fatalf("OQ saturation throughput %.3f, want ≈ 1.0", got)
	}
}

// TestVarLenSaturation: variable-length, non-preemptive scheduling limits
// throughput to roughly 60 % (§2.2.2).
func TestVarLenSaturation(t *testing.T) {
	s := switchfab.NewVarLenSwitch(16, 64)
	got := switchfab.VarLenSaturation(s, traffic.NewRNG(4), []int{1, 4, 16}, 2000, 50000)
	if got < 0.45 || got > 0.75 {
		t.Fatalf("variable-length saturation throughput %.3f, want ≈ 0.6", got)
	}
	// And it must be clearly worse than cells + VOQ.
	f := switchfab.NewVOQSwitch(16, 64, 3)
	cells := switchfab.SaturationThroughput(f, traffic.NewRNG(4), 2000, 50000)
	if got >= cells-0.2 {
		t.Fatalf("variable-length (%.3f) should trail fixed cells (%.3f) decisively", got, cells)
	}
}

// TestISLIPPermutationLocksIn: under a conflict-free permutation workload,
// iSLIP's pointers desynchronize and deliver 100 % with slot-level
// latency — every input matched every slot.
func TestISLIPPermutationLocksIn(t *testing.T) {
	const n = 4
	f := switchfab.NewVOQSwitch(n, 0, 1)
	perm := []int{2, 3, 0, 1}
	matchedSlots := 0
	const slots = 2000
	for s := 0; s < slots; s++ {
		for i := 0; i < n; i++ {
			f.Offer(i, switchfab.Cell{Dst: perm[i], Arrived: f.Slot()})
		}
		out := f.Step()
		full := 0
		for _, c := range out {
			if c != nil {
				full++
			}
		}
		if full == n {
			matchedSlots++
		}
	}
	if matchedSlots < slots*9/10 {
		t.Fatalf("full matches in %d/%d slots, want ≈ all after lock-in", matchedSlots, slots)
	}
}

// TestISLIPNoStarvation: a flooded switch still serves every VOQ
// (iSLIP's round-robin pointers guarantee eventual service).
func TestISLIPNoStarvation(t *testing.T) {
	const n = 4
	f := switchfab.NewVOQSwitch(n, 8, 1)
	served := make(map[[2]int]int)
	rng := traffic.NewRNG(7)
	// All inputs flood output 0 plus a trickle elsewhere.
	for s := 0; s < 20000; s++ {
		for i := 0; i < n; i++ {
			f.Offer(i, switchfab.Cell{Dst: 0, Arrived: f.Slot()})
			if rng.Float64() < 0.1 {
				f.Offer(i, switchfab.Cell{Dst: 1 + rng.Intn(n-1), Arrived: f.Slot()})
			}
		}
		for o, c := range f.Step() {
			if c != nil {
				served[[2]int{o, 0}]++
				_ = o
			}
		}
	}
	// Output 0 must have been shared across inputs; check per-input VOQ
	// drain of the hotspot output by occupancy.
	for i := 0; i < n; i++ {
		if f.VOQLen(i, 0) >= 8 && i > 0 {
			// All bounded queues full is fine, but *some* service must
			// have happened; rely on throughput below instead.
			break
		}
	}
	if served[[2]int{0, 0}] < 15000 {
		t.Fatalf("hotspot output served %d cells in 20000 slots", served[[2]int{0, 0}])
	}
}

// TestFIFOOfferBound checks bounded input buffers reject when full.
func TestFIFOOfferBound(t *testing.T) {
	f := switchfab.NewFIFOSwitch(2, 2)
	if !f.Offer(0, switchfab.Cell{Dst: 1}) || !f.Offer(0, switchfab.Cell{Dst: 1}) {
		t.Fatal("offers under capacity rejected")
	}
	if f.Offer(0, switchfab.Cell{Dst: 1}) {
		t.Fatal("offer over capacity accepted")
	}
	if f.QueueLen(0) != 2 {
		t.Fatalf("queue len %d", f.QueueLen(0))
	}
}

// TestLoadSweepDelayMonotone: queueing delay grows with offered load below
// saturation for the VOQ switch.
func TestLoadSweepDelayMonotone(t *testing.T) {
	pts := switchfab.LoadSweep(func() switchfab.Fabric {
		return switchfab.NewVOQSwitch(8, 0, 2)
	}, traffic.NewRNG(9), []float64{0.3, 0.6, 0.9}, 2000, 30000)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if math.Abs(p.Throughput-p.Offered) > 0.05 {
			t.Fatalf("below saturation throughput %.3f != offered %.3f", p.Throughput, p.Offered)
		}
		if i > 0 && p.MeanDelay <= pts[i-1].MeanDelay {
			t.Fatalf("delay not increasing with load: %v", pts)
		}
	}
}

// TestMeterAccounting sanity-checks Meter math.
func TestMeterAccounting(t *testing.T) {
	m := switchfab.NewMeter(2)
	c := &switchfab.Cell{Dst: 0, Arrived: 0}
	m.Observe(4, []*switchfab.Cell{c, nil})
	if m.Throughput() != 0.5 {
		t.Fatalf("throughput %f", m.Throughput())
	}
	if m.MeanDelay() != 4 {
		t.Fatalf("delay %f", m.MeanDelay())
	}
}

// TestMcastFanoutSplitting reproduces the §2.2.2 multicast claim: with
// fanout-splitting in the crossbar, output-side throughput beats input
// replication substantially ("increased by 40%").
func TestMcastFanoutSplitting(t *testing.T) {
	rng := traffic.NewRNG(11)
	atomic, splitting, replication := switchfab.McastThroughput(8, 3, rng, 2000, 30000)
	if splitting < atomic*1.2 {
		t.Fatalf("fanout-splitting %.3f vs atomic %.3f: want ≥ +20%% (paper: +40%%; measured ≈ +28%% at fanout 3 of 8)",
			splitting, atomic)
	}
	if splitting > 1.0 || atomic > 1.0 || replication > 1.0 {
		t.Fatalf("throughput exceeds line rate: %f %f %f", splitting, atomic, replication)
	}
}

// TestMcastSwitchPartialService: a cell with busy members waits and is
// served incrementally, never duplicated to the same output.
func TestMcastSwitchPartialService(t *testing.T) {
	s := switchfab.NewMcastSwitch(4, 8)
	s.Offer(0, switchfab.MCell{Members: 0b0110})
	s.Offer(1, switchfab.MCell{Members: 0b0110})
	d1, r1 := s.Step()
	if d1 != 2 || r1 != 1 {
		t.Fatalf("slot 1: deliveries %d retired %d, want 2/1", d1, r1)
	}
	d2, r2 := s.Step()
	if d2 != 2 || r2 != 1 {
		t.Fatalf("slot 2: deliveries %d retired %d, want 2/1", d2, r2)
	}
}

// TestPIMSingleIteration: one-iteration PIM converges near 1-1/e ≈ 0.63
// under uniform saturation (Anderson et al.), while one-iteration iSLIP
// desynchronizes to ≈1.0 — the reason the GSR runs iSLIP.
func TestPIMSingleIteration(t *testing.T) {
	pim := switchfab.NewPIMSwitch(16, 64, 1, traffic.NewRNG(21))
	got := switchfab.SaturationThroughput(pim, traffic.NewRNG(22), 2000, 40000)
	if got < 0.58 || got > 0.72 {
		t.Fatalf("PIM(1) saturation %.3f, want ≈ 0.63 (1-1/e)", got)
	}
	islip := switchfab.NewVOQSwitch(16, 64, 1)
	islipT := switchfab.SaturationThroughput(islip, traffic.NewRNG(22), 2000, 40000)
	if islipT < got+0.2 {
		t.Fatalf("iSLIP(1) %.3f should decisively beat PIM(1) %.3f", islipT, got)
	}
}

// TestPIMMoreIterationsConverge: a few PIM iterations close most of the
// gap (maximal matching in O(log N) expected iterations).
func TestPIMMoreIterationsConverge(t *testing.T) {
	one := switchfab.SaturationThroughput(
		switchfab.NewPIMSwitch(16, 64, 1, traffic.NewRNG(31)), traffic.NewRNG(32), 2000, 30000)
	four := switchfab.SaturationThroughput(
		switchfab.NewPIMSwitch(16, 64, 4, traffic.NewRNG(33)), traffic.NewRNG(32), 2000, 30000)
	if four < 0.9 {
		t.Fatalf("PIM(4) saturation %.3f, want ≈ 1.0", four)
	}
	if four <= one {
		t.Fatalf("PIM iterations did not help: %.3f vs %.3f", four, one)
	}
}
