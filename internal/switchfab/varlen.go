package switchfab

// Variable-length packet switching (§2.2.2's "Why Fixed Length Packets"):
// instead of segmenting packets into cells, each packet occupies its
// input-output connection for its full length in slots, non-preemptively.
// The scheduler must juggle busy outputs and decide between allocating an
// idle output now or waiting for a busy one — which is exactly the
// bookkeeping the paper says limits system throughput to ≈60 %.

// Packet is a variable-length unit.
type Packet struct {
	Dst     int
	Slots   int // transmission time in slots
	Arrived int64
}

// VarLenSwitch is a FIFO input-queued switch moving whole variable-length
// packets. An input and an output stay tied up for the packet's duration.
type VarLenSwitch struct {
	n    int
	q    [][]Packet
	cap  int
	slot int64

	// busy state: remaining slots per input/output pair in transfer.
	inBusy  []int // remaining slots the input is held
	outBusy []int
	inDst   []int // output the input is currently sending to
	rrOut   []int
}

// NewVarLenSwitch builds an n-port variable-length switch.
func NewVarLenSwitch(n, bufCap int) *VarLenSwitch {
	return &VarLenSwitch{
		n: n, cap: bufCap,
		q:      make([][]Packet, n),
		inBusy: make([]int, n), outBusy: make([]int, n),
		inDst: make([]int, n), rrOut: make([]int, n),
	}
}

// Ports returns the port count.
func (s *VarLenSwitch) Ports() int { return s.n }

// Slot returns the current slot.
func (s *VarLenSwitch) Slot() int64 { return s.slot }

// Offer enqueues a packet at an input, reporting false when full.
func (s *VarLenSwitch) Offer(input int, p Packet) bool {
	if s.cap > 0 && len(s.q[input]) >= s.cap {
		return false
	}
	s.q[input] = append(s.q[input], p)
	return true
}

// Step advances one slot and returns packets that completed delivery this
// slot, with the slot count they occupied the fabric.
func (s *VarLenSwitch) Step() []DeliverRecord {
	var completed []DeliverRecord
	// Progress in-flight transfers.
	for i := 0; i < s.n; i++ {
		if s.inBusy[i] > 0 {
			s.inBusy[i]--
			o := s.inDst[i]
			s.outBusy[o]--
			if s.inBusy[i] == 0 {
				p := s.q[i][0]
				s.q[i] = s.q[i][1:]
				completed = append(completed, DeliverRecord{Output: o, Pkt: p, Slot: s.slot})
			}
		}
	}
	// Allocate idle outputs to idle inputs whose head packet wants them
	// (greedy, round-robin — the "allocate an idle output" policy).
	for o := 0; o < s.n; o++ {
		if s.outBusy[o] > 0 {
			continue
		}
		for k := 0; k < s.n; k++ {
			i := (s.rrOut[o] + k) % s.n
			if s.inBusy[i] > 0 || len(s.q[i]) == 0 || s.q[i][0].Dst != o {
				continue
			}
			s.inBusy[i] = s.q[i][0].Slots
			s.inDst[i] = o
			s.outBusy[o] = s.q[i][0].Slots
			s.rrOut[o] = (i + 1) % s.n
			break
		}
	}
	s.slot++
	return completed
}

// DeliverRecord reports a completed variable-length delivery.
type DeliverRecord struct {
	Output int
	Pkt    Packet
	Slot   int64
}

// VarLenMeter accumulates slot-weighted throughput: a delivered packet of
// L slots counts as L slot-deliveries on its output.
type VarLenMeter struct {
	SlotsDelivered int64
	Packets        int64
	Slots          int64
	DelaySum       int64
	ports          int
}

// NewVarLenMeter builds a meter for an n-port switch.
func NewVarLenMeter(n int) *VarLenMeter { return &VarLenMeter{ports: n} }

// Observe records one slot's completions.
func (m *VarLenMeter) Observe(slot int64, done []DeliverRecord) {
	m.Slots++
	for _, d := range done {
		m.Packets++
		m.SlotsDelivered += int64(d.Pkt.Slots)
		m.DelaySum += slot - d.Pkt.Arrived
	}
}

// Throughput returns the fraction of output bandwidth carrying data.
func (m *VarLenMeter) Throughput() float64 {
	if m.Slots == 0 {
		return 0
	}
	return float64(m.SlotsDelivered) / float64(m.Slots) / float64(m.ports)
}

// MeanDelay returns the mean completion delay in slots.
func (m *VarLenMeter) MeanDelay() float64 {
	if m.Packets == 0 {
		return 0
	}
	return float64(m.DelaySum) / float64(m.Packets)
}
