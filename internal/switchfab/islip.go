package switchfab

// VOQSwitch is the virtual-output-queued crossbar of §2.2.2: each input
// keeps one FIFO per output (eliminating head-of-line blocking entirely),
// and a centralized iSLIP scheduler (McKeown 1995) finds a conflict-free
// input/output match each slot.
type VOQSwitch struct {
	n    int
	voq  [][][]Cell // [input][output]fifo
	cap  int        // per-VOQ capacity, 0 = unbounded
	slot int64

	// iSLIP round-robin pointers.
	grantPtr  []int // per output, over inputs
	acceptPtr []int // per input, over outputs

	// Iterations per slot (the GSR runs a small fixed number).
	Iterations int
}

// NewVOQSwitch builds an n-port VOQ switch running iters iSLIP iterations
// per slot.
func NewVOQSwitch(n, bufCap, iters int) *VOQSwitch {
	if iters < 1 {
		iters = 1
	}
	s := &VOQSwitch{
		n: n, cap: bufCap, Iterations: iters,
		grantPtr:  make([]int, n),
		acceptPtr: make([]int, n),
	}
	s.voq = make([][][]Cell, n)
	for i := range s.voq {
		s.voq[i] = make([][]Cell, n)
	}
	return s
}

// Ports implements Fabric.
func (s *VOQSwitch) Ports() int { return s.n }

// Slot implements Fabric.
func (s *VOQSwitch) Slot() int64 { return s.slot }

// Offer implements Fabric.
func (s *VOQSwitch) Offer(input int, c Cell) bool {
	q := &s.voq[input][c.Dst]
	if s.cap > 0 && len(*q) >= s.cap {
		return false
	}
	*q = append(*q, c)
	return true
}

// VOQLen returns the occupancy of one virtual output queue.
func (s *VOQSwitch) VOQLen(input, output int) int { return len(s.voq[input][output]) }

// Step implements Fabric by running the three-phase iSLIP iteration
// (§2.2.2: Request, Grant, Accept; pointers advance only after grants
// accepted in the first iteration).
func (s *VOQSwitch) Step() []*Cell {
	n := s.n
	matchIn := make([]int, n)  // input -> matched output
	matchOut := make([]int, n) // output -> matched input
	for i := range matchIn {
		matchIn[i] = -1
		matchOut[i] = -1
	}

	for iter := 0; iter < s.Iterations; iter++ {
		// Request: unmatched inputs request every output with a queued
		// cell; represented implicitly by VOQ occupancy.
		// Grant: each unmatched output picks the requesting input at or
		// after its grant pointer.
		grant := make([]int, n) // output -> granted input
		for o := 0; o < n; o++ {
			grant[o] = -1
			if matchOut[o] >= 0 {
				continue
			}
			for k := 0; k < n; k++ {
				i := (s.grantPtr[o] + k) % n
				if matchIn[i] < 0 && len(s.voq[i][o]) > 0 {
					grant[o] = i
					break
				}
			}
		}
		// Accept: each input granted one or more outputs accepts the one
		// at or after its accept pointer.
		progress := false
		for i := 0; i < n; i++ {
			if matchIn[i] >= 0 {
				continue
			}
			for k := 0; k < n; k++ {
				o := (s.acceptPtr[i] + k) % n
				if grant[o] == i {
					matchIn[i] = o
					matchOut[o] = i
					progress = true
					if iter == 0 {
						// "The pointers are only updated after the first
						// iteration."
						s.grantPtr[o] = (i + 1) % n
						s.acceptPtr[i] = (o + 1) % n
					}
					break
				}
			}
		}
		if !progress {
			break
		}
	}

	out := make([]*Cell, n)
	for o := 0; o < n; o++ {
		i := matchOut[o]
		if i < 0 {
			continue
		}
		q := &s.voq[i][o]
		c := (*q)[0]
		*q = (*q)[1:]
		out[o] = &c
	}
	s.slot++
	return out
}
