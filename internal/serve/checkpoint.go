package serve

import "fmt"

// Serve checkpoint framing. The router blob (RTRCKPT1, see
// internal/router/snapshot.go) captures everything inside the
// simulation; the serve wrapper adds the daemon-side coordinates a
// restore needs before it can replay: the slice index (so the feeder
// resumes the identical arrival stream) and the era of every rolling
// soak window installed so far (so the restore rebuilds the exact
// injector union the original run had when the blob was written).
//
//	SRVCKPT1 | u64 slice | u64 nwindows | nwindows × u64 era |
//	u64 len(router blob) | router blob

const srvSnapMagic = "SRVCKPT1"

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func encodeCheckpoint(slice int64, eras []uint64, blob []byte) []byte {
	b := []byte(srvSnapMagic)
	b = appendU64(b, uint64(slice))
	b = appendU64(b, uint64(len(eras)))
	for _, e := range eras {
		b = appendU64(b, e)
	}
	b = appendU64(b, uint64(len(blob)))
	return append(b, blob...)
}

func decodeCheckpoint(b []byte) (slice int64, eras []uint64, blob []byte, err error) {
	bad := func(what string) (int64, []uint64, []byte, error) {
		return 0, nil, nil, fmt.Errorf("serve: %s checkpoint", what)
	}
	if len(b) < len(srvSnapMagic) || string(b[:len(srvSnapMagic)]) != srvSnapMagic {
		return bad("not a serve")
	}
	off := len(srvSnapMagic)
	u64 := func() (uint64, bool) {
		if off+8 > len(b) {
			return 0, false
		}
		v := uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 |
			uint64(b[off+3])<<24 | uint64(b[off+4])<<32 | uint64(b[off+5])<<40 |
			uint64(b[off+6])<<48 | uint64(b[off+7])<<56
		off += 8
		return v, true
	}
	s, ok := u64()
	if !ok {
		return bad("truncated")
	}
	n, ok := u64()
	if !ok || n > uint64(len(b)) {
		return bad("truncated")
	}
	eras = make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		e, ok := u64()
		if !ok {
			return bad("truncated")
		}
		eras = append(eras, e)
	}
	bl, ok := u64()
	if !ok || uint64(off)+bl != uint64(len(b)) {
		return bad("truncated")
	}
	return int64(s), eras, b[off:], nil
}
