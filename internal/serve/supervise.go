package serve

import (
	"fmt"
	"time"

	"repro/internal/traffic"
)

// Supervised restart. A soak run is expected to hit fail-stops
// eventually (that is the point of chaos); the supervisor turns a
// fail-stop into a restart-from-checkpoint with seeded exponential
// backoff. Each restart bumps the soak era, so rolling windows generated
// after the restore draw from a fresh stream — the deterministic fault
// arc that killed the previous incarnation is not replayed verbatim
// against the restored state, mirroring how a real fleet's retry storms
// are decorrelated by jitter.

// SupervisorConfig drives Supervise.
type SupervisorConfig struct {
	// Build constructs a fresh daemon incarnation. restorePath is "" for
	// the first boot (or when no checkpoint exists yet); era is the soak
	// era the incarnation must generate new windows under. Build owns
	// constructing the router, feeder, and serve.Config wiring.
	Build func(restorePath string, era uint64) (*Daemon, error)
	// MaxRestarts bounds fail-stop restarts (default 3).
	MaxRestarts int
	// BackoffBase/BackoffMax shape the exponential restart delay
	// (defaults 200ms / 10s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the backoff jitter.
	Seed uint64
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)
	// Logf, if non-nil, narrates restarts.
	Logf func(format string, args ...any)
}

// Supervise runs daemon incarnations until one exits cleanly (drained or
// slice budget) or the restart budget is spent. It returns the last
// incarnation's result.
func Supervise(cfg SupervisorConfig) (Result, error) {
	if cfg.Build == nil {
		return Result{}, fmt.Errorf("serve: SupervisorConfig.Build is required")
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 200 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 10 * time.Second
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := traffic.NewRNG(cfg.Seed ^ 0x51e5e1f0_0dd5)

	restore := ""
	era := uint64(0)
	for attempt := 0; ; attempt++ {
		d, err := cfg.Build(restore, era)
		if err != nil {
			return Result{}, fmt.Errorf("serve: build incarnation %d: %w", attempt, err)
		}
		res, err := d.Run()
		if err != nil {
			return res, err
		}
		if res.Reason != ReasonFailed {
			return res, nil
		}
		if attempt >= cfg.MaxRestarts {
			return res, fmt.Errorf("serve: router fail-stopped and restart budget (%d) is spent", cfg.MaxRestarts)
		}
		restore = res.LastCheckpoint
		era++
		delay := cfg.BackoffBase << attempt
		if delay > cfg.BackoffMax || delay <= 0 {
			delay = cfg.BackoffMax
		}
		delay += time.Duration(rng.Float64() * 0.5 * float64(delay))
		from := restore
		if from == "" {
			from = "scratch (no checkpoint yet)"
		}
		logf("supervisor: incarnation %d fail-stopped at cycle %d; restarting from %s in %v (era %d)",
			attempt, res.Cycle, from, delay, era)
		sleep(delay)
	}
}
