package serve

import (
	"encoding/json"
	"testing"

	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// sloArc runs the overload scenario — 4x offered load against a tiny
// admission queue with the drop-rate gate armed — under one chip engine
// and returns everything the SLO plane accounted: the result, the final
// status (violations, window throughput, ledger), and the typed event
// log. The daemon samples the telemetry plane at every slice boundary;
// under the fast engine those boundaries land between macro windows, so
// every sample the rolling window folds in must match the reference
// interpreter's cycle-by-cycle accounting exactly.
func sloArc(t *testing.T, eng raw.Engine, workers int) (Result, *Status, string, int64) {
	t.Helper()
	f, err := NewSyntheticFeeder(SyntheticConfig{
		Seed: 5, SizeBytes: 1024, RatePerMille: 4000, SliceCycles: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	rcfg := router.DefaultConfig()
	rcfg.Engine = eng
	rcfg.Workers = workers
	r, rerr := router.New(rcfg)
	if rerr != nil {
		t.Fatal(rerr)
	}
	ev := &trace.EventLog{}
	d, err := New(Config{
		Router:      r,
		Feeder:      f,
		SliceCycles: 1024,
		QueuePkts:   4,
		MaxSlices:   32,
		Gates:       Gates{MaxDropRate: 0.5, WindowSlices: 4},
		Events:      ev,
		Collector:   telemetry.New(telemetry.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	windows, _ := r.Chip.MacroStats()
	return res, d.Status(), ev.String(), windows
}

// TestSLOAccountingUnderMacro: the SLO rolling window judges the same
// slices to the same verdicts under the fast engine with macro windows
// engaged — identical violation counts, identical window throughput,
// identical shed/admitted ledger, identical typed event stream. This is
// the daemon-facing face of quantum-granular observation: macro windows
// cover cycles between slice boundaries but never move or blur what a
// boundary sample sees.
func TestSLOAccountingUnderMacro(t *testing.T) {
	refRes, refSt, refEvents, refWindows := sloArc(t, raw.EngineRef, 1)
	if refWindows != 0 {
		t.Fatalf("reference engine reported %d macro windows", refWindows)
	}
	if refSt.Violations == 0 {
		t.Fatal("overload scenario never tripped the drop-rate gate")
	}
	fastRes, fastSt, fastEvents, fastWindows := sloArc(t, raw.EngineFast, 2)
	if fastWindows == 0 {
		t.Fatal("macro never engaged under the serving daemon")
	}
	if fastRes != refRes {
		t.Fatalf("results diverged:\nfast %+v\nref  %+v", fastRes, refRes)
	}
	if fastSt.Violations != refSt.Violations || fastSt.WindowGbps != refSt.WindowGbps {
		t.Fatalf("SLO accounting diverged: fast violations=%d gbps=%g, ref violations=%d gbps=%g",
			fastSt.Violations, fastSt.WindowGbps, refSt.Violations, refSt.WindowGbps)
	}
	if ra, fa := mustJSON(t, refSt.Active), mustJSON(t, fastSt.Active); ra != fa {
		t.Fatalf("active violations diverged:\nfast %s\nref  %s", fa, ra)
	}
	if ft, rt := fastSt.Ingest.Totals(), refSt.Ingest.Totals(); ft != rt {
		t.Fatalf("ingest ledgers diverged:\nfast %+v\nref  %+v", ft, rt)
	}
	if fastEvents != refEvents {
		t.Fatalf("event logs diverged:\nfast:\n%s\nref:\n%s", fastEvents, refEvents)
	}
	t.Logf("macro windows=%d with %d violations accounted identically", fastWindows, fastSt.Violations)
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
