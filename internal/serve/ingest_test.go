package serve

import (
	"testing"

	"repro/internal/ip"
)

// TestSyntheticFeederPure: arrivals for a slice are a pure function of
// (config, slice) — two feeders with the same config agree packet for
// packet, which is what lets a restored daemon resume the identical
// stream.
func TestSyntheticFeederPure(t *testing.T) {
	cfg := SyntheticConfig{Seed: 9, SizeBytes: 512, Pattern: "hotspot", RatePerMille: 700, SliceCycles: 1024}
	a, err := NewSyntheticFeeder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSyntheticFeeder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Read b out of order (as a restore resuming mid-run would).
	want37 := b.Slice(37)
	for s := int64(0); s < 40; s++ {
		as := a.Slice(s)
		bs := b.Slice(s)
		for p := range as {
			if len(as[p]) != len(bs[p]) {
				t.Fatalf("slice %d port %d: %d vs %d packets", s, p, len(as[p]), len(bs[p]))
			}
			for i := range as[p] {
				if as[p][i].Header != bs[p][i].Header || as[p][i].LenWords() != bs[p][i].LenWords() {
					t.Fatalf("slice %d port %d packet %d differs", s, p, i)
				}
			}
			if s == 37 && len(as[p]) != len(want37[p]) {
				t.Fatalf("out-of-order read of slice 37 diverged on port %d", p)
			}
		}
	}
}

// TestSyntheticFeederRate: the fixed-point accumulator delivers the
// configured rate exactly over any horizon (no drift), per port.
func TestSyntheticFeederRate(t *testing.T) {
	cfg := SyntheticConfig{Seed: 1, SizeBytes: 1024, RatePerMille: 800, SliceCycles: 4096}
	f, err := NewSyntheticFeeder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const slices = 64
	var words int64
	for s := int64(0); s < slices; s++ {
		for _, pkts := range f.Slice(s) {
			for i := range pkts {
				words += int64(pkts[i].LenWords())
			}
		}
	}
	perPort := words / 4
	budget := slices * cfg.SliceCycles * int64(cfg.RatePerMille) / 1000
	probe := ip.NewPacket(0, 0, 64, cfg.SizeBytes, 0)
	wordsPkt := int64(probe.LenWords())
	if perPort > budget || budget-perPort >= wordsPkt {
		t.Fatalf("per-port words %d, budget %d (residue must stay under one %d-word packet)",
			perPort, budget, wordsPkt)
	}
}

// TestAdmissionShedsNeverBlocks: arrivals beyond the queue bound are
// shed and counted; the ledger identity holds through offer, pump, and a
// forced discard.
func TestAdmissionShedsNeverBlocks(t *testing.T) {
	a := newAdmission(4, 1<<30)
	mk := func(n int) []ip.Packet {
		pkts := make([]ip.Packet, n)
		for i := range pkts {
			pkts[i] = ip.NewPacket(1, 2, 64, 256, uint16(i))
		}
		return pkts
	}
	a.offer([4][]ip.Packet{mk(10), mk(2), nil, mk(4)}, false)
	if !a.balanced() {
		t.Fatal("ledger unbalanced after offer")
	}
	if got := a.ledger[0].ShedPkts; got != 6 {
		t.Fatalf("port 0 shed %d packets, want 6 (10 offered into a 4-queue)", got)
	}
	if a.ledger[1].ShedPkts != 0 || a.ledger[3].ShedPkts != 0 {
		t.Fatalf("under-bound ports shed: %d %d", a.ledger[1].ShedPkts, a.ledger[3].ShedPkts)
	}

	// Clamped admission halves the bound: 2 more packets onto port 1's
	// 2-deep queue all shed.
	a.offer([4][]ip.Packet{nil, mk(2), nil, nil}, true)
	if got := a.ledger[1].ShedPkts; got != 2 {
		t.Fatalf("clamped offer shed %d, want 2", got)
	}

	// Pump against a backlog that accepts one packet's words then jams.
	probe := ip.NewPacket(1, 2, 64, 256, 0)
	words := probe.LenWords()
	fed := 0
	a.highWords = words + 1
	backlog := func(p int) int { return fed * words }
	a.pump(backlog, func(p int, pkt *ip.Packet) { fed++ })
	if fed == 0 {
		t.Fatal("pump admitted nothing")
	}
	if !a.balanced() {
		t.Fatal("ledger unbalanced after pump")
	}
	admitted := int64(0)
	for p := range a.ledger {
		admitted += a.ledger[p].AdmittedPkts
	}
	if admitted != int64(fed) {
		t.Fatalf("ledger admitted %d, pump fed %d", admitted, fed)
	}

	a.discardQueues()
	if !a.balanced() {
		t.Fatal("ledger unbalanced after discard")
	}
	for p := range a.ledger {
		if a.ledger[p].QueuedPkts != 0 || a.queuedWords(p) != 0 {
			t.Fatalf("port %d still queued after discard", p)
		}
	}
}

// TestCheckpointCodec: the SRVCKPT1 wrapper round-trips and rejects
// truncation and foreign blobs.
func TestCheckpointCodec(t *testing.T) {
	blob := []byte("RTRCKPT1 pretend router state")
	enc := encodeCheckpoint(1234, []uint64{7, 9, 9}, blob)
	slice, eras, got, err := decodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if slice != 1234 || len(eras) != 3 || eras[0] != 7 || eras[2] != 9 || string(got) != string(blob) {
		t.Fatalf("roundtrip = slice %d eras %v blob %q", slice, eras, got)
	}
	if _, _, _, err := decodeCheckpoint(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	if _, _, _, err := decodeCheckpoint([]byte("RTRCKPT1 not a serve blob")); err == nil {
		t.Fatal("router blob accepted as serve checkpoint")
	}
	if _, _, _, err := decodeCheckpoint(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

// TestSLOGateTransitions drives the rolling-window evaluator directly:
// gates judge only on a full window, entering transitions emit once,
// clearing emits once, and the conservation gate is judged every slice.
func TestSLOGateTransitions(t *testing.T) {
	l := newSLOLoop(Gates{MinGbps: 10, MaxDropRate: 0.1, WindowSlices: 4}, 250e6)

	// Healthy slices: 1024 cycles, 1024 words out = 8 Gbps at 250 MHz
	// per... (1024*4 bytes / 1024 cycles) * 250e6 * 8 = 8 Gbps — below the
	// 10 Gbps gate, but not judged until the window fills.
	healthy := sloSample{cycles: 1024, outWords: 2048, offeredWords: 2048, shedWords: 0} // 16 Gbps
	for i := int64(0); i < 3; i++ {
		entered, cleared := l.observe(i, i*1024, healthy, true)
		if len(entered) != 0 || cleared {
			t.Fatalf("slice %d: judged before the window filled: %v %v", i, entered, cleared)
		}
	}
	if entered, _ := l.observe(3, 3*1024, healthy, true); len(entered) != 0 {
		t.Fatalf("healthy full window violated: %v", entered)
	}

	// Starve throughput and shed heavily: both threshold gates enter, once.
	sick := sloSample{cycles: 1024, outWords: 64, offeredWords: 2048, shedWords: 1024}
	var seen []Violation
	for i := int64(4); i < 10; i++ {
		entered, _ := l.observe(i, i*1024, sick, true)
		seen = append(seen, entered...)
	}
	gates := map[string]int{}
	for _, v := range seen {
		gates[v.Gate]++
	}
	if gates[GateThroughput] != 1 || gates[GateDropRate] != 1 {
		t.Fatalf("threshold gates entered %v, want one transition each", gates)
	}
	if !l.dropRateActive() {
		t.Fatal("drop-rate gate not active")
	}
	if av := l.activeViolations(); len(av) != 2 {
		t.Fatalf("active = %v, want 2", av)
	}

	// Recover: gates clear; the all-clear edge fires exactly once.
	clears := 0
	for i := int64(10); i < 20; i++ {
		_, cleared := l.observe(i, i*1024, healthy, true)
		if cleared {
			clears++
		}
	}
	if clears != 1 {
		t.Fatalf("slo-clear fired %d times, want 1", clears)
	}
	if l.total != 2 {
		t.Fatalf("total violations %d, want 2", l.total)
	}

	// Conservation judges immediately, window or not.
	fresh := newSLOLoop(Gates{}, 250e6)
	entered, _ := fresh.observe(0, 0, healthy, false)
	if len(entered) != 1 || entered[0].Gate != GateConservation {
		t.Fatalf("conservation breach = %v", entered)
	}
}
