package serve

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// newTestRouter builds a cycle router the way the rawrouter serve path
// does, with record-replay armed when the test checkpoints.
func newTestRouter(t *testing.T, mod func(*router.Config)) *router.Router {
	t.Helper()
	rcfg := router.DefaultConfig()
	if mod != nil {
		mod(&rcfg)
	}
	r, err := core.New(core.Options{RouterConfig: &rcfg})
	if err != nil {
		t.Fatal(err)
	}
	return r.Cycle()
}

func testFeeder(t *testing.T, rate int) *SyntheticFeeder {
	t.Helper()
	f, err := NewSyntheticFeeder(SyntheticConfig{
		Seed: 5, SizeBytes: 1024, Pattern: "uniform", RatePerMille: rate, SliceCycles: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestDaemonServesAndDrains: the basic lifecycle — serve MaxSlices
// slices, self-drain, checkpoint, and account for every offered word.
func TestDaemonServesAndDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.srv")
	d, err := New(Config{
		Router:         newTestRouter(t, func(c *router.Config) { c.Checkpoint = true }),
		Feeder:         testFeeder(t, 800),
		SliceCycles:    1024,
		MaxSlices:      24,
		CheckpointPath: path,
		Collector:      telemetry.New(telemetry.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != ReasonMaxSlices || res.Forced {
		t.Fatalf("result = %+v, want clean max-slices drain", res)
	}
	if res.CheckpointPath != path || res.CheckpointBytes == 0 {
		t.Fatalf("checkpoint missing from result: %+v", res)
	}
	st := d.Status()
	if st.State != StateDrained {
		t.Fatalf("final state %s, want drained", st.State)
	}
	tot := st.Ingest.Totals()
	if tot.OfferedWords == 0 {
		t.Fatal("feeder offered nothing")
	}
	if tot.OfferedWords != tot.AdmittedWords+tot.QueuedWords+tot.ShedWords+tot.DrainDiscardedWords {
		t.Fatalf("ledger identity broken: %+v", tot)
	}
	if tot.QueuedWords != 0 {
		t.Fatalf("clean drain left %d words queued", tot.QueuedWords)
	}
	if st.Violations != 0 {
		t.Fatalf("healthy run logged %d SLO violations: %v", st.Violations, st.Active)
	}
}

// runToCheckpoint runs a daemon to MaxSlices and returns the checkpoint
// bytes.
func runToCheckpoint(t *testing.T, path string, maxSlices int64, restore []byte) []byte {
	t.Helper()
	d, err := New(Config{
		Router:         newTestRouter(t, func(c *router.Config) { c.Checkpoint = true }),
		Feeder:         testFeeder(t, 800),
		SliceCycles:    1024,
		MaxSlices:      maxSlices,
		CheckpointPath: path,
		Restore:        restore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestDrainCheckpointResume: a drain checkpoint restores (the restore
// layer replays and verifies the state bit-for-bit) and the resumed
// daemon is deterministic — two restores of the same blob produce
// byte-identical continuations.
func TestDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	first := runToCheckpoint(t, filepath.Join(dir, "a.srv"), 16, nil)

	slice, eras, _, err := decodeCheckpoint(first)
	if err != nil {
		t.Fatal(err)
	}
	if slice < 16 || len(eras) != 0 {
		t.Fatalf("drain checkpoint at slice %d with %d eras", slice, len(eras))
	}

	r1 := runToCheckpoint(t, filepath.Join(dir, "b.srv"), 32, first)
	r2 := runToCheckpoint(t, filepath.Join(dir, "c.srv"), 32, first)
	if string(r1) != string(r2) {
		t.Fatal("two restores of the same checkpoint diverged")
	}
	if string(r1) == string(first) {
		t.Fatal("resumed run did not advance")
	}
}

// TestOverloadShedsNotStalls: a feeder offering far beyond line rate
// against a tiny admission queue must shed (counted) while the cycle
// loop keeps advancing and the ledger identity holds.
func TestOverloadShedsNotStalls(t *testing.T) {
	f, err := NewSyntheticFeeder(SyntheticConfig{
		Seed: 5, SizeBytes: 1024, RatePerMille: 4000, SliceCycles: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Router:      newTestRouter(t, nil),
		Feeder:      f,
		SliceCycles: 1024,
		QueuePkts:   4,
		MaxSlices:   32,
		Gates:       Gates{MaxDropRate: 0.5, WindowSlices: 4},
		Events:      &trace.EventLog{},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle < 32*1024 {
		t.Fatalf("cycle loop stalled at %d", res.Cycle)
	}
	st := d.Status()
	tot := st.Ingest.Totals()
	if tot.ShedWords == 0 {
		t.Fatal("4x overload shed nothing")
	}
	if tot.OfferedWords != tot.AdmittedWords+tot.QueuedWords+tot.ShedWords+tot.DrainDiscardedWords {
		t.Fatalf("ledger identity broken under overload: %+v", tot)
	}
	// 4x offered load against a line-rate fabric sheds well over half:
	// the drop-rate gate must have tripped and logged a typed event.
	if st.Violations == 0 {
		t.Fatal("drop-rate SLO never tripped under 4x overload")
	}
	found := false
	for _, e := range d.cfg.Events.Events {
		if e.Kind == trace.EvSLOViolation && strings.Contains(e.Detail, GateDropRate) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slo-violation event for the drop-rate gate in %d events", len(d.cfg.Events.Events))
	}
}

// waitStatus polls the published status until pred holds or the deadline
// passes.
func waitStatus(t *testing.T, d *Daemon, what string, pred func(*Status) bool) *Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := d.Status()
		if pred(st) {
			return st
		}
		select {
		case <-d.Done():
			st = d.Status()
			if pred(st) {
				return st
			}
			t.Fatalf("daemon exited before %s; final status %+v", what, st)
		case <-time.After(time.Millisecond):
		}
	}
	t.Fatalf("timed out waiting for %s; status %+v", what, d.Status())
	return nil
}

// TestDegradeRestoreReadiness: a frozen crossbar tile degrades the
// fabric — /readyz flips not-ready with the degraded port named — and
// the auto-restore arc brings readiness back; the events land in the
// recovery log.
func TestDegradeRestoreReadiness(t *testing.T) {
	events := &trace.EventLog{}
	sched := fault.MustParse("freeze@8000+60000:t6") // port 1's crossbar tile
	r := newTestRouter(t, func(c *router.Config) {
		c.Watchdog = true
		c.WatchdogCycles = 4000
		c.AutoRestore = true
		c.Events = events
	})
	r.Chip.InstallFaults(fault.NewInjector(sched, router.NumTiles))
	d, err := New(Config{
		Router:      r,
		Feeder:      testFeeder(t, 800),
		SliceCycles: 1024,
		Base:        sched,
		Events:      events,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.Run()
		done <- err
	}()

	if st := d.Status(); !st.Ready {
		t.Fatalf("not ready at boot: %s", st.NotReadyReason)
	}
	st := waitStatus(t, d, "degrade", func(st *Status) bool { return !st.Ready && st.DeadPort == 1 })
	if !strings.Contains(st.NotReadyReason, "port 1") {
		t.Fatalf("not-ready reason %q does not name the degraded port", st.NotReadyReason)
	}
	waitStatus(t, d, "recovery", func(st *Status) bool { return st.Ready && st.DeadPort < 0 })

	<-d.RequestDrain()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.EventKind]bool{}
	for _, e := range events.Events {
		kinds[e.Kind] = true
	}
	for _, want := range []trace.EventKind{trace.EvDegrade, trace.EvReadmit, trace.EvDrainStart} {
		if !kinds[want] {
			t.Fatalf("event log missing %s; have %v", want, events.Events)
		}
	}
}

// TestSoakChaosWindow: a soak run across multiple rolling windows under
// real load survives to a clean drain with the conservation gate green,
// and the windows are recorded in the checkpoint for an exact resume.
func TestSoakChaosWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "soak.srv")
	build := func(restore []byte) *Daemon {
		r := newTestRouter(t, func(c *router.Config) {
			c.Checkpoint = true
			c.Watchdog = true
			c.AutoRestore = true
			c.ReprobeQuanta = 2
		})
		d, err := New(Config{
			Router:         r,
			Feeder:         testFeeder(t, 600),
			SliceCycles:    1024,
			MaxSlices:      48,
			CheckpointPath: path,
			Restore:        restore,
			Soak: &SoakOptions{
				Seed:         11,
				WindowCycles: 16 * 1024,
				Opts:         fault.RandomOptions{MaxStalls: 4, MaxFlaps: 2, MaxFreezes: 1, MaxDRAM: 2, MaxStallCycles: 800},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d := build(nil)
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := d.Status()
	if st.SoakWindows < 3 {
		t.Fatalf("only %d soak windows installed over 48 slices", st.SoakWindows)
	}
	for _, v := range st.Active {
		if v.Gate == GateConservation {
			t.Fatalf("conservation gate red after soak: %v", v)
		}
	}
	if res.Reason != ReasonMaxSlices {
		t.Fatalf("soak exit %s, want max-slices", res.Reason)
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, eras, _, err := decodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(eras) != st.SoakWindows {
		t.Fatalf("checkpoint carries %d eras, status says %d windows", len(eras), st.SoakWindows)
	}

	// The checkpoint restores: same windows, same injector, replay
	// verified. A restore without soak configured must be refused.
	d2 := build(blob)
	if got := len(d2.windowEras); got != len(eras) {
		t.Fatalf("restore rebuilt %d windows, want %d", got, len(eras))
	}
	if _, err := New(Config{
		Router:      newTestRouter(t, func(c *router.Config) { c.Checkpoint = true }),
		Feeder:      testFeeder(t, 600),
		SliceCycles: 1024,
		Restore:     blob,
	}); err == nil {
		t.Fatal("soak checkpoint restored without soak configured")
	}
}

// TestHTTPControlPlane: the mux serves health, readiness, metrics (with
// the serve-plane series), and a drain that returns the checkpoint — and
// keeps answering from the final state after the daemon exits.
func TestHTTPControlPlane(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.srv")
	d, err := New(Config{
		Router:         newTestRouter(t, func(c *router.Config) { c.Checkpoint = true }),
		Feeder:         testFeeder(t, 800),
		SliceCycles:    1024,
		CheckpointPath: path,
		Collector:      telemetry.New(telemetry.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.Run()
		done <- err
	}()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"state": "serving"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, series := range []string{"raw_router_quanta_total", "raw_router_serve_state", "raw_router_serve_offered_words_total"} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing %s", series)
		}
	}
	if code, body := get("/metrics?format=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus metrics format = %d %q", code, body)
	}

	resp, err := http.Post(srv.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Reason     string `json:"reason"`
		Checkpoint string `json:"checkpoint"`
		Bytes      int    `json:"bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dr.Reason != "drained" || dr.Checkpoint != path || dr.Bytes == 0 {
		t.Fatalf("/drain = %+v", dr)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The daemon has exited; handlers answer from the final state.
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "drained") {
		t.Fatalf("post-exit /readyz = %d %q", code, body)
	}
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatalf("post-exit /metrics = %d", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("post-exit /healthz = %d (drained is a clean liveness state)", code)
	}
	// A second drain coalesces into the finished result.
	resp2, err := http.Post(srv.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), `"reason": "drained"`) {
		t.Fatalf("second /drain = %q", body2)
	}
}

// failingDaemon builds a daemon whose router fail-stops under load: two
// crossbar tiles crash at once, which the watchdog cannot attribute.
func failingDaemon(t *testing.T) *Daemon {
	t.Helper()
	sched := fault.MustParse("crash@3000:t5;crash@3000:t6")
	r := newTestRouter(t, func(c *router.Config) {
		c.Watchdog = true
		c.WatchdogCycles = 2000
	})
	r.Chip.InstallFaults(fault.NewInjector(sched, router.NumTiles))
	d, err := New(Config{
		Router:      r,
		Feeder:      testFeeder(t, 800),
		SliceCycles: 1024,
		MaxSlices:   64,
		Base:        sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDaemonFailStop: an unattributable double wedge ends the run with
// ReasonFailed and an unhealthy /healthz.
func TestDaemonFailStop(t *testing.T) {
	d := failingDaemon(t)
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != ReasonFailed {
		t.Fatalf("reason %s, want failed", res.Reason)
	}
	st := d.Status()
	if !st.RouterFailed || st.State != StateFailed || st.Ready {
		t.Fatalf("failed status = %+v", st)
	}
	rec := httptest.NewRecorder()
	d.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed /healthz = %d, want 503", rec.Code)
	}
}

// TestSupervisorRestartsWithBackoff: the supervisor rebuilds fail-stopped
// incarnations with bumped eras and seeded exponential backoff, and
// surfaces a spent restart budget as an error; a clean exit ends the loop
// immediately.
func TestSupervisorRestartsWithBackoff(t *testing.T) {
	var eras []uint64
	var delays []time.Duration
	_, err := Supervise(SupervisorConfig{
		Build: func(restorePath string, era uint64) (*Daemon, error) {
			eras = append(eras, era)
			return failingDaemon(t), nil
		},
		MaxRestarts: 2,
		BackoffBase: 100 * time.Millisecond,
		Seed:        3,
		Sleep:       func(d time.Duration) { delays = append(delays, d) },
	})
	if err == nil || !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("spent budget error = %v", err)
	}
	if len(eras) != 3 {
		t.Fatalf("built %d incarnations, want 3 (initial + 2 restarts)", len(eras))
	}
	for i, e := range eras {
		if e != uint64(i) {
			t.Fatalf("incarnation %d ran era %d, want %d", i, e, i)
		}
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
	if delays[0] < 100*time.Millisecond || delays[1] < 200*time.Millisecond {
		t.Fatalf("backoff did not grow: %v", delays)
	}

	builds := 0
	res, err := Supervise(SupervisorConfig{
		Build: func(restorePath string, era uint64) (*Daemon, error) {
			builds++
			d, err := New(Config{
				Router:      newTestRouter(t, nil),
				Feeder:      testFeeder(t, 800),
				SliceCycles: 1024,
				MaxSlices:   4,
			})
			if err != nil {
				t.Fatal(err)
			}
			return d, nil
		},
		Sleep: func(time.Duration) { t.Fatal("clean exit slept") },
	})
	if err != nil || res.Reason != ReasonMaxSlices || builds != 1 {
		t.Fatalf("clean supervise = %+v, %v (builds %d)", res, err, builds)
	}
}

// TestUDPFeederDelivery: datagrams map onto (ingress, destination, size)
// and arrive through Slice.
func TestUDPFeederDelivery(t *testing.T) {
	f, err := NewUDPFeeder("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	conn, err := net.Dial("udp", f.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := make([]byte, 200)
	payload[0] = 2 // ingress port 2
	payload[1] = 3 // destination 3
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := f.Slice(0)
		if len(out[2]) == 1 {
			pkt := out[2][0]
			// PortAddr puts 10+port in the address's top byte.
			if got := int(pkt.Header.Dst>>24) - 10; got != 3 {
				t.Fatalf("destination %d, want 3", got)
			}
			if got := int(pkt.Header.TotalLen); got != 200 {
				t.Fatalf("size %dB, want 200", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("datagram never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
}
