package serve

import (
	"fmt"

	"repro/internal/stats"
)

// SLO guardrails. The daemon samples the telemetry plane at every slice
// boundary (slices are whole numbers of quanta in practice, and every
// counter read is a between-cycles snapshot) and folds the samples into
// a rolling window judged against declarative gates. Violations are
// typed events — they land in the telemetry event stream under the
// "slo-violation" kind — and entering violation trips the graceful
// degradation responses: readiness flips off, and a drop-rate breach
// clamps the admission queues so the ingest bridge sheds earlier.

// Gates declares the serve-mode service-level objectives. The zero value
// disables every threshold gate; conservation checking is always on in
// the daemon (a broken ledger is a bug, not an operating condition).
type Gates struct {
	// MinGbps is the minimum delivered throughput (output-pin words)
	// over the window; 0 disables.
	MinGbps float64
	// MaxDropRate is the maximum (shed words / offered words) over the
	// window; 0 or negative disables.
	MaxDropRate float64
	// WindowSlices is the rolling window length in slices (default 8).
	// Gates are judged only once a full window of samples exists.
	WindowSlices int
}

// Gate names (the Violation.Gate vocabulary).
const (
	GateThroughput   = "throughput"
	GateDropRate     = "droprate"
	GateConservation = "conservation"
)

// Violation is one typed SLO breach: gate, observed value, limit, and
// where in the run it was judged.
type Violation struct {
	Slice int64   `json:"slice"`
	Cycle int64   `json:"cycle"`
	Gate  string  `json:"gate"`
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
}

// String renders the violation the way the event Detail field carries it.
func (v Violation) String() string {
	return fmt.Sprintf("gate=%s value=%g limit=%g", v.Gate, v.Value, v.Limit)
}

// sloSample is one slice's deltas, the unit the rolling window sums.
type sloSample struct {
	cycles       int64
	outWords     int64
	offeredWords int64
	shedWords    int64
}

// sloLoop is the rolling-window evaluator. It lives on the slice loop
// goroutine; all methods are called between slices.
type sloLoop struct {
	gates   Gates
	clockHz float64

	ring []sloSample
	next int
	full bool

	// active tracks which gates are currently in violation; transitions
	// in and out are what emit events.
	active map[string]Violation
	// wasActive remembers whether any gate was in violation after the
	// previous observation (the edge detector for slo-clear).
	wasActive bool
	// total counts entering transitions over the daemon's life.
	total int64
	// lastGbps is the most recent full-window delivered throughput.
	lastGbps float64
}

func newSLOLoop(g Gates, clockHz float64) *sloLoop {
	if g.WindowSlices <= 0 {
		g.WindowSlices = 8
	}
	return &sloLoop{
		gates:   g,
		clockHz: clockHz,
		ring:    make([]sloSample, g.WindowSlices),
		active:  map[string]Violation{},
	}
}

// observe folds one slice's sample in and judges the gates. It returns
// the violations entered this slice and whether all gates just cleared
// (for the slo-clear event). conservationOK is the caller's ledger +
// counter invariant check, judged every slice regardless of window fill.
func (l *sloLoop) observe(slice, cycle int64, s sloSample, conservationOK bool) (entered []Violation, cleared bool) {
	l.ring[l.next] = s
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}

	judge := func(gate string, value, limit float64, bad bool) {
		if bad {
			if _, on := l.active[gate]; !on {
				v := Violation{Slice: slice, Cycle: cycle, Gate: gate, Value: value, Limit: limit}
				l.active[gate] = v
				l.total++
				entered = append(entered, v)
			}
		} else {
			delete(l.active, gate)
		}
	}

	judge(GateConservation, 0, 0, !conservationOK)

	if l.full {
		var sum sloSample
		for _, r := range l.ring {
			sum.cycles += r.cycles
			sum.outWords += r.outWords
			sum.offeredWords += r.offeredWords
			sum.shedWords += r.shedWords
		}
		l.lastGbps = stats.Gbps(sum.outWords*4, sum.cycles, l.clockHz)
		if l.gates.MinGbps > 0 {
			judge(GateThroughput, l.lastGbps, l.gates.MinGbps, l.lastGbps < l.gates.MinGbps)
		}
		if l.gates.MaxDropRate > 0 && sum.offeredWords > 0 {
			rate := float64(sum.shedWords) / float64(sum.offeredWords)
			judge(GateDropRate, rate, l.gates.MaxDropRate, rate > l.gates.MaxDropRate)
		}
	}

	nowActive := len(l.active) > 0
	if l.wasActive && !nowActive {
		cleared = true
	}
	l.wasActive = nowActive
	return entered, cleared
}

// activeViolations returns the current violations sorted by gate name
// (deterministic for the published Status).
func (l *sloLoop) activeViolations() []Violation {
	if len(l.active) == 0 {
		return nil
	}
	out := make([]Violation, 0, len(l.active))
	for _, gate := range []string{GateConservation, GateDropRate, GateThroughput} {
		if v, ok := l.active[gate]; ok {
			out = append(out, v)
		}
	}
	return out
}

// dropRateActive reports whether the drop-rate gate is currently in
// violation — the trigger for the admission clamp.
func (l *sloLoop) dropRateActive() bool {
	_, on := l.active[GateDropRate]
	return on
}
