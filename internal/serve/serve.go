package serve

import (
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// State is the daemon lifecycle position: serving → draining → drained
// (checkpointed, clean exit), with failed as the fail-stop exit arc the
// supervisor restarts from.
type State int32

// The lifecycle states.
const (
	StateServing State = iota
	StateDraining
	StateDrained
	StateFailed
)

// String names the state for status bodies and logs.
func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	case StateDrained:
		return "drained"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Reason says why Run returned.
type Reason int

// The exit reasons.
const (
	// ReasonDrained: a drain request (SIGTERM, /drain) completed.
	ReasonDrained Reason = iota
	// ReasonMaxSlices: the configured slice budget expired; the daemon
	// drained itself.
	ReasonMaxSlices
	// ReasonFailed: the router fail-stopped; restart from the last
	// checkpoint (supervision) is the only way forward.
	ReasonFailed
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonDrained:
		return "drained"
	case ReasonMaxSlices:
		return "max-slices"
	case ReasonFailed:
		return "failed"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Result is Run's outcome.
type Result struct {
	Reason Reason
	// CheckpointPath/CheckpointBytes describe the drain checkpoint ("" /
	// 0 when no checkpoint path was configured or the exit was a fail).
	CheckpointPath  string
	CheckpointBytes int
	// LastCheckpoint is the most recent checkpoint on disk (the drain
	// blob, or the last periodic one before a fail) — what a supervisor
	// restarts from.
	LastCheckpoint string
	// Forced marks a drain whose budget expired before quiescence; the
	// checkpoint is still exact (record-replay does not need an idle
	// fabric), but queued admissions were discarded (and counted).
	Forced bool
	Cycle  int64
	Slice  int64
}

// SoakOptions arms continuous chaos: rolling fault.Window schedules
// generated as the simulation reaches them.
type SoakOptions struct {
	// Seed drives every window.
	Seed uint64
	// WindowCycles is the rolling window length (default 262,144 cycles;
	// rounded up to whole slices).
	WindowCycles int64
	// Opts bounds each window's event classes (fault.Random defaults
	// apply; Horizon is overridden per window).
	Opts fault.RandomOptions
	// Era salts windows generated from now on. The supervisor bumps it
	// on every restart so the restored run does not deterministically
	// re-enter the exact arc that killed the previous incarnation.
	Era uint64
}

// Config assembles a Daemon. Router and Feeder are required; everything
// else has serviceable defaults.
type Config struct {
	// Router is the cycle-level router (built with Config.Checkpoint if
	// CheckpointPath / CheckpointEverySlices / Restore are used).
	Router *router.Router
	// ClockHz converts cycle counts to wall rates (default 250 MHz).
	ClockHz float64
	// Feeder supplies arrivals per slice.
	Feeder Feeder
	// SliceCycles is the admission/control time base (default 4096
	// cycles). Slices are the only points the daemon touches simulator
	// state, services control requests, and publishes status.
	SliceCycles int64
	// QueuePkts bounds each port's admission queue (default 64 packets);
	// arrivals beyond it are shed, never blocked.
	QueuePkts int
	// HighWords is the input-pin backlog high-water mark above which the
	// pump stops offering (default 4096 words, the batch driver's level).
	HighWords int
	// Gates are the SLO guardrails.
	Gates Gates
	// CheckpointPath, if set, receives the drain checkpoint (and
	// periodic ones when CheckpointEverySlices > 0).
	CheckpointPath string
	// CheckpointEverySlices writes a periodic checkpoint every N slices
	// (0 = only at drain). Requires CheckpointPath.
	CheckpointEverySlices int64
	// MaxSlices, if > 0, drains the daemon after that many serving
	// slices — a deadman for tests and CI.
	MaxSlices int64
	// DrainBudgetSlices bounds how long a drain waits for quiescence
	// before checkpointing anyway (default 256 slices).
	DrainBudgetSlices int64
	// Base is the explicit fault schedule (-faults / -faultseed); the
	// daemon installs it (and its scheduled recovery controls) before
	// any restore so replay sees identical faults.
	Base *fault.Schedule
	// Soak, if non-nil, layers rolling chaos windows on top of Base.
	Soak *SoakOptions
	// Restore is a serve checkpoint blob (WriteCheckpoint's format) to
	// resume from.
	Restore []byte
	// Collector, if non-nil, is the telemetry collector wired into the
	// router config; serve events are recorded into it and /metrics
	// renders its snapshot.
	Collector *telemetry.Collector
	// Events, if non-nil, receives serve-plane events alongside the
	// router's.
	Events *trace.EventLog
	// Logf, if non-nil, receives one-line progress narration.
	Logf func(format string, args ...any)
}

// IngestStatus is the published admission ledger.
type IngestStatus struct {
	Ports [4]PortIngest `json:"ports"`
}

// Totals sums the ledger across ports.
func (s *IngestStatus) Totals() PortIngest {
	var t PortIngest
	for p := range s.Ports {
		l := &s.Ports[p]
		t.OfferedPkts += l.OfferedPkts
		t.OfferedWords += l.OfferedWords
		t.AdmittedPkts += l.AdmittedPkts
		t.AdmittedWords += l.AdmittedWords
		t.ShedPkts += l.ShedPkts
		t.ShedWords += l.ShedWords
		t.DrainDiscardedPkts += l.DrainDiscardedPkts
		t.DrainDiscardedWords += l.DrainDiscardedWords
		t.QueuedPkts += l.QueuedPkts
		t.QueuedWords += l.QueuedWords
	}
	return t
}

// Status is the immutable, atomically published daemon state — what
// /healthz and /readyz serve without touching the slice loop.
type Status struct {
	State State `json:"-"`
	// StateName is State rendered for JSON bodies.
	StateName string `json:"state"`
	// Ready is the readiness verdict: serving, router healthy (no dead
	// port, not restoring, no probation), and no active SLO violation.
	Ready bool `json:"ready"`
	// NotReadyReason explains a false Ready.
	NotReadyReason string `json:"not_ready_reason,omitempty"`
	Cycle          int64  `json:"cycle"`
	Slice          int64  `json:"slice"`
	Quanta         int64  `json:"quanta"`
	DeadPort       int    `json:"dead_port"`
	ProbationPort  int    `json:"probation_port"`
	Restoring      bool   `json:"restoring"`
	RouterFailed   bool   `json:"router_failed"`
	// WindowGbps is delivered throughput over the last full SLO window
	// (0 until a window fills).
	WindowGbps float64 `json:"window_gbps"`
	// Violations counts SLO violation entering-transitions; Active lists
	// the gates currently in violation.
	Violations int64       `json:"slo_violations_total"`
	Active     []Violation `json:"slo_active,omitempty"`
	// SoakWindows counts rolling chaos windows installed so far.
	SoakWindows int          `json:"soak_windows"`
	Ingest      IngestStatus `json:"ingest"`
}

// Daemon runs the router as a service. Construct with New, run with Run
// (blocking; one goroutine owns all simulator state), interact through
// Handler / RequestDrain / Status from any goroutine.
type Daemon struct {
	cfg Config
	r   *router.Router
	adm *admission
	slo *sloLoop

	slice   int64
	state   State
	reason  Reason
	clamped bool

	// Rolling soak state: one era per installed window, index = window k.
	windowEras   []uint64
	windowSlices int64

	// Per-slice delta baselines.
	prevOutWords [4]int64
	prevOffered  int64
	prevShed     int64

	// Drain state.
	drainStart   int64
	drainStable  int
	drainWaiters []chan Result
	lastCkpt     string

	ctl    chan func()
	done   chan struct{}
	status atomic.Pointer[Status]
	final  atomic.Pointer[Result]
}

// New validates the config, installs the fault plane, and — when
// Config.Restore is set — replays the checkpoint so Run continues the
// recorded run bit-for-bit.
func New(cfg Config) (*Daemon, error) {
	if cfg.Router == nil {
		return nil, fmt.Errorf("serve: Config.Router is required")
	}
	if cfg.Feeder == nil {
		return nil, fmt.Errorf("serve: Config.Feeder is required")
	}
	if cfg.ClockHz == 0 {
		cfg.ClockHz = 250e6
	}
	if cfg.SliceCycles <= 0 {
		cfg.SliceCycles = 4096
	}
	if cfg.QueuePkts <= 0 {
		cfg.QueuePkts = 64
	}
	if cfg.HighWords <= 0 {
		cfg.HighWords = 4096
	}
	if cfg.DrainBudgetSlices <= 0 {
		cfg.DrainBudgetSlices = 256
	}
	if cfg.CheckpointEverySlices > 0 && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("serve: CheckpointEverySlices requires CheckpointPath")
	}
	d := &Daemon{
		cfg:  cfg,
		r:    cfg.Router,
		adm:  newAdmission(cfg.QueuePkts, cfg.HighWords),
		slo:  newSLOLoop(cfg.Gates, cfg.ClockHz),
		ctl:  make(chan func(), 16),
		done: make(chan struct{}),
	}
	if cfg.Soak != nil {
		if cfg.Soak.WindowCycles <= 0 {
			cfg.Soak.WindowCycles = 262_144
		}
		d.windowSlices = (cfg.Soak.WindowCycles + cfg.SliceCycles - 1) / cfg.SliceCycles
		if d.windowSlices < 1 {
			d.windowSlices = 1
		}
	}

	var startSlice int64
	var blob []byte
	if cfg.Restore != nil {
		var eras []uint64
		var err error
		startSlice, eras, blob, err = decodeCheckpoint(cfg.Restore)
		if err != nil {
			return nil, err
		}
		if len(eras) > 0 && cfg.Soak == nil {
			return nil, fmt.Errorf("serve: checkpoint holds %d soak windows but soak is not configured", len(eras))
		}
		d.windowEras = eras
	}

	// Fault plane and scheduled recovery controls go in before any
	// restore: the replay must see the exact injector and controls the
	// original run had.
	d.installInjector()
	if cfg.Base != nil {
		for _, ctl := range cfg.Base.Controls() {
			switch ctl.Kind {
			case fault.KindRestore:
				d.r.ScheduleRestore(ctl.Start, ctl.Tile)
			case fault.KindReprobe:
				d.r.ScheduleReprobe(ctl.Start, ctl.Tile)
			}
		}
	}
	if blob != nil {
		if err := d.r.RestoreSnapshot(blob); err != nil {
			return nil, fmt.Errorf("serve: restore: %w", err)
		}
		d.slice = startSlice
		d.logf("restored checkpoint: cycle %d, slice %d, %d soak windows", d.r.Cycle(), d.slice, len(d.windowEras))
	}
	d.publish()
	return d, nil
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// event records a serve-plane event into the telemetry collector and the
// event log. Serve events carry port -1: they are plane-wide, not tied
// to an edge port.
func (d *Daemon) event(kind trace.EventKind, detail string) {
	e := trace.Event{Cycle: d.r.Cycle(), Port: -1, Kind: kind, Detail: detail}
	d.cfg.Collector.RecordEvent(e)
	if d.cfg.Events != nil {
		d.cfg.Events.Events = append(d.cfg.Events.Events, e)
	}
	d.logf("event: %d %s", e.Cycle, e.String())
}

// installInjector compiles Base ∪ installed soak windows and installs it
// on the chip. Rebuilding from the union keeps mid-run installs
// replay-correct: a restored run installs the same union before replay,
// and events confined to future windows are inert during earlier cycles.
func (d *Daemon) installInjector() {
	scheds := []*fault.Schedule{d.cfg.Base}
	if d.cfg.Soak != nil {
		for k, era := range d.windowEras {
			scheds = append(scheds, fault.Window(d.cfg.Soak.Seed, era, int64(k),
				d.windowSlices*d.cfg.SliceCycles, d.cfg.Soak.Opts))
		}
	}
	u := fault.Union(scheds...)
	if len(u.Events) == 0 && d.cfg.Base == nil && d.cfg.Soak == nil {
		return
	}
	d.r.Chip.InstallFaults(fault.NewInjector(u, router.NumTiles))
}

// soakTick generates and installs the next rolling window when the
// serving slice crosses a window boundary.
func (d *Daemon) soakTick() {
	if d.cfg.Soak == nil || d.windowSlices == 0 {
		return
	}
	k := d.slice / d.windowSlices
	for int64(len(d.windowEras)) <= k {
		d.windowEras = append(d.windowEras, d.cfg.Soak.Era)
		d.logf("soak: window %d armed (era %d, slices %d..%d)",
			len(d.windowEras)-1, d.cfg.Soak.Era,
			int64(len(d.windowEras)-1)*d.windowSlices, int64(len(d.windowEras))*d.windowSlices-1)
	}
	if int64(len(d.windowEras)) == k+1 && d.slice%d.windowSlices == 0 {
		d.installInjector()
	}
}

// Run is the slice loop: admit → simulate → harvest → judge → publish,
// forever, until a drain request (or MaxSlices, or a router fail-stop)
// ends it. It must be called exactly once, and owns all simulator state
// for its duration.
func (d *Daemon) Run() (Result, error) {
	res, err := d.run()
	d.final.Store(&res)
	// Service stragglers enqueued during the last slice (their drain
	// registrations land in drainWaiters), then notify and close. A
	// request racing the close waits on Done and reads FinalResult (see
	// the /drain handler).
	d.processCtl()
	for _, w := range d.drainWaiters {
		w <- res
	}
	d.drainWaiters = nil
	close(d.done)
	return res, err
}

// Done is closed once Run has returned; FinalResult is non-nil from that
// point. Handlers select on Done to avoid waiting on a loop that has
// already exited.
func (d *Daemon) Done() <-chan struct{} { return d.done }

// FinalResult returns Run's result, or nil while the daemon is running.
func (d *Daemon) FinalResult() *Result { return d.final.Load() }

func (d *Daemon) run() (Result, error) {
	for {
		d.processCtl()
		if d.r.Failed() {
			d.state = StateFailed
			d.publish()
			return d.result(ReasonFailed, false), nil
		}
		switch d.state {
		case StateServing:
			if d.cfg.MaxSlices > 0 && d.slice >= d.cfg.MaxSlices {
				d.beginDrain(ReasonMaxSlices)
				continue
			}
			d.soakTick()
			d.adm.offer(d.cfg.Feeder.Slice(d.slice), d.clamped)
			d.adm.pump(d.r.InputBacklogWords, d.r.OfferPacket)
			d.r.Run(d.cfg.SliceCycles)
			if err := d.harvest(); err != nil {
				return d.result(ReasonFailed, false), err
			}
			d.sloTick()
			d.slice++
			if d.cfg.CheckpointEverySlices > 0 && d.slice%d.cfg.CheckpointEverySlices == 0 {
				if _, err := d.writeCheckpoint(false); err != nil {
					return d.result(ReasonFailed, false), err
				}
			}
			d.publish()
		case StateDraining:
			d.adm.pump(d.r.InputBacklogWords, d.r.OfferPacket)
			d.r.Run(d.cfg.SliceCycles)
			if err := d.harvest(); err != nil {
				return d.result(ReasonFailed, false), err
			}
			d.slice++
			d.publish()
			if d.drainQuiet() {
				d.drainStable++
			} else {
				d.drainStable = 0
			}
			budgetOut := d.slice-d.drainStart >= d.cfg.DrainBudgetSlices
			if d.drainStable >= 2 || budgetOut {
				return d.finishDrain(budgetOut && d.drainStable < 2)
			}
		default:
			return d.result(d.reason, false), fmt.Errorf("serve: run entered state %s", d.state)
		}
	}
}

// processCtl services queued control-plane requests between slices.
func (d *Daemon) processCtl() {
	for {
		select {
		case f := <-d.ctl:
			f()
		default:
			return
		}
	}
}

// harvest drains the output pins (bounding sink memory on a long run)
// and refreshes the per-slice delta baselines.
func (d *Daemon) harvest() error {
	for p := 0; p < 4; p++ {
		if _, err := d.r.DrainOutput(p); err != nil {
			return fmt.Errorf("serve: output port %d: %w", p, err)
		}
	}
	return nil
}

// sloTick folds this slice's sample into the rolling window, emits
// violation/clear events, and applies the degradation responses.
func (d *Daemon) sloTick() {
	var s sloSample
	s.cycles = d.cfg.SliceCycles
	for p := 0; p < 4; p++ {
		out := d.r.OutputWords(p)
		s.outWords += out - d.prevOutWords[p]
		d.prevOutWords[p] = out
	}
	tot := (&IngestStatus{Ports: d.adm.ledger}).Totals()
	s.offeredWords = tot.OfferedWords - d.prevOffered
	s.shedWords = tot.ShedWords - d.prevShed
	d.prevOffered = tot.OfferedWords
	d.prevShed = tot.ShedWords

	entered, cleared := d.slo.observe(d.slice, d.r.Cycle(), s, d.conservationOK())
	for _, v := range entered {
		d.event(trace.EvSLOViolation, v.String())
	}
	if cleared {
		d.event(trace.EvSLOClear, "")
	}
	d.clamped = d.slo.dropRateActive()
}

// conservationOK checks the invariants that must hold at every slice
// boundary: the admission ledger balances, and the router never claims
// more deliveries than admissions.
func (d *Daemon) conservationOK() bool {
	if !d.adm.balanced() {
		return false
	}
	st := d.r.Stats()
	var in, out int64
	for p := 0; p < 4; p++ {
		in += st.PktsIn[p]
		out += st.PktsOut[p]
	}
	return out+st.FabricLost <= in
}

// drainQuiet is the drain-side quiescence predicate: nothing in flight
// in the fabric, no queued admissions, and no undelivered backlog on a
// port that can still consume it.
func (d *Daemon) drainQuiet() bool {
	if !d.r.Quiescent() {
		return false
	}
	for p := 0; p < 4; p++ {
		if d.adm.queuedWords(p) > 0 {
			return false
		}
		if p != d.r.DeadPort() && d.r.InputBacklogWords(p) > 0 {
			return false
		}
	}
	return true
}

// beginDrain flips the daemon into the draining state (idempotent).
func (d *Daemon) beginDrain(reason Reason) {
	if d.state != StateServing {
		return
	}
	d.state = StateDraining
	d.reason = reason
	d.drainStart = d.slice
	d.drainStable = 0
	d.event(trace.EvDrainStart, fmt.Sprintf("reason=%s", reason))
	d.publish()
}

// finishDrain writes the drain checkpoint and ends the run.
func (d *Daemon) finishDrain(forced bool) (Result, error) {
	if forced {
		d.adm.discardQueues()
	}
	n, err := d.writeCheckpoint(forced)
	if err != nil {
		return d.result(ReasonFailed, forced), err
	}
	d.state = StateDrained
	d.publish()
	res := d.result(d.reason, forced)
	res.CheckpointPath = d.cfg.CheckpointPath
	res.CheckpointBytes = n
	return res, nil
}

func (d *Daemon) result(reason Reason, forced bool) Result {
	return Result{
		Reason:         reason,
		LastCheckpoint: d.lastCkpt,
		Forced:         forced,
		Cycle:          d.r.Cycle(),
		Slice:          d.slice,
	}
}

// writeCheckpoint serializes the serve checkpoint (slice index, soak
// window eras, router blob) to Config.CheckpointPath. A nil path is a
// no-op (drains without a checkpoint path just exit cleanly).
func (d *Daemon) writeCheckpoint(forced bool) (int, error) {
	if d.cfg.CheckpointPath == "" {
		return 0, nil
	}
	blob, err := d.r.Snapshot()
	if err != nil {
		return 0, fmt.Errorf("serve: checkpoint: %w", err)
	}
	out := encodeCheckpoint(d.slice, d.windowEras, blob)
	if err := os.WriteFile(d.cfg.CheckpointPath, out, 0o644); err != nil {
		return 0, fmt.Errorf("serve: checkpoint: %w", err)
	}
	d.lastCkpt = d.cfg.CheckpointPath
	detail := fmt.Sprintf("bytes=%d", len(out))
	if forced {
		detail += " forced"
	}
	d.event(trace.EvCheckpoint, detail)
	return len(out), nil
}

// publish refreshes the atomically shared Status.
func (d *Daemon) publish() {
	st := &Status{
		State:         d.state,
		StateName:     d.state.String(),
		Cycle:         d.r.Cycle(),
		Slice:         d.slice,
		Quanta:        d.cfg.Collector.Quanta(),
		DeadPort:      d.r.DeadPort(),
		ProbationPort: d.r.ProbationPort(),
		Restoring:     d.r.Restoring(),
		RouterFailed:  d.r.Failed(),
		WindowGbps:    d.slo.lastGbps,
		Violations:    d.slo.total,
		Active:        d.slo.activeViolations(),
		SoakWindows:   len(d.windowEras),
		Ingest:        IngestStatus{Ports: d.adm.ledger},
	}
	st.Ready, st.NotReadyReason = readiness(st)
	d.status.Store(st)
}

// readiness derives the /readyz verdict from a status.
func readiness(st *Status) (bool, string) {
	switch {
	case st.RouterFailed:
		return false, "router fail-stopped"
	case st.State != StateServing:
		return false, "state " + st.StateName
	case st.DeadPort >= 0:
		return false, fmt.Sprintf("port %d degraded", st.DeadPort)
	case st.Restoring:
		return false, "restore draining"
	case st.ProbationPort >= 0:
		return false, fmt.Sprintf("port %d in probation", st.ProbationPort)
	case len(st.Active) > 0:
		return false, "SLO violation: " + st.Active[0].String()
	}
	return true, ""
}

// Status returns the latest published status (never nil after New).
func (d *Daemon) Status() *Status { return d.status.Load() }

// RequestDrain asks the slice loop to drain, checkpoint, and exit. The
// returned channel receives the final Result (immediately, if the daemon
// already stopped). Safe from any goroutine; all requests coalesce into
// one drain.
func (d *Daemon) RequestDrain() <-chan Result {
	ch := make(chan Result, 1)
	select {
	case d.ctl <- func() {
		d.drainWaiters = append(d.drainWaiters, ch)
		d.beginDrain(ReasonDrained)
	}:
	case <-d.done:
		if res := d.final.Load(); res != nil {
			ch <- *res
		}
	}
	return ch
}
