package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/telemetry"
)

// HTTP control plane. Handlers never touch simulator state directly:
// /healthz and /readyz serve the atomically published Status, while
// /metrics and /drain post a request onto the control channel the slice
// loop services between slices (or, once the loop has exited, run
// inline — the Done close makes the loop's final memory visible).

// callOnLoop runs f on the slice loop between slices and waits for it.
// If the loop has already exited (or exits before servicing the
// request), f runs inline on the caller — safe, because after Done no
// goroutine touches the daemon again.
func (d *Daemon) callOnLoop(f func()) {
	ran := make(chan struct{})
	select {
	case d.ctl <- func() { f(); close(ran) }:
		select {
		case <-ran:
		case <-d.done:
			select {
			case <-ran:
			default:
				f()
			}
		}
	case <-d.done:
		f()
	}
}

// Handler returns the control-plane mux: /metrics, /healthz, /readyz,
// /drain.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/readyz", d.handleReadyz)
	mux.HandleFunc("/drain", d.handleDrain)
	return mux
}

// handleMetrics renders the telemetry snapshot on demand (default
// Prometheus text; ?format=jsonl|csv|prom), with the serve-plane series
// appended to the Prometheus form.
func (d *Daemon) handleMetrics(w http.ResponseWriter, req *http.Request) {
	format := req.URL.Query().Get("format")
	if format == "" {
		format = "prom"
	}
	var body []byte
	var err error
	d.callOnLoop(func() {
		snap := d.r.TelemetrySnapshot()
		body, err = snap.Encode(format)
		if err == nil && format == "prom" {
			body = append(body, d.serveMetrics()...)
		}
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentType(format))
	w.Write(body)
}

// serveMetrics renders the daemon-plane Prometheus series (ingest
// ledger, lifecycle, SLO counters). Runs on the slice loop (or inline
// after exit), so it reads the last published status.
func (d *Daemon) serveMetrics() []byte {
	st := d.Status()
	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	gauge("raw_router_serve_state", "Daemon lifecycle (0 serving, 1 draining, 2 drained, 3 failed).", int(st.State))
	gauge("raw_router_serve_ready", "1 when /readyz would return 200.", b01(st.Ready))
	gauge("raw_router_serve_slice", "Completed admission slices.", st.Slice)
	gauge("raw_router_serve_soak_windows", "Rolling chaos windows installed.", st.SoakWindows)
	gauge("raw_router_serve_window_gbps", "Delivered throughput over the last full SLO window.", st.WindowGbps)
	fmt.Fprintf(&b, "# HELP raw_router_serve_slo_violations_total SLO violation entering-transitions.\n# TYPE raw_router_serve_slo_violations_total counter\nraw_router_serve_slo_violations_total %d\n", st.Violations)
	perPort := func(name, help string, v func(l *PortIngest) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for p := range st.Ingest.Ports {
			fmt.Fprintf(&b, "%s{port=\"%d\"} %d\n", name, p, v(&st.Ingest.Ports[p]))
		}
	}
	perPort("raw_router_serve_offered_words_total", "Words the feeder offered.",
		func(l *PortIngest) int64 { return l.OfferedWords })
	perPort("raw_router_serve_admitted_words_total", "Words admitted to the input pins.",
		func(l *PortIngest) int64 { return l.AdmittedWords })
	perPort("raw_router_serve_shed_words_total", "Words shed by admission overload.",
		func(l *PortIngest) int64 { return l.ShedWords })
	perPort("raw_router_serve_drain_discarded_words_total", "Queued words discarded by a forced drain.",
		func(l *PortIngest) int64 { return l.DrainDiscardedWords })
	fmt.Fprintf(&b, "# HELP raw_router_serve_queue_words Words currently queued at admission.\n# TYPE raw_router_serve_queue_words gauge\n")
	for p := range st.Ingest.Ports {
		fmt.Fprintf(&b, "raw_router_serve_queue_words{port=\"%d\"} %d\n", p, st.Ingest.Ports[p].QueuedWords)
	}
	return []byte(b.String())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleHealthz reports liveness: 200 while the process is serving or
// winding down cleanly, 503 once the router fail-stopped.
func (d *Daemon) handleHealthz(w http.ResponseWriter, req *http.Request) {
	st := d.Status()
	code := http.StatusOK
	if st.RouterFailed || st.State == StateFailed {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// handleReadyz reports readiness: 200 only while serving with a healthy
// router (no degraded port, restore, or probation) and no active SLO
// violation.
func (d *Daemon) handleReadyz(w http.ResponseWriter, req *http.Request) {
	st := d.Status()
	if st.Ready {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "slice": st.Slice, "cycle": st.Cycle})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"ready": false, "reason": st.NotReadyReason, "state": st.StateName,
		"slice": st.Slice, "cycle": st.Cycle,
	})
}

// drainResponse is /drain's JSON body.
type drainResponse struct {
	Reason     string `json:"reason"`
	Checkpoint string `json:"checkpoint,omitempty"`
	Bytes      int    `json:"bytes,omitempty"`
	Forced     bool   `json:"forced,omitempty"`
	Cycle      int64  `json:"cycle"`
	Slice      int64  `json:"slice"`
}

// handleDrain (POST) initiates drain → checkpoint → exit and replies
// once the checkpoint is on disk — live migration as an HTTP call.
// Repeated calls coalesce and all receive the same result.
func (d *Daemon) handleDrain(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost && req.Method != http.MethodGet {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	ch := d.RequestDrain()
	var res Result
	select {
	case res = <-ch:
	case <-d.done:
		select {
		case res = <-ch:
		default:
			if p := d.FinalResult(); p != nil {
				res = *p
			}
		}
	}
	writeJSON(w, http.StatusOK, drainResponse{
		Reason:     res.Reason.String(),
		Checkpoint: res.CheckpointPath,
		Bytes:      res.CheckpointBytes,
		Forced:     res.Forced,
		Cycle:      res.Cycle,
		Slice:      res.Slice,
	})
}
