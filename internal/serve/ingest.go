// Package serve runs the cycle-level router as a long-lived service: an
// open-loop ingest bridge admitting externally arriving packets onto the
// edge-port word streams, an HTTP control plane (/metrics, /healthz,
// /readyz, /drain), an SLO guardrail loop sampling telemetry against
// declarative gates, and a continuous chaos soak mode with supervised
// restart-from-checkpoint.
//
// The daemon keeps the simulation's determinism discipline: everything
// that touches simulator state runs on one goroutine (the slice loop);
// HTTP handlers communicate through a control channel serviced between
// slices plus an atomically published immutable Status. With the
// deterministic synthetic feeder, a serve run is a pure function of its
// configuration — it can be checkpointed mid-flight and restored
// bit-for-bit, which is what makes /drain a live-migration primitive.
package serve

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/ip"
	"repro/internal/traffic"
)

// Feeder produces the packets arriving at the router's four edge ports
// during one slice of the daemon's time base (Config.SliceCycles cycles).
// Deterministic feeders must be pure functions of the slice index so a
// restored daemon resumes the identical arrival stream.
type Feeder interface {
	// Slice returns the arrivals for slice s, per edge port.
	Slice(s int64) [4][]ip.Packet
	// Close releases any external resources (sockets).
	Close() error
}

// mix64 is a splitmix64-style finalizer used to derive independent
// per-(slice, port) RNG streams from one feeder seed.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// SyntheticConfig parameterizes the deterministic in-process feeder.
type SyntheticConfig struct {
	// Seed drives every random draw (destinations, address salts).
	Seed uint64
	// SizeBytes is the on-wire packet size (default 1024, the paper's
	// steady-state size).
	SizeBytes int
	// Pattern is "uniform", "permutation", or "hotspot" (§7.2-§7.4).
	Pattern string
	// RatePerMille is the offered load per port in words per 1000 cycles
	// (1000 = one word per cycle, the line rate; default 800).
	RatePerMille int
	// SliceCycles is the daemon's slice length; the feeder needs it to
	// convert the rate into per-slice packet budgets.
	SliceCycles int64
}

// SyntheticFeeder is a deterministic open-loop packet source: the
// arrivals for slice s are a pure function of (config, s) — no state
// carries across slices — so a daemon restored from a checkpoint taken
// at a slice boundary sees exactly the arrival stream the uninterrupted
// run would have seen.
type SyntheticFeeder struct {
	cfg      SyntheticConfig
	wordsPkt int64
	perm     []int
}

// NewSyntheticFeeder validates the config and builds the feeder.
func NewSyntheticFeeder(cfg SyntheticConfig) (*SyntheticFeeder, error) {
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 1024
	}
	if cfg.SizeBytes < ip.HeaderBytes {
		return nil, fmt.Errorf("serve: packet size %dB below the %dB header", cfg.SizeBytes, ip.HeaderBytes)
	}
	if cfg.RatePerMille == 0 {
		cfg.RatePerMille = 800
	}
	if cfg.RatePerMille < 0 {
		return nil, fmt.Errorf("serve: negative feed rate %d", cfg.RatePerMille)
	}
	if cfg.SliceCycles <= 0 {
		return nil, fmt.Errorf("serve: synthetic feeder needs a positive slice length")
	}
	f := &SyntheticFeeder{cfg: cfg}
	probe := ip.NewPacket(0, 0, 64, cfg.SizeBytes, 0)
	f.wordsPkt = int64(probe.LenWords())
	switch cfg.Pattern {
	case "", "uniform", "hotspot":
	case "permutation":
		f.perm = traffic.RotatedPerm(4, 1)
	default:
		return nil, fmt.Errorf("serve: unknown feed pattern %q (uniform, permutation, hotspot)", cfg.Pattern)
	}
	return f, nil
}

// pktsThrough returns how many whole packets per port the offered rate
// has accumulated by the END of slice s (integer fixed-point, so the
// per-slice count is exact over any horizon with no drift).
func (f *SyntheticFeeder) pktsThrough(s int64) int64 {
	words := (s + 1) * f.cfg.SliceCycles * int64(f.cfg.RatePerMille) / 1000
	return words / f.wordsPkt
}

// Slice returns the arrivals for slice s.
func (f *SyntheticFeeder) Slice(s int64) [4][]ip.Packet {
	var out [4][]ip.Packet
	base := int64(0)
	if s > 0 {
		base = f.pktsThrough(s - 1)
	}
	n := f.pktsThrough(s) - base
	for p := 0; p < 4; p++ {
		if n == 0 {
			continue
		}
		rng := traffic.NewRNG(mix64(f.cfg.Seed ^ uint64(s)*0x9e3779b97f4a7c15 ^ uint64(p) + 1))
		pkts := make([]ip.Packet, 0, n)
		for i := int64(0); i < n; i++ {
			dst := 0
			switch f.cfg.Pattern {
			case "", "uniform":
				dst = rng.Intn(4)
			case "permutation":
				dst = f.perm[p]
			case "hotspot":
				if rng.Float64() >= 0.7 {
					dst = rng.Intn(4)
				}
			}
			salt := uint32(rng.Uint64())
			id := uint16(base + i)
			pkts = append(pkts, ip.NewPacket(
				traffic.PortAddr(p, salt),
				traffic.PortAddr(dst, salt*2654435761+1),
				64, f.cfg.SizeBytes, id))
		}
		out[p] = pkts
	}
	return out
}

// Close is a no-op for the in-process feeder.
func (f *SyntheticFeeder) Close() error { return nil }

// UDPFeeder is the live-socket shim: one datagram is one packet. The
// first payload byte selects the ingress port (low two bits) and the
// second the destination port (low two bits; missing bytes default to
// 0); the datagram length, clamped to [header, 1500] bytes, becomes the
// packet size. A reader goroutine batches datagrams into a pending
// queue the slice loop drains at slice boundaries, so socket timing
// never touches simulator state mid-slice. A UDP-fed run is not
// deterministic (arrival slices depend on wall-clock interleaving) —
// use the synthetic feeder for runs that must replay.
type UDPFeeder struct {
	conn *net.UDPConn

	mu      sync.Mutex
	pending [4][]ip.Packet

	id uint16
}

// NewUDPFeeder binds addr ("host:port") and starts the reader.
func NewUDPFeeder(addr string) (*UDPFeeder, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: udp feed: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("serve: udp feed: %w", err)
	}
	f := &UDPFeeder{conn: conn}
	go f.reader()
	return f, nil
}

// Addr returns the bound socket address (useful with port 0).
func (f *UDPFeeder) Addr() net.Addr { return f.conn.LocalAddr() }

func (f *UDPFeeder) reader() {
	buf := make([]byte, 2048)
	for {
		n, _, err := f.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		port, dst := 0, 0
		if n >= 1 {
			port = int(buf[0] & 3)
		}
		if n >= 2 {
			dst = int(buf[1] & 3)
		}
		size := n
		if size < ip.HeaderBytes {
			size = ip.HeaderBytes
		}
		if size > 1500 {
			size = 1500
		}
		f.mu.Lock()
		f.id++
		pkt := ip.NewPacket(
			traffic.PortAddr(port, uint32(f.id)),
			traffic.PortAddr(dst, uint32(f.id)*2654435761+1),
			64, size, f.id)
		f.pending[port] = append(f.pending[port], pkt)
		f.mu.Unlock()
	}
}

// Slice hands over every datagram that arrived since the previous call.
func (f *UDPFeeder) Slice(s int64) [4][]ip.Packet {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out [4][]ip.Packet
	for p := range f.pending {
		out[p] = f.pending[p]
		f.pending[p] = nil
	}
	return out
}

// Close shuts the socket down and stops the reader.
func (f *UDPFeeder) Close() error { return f.conn.Close() }

// PortIngest is the admission ledger of one edge port. Every word the
// feeder offers is accounted to exactly one of: admitted to the input
// pins, still queued, shed by overload, or discarded by a drain — the
// identity Offered == Admitted + Queued + Shed + DrainDiscarded holds at
// every slice boundary and is asserted by the conservation SLO gate.
type PortIngest struct {
	OfferedPkts, OfferedWords   int64
	AdmittedPkts, AdmittedWords int64
	ShedPkts, ShedWords         int64
	DrainDiscardedPkts          int64
	DrainDiscardedWords         int64
	QueuedPkts, QueuedWords     int64
}

// admission is the serve-side bridge between a Feeder and the router's
// input pins: a bounded per-port packet queue with overload shedding.
// Arrivals beyond the queue bound are dropped and counted — never
// blocked — so a misbehaving source cannot stall the cycle loop.
type admission struct {
	queues    [4][]ip.Packet
	capPkts   int
	highWords int
	ledger    [4]PortIngest
}

func newAdmission(queuePkts, highWords int) *admission {
	return &admission{capPkts: queuePkts, highWords: highWords}
}

// offer admits one slice of arrivals into the queues. clamped halves the
// effective queue bound — the graceful-degradation response to a
// drop-rate SLO violation: shed earlier, keep queues (and therefore
// admission latency) short while the fabric is struggling.
func (a *admission) offer(arrivals [4][]ip.Packet, clamped bool) {
	cap := a.capPkts
	if clamped {
		if cap /= 2; cap < 1 {
			cap = 1
		}
	}
	for p := range arrivals {
		led := &a.ledger[p]
		for i := range arrivals[p] {
			pkt := &arrivals[p][i]
			w := int64(pkt.LenWords())
			led.OfferedPkts++
			led.OfferedWords += w
			if len(a.queues[p]) >= cap {
				led.ShedPkts++
				led.ShedWords += w
				continue
			}
			a.queues[p] = append(a.queues[p], *pkt)
			led.QueuedPkts++
			led.QueuedWords += w
		}
	}
}

// pump moves queued packets onto the input pins while the pin backlog is
// below the high-water mark. offerPkt is the router's OfferPacket bound
// to a port; backlog its current pin occupancy in words. A dead or
// wedged port stops consuming its backlog, so the high-water check is
// also the natural backpressure that stops pumping into a black hole.
func (a *admission) pump(backlog func(p int) int, offerPkt func(p int, pkt *ip.Packet)) {
	for p := range a.queues {
		led := &a.ledger[p]
		for len(a.queues[p]) > 0 {
			pkt := &a.queues[p][0]
			w := pkt.LenWords()
			if backlog(p)+w > a.highWords {
				break
			}
			offerPkt(p, pkt)
			led.AdmittedPkts++
			led.AdmittedWords += int64(w)
			led.QueuedPkts--
			led.QueuedWords -= int64(w)
			a.queues[p] = a.queues[p][1:]
		}
	}
}

// discardQueues empties every queue into the drain-discarded column —
// the end of a drain whose budget expired with packets still queued.
func (a *admission) discardQueues() {
	for p := range a.queues {
		led := &a.ledger[p]
		for i := range a.queues[p] {
			w := int64(a.queues[p][i].LenWords())
			led.DrainDiscardedPkts++
			led.DrainDiscardedWords += w
			led.QueuedPkts--
			led.QueuedWords -= w
		}
		a.queues[p] = nil
	}
}

// queuedWords returns the words currently queued on port p.
func (a *admission) queuedWords(p int) int64 { return a.ledger[p].QueuedWords }

// balanced reports whether the admission ledger identity holds on every
// port.
func (a *admission) balanced() bool {
	for p := range a.ledger {
		l := &a.ledger[p]
		if l.OfferedWords != l.AdmittedWords+l.QueuedWords+l.ShedWords+l.DrainDiscardedWords {
			return false
		}
		if l.QueuedWords < 0 || l.QueuedPkts < 0 {
			return false
		}
	}
	return true
}
