// Package serve runs the cycle-level router as a long-lived service: an
// open-loop ingest bridge admitting externally arriving packets onto the
// edge-port word streams, an HTTP control plane (/metrics, /healthz,
// /readyz, /drain), an SLO guardrail loop sampling telemetry against
// declarative gates, and a continuous chaos soak mode with supervised
// restart-from-checkpoint.
//
// The daemon keeps the simulation's determinism discipline: everything
// that touches simulator state runs on one goroutine (the slice loop);
// HTTP handlers communicate through a control channel serviced between
// slices plus an atomically published immutable Status. With the
// deterministic synthetic feeder, a serve run is a pure function of its
// configuration — it can be checkpointed mid-flight and restored
// bit-for-bit, which is what makes /drain a live-migration primitive.
package serve

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/ip"
	"repro/internal/traffic"
)

// Feeder produces the packets arriving at the router's four edge ports
// during one slice of the daemon's time base (Config.SliceCycles cycles).
// Deterministic feeders must be pure functions of the slice index so a
// restored daemon resumes the identical arrival stream.
type Feeder interface {
	// Slice returns the arrivals for slice s, per edge port.
	Slice(s int64) [4][]ip.Packet
	// Close releases any external resources (sockets).
	Close() error
}

// WorkloadFeeder bridges a traffic.Workload's open-loop arrival process
// onto the daemon's slice time base. All purity lives in
// internal/traffic: Process.Slice(k) is a pure function of (Spec, k), so
// a daemon restored from a checkpoint taken at a slice boundary sees
// exactly the arrival stream the uninterrupted run would have seen —
// including heavy-tailed flow mixes, diurnal curves, and recorded TRAF1
// traces.
type WorkloadFeeder struct {
	proc traffic.Process
}

// NewWorkloadFeeder compiles the workload's open-loop process on the
// daemon's slice length. The daemon routes four edge ports, so the spec
// must span exactly four.
func NewWorkloadFeeder(w *traffic.Workload, sliceCycles int64) (*WorkloadFeeder, error) {
	if sliceCycles <= 0 {
		return nil, fmt.Errorf("serve: workload feeder needs a positive slice length")
	}
	proc, err := w.OpenLoop(sliceCycles)
	if err != nil {
		return nil, err
	}
	if proc.Ports() != 4 {
		return nil, fmt.Errorf("serve: workload spans %d ports; the daemon routes 4", proc.Ports())
	}
	return &WorkloadFeeder{proc: proc}, nil
}

// Slice returns the arrivals for slice s, bucketed per edge port.
func (f *WorkloadFeeder) Slice(s int64) [4][]ip.Packet {
	var out [4][]ip.Packet
	for _, a := range f.proc.Slice(s) {
		id := uint16(a.Flow*0x9e37 + uint64(a.Seq))
		out[a.Port] = append(out[a.Port],
			ip.NewPacket(a.Pkt.SrcIP, a.Pkt.DstIP, 64, a.Pkt.SizeBytes, id))
	}
	return out
}

// Close is a no-op for the in-process feeder.
func (f *WorkloadFeeder) Close() error { return nil }

// SyntheticConfig parameterizes the deterministic in-process feeder.
//
// Deprecated: describe the workload with a traffic.Spec and use
// NewWorkloadFeeder; this config maps onto one.
type SyntheticConfig struct {
	// Seed drives every random draw (destinations, address salts).
	Seed uint64
	// SizeBytes is the on-wire packet size (default 1024, the paper's
	// steady-state size).
	SizeBytes int
	// Pattern is "uniform", "permutation", or "hotspot" (§7.2-§7.4).
	Pattern string
	// RatePerMille is the offered load per port in words per 1000 cycles
	// (1000 = one word per cycle, the line rate; default 800).
	RatePerMille int
	// SliceCycles is the daemon's slice length; the feeder needs it to
	// convert the rate into per-slice packet budgets.
	SliceCycles int64
}

// Spec translates the legacy config into the declarative workload spec
// it is equivalent to.
func (cfg SyntheticConfig) Spec() traffic.Spec {
	s := traffic.Spec{
		Pattern: cfg.Pattern,
		Ports:   4,
		Size:    cfg.SizeBytes,
		Seed:    cfg.Seed,
		Rate:    float64(cfg.RatePerMille) / 1000,
	}
	switch cfg.Pattern {
	case "":
		s.Pattern = "uniform"
	case "permutation":
		// The daemon's historical permutation is the offset-1 rotation.
		s.Params = map[string]float64{"offset": 1}
	}
	return s
}

// SyntheticFeeder is the legacy deterministic feeder, now a thin shim
// over WorkloadFeeder: the config compiles to a traffic.Spec and the
// arrivals come from the workload's rate-paced open-loop process.
//
// Deprecated: use NewWorkloadFeeder with a traffic.Spec.
type SyntheticFeeder struct {
	WorkloadFeeder
}

// NewSyntheticFeeder validates the config and builds the feeder.
//
// Deprecated: use NewWorkloadFeeder with a traffic.Spec.
func NewSyntheticFeeder(cfg SyntheticConfig) (*SyntheticFeeder, error) {
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 1024
	}
	if cfg.SizeBytes < ip.HeaderBytes {
		return nil, fmt.Errorf("serve: packet size %dB below the %dB header", cfg.SizeBytes, ip.HeaderBytes)
	}
	if cfg.RatePerMille == 0 {
		cfg.RatePerMille = 800
	}
	if cfg.RatePerMille < 0 {
		return nil, fmt.Errorf("serve: negative feed rate %d", cfg.RatePerMille)
	}
	if cfg.SliceCycles <= 0 {
		return nil, fmt.Errorf("serve: synthetic feeder needs a positive slice length")
	}
	w, err := traffic.Build(cfg.Spec())
	if err != nil {
		return nil, fmt.Errorf("serve: feed config: %w", err)
	}
	wf, err := NewWorkloadFeeder(w, cfg.SliceCycles)
	if err != nil {
		return nil, err
	}
	return &SyntheticFeeder{WorkloadFeeder: *wf}, nil
}

// UDPFeeder is the live-socket shim: one datagram is one packet. The
// first payload byte selects the ingress port (low two bits) and the
// second the destination port (low two bits; missing bytes default to
// 0); the datagram length, clamped to [header, 1500] bytes, becomes the
// packet size. A reader goroutine batches datagrams into a pending
// queue the slice loop drains at slice boundaries, so socket timing
// never touches simulator state mid-slice. A UDP-fed run is not
// deterministic (arrival slices depend on wall-clock interleaving) —
// use the synthetic feeder for runs that must replay.
type UDPFeeder struct {
	conn *net.UDPConn

	mu      sync.Mutex
	pending [4][]ip.Packet

	id uint16
}

// NewUDPFeeder binds addr ("host:port") and starts the reader.
func NewUDPFeeder(addr string) (*UDPFeeder, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: udp feed: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("serve: udp feed: %w", err)
	}
	f := &UDPFeeder{conn: conn}
	go f.reader()
	return f, nil
}

// Addr returns the bound socket address (useful with port 0).
func (f *UDPFeeder) Addr() net.Addr { return f.conn.LocalAddr() }

func (f *UDPFeeder) reader() {
	buf := make([]byte, 2048)
	for {
		n, _, err := f.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		port, dst := 0, 0
		if n >= 1 {
			port = int(buf[0] & 3)
		}
		if n >= 2 {
			dst = int(buf[1] & 3)
		}
		size := n
		if size < ip.HeaderBytes {
			size = ip.HeaderBytes
		}
		if size > 1500 {
			size = 1500
		}
		f.mu.Lock()
		f.id++
		pkt := ip.NewPacket(
			traffic.PortAddr(port, uint32(f.id)),
			traffic.PortAddr(dst, uint32(f.id)*2654435761+1),
			64, size, f.id)
		f.pending[port] = append(f.pending[port], pkt)
		f.mu.Unlock()
	}
}

// Slice hands over every datagram that arrived since the previous call.
func (f *UDPFeeder) Slice(s int64) [4][]ip.Packet {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out [4][]ip.Packet
	for p := range f.pending {
		out[p] = f.pending[p]
		f.pending[p] = nil
	}
	return out
}

// Close shuts the socket down and stops the reader.
func (f *UDPFeeder) Close() error { return f.conn.Close() }

// PortIngest is the admission ledger of one edge port. Every word the
// feeder offers is accounted to exactly one of: admitted to the input
// pins, still queued, shed by overload, or discarded by a drain — the
// identity Offered == Admitted + Queued + Shed + DrainDiscarded holds at
// every slice boundary and is asserted by the conservation SLO gate.
type PortIngest struct {
	OfferedPkts, OfferedWords   int64
	AdmittedPkts, AdmittedWords int64
	ShedPkts, ShedWords         int64
	DrainDiscardedPkts          int64
	DrainDiscardedWords         int64
	QueuedPkts, QueuedWords     int64
}

// admission is the serve-side bridge between a Feeder and the router's
// input pins: a bounded per-port packet queue with overload shedding.
// Arrivals beyond the queue bound are dropped and counted — never
// blocked — so a misbehaving source cannot stall the cycle loop.
type admission struct {
	queues    [4][]ip.Packet
	capPkts   int
	highWords int
	ledger    [4]PortIngest
}

func newAdmission(queuePkts, highWords int) *admission {
	return &admission{capPkts: queuePkts, highWords: highWords}
}

// offer admits one slice of arrivals into the queues. clamped halves the
// effective queue bound — the graceful-degradation response to a
// drop-rate SLO violation: shed earlier, keep queues (and therefore
// admission latency) short while the fabric is struggling.
func (a *admission) offer(arrivals [4][]ip.Packet, clamped bool) {
	cap := a.capPkts
	if clamped {
		if cap /= 2; cap < 1 {
			cap = 1
		}
	}
	for p := range arrivals {
		led := &a.ledger[p]
		for i := range arrivals[p] {
			pkt := &arrivals[p][i]
			w := int64(pkt.LenWords())
			led.OfferedPkts++
			led.OfferedWords += w
			if len(a.queues[p]) >= cap {
				led.ShedPkts++
				led.ShedWords += w
				continue
			}
			a.queues[p] = append(a.queues[p], *pkt)
			led.QueuedPkts++
			led.QueuedWords += w
		}
	}
}

// pump moves queued packets onto the input pins while the pin backlog is
// below the high-water mark. offerPkt is the router's OfferPacket bound
// to a port; backlog its current pin occupancy in words. A dead or
// wedged port stops consuming its backlog, so the high-water check is
// also the natural backpressure that stops pumping into a black hole.
func (a *admission) pump(backlog func(p int) int, offerPkt func(p int, pkt *ip.Packet)) {
	for p := range a.queues {
		led := &a.ledger[p]
		for len(a.queues[p]) > 0 {
			pkt := &a.queues[p][0]
			w := pkt.LenWords()
			if backlog(p)+w > a.highWords {
				break
			}
			offerPkt(p, pkt)
			led.AdmittedPkts++
			led.AdmittedWords += int64(w)
			led.QueuedPkts--
			led.QueuedWords -= int64(w)
			a.queues[p] = a.queues[p][1:]
		}
	}
}

// discardQueues empties every queue into the drain-discarded column —
// the end of a drain whose budget expired with packets still queued.
func (a *admission) discardQueues() {
	for p := range a.queues {
		led := &a.ledger[p]
		for i := range a.queues[p] {
			w := int64(a.queues[p][i].LenWords())
			led.DrainDiscardedPkts++
			led.DrainDiscardedWords += w
			led.QueuedPkts--
			led.QueuedWords -= w
		}
		a.queues[p] = nil
	}
}

// queuedWords returns the words currently queued on port p.
func (a *admission) queuedWords(p int) int64 { return a.ledger[p].QueuedWords }

// balanced reports whether the admission ledger identity holds on every
// port.
func (a *admission) balanced() bool {
	for p := range a.ledger {
		l := &a.ledger[p]
		if l.OfferedWords != l.AdmittedWords+l.QueuedWords+l.ShedWords+l.DrainDiscardedWords {
			return false
		}
		if l.QueuedWords < 0 || l.QueuedPkts < 0 {
			return false
		}
	}
	return true
}
