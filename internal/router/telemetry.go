package router

import (
	"repro/internal/raw"
	"repro/internal/telemetry"
)

// Telemetry-plane wiring. The collector (cfg.Metrics) is fed entirely
// from the router's step hook (Router.Tick) on the simulation's main
// goroutine: the report-port crossbar captures each quantum's scheduler
// decision at the boundary (xbarFW.captureQuantum), and sampleTelemetry
// hands it to the collector together with cumulative drop and
// blocked-cycle counters. Everything the collector sees is bit-for-bit
// identical at any worker count, so exports are too.
//
// Sampling is quantum-granular by construction: the boundary commits
// inside a crossbar processor op, so the fast engine can never cover a
// boundary cycle with a macro window (the tile is busy that cycle), and
// the hook's counter comparison observes every boundary at the exact
// cycle it commits — on either engine, at any worker count.

// tileRoles orders one port's tiles for snapshot role labels.
var tileRoles = [4]string{"ingress", "lookup", "xbar", "egress"}

// portTiles returns port p's tile numbers in tileRoles order.
func portTiles(p int) [4]int {
	pt := Layout[p]
	return [4]int{pt.Ingress, pt.Lookup, pt.Crossbar, pt.Egress}
}

// sampleTelemetry runs once per cycle from the hook when cfg.Metrics is
// armed. The cheap path — no quantum boundary since the last call — is
// one counter comparison; the sample itself is amortized once per
// quantum (hundreds of cycles).
func (r *Router) sampleTelemetry(cycle int64) {
	x := r.xbars[r.reportPort]
	q := x.quantum
	if q == r.lastSampledQ {
		return
	}
	r.lastSampledQ = q

	var s telemetry.QuantumSample
	s.Quantum = q
	s.Cycle = cycle
	s.Token = x.lastToken
	s.ReqMask = x.lastReq
	s.GrantMask = x.lastGrant
	s.FragWords = x.lastWords
	for p := 0; p < 4; p++ {
		// Drops charged to the port so far: validation failures plus
		// robustness aborts. The collector turns these into per-quantum
		// deltas for the flight recorder.
		s.Dropped[p] = r.stats.Dropped[p] + r.stats.AbortDropped[p]
	}
	for t := 0; t < telemetry.NumTiles; t++ {
		sc := r.Chip.Tile(t).Exec().StateCounts()
		s.TileBlocked[t] = sc[raw.StateStallSend] + sc[raw.StateStallRecv] + sc[raw.StateStallCache]
	}
	r.cfg.Metrics.RecordQuantum(s)
}

// TelemetrySnapshot assembles the unified telemetry snapshot: the
// router's counters and per-tile activity plus the collector's quantum
// plane. With cfg.Metrics nil it still returns a counters-only snapshot
// (empty rings, zero histograms), so every exporter works with the plane
// disabled.
func (r *Router) TelemetrySnapshot() telemetry.Snapshot {
	var m telemetry.Meta
	m.Cycle = r.Chip.Cycle()
	m.ClockHz = r.cfg.ClockHz
	m.DeadPort = r.deadPort
	m.ProbationPort = r.probationPort
	m.Failed = r.failed
	m.FabricLost = r.stats.FabricLost
	// Engine observability (schema v3): the fast engine's macro-step
	// engagement and the per-cause disarm histogram, in raw.MacroCauses
	// order for a stable export series. Zero under the reference engine;
	// cross-engine equivalence comparisons normalize these out.
	m.MacroWindows, m.MacroCycles = r.Chip.MacroStats()
	disarms := r.Chip.MacroDisarms()
	m.MacroDisarms = make([]telemetry.MacroDisarm, 0, len(disarms))
	for _, cause := range raw.MacroCauses() {
		m.MacroDisarms = append(m.MacroDisarms, telemetry.MacroDisarm{
			Cause: cause.String(), Count: disarms[cause],
		})
	}
	st := &r.stats
	for p := 0; p < 4; p++ {
		m.Ports[p] = telemetry.PortCounters{
			Accepted: st.Accepted[p], Dropped: st.Dropped[p], Denied: st.Denied[p],
			FragsSent: st.FragsSent[p], PktsIn: st.PktsIn[p], PktsOut: st.PktsOut[p],
			Reassembled: st.Reassembled[p], Lookups: st.Lookups[p],
			McastIn: st.McastIn[p], McastCopies: st.McastCopies[p],
			AbortDropped: st.AbortDropped[p], Underruns: st.Underruns[p],
			Reprobes: st.Reprobes[p], Recovered: st.Recovered[p], FlapDrops: st.FlapDrops[p],
			WordsIn: r.ins[p].Consumed(), WordsOut: r.outs[p].Count(),
		}
		tiles := portTiles(p)
		for i, tile := range tiles {
			sc := r.Chip.Tile(tile).Exec().StateCounts()
			m.Tiles[tile] = telemetry.TileMeta{
				Tile: tile, Role: tileRoles[i],
				Run:     sc[raw.StateRun],
				Blocked: sc[raw.StateStallSend] + sc[raw.StateStallRecv] + sc[raw.StateStallCache],
				Idle:    sc[raw.StateIdle],
			}
		}
	}
	return r.cfg.Metrics.Snapshot(m)
}
