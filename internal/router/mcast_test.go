package router_test

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/traffic"
)

func mcastConfig() router.Config {
	cfg := router.DefaultConfig()
	cfg.Multicast = true
	cfg.Groups = map[ip.Addr]uint8{
		ip.AddrFrom(224, 1, 1, 1): 0b1110, // ports 1,2,3
		ip.AddrFrom(224, 2, 2, 2): 0b0110, // ports 1,2
	}
	return cfg
}

// TestMcastCycleLevel (§8.6 end to end): one multicast packet enters port
// 0 and a full copy leaves every member egress, all from a single
// fanout-split stream when outputs are free.
func TestMcastCycleLevel(t *testing.T) {
	r := mustNew(t, mcastConfig())
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), ip.AddrFrom(224, 1, 1, 1), 64, 256, 42)
	r.OfferPacket(0, &pkt)
	ok := r.Chip.RunUntil(func() bool {
		return r.Stats().PktsOut[1] >= 1 && r.Stats().PktsOut[2] >= 1 && r.Stats().PktsOut[3] >= 1
	}, 30000)
	if !ok {
		t.Fatalf("multicast copies missing; stats %+v", r.Stats())
	}
	for _, port := range []int{1, 2, 3} {
		out, err := r.DrainOutput(port)
		if err != nil || len(out) != 1 {
			t.Fatalf("port %d: out=%d err=%v", port, len(out), err)
		}
		got := out[0]
		if got.Header.Dst != ip.AddrFrom(224, 1, 1, 1) {
			t.Fatalf("port %d: wrong group %v", port, got.Header.Dst)
		}
		if got.Header.TTL != 63 {
			t.Fatalf("port %d: TTL %d", port, got.Header.TTL)
		}
		for i := range pkt.Payload {
			if got.Payload[i] != pkt.Payload[i] {
				t.Fatalf("port %d: payload word %d corrupted", port, i)
			}
		}
	}
	if r.Stats().McastIn[0] != 1 || r.Stats().McastCopies[0] != 3 {
		t.Fatalf("mcast stats: in=%d copies=%d", r.Stats().McastIn[0], r.Stats().McastCopies[0])
	}
	if out0, _ := r.DrainOutput(0); len(out0) != 0 {
		t.Fatal("non-member port 0 received a copy")
	}
}

// TestMcastPartialReplay: with a member's egress contended by unicast
// traffic, the multicast packet is served across multiple quanta by
// replaying the buffered payload, and every member still gets exactly
// one intact copy.
func TestMcastPartialReplay(t *testing.T) {
	r := mustNew(t, mcastConfig())
	// Unicast competition: port 1 floods egress 2 (a member of the group).
	id := uint16(0)
	for i := 0; i < 8; i++ {
		id++
		u := ip.NewPacket(traffic.PortAddr(1, uint32(id)), traffic.PortAddr(2, uint32(id)), 64, 1024, id)
		r.OfferPacket(1, &u)
	}
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), ip.AddrFrom(224, 2, 2, 2), 64, 512, 99)
	r.OfferPacket(0, &pkt)
	ok := r.Chip.RunUntil(func() bool {
		return r.Stats().McastIn[0] >= 1 && r.Stats().PktsOut[2] >= 9
	}, 100000)
	if !ok {
		t.Fatalf("mixed traffic incomplete; stats %+v", r.Stats())
	}
	out1, err := r.DrainOutput(1)
	if err != nil || len(out1) != 1 {
		t.Fatalf("port 1: out=%d err=%v", len(out1), err)
	}
	out2, err := r.DrainOutput(2)
	if err != nil {
		t.Fatal(err)
	}
	mcastCopies := 0
	for _, p := range out2 {
		if p.Header.Dst == ip.AddrFrom(224, 2, 2, 2) {
			mcastCopies++
			for i := range pkt.Payload {
				if p.Payload[i] != pkt.Payload[i] {
					t.Fatalf("replayed copy corrupted at word %d", i)
				}
			}
		}
	}
	if mcastCopies != 1 {
		t.Fatalf("port 2 received %d multicast copies, want exactly 1", mcastCopies)
	}
}

// TestMcastUnknownGroupDropped: an unknown group is dropped cleanly.
func TestMcastUnknownGroupDropped(t *testing.T) {
	r := mustNew(t, mcastConfig())
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), ip.AddrFrom(224, 9, 9, 9), 64, 128, 1)
	r.OfferPacket(0, &pkt)
	good := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 2), 64, 128, 2)
	r.OfferPacket(0, &good)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= 1 }, 40000) {
		t.Fatalf("good packet stuck; stats %+v", r.Stats())
	}
	if r.Stats().Dropped[0] != 1 {
		t.Fatalf("dropped %d, want 1", r.Stats().Dropped[0])
	}
}

// TestMcastMixedSaturation: sustained mixed unicast+multicast load keeps
// every invariant (packet conservation, valid checksums) and produces
// more egress copies than ingress packets.
func TestMcastMixedSaturation(t *testing.T) {
	r := mustNew(t, mcastConfig())
	rng := traffic.NewRNG(77)
	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		if rng.Float64() < 0.25 {
			return ip.NewPacket(traffic.PortAddr(p, uint32(id)), ip.AddrFrom(224, 1, 1, 1), 64, 256, id)
		}
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, 256, id)
	}
	for c := 0; c < 60000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	var in, out, copies int64
	for p := 0; p < 4; p++ {
		in += r.Stats().PktsIn[p]
		out += r.Stats().PktsOut[p]
		copies += r.Stats().McastCopies[p]
		if _, err := r.DrainOutput(p); err != nil {
			t.Fatalf("output %d corrupt: %v", p, err)
		}
	}
	if in < 100 {
		t.Fatalf("only %d packets in", in)
	}
	if out <= in {
		t.Fatalf("multicast amplification missing: %d in, %d out", in, out)
	}
	if copies == 0 {
		t.Fatal("no multicast copies recorded")
	}
}
