package router

import (
	"repro/internal/raw"
	"repro/internal/rotor"
)

// Local header word (ingress → crossbar, rotated to all crossbar tiles).
// The §5.2 "packet headers ... contain output port numbers prepared by the
// Ingress Processors after route lookup", extended with the fragment
// length (so every crossbar processor can compute the quantum's streaming
// length L) and flags:
//
//	bits  [3:0]  dest+1 (0 = empty input)
//	bit   [4]    last fragment of its packet
//	bits  [17:8] fragment length in words (1..1023)
//	bits  [20:18] priority (QoS extension, §8.7)
//	bit   [21]   compute-in-fabric request (§8.3)
const (
	lhDestMask   = 0xf
	lhLastBit    = 1 << 4
	lhLenShift   = 8
	lhLenMask    = 0x3ff
	lhPrioShift  = 18
	lhCryptoBit  = 1 << 21
	lhMcastBit   = 1 << 22
	lhFirstBit   = 1 << 23
	lhMaskShift  = 24
	lhMemberMask = 0xf
)

// LocalHdr builds a local header word.
func LocalHdr(dst, fragLen int, last bool) raw.Word {
	w := raw.Word(dst+1) | raw.Word(fragLen&lhLenMask)<<lhLenShift
	if last {
		w |= lhLastBit
	}
	return w
}

// LocalHdrEmpty is the empty-input header.
const LocalHdrEmpty raw.Word = 0

// LocalHdrCrypto marks the fragment for in-fabric encryption (§8.3).
func LocalHdrCrypto(w raw.Word) raw.Word { return w | lhCryptoBit }

// LocalHdrPrio sets the 3-bit priority class (§8.7); the crossbar's
// arbitration walk serves higher classes first.
func LocalHdrPrio(w raw.Word, prio uint8) raw.Word {
	return w | raw.Word(prio&0x7)<<lhPrioShift
}

// LocalHdrPrioOf extracts the priority class.
func LocalHdrPrioOf(w raw.Word) uint8 { return uint8(w >> lhPrioShift & 0x7) }

// LocalHdrFirst marks the fragment as its packet's first; the crossbar
// relays the mark to the egress, which uses it to discard stale
// reassembly state left by an aborted packet from the same source.
func LocalHdrFirst(w raw.Word) raw.Word { return w | lhFirstBit }

// LocalHdrFirstOf reports the first-fragment mark.
func LocalHdrFirstOf(w raw.Word) bool { return w&lhFirstBit != 0 }

// DecodeLocalHdr splits a local header word.
func DecodeLocalHdr(w raw.Word) (dst int, fragLen int, last bool, crypto bool) {
	return int(w&lhDestMask) - 1,
		int(w >> lhLenShift & lhLenMask),
		w&lhLastBit != 0,
		w&lhCryptoBit != 0
}

// RotorHdr converts a local header to the allocator's view.
func RotorHdr(w raw.Word) rotor.Hdr {
	return rotor.Hdr(w & lhDestMask)
}

// LocalHdrMcast builds a multicast header (§8.6): the fragment goes to
// every member of the mask in one fanout-split stream.
func LocalHdrMcast(members rotor.McastReq, fragLen int, last bool) raw.Word {
	w := lhMcastBit | raw.Word(members&lhMemberMask)<<lhMaskShift |
		raw.Word(fragLen&lhLenMask)<<lhLenShift
	if last {
		w |= lhLastBit
	}
	return w
}

// McastReqOf converts a local header to the mixed allocator's request: a
// member mask for multicast headers, a singleton for unicast, zero for
// empty.
func McastReqOf(w raw.Word) rotor.McastReq {
	if w&lhMcastBit != 0 {
		return rotor.McastReq(w >> lhMaskShift & lhMemberMask)
	}
	d := int(w&lhDestMask) - 1
	if d < 0 {
		return 0
	}
	return rotor.McastTo(d)
}

// Grant word (crossbar → ingress):
//
//	bit  [0]     granted
//	bits [17:8]  L, the quantum streaming length in words
//	bits [23:20] served member mask (multicast)
const (
	grGrantBit   = 1 << 0
	grLenShift   = 8
	grLenMask    = 0x3ff
	grMaskShift  = 20
	grMemberMask = 0xf
)

// GrantWord builds a grant word.
func GrantWord(granted bool, l int) raw.Word {
	w := raw.Word(l&grLenMask) << grLenShift
	if granted {
		w |= grGrantBit
	}
	return w
}

// GrantWordMcast builds a grant word carrying the served member mask.
func GrantWordMcast(served rotor.McastReq, l int) raw.Word {
	w := GrantWord(served != 0, l)
	return w | raw.Word(served&grMemberMask)<<grMaskShift
}

// DecodeGrant splits a grant word.
func DecodeGrant(w raw.Word) (granted bool, l int) {
	return w&grGrantBit != 0, int(w >> grLenShift & grLenMask)
}

// GrantServed extracts the served member mask of a multicast grant.
func GrantServed(w raw.Word) rotor.McastReq {
	return rotor.McastReq(w >> grMaskShift & grMemberMask)
}

// Egress header word (crossbar → egress, ahead of the body):
//
//	bits [3:0]   source port+1
//	bit  [4]     last fragment
//	bit  [5]     first fragment
//	bits [17:8]  fragment length (payload words that matter)
//	bits [27:18] L (total words streamed, fragLen + padding)
const (
	ehSrcMask  = 0xf
	ehLastBit  = 1 << 4
	ehFirstBit = 1 << 5
	ehLenShift = 8
	ehLenMask  = 0x3ff
	ehLShift   = 18
	ehLMask    = 0x3ff
)

// EgressHdr builds an egress header word.
func EgressHdr(src, fragLen, l int, last bool) raw.Word {
	w := raw.Word(src+1) | raw.Word(fragLen&ehLenMask)<<ehLenShift |
		raw.Word(l&ehLMask)<<ehLShift
	if last {
		w |= ehLastBit
	}
	return w
}

// EgressHdrFirst marks an egress header's fragment as its packet's first.
func EgressHdrFirst(w raw.Word) raw.Word { return w | ehFirstBit }

// EgressHdrFirstOf reports the first-fragment mark.
func EgressHdrFirstOf(w raw.Word) bool { return w&ehFirstBit != 0 }

// DecodeEgressHdr splits an egress header word.
func DecodeEgressHdr(w raw.Word) (src, fragLen, l int, last bool) {
	return int(w&ehSrcMask) - 1,
		int(w >> ehLenShift & ehLenMask),
		int(w >> ehLShift & ehLMask),
		w&ehLastBit != 0
}
