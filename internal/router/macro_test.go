package router_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"testing"

	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Router-level macro-engagement equivalence. The fault-layer suites pin
// the two engines against each other across chaos and soak schedules;
// these tests pin the headline claim of the compiled firmware plane:
// macro windows ENGAGE on the full router under load (windows > 0, not
// merely "fast didn't diverge while falling back to per-cycle"), and
// with them engaged every simulation-visible output — counters, event
// log, telemetry exports, delivered payload bytes — is bit-identical to
// the reference interpreter at any worker count.

// macroRun is one engine's observation of the shared load schedule.
type macroRun struct {
	stats   router.StatsSnapshot // macro fields zeroed (host-engine observability)
	events  string
	exports map[string][]byte // normalized telemetry exports by format
	digest  [32]byte          // delivered packets: port, id, payload words
	windows int64
	cycles  int64
}

// normalizeStats strips the host-engine macro observability from a
// snapshot so the remainder is exactly the simulation-visible surface.
func normalizeStats(s router.StatsSnapshot) router.StatsSnapshot {
	s.MacroWindows, s.MacroCycles = 0, 0
	s.MacroDisarms = [raw.NumMacroCauses]int64{}
	return s
}

// runMacroLoad drives a saturated 1,024-byte permutation — the paper's
// headline workload — for 20k cycles with events and telemetry armed,
// drains the fabric dry, and captures everything an outside observer
// can see.
func runMacroLoad(t *testing.T, workers int, eng raw.Engine) macroRun {
	t.Helper()
	cfg := router.DefaultConfig()
	cfg.Workers = workers
	cfg.Engine = eng
	cfg.Events = &trace.EventLog{}
	cfg.Metrics = telemetry.New(telemetry.Config{})
	r := mustNew(t, cfg)

	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr((p+1)%4, uint32(id)), 64, 1024, id)
	}
	for c := 0; c < 20000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	r.Run(60000) // drain dry

	var run macroRun
	run.windows, run.cycles = r.Chip.MacroStats()
	run.stats = normalizeStats(r.Stats())
	run.events = cfg.Events.String()

	snap := r.TelemetrySnapshot()
	snap.MacroWindows, snap.MacroCycles, snap.MacroDisarms = 0, 0, nil
	run.exports = map[string][]byte{}
	for _, format := range telemetry.Formats() {
		enc, err := snap.Encode(format)
		if err != nil {
			t.Fatalf("encode %s: %v", format, err)
		}
		run.exports[format] = enc
	}

	h := sha256.New()
	var word [8]byte
	for p := 0; p < 4; p++ {
		pkts, err := r.DrainOutput(p)
		if err != nil {
			t.Fatalf("output %d corrupt: %v", p, err)
		}
		for _, pkt := range pkts {
			binary.LittleEndian.PutUint64(word[:], uint64(p)<<32|uint64(pkt.Header.ID))
			h.Write(word[:])
			for _, w := range pkt.Payload {
				binary.LittleEndian.PutUint64(word[:], uint64(w))
				h.Write(word[:])
			}
		}
	}
	h.Sum(run.digest[:0])
	return run
}

// TestMacroEngagementEquivalence: the fast engine must actually
// macro-step the loaded router (windows > 0 with events AND telemetry
// armed — the observation planes bound windows, they must not disarm
// them) and still match the reference interpreter bit-for-bit on every
// simulation-visible output, at workers 1 and NumCPU.
func TestMacroEngagementEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("macro engagement matrix skipped in -short")
	}
	ref := runMacroLoad(t, 1, raw.EngineRef)
	if ref.windows != 0 || ref.cycles != 0 {
		t.Fatalf("reference engine reported macro stats: windows=%d cycles=%d", ref.windows, ref.cycles)
	}
	nc := runtime.NumCPU()
	if nc < 2 {
		nc = 2
	}
	for _, workers := range []int{1, nc} {
		fast := runMacroLoad(t, workers, raw.EngineFast)
		if fast.windows == 0 || fast.cycles == 0 {
			t.Fatalf("workers=%d: macro never engaged on the loaded router: windows=%d cycles=%d",
				workers, fast.windows, fast.cycles)
		}
		if fast.stats != ref.stats {
			t.Fatalf("workers=%d: stats diverged:\nfast %+v\nref  %+v", workers, fast.stats, ref.stats)
		}
		if fast.events != ref.events {
			t.Fatalf("workers=%d: event logs diverged:\nfast:\n%s\nref:\n%s", workers, fast.events, ref.events)
		}
		if fast.digest != ref.digest {
			t.Fatalf("workers=%d: delivered payload bytes diverged", workers)
		}
		for _, format := range telemetry.Formats() {
			if !bytes.Equal(fast.exports[format], ref.exports[format]) {
				t.Errorf("workers=%d: %s telemetry export differs between engines", workers, format)
			}
		}
		t.Logf("workers=%d: macro windows=%d cycles=%d (%.1f%% of %d cycles)",
			workers, fast.windows, fast.cycles,
			100*float64(fast.cycles)/float64(fast.stats.Cycle), fast.stats.Cycle)
	}
}

// watchdogArc drives the watchdog through a full arm → degrade →
// re-arm → restore → probation → live arc under one engine and returns
// the observable trace plus macro engagement before and after restore.
func watchdogArc(t *testing.T, eng raw.Engine) (events string, stats router.StatsSnapshot, loaded, restored int64) {
	t.Helper()
	cfg := router.DefaultConfig()
	cfg.Watchdog = true
	cfg.WatchdogCycles = 4000
	cfg.Engine = eng
	ev := &trace.EventLog{}
	cfg.Events = ev
	r := mustNew(t, cfg)

	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr((p+1)%4, uint32(id)), 64, 1024, id)
	}

	// Loaded healthy phase: the watchdog samples heartbeats at every
	// check-mask boundary while macro windows cover the cycles between.
	// A macro restore that failed to advance the parked state counters
	// would read as a wedged crossbar here.
	for c := 0; c < 12000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	if r.DeadPort() >= 0 || r.Failed() {
		t.Fatalf("watchdog fired on loaded healthy router: dead=%d failed=%v", r.DeadPort(), r.Failed())
	}
	loaded, _ = r.Chip.MacroStats()

	// Manual degrade: the watchdog re-arms over the three survivors and
	// must stay quiet while they forward (the parked tile's heartbeat is
	// excused, not awaited).
	if err := r.Degrade(1); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 12000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	if r.Failed() || r.DeadPort() != 1 {
		t.Fatalf("watchdog misfired on degraded fabric: dead=%d failed=%v", r.DeadPort(), r.Failed())
	}

	// Restore: drain, readmit, probation, live — the watchdog re-arms
	// over all four ports again, with the restore quiescence scans and
	// probation expiry riding the same step hook.
	if err := r.Restore(1); err != nil {
		t.Fatal(err)
	}
	if !runUntil(r, 400000, func() bool { return r.DeadPort() < 0 && !r.Restoring() }) {
		t.Fatal("restore never completed")
	}
	if !runUntil(r, 100000, func() bool { return r.ProbationPort() < 0 }) {
		t.Fatal("port stuck in probation")
	}
	for c := 0; c < 12000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	r.Run(60000) // drain dry
	if r.DeadPort() >= 0 || r.Failed() {
		t.Fatalf("watchdog misfired after restore: dead=%d failed=%v", r.DeadPort(), r.Failed())
	}
	restored, _ = r.Chip.MacroStats()
	return ev.String(), normalizeStats(r.Stats()), loaded, restored
}

// TestWatchdogRearmUnderMacro: the watchdog's heartbeat accounting must
// be exact with macro windows engaged — quiet on a healthy loaded
// fabric, quiet after a manual degrade, re-armed and quiet again after
// restore — and the whole arc must be event-for-event identical to the
// reference interpreter.
func TestWatchdogRearmUnderMacro(t *testing.T) {
	if testing.Short() {
		t.Skip("watchdog macro arc skipped in -short")
	}
	refEvents, refStats, refLoaded, refRestored := watchdogArc(t, raw.EngineRef)
	if refLoaded != 0 || refRestored != 0 {
		t.Fatalf("reference engine reported macro windows: %d / %d", refLoaded, refRestored)
	}
	fastEvents, fastStats, loaded, restored := watchdogArc(t, raw.EngineFast)
	if loaded == 0 {
		t.Fatal("macro never engaged on the loaded router with the watchdog armed")
	}
	if restored <= loaded {
		t.Fatalf("macro windows stopped growing across degrade/restore: %d then %d", loaded, restored)
	}
	if fastStats != refStats {
		t.Fatalf("stats diverged:\nfast %+v\nref  %+v", fastStats, refStats)
	}
	if fastEvents != refEvents {
		t.Fatalf("event logs diverged:\nfast:\n%s\nref:\n%s", fastEvents, refEvents)
	}
	t.Logf("macro windows: %d loaded, %d after restore arc", loaded, restored)
}
