package router

import (
	"fmt"

	"repro/internal/raw"
	"repro/internal/trace"
)

// The quantum-progress watchdog (robustness extension). The Rotating
// Crossbar's liveness invariant is that quanta keep completing: even a
// fully idle router exchanges empty headers and advances the token every
// round, so total quantum count across the live crossbar tiles is a
// heartbeat of the whole fabric. If it stops advancing for
// WatchdogCycles, something is wedged. The watchdog then tries to
// attribute the wedge to a single crossbar tile whose processor has not
// been stepped across a probe interval — the signature of a crashed or
// frozen tile, whose micro-op executor the chip skips entirely. An
// attributable wedge triggers degraded-mode reconfiguration
// (Router.Degrade); an unattributable one, or a second wedge after
// degrading, fail-stops the router (Failed reports true).
//
// The check is two-phase so the healthy path stays cheap: every check
// interval it reads only the four quantum counters. Only when those
// stall past the limit does it snapshot per-tile heartbeats (probing),
// wait one more interval, and attribute the wedge to the processor whose
// heartbeat did not move.
type watchdog struct {
	rt *Router

	// checkMask gates the (cheap) progress check to every 1024th cycle.
	checkMask int64
	limit     int64

	lastProgress int64
	lastChange   int64

	// probing is set after a stall is detected; hbProbe holds the
	// heartbeat snapshot the next check attributes against.
	probing bool
	hbProbe [4]int64

	// deadHB is the parked dead-port crossbar processor's heartbeat at
	// degrade time. A frozen tile is never stepped, so movement here
	// means the tile thawed — the AutoRestore trigger.
	deadHB int64
}

func (r *Router) installWatchdog() {
	r.wd = &watchdog{
		rt:           r,
		checkMask:    1024 - 1,
		limit:        r.cfg.WatchdogCycles,
		lastProgress: -1, // force a baseline on the first check
	}
}

// heartbeat sums a tile processor's state counters; the sum advances
// once per cycle the tile is stepped, so it freezes exactly when the
// fault plane freezes the tile.
func heartbeat(e *raw.Exec) int64 {
	var s int64
	for _, v := range e.StateCounts() {
		s += v
	}
	return s
}

// rearm restarts the watchdog clock (after Degrade reshapes the fabric
// or a restore re-admits the dead port: the old progress baseline is
// meaningless for the new configuration).
func (w *watchdog) rearm(cycle int64) {
	w.lastProgress = -1
	w.lastChange = cycle
	w.probing = false
}

// noteDegrade records the parked processor's heartbeat baseline for the
// AutoRestore thaw check and rearms the clock for the three-tile fabric.
func (w *watchdog) noteDegrade(dead int, cycle int64) {
	w.deadHB = heartbeat(w.rt.Chip.Tile(Layout[dead].Crossbar).Exec())
	w.rearm(cycle)
}

// tick runs on the simulation's main goroutine between cycles (via the
// router's step-hook dispatcher, Router.Tick), so it may read firmware
// state and reconfigure tiles without racing workers. Both phases of the
// check read only quantum counters and heartbeat sums — quantities the
// fast engine's macro restore advances exactly as per-cycle stepping
// would (a window of K cycles adds K to a blocked tile's state counts
// and leaves quantum counters alone, since boundaries are never
// covered) — and both run only on check-mask cycles, which the router's
// NextDue keeps individually stepped. The watchdog therefore observes
// bit-identical values on either engine.
func (w *watchdog) tick(cycle int64) {
	if cycle&w.checkMask != 0 || w.rt.failed {
		return
	}
	r := w.rt
	if r.deadPort >= 0 && r.cfg.AutoRestore && !r.restoring {
		if heartbeat(r.Chip.Tile(Layout[r.deadPort].Crossbar).Exec()) != w.deadHB {
			// The parked processor is being stepped again: the frozen
			// tile thawed. Begin re-admission (cannot fail here: the
			// router is degraded, not failed, and not restoring).
			if err := r.Restore(r.deadPort); err != nil {
				r.failed = true
			}
			return
		}
	}
	var progress int64
	for p := 0; p < 4; p++ {
		if p == r.deadPort {
			continue
		}
		progress += r.xbars[p].quantum
	}
	if progress != w.lastProgress {
		w.lastProgress = progress
		w.lastChange = cycle
		w.probing = false
		return
	}
	if cycle-w.lastChange < w.limit {
		return
	}
	if !w.probing {
		// Stalled past the limit. Snapshot heartbeats and give the fabric
		// one more check interval: a live processor keeps being stepped
		// (even while stalled on the network), a frozen one does not.
		w.probing = true
		for p := 0; p < 4; p++ {
			if p == r.deadPort {
				continue
			}
			w.hbProbe[p] = heartbeat(r.Chip.Tile(Layout[p].Crossbar).Exec())
		}
		return
	}
	// Attribute: which crossbar processor stopped being stepped?
	dead := -1
	for p := 0; p < 4; p++ {
		if p == r.deadPort {
			continue
		}
		if heartbeat(r.Chip.Tile(Layout[p].Crossbar).Exec()) == w.hbProbe[p] {
			if dead >= 0 {
				dead = -1 // more than one: cannot mask a single hole
				break
			}
			dead = p
		}
	}
	if dead < 0 || r.deadPort >= 0 {
		r.failed = true
		return
	}
	if err := r.Degrade(dead); err != nil {
		r.failed = true
	}
}

// Degrade masks port dead's crossbar tile out of the token rotation and
// reconfigures the three survivors for degraded operation. Must be
// called between cycles (the watchdog calls it from the chip's cycle
// hook; tests may call it directly before or between Run calls).
//
// The procedure is fail-stop at the fabric boundary: every packet fully
// streamed into the fabric but not yet delivered is discarded and
// counted in Stats.FabricLost; every packet in flight at a surviving
// ingress is aborted (Stats.AbortDropped) and its remaining line words
// drained; output streams truncated mid-packet at the pins are recorded
// so DrainOutput can skip the orphan words. The dead port's four tiles
// are parked; the survivors' switches get regenerated degraded programs
// and their firmware restarts from clean per-quantum state.
func (r *Router) Degrade(dead int) error {
	if dead < 0 || dead > 3 {
		return fmt.Errorf("router: bad dead port %d", dead)
	}
	if r.failed {
		return fmt.Errorf("router: fail-stopped; cannot degrade")
	}
	if r.deadPort >= 0 {
		return fmt.Errorf("router: already degraded (port %d dead)", r.deadPort)
	}
	if r.cfg.Multicast {
		return fmt.Errorf("router: degraded mode supports unicast only")
	}
	r.deadPort = dead
	r.probationPort = -1

	// Fail-stop accounting: everything inside the fabric is lost.
	var in, out int64
	for p := 0; p < 4; p++ {
		in += r.stats.PktsIn[p]
		out += r.stats.PktsOut[p]
	}
	if in > out {
		r.stats.FabricLost += in - out
	}
	for p := 0; p < 4; p++ {
		r.cuts[p] = append(r.cuts[p], r.outs[p].Count())
	}
	if r.reportPort == dead {
		r.reportPort = (dead + 1) % 4
	}

	// Park the dead port's pipeline. Its crossbar tile may be frozen (the
	// usual reason we are here) — reprogramming it is a no-op until it
	// thaws, at which point the park program blocks it harmlessly.
	dp := Layout[dead]
	if f := r.ings[dead]; f.havePkt {
		r.stats.AbortDropped[dead]++
		f.havePkt = false
	}
	r.ings[dead].lineDown = true
	for _, tile := range []int{dp.Ingress, dp.Lookup, dp.Crossbar, dp.Egress} {
		t := r.Chip.Tile(tile)
		t.Exec().Reset()
		t.Exec().SetFirmware(nil)
		t.ResetStatic(0)
		t.SetCompiledSwitchProgram(CompiledParkProgram())
	}

	// Reconfigure the survivors.
	for p := 0; p < 4; p++ {
		if p == dead {
			continue
		}
		pt := Layout[p]

		xprog, err := GenXbarProgramDegraded(p, r.ci, dead)
		if err != nil {
			return err
		}
		xt := r.Chip.Tile(pt.Crossbar)
		xt.Exec().Reset()
		xt.ResetStatic(0)
		xt.SetCompiledSwitchProgram(xprog.Compiled)
		r.xbars[p].enterDegraded(dead, xprog)

		it := r.Chip.Tile(pt.Ingress)
		it.Exec().Reset()
		it.ResetStatic(0)
		it.SetCompiledSwitchProgram(r.ings[p].prog.Compiled)
		r.ings[p].resetForDegrade(dead)

		et := r.Chip.Tile(pt.Egress)
		et.Exec().Reset()
		et.ResetStatic(0)
		et.SetCompiledSwitchProgram(r.egrs[p].prog.Compiled)
		r.egrs[p].resetForDegrade()

		lt := r.Chip.Tile(pt.Lookup)
		lt.Exec().Reset()
		lt.ResetStatic(0)
		lt.SetCompiledSwitchProgram(CompiledLookupProgram(p))
	}
	if r.wd != nil {
		r.wd.noteDegrade(dead, r.Chip.Cycle())
	}
	r.event(r.Chip.Cycle(), dead, trace.EvDegrade)
	return nil
}

// DeadPort returns the masked-out port in degraded mode, -1 if healthy.
func (r *Router) DeadPort() int { return r.deadPort }

// Failed reports whether the watchdog fail-stopped the router (a second
// wedge after degrading, or a wedge it could not attribute to one tile).
func (r *Router) Failed() bool { return r.failed }

// LineDown reports whether port p's ingress declared its input line dead
// (underrun-timeout strikes exhausted, or the port's crossbar died).
func (r *Router) LineDown(p int) bool { return r.ings[p].lineDown }

// InFlightAtIngress returns how many accepted packets port p's ingress
// currently holds (0 or 1) — the in-flight term of the conservation
// identity chaos testing checks.
func (r *Router) InFlightAtIngress(p int) int {
	if r.ings[p].havePkt {
		return 1
	}
	return 0
}

// PendingDrainWords returns how many line words port p's ingress still
// owes to an aborted packet's drain.
func (r *Router) PendingDrainWords(p int) int { return r.ings[p].pendingDrain }

// Quanta returns crossbar tile p's completed quantum count.
func (r *Router) Quanta(p int) int64 { return r.xbars[p].quantum }
