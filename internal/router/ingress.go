package router

import (
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/rotor"
)

// ingressFW is the Ingress Processor firmware (§4.2): it streams packets
// in from the line card, validates and updates the IP header (checksum
// verify, TTL decrement with incremental checksum), consults its Lookup
// Processor for the egress port, and then plays the per-quantum crossbar
// protocol — header out, grant in, fragment streamed (payload cut-through
// at the switch, updated header words and padding supplied by the
// processor).
type ingressFW struct {
	rt   *Router
	port int
	prog *IngressProgram

	// sched is the compiled cycle-cost schedule (shared by all four
	// ingress instances, surviving degrade/restore/park); phase indexes
	// it. Written only while the tile executes firmware ops, read by the
	// macro-stepper between cycles (workers parked).
	sched *FWSchedule
	phase int

	// Current packet state.
	hdrWords  [5]raw.Word
	havePkt   bool
	firstFrag bool
	remaining int // payload words not yet streamed
	totalLen  int // words of the whole packet
	outPort   int
	pktID     int64

	// Multicast state (§8.6): the payload is buffered in local data
	// memory so it can replay for members served in later quanta.
	mcast   bool
	members rotor.McastReq
	buf     []raw.Word // header words + payload

	// backlog polls the line card's receive-ready state (the DMA ring
	// occupancy a real NIC exposes); without it an idle ingress would
	// block reading an empty line and stall the whole crossbar's header
	// exchange.
	backlog func() int
	in      *raw.StaticIn

	// Robustness state. pktStart/lineClaim frame the current packet's
	// words on the line (absolute Consumed() offsets), so an abort knows
	// exactly how much to drain. dead is the masked-out port after
	// degradation (-1 healthy). underruns/strikes drive the bounded
	// retry-with-backoff before the line is declared down.
	pktStart     int64
	lineClaim    int64
	pendingDrain int
	underruns    int
	strikes      int
	lineDown     bool
	dead         int

	// Line-flap retry state (cfg.ReprobeQuanta > 0): while lineDown, the
	// ingress probes the line on an exponential-backoff schedule instead
	// of latching dead forever. probeMark is the line's total pushed-word
	// position at the last probe (growth means the line talks again);
	// reprobeIn counts quanta to the next probe; reprobeAtt the silent
	// probes so far (backoff exponent); reprobeNow forces a probe (set
	// between cycles by a scheduled reprobe control). rng is the
	// per-port xorshift64* jitter state — firmware-owned, so the backoff
	// schedule replays bit-for-bit at any worker count.
	probeMark  int64
	reprobeIn  int
	reprobeAtt int
	reprobeNow bool
	rng        uint64

	// Restore coordination (see restore.go). pause declines new packet
	// acquisition while a restore drains the fabric; probation holds the
	// re-admitted port to empty headers until its probation window ends.
	pause     bool
	probation bool
}

// lineDownStrikes is how many underrun timeouts (each with doubled
// patience) the ingress tolerates before declaring its input line down.
const lineDownStrikes = 3

// reprobeAttCap bounds the backoff exponent (2^16 quanta ≈ 18 s of
// simulated time between probes at the default quantum).
const reprobeAttCap = 16

// SteadyState implements raw.SteadyFirmware: the compiled schedule says
// whether the current phase presents a constant per-cycle profile.
func (f *ingressFW) SteadyState() bool { return f.sched.Steady(f.phase) }

func (f *ingressFW) Refill(e *raw.Exec) {
	if f.lineDown {
		// A down line stops draining and acquiring; with reprobe armed it
		// periodically checks whether the line resumed talking.
		f.phase = ingPhaseDown
		f.lineDownQuantum(e)
		return
	}
	if f.pendingDrain > 0 {
		f.phase = ingPhaseDrain
		f.drainPending(e)
		return
	}
	if f.havePkt {
		f.quantum(e)
		return
	}
	if f.pause || f.probation {
		// Restore drain (pause) or post-restore probation: decline new
		// packets but keep playing idle quanta — the header exchange and
		// the watchdog's progress heartbeat must stay alive.
		f.phase = ingPhaseIdle
		f.idleQuantum(e)
		return
	}
	f.phase = ingPhaseIdle
	e.Then(func(e *raw.Exec) { // poll the line card: one cycle
		if f.backlog() < ip.HeaderWords {
			f.idleQuantum(e)
			return
		}
		f.acquire(e)
	})
}

// drainPending discards line words still claimed by an aborted packet,
// as they arrive, then keeps the crossbar protocol in lockstep with an
// idle quantum. Resynchronizes the line to a packet boundary after an
// underrun timeout or a degraded-mode reset.
func (f *ingressFW) drainPending(e *raw.Exec) {
	n := f.pendingDrain
	if avail := f.backlog(); avail < n {
		n = avail
	}
	if n == 0 {
		f.underrun(e)
		return
	}
	f.underruns = 0
	e.WriteSwitchPC(func() raw.Word { return f.prog.Drop })
	e.WriteSwitchCount(func() raw.Word { return raw.Word(n) })
	e.RecvN(func() int { return n }, 1, nil)
	e.WaitSwitchDone(nil)
	e.Then(func(*raw.Exec) { f.pendingDrain -= n })
	f.idleQuantum(e)
}

// underrun plays an idle quantum while the line card is behind. With
// UnderrunQuanta configured, a packet whose line stalls for that many
// consecutive quanta is aborted and its claimed words drained; each
// timeout doubles the patience (backoff), and after lineDownStrikes
// timeouts the port is declared down and stops reading the line.
func (f *ingressFW) underrun(e *raw.Exec) {
	f.rt.stats.Underruns[f.port]++
	f.underruns++
	limit := f.rt.cfg.UnderrunQuanta
	if limit > 0 && f.underruns >= limit<<f.strikes {
		f.strikes++
		f.underruns = 0
		if f.havePkt {
			f.rt.stats.AbortDropped[f.port]++
			f.havePkt = false
			f.mcast = false
			f.pendingDrain = f.claimedWords()
		}
		if f.strikes >= lineDownStrikes {
			f.markLineDown()
		}
	}
	f.idleQuantum(e)
}

// markLineDown declares the input line dead. With reprobe armed the
// pending drain is kept — a recovered line resynchronizes from it; the
// latch-forever mode zeroes it, as no words will ever arrive.
func (f *ingressFW) markLineDown() {
	f.lineDown = true
	f.probeMark = f.pushedTotal()
	f.reprobeAtt = 0
	if f.rt.cfg.ReprobeQuanta > 0 {
		f.scheduleReprobe()
	} else {
		f.pendingDrain = 0
	}
}

// pushedTotal is the line's absolute stream position: every word the
// testbench ever pushed that survived the fault plane, consumed or not.
// A down line is alive again exactly when this grows.
func (f *ingressFW) pushedTotal() int64 { return f.in.Consumed() + int64(f.in.Len()) }

// lineDownQuantum plays an idle quantum on a down line and runs the
// reprobe schedule: when the countdown (or a forced reprobe control)
// fires, a silent line backs off exponentially and a talking line comes
// back up, discarding the words still claimed by the packet that was cut
// off (FlapDrops) to resynchronize at a packet boundary.
func (f *ingressFW) lineDownQuantum(e *raw.Exec) {
	probe := f.reprobeNow
	f.reprobeNow = false
	if !probe && f.rt.cfg.ReprobeQuanta > 0 {
		f.reprobeIn--
		probe = f.reprobeIn <= 0
	}
	if probe {
		f.probe()
	}
	f.idleQuantum(e)
}

func (f *ingressFW) probe() {
	pushed := f.pushedTotal()
	if pushed > f.probeMark {
		// The line talks again: discard the aborted packet's residue so
		// the stream resumes at the next packet boundary, and rejoin.
		f.rt.stats.Recovered[f.port]++
		f.pendingDrain = f.claimedWords()
		f.rt.stats.FlapDrops[f.port] += int64(f.pendingDrain)
		f.lineDown = false
		f.strikes = 0
		f.underruns = 0
		f.reprobeAtt = 0
		return
	}
	f.rt.stats.Reprobes[f.port]++
	f.probeMark = pushed
	if f.reprobeAtt < reprobeAttCap {
		f.reprobeAtt++
	}
	if f.rt.cfg.ReprobeQuanta > 0 {
		f.scheduleReprobe()
	}
}

// scheduleReprobe sets the countdown to the next probe: ReprobeQuanta
// doubled per silent probe, plus up to half that again of seeded jitter
// so fleets of ports don't probe in phase.
func (f *ingressFW) scheduleReprobe() {
	base := f.rt.cfg.ReprobeQuanta << f.reprobeAtt
	if base <= 0 { // shift overflow guard
		base = f.rt.cfg.ReprobeQuanta << reprobeAttCap
	}
	f.reprobeIn = base + int(f.nextRand()%uint64(base/2+1))
}

// nextRand steps the per-port xorshift64* jitter stream.
func (f *ingressFW) nextRand() uint64 {
	x := f.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	f.rng = x
	return x * 0x2545F4914F6CDD1D
}

// reprobeSeed derives port p's jitter stream from the configured seed;
// the port mix keeps streams distinct, the fixed constant keeps a zero
// seed usable.
func reprobeSeed(seed uint64, p int) uint64 {
	s := seed ^ 0x9E3779B97F4A7C15*uint64(p+1)
	if s == 0 {
		s = 0x2545F4914F6CDD1D
	}
	return s
}

// claimedWords returns how many of the current packet's words have not
// yet been consumed off the line.
func (f *ingressFW) claimedWords() int {
	n := int(f.lineClaim - f.in.Consumed())
	if n < 0 {
		n = 0
	}
	return n
}

// resetForDegrade aborts any in-flight packet fail-stop when the fabric
// degrades: the firmware restarts from a clean slate, draining whatever
// the aborted packet still claims on the line, and from now on drops
// packets addressed to the dead egress at acquire time.
func (f *ingressFW) resetForDegrade(dead int) {
	f.dead = dead
	if f.havePkt {
		f.rt.stats.AbortDropped[f.port]++
	}
	if f.havePkt || f.lineClaim > f.in.Consumed() {
		f.pendingDrain = f.claimedWords()
	}
	f.havePkt = false
	f.mcast = false
	f.underruns = 0
	f.pause = false
	f.probation = false
}

// resetForRestore rejoins the ingress to the healthy fabric after a
// restore. Live ports keep their line state (a down line stays down and
// keeps probing); the restored port starts clean — in probation when a
// window is configured, draining whatever its cut-off packet still
// claims on the line so the stream resumes at a packet boundary.
func (f *ingressFW) resetForRestore(restored bool, probation bool) {
	f.dead = -1
	f.pause = false
	if !restored {
		return
	}
	f.probation = probation
	f.lineDown = false
	f.strikes = 0
	f.underruns = 0
	f.reprobeAtt = 0
	f.reprobeNow = false
	f.havePkt = false
	f.mcast = false
	f.pendingDrain = f.claimedWords()
}

// idleQuantum keeps the crossbar protocol in lockstep when this port has
// nothing to send: an empty header, a (necessarily negative) grant.
func (f *ingressFW) idleQuantum(e *raw.Exec) {
	e.WriteSwitchPC(func() raw.Word { return f.prog.Quantum })
	e.Send(LocalHdrEmpty)
	e.Recv(nil)
	e.WaitSwitchDone(nil)
}

// acquire reads the next packet's IP header from the line card, verifies
// it, and resolves the egress port.
func (f *ingressFW) acquire(e *raw.Exec) {
	f.phase = ingPhaseAcquire
	f.pktStart = f.in.Consumed()
	f.lineClaim = f.pktStart + int64(ip.HeaderWords)
	e.WriteSwitchPC(func() raw.Word { return f.prog.Acquire })
	for i := 0; i < 5; i++ {
		i := i
		e.Recv(func(w raw.Word) { f.hdrWords[i] = w })
	}
	// Checksum verify + TTL decrement + length extraction. The paper's
	// ingress does this in a handful of unrolled ALU instructions.
	e.Compute(f.rt.cfg.HeaderCycles)
	e.Then(func(e *raw.Exec) {
		words := []uint32{uint32(f.hdrWords[0]), uint32(f.hdrWords[1]),
			uint32(f.hdrWords[2]), uint32(f.hdrWords[3]), uint32(f.hdrWords[4])}
		h, err := ip.Unmarshal(words)
		bad := err != nil
		if !bad {
			if derr := ip.DecrementTTL(words); derr != nil {
				bad = true
			}
		}
		for i := range f.hdrWords {
			f.hdrWords[i] = raw.Word(words[i])
		}
		f.totalLen = (int(h.TotalLen) + 3) / 4
		if f.totalLen < ip.HeaderWords {
			f.totalLen = ip.HeaderWords
		}
		if f.totalLen > 4096 { // 16 KB sanity bound on a corrupt length
			f.totalLen = ip.HeaderWords
		}
		f.lineClaim = f.pktStart + int64(f.totalLen)
		// The Acquire switch routine has committed to a lookup exchange;
		// send the destination (a garbage word on the drop path).
		e.SendFunc(func() raw.Word { return raw.Word(h.Dst) })
		var port raw.Word
		e.Recv(func(w raw.Word) { port = w })
		e.WaitSwitchDone(nil)
		e.Then(func(e *raw.Exec) {
			if bad || port == lookupNoRoute {
				f.rt.stats.Dropped[f.port]++
				f.drop(e)
				return
			}
			if port&lookupMcastBit != 0 {
				// Multicast (§8.6): single-quantum packets only; the
				// payload is ingested into local memory for replay.
				if f.totalLen > f.rt.cfg.QuantumWords {
					f.rt.stats.Dropped[f.port]++
					f.drop(e)
					return
				}
				f.members = rotor.McastReq(port & 0xf)
				f.mcast = true
				f.havePkt = true
				f.pktID++
				f.rt.stats.Accepted[f.port]++
				f.ingest(e)
				return
			}
			f.outPort = int(port)
			if f.outPort == f.dead {
				// The destination egress died; fail fast instead of
				// requesting a grant the masked allocator can never give.
				f.rt.stats.AbortDropped[f.port]++
				f.drop(e)
				return
			}
			f.mcast = false
			f.havePkt = true
			f.firstFrag = true
			f.remaining = f.totalLen - ip.HeaderWords
			f.pktID++
			f.rt.stats.Accepted[f.port]++
		})
	})
}

// drop schedules the doomed packet's remaining words for draining. The
// drain itself happens in later Refills as the words actually arrive
// (drainPending), so a dropped packet whose tail is still in flight on
// the wire can never stall this tile — or, transitively, the crossbar —
// waiting for it.
func (f *ingressFW) drop(e *raw.Exec) {
	f.pendingDrain = f.claimedWords()
	f.idleQuantum(e)
}

// fragLen returns the current fragment's length in words.
func (f *ingressFW) fragLen() int {
	q := f.rt.cfg.QuantumWords
	if f.firstFrag {
		n := ip.HeaderWords + f.remaining
		if n > q {
			n = q
		}
		return n
	}
	n := f.remaining
	if n > q {
		n = q
	}
	return n
}

// lastFrag reports whether the current fragment completes the packet.
func (f *ingressFW) lastFrag() bool {
	if f.firstFrag {
		return ip.HeaderWords+f.remaining <= f.rt.cfg.QuantumWords
	}
	return f.remaining <= f.rt.cfg.QuantumWords
}

// ingest buffers a multicast packet's payload into local data memory
// (2 cycles/word, §4.4) behind the already-held header words.
func (f *ingressFW) ingest(e *raw.Exec) {
	f.phase = ingPhaseIngest
	f.buf = f.buf[:0]
	for _, w := range f.hdrWords {
		f.buf = append(f.buf, w)
	}
	payload := f.totalLen - ip.HeaderWords
	if payload == 0 {
		return
	}
	e.WriteSwitchPC(func() raw.Word { return f.prog.Drop })
	e.WriteSwitchCount(func() raw.Word { return raw.Word(payload) })
	e.RecvN(func() int { return payload }, 2, func(_ int, w raw.Word) {
		f.buf = append(f.buf, w)
	})
	e.WaitSwitchDone(nil)
}

// mcastQuantum plays one multicast round: request the remaining members,
// replay the buffered packet for those served.
func (f *ingressFW) mcastQuantum(e *raw.Exec) {
	f.phase = ingPhaseQuantum
	e.WriteSwitchPC(func() raw.Word { return f.prog.Quantum })
	hdr := LocalHdrFirst(LocalHdrMcast(f.members, f.totalLen, true))
	e.SendFunc(func() raw.Word { return hdr })
	var grant raw.Word
	e.Recv(func(w raw.Word) { grant = w })
	e.WaitSwitchDone(nil)
	e.Then(func(e *raw.Exec) {
		served := GrantServed(grant)
		_, l := DecodeGrant(grant)
		if served == 0 {
			f.rt.stats.Denied[f.port]++
			return
		}
		// One fanout-split stream serves every granted member.
		f.phase = ingPhaseMcastStream
		e.WriteSwitchPC(func() raw.Word { return f.prog.StreamP })
		e.WriteSwitchCount(func() raw.Word { return raw.Word(l) })
		e.SendN(func() int { return l }, func(i int) raw.Word {
			if i < len(f.buf) {
				return f.buf[i]
			}
			return 0 // padding
		})
		e.WaitSwitchDone(nil)
		e.Then(func(*raw.Exec) {
			f.rt.stats.FragsSent[f.port]++
			f.rt.stats.McastCopies[f.port] += int64(served.Count())
			f.members &^= served
			if f.members == 0 {
				f.havePkt = false
				f.mcast = false
				f.rt.stats.PktsIn[f.port]++
				f.rt.stats.McastIn[f.port]++
			}
		})
	})
}

// quantum plays one round of the crossbar protocol.
func (f *ingressFW) quantum(e *raw.Exec) {
	if f.mcast {
		f.mcastQuantum(e)
		return
	}
	f.phase = ingPhaseQuantum
	// Store-and-forward gating: don't request a grant until every word
	// the fragment would cut through is already in the line buffer. A
	// granted stream whose line card underruns would stall the switch
	// mid-routine and wedge the whole crossbar quantum; gating converts
	// that fabric-wide hazard into idle quanta on this port alone.
	need := f.fragLen()
	if f.firstFrag {
		need -= ip.HeaderWords // header words are already held
	}
	if f.backlog() < need {
		f.underrun(e)
		return
	}
	f.underruns = 0
	f.strikes = 0
	e.WriteSwitchPC(func() raw.Word { return f.prog.Quantum })
	hdr := LocalHdr(f.outPort, f.fragLen(), f.lastFrag())
	if f.firstFrag {
		hdr = LocalHdrFirst(hdr)
	}
	if f.rt.cfg.Crypto {
		hdr = LocalHdrCrypto(hdr)
	}
	// §8.7: the IP precedence bits (TOS[7:5]) become the crossbar
	// priority class.
	hdr = LocalHdrPrio(hdr, uint8(f.hdrWords[0]>>16)>>5)
	e.SendFunc(func() raw.Word { return hdr })
	var grant raw.Word
	e.Recv(func(w raw.Word) { grant = w })
	e.WaitSwitchDone(nil)
	e.Then(func(e *raw.Exec) {
		granted, l := DecodeGrant(grant)
		if !granted {
			f.rt.stats.Denied[f.port]++
			return // next Refill retries the quantum
		}
		f.stream(e, l)
	})
}

// stream sends the current fragment padded to l words.
func (f *ingressFW) stream(e *raw.Exec, l int) {
	f.phase = ingPhaseStream
	frag := f.fragLen()
	last := f.lastFrag()
	pad := l - frag
	if pad < 0 {
		panic("router: fragment longer than quantum stream")
	}
	if f.firstFrag {
		payload := frag - ip.HeaderWords
		e.WriteSwitchPC(func() raw.Word { return f.prog.Stream1 })
		// 5 updated header words from the processor.
		e.SendN(func() int { return 5 }, func(i int) raw.Word { return f.hdrWords[i] })
		e.WriteSwitchCount(func() raw.Word { return raw.Word(payload) })
		e.WriteSwitchCount(func() raw.Word { return raw.Word(pad) })
		e.SendN(func() int { return pad }, func(int) raw.Word { return 0 })
		f.remaining -= payload
	} else {
		e.WriteSwitchPC(func() raw.Word { return f.prog.Stream2 })
		e.WriteSwitchCount(func() raw.Word { return raw.Word(frag) })
		e.WriteSwitchCount(func() raw.Word { return raw.Word(pad) })
		e.SendN(func() int { return pad }, func(int) raw.Word { return 0 })
		f.remaining -= frag
	}
	e.WaitSwitchDone(nil)
	e.Then(func(*raw.Exec) {
		f.firstFrag = false
		f.rt.stats.FragsSent[f.port]++
		if last {
			f.havePkt = false
			f.rt.stats.PktsIn[f.port]++
		}
	})
}
