package router

import (
	"fmt"

	"repro/internal/trace"
)

// Port re-admission (robustness extension). Degrade is fail-stop and
// instantaneous; Restore is its inverse and must be hitless for the
// survivors, so it runs as a small state machine driven by the router's
// step hook (Router.Tick):
//
//	degraded --Restore--> draining --quiesce--> re-admitting --window--> live
//
// Draining: the three live ingresses pause new packet acquisition (still
// playing idle quanta — the header exchange and the watchdog's heartbeat
// must not stop) while packets already inside the fabric finish. The
// hook declares quiescence when no ingress holds a packet, every
// reassembly buffer is empty, the packet conservation identity balances,
// and the output word counts have been stable for two consecutive check
// intervals (residual pipeline words flush during the grace interval).
//
// Re-admitting: at that point the fabric is exactly as idle as a freshly
// built router, so the same between-cycles reconfiguration Degrade uses
// applies in reverse: all sixteen tiles get their healthy switch
// programs back (cached from construction — healthy jump-table slots are
// bitwise unchanged in the FT config index, so these are the original
// programs, not regenerations), the dead port's four tiles get their
// firmware re-installed, and every crossbar re-enters the full ring with
// the token at the joining port.
//
// Probation: for ReadmitQuanta quanta the re-admitted port plays the
// full protocol but its egress stays quarantined (rotor.AllocateReadmit)
// and its ingress sends only empty headers. A tile that did not really
// recover can therefore only wedge the header exchange — which the
// re-armed watchdog catches and re-degrades — never corrupt a committed
// stream. When the window expires the hook lifts the ingress probation
// and the port is fully live.

// restoreCheckMask gates the quiescence check to every 256th cycle.
const restoreCheckMask = 256 - 1

// controlKind enumerates scheduled recovery controls (the router-side
// counterpart of the fault grammar's restore@/reprobe@ directives).
type controlKind uint8

const (
	ctlRestore controlKind = iota
	ctlReprobe
)

type control struct {
	cycle int64
	port  int
	kind  controlKind
	fired bool
}

// ScheduleRestore arranges for Restore(port) to run at the given cycle
// (from the step hook, so it is deterministic and checkpoint-replayable;
// a failing Restore — wrong port, not degraded — is a recorded no-op).
func (r *Router) ScheduleRestore(cycle int64, port int) {
	r.controls = append(r.controls, control{cycle: cycle, port: port, kind: ctlRestore})
}

// ScheduleReprobe forces port's next line probe at the given cycle,
// regardless of the backoff schedule (deterministic, like
// ScheduleRestore).
func (r *Router) ScheduleReprobe(cycle int64, port int) {
	r.controls = append(r.controls, control{cycle: cycle, port: port, kind: ctlReprobe})
}

// Tick implements raw.StepHook: the router is the chip's single
// observation hook. It runs between cycles on the simulation's main
// goroutine (workers parked), so it may read firmware state and
// reconfigure tiles without racing. Everything here is a few nil checks
// per cycle against sixteen tile steps — and on the fast engine the
// cycles between NextDue boundaries may be covered by macro windows, so
// every observation below is batched to a boundary the hook declares:
// the watchdog to its 1024-cycle check mask, the restore/probation/
// line-event scans to the 256-cycle restoreCheckMask, scheduled controls
// to their exact cycles. Telemetry quantum sampling needs no boundary of
// its own: a quantum counter only advances inside a crossbar processor
// op (advanceToken's boundary closure), which makes that tile busy for
// the cycle, so a macro window can never cover a quantum boundary and
// the per-cycle counter comparison always runs on the boundary cycle.
func (r *Router) Tick(cycle int64) {
	if r.wd != nil {
		r.wd.tick(cycle)
	}
	if len(r.controls) > 0 {
		r.runControls(cycle)
	}
	if r.restoring {
		r.restoreTick(cycle)
	}
	if r.probationPort >= 0 && cycle&restoreCheckMask == 0 {
		if r.xbars[r.reportPort].readmit == 0 {
			r.ings[r.probationPort].probation = false
			r.event(cycle, r.probationPort, trace.EvLive)
			r.probationPort = -1
		}
	}
	if (r.cfg.Events != nil || r.cfg.Metrics != nil) && cycle&restoreCheckMask == 0 {
		for p := 0; p < 4; p++ {
			if down := r.ings[p].lineDown; down != r.lineDownSeen[p] {
				r.lineDownSeen[p] = down
				kind := trace.EvLineUp
				if down {
					kind = trace.EvLineDown
				}
				r.event(cycle, p, kind)
			}
		}
	}
	if r.cfg.Metrics != nil {
		r.sampleTelemetry(cycle)
	}
}

// NextDue implements raw.StepHook: the earliest cycle >= cycle at which
// Tick must observe an individually simulated cycle, or -1 when nothing
// is scheduled. The bounds mirror Tick's own gating exactly: the
// watchdog's next check-mask boundary while it is armed and the router
// has not fail-stopped; the next restoreCheckMask boundary while any
// 256-cycle scan is live (restore drain, probation expiry, or the
// line-state scan armed by Events/Metrics); and every unfired scheduled
// control's cycle. Quantum-coupled observations (telemetry sampling,
// watchdog heartbeat reads) need no bound here — quantum boundaries
// happen inside crossbar processor ops, which the macro-stepper can
// never cover (see Tick).
func (r *Router) NextDue(cycle int64) int64 {
	due := int64(-1)
	add := func(d int64) {
		if d >= cycle && (due < 0 || d < due) {
			due = d
		}
	}
	if r.wd != nil && !r.failed {
		add((cycle + r.wd.checkMask) &^ r.wd.checkMask)
	}
	if r.restoring || r.probationPort >= 0 || r.cfg.Events != nil || r.cfg.Metrics != nil {
		add((cycle + restoreCheckMask) &^ restoreCheckMask)
	}
	for i := range r.controls {
		if c := &r.controls[i]; !c.fired {
			d := c.cycle
			if d < cycle {
				d = cycle
			}
			add(d)
		}
	}
	return due
}

func (r *Router) runControls(cycle int64) {
	for i := range r.controls {
		c := &r.controls[i]
		if c.fired || c.cycle > cycle {
			continue
		}
		c.fired = true
		if c.port < 0 || c.port > 3 {
			continue
		}
		switch c.kind {
		case ctlRestore:
			if err := r.Restore(c.port); err != nil {
				r.event(cycle, c.port, trace.EvRestoreRejected)
			}
		case ctlReprobe:
			r.ings[c.port].reprobeNow = true
		}
	}
}

// event routes one typed recovery event to every armed sink: the
// configured event log and the telemetry flight recorder.
func (r *Router) event(cycle int64, port int, kind trace.EventKind) {
	r.eventDetail(cycle, port, kind, "")
}

func (r *Router) eventDetail(cycle int64, port int, kind trace.EventKind, detail string) {
	if r.cfg.Events != nil {
		r.cfg.Events.AddDetail(cycle, port, kind, detail)
	}
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.RecordEvent(trace.Event{Cycle: cycle, Port: port, Kind: kind, Detail: detail})
	}
}

// Restore begins re-admission of the degraded port: live ingresses stop
// acquiring new packets and the fabric drains; once quiescent, the cycle
// hook completes the reconfiguration at a quantum boundary. Must be
// called between cycles (tests call it directly; scheduled controls and
// the watchdog's AutoRestore call it from the hook). Restore completes
// only after in-flight packets finish — a paused ingress mid-packet
// still needs its line words to arrive.
func (r *Router) Restore(port int) error {
	if r.failed {
		return fmt.Errorf("router: fail-stopped; cannot restore")
	}
	if r.deadPort < 0 {
		return fmt.Errorf("router: not degraded; nothing to restore")
	}
	if port != r.deadPort {
		return fmt.Errorf("router: port %d is not the dead port (%d)", port, r.deadPort)
	}
	if r.restoring {
		return fmt.Errorf("router: restore already in progress")
	}
	r.restoring = true
	r.restoreArmed = false
	for p := 0; p < 4; p++ {
		if p != r.deadPort {
			r.ings[p].pause = true
		}
	}
	r.event(r.Chip.Cycle(), port, trace.EvRestoreDrain)
	return nil
}

// Restoring reports whether a restore is draining toward quiescence.
func (r *Router) Restoring() bool { return r.restoring }

// ProbationPort returns the re-admitted port still in its probation
// window, -1 if none.
func (r *Router) ProbationPort() int { return r.probationPort }

// restoreTick checks drain quiescence every restoreCheckMask+1 cycles
// and completes the restore once the fabric has been provably idle for
// two consecutive checks.
func (r *Router) restoreTick(cycle int64) {
	if cycle&restoreCheckMask != 0 {
		return
	}
	if !r.drainQuiescent() {
		r.restoreArmed = false
		return
	}
	var cur [4]int64
	for p := range cur {
		cur[p] = r.outs[p].Count()
	}
	if !r.restoreArmed || cur != r.restoreMark {
		// First passing check, or words still trickling out of the
		// pipeline: wait one more interval of stability.
		r.restoreMark = cur
		r.restoreArmed = true
		return
	}
	r.completeRestore(cycle)
}

// Quiescent reports whether nothing is in flight inside the fabric: no
// ingress mid-packet, no partial reassembly, and the conservation
// identity balanced. It is the same predicate the restore state machine
// drains against; serve-mode drains poll it (together with empty input
// backlogs) to decide when a checkpoint captures a clean boundary. Call
// between Run calls only.
func (r *Router) Quiescent() bool { return r.drainQuiescent() }

// drainQuiescent reports whether nothing is in flight inside the fabric:
// no ingress mid-packet, no partial reassembly, and the conservation
// identity balanced. Line-side state (pending drains, backlogs, down
// lines) is irrelevant — it does not touch fabric reconfiguration.
func (r *Router) drainQuiescent() bool {
	var in, out int64
	for p := 0; p < 4; p++ {
		if p != r.deadPort {
			if r.ings[p].havePkt || !r.egrs[p].quiet() {
				return false
			}
		}
		in += r.stats.PktsIn[p]
		out += r.stats.PktsOut[p]
	}
	return in == out+r.stats.FabricLost
}

// completeRestore is Degrade in reverse, run between cycles from the
// hook once the fabric is drained: healthy switch programs everywhere,
// firmware re-installed on the parked tiles, crossbars re-entering the
// four-tile ring in lockstep with the token at the joining port.
func (r *Router) completeRestore(cycle int64) {
	dead := r.deadPort
	readmit := r.readmitQuanta
	for p := 0; p < 4; p++ {
		pt := Layout[p]

		xt := r.Chip.Tile(pt.Crossbar)
		xt.Exec().Reset()
		xt.ResetStatic(0)
		xt.SetCompiledSwitchProgram(r.xprogs[p].Compiled)
		if p == dead {
			xt.Exec().SetFirmware(r.xbars[p])
		}
		r.xbars[p].reenterHealthy(r.xprogs[p], dead, readmit)

		it := r.Chip.Tile(pt.Ingress)
		it.Exec().Reset()
		it.ResetStatic(0)
		it.SetCompiledSwitchProgram(r.ings[p].prog.Compiled)
		if p == dead {
			it.Exec().SetFirmware(r.ings[p])
		}
		r.ings[p].resetForRestore(p == dead, readmit > 0)

		et := r.Chip.Tile(pt.Egress)
		et.Exec().Reset()
		et.ResetStatic(0)
		et.SetCompiledSwitchProgram(r.egrs[p].prog.Compiled)
		if p == dead {
			et.Exec().SetFirmware(r.egrs[p])
		}
		r.egrs[p].resetForDegrade()

		lt := r.Chip.Tile(pt.Lookup)
		lt.Exec().Reset()
		lt.ResetStatic(0)
		lt.SetCompiledSwitchProgram(CompiledLookupProgram(p))
		if p == dead {
			lt.Exec().SetFirmware(r.lookups[p])
		}
	}
	r.deadPort = -1
	r.restoring = false
	r.restoreArmed = false
	if readmit > 0 {
		r.probationPort = dead
	} else {
		r.probationPort = -1
	}
	if r.wd != nil {
		r.wd.rearm(cycle)
	}
	r.event(cycle, dead, trace.EvReadmit)
}

// failStop records an unrecoverable reconfiguration error (cached
// programs failing to install should be impossible; park safely rather
// than continue with a half-configured fabric).
func (r *Router) failStop(cycle int64, port int, err error) {
	r.failed = true
	r.restoring = false
	r.eventDetail(cycle, port, trace.EvFailStop, err.Error())
}
