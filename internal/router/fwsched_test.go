package router

import (
	"testing"
)

// White-box tests for the compiled firmware schedules: the tables must
// reflect the configuration they were compiled from, every firmware
// instance of a kind must share the one compiled object, and that exact
// pointer must survive a degrade → restore arc (those procedures
// re-install the same firmware objects, never recompile).

// TestFirmwareSchedulesCompiled pins the compiled tables to the config
// they derive from and the steadiness classification the macro-stepper
// reasons on.
func TestFirmwareSchedulesCompiled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeaderCycles = 11
	cfg.AllocCycles = 9
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ing := r.FirmwareSchedule("ingress")
	if got := ing.Phases[ingPhaseAcquire].Cycles; got != 5+11+2 {
		t.Fatalf("ingress acquire cost %d, want %d (5 header words + HeaderCycles + lookup exchange)", got, 5+11+2)
	}
	xbar := r.FirmwareSchedule("xbar")
	if got := xbar.Phases[xbarPhaseHdr].Cycles; got != 4+9 {
		t.Fatalf("xbar hdr cost %d, want %d (rotation + AllocCycles)", got, 4+9)
	}

	// Steadiness: the macro flow analysis may only reason about phases
	// that present a constant per-cycle profile. The local-memory
	// buffering phases (two cycles per word, §4.4), the cache-probing
	// lookup, and the cipher must all be non-steady.
	steady := map[string][2]int{
		"ingress": {ingPhaseStream, ingPhaseIdle},
		"xbar":    {xbarPhaseStream, xbarPhaseHdr},
		"egress":  {egrPhaseCut, egrPhaseHdr},
		"lookup":  {lkPhaseAwait, lkPhaseAwait},
	}
	for kind, phases := range steady {
		s := r.FirmwareSchedule(kind)
		if s == nil || s.Kind != kind {
			t.Fatalf("FirmwareSchedule(%q) = %+v", kind, s)
		}
		for _, ph := range phases {
			if !s.Steady(ph) {
				t.Fatalf("%s phase %q should be steady", kind, s.PhaseName(ph))
			}
		}
	}
	for kind, ph := range map[string]int{
		"ingress": ingPhaseIngest, "egress": egrPhaseAsm, "lookup": lkPhaseProbe,
	} {
		if s := r.FirmwareSchedule(kind); s.Steady(ph) {
			t.Fatalf("%s phase %q must not be steady (multi-cycle-per-word / cache-dependent)", kind, s.PhaseName(ph))
		}
	}
	if s := r.FirmwareSchedule("egress"); s.Steady(egrPhaseCrypto) {
		t.Fatal("egress crypto phase must not be steady")
	}
	if r.FirmwareSchedule("nonesuch") != nil {
		t.Fatal("unknown firmware kind returned a schedule")
	}

	// PhaseIndex round-trips every compiled name.
	for _, s := range []*FWSchedule{ing, xbar, r.FirmwareSchedule("egress"), r.FirmwareSchedule("lookup")} {
		for i := range s.Phases {
			if got := s.PhaseIndex(s.Phases[i].Name); got != i {
				t.Fatalf("%s: PhaseIndex(%q) = %d, want %d", s.Kind, s.Phases[i].Name, got, i)
			}
		}
		if s.PhaseIndex("nonesuch") != -1 {
			t.Fatalf("%s: PhaseIndex of unknown name != -1", s.Kind)
		}
	}
}

// schedPointers snapshots the schedule pointer installed in every
// firmware instance.
func schedPointers(r *Router) [16]*FWSchedule {
	var ptr [16]*FWSchedule
	for p := 0; p < 4; p++ {
		ptr[4*p+0] = r.ings[p].sched
		ptr[4*p+1] = r.xbars[p].sched
		ptr[4*p+2] = r.egrs[p].sched
		ptr[4*p+3] = r.lookups[p].sched
	}
	return ptr
}

// TestFirmwareScheduleIdentityAcrossRestore: all four instances of a
// kind share one compiled schedule, and a degrade → restore arc leaves
// every installed pointer untouched — the re-admitted tile runs exactly
// the profile it was compiled with.
func TestFirmwareScheduleIdentityAcrossRestore(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := schedPointers(r)
	for p := 1; p < 4; p++ {
		if before[4*p] != r.scheds.ing || before[4*p+1] != r.scheds.xbar ||
			before[4*p+2] != r.scheds.egr || before[4*p+3] != r.scheds.lk {
			t.Fatalf("port %d firmware does not share the compiled schedules", p)
		}
	}

	if err := r.Degrade(2); err != nil {
		t.Fatal(err)
	}
	r.Run(2000)
	if err := r.Restore(2); err != nil {
		t.Fatal(err)
	}
	if !r.Chip.RunUntil(func() bool { return r.DeadPort() < 0 && !r.restoring && r.probationPort < 0 }, 500000) {
		t.Fatal("restore arc never completed")
	}
	if after := schedPointers(r); after != before {
		t.Fatal("degrade/restore changed an installed firmware schedule pointer")
	}
}
