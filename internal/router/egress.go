package router

import (
	"repro/internal/raw"
)

// egressFW is the Egress Processor firmware (§4.2/§4.3): complete packets
// cut through the switch straight to the output pins at one word per
// cycle; fragments of large packets are buffered in local data memory
// (two cycles per word, §4.4) until the last fragment arrives, then the
// reassembled packet streams out. Padding words the fabric used to keep
// granted streams in lockstep are drained and discarded here.
type egressFW struct {
	rt   *Router
	port int
	prog *EgressProgram

	// sched is the compiled cycle-cost schedule (shared by all four
	// egress instances, surviving degrade/restore/park); phase indexes
	// it. Written only while the tile executes firmware ops, read by the
	// macro-stepper between cycles (workers parked).
	sched *FWSchedule
	phase int

	// Reassembly buffers, one per source port.
	buf  [4][]raw.Word
	hdrW raw.Word
}

// SteadyState implements raw.SteadyFirmware: the compiled schedule says
// whether the current phase presents a constant per-cycle profile.
func (f *egressFW) SteadyState() bool { return f.sched.Steady(f.phase) }

func (f *egressFW) Refill(e *raw.Exec) {
	// Wait for the next egress header (stalls across idle quanta).
	f.phase = egrPhaseHdr
	e.WriteSwitchPC(func() raw.Word { return f.prog.Hdr })
	e.Recv(func(w raw.Word) { f.hdrW = w })
	e.Then(func(e *raw.Exec) {
		src, fragLen, l, last := DecodeEgressHdr(f.hdrW)
		if src < 0 || src > 3 || fragLen <= 0 || l < fragLen {
			panic("router: corrupt egress header")
		}
		if EgressHdrFirstOf(f.hdrW) && len(f.buf[src]) > 0 {
			// A packet's first fragment found stale fragments from the
			// same source: that packet was aborted upstream (underrun
			// timeout or degraded-mode reset) and will never complete.
			f.buf[src] = f.buf[src][:0]
		}
		pad := l - fragLen
		whole := last && len(f.buf[src]) == 0
		switch {
		case whole && f.rt.cfg.Crypto:
			// §8.3 computation-in-fabric: the payload was transformed in
			// the crossbar; the egress decrypts while forwarding
			// (Forward at one word per cycle plus the per-word cipher
			// cost modeled in CryptoCyclesPerWord).
			f.cryptoForward(e, fragLen, pad)
		case whole:
			// Cut-through: fragment = whole packet (the fast path behind
			// the paper's peak numbers). The pc goes first: the switch
			// consumes the count register only once it is inside the
			// routine, so pc-then-counts is the deadlock-free order.
			f.phase = egrPhaseCut
			e.WriteSwitchPC(func() raw.Word { return f.prog.Cut })
			e.WriteSwitchCount(func() raw.Word { return raw.Word(fragLen) })
			e.WriteSwitchCount(func() raw.Word { return raw.Word(pad) })
			e.RecvN(func() int { return pad }, 1, nil) // discard padding
			e.WaitSwitchDone(nil)
			e.Then(func(*raw.Exec) { f.rt.stats.PktsOut[f.port]++ })
		default:
			// Reassembly path: buffer the fragment (2 cycles/word into
			// local data memory, §4.4), stream the packet once complete.
			f.phase = egrPhaseAsm
			e.WriteSwitchPC(func() raw.Word { return f.prog.Asm })
			e.WriteSwitchCount(func() raw.Word { return raw.Word(l) })
			e.RecvN(func() int { return l }, 2, func(i int, w raw.Word) {
				if i < fragLen {
					f.buf[src] = append(f.buf[src], w)
				}
			})
			e.WaitSwitchDone(nil)
			if last {
				e.Then(func(e *raw.Exec) {
					total := len(f.buf[src])
					f.phase = egrPhaseOut
					e.WriteSwitchPC(func() raw.Word { return f.prog.Out })
					e.WriteSwitchCount(func() raw.Word { return raw.Word(total) })
					e.SendN(func() int { return total },
						func(i int) raw.Word { return f.buf[src][i] })
					e.WaitSwitchDone(nil)
					e.Then(func(*raw.Exec) {
						f.buf[src] = f.buf[src][:0]
						f.rt.stats.PktsOut[f.port]++
						f.rt.stats.Reassembled[f.port]++
					})
				})
			}
		}
	})
}

// resetForDegrade discards all in-flight reassembly state. The packets it
// abandons were fully streamed into the fabric, so they are accounted in
// Stats.FabricLost by the degrade procedure that calls this.
func (f *egressFW) resetForDegrade() {
	for i := range f.buf {
		f.buf[i] = f.buf[i][:0]
	}
	f.hdrW = 0
}

// quiet reports whether no partial packet sits in the reassembly
// buffers. Read between cycles by the restore quiescence check.
func (f *egressFW) quiet() bool {
	for i := range f.buf {
		if len(f.buf[i]) > 0 {
			return false
		}
	}
	return true
}

// cryptoForward receives the fragment through the processor, applies the
// per-word stream cipher to the payload (the IP header stays in the
// clear so the next hop can route), and forwards to the pin.
func (f *egressFW) cryptoForward(e *raw.Exec, fragLen, pad int) {
	f.phase = egrPhaseCrypto
	e.WriteSwitchPC(func() raw.Word { return f.prog.Forward })
	e.WriteSwitchCount(func() raw.Word { return raw.Word(fragLen + pad) })
	e.WriteSwitchCount(func() raw.Word { return raw.Word(fragLen) })
	// Receive fragLen+pad words, transform, send fragLen onward.
	words := make([]raw.Word, 0, fragLen)
	e.RecvN(func() int { return fragLen + pad }, 1, func(i int, w raw.Word) {
		if i < fragLen {
			if i >= 5 { // payload words only
				w ^= CryptoMask(f.rt.cfg.CryptoKey, i-5)
			}
			words = append(words, w)
		}
	})
	e.Compute(f.rt.cfg.CryptoCyclesPerWord * fragLen)
	e.SendN(func() int { return fragLen }, func(i int) raw.Word { return words[i] })
	e.WaitSwitchDone(nil)
	e.Then(func(*raw.Exec) { f.rt.stats.PktsOut[f.port]++ })
}

// CryptoMask is the deterministic keystream of the §8.3 demonstration
// service: a xorshift word stream seeded by the key and the payload word
// index.
func CryptoMask(key uint32, i int) raw.Word {
	x := uint64(key)<<32 | uint64(uint32(i)*2654435761+1)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return raw.Word(x)
}
