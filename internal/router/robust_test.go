package router_test

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/traffic"
)

// TestCycleQoSWeightedToken (§8.7 at cycle level): token dwell weights
// {3,1,1,1} give port 0 ≈ half of a contended egress.
func TestCycleQoSWeightedToken(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.Weights = []int{3, 1, 1, 1}
	r := mustNew(t, cfg)
	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(2, uint32(id)), 64, 256, id)
	}
	for c := 0; c < 80000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	var total int64
	for p := 0; p < 4; p++ {
		total += r.Stats().PktsIn[p]
	}
	share := float64(r.Stats().PktsIn[0]) / float64(total)
	if share < 0.42 || share > 0.58 {
		t.Fatalf("premium port share %.3f, want ≈0.50 (w/(w+3) with w=3)", share)
	}
}

func TestWeightsValidation(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.Weights = []int{1, 2}
	if _, err := router.New(cfg); err == nil {
		t.Fatal("bad weights accepted")
	}
}

// TestInputUnderrunRecovers: a packet whose payload arrives late stalls
// the fabric (flow control) but recovers without corruption — the
// line-rate coupling the thesis's flow-controlled static network handles.
func TestInputUnderrunRecovers(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 2), 64, 256, 5)
	words := pkt.Words()

	in := r.Chip.StaticIn(router.Layout[0].Ingress, router.Layout[0].InSide)
	// Header only: the ingress will start the quantum, get granted, and
	// stall streaming.
	for _, w := range words[:ip.HeaderWords] {
		in.Push(raw.Word(w))
	}
	r.Run(5000)
	if r.Stats().PktsOut[1] != 0 {
		t.Fatal("packet delivered before its payload arrived")
	}
	// Late payload.
	for _, w := range words[ip.HeaderWords:] {
		in.Push(raw.Word(w))
	}
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= 1 }, 20000) {
		t.Fatalf("fabric did not recover from input underrun; stats %+v", r.Stats())
	}
	out, err := r.DrainOutput(1)
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for i := range pkt.Payload {
		if out[0].Payload[i] != pkt.Payload[i] {
			t.Fatalf("payload word %d corrupted after underrun", i)
		}
	}
}

// TestGarbageFrameOnTheWire: a length-consistent but checksum-corrupt
// frame is dropped and drained; a following good packet goes through.
func TestGarbageFrameOnTheWire(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	garbage := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 2), 64, 64, 6)
	gw := garbage.Words()
	gw[3] ^= 0xdeadbeef // corrupt source: checksum now fails, length intact
	in := r.Chip.StaticIn(router.Layout[0].Ingress, router.Layout[0].InSide)
	for _, w := range gw {
		in.Push(raw.Word(w))
	}
	good := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 2), 64, 64, 7)
	r.OfferPacket(0, &good)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= 1 }, 40000) {
		t.Fatalf("good packet stuck behind garbage; stats %+v", r.Stats())
	}
	if r.Stats().Dropped[0] != 1 {
		t.Fatalf("dropped %d, want 1", r.Stats().Dropped[0])
	}
	out, err := r.DrainOutput(1)
	if err != nil || len(out) != 1 || out[0].Header.ID != 7 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
}

// TestHotspotSustained: all inputs flooding one egress deliver at exactly
// one output's line rate, shared fairly.
func TestHotspotSustained(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(3, uint32(id)), 64, 1024, id)
	}
	for c := 0; c < 100000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	if r.Stats().PktsOut[0]+r.Stats().PktsOut[1]+r.Stats().PktsOut[2] != 0 {
		t.Fatal("packets leaked to non-hotspot outputs")
	}
	gbps := r.ThroughputGbps()
	// One egress at ~1 word/cycle minus per-quantum overhead ≈ 6.3 Gbps.
	if gbps < 5.0 || gbps > 8.0 {
		t.Fatalf("hotspot throughput %.2f Gbps, want ≈ one port's line rate", gbps)
	}
	var lo, hi int64 = 1 << 62, 0
	for p := 0; p < 4; p++ {
		g := r.Stats().PktsIn[p]
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	if hi-lo > hi/10 {
		t.Fatalf("hotspot service unfair: per-input %v", r.Stats().PktsIn)
	}
}

// TestHeaderOnlyPacket routes a minimum-size (header-only) IP packet.
func TestHeaderOnlyPacket(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 2), 64, ip.HeaderBytes, 9)
	r.OfferPacket(0, &pkt)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[2] >= 1 }, 20000) {
		t.Fatalf("header-only packet never delivered; stats %+v", r.Stats())
	}
	out, err := r.DrainOutput(2)
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	if out[0].LenWords() != ip.HeaderWords {
		t.Fatalf("delivered %d words", out[0].LenWords())
	}
}

// TestBackToBackMixedSizes interleaves every size on one port and checks
// ordering is preserved per input (FIFO service, §4.4).
func TestBackToBackMixedSizes(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	var want []uint16
	id := uint16(100)
	for _, size := range []int{64, 1024, 128, 512, 64, 2048, 256} {
		id++
		pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, uint32(id)), 64, size, id)
		r.OfferPacket(0, &pkt)
		want = append(want, id)
	}
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= int64(len(want)) }, 100000) {
		t.Fatalf("only %d of %d delivered", r.Stats().PktsOut[1], len(want))
	}
	out, err := r.DrainOutput(1)
	if err != nil || len(out) != len(want) {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for i, pkt := range out {
		if pkt.Header.ID != want[i] {
			t.Fatalf("delivery %d has ID %d, want %d (order violated)", i, pkt.Header.ID, want[i])
		}
	}
}

// TestSecondNetworkIdleCapacity (§6.5/§8.1): the router leaves the second
// static network completely unused ("the second Raw static network ...
// have not been used in the algorithm"); an independent stream can cross
// the same tiles at full rate while the router runs at full load — the
// spare capacity §8.1 proposes exploiting.
func TestSecondNetworkIdleCapacity(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	// Route a background stream straight across row 1 — through the
	// ingress and crossbar tiles (4, 5, 6, 7) — on static network 1.
	for _, tile := range []int{4, 5, 6, 7} {
		err := r.Chip.Tile(tile).SetSwitchProgramOn(1, []raw.SwInstr{
			{Op: raw.SwJump, Arg: 0, Routes: []raw.Route{{Dst: raw.DirE, Src: raw.DirW}}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	bg := r.Chip.StaticInOn(1, 4, raw.DirW)
	const bgWords = 20000
	for i := 0; i < bgWords; i++ {
		bg.Push(raw.Word(i))
	}

	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr((p+1)%4, uint32(id)), 64, 1024, id)
	}
	for c := 0; c < 30000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}

	// The router ran at full speed...
	gbps := r.ThroughputGbps()
	if gbps < 20 {
		t.Fatalf("router throughput %.2f Gbps degraded by the background stream", gbps)
	}
	// ...and the background stream crossed at one word per cycle.
	out, cycles := r.Chip.StaticOutOn(1, 7, raw.DirE).Drain()
	if len(out) != bgWords {
		t.Fatalf("background stream delivered %d of %d words", len(out), bgWords)
	}
	span := cycles[len(cycles)-1] - cycles[0]
	if span > int64(bgWords)+16 {
		t.Fatalf("background stream took %d cycles for %d words: not full rate", span, bgWords)
	}
	for i, w := range out {
		if w != raw.Word(i) {
			t.Fatalf("background word %d corrupted", i)
		}
	}
}

// TestTOSPriority (§8.7): packets carrying a high IP precedence (TOS)
// keep full service of a contended egress; best-effort packets wait.
func TestTOSPriority(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(2, uint32(id)), 64, 256, id)
		if p == 0 {
			// Port 0's flow is premium: precedence 5 (TOS 0xA0).
			pkt.Header.TOS = 0xA0
		}
		return pkt
	}
	for c := 0; c < 60000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	var total int64
	for p := 0; p < 4; p++ {
		total += r.Stats().PktsIn[p]
	}
	share := float64(r.Stats().PktsIn[0]) / float64(total)
	// Strict priority: the premium input owns the egress almost entirely.
	if share < 0.9 {
		t.Fatalf("premium TOS share %.3f, want ≈ 1.0 (strict priority)", share)
	}
	if r.Stats().PktsIn[1]+r.Stats().PktsIn[2]+r.Stats().PktsIn[3] == 0 {
		// Best effort gets only the quanta the premium flow leaves (its
		// own per-packet acquire gaps); zero would mean the model starves
		// even those — acceptable for strict priority, so no assertion.
		t.Log("best-effort fully starved under saturated premium class (strict priority)")
	}
}

// TestDropConservation: with a fraction of checksum-corrupt frames mixed
// into the wire, every offered packet is accounted for — delivered or
// counted in Stats.Dropped — under both uniform and hotspot workloads.
func TestDropConservation(t *testing.T) {
	for _, hotspot := range []bool{false, true} {
		r := mustNew(t, router.DefaultConfig())
		rng := traffic.NewRNG(31)
		id := uint16(0)
		var offered, corrupted int64
		feed := func() {
			for p := 0; p < 4; p++ {
				in := r.Chip.StaticIn(router.Layout[p].Ingress, router.Layout[p].InSide)
				for r.InputBacklogWords(p) < 2048 {
					id++
					dst := rng.Intn(4)
					if hotspot {
						dst = 3
					}
					pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(dst, uint32(id)), 64, 256, id)
					words := pkt.Words()
					if id%5 == 0 { // every 5th frame arrives checksum-corrupt
						words[4] ^= 0x100
						corrupted++
					}
					for _, w := range words {
						in.Push(raw.Word(w))
					}
					offered++
				}
			}
		}
		for c := 0; c < 30000; c += 200 {
			feed()
			r.Run(200)
		}
		r.Run(60000) // drain to quiescence

		var dropped, out int64
		for p := 0; p < 4; p++ {
			dropped += r.Stats().Dropped[p]
			out += r.Stats().PktsOut[p]
			if r.InFlightAtIngress(p) != 0 || r.PendingDrainWords(p) != 0 || r.InputBacklogWords(p) != 0 {
				t.Fatalf("hotspot=%v port %d not quiescent", hotspot, p)
			}
		}
		if dropped != corrupted {
			t.Fatalf("hotspot=%v: dropped %d, corrupted %d", hotspot, dropped, corrupted)
		}
		if offered != dropped+out {
			t.Fatalf("hotspot=%v conservation: offered %d != dropped %d + delivered %d",
				hotspot, offered, dropped, out)
		}
	}
}

// TestInterleavedReassembly: large packets from two inputs to the same
// egress fragment and interleave quantum by quantum; the egress's
// per-source reassembly buffers keep both packets intact.
func TestInterleavedReassembly(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.QuantumWords = 64 // force multi-fragment packets
	r := mustNew(t, cfg)
	a := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 5), 64, 1024, 10)
	b := ip.NewPacket(traffic.PortAddr(1, 2), traffic.PortAddr(2, 6), 64, 1024, 11)
	r.OfferPacket(0, &a)
	r.OfferPacket(1, &b)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[2] >= 2 }, 100000) {
		t.Fatalf("interleaved packets incomplete; %+v", r.Stats())
	}
	out, err := r.DrainOutput(2)
	if err != nil || len(out) != 2 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	byID := map[uint16]ip.Packet{out[0].Header.ID: out[0], out[1].Header.ID: out[1]}
	for id, want := range map[uint16]*ip.Packet{10: &a, 11: &b} {
		got, ok := byID[id]
		if !ok {
			t.Fatalf("packet %d missing", id)
		}
		for i := range want.Payload {
			if got.Payload[i] != want.Payload[i] {
				t.Fatalf("packet %d payload word %d corrupted (interleaved reassembly)", id, i)
			}
		}
	}
	if r.Stats().Reassembled[2] != 2 {
		t.Fatalf("reassembled %d, want 2", r.Stats().Reassembled[2])
	}
}
