// Package router implements the paper's 4-port single-chip router on the
// cycle-level Raw simulator: the tile partitioning of Chapter 4 (Figure
// 4-1/7-2), the Rotating Crossbar switch fabric of Chapter 5 running as
// generated static-switch programs (Chapter 6), and the
// ingress/lookup/egress firmware around it.
//
// Protocol summary (one routing quantum, Figure 6-2):
//
//  1. Every ingress sends one local header word to its crossbar tile
//     (HdrEmpty if its queue is empty).
//  2. The four crossbar switches rotate all four headers around the ring
//     (4 switch instructions); every crossbar processor now holds all
//     headers plus the token and computes the same allocation
//     (rotor.Allocate), the switch-code jump-table index, and the
//     quantum's streaming length L.
//  3. Each crossbar tile sends a grant word back to its ingress and, if
//     its egress receives data this quantum, an egress header word ahead
//     of the body.
//  4. Each crossbar processor loads its switch's program counter with the
//     configuration's routine (§6.5); the routine streams the body with
//     software-pipelined route activation (the §6.2 expansion numbers),
//     then confirms completion.
//  5. The token advances; granted ingresses retire fragments; egresses
//     cut complete packets through to the output pins or reassemble
//     multi-fragment packets in local memory (§4.3).
package router

import "repro/internal/raw"

// Role is a tile's function in the router partitioning (Figure 4-1).
type Role uint8

// The four roles plus unused tiles.
const (
	RoleUnused Role = iota
	RoleIngress
	RoleLookup
	RoleCrossbar
	RoleEgress
)

// String names the role as in the paper.
func (r Role) String() string {
	switch r {
	case RoleIngress:
		return "Ingress"
	case RoleLookup:
		return "Lookup"
	case RoleCrossbar:
		return "Crossbar"
	case RoleEgress:
		return "Egress"
	}
	return "unused"
}

// PortTiles is the tile assignment of one router port.
type PortTiles struct {
	Ingress  int
	Lookup   int
	Crossbar int
	Egress   int
	// InSide is the chip edge the input line card connects to (on the
	// ingress tile); OutSide the output line card's edge (egress tile).
	InSide  raw.Dir
	OutSide raw.Dir
}

// Layout maps the router onto the 4x4 Raw chip exactly as Figure 7-2:
//
//	      Out0        Out1
//	   0 |  1  |  2  |  3
//	In0→ 4 |  5* |  6* |  7 ←In1
//	In3→ 8 |  9* | 10* | 11 ←In2
//	  12 | 13  | 14  | 15
//	      Out3        Out2
//
// Crossbar ring, clockwise (token order): 5 → 6 → 10 → 9 → 5.
var Layout = [4]PortTiles{
	{Ingress: 4, Lookup: 0, Crossbar: 5, Egress: 1, InSide: raw.DirW, OutSide: raw.DirN},
	{Ingress: 7, Lookup: 3, Crossbar: 6, Egress: 2, InSide: raw.DirE, OutSide: raw.DirN},
	{Ingress: 11, Lookup: 15, Crossbar: 10, Egress: 14, InSide: raw.DirE, OutSide: raw.DirS},
	{Ingress: 8, Lookup: 12, Crossbar: 9, Egress: 13, InSide: raw.DirW, OutSide: raw.DirS},
}

// XbarDirs gives crossbar tile p's physical mesh directions for the
// logical ring/port connections (ring clockwise 5→6→10→9→5).
type XbarDirs struct {
	In      raw.Dir // from/to the ingress tile (full duplex)
	Out     raw.Dir // to the egress tile
	CWNext  raw.Dir // to the clockwise-downstream crossbar tile
	CWPrev  raw.Dir // from the clockwise-upstream crossbar tile
	CCWNext raw.Dir // to the counterclockwise-downstream tile (= CWPrev side)
	CCWPrev raw.Dir // from the counterclockwise-upstream tile (= CWNext side)
}

// XbarDirsOf returns the direction map of port p's crossbar tile.
func XbarDirsOf(p int) XbarDirs {
	switch p {
	case 0: // tile 5: ingress W(4), egress N(1), cw-next E(6), cw-prev S(9)
		return XbarDirs{In: raw.DirW, Out: raw.DirN, CWNext: raw.DirE, CWPrev: raw.DirS,
			CCWNext: raw.DirS, CCWPrev: raw.DirE}
	case 1: // tile 6: ingress E(7), egress N(2), cw-next S(10), cw-prev W(5)
		return XbarDirs{In: raw.DirE, Out: raw.DirN, CWNext: raw.DirS, CWPrev: raw.DirW,
			CCWNext: raw.DirW, CCWPrev: raw.DirS}
	case 2: // tile 10: ingress E(11), egress S(14), cw-next W(9), cw-prev N(6)
		return XbarDirs{In: raw.DirE, Out: raw.DirS, CWNext: raw.DirW, CWPrev: raw.DirN,
			CCWNext: raw.DirN, CCWPrev: raw.DirW}
	case 3: // tile 9: ingress W(8), egress S(13), cw-next N(5), cw-prev E(10)
		return XbarDirs{In: raw.DirW, Out: raw.DirS, CWNext: raw.DirN, CWPrev: raw.DirE,
			CCWNext: raw.DirE, CCWPrev: raw.DirN}
	}
	panic("router: bad port")
}

// IngressDirs gives ingress tile p's physical directions.
type IngressDirs struct {
	Edge   raw.Dir // the input line card
	Lookup raw.Dir // the lookup tile
	Xbar   raw.Dir // the crossbar tile (full duplex)
}

// IngressDirsOf returns the direction map of port p's ingress tile.
func IngressDirsOf(p int) IngressDirs {
	switch p {
	case 0: // tile 4: edge W, lookup N(0), xbar E(5)
		return IngressDirs{Edge: raw.DirW, Lookup: raw.DirN, Xbar: raw.DirE}
	case 1: // tile 7: edge E, lookup N(3), xbar W(6)
		return IngressDirs{Edge: raw.DirE, Lookup: raw.DirN, Xbar: raw.DirW}
	case 2: // tile 11: edge E, lookup S(15), xbar W(10)
		return IngressDirs{Edge: raw.DirE, Lookup: raw.DirS, Xbar: raw.DirW}
	case 3: // tile 8: edge W, lookup S(12), xbar E(9)
		return IngressDirs{Edge: raw.DirW, Lookup: raw.DirS, Xbar: raw.DirE}
	}
	panic("router: bad port")
}

// EgressDirs gives egress tile p's physical directions.
type EgressDirs struct {
	Edge raw.Dir // the output line card
	Xbar raw.Dir // the crossbar tile
}

// EgressDirsOf returns the direction map of port p's egress tile.
func EgressDirsOf(p int) EgressDirs {
	switch p {
	case 0: // tile 1: edge N, xbar S(5)
		return EgressDirs{Edge: raw.DirN, Xbar: raw.DirS}
	case 1: // tile 2: edge N, xbar S(6)
		return EgressDirs{Edge: raw.DirN, Xbar: raw.DirS}
	case 2: // tile 14: edge S, xbar N(10)
		return EgressDirs{Edge: raw.DirS, Xbar: raw.DirN}
	case 3: // tile 13: edge S, xbar N(9)
		return EgressDirs{Edge: raw.DirS, Xbar: raw.DirN}
	}
	panic("router: bad port")
}

// LookupDirs gives lookup tile p's physical direction to its ingress.
func LookupDirsOf(p int) raw.Dir {
	switch p {
	case 0: // tile 0: ingress S(4)
		return raw.DirS
	case 1: // tile 3: ingress S(7)
		return raw.DirS
	case 2: // tile 15: ingress N(11)
		return raw.DirN
	case 3: // tile 12: ingress N(8)
		return raw.DirN
	}
	panic("router: bad port")
}

// NumTiles is the chip tile count covered by Layout (the 4x4 mesh of
// Figure 7-2), derived from the largest tile index in the mapping so
// callers sizing per-tile structures cannot drift from the layout.
var NumTiles = func() int {
	max := 0
	for _, pt := range Layout {
		for _, t := range []int{pt.Ingress, pt.Lookup, pt.Crossbar, pt.Egress} {
			if t > max {
				max = t
			}
		}
	}
	return max + 1
}()

// TileOrder returns every chip tile index in ascending order — the
// canonical iteration order for per-tile reports (trace summaries, the
// telemetry tile table). The slice is freshly allocated; callers may
// reorder it.
func TileOrder() []int {
	order := make([]int, NumTiles)
	for i := range order {
		order[i] = i
	}
	return order
}

// RoleOf returns the role of a tile in the 4x4 layout.
func RoleOf(tile int) (Role, int) {
	for p, pt := range Layout {
		switch tile {
		case pt.Ingress:
			return RoleIngress, p
		case pt.Lookup:
			return RoleLookup, p
		case pt.Crossbar:
			return RoleCrossbar, p
		case pt.Egress:
			return RoleEgress, p
		}
	}
	return RoleUnused, -1
}
