package router

import (
	"fmt"

	"repro/internal/raw"
)

// Deterministic router checkpoints (robustness extension). The chip
// layer checkpoints by record-replay (see internal/raw/snapshot.go): the
// blob holds every boundary input ever pushed, and restoring replays
// them through a fresh chip, which re-derives all firmware state —
// including this router's counters, degraded/restore state machine, and
// scheduled controls — bit for bit. The router wrapper adds the state
// that lives OUTSIDE the replayed simulation: the output-parse cursors
// (DrainOutput consumes sink words at arbitrary harness times that the
// replay does not repeat) and a copy of Stats and the recovery state,
// used purely to verify that the replay converged to the checkpointed
// run rather than diverging.
//
// A restored run is bit-for-bit identical to an uninterrupted one
// provided the original run's inputs were all simulation inputs: words
// offered at the pins, fault schedules, and scheduled recovery controls
// (ScheduleRestore/ScheduleReprobe). Manual Degrade/Restore calls
// between Run calls are not recorded — use the scheduled forms in runs
// that will be checkpointed.

const rtrSnapMagic = "RTRCKPT1"

// Snapshot serializes the router at the current cycle. Requires
// Config.Checkpoint (input recording from construction). Call between
// Run calls only.
func (r *Router) Snapshot() ([]byte, error) {
	if !r.cfg.Checkpoint {
		return nil, fmt.Errorf("router: snapshot requires Config.Checkpoint")
	}
	chip, err := r.Chip.Snapshot()
	if err != nil {
		return nil, err
	}
	b := []byte(rtrSnapMagic)
	b = rle64(b, uint64(len(chip)))
	b = append(b, chip...)
	for p := 0; p < 4; p++ {
		b = rle64(b, uint64(r.parsed[p]))
		b = rle64(b, uint64(len(r.parseBuf[p])))
		for _, w := range r.parseBuf[p] {
			b = rle32(b, w)
		}
		b = rle64(b, uint64(len(r.cuts[p])))
		for _, c := range r.cuts[p] {
			b = rle64(b, uint64(c))
		}
		b = rle64(b, uint64(r.outs[p].Count()-int64(r.outs[p].Held())))
	}
	// Mid-run table updates: DRAM pokes live outside the chip's input
	// log, so the blob carries them and restore re-applies them at the
	// recorded cycles.
	b = rle64(b, uint64(len(r.tableLog)))
	for _, u := range r.tableLog {
		b = rle64(b, uint64(u.cycle))
		b = rle64(b, uint64(len(u.segs)))
		for _, seg := range u.segs {
			b = rle64(b, uint64(seg.Addr))
			b = rle64(b, uint64(len(seg.Words)))
			for _, w := range seg.Words {
				b = rle32(b, w)
			}
		}
	}
	for _, v := range r.stateWords() {
		b = rle64(b, uint64(v))
	}
	return b, nil
}

// RestoreSnapshot rebuilds the checkpointed state on a freshly
// constructed router. The receiver must have been built with the same
// Config (Checkpoint included), the same fault injector installed, and
// the same recovery controls scheduled as the run that produced the
// blob — the chip replay re-derives all firmware and recovery state from
// those, and the restore fails with a divergence error if the replayed
// counters do not match the checkpoint.
func (r *Router) RestoreSnapshot(blob []byte) error {
	if !r.cfg.Checkpoint {
		return fmt.Errorf("router: restore requires Config.Checkpoint")
	}
	rd := rtrReader{buf: blob}
	magic := rd.bytes(len(rtrSnapMagic))
	if rd.err != nil || string(magic) != rtrSnapMagic {
		return fmt.Errorf("router: not a router snapshot")
	}
	chip := rd.bytes(int(rd.u64()))
	type portState struct {
		parsed   int64
		parseBuf []uint32
		cuts     []int64
		drained  int64
	}
	var ports [4]portState
	for p := 0; p < 4; p++ {
		ps := &ports[p]
		ps.parsed = int64(rd.u64())
		ps.parseBuf = make([]uint32, rd.u64())
		for i := range ps.parseBuf {
			ps.parseBuf[i] = rd.u32()
		}
		ps.cuts = make([]int64, rd.u64())
		for i := range ps.cuts {
			ps.cuts[i] = int64(rd.u64())
		}
		ps.drained = int64(rd.u64())
	}
	nupd := rd.u64()
	if nupd > uint64(len(blob)) {
		return fmt.Errorf("router: corrupt snapshot (table update count)")
	}
	log := make([]tableUpdate, 0, nupd)
	for n := nupd; n > 0 && rd.err == nil; n-- {
		u := tableUpdate{cycle: int64(rd.u64())}
		nsegs := rd.u64()
		if nsegs > uint64(len(blob)) {
			return fmt.Errorf("router: corrupt snapshot (table segment count)")
		}
		for s := nsegs; s > 0 && rd.err == nil; s-- {
			seg := TableSegment{Addr: raw.Word(rd.u64())}
			nw := rd.u64()
			if nw > uint64(len(blob)) {
				return fmt.Errorf("router: corrupt snapshot (table word count)")
			}
			seg.Words = make([]uint32, 0, nw)
			for w := nw; w > 0 && rd.err == nil; w-- {
				seg.Words = append(seg.Words, rd.u32())
			}
			u.segs = append(u.segs, seg)
		}
		log = append(log, u)
	}
	want := make([]int64, len(r.stateWords()))
	for i := range want {
		want[i] = int64(rd.u64())
	}
	if rd.err != nil {
		return fmt.Errorf("router: truncated snapshot")
	}
	if rd.off != len(blob) {
		return fmt.Errorf("router: %d trailing bytes in snapshot", len(blob)-rd.off)
	}

	// Replay the simulation, re-poking each recorded table update at its
	// cycle; firmware and recovery state re-derive.
	ops := make([]raw.ReplayOp, len(log))
	for i := range log {
		u := log[i]
		epoch := i + 1
		ops[i] = raw.ReplayOp{Cycle: u.cycle, Apply: func() {
			for _, seg := range u.segs {
				words := make([]raw.Word, len(seg.Words))
				for j, w := range seg.Words {
					words[j] = raw.Word(w)
				}
				r.Mem.PokeWords(seg.Addr, words)
			}
			// The lookup firmware reads tableEpoch live to pick the
			// double-buffer bases, so the flip must replay at the same
			// cycle as the pokes or every subsequent lookup probes the
			// stale epoch's addresses.
			r.tableEpoch = epoch
		}}
	}
	if err := r.Chip.RestoreSnapshotOps(chip, ops); err != nil {
		return err
	}
	r.tableLog = log
	r.tableEpoch = len(log)
	got := r.stateWords()
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("router: replay diverged from checkpoint (state word %d: %d != %d); was the run driven by unrecorded manual calls?",
				i, got[i], want[i])
		}
	}

	// Re-apply the harness-side parse cursors: drop the sink words the
	// checkpointed run had already drained, restore the partial tails.
	for p := 0; p < 4; p++ {
		ps := &ports[p]
		if int64(r.outs[p].Held()) < ps.drained {
			return fmt.Errorf("router: replay emitted fewer words on port %d than the checkpoint drained", p)
		}
		r.outs[p].DropFront(int(ps.drained))
		r.parsed[p] = ps.parsed
		r.parseBuf[p] = append(r.parseBuf[p][:0], ps.parseBuf...)
		r.cuts[p] = append(r.cuts[p][:0], ps.cuts...)
	}
	return nil
}

// stateWords flattens the replay-derived router state the restore
// verifies: every Stats counter plus the recovery state machine.
func (r *Router) stateWords() []int64 {
	var w []int64
	for p := 0; p < 4; p++ {
		w = append(w,
			r.stats.Accepted[p], r.stats.Dropped[p], r.stats.Denied[p],
			r.stats.FragsSent[p], r.stats.PktsIn[p], r.stats.PktsOut[p],
			r.stats.Reassembled[p], r.stats.Lookups[p], r.stats.McastIn[p],
			r.stats.McastCopies[p], r.stats.AbortDropped[p], r.stats.Underruns[p],
			r.stats.Reprobes[p], r.stats.Recovered[p], r.stats.FlapDrops[p])
	}
	w = append(w, r.stats.FabricLost, int64(r.deadPort), int64(r.probationPort),
		int64(r.tableEpoch))
	flags := int64(0)
	if r.failed {
		flags |= 1
	}
	if r.restoring {
		flags |= 2
	}
	return append(w, flags)
}

func rle32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func rle64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// rtrReader is a bounds-checked little-endian cursor; err latches.
type rtrReader struct {
	buf []byte
	off int
	err error
}

func (r *rtrReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("short read")
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *rtrReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *rtrReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
