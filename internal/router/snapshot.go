package router

import "fmt"

// Deterministic router checkpoints (robustness extension). The chip
// layer checkpoints by record-replay (see internal/raw/snapshot.go): the
// blob holds every boundary input ever pushed, and restoring replays
// them through a fresh chip, which re-derives all firmware state —
// including this router's counters, degraded/restore state machine, and
// scheduled controls — bit for bit. The router wrapper adds the state
// that lives OUTSIDE the replayed simulation: the output-parse cursors
// (DrainOutput consumes sink words at arbitrary harness times that the
// replay does not repeat) and a copy of Stats and the recovery state,
// used purely to verify that the replay converged to the checkpointed
// run rather than diverging.
//
// A restored run is bit-for-bit identical to an uninterrupted one
// provided the original run's inputs were all simulation inputs: words
// offered at the pins, fault schedules, and scheduled recovery controls
// (ScheduleRestore/ScheduleReprobe). Manual Degrade/Restore calls
// between Run calls are not recorded — use the scheduled forms in runs
// that will be checkpointed.

const rtrSnapMagic = "RTRCKPT1"

// Snapshot serializes the router at the current cycle. Requires
// Config.Checkpoint (input recording from construction). Call between
// Run calls only.
func (r *Router) Snapshot() ([]byte, error) {
	if !r.cfg.Checkpoint {
		return nil, fmt.Errorf("router: snapshot requires Config.Checkpoint")
	}
	chip, err := r.Chip.Snapshot()
	if err != nil {
		return nil, err
	}
	b := []byte(rtrSnapMagic)
	b = rle64(b, uint64(len(chip)))
	b = append(b, chip...)
	for p := 0; p < 4; p++ {
		b = rle64(b, uint64(r.parsed[p]))
		b = rle64(b, uint64(len(r.parseBuf[p])))
		for _, w := range r.parseBuf[p] {
			b = rle32(b, w)
		}
		b = rle64(b, uint64(len(r.cuts[p])))
		for _, c := range r.cuts[p] {
			b = rle64(b, uint64(c))
		}
		b = rle64(b, uint64(r.outs[p].Count()-int64(r.outs[p].Held())))
	}
	for _, v := range r.stateWords() {
		b = rle64(b, uint64(v))
	}
	return b, nil
}

// RestoreSnapshot rebuilds the checkpointed state on a freshly
// constructed router. The receiver must have been built with the same
// Config (Checkpoint included), the same fault injector installed, and
// the same recovery controls scheduled as the run that produced the
// blob — the chip replay re-derives all firmware and recovery state from
// those, and the restore fails with a divergence error if the replayed
// counters do not match the checkpoint.
func (r *Router) RestoreSnapshot(blob []byte) error {
	if !r.cfg.Checkpoint {
		return fmt.Errorf("router: restore requires Config.Checkpoint")
	}
	rd := rtrReader{buf: blob}
	magic := rd.bytes(len(rtrSnapMagic))
	if rd.err != nil || string(magic) != rtrSnapMagic {
		return fmt.Errorf("router: not a router snapshot")
	}
	chip := rd.bytes(int(rd.u64()))
	type portState struct {
		parsed   int64
		parseBuf []uint32
		cuts     []int64
		drained  int64
	}
	var ports [4]portState
	for p := 0; p < 4; p++ {
		ps := &ports[p]
		ps.parsed = int64(rd.u64())
		ps.parseBuf = make([]uint32, rd.u64())
		for i := range ps.parseBuf {
			ps.parseBuf[i] = rd.u32()
		}
		ps.cuts = make([]int64, rd.u64())
		for i := range ps.cuts {
			ps.cuts[i] = int64(rd.u64())
		}
		ps.drained = int64(rd.u64())
	}
	want := make([]int64, len(r.stateWords()))
	for i := range want {
		want[i] = int64(rd.u64())
	}
	if rd.err != nil {
		return fmt.Errorf("router: truncated snapshot")
	}
	if rd.off != len(blob) {
		return fmt.Errorf("router: %d trailing bytes in snapshot", len(blob)-rd.off)
	}

	// Replay the simulation; firmware and recovery state re-derive.
	if err := r.Chip.RestoreSnapshot(chip); err != nil {
		return err
	}
	got := r.stateWords()
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("router: replay diverged from checkpoint (state word %d: %d != %d); was the run driven by unrecorded manual calls?",
				i, got[i], want[i])
		}
	}

	// Re-apply the harness-side parse cursors: drop the sink words the
	// checkpointed run had already drained, restore the partial tails.
	for p := 0; p < 4; p++ {
		ps := &ports[p]
		if int64(r.outs[p].Held()) < ps.drained {
			return fmt.Errorf("router: replay emitted fewer words on port %d than the checkpoint drained", p)
		}
		r.outs[p].DropFront(int(ps.drained))
		r.parsed[p] = ps.parsed
		r.parseBuf[p] = append(r.parseBuf[p][:0], ps.parseBuf...)
		r.cuts[p] = append(r.cuts[p][:0], ps.cuts...)
	}
	return nil
}

// stateWords flattens the replay-derived router state the restore
// verifies: every Stats counter plus the recovery state machine.
func (r *Router) stateWords() []int64 {
	var w []int64
	for p := 0; p < 4; p++ {
		w = append(w,
			r.stats.Accepted[p], r.stats.Dropped[p], r.stats.Denied[p],
			r.stats.FragsSent[p], r.stats.PktsIn[p], r.stats.PktsOut[p],
			r.stats.Reassembled[p], r.stats.Lookups[p], r.stats.McastIn[p],
			r.stats.McastCopies[p], r.stats.AbortDropped[p], r.stats.Underruns[p],
			r.stats.Reprobes[p], r.stats.Recovered[p], r.stats.FlapDrops[p])
	}
	w = append(w, r.stats.FabricLost, int64(r.deadPort), int64(r.probationPort))
	flags := int64(0)
	if r.failed {
		flags |= 1
	}
	if r.restoring {
		flags |= 2
	}
	return append(w, flags)
}

func rle32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func rle64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// rtrReader is a bounds-checked little-endian cursor; err latches.
type rtrReader struct {
	buf []byte
	off int
	err error
}

func (r *rtrReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("short read")
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *rtrReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *rtrReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
