package router_test

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/rotor"
	"repro/internal/router"
	"repro/internal/traffic"
)

// TestNoDeadlockExhaustive (experiment E10, §5.5): for every destination
// vector — all 5⁴ = 625 combinations of {no packet, to port 0..3} across
// the four inputs, including full output conflicts — the cycle-level
// router delivers every offered packet through the generated switch
// programs within a bounded number of cycles. This is the end-to-end
// form of the paper's deadlock-freedom claim: not just that the
// allocation is conflict-free (rotor's exhaustive test), but that the
// software-pipelined switch code executing it never wedges the static
// network.
func TestNoDeadlockExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	for vec := 0; vec < 625; vec++ {
		dsts := [4]int{}
		v := vec
		offered := 0
		for p := 0; p < 4; p++ {
			dsts[p] = v%5 - 1 // -1 = no packet
			v /= 5
			if dsts[p] >= 0 {
				offered++
			}
		}
		if offered == 0 {
			continue
		}
		r := mustNew(t, router.DefaultConfig())
		for p := 0; p < 4; p++ {
			if dsts[p] < 0 {
				continue
			}
			pkt := ip.NewPacket(traffic.PortAddr(p, 1), traffic.PortAddr(dsts[p], 2), 64, 128, uint16(vec))
			r.OfferPacket(p, &pkt)
		}
		ok := r.Chip.RunUntil(func() bool {
			return int(r.TotalPktsOut()) >= offered
		}, 30000)
		if !ok {
			t.Fatalf("vector %v: only %d of %d packets delivered (deadlock or livelock)",
				dsts, r.TotalPktsOut(), offered)
		}
		// Every packet must land on the egress its header named.
		for p := 0; p < 4; p++ {
			want := int64(0)
			for q := 0; q < 4; q++ {
				if dsts[q] == p {
					want++
				}
			}
			if r.Stats().PktsOut[p] != want {
				t.Fatalf("vector %v: egress %d got %d packets, want %d",
					dsts, p, r.Stats().PktsOut[p], want)
			}
		}
	}
}

// TestRuntimeAllocationInvariants hooks the crossbar's per-quantum
// observer and verifies that what the firmware actually executed is a
// legal allocation every single quantum of a random run — the
// fabric-vs-cycle agreement check of DESIGN.md (both levels call the same
// rotor.Allocate; this confirms the firmware's inputs and dispatch are
// faithful).
func TestRuntimeAllocationInvariants(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	quanta := 0
	r.OnQuantum(func(q int64, a rotor.Allocation) {
		quanta++
		seen := make([]bool, 4)
		for _, tr := range a.Transfers {
			if seen[tr.Dst] {
				t.Fatalf("quantum %d: output %d granted twice", q, tr.Dst)
			}
			seen[tr.Dst] = true
			if tr.Hops < 0 || tr.Hops > 3 {
				t.Fatalf("quantum %d: impossible hop count %d", q, tr.Hops)
			}
		}
		for i, tile := range a.Tiles {
			if tile.InBlocked && a.Granted[i] {
				t.Fatalf("quantum %d: tile %d both granted and blocked", q, i)
			}
		}
	})
	rng := traffic.NewRNG(23)
	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, 256, id)
	}
	for c := 0; c < 30000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	if quanta < 100 {
		t.Fatalf("observer saw only %d quanta", quanta)
	}
}
