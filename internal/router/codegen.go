package router

import (
	"fmt"
	"sync"

	"repro/internal/raw"
	"repro/internal/rotor"
)

// This file is the third pass of the §6.4 automatic compile-time
// scheduler: it converts the minimized configuration space into static
// switch programs. Each crossbar tile's switch memory holds a short fixed
// preamble (header rotation, grant delivery, jump-table dispatch) plus one
// routine per minimized configuration. Routines are software-pipelined by
// the expansion numbers: a route whose stream originates h ring hops away
// activates h cycles late and drains h cycles later, so the ring never
// blocks on words that cannot have arrived yet (§6.2's deadlock concern).

// XbarProgram is a generated crossbar switch program plus its dispatch
// metadata.
type XbarProgram struct {
	Prog []raw.SwInstr
	// Compiled is the flattened route-table form the generator produces
	// alongside Prog. Install it with SetCompiledSwitchProgram: the
	// program is compiled once here and reinstalled as-is on every
	// degrade/restore reconfiguration.
	Compiled *raw.CompiledProgram
	// RoutineAddr[i] is the switch pc of configuration i's routine.
	RoutineAddr []raw.Word
	// NeedsCount[i] reports whether routine i reads the count register
	// (any configuration that moves words does).
	NeedsCount []bool
	// HasOut[i] reports whether routine i expects an egress header word
	// on csto ahead of the body.
	HasOut []bool
	// MaxOffset[i] is the routine's pipeline depth; the processor writes
	// count = L - MaxOffset.
	MaxOffset []int
}

// srcDir maps a Table 6.1 client to the physical input direction at a
// given crossbar tile.
func srcDir(c rotor.Client, d XbarDirs) raw.Dir {
	switch c {
	case rotor.ClIn:
		return d.In
	case rotor.ClCWPrev:
		return d.CWPrev
	case rotor.ClCCWPrev:
		return d.CCWPrev
	}
	panic("router: no source direction for client " + c.String())
}

// GenXbarProgram generates the switch program for port p's crossbar tile.
func GenXbarProgram(p int, ci *rotor.ConfigIndex) (*XbarProgram, error) {
	d := XbarDirsOf(p)
	// Fixed preamble: the headers-request/headers-send phases of Figure
	// 6-2. The local header fans out to this tile's processor and
	// clockwise-downstream; three more rotation steps deliver the other
	// tiles' headers.
	preamble := []raw.SwInstr{
		{Op: raw.SwRoute, Routes: []raw.Route{
			{Dst: d.CWNext, Src: d.In}, {Dst: raw.DirP, Src: d.In}}},
		{Op: raw.SwRoute, Routes: []raw.Route{
			{Dst: d.CWNext, Src: d.CWPrev}, {Dst: raw.DirP, Src: d.CWPrev}}},
		{Op: raw.SwRoute, Routes: []raw.Route{
			{Dst: d.CWNext, Src: d.CWPrev}, {Dst: raw.DirP, Src: d.CWPrev}}},
		{Op: raw.SwRoute, Routes: []raw.Route{
			{Dst: raw.DirP, Src: d.CWPrev}}},
		// Grant word back to the ingress (recv-config in Figure 6-2).
		{Op: raw.SwRoute, Routes: []raw.Route{{Dst: d.In, Src: raw.DirP}}},
		// Jump-table dispatch: the tile processor loads the routine pc.
		{Op: raw.SwRecvPC},
	}
	return genXbarWithPreamble(preamble, ci, d, "crossbar")
}

// GenXbarProgramDegraded generates the switch program port p's crossbar
// tile runs after the watchdog masks a dead crossbar tile out of the
// ring. The three survivors form a path, not a ring, so the header
// exchange changes shape per tile (rel = ring distance to the hole),
// using the counterclockwise links the healthy rotation never needed:
//
//	rel 1 (dead is CW-next):   own header CCW; both others arrive CW.
//	rel 2 (dead is opposite):  own header both ways; one neighbor each way,
//	                           relaying across the middle tile.
//	rel 3 (dead is CW-prev):   own header CW; both others arrive CCW.
//
// The preamble is one instruction shorter than the healthy one (three
// headers, not four); the per-configuration routines are generated
// unchanged against the fault-tolerant index, whose degraded-only
// entries the masked allocator can now reach.
func GenXbarProgramDegraded(p int, ci *rotor.ConfigIndex, dead int) (*XbarProgram, error) {
	if dead < 0 || dead > 3 || dead == p {
		return nil, fmt.Errorf("router: bad dead port %d for crossbar %d", dead, p)
	}
	d := XbarDirsOf(p)
	var exchange []raw.SwInstr
	switch (dead - p + 4) % 4 {
	case 1:
		exchange = []raw.SwInstr{
			{Op: raw.SwRoute, Routes: []raw.Route{
				{Dst: d.CCWNext, Src: d.In}, {Dst: raw.DirP, Src: d.In}}},
			{Op: raw.SwRoute, Routes: []raw.Route{{Dst: raw.DirP, Src: d.CWPrev}}},
			{Op: raw.SwRoute, Routes: []raw.Route{{Dst: raw.DirP, Src: d.CWPrev}}},
		}
	case 2:
		exchange = []raw.SwInstr{
			{Op: raw.SwRoute, Routes: []raw.Route{
				{Dst: d.CWNext, Src: d.In}, {Dst: d.CCWNext, Src: d.In},
				{Dst: raw.DirP, Src: d.In}}},
			{Op: raw.SwRoute, Routes: []raw.Route{
				{Dst: raw.DirP, Src: d.CWPrev}, {Dst: d.CWNext, Src: d.CWPrev}}},
			{Op: raw.SwRoute, Routes: []raw.Route{
				{Dst: raw.DirP, Src: d.CCWPrev}, {Dst: d.CCWNext, Src: d.CCWPrev}}},
		}
	case 3:
		exchange = []raw.SwInstr{
			{Op: raw.SwRoute, Routes: []raw.Route{
				{Dst: d.CWNext, Src: d.In}, {Dst: raw.DirP, Src: d.In}}},
			{Op: raw.SwRoute, Routes: []raw.Route{{Dst: raw.DirP, Src: d.CCWPrev}}},
			{Op: raw.SwRoute, Routes: []raw.Route{{Dst: raw.DirP, Src: d.CCWPrev}}},
		}
	}
	preamble := append(exchange,
		raw.SwInstr{Op: raw.SwRoute, Routes: []raw.Route{{Dst: d.In, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwRecvPC},
	)
	return genXbarWithPreamble(preamble, ci, d, "degraded crossbar")
}

// ParkProgram is the switch program installed on a failed port's tiles:
// it blocks forever on a processor pc write that never comes, consuming
// nothing from its neighbors.
func ParkProgram() []raw.SwInstr {
	return []raw.SwInstr{{Op: raw.SwRecvPC}}
}

// genXbarWithPreamble appends one software-pipelined routine per
// configuration in ci after the given preamble.
func genXbarWithPreamble(preamble []raw.SwInstr, ci *rotor.ConfigIndex, d XbarDirs, what string) (*XbarProgram, error) {
	xp := &XbarProgram{
		Prog:        preamble,
		RoutineAddr: make([]raw.Word, ci.Len()),
		NeedsCount:  make([]bool, ci.Len()),
		HasOut:      make([]bool, ci.Len()),
		MaxOffset:   make([]int, ci.Len()),
	}

	for i := 0; i < ci.Len(); i++ {
		k := ci.Key(i)
		xp.RoutineAddr[i] = raw.Word(len(xp.Prog))

		type timedRoute struct {
			r   raw.Route
			off int
		}
		var routes []timedRoute
		if k.Out != rotor.ClNone {
			routes = append(routes, timedRoute{
				raw.Route{Dst: d.Out, Src: srcDir(k.Out, d)}, int(k.OutHops)})
			xp.HasOut[i] = true
			// Egress header word precedes the body on the out link.
			xp.Prog = append(xp.Prog, raw.SwInstr{Op: raw.SwRoute,
				Routes: []raw.Route{{Dst: d.Out, Src: raw.DirP}}})
		}
		if k.CWNext != rotor.ClNone {
			routes = append(routes, timedRoute{
				raw.Route{Dst: d.CWNext, Src: srcDir(k.CWNext, d)}, int(k.CWHops)})
		}
		if k.CCWNext != rotor.ClNone {
			routes = append(routes, timedRoute{
				raw.Route{Dst: d.CCWNext, Src: srcDir(k.CCWNext, d)}, int(k.CCWHops)})
		}

		if len(routes) == 0 {
			xp.Prog = append(xp.Prog,
				raw.SwInstr{Op: raw.SwNotify, Arg: raw.Word(i)},
				raw.SwInstr{Op: raw.SwJump, Arg: 0})
			continue
		}
		xp.NeedsCount[i] = true
		maxOff := 0
		for _, tr := range routes {
			if tr.off > maxOff {
				maxOff = tr.off
			}
		}
		xp.MaxOffset[i] = maxOff

		// Prologue: cycle c fires the routes whose streams have arrived
		// (offset <= c).
		for c := 0; c < maxOff; c++ {
			var rs []raw.Route
			for _, tr := range routes {
				if tr.off <= c {
					rs = append(rs, tr.r)
				}
			}
			xp.Prog = append(xp.Prog, raw.SwInstr{Op: raw.SwRoute, Routes: rs})
		}
		// Body: all routes, L-maxOff times (count from the processor).
		all := make([]raw.Route, len(routes))
		for j, tr := range routes {
			all[j] = tr.r
		}
		xp.Prog = append(xp.Prog, raw.SwInstr{Op: raw.SwRouteV, Routes: all})
		// Epilogue: cycle e drains the routes whose streams still have
		// words in flight (offset > e).
		for e := 0; e < maxOff; e++ {
			var rs []raw.Route
			for _, tr := range routes {
				if tr.off > e {
					rs = append(rs, tr.r)
				}
			}
			xp.Prog = append(xp.Prog, raw.SwInstr{Op: raw.SwRoute, Routes: rs})
		}
		xp.Prog = append(xp.Prog,
			raw.SwInstr{Op: raw.SwNotify, Arg: raw.Word(i)},
			raw.SwInstr{Op: raw.SwJump, Arg: 0})
	}

	cp, err := raw.CompileProgram(xp.Prog)
	if err != nil {
		return nil, fmt.Errorf("router: generated %s program invalid: %w", what, err)
	}
	xp.Compiled = cp
	return xp, nil
}

// Ingress switch routine addresses (see GenIngressProgram).
type IngressProgram struct {
	Prog     []raw.SwInstr
	Compiled *raw.CompiledProgram
	Acquire  raw.Word // read 5 IP header words, consult lookup
	Drop    raw.Word // drain a packet's payload to the processor (drop, or multicast buffering)
	Quantum raw.Word // header out, grant in
	Stream1 raw.Word // first fragment: 5 header words from P, payload cut-through, padding from P
	Stream2 raw.Word // later fragment: payload cut-through, padding from P
	StreamP raw.Word // whole stream from the processor (multicast replay, §8.6)
}

// GenIngressProgram generates port p's ingress switch program.
func GenIngressProgram(p int) (*IngressProgram, error) {
	d := IngressDirsOf(p)
	ip := &IngressProgram{}
	prog := []raw.SwInstr{{Op: raw.SwRecvPC}} // 0: dispatch

	ip.Acquire = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteN, Arg: 5, Routes: []raw.Route{{Dst: raw.DirP, Src: d.Edge}}},
		raw.SwInstr{Op: raw.SwRoute, Routes: []raw.Route{{Dst: d.Lookup, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwRoute, Routes: []raw.Route{{Dst: raw.DirP, Src: d.Lookup}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 1},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ip.Drop = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: raw.DirP, Src: d.Edge}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 2},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ip.Quantum = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRoute, Routes: []raw.Route{{Dst: d.Xbar, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwRoute, Routes: []raw.Route{{Dst: raw.DirP, Src: d.Xbar}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 3},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ip.Stream1 = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteN, Arg: 5, Routes: []raw.Route{{Dst: d.Xbar, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: d.Xbar, Src: d.Edge}}},
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: d.Xbar, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 4},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ip.Stream2 = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: d.Xbar, Src: d.Edge}}},
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: d.Xbar, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 5},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ip.StreamP = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: d.Xbar, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 6},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ip.Prog = prog
	cp, err := raw.CompileProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("router: generated ingress program invalid: %w", err)
	}
	ip.Compiled = cp
	return ip, nil
}

// EgressProgram addresses (see GenEgressProgram).
type EgressProgram struct {
	Prog     []raw.SwInstr
	Compiled *raw.CompiledProgram
	Hdr      raw.Word // one egress header word to P
	Cut     raw.Word // complete packet cut-through to the pin + padding to P
	Asm     raw.Word // whole stream to P (reassembly path)
	Out     raw.Word // reassembled packet from P to the pin
	Forward raw.Word // crypto path: stream from P to the pin and padding drain (§8.3)
}

// GenEgressProgram generates port p's egress switch program.
func GenEgressProgram(p int) (*EgressProgram, error) {
	d := EgressDirsOf(p)
	ep := &EgressProgram{}
	prog := []raw.SwInstr{{Op: raw.SwRecvPC}} // 0: dispatch

	ep.Hdr = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRoute, Routes: []raw.Route{{Dst: raw.DirP, Src: d.Xbar}}},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ep.Cut = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: d.Edge, Src: d.Xbar}}},
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: raw.DirP, Src: d.Xbar}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 1},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ep.Asm = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: raw.DirP, Src: d.Xbar}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 2},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ep.Out = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: d.Edge, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 3},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ep.Forward = raw.Word(len(prog))
	prog = append(prog,
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: raw.DirP, Src: d.Xbar}}},
		raw.SwInstr{Op: raw.SwRouteV, Routes: []raw.Route{{Dst: d.Edge, Src: raw.DirP}}},
		raw.SwInstr{Op: raw.SwNotify, Arg: 4},
		raw.SwInstr{Op: raw.SwJump, Arg: 0},
	)

	ep.Prog = prog
	cp, err := raw.CompileProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("router: generated egress program invalid: %w", err)
	}
	ep.Compiled = cp
	return ep, nil
}

// GenLookupProgram generates port p's lookup switch program: a
// request/response loop with its ingress.
func GenLookupProgram(p int) []raw.SwInstr {
	ing := LookupDirsOf(p)
	return []raw.SwInstr{
		{Op: raw.SwRoute, Routes: []raw.Route{{Dst: raw.DirP, Src: ing}}},
		{Op: raw.SwJump, Arg: 0, Routes: []raw.Route{{Dst: ing, Src: raw.DirP}}},
	}
}

// Lookup and park programs are tiny and immutable, so they are compiled
// once per process and shared: install/degrade/restore reinstall the same
// objects instead of regenerating and revalidating them each time.
var compiledLookup = sync.OnceValue(func() [4]*raw.CompiledProgram {
	var cps [4]*raw.CompiledProgram
	for p := 0; p < 4; p++ {
		cps[p] = raw.MustCompileProgram(GenLookupProgram(p))
	}
	return cps
})

// CompiledLookupProgram returns port p's lookup program in compiled form.
func CompiledLookupProgram(p int) *raw.CompiledProgram { return compiledLookup()[p] }

var compiledPark = sync.OnceValue(func() *raw.CompiledProgram {
	return raw.MustCompileProgram(ParkProgram())
})

// CompiledParkProgram returns the park program in compiled form.
func CompiledParkProgram() *raw.CompiledProgram { return compiledPark() }
