package router_test

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/rotor"
	"repro/internal/router"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func mustNew(t *testing.T, cfg router.Config) *router.Router {
	t.Helper()
	r, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// feedSaturated keeps every input's line buffer deep; gen(p) yields the
// next packet for port p.
func feedSaturated(r *router.Router, gen func(p int) ip.Packet) {
	for p := 0; p < 4; p++ {
		for r.InputBacklogWords(p) < 4096 {
			pkt := gen(p)
			r.OfferPacket(p, &pkt)
		}
	}
}

// TestSinglePacket routes one packet from port 0 to port 2 and checks the
// delivered bytes, TTL decrement, and checksum.
func TestSinglePacket(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 7), 64, 256, 42)
	r.OfferPacket(0, &pkt)

	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[2] >= 1 }, 20000) {
		t.Fatalf("packet never delivered; stats %+v", r.Stats())
	}
	out, err := r.DrainOutput(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("%d packets at output 2", len(out))
	}
	got := out[0]
	if got.Header.TTL != 63 {
		t.Fatalf("TTL %d, want 63", got.Header.TTL)
	}
	if got.Header.TotalLen != 256 {
		t.Fatalf("TotalLen %d", got.Header.TotalLen)
	}
	for i, w := range pkt.Payload {
		if got.Payload[i] != w {
			t.Fatalf("payload word %d corrupted: %#x != %#x", i, got.Payload[i], w)
		}
	}
}

// TestAllPairs routes one packet for every (input, output) pair,
// including hairpins (same port in and out).
func TestAllPairs(t *testing.T) {
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			r := mustNew(t, router.DefaultConfig())
			pkt := ip.NewPacket(traffic.PortAddr(src, 1), traffic.PortAddr(dst, 9), 32, 128, 7)
			r.OfferPacket(src, &pkt)
			if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[dst] >= 1 }, 20000) {
				t.Fatalf("%d->%d never delivered", src, dst)
			}
			out, err := r.DrainOutput(dst)
			if err != nil || len(out) != 1 {
				t.Fatalf("%d->%d: out=%d err=%v", src, dst, len(out), err)
			}
		}
	}
}

// TestLayoutMatchesFigure7_2 (experiment E3) pins the tile mapping to the
// paper's Figure 7-2 and checks physical adjacency of every wired pair.
func TestLayoutMatchesFigure7_2(t *testing.T) {
	want := [4][4]int{ // ingress, lookup, crossbar, egress
		{4, 0, 5, 1}, {7, 3, 6, 2}, {11, 15, 10, 14}, {8, 12, 9, 13},
	}
	for p, pt := range router.Layout {
		got := [4]int{pt.Ingress, pt.Lookup, pt.Crossbar, pt.Egress}
		if got != want[p] {
			t.Fatalf("port %d tiles %v, want %v", p, got, want[p])
		}
	}
	// Figure 7-3's "input ports are tiles 4, 7, 8, 11".
	ingresses := map[int]bool{}
	for _, pt := range router.Layout {
		ingresses[pt.Ingress] = true
	}
	for _, tile := range []int{4, 7, 8, 11} {
		if !ingresses[tile] {
			t.Fatalf("tile %d should be an ingress", tile)
		}
	}
	// Adjacency: every static link the programs use must join neighbors.
	adj := func(a, b int) bool {
		ax, ay, bx, by := a%4, a/4, b%4, b/4
		dx, dy := ax-bx, ay-by
		return dx*dx+dy*dy == 1
	}
	ring := []int{5, 6, 10, 9}
	for i := range ring {
		if !adj(ring[i], ring[(i+1)%len(ring)]) {
			t.Fatalf("ring tiles %d and %d not adjacent", ring[i], ring[(i+1)%4])
		}
	}
	for p, pt := range router.Layout {
		if !adj(pt.Ingress, pt.Crossbar) || !adj(pt.Ingress, pt.Lookup) || !adj(pt.Crossbar, pt.Egress) {
			t.Fatalf("port %d wiring not adjacent: %+v", p, pt)
		}
	}
}

// TestGeneratedPrograms checks the §6.2 outcome: per-tile switch programs
// hold one routine per minimized configuration and fit the 8,192-word
// switch memory with room to spare.
func TestGeneratedPrograms(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	_ = r
	for p := 0; p < 4; p++ {
		xp, err := router.GenXbarProgram(p, rotorIndex(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(xp.RoutineAddr) != 27 {
			t.Fatalf("port %d: %d routines, want 27", p, len(xp.RoutineAddr))
		}
		if len(xp.Prog) >= raw.SwMemWords/8 {
			t.Fatalf("port %d: crossbar program unexpectedly large: %d words", p, len(xp.Prog))
		}
	}
}

// TestMultiFragReassembly routes a 2,048-byte packet (two quanta) and
// verifies reassembly (§4.3).
func TestMultiFragReassembly(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 7), 64, 2048, 3)
	r.OfferPacket(0, &pkt)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= 1 }, 50000) {
		t.Fatalf("multi-frag packet never delivered; stats %+v", r.Stats())
	}
	out, err := r.DrainOutput(1)
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for i := range pkt.Payload {
		if out[0].Payload[i] != pkt.Payload[i] {
			t.Fatalf("payload word %d corrupted", i)
		}
	}
	if r.Stats().Reassembled[1] != 1 || r.Stats().FragsSent[0] != 2 {
		t.Fatalf("reassembled=%d frags=%d", r.Stats().Reassembled[1], r.Stats().FragsSent[0])
	}
}

// TestDropPaths: bad checksum, expired TTL, and unroutable destinations
// are dropped at ingress without wedging the crossbar.
func TestDropPaths(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())

	bad := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 2), 64, 128, 1)
	words := bad.Words()
	words[4] ^= 0x100 // corrupt destination: checksum fails
	in := r.Chip.StaticIn(router.Layout[0].Ingress, router.Layout[0].InSide)
	for _, w := range words {
		in.Push(raw.Word(w))
	}
	expired := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 2), 1, 128, 2)
	r.OfferPacket(0, &expired)
	noroute := ip.NewPacket(traffic.PortAddr(0, 1), ip.AddrFrom(99, 0, 0, 1), 64, 128, 3)
	r.OfferPacket(0, &noroute)
	good := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 2), 64, 128, 4)
	r.OfferPacket(0, &good)

	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= 1 }, 100000) {
		t.Fatalf("good packet stuck behind drops; stats %+v", r.Stats())
	}
	if r.Stats().Dropped[0] != 3 {
		t.Fatalf("dropped %d, want 3", r.Stats().Dropped[0])
	}
	out, err := r.DrainOutput(1)
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	if out[0].Header.ID != 4 {
		t.Fatalf("delivered ID %d, want the good packet", out[0].Header.ID)
	}
}

// TestPeakThroughput64B: conflict-free permutation at 64 bytes. The paper
// measures 7.3 Gbps (≈70 cycles/packet/port); our sequential-phase
// protocol lands within ~10 cycles of that.
func TestPeakThroughput64B(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	perm := traffic.RotatedPerm(4, 2)
	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(perm[p], uint32(id)), 64, 64, id)
	}
	for c := 0; c < 60000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	pkts := r.TotalPktsOut()
	cpp := float64(r.Cycle()) * 4 / float64(pkts)
	if cpp < 60 || cpp > 95 {
		t.Fatalf("peak 64B cost %.1f cycles/pkt/port, want ≈70-80 (paper ≈70)", cpp)
	}
	gbps := r.ThroughputGbps()
	if gbps < 5.5 || gbps > 8.5 {
		t.Fatalf("peak 64B throughput %.2f Gbps, want ≈6.5-7.5 (paper 7.3)", gbps)
	}
}

// TestPeakThroughput1024B: the paper's headline — 26.9 Gbps, 3.3 Mpps at
// 1,024 bytes.
func TestPeakThroughput1024B(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	perm := traffic.RotatedPerm(4, 1)
	id := uint16(0)
	gen := func(p int) ip.Packet {
		id++
		return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(perm[p], uint32(id)), 64, 1024, id)
	}
	for c := 0; c < 100000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	gbps := r.ThroughputGbps()
	if gbps < 24 || gbps > 28 {
		t.Fatalf("peak 1024B throughput %.2f Gbps, want ≈26 (paper 26.9)", gbps)
	}
	if m := r.Mpps(); m < 2.9 || m > 3.5 {
		t.Fatalf("peak 1024B rate %.2f Mpps, want ≈3.2 (paper 3.3)", m)
	}
}

// TestAverageRatio: uniform traffic delivers ≈ 0.6-0.7 of peak (§7.3
// reports 69 %, from output contention alone).
func TestAverageRatio(t *testing.T) {
	run := func(uniform bool) float64 {
		r := mustNew(t, router.DefaultConfig())
		rng := traffic.NewRNG(3)
		perm := traffic.RotatedPerm(4, 2)
		id := uint16(0)
		gen := func(p int) ip.Packet {
			id++
			d := perm[p]
			if uniform {
				d = rng.Intn(4)
			}
			return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(d, uint32(id)), 64, 256, id)
		}
		for c := 0; c < 60000; c += 200 {
			feedSaturated(r, gen)
			r.Run(200)
		}
		return r.ThroughputGbps()
	}
	peak := run(false)
	avg := run(true)
	ratio := avg / peak
	if ratio < 0.55 || ratio > 0.80 {
		t.Fatalf("average/peak = %.3f (avg %.2f, peak %.2f), want ≈ 0.65-0.7 (paper 0.69)", ratio, avg, peak)
	}
}

// TestIntegrityUnderUniformLoad delivers thousands of random packets and
// verifies every one parses with a valid checksum and intact payload.
func TestIntegrityUnderUniformLoad(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	rng := traffic.NewRNG(17)
	id := uint16(0)
	sent := map[uint16]ip.Packet{}
	gen := func(p int) ip.Packet {
		id++
		size := []int{64, 128, 256, 512, 1024}[rng.Intn(5)]
		pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
		sent[id] = pkt
		return pkt
	}
	for c := 0; c < 60000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	var delivered int
	for p := 0; p < 4; p++ {
		out, err := r.DrainOutput(p)
		if err != nil {
			t.Fatalf("output %d: %v", p, err)
		}
		for _, got := range out {
			want, ok := sent[got.Header.ID]
			if !ok {
				t.Fatalf("output %d delivered unknown packet id %d", p, got.Header.ID)
			}
			if got.Header.TTL != want.Header.TTL-1 {
				t.Fatalf("id %d TTL %d, want %d", got.Header.ID, got.Header.TTL, want.Header.TTL-1)
			}
			for i := range want.Payload {
				if got.Payload[i] != want.Payload[i] {
					t.Fatalf("id %d payload word %d corrupted", got.Header.ID, i)
				}
			}
			delivered++
		}
	}
	if delivered < 500 {
		t.Fatalf("only %d packets delivered", delivered)
	}
}

// TestDeterminism: identical runs produce identical cycle-exact stats.
func TestDeterminism(t *testing.T) {
	run := func() (int64, [4]int64) {
		r := mustNew(t, router.DefaultConfig())
		rng := traffic.NewRNG(5)
		id := uint16(0)
		gen := func(p int) ip.Packet {
			id++
			return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, 128, id)
		}
		for c := 0; c < 20000; c += 200 {
			feedSaturated(r, gen)
			r.Run(200)
		}
		var words [4]int64
		for p := 0; p < 4; p++ {
			words[p] = r.OutputWords(p)
		}
		return r.TotalPktsOut(), words
	}
	p1, w1 := run()
	p2, w2 := run()
	if p1 != p2 || w1 != w2 {
		t.Fatalf("nondeterministic: %d/%v vs %d/%v", p1, w1, p2, w2)
	}
}

// TestCryptoInFabric (§8.3): with the computation extension on, payloads
// leave the router stream-ciphered (headers intact) and cost extra cycles.
func TestCryptoInFabric(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.Crypto = true
	cfg.CryptoKey = 0xfeedface
	r := mustNew(t, cfg)
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(3, 2), 64, 256, 11)
	r.OfferPacket(0, &pkt)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[3] >= 1 }, 30000) {
		t.Fatalf("crypto packet never delivered; stats %+v", r.Stats())
	}
	out, err := r.DrainOutput(3)
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for i, w := range pkt.Payload {
		want := w ^ uint32(router.CryptoMask(cfg.CryptoKey, i))
		if out[0].Payload[i] != want {
			t.Fatalf("payload word %d: got %#x want ciphered %#x", i, out[0].Payload[i], want)
		}
	}
}

// TestFigure7_3Utilization (experiment E4): ingress tiles 4/7/8/11 show
// blocked (gray) time under uniform 64-byte saturation, and overall tile
// utilization rises with packet size.
func TestFigure7_3Utilization(t *testing.T) {
	run := func(size int) *trace.Recorder {
		rec := trace.NewRecorder(16, 20000, 20800)
		cfg := router.DefaultConfig()
		cfg.Tracer = rec
		r := mustNew(t, cfg)
		rng := traffic.NewRNG(1)
		id := uint16(0)
		gen := func(p int) ip.Packet {
			id++
			return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
		}
		for c := 0; c < 21000; c += 200 {
			feedSaturated(r, gen)
			r.Run(200)
		}
		return rec
	}
	small := run(64)
	large := run(1024)

	// Ingress tiles show gray (blocked-by-crossbar) under contention.
	for _, tile := range []int{4, 7, 8, 11} {
		if small.BlockedFraction(tile) < 0.05 {
			t.Fatalf("tile %d gray fraction %.2f at 64B, expected visible blocking",
				tile, small.BlockedFraction(tile))
		}
	}
	// "Raw utilization is considerably lower for smaller packet sizes."
	busy := func(rec *trace.Recorder) float64 {
		var sum float64
		for _, pt := range router.Layout {
			// The streaming tiles: crossbars move the body words.
			sum += rec.Utilization(pt.Crossbar) + rec.BlockedFraction(pt.Crossbar)
		}
		return sum
	}
	_ = busy
	var smallRun, largeRun float64
	for tile := 0; tile < 16; tile++ {
		smallRun += small.Utilization(tile)
		largeRun += large.Utilization(tile)
	}
	if largeRun <= smallRun {
		t.Fatalf("utilization did not grow with packet size: 64B %.2f vs 1024B %.2f",
			smallRun, largeRun)
	}
}

// rotorIndex builds the shared config index (helper).
func rotorIndex(t *testing.T) *rotor.ConfigIndex {
	t.Helper()
	return rotor.NewConfigIndex(4)
}
