package router

// Compiled firmware cycle-cost schedules. Each of the four firmware
// state machines (ingress, crossbar, egress, lookup) is compiled at
// router construction into a dense schedule: a flat table with one
// (cycles, words-in, words-out) row per phase, derived from the same
// Config values the firmware itself runs on. The schedule is the
// firmware's declared per-cycle profile — which phases present a
// constant rate to the chip (Steady: every queued micro-op either
// blocks without side effects or moves words at one cycle per word) and
// which do not (multi-cycle-per-word buffering, cache probes,
// cryptographic transforms).
//
// One schedule per kind is built per router and the same pointer is
// shared by all four instances of that kind, and survives degrade,
// restore, and park unchanged: those procedures re-install the same
// firmware objects (see Degrade and completeRestore), so a tile
// processor re-entering service presents exactly the profile it was
// compiled with. The fast engine's macro-stepper consults the schedule
// through raw.SteadyFirmware: a tile blocked mid-quantum in a Steady
// phase may be covered by a macro window; a non-steady phase falls back
// to per-cycle stepping.

// PhaseCost is one compiled schedule row: the cycle cost and word flow
// of a firmware phase.
type PhaseCost struct {
	// Name is the phase's stable diagnostic name.
	Name string
	// Cycles is the phase's fixed cycle cost per execution, or -1 when
	// the duration is event-dependent (the phase blocks on the network
	// and runs as long as its peer takes).
	Cycles int
	// WordsIn and WordsOut are the words the phase moves per cycle while
	// it streams (0 for control phases that move a bounded handful of
	// protocol words).
	WordsIn, WordsOut int
	// Steady marks a constant-rate phase: every cycle either blocks
	// without side effects or moves words at one cycle per word, so the
	// macro-step flow analysis may reason about the tile mid-phase.
	Steady bool
}

// FWSchedule is one firmware kind's compiled schedule. Phase indices are
// the firmware's phase constants (ingPhase*, xbarPhase*, egrPhase*,
// lkPhase*).
type FWSchedule struct {
	Kind   string
	Phases []PhaseCost
}

// Steady reports whether the given phase presents a constant per-cycle
// profile.
func (s *FWSchedule) Steady(phase int) bool { return s.Phases[phase].Steady }

// PhaseName returns the phase's diagnostic name.
func (s *FWSchedule) PhaseName(phase int) string { return s.Phases[phase].Name }

// PhaseIndex returns the index of the named phase, -1 if unknown.
func (s *FWSchedule) PhaseIndex(name string) int {
	for i := range s.Phases {
		if s.Phases[i].Name == name {
			return i
		}
	}
	return -1
}

// Ingress firmware phases (indices into the ingress schedule).
const (
	ingPhaseIdle = iota
	ingPhaseAcquire
	ingPhaseQuantum
	ingPhaseStream
	ingPhaseDrain
	ingPhaseDown
	ingPhaseIngest
	ingPhaseMcastStream
)

// Crossbar firmware phases.
const (
	xbarPhaseHdr = iota
	xbarPhaseStream
)

// Egress firmware phases.
const (
	egrPhaseHdr = iota
	egrPhaseCut
	egrPhaseAsm
	egrPhaseOut
	egrPhaseCrypto
)

// Lookup firmware phases.
const (
	lkPhaseAwait = iota
	lkPhaseProbe
)

// fwSchedules bundles the four compiled schedules a router shares across
// its firmware instances.
type fwSchedules struct {
	ing, xbar, egr, lk *FWSchedule
}

// compileFWSchedules compiles the four firmware kinds' cycle-cost
// schedules from the router configuration. Called once in New; the
// resulting pointers are installed in every firmware instance and are
// never regenerated (degrade/restore/park re-install the same objects).
func compileFWSchedules(cfg Config) fwSchedules {
	return fwSchedules{
		ing: &FWSchedule{Kind: "ingress", Phases: []PhaseCost{
			// Waiting for line words or playing the empty-header
			// protocol: blocks on the grant exchange, moves nothing.
			ingPhaseIdle: {Name: "idle", Cycles: -1, Steady: true},
			// Header read (5 words), verify/update, lookup exchange.
			ingPhaseAcquire: {Name: "acquire", Cycles: 5 + cfg.HeaderCycles + 2,
				WordsIn: 1, Steady: true},
			// Per-quantum header/grant exchange: a handful of protocol
			// words, then blocked on the grant.
			ingPhaseQuantum: {Name: "quantum", Cycles: -1, Steady: true},
			// Granted fragment streaming: one word per cycle line-to-
			// fabric cut-through (the paper's peak-rate path).
			ingPhaseStream: {Name: "stream", Cycles: -1,
				WordsIn: 1, WordsOut: 1, Steady: true},
			// Aborted-packet drain: discards line words at one per cycle.
			ingPhaseDrain: {Name: "drain", Cycles: -1, WordsIn: 1, Steady: true},
			// Line declared down: idle quanta plus the reprobe schedule.
			ingPhaseDown: {Name: "down", Cycles: -1, Steady: true},
			// Multicast payload ingest into local data memory: two cycles
			// per word (§4.4) — not a constant one-word-per-cycle rate.
			ingPhaseIngest: {Name: "ingest", Cycles: -1, WordsIn: 1},
			// Multicast replay out of local memory: one word per cycle.
			ingPhaseMcastStream: {Name: "mcast_stream", Cycles: -1,
				WordsOut: 1, Steady: true},
		}},
		xbar: &FWSchedule{Kind: "xbar", Phases: []PhaseCost{
			// Rotated-header collection and the jump-table index
			// computation (AllocCycles of it).
			xbarPhaseHdr: {Name: "hdr", Cycles: 4 + cfg.AllocCycles,
				WordsIn: 1, Steady: true},
			// Grant/egress-header dispatch, then blocked on the switch
			// confirmation while the routine streams the quantum.
			xbarPhaseStream: {Name: "stream", Cycles: -1, Steady: true},
		}},
		egr: &FWSchedule{Kind: "egress", Phases: []PhaseCost{
			// Blocked on the next egress header (stalls across idle
			// quanta).
			egrPhaseHdr: {Name: "hdr", Cycles: -1, Steady: true},
			// Whole-packet cut-through: switch streams pin-ward at one
			// word per cycle, processor drains padding at the same rate.
			egrPhaseCut: {Name: "cut", Cycles: -1, WordsIn: 1, Steady: true},
			// Fragment reassembly into local data memory: two cycles per
			// word (§4.4).
			egrPhaseAsm: {Name: "asm", Cycles: -1, WordsIn: 1},
			// Reassembled-packet playback from local memory.
			egrPhaseOut: {Name: "out", Cycles: -1, WordsOut: 1},
			// §8.3 decrypt-and-forward: per-word cipher cost on top of
			// the word moves.
			egrPhaseCrypto: {Name: "crypto",
				Cycles: -1, WordsIn: 1, WordsOut: 1},
		}},
		lk: &FWSchedule{Kind: "lookup", Phases: []PhaseCost{
			// Blocked waiting for the next destination from the ingress.
			lkPhaseAwait: {Name: "await", Cycles: -1, Steady: true},
			// Table probe(s) through the data cache: a miss burns a
			// DRAM round trip mid-phase.
			lkPhaseProbe: {Name: "probe", Cycles: -1},
		}},
	}
}

// FirmwareSchedule returns the compiled cycle-cost schedule for the
// named firmware kind ("ingress", "xbar", "egress", "lookup"), nil if
// unknown. The returned pointer is the exact object every instance of
// that kind runs on for the router's whole lifetime.
func (r *Router) FirmwareSchedule(kind string) *FWSchedule {
	switch kind {
	case "ingress":
		return r.scheds.ing
	case "xbar":
		return r.scheds.xbar
	case "egress":
		return r.scheds.egr
	case "lookup":
		return r.scheds.lk
	}
	return nil
}
