package router_test

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/netproc"
	"repro/internal/router"
	"repro/internal/traffic"
)

// TestTableUpdateWhileForwarding (§2.2.1): the network processor installs
// a new forwarding table mid-run; packets before the flip follow the old
// route, packets after it the new one, with no corruption and no cache
// invalidation (double-buffered epochs).
func TestTableUpdateWhileForwarding(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())

	// 10/8 -> port 1 initially (canonical table routes 11/8 to port 1;
	// use 11/8's address so the canonical route targets port 1).
	before := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 5), 64, 128, 1)
	r.OfferPacket(0, &before)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= 1 }, 20000) {
		t.Fatalf("pre-update packet not delivered; %+v", r.Stats())
	}

	// The network processor moves 11/8 to port 3.
	var nt lookup.Patricia
	for p := 0; p < 4; p++ {
		nh := lookup.NextHop(p)
		if p == 1 {
			nh = 3
		}
		if err := nt.Insert(uint32(10+p)<<24, 8, nh); err != nil {
			t.Fatal(err)
		}
	}
	r.UpdateTable(&nt)

	after := ip.NewPacket(traffic.PortAddr(0, 2), traffic.PortAddr(1, 6), 64, 128, 2)
	r.OfferPacket(0, &after)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[3] >= 1 }, 30000) {
		t.Fatalf("post-update packet did not follow the new route; %+v", r.Stats())
	}
	out, err := r.DrainOutput(3)
	if err != nil || len(out) != 1 || out[0].Header.ID != 2 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	// A second flip returns to the original epoch region.
	r.UpdateTable(router.CanonicalTable())
	third := ip.NewPacket(traffic.PortAddr(0, 3), traffic.PortAddr(1, 7), 64, 128, 3)
	r.OfferPacket(0, &third)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= 2 }, 30000) {
		t.Fatalf("second flip did not restore the route; %+v", r.Stats())
	}
}

// TestTableUpdateCheckpointReplay pins mid-run table updates into the
// record-replay checkpoint: the restore must re-poke each recorded DRAM
// image AND re-flip the double-buffer epoch at the recorded cycle, or
// the replayed lookup firmware probes the stale epoch's addresses and
// the digest check trips (regression: the epoch flip was once applied
// only after the replay finished).
func TestTableUpdateCheckpointReplay(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.Checkpoint = true
	r := mustNew(t, cfg)
	feed := func(rr *router.Router, from, to int) {
		for i := from; i < to; i++ {
			pkt := ip.NewPacket(traffic.PortAddr(0, uint32(i)),
				traffic.PortAddr(1, uint32(i)), 64, 128, uint16(i))
			rr.OfferPacket(0, &pkt)
			rr.Run(200)
		}
	}
	feed(r, 0, 20)
	var nt lookup.Patricia
	for p := 0; p < 4; p++ {
		nh := lookup.NextHop(p)
		if p == 1 {
			nh = 3
		}
		if err := nt.Insert(uint32(10+p)<<24, 8, nh); err != nil {
			t.Fatal(err)
		}
	}
	r.UpdateTable(&nt)
	feed(r, 20, 40)
	blob, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r2 := mustNew(t, cfg)
	if err := r2.RestoreSnapshot(blob); err != nil {
		t.Fatalf("restore after mid-run table update: %v", err)
	}
	// The restored router must keep forwarding on the updated table and
	// produce an identical continuation checkpoint.
	feed(r, 40, 50)
	feed(r2, 40, 50)
	b1, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("continuation snapshots diverged after table-update replay")
	}
}

// TestNetprocDrivesRouter wires the Chapter 2 control plane to the data
// plane: a RIP network computes this router's forwarding table, the
// network processor installs it, and packets follow the computed routes.
func TestNetprocDrivesRouter(t *testing.T) {
	// Topology: this router (node 0) has neighbors behind each port;
	// node 2 (behind port 1) advertises 40.0.0.0/8 two hops away through
	// node 1.
	nw := netproc.NewNetwork()
	nw.AddNode(0)
	nw.Link(0, 1, 1, 0) // our port 1 -> node 1
	nw.Link(1, 1, 2, 0) // node 1 -> node 2
	nw.AddNode(2).Attach(netproc.Prefix{Addr: 40 << 24, Len: 8}, 1)
	nw.AddNode(0).Attach(netproc.Prefix{Addr: 10 << 24, Len: 8}, 0) // local
	if nw.RunUntilStable(50) >= 50 {
		t.Fatal("control plane did not converge")
	}
	ft, err := nw.Nodes[0].ForwardingTable()
	if err != nil {
		t.Fatal(err)
	}

	cfg := router.DefaultConfig()
	cfg.Table = ft
	r := mustNew(t, cfg)

	// A packet to 40.1.2.3 must leave on port 1 (toward node 1).
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), ip.AddrFrom(40, 1, 2, 3), 64, 128, 9)
	r.OfferPacket(0, &pkt)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[1] >= 1 }, 30000) {
		t.Fatalf("packet did not follow the RIP-computed route; %+v", r.Stats())
	}
}
