package router_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// runUntil is Chip.RunUntil with the condition checked between coarse
// steps so firmware state reads stay race-free.
func runUntil(r *router.Router, budget int64, cond func() bool) bool {
	return r.Chip.RunUntil(cond, budget)
}

// TestRestoreValidation: Restore rejects nonsense states.
func TestRestoreValidation(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	if err := r.Restore(0); err == nil {
		t.Fatal("Restore on a healthy router accepted")
	}
	if err := r.Degrade(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(1); err == nil {
		t.Fatal("Restore of a live port accepted")
	}
	if err := r.Restore(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(2); err == nil {
		t.Fatal("second Restore while draining accepted")
	}
	if !r.Restoring() {
		t.Fatal("Restoring() false during drain")
	}
	if err := r.Degrade(0); err == nil {
		t.Fatal("Degrade accepted while degraded and restoring")
	}
	if !runUntil(r, 40000, func() bool { return r.DeadPort() < 0 }) {
		t.Fatalf("idle restore never completed; restoring=%v", r.Restoring())
	}
}

// TestDegradeRestoreCycleAllPorts drives repeated degrade→restore cycles
// across every port under load: after each re-admission the restored
// port must carry traffic again in both directions, every delivered
// packet must be intact, and packet conservation must hold exactly
// across the whole history.
func TestDegradeRestoreCycleAllPorts(t *testing.T) {
	cfg := router.DefaultConfig()
	ev := &trace.EventLog{}
	cfg.Events = ev
	r := mustNew(t, cfg)

	rng := traffic.NewRNG(7)
	id := uint16(0)
	sent := map[uint16]ip.Packet{}
	gen := func(p int) ip.Packet {
		id++
		size := []int{64, 128, 256, 512}[rng.Intn(4)]
		pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
		sent[id] = pkt
		return pkt
	}

	for _, dead := range []int{1, 3, 0, 2} {
		for c := 0; c < 2000; c += 200 {
			feedSaturated(r, gen)
			r.Run(200)
		}
		if err := r.Degrade(dead); err != nil {
			t.Fatalf("Degrade(%d): %v", dead, err)
		}
		for c := 0; c < 4000; c += 200 {
			feedSaturated(r, gen)
			r.Run(200)
		}
		if err := r.Restore(dead); err != nil {
			t.Fatalf("Restore(%d): %v", dead, err)
		}
		if !runUntil(r, 400000, func() bool { return r.DeadPort() < 0 && !r.Restoring() }) {
			t.Fatalf("restore of port %d never completed", dead)
		}
		if !runUntil(r, 100000, func() bool { return r.ProbationPort() < 0 }) {
			t.Fatalf("port %d stuck in probation", dead)
		}
		if r.Failed() {
			t.Fatalf("router fail-stopped during cycle on port %d", dead)
		}

		// The re-admitted port must source and sink traffic again.
		inBefore, outBefore := r.Stats().PktsIn[dead], r.Stats().PktsOut[dead]
		for c := 0; c < 20000; c += 200 {
			feedSaturated(r, gen)
			r.Run(200)
		}
		if r.Stats().PktsIn[dead] <= inBefore {
			t.Fatalf("port %d sourced no packets after restore", dead)
		}
		if r.Stats().PktsOut[dead] <= outBefore {
			t.Fatalf("port %d delivered no packets after restore", dead)
		}
	}

	// Let the fabric drain dry, then check conservation and integrity.
	r.Run(200000)
	var in, out int64
	for p := 0; p < 4; p++ {
		in += r.Stats().PktsIn[p]
		out += r.Stats().PktsOut[p]
	}
	if in != out+r.Stats().FabricLost {
		t.Fatalf("conservation: PktsIn %d != PktsOut %d + FabricLost %d",
			in, out, r.Stats().FabricLost)
	}
	var delivered int64
	for p := 0; p < 4; p++ {
		pkts, err := r.DrainOutput(p)
		if err != nil {
			t.Fatalf("output %d corrupt: %v", p, err)
		}
		for _, got := range pkts {
			want, ok := sent[got.Header.ID]
			if !ok {
				t.Fatalf("output %d delivered unknown packet id %d", p, got.Header.ID)
			}
			for i := range want.Payload {
				if got.Payload[i] != want.Payload[i] {
					t.Fatalf("id %d payload word %d corrupted", got.Header.ID, i)
				}
			}
			delivered++
		}
	}
	// A manual mid-load Degrade can land in the few-cycle window after a
	// packet's last word reached the pins but before the firmware's
	// completion callbacks ran: the reset drops the pending PktsIn/PktsOut
	// increments, so the packet escaped intact but is invisible to every
	// counter. At most one packet per egress port can sit in that window
	// per degrade, so the counters are conservative within that bound —
	// never lossy, and never double-counted.
	const degrades = 4
	if delivered < out || delivered > out+4*degrades {
		t.Fatalf("drained %d packets outside [PktsOut %d, PktsOut+%d]",
			delivered, out, 4*degrades)
	}

	// The event log must show each port walking the recovery state
	// machine: restore-drain → readmit → live.
	log := ev.String()
	for _, want := range []string{"restore-drain", "readmit", "live"} {
		if !strings.Contains(log, want) {
			t.Fatalf("event log missing %q:\n%s", want, log)
		}
	}
}

// TestAutoRestoreAfterThaw is the headline self-healing scenario: a
// crossbar tile freezes under load, the watchdog degrades the fabric,
// the tile thaws (a transient freeze, not a crash), the watchdog notices
// the parked processor's heartbeat moving again and re-admits the port
// automatically — no operator action anywhere.
func TestAutoRestoreAfterThaw(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.Watchdog = true
	cfg.WatchdogCycles = 4000
	cfg.AutoRestore = true
	ev := &trace.EventLog{}
	cfg.Events = ev
	r := mustNew(t, cfg)

	// Port 1's crossbar is tile 6; freeze it at 3000 for 40000 cycles.
	inj := fault.NewInjector(fault.MustParse("freeze@3000+40000:t6"), 16)
	r.Chip.InstallFaults(inj)

	rng := traffic.NewRNG(41)
	id := uint16(0)
	sent := map[uint16]ip.Packet{}
	gen := func(p int) ip.Packet {
		id++
		size := []int{64, 128, 256, 512}[rng.Intn(4)]
		pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
		sent[id] = pkt
		return pkt
	}

	for c := 0; c < 40000 && r.DeadPort() < 0; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	if r.DeadPort() != 1 || r.Failed() {
		t.Fatalf("watchdog: dead=%d failed=%v, want dead=1", r.DeadPort(), r.Failed())
	}

	// Keep the degraded fabric loaded; the tile thaws at cycle 43000 and
	// the watchdog should notice, drain, and re-admit on its own.
	if !runUntil(r, 600000, func() bool { return r.DeadPort() < 0 && r.ProbationPort() < 0 }) {
		t.Fatalf("auto-restore never completed: dead=%d restoring=%v probation=%d failed=%v",
			r.DeadPort(), r.Restoring(), r.ProbationPort(), r.Failed())
	}
	if r.Failed() {
		t.Fatal("router fail-stopped instead of auto-restoring")
	}

	// Full service on the restored port, both directions.
	inBefore, outBefore := r.Stats().PktsIn[1], r.Stats().PktsOut[1]
	for c := 0; c < 20000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	r.Run(200000)
	if r.Stats().PktsIn[1] <= inBefore || r.Stats().PktsOut[1] <= outBefore {
		t.Fatalf("port 1 not back in service: in %d->%d out %d->%d",
			inBefore, r.Stats().PktsIn[1], outBefore, r.Stats().PktsOut[1])
	}
	if r.Failed() || r.DeadPort() >= 0 {
		t.Fatalf("fabric unhealthy after restore: dead=%d failed=%v", r.DeadPort(), r.Failed())
	}

	var in, out int64
	for p := 0; p < 4; p++ {
		in += r.Stats().PktsIn[p]
		out += r.Stats().PktsOut[p]
	}
	if in != out+r.Stats().FabricLost {
		t.Fatalf("conservation: PktsIn %d != PktsOut %d + FabricLost %d",
			in, out, r.Stats().FabricLost)
	}
	for p := 0; p < 4; p++ {
		if _, err := r.DrainOutput(p); err != nil {
			t.Fatalf("output %d corrupt after auto-restore: %v", p, err)
		}
	}
	log := ev.String()
	for _, want := range []string{"degrade", "restore-drain", "readmit", "live"} {
		if !strings.Contains(log, want) {
			t.Fatalf("event log missing %q:\n%s", want, log)
		}
	}
}

// TestRestoredThroughputMatchesHealthy: after a full degrade→restore
// cycle the fabric must forward at its healthy rate — within 1% of a
// never-degraded router over the same saturated measurement window.
func TestRestoredThroughputMatchesHealthy(t *testing.T) {
	const warmup, window = 20000, 100000

	measure := func(r *router.Router) int64 {
		rng := traffic.NewRNG(1234)
		id := uint16(0)
		gen := func(p int) ip.Packet {
			id++
			return ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, 256, id)
		}
		for c := 0; c < warmup; c += 200 {
			feedSaturated(r, gen)
			r.Run(200)
		}
		var start int64
		for p := 0; p < 4; p++ {
			start += r.OutputWords(p)
		}
		for c := 0; c < window; c += 200 {
			feedSaturated(r, gen)
			r.Run(200)
		}
		var end int64
		for p := 0; p < 4; p++ {
			end += r.OutputWords(p)
		}
		return end - start
	}

	healthy := mustNew(t, router.DefaultConfig())
	base := measure(healthy)

	restored := mustNew(t, router.DefaultConfig())
	if err := restored.Degrade(2); err != nil {
		t.Fatal(err)
	}
	restored.Run(10000)
	if err := restored.Restore(2); err != nil {
		t.Fatal(err)
	}
	if !runUntil(restored, 100000, func() bool {
		return restored.DeadPort() < 0 && restored.ProbationPort() < 0
	}) {
		t.Fatal("restore never completed")
	}
	got := measure(restored)

	diff := got - base
	if diff < 0 {
		diff = -diff
	}
	if base == 0 || float64(diff) > 0.01*float64(base) {
		t.Fatalf("restored throughput %d words vs healthy %d (|diff| %d > 1%%)",
			got, base, diff)
	}
}

// TestWatchdogAmbiguityFailStop: two crossbar tiles wedged at once
// cannot be masked as a single hole; the watchdog must fail-stop, and a
// failed router must refuse both Degrade and Restore.
func TestWatchdogAmbiguityFailStop(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.Watchdog = true
	cfg.WatchdogCycles = 4000
	r := mustNew(t, cfg)

	// Ports 0 and 1: crossbar tiles 5 and 6.
	inj := fault.NewInjector(fault.MustParse("crash@3000:t5;crash@3000:t6"), 16)
	r.Chip.InstallFaults(inj)

	if !runUntil(r, 80000, r.Failed) {
		t.Fatalf("watchdog never fail-stopped: dead=%d", r.DeadPort())
	}
	if r.DeadPort() >= 0 {
		t.Fatalf("ambiguous wedge was attributed to port %d", r.DeadPort())
	}
	if err := r.Degrade(0); err == nil {
		t.Fatal("Degrade accepted after fail-stop")
	}
	if err := r.Restore(0); err == nil {
		t.Fatal("Restore accepted after fail-stop")
	}
}

// TestLineFlapReprobe: a line that stops delivering words mid-packet is
// declared down after the underrun strikes, probed on the seeded backoff
// schedule, and comes back up when words resume — discarding exactly the
// cut-off packet's residue to resynchronize at a packet boundary.
func TestLineFlapReprobe(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.UnderrunQuanta = 2
	cfg.ReprobeQuanta = 4
	cfg.ReprobeSeed = 99
	ev := &trace.EventLog{}
	cfg.Events = ev
	r := mustNew(t, cfg)

	// Push only the first 10 words of a 64-word packet: the ingress
	// acquires the header, claims the full length, and starves.
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 7), 64, 256, 5)
	words := pkt.Words()
	for _, w := range words[:10] {
		r.InputPins(0).Push(raw.Word(w))
	}
	if !runUntil(r, 200000, func() bool { return r.LineDown(0) }) {
		t.Fatalf("line never declared down; stats %+v", r.Stats())
	}
	if r.Stats().AbortDropped[0] != 1 {
		t.Fatalf("AbortDropped[0] = %d, want 1", r.Stats().AbortDropped[0])
	}

	// Silent probes back off but keep coming.
	r.Run(400000)
	if r.Stats().Reprobes[0] == 0 {
		t.Fatal("no silent reprobes on a down line")
	}
	if !r.LineDown(0) {
		t.Fatal("silent probes brought a dead line up")
	}

	// The line resumes: complete the cut-off packet's words (they are the
	// residue the resync must discard), then send a fresh packet.
	for _, w := range words[10:] {
		r.InputPins(0).Push(raw.Word(w))
	}
	fresh := ip.NewPacket(traffic.PortAddr(0, 2), traffic.PortAddr(2, 7), 64, 256, 6)
	r.OfferPacket(0, &fresh)

	if !runUntil(r, 600000, func() bool { return r.Stats().PktsOut[2] >= 1 }) {
		t.Fatalf("fresh packet never delivered after flap; stats %+v", r.Stats())
	}
	if r.LineDown(0) {
		t.Fatal("line still down after recovery")
	}
	if r.Stats().Recovered[0] != 1 {
		t.Fatalf("Recovered[0] = %d, want 1", r.Stats().Recovered[0])
	}
	// 64-word packet, 10 words arrived before the cut (5 header consumed
	// at acquire + 5 payload drained during the strikes): 54 residue words.
	if r.Stats().FlapDrops[0] != int64(len(words)-10) {
		t.Fatalf("FlapDrops[0] = %d, want %d", r.Stats().FlapDrops[0], len(words)-10)
	}
	out, err := r.DrainOutput(2)
	if err != nil || len(out) != 1 || out[0].Header.ID != 6 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for i, w := range fresh.Payload {
		if out[0].Payload[i] != w {
			t.Fatalf("payload word %d corrupted", i)
		}
	}
	log := ev.String()
	if !strings.Contains(log, "line-down") || !strings.Contains(log, "line-up") {
		t.Fatalf("event log missing line transitions:\n%s", log)
	}
}

// TestReprobeForcedControl: a scheduled reprobe control fires the probe
// immediately, recovering a line that flapped back up long before the
// backoff schedule would have looked — the "raised then cleared" case.
func TestReprobeForcedControl(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.UnderrunQuanta = 2
	cfg.ReprobeQuanta = 100000 // backoff so long only the control can probe
	r := mustNew(t, cfg)

	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(3, 7), 64, 256, 9)
	words := pkt.Words()
	for _, w := range words[:10] {
		r.InputPins(0).Push(raw.Word(w))
	}
	if !runUntil(r, 200000, func() bool { return r.LineDown(0) }) {
		t.Fatal("line never declared down")
	}

	// The line comes back within the same quantum the probe would find it:
	// push the residue plus a fresh packet, then force the probe.
	for _, w := range words[10:] {
		r.InputPins(0).Push(raw.Word(w))
	}
	fresh := ip.NewPacket(traffic.PortAddr(0, 2), traffic.PortAddr(3, 7), 64, 256, 10)
	r.OfferPacket(0, &fresh)
	r.ScheduleReprobe(r.Cycle()+1, 0)

	if !runUntil(r, 200000, func() bool { return r.Stats().PktsOut[3] >= 1 }) {
		t.Fatalf("forced reprobe did not recover the line; stats %+v", r.Stats())
	}
	if r.Stats().Reprobes[0] != 0 {
		t.Fatalf("Reprobes[0] = %d, want 0 (control fired before any scheduled probe)", r.Stats().Reprobes[0])
	}
	if r.Stats().Recovered[0] != 1 {
		t.Fatalf("Recovered[0] = %d, want 1", r.Stats().Recovered[0])
	}
}

// TestLatchedLineDownUnchanged: with ReprobeQuanta zero the pre-reprobe
// behavior is preserved bit-for-bit — the line latches down forever and
// the pending drain is zeroed.
func TestLatchedLineDownUnchanged(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.UnderrunQuanta = 2
	r := mustNew(t, cfg)

	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 7), 64, 256, 5)
	words := pkt.Words()
	for _, w := range words[:10] {
		r.InputPins(0).Push(raw.Word(w))
	}
	if !runUntil(r, 200000, func() bool { return r.LineDown(0) }) {
		t.Fatal("line never declared down")
	}
	if r.PendingDrainWords(0) != 0 {
		t.Fatalf("latched mode kept pendingDrain=%d, want 0", r.PendingDrainWords(0))
	}
	for _, w := range words[10:] {
		r.InputPins(0).Push(raw.Word(w))
	}
	r.Run(400000)
	if !r.LineDown(0) || r.Stats().Recovered[0] != 0 || r.Stats().Reprobes[0] != 0 {
		t.Fatalf("latched line reprobed: down=%v recovered=%d reprobes=%d",
			r.LineDown(0), r.Stats().Recovered[0], r.Stats().Reprobes[0])
	}
}

// TestScheduledRestoreControl: a restore@ control from a fault schedule
// re-admits a degraded port deterministically, with no operator call.
func TestScheduledRestoreControl(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	if err := r.Degrade(3); err != nil {
		t.Fatal(err)
	}
	s := fault.MustParse("restore@5000:p3")
	for _, c := range s.Controls() {
		switch c.Kind {
		case fault.KindRestore:
			r.ScheduleRestore(c.Start, c.Tile)
		case fault.KindReprobe:
			r.ScheduleReprobe(c.Start, c.Tile)
		}
	}
	if !runUntil(r, 100000, func() bool { return r.DeadPort() < 0 && r.ProbationPort() < 0 }) {
		t.Fatalf("scheduled restore never completed: dead=%d restoring=%v",
			r.DeadPort(), r.Restoring())
	}
	pkt := ip.NewPacket(traffic.PortAddr(3, 1), traffic.PortAddr(0, 7), 64, 256, 77)
	r.OfferPacket(3, &pkt)
	if !runUntil(r, 40000, func() bool { return r.Stats().PktsOut[0] >= 1 }) {
		t.Fatalf("restored port carried no traffic; stats %+v", r.Stats())
	}
}
