package router

import "repro/internal/lookup"

// BindPorts builds a forwarding table covering n edge-port prefixes in
// the experiments' canonical addressing (edge port e owns (10+e).0.0.0/8,
// see traffic.PortPrefix): each prefix is bound to the chip-local next
// hop the caller's hop function returns. It is the single edge-port
// binding helper shared by the single-chip canonical table and the
// multi-chip cluster compositions, where hop points remote prefixes at a
// trunk port.
func BindPorts(n int, hop func(ext int) lookup.NextHop) *lookup.Patricia {
	var t lookup.Patricia
	for e := 0; e < n; e++ {
		if err := t.Insert(uint32(10+e)<<24, 8, hop(e)); err != nil {
			panic(err)
		}
	}
	return &t
}
