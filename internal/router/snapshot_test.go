package router_test

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/traffic"
)

// snapCfg is the chaos configuration the checkpoint tests run: watchdog
// with auto-restore, a crossbar freeze that thaws, and checkpointing on.
func snapCfg(workers int) router.Config {
	cfg := router.DefaultConfig()
	cfg.Checkpoint = true
	cfg.Watchdog = true
	cfg.WatchdogCycles = 2000
	cfg.AutoRestore = true
	cfg.ReadmitQuanta = 4
	cfg.Workers = workers
	return cfg
}

// snapFeed offers a deterministic burst to every port.
func snapFeed(r *router.Router) {
	rng := traffic.NewRNG(2024)
	id := uint16(0)
	for p := 0; p < 4; p++ {
		for r.InputBacklogWords(p) < 8000 {
			id++
			size := []int{64, 128, 256, 512}[rng.Intn(4)]
			pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
			r.OfferPacket(p, &pkt)
		}
	}
}

func snapInjector() *fault.Injector {
	// Port 1's crossbar freezes at 3000 and thaws at 9000: the run
	// degrades, auto-restores, and re-admits — all inside the replayed
	// window, so the checkpoint must reproduce the whole recovery arc.
	return fault.NewInjector(fault.MustParse("freeze@3000+6000:t6"), 16)
}

// TestRouterSnapshotDeterminism: checkpoint mid-run (after a degrade →
// auto-restore arc, with outputs partially drained), restore into a
// fresh router, continue — and the continuation must be bit-for-bit
// identical to the uninterrupted run, at one worker and at NumCPU.
func TestRouterSnapshotDeterminism(t *testing.T) {
	workersList := []int{1, runtime.NumCPU()}
	var fingerprints [][]byte
	for _, workers := range workersList {
		// Uninterrupted reference run.
		ref := mustNew(t, snapCfg(workers))
		ref.Chip.InstallFaults(snapInjector())
		snapFeed(ref)
		ref.Run(8000)
		refMid := drainAll(t, ref)
		ref.Run(7000) // through the restore arc
		blob, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		ref.Run(15000)
		refFinal, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		refTail := drainAll(t, ref)

		// Crash here: rebuild from scratch and restore the checkpoint.
		res := mustNew(t, snapCfg(workers))
		res.Chip.InstallFaults(snapInjector())
		if err := res.RestoreSnapshot(blob); err != nil {
			t.Fatalf("workers=%d: restore: %v", workers, err)
		}
		if res.Cycle() != 15000 {
			t.Fatalf("workers=%d: restored cycle %d, want 15000", workers, res.Cycle())
		}
		res.Run(15000)
		resFinal, err := res.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refFinal, resFinal) {
			t.Fatalf("workers=%d: continuation diverged from uninterrupted run (snapshot %d vs %d bytes)",
				workers, len(refFinal), len(resFinal))
		}
		resTail := drainAll(t, res)
		if len(refMid) == 0 || len(refTail) == 0 {
			t.Fatalf("workers=%d: degenerate run (mid=%d tail=%d packets)",
				workers, len(refMid), len(refTail))
		}
		comparePackets(t, refTail, resTail)
		fingerprints = append(fingerprints, refFinal)
	}
	// The parallel engine is cycle-exact, so the checkpoint itself must
	// be identical across worker counts.
	for i := 1; i < len(fingerprints); i++ {
		if !bytes.Equal(fingerprints[0], fingerprints[i]) {
			t.Fatalf("snapshot differs between workers=%d and workers=%d",
				workersList[0], workersList[i])
		}
	}
}

func drainAll(t *testing.T, r *router.Router) []ip.Packet {
	t.Helper()
	var all []ip.Packet
	for p := 0; p < 4; p++ {
		pkts, err := r.DrainOutput(p)
		if err != nil {
			t.Fatalf("output %d corrupt: %v", p, err)
		}
		all = append(all, pkts...)
	}
	return all
}

func comparePackets(t *testing.T, a, b []ip.Packet) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("continuation delivered %d packets, reference %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Header.ID != b[i].Header.ID || len(a[i].Payload) != len(b[i].Payload) {
			t.Fatalf("packet %d differs: id %d vs %d", i, a[i].Header.ID, b[i].Header.ID)
		}
		for j := range a[i].Payload {
			if a[i].Payload[j] != b[i].Payload[j] {
				t.Fatalf("packet %d payload word %d differs", i, j)
			}
		}
	}
}

// TestRouterSnapshotErrors: the wrapper rejects un-checkpointed routers
// and detects a replay environment that does not match the blob.
func TestRouterSnapshotErrors(t *testing.T) {
	plain := mustNew(t, router.DefaultConfig())
	if _, err := plain.Snapshot(); err == nil {
		t.Fatal("Snapshot accepted without Config.Checkpoint")
	}
	if err := plain.RestoreSnapshot(nil); err == nil {
		t.Fatal("RestoreSnapshot accepted without Config.Checkpoint")
	}

	cfg := router.DefaultConfig()
	cfg.Checkpoint = true
	src := mustNew(t, cfg)
	src.Chip.InstallFaults(snapInjector())
	snapFeed(src)
	src.Run(5000)
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	junk := mustNew(t, cfg)
	if err := junk.RestoreSnapshot([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage blob accepted")
	}

	// Same config but no fault injector: the replay takes a different
	// trajectory and must be rejected, not silently adopted.
	bare := mustNew(t, cfg)
	if err := bare.RestoreSnapshot(blob); err == nil {
		t.Fatal("replay without the original fault schedule accepted")
	}
}
