package router

import (
	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/raw"
)

// ipAddr converts a machine word to an IP address.
func ipAddr(w raw.Word) ip.Addr { return ip.Addr(w) }

// lookupNoRoute is the reply for an unroutable destination.
const lookupNoRoute raw.Word = 0xffffffff

// lookupMcastBit flags a multicast reply; the low nibble carries the
// egress member mask.
const lookupMcastBit raw.Word = 1 << 31

// DRAM layout of the compressed forwarding table (§8.2: Degermark-style
// small forwarding tables): a 2^16-entry first level, then 2^16-entry
// chunks for long prefixes. Tables are double-buffered (§2.2.1: the
// network processor updates the forwarding engines' table copies while
// they forward): epoch 0 and epoch 1 occupy disjoint DRAM regions, so a
// table switch needs no cache invalidation — the new epoch's addresses
// have never been cached.
const (
	lkL1Base     raw.Word = 0x0010_0000
	lkChunkBase  raw.Word = 0x0100_0000
	lkL1Base2    raw.Word = 0x0800_0000
	lkChunkBase2 raw.Word = 0x0900_0000
	lkChunkSize  raw.Word = 1 << 16
)

// lookupFW is the Lookup Processor firmware (§4.2): it serves its ingress
// one destination lookup at a time against the forwarding table in
// off-chip DRAM through the data cache (1 probe for prefixes up to /16,
// 2 probes beyond). Hot prefixes stay cache-resident, which is what keeps
// the lookup off the router's critical path in steady state.
type lookupFW struct {
	rt   *Router
	port int

	// sched is the compiled cycle-cost schedule (shared by all four
	// lookup instances, surviving degrade/restore/park); phase indexes
	// it. Written only while the tile executes firmware ops, read by the
	// macro-stepper between cycles (workers parked).
	sched *FWSchedule
	phase int

	dst raw.Word
	v1  raw.Word
}

// SteadyState implements raw.SteadyFirmware: the compiled schedule says
// whether the current phase presents a constant per-cycle profile.
func (f *lookupFW) SteadyState() bool { return f.sched.Steady(f.phase) }

func (f *lookupFW) Refill(e *raw.Exec) {
	f.phase = lkPhaseAwait
	e.Recv(func(w raw.Word) { f.dst = w })
	e.Then(func(e *raw.Exec) {
		// Class D (224.0.0.0/4): the §8.6 multicast group table, modeled
		// as a small associative memory beside the lookup processor.
		if f.dst>>28 == 0xE && f.rt.cfg.Multicast {
			mask, ok := f.rt.cfg.Groups[ipAddr(f.dst)]
			e.Compute(3) // the CAM probe
			e.SendFunc(func() raw.Word {
				f.rt.stats.Lookups[f.port]++
				if !ok || mask == 0 {
					return lookupNoRoute
				}
				return lookupMcastBit | raw.Word(mask&0xf)
			})
			return
		}
		f.probe(e)
	})
}

func (f *lookupFW) probe(e *raw.Exec) {
	f.phase = lkPhaseProbe
	l1, chunks := tableBases(f.rt.tableEpoch)
	// Level-1 probe.
	e.CacheRead(func() raw.Word { return l1 + f.dst>>16 },
		func(w raw.Word) { f.v1 = w })
	e.Then(func(e *raw.Exec) {
		f.rt.stats.Lookups[f.port]++
		v := int32(f.v1)
		if v >= -1 {
			e.SendFunc(func() raw.Word { return replyWord(v) })
			return
		}
		// Long prefix: second probe into the chunk.
		chunk := raw.Word(-2 - v)
		e.CacheRead(func() raw.Word {
			return chunks + chunk*lkChunkSize + f.dst&0xffff
		}, func(w raw.Word) {
			f.v1 = w
		})
		e.Then(func(e *raw.Exec) {
			e.SendFunc(func() raw.Word { return replyWord(int32(f.v1)) })
		})
	})
}

// tableBases returns the DRAM bases of the given table epoch.
func tableBases(epoch int) (l1, chunks raw.Word) {
	if epoch&1 == 0 {
		return lkL1Base, lkChunkBase
	}
	return lkL1Base2, lkChunkBase2
}

func replyWord(v int32) raw.Word {
	if v < 0 {
		return lookupNoRoute
	}
	return raw.Word(v)
}

// TableImage serializes a compact forwarding table into (address, words)
// pairs for the DRAM controller, at epoch 0's bases.
func TableImage(t *lookup.Patricia) []TableSegment {
	return TableImageAt(t, 0)
}

// TableImageAt serializes the table at the given epoch's DRAM bases.
func TableImageAt(t *lookup.Patricia, epoch int) []TableSegment {
	c := lookup.NewCompactTable(t)
	l1, chunks := c.Image()
	l1Base, chunkBase := tableBases(epoch)
	segs := []TableSegment{{Addr: l1Base, Words: l1}}
	for i, ch := range chunks {
		segs = append(segs, TableSegment{
			Addr:  chunkBase + raw.Word(i)*lkChunkSize,
			Words: ch,
		})
	}
	return segs
}

// TableSegment is one contiguous DRAM region of the forwarding table.
type TableSegment struct {
	Addr  raw.Word
	Words []uint32
}
