package router

import (
	"fmt"
	"sync"

	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/mem"
	"repro/internal/raw"
	"repro/internal/rotor"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// sharedIndex caches the fault-tolerant configuration index: it is a
// pure function of the 4-port ring, and enumerating the space on every
// router construction would dominate test setup. The FT index keeps the
// 27 healthy configurations in their usual slots (healthy dispatch is
// identical to the plain minimized index) and appends the handful only
// the degraded allocator can reach, so a router can be re-armed for
// degraded operation without regenerating its jump table.
var sharedIndex = sync.OnceValue(func() *rotor.ConfigIndex {
	return rotor.NewConfigIndexFT(4)
})

// sharedMixedIndex caches the §8.6 mixed unicast/multicast space (the
// 16⁴×4 = 262,144-configuration enumeration takes a few hundred ms).
var sharedMixedIndex = sync.OnceValue(func() *rotor.ConfigIndex {
	return rotor.NewMixedConfigIndex(4)
})

// Config parameterizes the cycle-level router.
type Config struct {
	// ClockHz is the chip clock (250 MHz prototype).
	ClockHz float64
	// QuantumWords bounds one crossbar fragment (default 256 = one
	// 1,024-byte packet).
	QuantumWords int
	// AllocCycles models the jump-table index computation on the
	// crossbar processors (§6.5).
	AllocCycles int
	// HeaderCycles models the ingress IP header verify/update (§4.2).
	HeaderCycles int
	// DRAMLatency is the off-chip access time in cycles.
	DRAMLatency int
	// Table is the forwarding table, loaded into simulated DRAM as a
	// compressed two-level structure for the lookup tiles. Nil installs
	// the canonical four-prefix table (port p owns 10+p/8).
	Table *lookup.Patricia
	// Crypto enables the §8.3 computation-in-fabric extension: payloads
	// are stream-ciphered with CryptoKey on the way out, costing
	// CryptoCyclesPerWord on the egress processors.
	Crypto              bool
	CryptoKey           uint32
	CryptoCyclesPerWord int
	// Weights, if non-nil (length 4), give each port's token dwell in
	// quanta — the §8.7 weighted round-robin QoS.
	Weights []int
	// Multicast enables the §8.6 extension: the crossbar runs the mixed
	// unicast/multicast configuration space (51 switch routines instead
	// of 27) with fanout-splitting, and the lookup tiles resolve
	// 224.0.0.0/4 destinations through Groups.
	Multicast bool
	// Groups maps multicast group addresses to egress member masks.
	Groups map[ip.Addr]uint8
	// Watchdog enables the quantum-progress supervisor: if the crossbar
	// stops granting quanta for WatchdogCycles and the wedge can be
	// attributed to exactly one crossbar tile (its processor stopped
	// being stepped — a crash or freeze fault), the router masks that
	// tile out of the token rotation and continues on three ports.
	// Incompatible with Multicast.
	Watchdog bool
	// WatchdogCycles is the no-progress window before the watchdog acts
	// (default 20,000 cycles ≈ 80 µs at 250 MHz).
	WatchdogCycles int64
	// UnderrunQuanta, if > 0, bounds how many consecutive quanta an
	// ingress waits for its line card before aborting the stalled packet;
	// the bound doubles per abort (backoff), and after three aborts the
	// port is declared down. 0 waits forever (flow control only).
	UnderrunQuanta int
	// ReprobeQuanta, if > 0, arms line-flap retry: a port declared down
	// re-probes its line after ReprobeQuanta quanta, doubling the wait on
	// every silent probe (exponential backoff with seeded jitter from
	// ReprobeSeed), and comes back up when line words resume — a
	// transient flap recovers instead of latching the port dead. 0 keeps
	// the latch-forever behavior.
	ReprobeQuanta int
	// ReprobeSeed seeds the per-port xorshift64* jitter on the reprobe
	// backoff; the stream is firmware state, so it replays bit-for-bit at
	// any worker count.
	ReprobeSeed uint64
	// ReadmitQuanta is the probation window, in quanta, after Restore
	// re-enters a degraded port into token rotation: the re-admitted tile
	// exchanges headers, relays ring traffic, and holds the token, but
	// its egress stays quarantined and its ingress sends only empty
	// headers until the window expires. 0 selects the default (8); < 0
	// disables probation (immediate full service).
	ReadmitQuanta int
	// AutoRestore lets the watchdog re-admit the degraded port when the
	// dead crossbar tile's heartbeat resumes (a thawed freeze, as opposed
	// to a permanent crash). Requires Watchdog.
	AutoRestore bool
	// Events, if non-nil, receives recovery-state-machine transitions
	// (line-down/line-up, degrade, restore-drain, readmit, live,
	// fail-stop).
	Events *trace.EventLog
	// Metrics, if non-nil, arms the telemetry plane: the collector
	// receives one QuantumSample per completed quantum and a copy of
	// every recovery event, and TelemetrySnapshot folds its accumulated
	// state into the exported snapshot. Nil (the default) disables
	// collection; like Events and the raw fault plane, the disabled cost
	// is a nil check on paths that already run.
	Metrics *telemetry.Collector
	// Checkpoint enables input recording at construction so the router
	// can Snapshot (see snapshot.go). Off by default: the log costs
	// memory proportional to the words offered.
	Checkpoint bool
	// Tracer, if set, receives per-tile per-cycle states (Figure 7-3).
	Tracer raw.Tracer
	// Workers shards chip stepping across host goroutines (0 or 1 =
	// sequential). The parallel engine is cycle-exact — identical traces
	// and counters at any worker count — so this is purely a host
	// performance knob.
	Workers int
	// Engine selects the chip's cycle engine: raw.EngineRef (the
	// reference interpreter, the zero value) or raw.EngineFast (compiled
	// route tables and idle-tile skipping). The fast engine is
	// bit-for-bit identical to the reference — same words, cycle counts,
	// telemetry, and checkpoints — so, like Workers, this is purely a
	// host performance knob.
	Engine raw.Engine
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		ClockHz:             raw.DefaultClockHz,
		QuantumWords:        256,
		AllocCycles:         8,
		HeaderCycles:        4,
		DRAMLatency:         20,
		CryptoCyclesPerWord: 2,
	}
}

// Stats are the router's internal counters, updated by firmware. Read
// them through Router.Stats(), which returns an immutable snapshot; the
// live struct is router-internal.
type Stats struct {
	// Accepted counts packets that passed ingress validation; Dropped
	// those that failed (bad checksum, TTL, no route).
	Accepted, Dropped [4]int64
	// Denied counts quanta an ingress requested and lost arbitration.
	Denied [4]int64
	// FragsSent counts fragments streamed into the crossbar.
	FragsSent [4]int64
	// PktsIn counts packets fully streamed in; PktsOut packets delivered
	// at egress; Reassembled the multi-fragment subset.
	PktsIn, PktsOut, Reassembled [4]int64
	// Lookups counts route lookups served.
	Lookups [4]int64
	// McastIn counts multicast packets fully served at ingress; McastCopies
	// the egress copies they produced.
	McastIn, McastCopies [4]int64
	// AbortDropped counts packets abandoned by robustness machinery:
	// underrun timeouts, degraded-mode resets, and dead-egress routes.
	AbortDropped [4]int64
	// Underruns counts quanta an ingress idled because its line card had
	// not yet delivered the words the fragment needed.
	Underruns [4]int64
	// Reprobes counts silent line probes on a down port; Recovered counts
	// line-up transitions a probe detected; FlapDrops counts the line
	// words discarded to resynchronize a recovered line to its next
	// packet boundary.
	Reprobes, Recovered, FlapDrops [4]int64
	// FabricLost counts packets that were fully inside the fabric
	// (streamed in, not yet delivered) when a degraded-mode reset
	// discarded all in-flight state.
	FabricLost int64
}

// StatsSnapshot is an immutable, versioned copy of the router's counters
// returned by Stats(). Schema tracks telemetry.SchemaVersion; Cycle is
// the chip cycle the snapshot was taken at. The embedded Stats fields
// are values, so a snapshot never changes as the simulation advances.
//
// MacroWindows, MacroCycles, and MacroDisarms surface the fast engine's
// macro-step engagement (raw.Chip.MacroStats / MacroDisarms): how many
// multi-cycle windows executed, the cycles they covered, and the
// per-cause histogram of declined windows. All zero under the reference
// engine; they are host-engine observability, not part of the
// cross-engine equivalence surface.
type StatsSnapshot struct {
	Schema       int
	Cycle        int64
	MacroWindows int64
	MacroCycles  int64
	MacroDisarms [raw.NumMacroCauses]int64
	Stats
}

// Router is the assembled 4-port Raw router.
type Router struct {
	Chip *raw.Chip
	Mem  *mem.Controller
	cfg  Config
	ci   *rotor.ConfigIndex

	ins  [4]*raw.StaticIn
	outs [4]*raw.EdgeSink

	// Firmware handles, needed by the watchdog and degrade procedure.
	xbars [4]*xbarFW
	ings  [4]*ingressFW
	egrs  [4]*egressFW

	stats Stats

	// lastSampledQ is the last quantum boundary the telemetry plane
	// ingested (see sampleTelemetry in telemetry.go).
	lastSampledQ int64

	// Degraded-mode state: deadPort is the masked crossbar tile (-1
	// healthy); failed means a second wedge (or an unattributable one)
	// stopped the fabric for good; reportPort is the crossbar that fires
	// onQuantum.
	deadPort   int
	failed     bool
	reportPort int

	// Recovery state (see restore.go). wd is the installed watchdog (nil
	// without cfg.Watchdog); xprogs and lookups retain the healthy
	// switch programs and lookup firmware so Restore can re-install them
	// without regeneration. restoring marks the drain window between
	// Restore and the quantum-boundary reconfiguration; restoreArmed and
	// restoreMark implement the two-interval output-stability check.
	// probationPort is the re-admitted port still in probation (-1 none).
	// readmitQuanta is cfg.ReadmitQuanta resolved (default applied).
	wd            *watchdog
	xprogs        [4]*XbarProgram
	lookups       [4]*lookupFW
	restoring     bool
	restoreArmed  bool
	restoreMark   [4]int64
	probationPort int
	readmitQuanta int
	controls      []control
	lineDownSeen  [4]bool

	// onQuantum, if set, is called once per quantum (from crossbar 0)
	// with the executed allocation.
	onQuantum func(q int64, a rotor.Allocation)

	// parse buffers for DrainOutput; parsed counts each output stream's
	// absolute parse position and cuts the offsets where a degrade
	// truncated the stream mid-packet.
	parseBuf [4][]uint32
	parsed   [4]int64
	cuts     [4][]int64

	// scheds are the compiled firmware cycle-cost schedules (see
	// fwsched.go): one per kind, shared by all four instances and
	// re-presented unchanged across degrade/restore/park.
	scheds fwSchedules

	// tableEpoch selects which double-buffered DRAM table the lookup
	// tiles consult (§2.2.1 table management; flipped by UpdateTable).
	tableEpoch int

	// tableLog records every mid-run UpdateTable when cfg.Checkpoint:
	// DRAM pokes happen outside the chip's input log, so checkpoint
	// restore re-applies them at the recorded cycles (raw.ReplayOp).
	tableLog []tableUpdate
}

// New builds and programs the router.
func New(cfg Config) (*Router, error) {
	if cfg.ClockHz == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Weights != nil && len(cfg.Weights) != 4 {
		return nil, fmt.Errorf("router: weights must have 4 entries, got %d", len(cfg.Weights))
	}
	if cfg.Watchdog && cfg.Multicast {
		return nil, fmt.Errorf("router: watchdog degraded mode supports unicast only")
	}
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = 20000
	}
	if cfg.AutoRestore && !cfg.Watchdog {
		return nil, fmt.Errorf("router: AutoRestore requires Watchdog")
	}
	chipCfg := raw.DefaultConfig()
	chipCfg.ClockHz = cfg.ClockHz
	chipCfg.Tracer = cfg.Tracer
	chipCfg.Engine = cfg.Engine
	r := &Router{
		Chip:          raw.NewChip(chipCfg),
		cfg:           cfg,
		ci:            sharedIndex(),
		deadPort:      -1,
		probationPort: -1,
	}
	switch {
	case cfg.ReadmitQuanta > 0:
		r.readmitQuanta = cfg.ReadmitQuanta
	case cfg.ReadmitQuanta == 0:
		r.readmitQuanta = 8
	}
	if cfg.Multicast {
		r.ci = sharedMixedIndex()
	}
	r.scheds = compileFWSchedules(cfg)
	r.Chip.SetWorkers(cfg.Workers)
	r.Mem = mem.Attach(r.Chip, cfg.DRAMLatency)
	// DRAM latency spikes from an installed fault plane (zero-cost nil
	// guard when no faults are configured).
	r.Mem.ExtraLatency = r.Chip.FaultDRAMPenalty

	// Forwarding table into DRAM.
	table := cfg.Table
	if table == nil {
		table = CanonicalTable()
	}
	for _, seg := range TableImage(table) {
		words := make([]raw.Word, len(seg.Words))
		for i, w := range seg.Words {
			words[i] = raw.Word(w)
		}
		r.Mem.PokeWords(seg.Addr, words)
	}

	for p := 0; p < 4; p++ {
		pt := Layout[p]

		xprog, err := GenXbarProgram(p, r.ci)
		if err != nil {
			return nil, err
		}
		r.Chip.Tile(pt.Crossbar).SetCompiledSwitchProgram(xprog.Compiled)
		r.xprogs[p] = xprog
		r.xbars[p] = &xbarFW{rt: r, port: p, prog: xprog, dead: -1, sched: r.scheds.xbar}
		r.Chip.Tile(pt.Crossbar).Exec().SetFirmware(r.xbars[p])

		iprog, err := GenIngressProgram(p)
		if err != nil {
			return nil, err
		}
		r.Chip.Tile(pt.Ingress).SetCompiledSwitchProgram(iprog.Compiled)
		in := r.Chip.StaticIn(pt.Ingress, pt.InSide)
		r.ings[p] = &ingressFW{
			rt: r, port: p, prog: iprog, backlog: in.Len, in: in, dead: -1,
			rng: reprobeSeed(cfg.ReprobeSeed, p), sched: r.scheds.ing,
		}
		r.Chip.Tile(pt.Ingress).Exec().SetFirmware(r.ings[p])

		eprog, err := GenEgressProgram(p)
		if err != nil {
			return nil, err
		}
		r.Chip.Tile(pt.Egress).SetCompiledSwitchProgram(eprog.Compiled)
		r.egrs[p] = &egressFW{rt: r, port: p, prog: eprog, sched: r.scheds.egr}
		r.Chip.Tile(pt.Egress).Exec().SetFirmware(r.egrs[p])

		r.Chip.Tile(pt.Lookup).SetCompiledSwitchProgram(CompiledLookupProgram(p))
		r.lookups[p] = &lookupFW{rt: r, port: p, sched: r.scheds.lk}
		r.Chip.Tile(pt.Lookup).Exec().SetFirmware(r.lookups[p])

		r.ins[p] = r.Chip.StaticIn(pt.Ingress, pt.InSide)
		r.outs[p] = r.Chip.StaticOut(pt.Egress, pt.OutSide)
	}
	if cfg.Watchdog {
		r.installWatchdog()
	}
	// The router is the chip's single step hook (see restore.go): Tick
	// dispatches to every router-level observer — watchdog, scheduled
	// recovery controls, restore quiescence checks, probation expiry, and
	// event/telemetry sampling — and NextDue declares the next cycle any
	// of them must observe, so the fast engine can macro-step the gaps
	// between quantum and mask boundaries instead of disarming.
	r.Chip.AddStepHook(r)
	if cfg.Checkpoint {
		if err := r.Chip.EnableRecording(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// CanonicalTable returns the experiments' route table: port p owns
// (10+p).0.0.0/8, plus a default route to port 0.
func CanonicalTable() *lookup.Patricia {
	return BindPorts(4, func(e int) lookup.NextHop { return lookup.NextHop(e) })
}

// Config returns the router configuration.
func (r *Router) Config() Config { return r.cfg }

// Stats returns an immutable snapshot of the router's counters. The
// copy is cheap (a few hundred bytes) and safe to hold across Run calls:
// it never changes as the simulation advances.
func (r *Router) Stats() StatsSnapshot {
	windows, cycles := r.Chip.MacroStats()
	return StatsSnapshot{
		Schema:       telemetry.SchemaVersion,
		Cycle:        r.Chip.Cycle(),
		MacroWindows: windows,
		MacroCycles:  cycles,
		MacroDisarms: r.Chip.MacroDisarms(),
		Stats:        r.stats,
	}
}

// UpdateTable installs a new forwarding table while the router forwards
// (§2.2.1: "the network processor builds a forwarding table for each
// forwarding engine"). The image is DMA'd into the idle epoch's DRAM
// region and the lookup tiles switch over atomically at their next
// lookup; because the new epoch's addresses were never cached, no cache
// invalidation is needed — the first lookups simply miss to DRAM.
func (r *Router) UpdateTable(t *lookup.Patricia) {
	next := r.tableEpoch + 1
	segs := TableImageAt(t, next)
	for _, seg := range segs {
		words := make([]raw.Word, len(seg.Words))
		for i, w := range seg.Words {
			words[i] = raw.Word(w)
		}
		r.Mem.PokeWords(seg.Addr, words)
	}
	r.tableEpoch = next
	if r.cfg.Checkpoint {
		r.tableLog = append(r.tableLog, tableUpdate{cycle: r.Chip.Cycle(), segs: segs})
	}
}

// tableUpdate is one recorded UpdateTable: the chip cycle it happened at
// (between Run calls) and the DRAM image it poked.
type tableUpdate struct {
	cycle int64
	segs  []TableSegment
}

// OnQuantum registers a per-quantum observer (crossbar 0's allocation).
func (r *Router) OnQuantum(f func(q int64, a rotor.Allocation)) { r.onQuantum = f }

// InputPins exposes input port p's pin-level word stream (multi-chip
// composition and tests).
func (r *Router) InputPins(p int) *raw.StaticIn { return r.ins[p] }

// OutputSink exposes output port p's pin-level word sink.
func (r *Router) OutputSink(p int) *raw.EdgeSink { return r.outs[p] }

// OfferPacket streams a packet's words into input port p's line buffer.
func (r *Router) OfferPacket(p int, pkt *ip.Packet) {
	for _, w := range pkt.Words() {
		r.ins[p].Push(raw.Word(w))
	}
}

// InputBacklogWords returns the words waiting on input port p's pins.
func (r *Router) InputBacklogWords(p int) int { return r.ins[p].Len() }

// Run advances the chip n cycles.
func (r *Router) Run(n int64) { r.Chip.Run(n) }

// Cycle returns the simulated cycle count.
func (r *Router) Cycle() int64 { return r.Chip.Cycle() }

// DrainOutput parses the packets that left output port p since the last
// call. Partial trailing packets are kept for the next call. Packets
// truncated at the pins by a degraded-mode reset (recorded as cut
// offsets) are discarded silently — they are already accounted in
// Stats.FabricLost.
func (r *Router) DrainOutput(p int) ([]ip.Packet, error) {
	words, _ := r.outs[p].Drain()
	for _, w := range words {
		r.parseBuf[p] = append(r.parseBuf[p], uint32(w))
	}
	var pkts []ip.Packet
	buf := r.parseBuf[p]
	for {
		// Words available before the next degrade cut, if any.
		for len(r.cuts[p]) > 0 && r.cuts[p][0] <= r.parsed[p] {
			r.cuts[p] = r.cuts[p][1:]
		}
		limit, cutActive := len(buf), false
		if len(r.cuts[p]) > 0 {
			if avail := int(r.cuts[p][0] - r.parsed[p]); avail <= limit {
				limit, cutActive = avail, true
			}
		}
		discardToCut := func() {
			buf = buf[limit:]
			r.parsed[p] += int64(limit)
			r.cuts[p] = r.cuts[p][1:]
		}
		if limit < ip.HeaderWords {
			if cutActive {
				discardToCut()
				continue
			}
			break
		}
		h, err := ip.Unmarshal(buf[:limit])
		n := 0
		if err == nil {
			n = (int(h.TotalLen) + 3) / 4
			if n < ip.HeaderWords {
				n = ip.HeaderWords
			}
		}
		if err != nil || (cutActive && n > limit) {
			if cutActive {
				discardToCut()
				continue
			}
			return pkts, fmt.Errorf("router: output %d stream corrupt: %w", p, err)
		}
		if len(buf) < n {
			break
		}
		pkt, perr := ip.ParsePacket(buf[:n])
		if perr != nil {
			if cutActive {
				discardToCut()
				continue
			}
			return pkts, fmt.Errorf("router: output %d packet corrupt: %w", p, perr)
		}
		pkts = append(pkts, pkt)
		buf = buf[n:]
		r.parsed[p] += int64(n)
	}
	r.parseBuf[p] = buf
	return pkts, nil
}

// UnparsedWords returns the words buffered at output p that do not yet
// form a complete packet (a truncated tail on a failed port, or a packet
// still streaming).
func (r *Router) UnparsedWords(p int) int { return len(r.parseBuf[p]) }

// OutputWords returns the total words ever emitted on output p.
func (r *Router) OutputWords(p int) int64 { return r.outs[p].Count() }

// TotalPktsOut sums delivered packets.
func (r *Router) TotalPktsOut() int64 {
	var t int64
	for p := 0; p < 4; p++ {
		t += r.stats.PktsOut[p]
	}
	return t
}

// ThroughputGbps converts delivered output words over the run so far into
// gigabits per second at the configured clock.
func (r *Router) ThroughputGbps() float64 {
	var words int64
	for p := 0; p < 4; p++ {
		words += r.OutputWords(p)
	}
	return stats.Gbps(words*4, r.Chip.Cycle(), r.cfg.ClockHz)
}

// Mpps converts delivered packets over the run so far into millions of
// packets per second.
func (r *Router) Mpps() float64 {
	return stats.Mpps(r.TotalPktsOut(), r.Chip.Cycle(), r.cfg.ClockHz)
}
