package router_test

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/traffic"
)

// TestSoakEverything runs a long mixed workload through a fully loaded
// router — every packet size, unicast and multicast, three priority
// classes, QoS token weights, and the payload cipher all at once — and
// verifies conservation and wire integrity at the end. Skipped in -short
// mode.
func TestSoakEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	cfg := router.DefaultConfig()
	cfg.Multicast = true
	cfg.Groups = map[ip.Addr]uint8{ip.AddrFrom(224, 1, 2, 3): 0b1011}
	cfg.Weights = []int{2, 1, 1, 1}
	r := mustNew(t, cfg)

	rng := traffic.NewRNG(2026)
	id := uint16(0)
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	gen := func(p int) ip.Packet {
		id++
		size := sizes[rng.Intn(len(sizes))]
		var pkt ip.Packet
		if rng.Float64() < 0.15 && size <= 1024 {
			pkt = ip.NewPacket(traffic.PortAddr(p, uint32(id)), ip.AddrFrom(224, 1, 2, 3), 64, size, id)
		} else {
			pkt = ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
		}
		pkt.Header.TOS = uint8(rng.Intn(3)) << 5
		return pkt
	}
	const total = 400_000
	for c := 0; c < total; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}

	var in, out, denied int64
	for p := 0; p < 4; p++ {
		in += r.Stats().PktsIn[p]
		out += r.Stats().PktsOut[p]
		denied += r.Stats().Denied[p]
		pkts, err := r.DrainOutput(p)
		if err != nil {
			t.Fatalf("output %d stream corrupt after soak: %v", p, err)
		}
		for _, pk := range pkts {
			if pk.Header.TTL != 63 {
				t.Fatalf("output %d: TTL %d", p, pk.Header.TTL)
			}
		}
	}
	if in < 1000 {
		t.Fatalf("soak processed only %d packets", in)
	}
	if out < in {
		t.Fatalf("deliveries (%d) below ingress completions (%d) beyond in-flight slack", out, in)
	}
	if r.Stats().Dropped != [4]int64{} {
		t.Fatalf("unexpected drops: %v", r.Stats().Dropped)
	}
	t.Logf("soak: %d in, %d egress deliveries (mcast amplified), %d denials, %.2f Gbps",
		in, out, denied, r.ThroughputGbps())
}
