package router_test

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/traffic"
)

// TestManualDegradeAllPairs: for every choice of dead crossbar tile, the
// three survivors still route every (src, dst) pair among themselves,
// including the pairs whose healthy short arc crossed the dead tile.
func TestManualDegradeAllPairs(t *testing.T) {
	for dead := 0; dead < 4; dead++ {
		r := mustNew(t, router.DefaultConfig())
		if err := r.Degrade(dead); err != nil {
			t.Fatal(err)
		}
		id := uint16(0)
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				if src == dead || dst == dead {
					continue
				}
				id++
				want := r.Stats().PktsOut[dst] + 1
				pkt := ip.NewPacket(traffic.PortAddr(src, uint32(id)), traffic.PortAddr(dst, 9), 32, 256, id)
				r.OfferPacket(src, &pkt)
				if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[dst] >= want }, 40000) {
					t.Fatalf("dead=%d: %d->%d never delivered; stats %+v", dead, src, dst, r.Stats())
				}
				out, err := r.DrainOutput(dst)
				if err != nil || len(out) != 1 {
					t.Fatalf("dead=%d: %d->%d out=%d err=%v", dead, src, dst, len(out), err)
				}
				got := out[0]
				if got.Header.ID != id || got.Header.TTL != 31 {
					t.Fatalf("dead=%d: %d->%d delivered id=%d ttl=%d", dead, src, dst, got.Header.ID, got.Header.TTL)
				}
				for i, w := range pkt.Payload {
					if got.Payload[i] != w {
						t.Fatalf("dead=%d: %d->%d payload word %d corrupted", dead, src, dst, i)
					}
				}
			}
		}
	}
}

// TestDegradedMultiFrag: reassembly still works over the masked ring.
func TestDegradedMultiFrag(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	if err := r.Degrade(3); err != nil {
		t.Fatal(err)
	}
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 7), 64, 2048, 3)
	r.OfferPacket(0, &pkt)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[2] >= 1 }, 80000) {
		t.Fatalf("multi-frag packet never delivered degraded; stats %+v", r.Stats())
	}
	out, err := r.DrainOutput(2)
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	for i := range pkt.Payload {
		if out[0].Payload[i] != pkt.Payload[i] {
			t.Fatalf("payload word %d corrupted", i)
		}
	}
}

// TestDegradedDropsDeadDestination: packets addressed to the dead port
// are aborted at acquire without wedging the survivors.
func TestDegradedDropsDeadDestination(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	if err := r.Degrade(1); err != nil {
		t.Fatal(err)
	}
	doomed := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 2), 64, 256, 1)
	r.OfferPacket(0, &doomed)
	good := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 2), 64, 256, 2)
	r.OfferPacket(0, &good)
	if !r.Chip.RunUntil(func() bool { return r.Stats().PktsOut[2] >= 1 }, 40000) {
		t.Fatalf("good packet stuck behind dead-destination drop; stats %+v", r.Stats())
	}
	if r.Stats().AbortDropped[0] != 1 {
		t.Fatalf("AbortDropped[0] = %d, want 1", r.Stats().AbortDropped[0])
	}
	out, err := r.DrainOutput(2)
	if err != nil || len(out) != 1 || out[0].Header.ID != 2 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	if !r.LineDown(1) {
		t.Fatal("dead port's line should be marked down")
	}
}

// TestDegradeValidation: the reconfiguration rejects nonsense.
func TestDegradeValidation(t *testing.T) {
	r := mustNew(t, router.DefaultConfig())
	if err := r.Degrade(-1); err == nil {
		t.Fatal("Degrade(-1) accepted")
	}
	if err := r.Degrade(4); err == nil {
		t.Fatal("Degrade(4) accepted")
	}
	if err := r.Degrade(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Degrade(1); err == nil {
		t.Fatal("second Degrade accepted")
	}
	mcfg := router.DefaultConfig()
	mcfg.Multicast = true
	mr := mustNew(t, mcfg)
	if err := mr.Degrade(0); err == nil {
		t.Fatal("Degrade accepted under multicast")
	}
	mcfg.Watchdog = true
	if _, err := router.New(mcfg); err == nil {
		t.Fatal("New accepted Watchdog+Multicast")
	}
}

// TestWatchdogDegradesCrashedCrossbar is the headline robustness
// scenario: a crossbar tile crashes under load, the quantum-progress
// watchdog attributes the wedge, the fabric degrades to three ports, and
// the survivors keep forwarding. Packet conservation holds exactly.
func TestWatchdogDegradesCrashedCrossbar(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.Watchdog = true
	cfg.WatchdogCycles = 4000
	r := mustNew(t, cfg)

	// Port 1's crossbar is tile 6 (Figure 7-2); crash it at cycle 3000.
	inj := fault.NewInjector(fault.MustParse("crash@3000:t6"), 16)
	r.Chip.InstallFaults(inj)

	rng := traffic.NewRNG(99)
	id := uint16(0)
	sent := map[uint16]ip.Packet{}
	gen := func(p int) ip.Packet {
		id++
		size := []int{64, 128, 256, 512}[rng.Intn(4)]
		pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(rng.Intn(4), uint32(id)), 64, size, id)
		sent[id] = pkt
		return pkt
	}
	total := func() int64 {
		var s int64
		for p := 0; p < 4; p++ {
			s += r.Stats().PktsOut[p]
		}
		return s
	}

	for c := 0; c < 40000 && r.DeadPort() < 0; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	if r.DeadPort() != 1 {
		t.Fatalf("watchdog attributed dead port %d (failed=%v), want 1", r.DeadPort(), r.Failed())
	}
	if r.Failed() {
		t.Fatal("router fail-stopped instead of degrading")
	}
	atDegrade := total()

	// Keep the degraded fabric under load, then let it drain dry.
	for c := 0; c < 8000; c += 200 {
		feedSaturated(r, gen)
		r.Run(200)
	}
	r.Run(80000)

	if r.Failed() {
		t.Fatal("degraded fabric tripped the watchdog again")
	}
	if total() <= atDegrade {
		t.Fatalf("no packets forwarded after degrade (at=%d now=%d)", atDegrade, total())
	}
	for p := 0; p < 4; p++ {
		if p == 1 {
			continue
		}
		if r.InFlightAtIngress(p) != 0 || r.PendingDrainWords(p) != 0 {
			t.Fatalf("port %d not quiescent: inflight=%d drain=%d",
				p, r.InFlightAtIngress(p), r.PendingDrainWords(p))
		}
	}

	// Conservation across the fabric: every packet streamed in was either
	// delivered or fail-stop discarded at degrade time.
	var in, out int64
	for p := 0; p < 4; p++ {
		in += r.Stats().PktsIn[p]
		out += r.Stats().PktsOut[p]
	}
	if in != out+r.Stats().FabricLost {
		t.Fatalf("conservation: PktsIn %d != PktsOut %d + FabricLost %d",
			in, out, r.Stats().FabricLost)
	}

	// Every delivered packet — including those cut mid-stream at the pins
	// when the fabric degraded — parses, and matches a sent packet intact.
	var delivered int
	for p := 0; p < 4; p++ {
		pkts, err := r.DrainOutput(p)
		if err != nil {
			t.Fatalf("output %d corrupt after degrade: %v", p, err)
		}
		for _, got := range pkts {
			want, ok := sent[got.Header.ID]
			if !ok {
				t.Fatalf("output %d delivered unknown packet id %d", p, got.Header.ID)
			}
			for i := range want.Payload {
				if got.Payload[i] != want.Payload[i] {
					t.Fatalf("id %d payload word %d corrupted", got.Header.ID, i)
				}
			}
			delivered++
		}
	}
	if int64(delivered) != out {
		t.Fatalf("drained %d packets, stats say %d", delivered, out)
	}
}

// TestWatchdogQuietOnHealthyFabric: an idle and a loaded healthy router
// must never trip the watchdog — idle quanta are progress too.
func TestWatchdogQuietOnHealthyFabric(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.Watchdog = true
	cfg.WatchdogCycles = 4000
	r := mustNew(t, cfg)
	r.Run(30000) // fully idle
	if r.DeadPort() >= 0 || r.Failed() {
		t.Fatalf("watchdog fired on an idle healthy router: dead=%d failed=%v",
			r.DeadPort(), r.Failed())
	}
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(2, 7), 64, 256, 42)
	r.OfferPacket(0, &pkt)
	r.Run(30000)
	if r.DeadPort() >= 0 || r.Failed() {
		t.Fatalf("watchdog fired on a loaded healthy router: dead=%d failed=%v",
			r.DeadPort(), r.Failed())
	}
	if r.Stats().PktsOut[2] != 1 {
		t.Fatalf("packet not delivered; stats %+v", r.Stats())
	}
}
