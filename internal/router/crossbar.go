package router

import (
	"repro/internal/raw"
	"repro/internal/rotor"
)

// xbarFW is the Crossbar Processor firmware (§6.5): per quantum it reads
// the four rotated headers, computes the identical distributed allocation,
// sends the grant to its ingress and (when its egress receives data) the
// egress header, then dispatches its switch into the configuration
// routine and waits for the confirmation.
type xbarFW struct {
	rt   *Router
	port int
	prog *XbarProgram

	// sched is the compiled cycle-cost schedule (shared by all four
	// crossbar instances, surviving degrade/restore/park); phase indexes
	// it. Written only while the tile executes firmware ops, read by the
	// macro-stepper between cycles (workers parked).
	sched *FWSchedule
	phase int

	token int
	dwell int
	hdrs  [4]raw.Word

	// dead is the masked-out crossbar tile in degraded mode, -1 healthy.
	dead int

	// readmit counts the probation quanta remaining after a restore:
	// while positive, the allocation runs with joining's egress
	// quarantined (rotor.AllocateReadmit). All four tiles decrement in
	// lockstep, so the distributed schedule stays identical.
	readmit int
	joining int

	// Per-quantum derived state.
	alloc   rotor.Allocation
	cfgIdx  int
	quantum int64

	// Telemetry capture (armed only when cfg.Metrics is set): the
	// boundary snapshot the router's step hook samples. Written at the
	// quantum boundary and read by the hook before the next boundary —
	// both see committed state on the report port's tile, so the values
	// are identical at any worker count.
	lastToken int
	lastReq   uint8
	lastGrant uint8
	lastWords [4]int
}

// SteadyState implements raw.SteadyFirmware: the compiled schedule says
// whether the current phase presents a constant per-cycle profile.
func (x *xbarFW) SteadyState() bool { return x.sched.Steady(x.phase) }

func (x *xbarFW) Refill(e *raw.Exec) {
	x.phase = xbarPhaseHdr
	// Headers arrive own-first, then from 1, 2, 3 hops clockwise-upstream.
	// The degraded exchange delivers only the two surviving neighbors, in
	// an order that depends on where the hole is (see
	// GenXbarProgramDegraded).
	p := x.port
	var order []int
	if x.dead >= 0 {
		switch (x.dead - p + 4) % 4 {
		case 1:
			order = []int{p, (p + 3) % 4, (p + 2) % 4}
		case 2:
			order = []int{p, (p + 3) % 4, (p + 1) % 4}
		case 3:
			order = []int{p, (p + 1) % 4, (p + 2) % 4}
		}
		x.hdrs[x.dead] = LocalHdrEmpty
	} else {
		order = []int{p, (p + 3) % 4, (p + 2) % 4, (p + 1) % 4}
	}
	for _, src := range order {
		src := src
		e.Recv(func(w raw.Word) { x.hdrs[src] = w })
	}
	// The jump-table address computation (§6.5): the thesis computes the
	// configuration index while the switch routes; our protocol phases
	// are sequential, so this models the full header-decode + index
	// arithmetic cost.
	e.Compute(x.rt.cfg.AllocCycles)
	e.Then(func(e *raw.Exec) { x.decide(e) })
}

// decide computes the allocation and enqueues the dispatch sequence.
func (x *xbarFW) decide(e *raw.Exec) {
	if x.rt.cfg.Multicast {
		x.decideMixed(e)
		return
	}
	x.phase = xbarPhaseStream
	var hdrs [4]rotor.Hdr
	var prios [4]uint8
	for i, w := range x.hdrs {
		hdrs[i] = RotorHdr(w)
		prios[i] = LocalHdrPrioOf(w)
	}
	// AllocatePrio degenerates to the plain token walk when every class
	// is zero (exhaustively tested), so priority support costs nothing on
	// best-effort traffic. In degraded mode the masked allocator routes
	// around the dead tile (the long way when the short arc crosses it).
	g := rotor.GlobalConfig{Hdrs: hdrs[:], Token: x.token}
	switch {
	case x.dead >= 0:
		x.alloc = rotor.AllocateDegraded(g, prios[:], x.dead)
	case x.readmit > 0:
		x.alloc = rotor.AllocateReadmit(g, prios[:], x.joining)
	default:
		x.alloc = rotor.AllocatePrio(g, prios[:])
	}
	x.cfgIdx = x.rt.ci.Of(x.alloc.Tiles[x.port])

	// L: the quantum streaming length — the longest granted fragment.
	l := 0
	for i := 0; i < 4; i++ {
		if !x.alloc.Granted[i] {
			continue
		}
		_, fragLen, _, _ := DecodeLocalHdr(x.hdrs[i])
		if fragLen > l {
			l = fragLen
		}
	}

	// Grant word for our ingress (consumed by preamble instruction 4).
	granted := x.alloc.Granted[x.port]
	e.SendFunc(func() raw.Word { return GrantWord(granted, l) })

	// Egress header if our out server is active this quantum.
	idx := x.cfgIdx
	if x.prog.HasOut[idx] {
		src := -1
		for _, tr := range x.alloc.Transfers {
			if tr.Dst == x.port {
				src = tr.Src
			}
		}
		if src < 0 {
			panic("router: out server active with no matching transfer")
		}
		_, fragLen, last, _ := DecodeLocalHdr(x.hdrs[src])
		eh := EgressHdr(src, fragLen, l, last)
		if LocalHdrFirstOf(x.hdrs[src]) {
			eh = EgressHdrFirst(eh)
		}
		e.SendFunc(func() raw.Word { return eh })
	}
	if x.prog.NeedsCount[idx] {
		count := l - x.prog.MaxOffset[idx]
		if count < 1 {
			panic("router: quantum shorter than routine pipeline depth")
		}
		e.WriteSwitchCount(func() raw.Word { return raw.Word(count) })
	}
	e.WriteSwitchPC(func() raw.Word { return x.prog.RoutineAddr[idx] })
	e.WaitSwitchDone(nil)
	x.advanceToken(e)
}

// decideMixed is the §8.6 variant: member-mask requests through the
// mixed allocator and the 51-routine jump table.
func (x *xbarFW) decideMixed(e *raw.Exec) {
	x.phase = xbarPhaseStream
	reqs := make([]rotor.McastReq, 4)
	for i, w := range x.hdrs {
		reqs[i] = McastReqOf(w)
	}
	a := rotor.AllocateMixed(reqs, x.token)
	x.cfgIdx = x.rt.ci.Of(a.Tiles[x.port])

	l := 0
	for i := 0; i < 4; i++ {
		if a.Served[i] == 0 {
			continue
		}
		_, fragLen, _, _ := DecodeLocalHdr(x.hdrs[i])
		if fragLen > l {
			l = fragLen
		}
	}

	served := a.Served[x.port]
	e.SendFunc(func() raw.Word { return GrantWordMcast(served, l) })

	idx := x.cfgIdx
	if x.prog.HasOut[idx] {
		src := a.OutSrc[x.port]
		if src < 0 {
			panic("router: out server active with no source (mixed)")
		}
		_, fragLen, last, _ := DecodeLocalHdr(x.hdrs[src])
		eh := EgressHdr(src, fragLen, l, last)
		if LocalHdrFirstOf(x.hdrs[src]) {
			eh = EgressHdrFirst(eh)
		}
		e.SendFunc(func() raw.Word { return eh })
	}
	if x.prog.NeedsCount[idx] {
		count := l - x.prog.MaxOffset[idx]
		if count < 1 {
			panic("router: quantum shorter than routine pipeline depth (mixed)")
		}
		e.WriteSwitchCount(func() raw.Word { return raw.Word(count) })
	}
	e.WriteSwitchPC(func() raw.Word { return x.prog.RoutineAddr[idx] })
	e.WaitSwitchDone(nil)
	x.advanceToken(e)
}

func (x *xbarFW) advanceToken(e *raw.Exec) {
	e.Then(func(*raw.Exec) {
		if x.rt.cfg.Metrics != nil && x.port == x.rt.reportPort {
			x.captureQuantum()
		}
		// Weighted round robin (§8.7): the token dwells at port i for
		// Weights[i] quanta. Every crossbar tile advances the same local
		// counter, so the token still never crosses the network.
		x.dwell++
		w := 1
		if x.rt.cfg.Weights != nil {
			w = x.rt.cfg.Weights[x.token]
			if w < 1 {
				w = 1
			}
		}
		if x.dwell >= w {
			x.token = rotor.NextToken(x.token, 4)
			if x.token == x.dead {
				x.token = rotor.NextToken(x.token, 4)
			}
			x.dwell = 0
		}
		if x.readmit > 0 {
			x.readmit--
		}
		x.quantum++
		if x.rt.onQuantum != nil && x.port == x.rt.reportPort && !x.rt.cfg.Multicast {
			x.rt.onQuantum(x.quantum, x.alloc)
		}
	})
}

// captureQuantum records the completed quantum's scheduler decision for
// the telemetry plane: the token owner, which ports requested (non-empty
// header) and were granted, and the granted fragment lengths. It runs in
// the boundary's Then closure, before the token rotates, touching only
// this tile's firmware state.
func (x *xbarFW) captureQuantum() {
	x.lastToken = x.token
	var req, grant uint8
	for p := 0; p < 4; p++ {
		x.lastWords[p] = 0
		if x.hdrs[p] != LocalHdrEmpty {
			req |= 1 << p
		}
		if x.alloc.Granted[p] {
			grant |= 1 << p
			_, fragLen, _, _ := DecodeLocalHdr(x.hdrs[p])
			x.lastWords[p] = fragLen
		}
	}
	x.lastReq, x.lastGrant = req, grant
}

// enterDegraded rewires the firmware for the masked ring. Called between
// cycles by Router.Degrade after the tile's switch was reprogrammed and
// its in-flight state reset; every surviving tile computes the same
// initial token, so the distributed allocation stays in lockstep.
func (x *xbarFW) enterDegraded(dead int, prog *XbarProgram) {
	x.dead = dead
	x.prog = prog
	x.token = (dead + 1) % 4
	x.dwell = 0
	x.hdrs = [4]raw.Word{}
	x.readmit = 0
	x.joining = -1
}

// reenterHealthy rewires the firmware for the full four-tile ring after a
// restore, with a probation window quarantining the re-admitted port's
// egress. Called between cycles by Router.completeRestore on all four
// tiles (the restored one included) after their switches were
// reprogrammed healthy and their in-flight state reset. The token starts
// at the joining tile on every crossbar, so the distributed allocation
// resumes in lockstep and the re-admitted port holds the token first —
// re-entry at a quantum boundary, not mid-rotation.
func (x *xbarFW) reenterHealthy(prog *XbarProgram, joining, readmit int) {
	x.dead = -1
	x.prog = prog
	x.token = joining
	x.dwell = 0
	x.hdrs = [4]raw.Word{}
	x.joining = joining
	x.readmit = readmit
	x.alloc = rotor.Allocation{}
	x.cfgIdx = 0
}
