// Package cli holds the flag handling shared by the simulator commands
// (rawrouter, rawsim, fabsim, reproduce). Each command registers only
// the flag groups it supports, but every group is parsed and validated
// here once: the fault-schedule assembly, checkpoint read/write, and
// telemetry-export plumbing used to be duplicated per main().
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// Common holds the shared flag values. Zero value is ready; call the
// Register* methods before flag.Parse and the accessors after.
type Common struct {
	// Workers (-workers): host goroutines stepping each simulated chip.
	Workers int
	// Engine (-engine): chip cycle engine, "ref" or "fast". Parse with
	// EngineChoice after flag.Parse.
	Engine string
	// CPUProfile / MemProfile (-cpuprofile, -memprofile) are pprof output
	// paths; see StartProfile.
	CPUProfile string
	MemProfile string
	// Faults (-faults) is the fault-schedule text; FaultSeed (-faultseed)
	// adds a seeded schedule of recoverable faults.
	Faults    string
	FaultSeed uint64
	// Trace (-trace) requests a per-tile utilization summary.
	Trace bool
	// Checkpoint / Restore (-checkpoint, -restore) are checkpoint blob
	// paths (write after the run / replay before it).
	Checkpoint string
	Restore    string
	// Metrics (-metrics) selects a telemetry export: "FORMAT[:FILE]"
	// with FORMAT jsonl, csv, or prom; no FILE writes to stdout.
	Metrics string
	// Topology / Chips (-topology, -chips) select an N-chip fabric
	// instead of a single router: "" runs no fabric, otherwise
	// ring|mesh|fattree at -chips chips. Parse with FabricSpec.
	Topology string
	Chips    int
	// Heal (-heal) arms the fabric's fault-healing plane; the companion
	// knobs tune the trunk ARQ. Assemble with HealConfig.
	Heal        bool
	HealWindow  int
	HealRetries int
	HealBackoff int64
	HealSeed    uint64
}

// RegisterSim installs -workers and -engine.
func (c *Common) RegisterSim(fs *flag.FlagSet) {
	fs.IntVar(&c.Workers, "workers", 1,
		"host goroutines stepping the chip (cycle-exact at any count)")
	fs.StringVar(&c.Engine, "engine", "ref",
		"chip cycle engine: ref (reference interpreter) or fast (compiled route tables, bit-for-bit equivalent)")
}

// RegisterProfile installs -cpuprofile and -memprofile.
func (c *Common) RegisterProfile(fs *flag.FlagSet) {
	fs.StringVar(&c.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the run to FILE")
	fs.StringVar(&c.MemProfile, "memprofile", "",
		"write a pprof heap profile to FILE at exit")
}

// EngineChoice parses -engine ("" and "ref" select the reference
// interpreter).
func (c *Common) EngineChoice() (raw.Engine, error) {
	eng, err := raw.ParseEngine(c.Engine)
	if err != nil {
		return 0, fmt.Errorf("-engine: %w", err)
	}
	return eng, nil
}

// StartProfile starts CPU profiling if -cpuprofile was given and returns
// a stop function to defer in main: it stops the CPU profile and, if
// -memprofile was given, garbage-collects and writes the heap profile.
// Call after flag parsing; errors opening either file are returned
// immediately so main can fail before simulating anything.
func (c *Common) StartProfile() (stop func(), err error) {
	var cpuF *os.File
	if c.CPUProfile != "" {
		cpuF, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	// Open the heap profile's file up front too: a typo should fail the
	// run at startup, not after minutes of simulation.
	var memF *os.File
	if c.MemProfile != "" {
		memF, err = os.Create(c.MemProfile)
		if err != nil {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if memF != nil {
			runtime.GC() // settle retained heap before the snapshot
			if err := pprof.WriteHeapProfile(memF); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
			memF.Close()
		}
	}, nil
}

// RegisterFaults installs -faults and -faultseed.
func (c *Common) RegisterFaults(fs *flag.FlagSet) {
	fs.StringVar(&c.Faults, "faults", "",
		"fault schedule text (see internal/fault), e.g. \"crash@5000:t6;dram@0+9999:+100\"")
	fs.Uint64Var(&c.FaultSeed, "faultseed", 0,
		"add a seeded schedule of recoverable faults (stalls, flaps, freezes, DRAM spikes)")
}

// RegisterTrace installs -trace.
func (c *Common) RegisterTrace(fs *flag.FlagSet) {
	fs.BoolVar(&c.Trace, "trace", false,
		"print a per-tile utilization summary of the last 800 measured cycles")
}

// RegisterCheckpoint installs -checkpoint and -restore.
func (c *Common) RegisterCheckpoint(fs *flag.FlagSet) {
	fs.StringVar(&c.Checkpoint, "checkpoint", "",
		"write a deterministic checkpoint blob to FILE after the run")
	fs.StringVar(&c.Restore, "restore", "",
		"replay a checkpoint blob from FILE before running (needs the writer's fault flags)")
}

// RegisterFabric installs -topology and -chips.
func (c *Common) RegisterFabric(fs *flag.FlagSet) {
	fs.StringVar(&c.Topology, "topology", "",
		"run an N-chip fabric: ring, mesh, or fattree (empty = no fabric run)")
	fs.IntVar(&c.Chips, "chips", 4,
		"fabric chip count for -topology (mesh counts are factored into the squarest grid)")
}

// RegisterHeal installs the -heal flag group (fabric healing plane).
func (c *Common) RegisterHeal(fs *flag.FlagSet) {
	fs.BoolVar(&c.Heal, "heal", false,
		"heal the fabric through chip/trunk loss: adaptive rerouting, trunk ARQ, duplicate suppression")
	fs.IntVar(&c.HealWindow, "healwindow", 0,
		"retransmit window in frames per trunk direction (0 = default 64)")
	fs.IntVar(&c.HealRetries, "healretries", 0,
		"retransmit attempts while a destination is unreachable (0 = default 8)")
	fs.Int64Var(&c.HealBackoff, "healbackoff", 0,
		"base retransmit backoff in cycles, doubled per attempt (0 = default 256)")
	fs.Uint64Var(&c.HealSeed, "healseed", 0,
		"seed for the deterministic retransmit jitter")
}

// HealConfig assembles the -heal flag group into a cluster.HealConfig.
func (c *Common) HealConfig() cluster.HealConfig {
	return cluster.HealConfig{
		Enabled:       c.Heal,
		WindowFrames:  c.HealWindow,
		MaxAttempts:   c.HealRetries,
		BackoffCycles: c.HealBackoff,
		Seed:          c.HealSeed,
	}
}

// FabricSpec parses -topology/-chips into a validated topology spec.
// Returns ok=false with no error when -topology was not given.
func (c *Common) FabricSpec() (spec cluster.Spec, ok bool, err error) {
	if c.Topology == "" {
		return cluster.Spec{}, false, nil
	}
	kind, err := cluster.ParseTopoKind(c.Topology)
	if err != nil {
		return cluster.Spec{}, false, fmt.Errorf("-topology: %w", err)
	}
	spec, err = cluster.SpecFor(kind, c.Chips)
	if err != nil {
		return cluster.Spec{}, false, fmt.Errorf("-chips: %w", err)
	}
	return spec, true, nil
}

// RegisterMetrics installs -metrics.
func (c *Common) RegisterMetrics(fs *flag.FlagSet) {
	fs.StringVar(&c.Metrics, "metrics", "",
		"export a telemetry snapshot after the run: FORMAT[:FILE], FORMAT one of jsonl, csv, prom (no FILE = stdout)")
}

// Validate checks cross-flag invariants after parsing. The fabric
// flags are checked too when registered. Worker counts are
// not validated here: the engine clamps -workers to [1, tiles], so 0,
// negative, and huge values all run (the documented surface behavior).
func (c *Common) Validate() error {
	if _, err := c.MetricsSink(); err != nil {
		return err
	}
	if _, err := c.EngineChoice(); err != nil {
		return err
	}
	if _, _, err := c.FabricSpec(); err != nil {
		return err
	}
	if c.Checkpoint != "" && c.Checkpoint == c.Restore {
		return fmt.Errorf("-checkpoint and -restore name the same file %q: the run would overwrite the blob it is restoring from", c.Checkpoint)
	}
	return nil
}

// Schedule merges the -faults text with the -faultseed random schedule
// (caller supplies the horizon/limits in opts; opts.Seed is overridden
// by -faultseed). Returns an empty schedule when neither flag is set.
func (c *Common) Schedule(opts fault.RandomOptions) (*fault.Schedule, error) {
	sched := &fault.Schedule{}
	if c.Faults != "" {
		s, err := fault.Parse(c.Faults)
		if err != nil {
			return nil, err
		}
		sched.Events = append(sched.Events, s.Events...)
	}
	if c.FaultSeed != 0 {
		s := fault.Random(c.FaultSeed, opts)
		sched.Events = append(sched.Events, s.Events...)
	}
	return sched, nil
}

// ApplyControls schedules the fault grammar's restore@/reprobe@
// directives on the router (they are router-level controls, not chip
// faults, so the injector does not carry them).
func ApplyControls(sched *fault.Schedule, rt *router.Router) {
	for _, ctl := range sched.Controls() {
		switch ctl.Kind {
		case fault.KindRestore:
			rt.ScheduleRestore(ctl.Start, ctl.Tile)
		case fault.KindReprobe:
			rt.ScheduleReprobe(ctl.Start, ctl.Tile)
		}
	}
}

// LoadCheckpoint replays -restore's blob through restoreFn. Returns
// false with no error when -restore was not given.
func (c *Common) LoadCheckpoint(restoreFn func([]byte) error) (bool, error) {
	if c.Restore == "" {
		return false, nil
	}
	blob, err := os.ReadFile(c.Restore)
	if err != nil {
		return false, err
	}
	if err := restoreFn(blob); err != nil {
		return false, err
	}
	return true, nil
}

// WriteCheckpoint snapshots via snapFn and writes the blob to
// -checkpoint. Returns 0 with no error when -checkpoint was not given.
func (c *Common) WriteCheckpoint(snapFn func() ([]byte, error)) (int, error) {
	if c.Checkpoint == "" {
		return 0, nil
	}
	blob, err := snapFn()
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(c.Checkpoint, blob, 0o644); err != nil {
		return 0, err
	}
	return len(blob), nil
}

// MetricsSink is a parsed -metrics flag: where and in which format to
// export the post-run telemetry snapshot.
type MetricsSink struct {
	// Format is one of telemetry.Formats().
	Format string
	// Path is the output file; empty writes to stdout.
	Path string
}

// MetricsSink parses -metrics. Returns nil with no error when the flag
// was not given.
func (c *Common) MetricsSink() (*MetricsSink, error) {
	if c.Metrics == "" {
		return nil, nil
	}
	format, path, _ := strings.Cut(c.Metrics, ":")
	ok := false
	for _, f := range telemetry.Formats() {
		if f == format {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("-metrics: unknown format %q (have %s)",
			format, strings.Join(telemetry.Formats(), ", "))
	}
	return &MetricsSink{Format: format, Path: path}, nil
}

// Export renders the snapshot in the sink's format and writes it to the
// sink's file (or stdout).
func (s *MetricsSink) Export(snap telemetry.Snapshot) error {
	out, err := snap.Encode(s.Format)
	if err != nil {
		return err
	}
	return s.write(out)
}

// ExportFabric renders a fabric-plane snapshot the same way.
func (s *MetricsSink) ExportFabric(snap telemetry.FabricSnapshot) error {
	out, err := snap.Encode(s.Format)
	if err != nil {
		return err
	}
	return s.write(out)
}

func (s *MetricsSink) write(out []byte) error {
	if s.Path == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(s.Path, out, 0o644)
}
