package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

func parseWith(t *testing.T, args ...string) *Common {
	t.Helper()
	var c Common
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.RegisterSim(fs)
	c.RegisterFaults(fs)
	c.RegisterTrace(fs)
	c.RegisterCheckpoint(fs)
	c.RegisterMetrics(fs)
	c.RegisterFabric(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &c
}

func TestScheduleMergesTextAndSeed(t *testing.T) {
	c := parseWith(t, "-faults", "crash@5000:t6", "-faultseed", "7")
	sched, err := c.Schedule(fault.RandomOptions{
		Horizon: 100000, MaxStalls: 8, MaxFlaps: 4, MaxFreezes: 2, MaxDRAM: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) < 2 {
		t.Fatalf("schedule has %d events, want text + seeded ones", len(sched.Events))
	}
	if sched.Events[0].Kind != fault.KindCrash {
		t.Fatalf("first event kind = %v, want the parsed crash", sched.Events[0].Kind)
	}
}

func TestScheduleEmptyByDefault(t *testing.T) {
	c := parseWith(t)
	sched, err := c.Schedule(fault.RandomOptions{Horizon: 1000})
	if err != nil || len(sched.Events) != 0 {
		t.Fatalf("default schedule = %v events, err %v; want empty", len(sched.Events), err)
	}
}

func TestScheduleRejectsBadText(t *testing.T) {
	c := parseWith(t, "-faults", "explode@now")
	if _, err := c.Schedule(fault.RandomOptions{}); err == nil {
		t.Fatal("bad fault text accepted")
	}
}

func TestMetricsSinkParsing(t *testing.T) {
	cases := []struct {
		arg    string
		format string
		path   string
		bad    bool
	}{
		{"jsonl", "jsonl", "", false},
		{"csv:out.csv", "csv", "out.csv", false},
		{"prom:/tmp/m.txt", "prom", "/tmp/m.txt", false},
		{"xml", "", "", true},
		{"jsonl;out", "", "", true},
	}
	for _, tc := range cases {
		c := parseWith(t, "-metrics", tc.arg)
		sink, err := c.MetricsSink()
		if tc.bad {
			if err == nil {
				t.Errorf("-metrics %q accepted, want error", tc.arg)
			}
			continue
		}
		if err != nil {
			t.Errorf("-metrics %q: %v", tc.arg, err)
			continue
		}
		if sink.Format != tc.format || sink.Path != tc.path {
			t.Errorf("-metrics %q = %+v, want format %q path %q", tc.arg, sink, tc.format, tc.path)
		}
	}
	c := parseWith(t)
	if sink, err := c.MetricsSink(); sink != nil || err != nil {
		t.Errorf("unset -metrics = %+v, %v; want nil, nil", sink, err)
	}
}

func TestValidate(t *testing.T) {
	// Out-of-range worker counts clamp in the engine; Validate passes them.
	if err := parseWith(t, "-workers", "-1").Validate(); err != nil {
		t.Errorf("negative -workers rejected (engine clamps): %v", err)
	}
	if err := parseWith(t, "-metrics", "bogus").Validate(); err == nil {
		t.Error("bad -metrics accepted")
	}
	if err := parseWith(t, "-workers", "4", "-metrics", "csv:x.csv").Validate(); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
}

func TestValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring the error must mention
	}{
		{"bad engine", []string{"-engine", "quantum"}, "engine"},
		{"malformed metrics format", []string{"-metrics", "xml:out.txt"}, "metrics"},
		{"malformed metrics separator", []string{"-metrics", "jsonl;out"}, "metrics"},
		{"checkpoint and restore collide", []string{"-checkpoint", "state.bin", "-restore", "state.bin"}, "same file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := parseWith(t, tc.args...).Validate()
			if err == nil {
				t.Fatalf("%v: accepted, want error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
	// Checkpoint→restore chains with distinct paths stay legal, as do
	// the flags on their own.
	for _, args := range [][]string{
		{"-engine", "fast"},
		{"-checkpoint", "new.bin", "-restore", "old.bin"},
		{"-checkpoint", "state.bin"},
		{"-restore", "state.bin"},
	} {
		if err := parseWith(t, args...).Validate(); err != nil {
			t.Errorf("%v: rejected: %v", args, err)
		}
	}
}

func parseServe(t *testing.T, args ...string) (*ServeFlags, *Common) {
	t.Helper()
	var c Common
	var s ServeFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.RegisterSim(fs)
	c.RegisterTrace(fs)
	c.RegisterCheckpoint(fs)
	c.RegisterFabric(fs)
	s.RegisterServe(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &s, &c
}

func TestServeFlagsValidate(t *testing.T) {
	bad := [][]string{
		{"-soak"},                            // soak without serve
		{"-serve", "-feed", "tcp:127.0.0.1"}, // unknown feed scheme
		{"-serve", "-feed", "udp:"},          // udp with no address
		{"-serve", "-rate", "-5"},            // negative load
		{"-serve", "-slice", "0"},            // empty slice
		{"-serve", "-ckptevery", "8"},        // periodic ckpt without -checkpoint
		{"-serve", "-soak", "-soakwindow", "0"},
		{"-serve", "-trace"}, // batch-only report
		{"-serve", "-topology", "ring", "-chips", "4"},
	}
	for _, args := range bad {
		s, c := parseServe(t, args...)
		if err := s.ValidateServe(c); err == nil {
			t.Errorf("%v: accepted, want error", args)
		}
	}
	good := [][]string{
		{},
		{"-serve"},
		{"-serve", "-feed", "udp:127.0.0.1:0"},
		{"-serve", "-soak", "-soakseed", "7"},
		{"-serve", "-ckptevery", "8", "-checkpoint", "state.bin"},
	}
	for _, args := range good {
		s, c := parseServe(t, args...)
		if err := s.ValidateServe(c); err != nil {
			t.Errorf("%v: rejected: %v", args, err)
		}
	}
}

func TestServeFeedSpec(t *testing.T) {
	s := &ServeFlags{Feed: "synthetic"}
	if kind, addr, err := s.FeedSpec(); kind != "synthetic" || addr != "" || err != nil {
		t.Fatalf("synthetic = %q %q %v", kind, addr, err)
	}
	s.Feed = "udp:127.0.0.1:9000"
	if kind, addr, err := s.FeedSpec(); kind != "udp" || addr != "127.0.0.1:9000" || err != nil {
		t.Fatalf("udp = %q %q %v", kind, addr, err)
	}
	s.Feed = "pigeon:coop"
	if _, _, err := s.FeedSpec(); err == nil {
		t.Fatal("pigeon transport accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	blob := []byte{1, 2, 3, 4}

	w := parseWith(t, "-checkpoint", path)
	n, err := w.WriteCheckpoint(func() ([]byte, error) { return blob, nil })
	if err != nil || n != len(blob) {
		t.Fatalf("WriteCheckpoint = %d, %v", n, err)
	}

	r := parseWith(t, "-restore", path)
	var got []byte
	ok, err := r.LoadCheckpoint(func(b []byte) error { got = b; return nil })
	if err != nil || !ok || string(got) != string(blob) {
		t.Fatalf("LoadCheckpoint = %v, %v, blob %v", ok, err, got)
	}

	// Unset flags are no-ops.
	none := parseWith(t)
	if n, err := none.WriteCheckpoint(nil); n != 0 || err != nil {
		t.Fatalf("unset WriteCheckpoint = %d, %v", n, err)
	}
	if ok, err := none.LoadCheckpoint(nil); ok || err != nil {
		t.Fatalf("unset LoadCheckpoint = %v, %v", ok, err)
	}
	_ = os.Remove(path)
}

func TestFabricSpecParsing(t *testing.T) {
	// Unset -topology: no fabric run, no error.
	if _, ok, err := parseWith(t).FabricSpec(); ok || err != nil {
		t.Fatalf("unset FabricSpec = %v, %v", ok, err)
	}
	// A 16-chip mesh resolves to the squarest grid.
	spec, ok, err := parseWith(t, "-topology", "mesh", "-chips", "16").FabricSpec()
	if err != nil || !ok || spec.String() != "mesh-4x4" {
		t.Fatalf("mesh 16 = %v (%v, %v)", spec, ok, err)
	}
	if spec, _, err := parseWith(t, "-topology", "ring", "-chips", "8").FabricSpec(); err != nil || spec.NumChips() != 8 {
		t.Fatalf("ring 8 = %v, %v", spec, err)
	}
	if spec, _, err := parseWith(t, "-topology", "fattree", "-chips", "6").FabricSpec(); err != nil || spec.Externals() != 8 {
		t.Fatalf("fattree 6 = %v, %v", spec, err)
	}
	// Bad kind and impossible sizes surface through Validate too.
	for _, args := range [][]string{
		{"-topology", "torus"},
		{"-topology", "mesh", "-chips", "11"},
		{"-topology", "ring", "-chips", "1"},
	} {
		c := parseWith(t, args...)
		if _, _, err := c.FabricSpec(); err == nil {
			t.Fatalf("%v: want error", args)
		}
		if err := c.Validate(); err == nil {
			t.Fatalf("%v: Validate missed the bad fabric flags", args)
		}
	}
}
