package cli

import (
	"flag"
	"fmt"
	"strings"
)

// ServeFlags is the daemon-mode flag group (rawrouter -serve): ingest
// bridge, control-plane listener, SLO gates, and the chaos soak loop.
// Zero value is ready; Register before flag.Parse, Validate after.
type ServeFlags struct {
	// Serve (-serve) runs the router as a long-lived service instead of
	// a fixed -cycles batch.
	Serve bool
	// Listen (-listen) is the HTTP control-plane address; port 0 picks a
	// free port (the daemon prints the resolved address).
	Listen string
	// Feed (-feed) selects the ingest source: "synthetic" (deterministic
	// in-process feeder) or "udp:HOST:PORT" (live socket shim).
	Feed string
	// Rate (-rate) is the synthetic feeder's offered load per port in
	// words per 1000 cycles (1000 = line rate).
	Rate int
	// SliceCycles (-slice) is the admission/control time base.
	SliceCycles int64
	// QueuePkts (-queue) bounds each port's admission queue; overflow is
	// shed with a counter, never blocked.
	QueuePkts int
	// CkptEvery (-ckptevery) writes a periodic checkpoint every N slices
	// (0 = only at drain; requires -checkpoint).
	CkptEvery int64
	// MaxSlices (-maxslices) drains the daemon after N serving slices
	// (0 = run until drained or killed).
	MaxSlices int64
	// DrainBudget (-drainbudget) bounds the drain wait in slices before
	// a forced checkpoint.
	DrainBudget int64
	// Soak (-soak) layers rolling seeded chaos windows on the run;
	// SoakWindow (-soakwindow) is the window length in cycles and
	// SoakSeed (-soakseed) the seed.
	Soak       bool
	SoakWindow int64
	SoakSeed   uint64
	// MaxRestarts (-maxrestarts) bounds supervised fail-stop restarts.
	MaxRestarts int
	// SLOMinGbps (-slomingbps) is the minimum delivered throughput gate
	// (0 = off); SLOMaxDrop (-slomaxdrop) the maximum shed fraction gate
	// (0 or negative = off); SLOWindow (-slowindow) the rolling window in
	// slices.
	SLOMinGbps float64
	SLOMaxDrop float64
	SLOWindow  int
}

// RegisterServe installs the -serve flag group.
func (s *ServeFlags) RegisterServe(fs *flag.FlagSet) {
	fs.BoolVar(&s.Serve, "serve", false,
		"run as a long-lived service (live ingest + HTTP control plane) instead of a -cycles batch")
	fs.StringVar(&s.Listen, "listen", "127.0.0.1:0",
		"control-plane HTTP address (/metrics, /healthz, /readyz, /drain); port 0 picks a free port")
	fs.StringVar(&s.Feed, "feed", "synthetic",
		"ingest source: synthetic (deterministic feeder) or udp:HOST:PORT (socket shim)")
	fs.IntVar(&s.Rate, "rate", 800,
		"synthetic offered load per port, words per 1000 cycles (1000 = line rate)")
	fs.Int64Var(&s.SliceCycles, "slice", 4096,
		"admission/control slice length in cycles")
	fs.IntVar(&s.QueuePkts, "queue", 64,
		"per-port admission queue bound in packets (overflow is shed and counted)")
	fs.Int64Var(&s.CkptEvery, "ckptevery", 0,
		"write a periodic checkpoint every N slices (0 = only at drain; needs -checkpoint)")
	fs.Int64Var(&s.MaxSlices, "maxslices", 0,
		"drain after N serving slices (0 = run until drained or killed)")
	fs.Int64Var(&s.DrainBudget, "drainbudget", 256,
		"slices a drain waits for quiescence before checkpointing anyway")
	fs.BoolVar(&s.Soak, "soak", false,
		"continuous chaos: roll seeded recoverable fault windows against the SLO gates")
	fs.Int64Var(&s.SoakWindow, "soakwindow", 262144,
		"rolling chaos window length in cycles")
	fs.Uint64Var(&s.SoakSeed, "soakseed", 1,
		"seed for the rolling chaos windows")
	fs.IntVar(&s.MaxRestarts, "maxrestarts", 3,
		"supervised restart budget after router fail-stops (soak mode)")
	fs.Float64Var(&s.SLOMinGbps, "slomingbps", 0,
		"SLO gate: minimum delivered Gbps over the rolling window (0 = off)")
	fs.Float64Var(&s.SLOMaxDrop, "slomaxdrop", 0,
		"SLO gate: maximum shed fraction of offered words (0 or negative = off)")
	fs.IntVar(&s.SLOWindow, "slowindow", 8,
		"SLO rolling window length in slices")
}

// FeedSpec parses -feed into a kind ("synthetic" or "udp") and, for udp,
// the bind address.
func (s *ServeFlags) FeedSpec() (kind, addr string, err error) {
	if s.Feed == "" || s.Feed == "synthetic" {
		return "synthetic", "", nil
	}
	if rest, ok := strings.CutPrefix(s.Feed, "udp:"); ok && rest != "" {
		return "udp", rest, nil
	}
	return "", "", fmt.Errorf("-feed: want synthetic or udp:HOST:PORT, got %q", s.Feed)
}

// ValidateServe checks the serve group's cross-flag invariants against
// the common flags.
func (s *ServeFlags) ValidateServe(c *Common) error {
	if !s.Serve {
		if s.Soak {
			return fmt.Errorf("-soak requires -serve")
		}
		return nil
	}
	if _, _, err := s.FeedSpec(); err != nil {
		return err
	}
	if s.Rate < 0 {
		return fmt.Errorf("-rate: negative offered load %d", s.Rate)
	}
	if s.SliceCycles <= 0 {
		return fmt.Errorf("-slice: slice length must be positive, got %d", s.SliceCycles)
	}
	if s.CkptEvery > 0 && c.Checkpoint == "" {
		return fmt.Errorf("-ckptevery requires -checkpoint PATH")
	}
	if s.Soak && s.SoakWindow <= 0 {
		return fmt.Errorf("-soakwindow: window must be positive, got %d", s.SoakWindow)
	}
	if c.Trace {
		return fmt.Errorf("-trace is a batch-mode report; it cannot run with -serve")
	}
	if c.Topology != "" {
		return fmt.Errorf("-serve runs the single-chip router; it cannot run with -topology")
	}
	return nil
}
