package cli

// The shared -workload flag group: one declarative workload spec
// replaces the per-binary pattern/size/seed flags. The spec text is
// traffic.ParseSpec's grammar — an inline `name:key=val,...` shorthand,
// `json:FILE` for a spec document, `trace:FILE` for TRAF1 replay, or a
// preset name — so every command that drives traffic accepts exactly
// the same workload language.

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/traffic"
)

// WorkloadFlags holds the -workload flag group. Zero value is ready;
// call RegisterWorkload before flag.Parse and Spec/Build after.
type WorkloadFlags struct {
	// Workload (-workload) is the spec text; empty means the command's
	// legacy flags (or defaults) drive traffic.
	Workload string
	// RecordTrace (-recordtrace) writes the workload's open-loop arrival
	// stream to FILE as a TRAF1 trace instead of (or before) running.
	RecordTrace string
	// RecordSlices (-recordslices) is how many slices -recordtrace
	// captures.
	RecordSlices int64
}

// RegisterWorkload installs the -workload flag group.
func (w *WorkloadFlags) RegisterWorkload(fs *flag.FlagSet) {
	fs.StringVar(&w.Workload, "workload", "",
		"workload spec: NAME[:key=val,...] (patterns: "+strings.Join(traffic.Patterns(), ", ")+
			"), json:FILE, trace:FILE, or a preset ("+strings.Join(presetNames(), ", ")+")")
	fs.StringVar(&w.RecordTrace, "recordtrace", "",
		"record the -workload open-loop arrival stream to FILE as a TRAF1 trace")
	fs.Int64Var(&w.RecordSlices, "recordslices", 64,
		"slices captured by -recordtrace")
}

func presetNames() []string {
	var names []string
	for n := range traffic.Presets() {
		names = append(names, n)
	}
	// Deterministic help text.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Given reports whether -workload was set.
func (w *WorkloadFlags) Given() bool { return w.Workload != "" }

// Spec parses -workload. Returns ok=false with no error when the flag
// was not given.
func (w *WorkloadFlags) Spec() (traffic.Spec, bool, error) {
	if w.Workload == "" {
		return traffic.Spec{}, false, nil
	}
	s, err := traffic.ParseSpec(w.Workload)
	if err != nil {
		return traffic.Spec{}, false, fmt.Errorf("-workload: %w", err)
	}
	return s, true, nil
}

// Build parses and compiles -workload. Returns ok=false with no error
// when the flag was not given.
func (w *WorkloadFlags) Build() (*traffic.Workload, bool, error) {
	s, ok, err := w.Spec()
	if !ok || err != nil {
		return nil, false, err
	}
	wl, err := traffic.Build(s)
	if err != nil {
		return nil, false, fmt.Errorf("-workload: %w", err)
	}
	return wl, true, nil
}

// CheckConflicts rejects mixing -workload with the command's legacy
// traffic flags: a spec is the whole workload description, so an
// explicitly set legacy flag would be silently ignored — fail instead.
// Call after fs.Parse with the legacy flag names.
func (w *WorkloadFlags) CheckConflicts(fs *flag.FlagSet, legacy ...string) error {
	var clash []string
	fs.Visit(func(f *flag.Flag) {
		for _, l := range legacy {
			if f.Name == l {
				clash = append(clash, "-"+l)
			}
		}
	})
	if w.Workload == "" {
		if w.RecordTrace != "" {
			return fmt.Errorf("-recordtrace needs -workload")
		}
		return nil
	}
	if len(clash) > 0 {
		return fmt.Errorf("-workload already describes the traffic; drop %s", strings.Join(clash, ", "))
	}
	if w.RecordSlices <= 0 && w.RecordTrace != "" {
		return fmt.Errorf("-recordslices: must be positive, got %d", w.RecordSlices)
	}
	return nil
}

// MaybeRecord writes the TRAF1 trace requested by -recordtrace.
// Returns (arrivals, true) when a trace was written; callers typically
// report and continue (or stop, for record-only invocations).
func (w *WorkloadFlags) MaybeRecord(wl *traffic.Workload, sliceCycles int64) (int, bool, error) {
	if w.RecordTrace == "" {
		return 0, false, nil
	}
	if sliceCycles <= 0 {
		sliceCycles = 4096
	}
	tr, err := traffic.Record(wl, sliceCycles, w.RecordSlices)
	if err != nil {
		return 0, false, fmt.Errorf("-recordtrace: %w", err)
	}
	if err := tr.WriteFile(w.RecordTrace); err != nil {
		return 0, false, fmt.Errorf("-recordtrace: %w", err)
	}
	return len(tr.Arrivals), true, nil
}
