// Package stats provides the counters, rate conversions, histograms, and
// result tables shared by the experiment harness. All formatting is plain
// text so benchmark output can be diffed against EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Gbps converts (bytes, cycles, clockHz) to gigabits per second — the unit
// of Figure 7-1.
func Gbps(bytes int64, cycles int64, clockHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / clockHz
	return float64(bytes) * 8 / seconds / 1e9
}

// Mpps converts (packets, cycles, clockHz) to millions of packets per
// second — the unit of the §7.2 headline.
func Mpps(packets int64, cycles int64, clockHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / clockHz
	return float64(packets) / seconds / 1e6
}

// Histogram is a fixed-bucket latency/occupancy histogram.
type Histogram struct {
	// Bounds are inclusive upper bounds of each bucket; an implicit
	// +Inf bucket follows.
	Bounds []int64
	counts []int64
	total  int64
	sum    int64
	max    int64
}

// NewHistogram builds a histogram with power-of-two bounds up to maxExp.
func NewHistogram(maxExp int) *Histogram {
	h := &Histogram{}
	for e := 0; e <= maxExp; e++ {
		h.Bounds = append(h.Bounds, 1<<e)
	}
	h.counts = make([]int64, len(h.Bounds)+1)
	return h
}

// Observe records a value.
func (h *Histogram) Observe(v int64) {
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	i := sort.Search(len(h.Bounds), func(i int) bool { return h.Bounds[i] >= v })
	h.counts[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound on the q-quantile (bucketed).
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Table is a printable result table with a caption, mirroring one paper
// artifact (a figure series or table).
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row; values are rendered with %v, floats
// with three significant decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "# %s\n", t.Caption)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
