package stats

import "time"

// Phase accounting for the two-phase parallel simulator engine: wall time
// spent by each worker in each phase of the chip cycle, accumulated with
// one slot per (worker, phase) so concurrent workers never share a
// counter.

// The phases of one simulated cycle.
const (
	// PhaseCompute is tile stepping (processors, switches, routers).
	PhaseCompute = iota
	// PhaseCommit is applying staged fifo operations.
	PhaseCommit
	numPhases
)

// PhaseNames are the printable phase labels, indexed by phase constant.
var PhaseNames = [numPhases]string{"compute", "commit"}

// Tick is a monotonic timestamp in nanoseconds, as returned by Now.
type Tick int64

// Now returns the current monotonic time.
func Now() Tick { return Tick(time.Now().UnixNano()) }

// phaseSlot is padded to its own cache line so concurrent workers do not
// false-share.
type phaseSlot struct {
	ns [numPhases]int64
	_  [64 - 8*numPhases]byte
}

// PhaseAccount accumulates per-worker, per-phase wall time plus the cycle
// count they cover. The Add method of each worker index must be called
// from at most one goroutine at a time; different workers may add
// concurrently.
type PhaseAccount struct {
	slots  []phaseSlot
	cycles int64
}

// NewPhaseAccount creates an account for the given worker count.
func NewPhaseAccount(workers int) *PhaseAccount {
	if workers < 1 {
		workers = 1
	}
	return &PhaseAccount{slots: make([]phaseSlot, workers)}
}

// Workers returns the worker count the account was built for.
func (a *PhaseAccount) Workers() int { return len(a.slots) }

// Add records that worker spent the time since t0 in phase, and returns
// the current time so calls chain across consecutive phases:
//
//	t0 = acct.Add(w, stats.PhaseCompute, t0)
func (a *PhaseAccount) Add(worker, phase int, t0 Tick) Tick {
	now := Now()
	a.slots[worker].ns[phase] += int64(now - t0)
	return now
}

// AddCycles advances the simulated-cycle count the samples cover. Called
// from the coordinating goroutine only.
func (a *PhaseAccount) AddCycles(n int64) { a.cycles += n }

// Cycles returns the simulated cycles covered.
func (a *PhaseAccount) Cycles() int64 { return a.cycles }

// PhaseNs returns the accumulated nanoseconds for (worker, phase).
func (a *PhaseAccount) PhaseNs(worker, phase int) int64 { return a.slots[worker].ns[phase] }

// Table renders per-worker rows with per-phase ns/cycle and each worker's
// share of the busiest worker's total (a load-balance indicator: 1.00 for
// every row means perfect sharding).
func (a *PhaseAccount) Table() *Table {
	t := &Table{
		Caption: "per-worker phase accounting",
		Headers: []string{"worker", "compute ns/cyc", "commit ns/cyc", "total ns/cyc", "balance"},
	}
	cycles := a.cycles
	if cycles == 0 {
		cycles = 1
	}
	var busiest int64
	totals := make([]int64, len(a.slots))
	for w := range a.slots {
		for ph := 0; ph < numPhases; ph++ {
			totals[w] += a.slots[w].ns[ph]
		}
		if totals[w] > busiest {
			busiest = totals[w]
		}
	}
	for w := range a.slots {
		t.AddRow(w,
			float64(a.slots[w].ns[PhaseCompute])/float64(cycles),
			float64(a.slots[w].ns[PhaseCommit])/float64(cycles),
			float64(totals[w])/float64(cycles),
			Ratio(float64(totals[w]), float64(busiest)))
	}
	return t
}
