package stats_test

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestGbpsMpps(t *testing.T) {
	// 1024-byte packets, 305 cycles each, 4 ports, 250 MHz: the paper's
	// headline arithmetic (§7.2) lands near 26.9 Gbps / 3.3 Mpps.
	const cycles = 305 * 1000
	bytes := int64(1024 * 1000 * 4)
	pkts := int64(1000 * 4)
	g := stats.Gbps(bytes, cycles, 250e6)
	if g < 26 || g > 28 {
		t.Fatalf("Gbps = %.2f, want ≈ 26.9", g)
	}
	m := stats.Mpps(pkts, cycles, 250e6)
	if m < 3.0 || m > 3.6 {
		t.Fatalf("Mpps = %.2f, want ≈ 3.3", m)
	}
	if stats.Gbps(100, 0, 250e6) != 0 || stats.Mpps(100, 0, 250e6) != 0 {
		t.Fatal("zero cycles must yield zero rate")
	}
}

func TestHistogram(t *testing.T) {
	h := stats.NewHistogram(10)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean %f", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("max %d", h.Max())
	}
	if q := h.Quantile(0.5); q < 50 || q > 64 {
		t.Fatalf("p50 bucket bound %d, want within [50,64]", q)
	}
	if q := h.Quantile(1.0); q < 100 {
		t.Fatalf("p100 %d < max", q)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := stats.Table{Caption: "demo", Headers: []string{"size", "gbps"}}
	tb.AddRow(64, 7.3111)
	tb.AddRow(1024, 26.9)
	s := tb.String()
	if !strings.Contains(s, "# demo") || !strings.Contains(s, "7.31") {
		t.Fatalf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestRatio(t *testing.T) {
	if stats.Ratio(1, 0) != 0 {
		t.Fatal("div by zero")
	}
	if stats.Ratio(3, 4) != 0.75 {
		t.Fatal("ratio wrong")
	}
}
