// Package ip implements the IPv4 packet plumbing the Raw router's ingress
// and egress processors perform (§4.2 of the paper): header parsing and
// construction on 32-bit words, the Internet checksum with incremental
// update for the TTL decrement, and packet serialization to the word
// streams that cross the chip's pins.
package ip

import (
	"errors"
	"fmt"
)

// HeaderWords is the length of an IPv4 header without options, in 32-bit
// words. The router forwards only option-less headers on its fast path.
const HeaderWords = 5

// HeaderBytes is HeaderWords in bytes.
const HeaderBytes = HeaderWords * 4

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom builds an address from dotted-quad components.
func AddrFrom(a, b, c, d byte) Addr {
	return Addr(a)<<24 | Addr(b)<<16 | Addr(c)<<8 | Addr(d)
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Header is a parsed IPv4 header (no options).
type Header struct {
	TOS      uint8
	TotalLen uint16 // header + payload, bytes
	ID       uint16
	Flags    uint8  // 3 bits
	FragOff  uint16 // 13 bits, in 8-byte units
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst Addr
}

// Common protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Errors returned by header validation.
var (
	ErrVersion   = errors.New("ip: not an IPv4 header")
	ErrOptions   = errors.New("ip: headers with options are not fast-path")
	ErrChecksum  = errors.New("ip: header checksum mismatch")
	ErrTruncated = errors.New("ip: truncated packet")
	ErrTTL       = errors.New("ip: TTL expired")
)

// Marshal encodes the header into 5 words with a freshly computed
// checksum. Word layout is big-endian within each word, matching network
// byte order read 32 bits at a time.
func (h *Header) Marshal() [HeaderWords]uint32 {
	var w [HeaderWords]uint32
	const versionIHL = 4<<4 | HeaderWords // version 4, IHL 5
	w[0] = uint32(versionIHL)<<24 | uint32(h.TOS)<<16 | uint32(h.TotalLen)
	w[1] = uint32(h.ID)<<16 | uint32(h.Flags)<<13 | uint32(h.FragOff&0x1fff)
	w[2] = uint32(h.TTL)<<24 | uint32(h.Protocol)<<16 // checksum zero
	w[3] = uint32(h.Src)
	w[4] = uint32(h.Dst)
	ck := ChecksumWords(w[:])
	w[2] |= uint32(ck)
	return w
}

// Unmarshal parses and validates 5 header words. It checks the version,
// IHL, and checksum but not the TTL (forwarding decides that). On a
// validation error the decoded fields are still returned (best effort):
// a router that drops a corrupt packet still needs TotalLen to drain the
// rest of it off the line.
func Unmarshal(w []uint32) (Header, error) {
	var h Header
	if len(w) < HeaderWords {
		return h, ErrTruncated
	}
	var err error
	switch {
	case w[0]>>28 != 4:
		err = ErrVersion
	case w[0]>>24&0xf != HeaderWords:
		err = ErrOptions
	case ChecksumWords(w[:HeaderWords]) != 0:
		err = ErrChecksum
	}
	h.TOS = uint8(w[0] >> 16)
	h.TotalLen = uint16(w[0])
	h.ID = uint16(w[1] >> 16)
	h.Flags = uint8(w[1] >> 13 & 0x7)
	h.FragOff = uint16(w[1] & 0x1fff)
	h.TTL = uint8(w[2] >> 24)
	h.Protocol = uint8(w[2] >> 16)
	h.Checksum = uint16(w[2])
	h.Src = Addr(w[3])
	h.Dst = Addr(w[4])
	return h, err
}

// ChecksumWords computes the Internet checksum (RFC 1071) over words,
// treating each as two big-endian 16-bit groups. Computing it over a
// header whose checksum field holds the transmitted value yields 0 for a
// valid header.
func ChecksumWords(w []uint32) uint16 {
	var sum uint32
	for _, x := range w {
		sum += x >> 16
		sum += x & 0xffff
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// DecrementTTL applies the router's per-hop header update to a marshaled
// header in place: TTL minus one with the checksum adjusted incrementally
// per RFC 1624 (the ingress processor does this without re-summing the
// header, §4.2). It returns ErrTTL when the TTL would reach zero.
func DecrementTTL(w []uint32) error {
	if len(w) < HeaderWords {
		return ErrTruncated
	}
	ttl := uint8(w[2] >> 24)
	if ttl <= 1 {
		return ErrTTL
	}
	// HC' = ~(~HC + ~m + m')  with m the 16-bit group containing the TTL.
	oldGroup := w[2] >> 16
	newGroup := oldGroup - 0x100 // TTL occupies the high byte
	hc := w[2] & 0xffff
	sum := (^hc)&0xffff + (^oldGroup)&0xffff + newGroup
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	w[2] = newGroup<<16 | (^sum)&0xffff
	return nil
}

// Packet is an IPv4 packet as the router sees it: a header and a payload
// padded to whole words.
type Packet struct {
	Header  Header
	Payload []uint32
}

// NewPacket builds a packet of totalBytes (header included, rounded up to
// a whole word) with a deterministic payload pattern seeded by id.
func NewPacket(src, dst Addr, ttl uint8, totalBytes int, id uint16) Packet {
	if totalBytes < HeaderBytes {
		totalBytes = HeaderBytes
	}
	payloadWords := (totalBytes - HeaderBytes + 3) / 4
	p := Packet{
		Header: Header{
			TotalLen: uint16(totalBytes),
			ID:       id,
			TTL:      ttl,
			Protocol: ProtoUDP,
			Src:      src,
			Dst:      dst,
		},
		Payload: make([]uint32, payloadWords),
	}
	seed := uint32(id)*2654435761 + uint32(dst)
	for i := range p.Payload {
		seed = seed*1664525 + 1013904223
		p.Payload[i] = seed
	}
	return p
}

// Words serializes the packet to the wire: 5 header words then payload.
func (p *Packet) Words() []uint32 {
	h := p.Header.Marshal()
	out := make([]uint32, 0, HeaderWords+len(p.Payload))
	out = append(out, h[:]...)
	return append(out, p.Payload...)
}

// LenWords returns the on-wire length in words.
func (p *Packet) LenWords() int { return HeaderWords + len(p.Payload) }

// ParsePacket deserializes a packet from words, validating the header.
func ParsePacket(w []uint32) (Packet, error) {
	h, err := Unmarshal(w)
	if err != nil {
		return Packet{}, err
	}
	want := (int(h.TotalLen) + 3) / 4
	if len(w) < want {
		return Packet{}, ErrTruncated
	}
	return Packet{Header: h, Payload: append([]uint32(nil), w[HeaderWords:want]...)}, nil
}
