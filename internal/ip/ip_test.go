package ip_test

import (
	"testing"
	"testing/quick"

	"repro/internal/ip"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	h := ip.Header{
		TOS:      0x10,
		TotalLen: 1024,
		ID:       0x1234,
		Flags:    0x2,
		FragOff:  100,
		TTL:      64,
		Protocol: ip.ProtoTCP,
		Src:      ip.AddrFrom(10, 1, 2, 3),
		Dst:      ip.AddrFrom(192, 168, 7, 9),
	}
	w := h.Marshal()
	got, err := ip.Unmarshal(w[:])
	if err != nil {
		t.Fatal(err)
	}
	got.Checksum = 0
	want := h
	want.Checksum = 0
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	h := ip.Header{TotalLen: 64, TTL: 10, Src: 1, Dst: 2}
	w := h.Marshal()
	if ip.ChecksumWords(w[:]) != 0 {
		t.Fatal("fresh header does not verify")
	}
	w[3] ^= 0x00010000
	if _, err := ip.Unmarshal(w[:]); err != ip.ErrChecksum {
		t.Fatalf("corrupted header error = %v, want ErrChecksum", err)
	}
}

func TestUnmarshalRejects(t *testing.T) {
	h := ip.Header{TotalLen: 40, TTL: 4}
	w := h.Marshal()

	v6 := w
	v6[0] = v6[0]&^(0xf<<28) | 6<<28
	if _, err := ip.Unmarshal(v6[:]); err != ip.ErrVersion {
		t.Errorf("v6 header error = %v, want ErrVersion", err)
	}
	if _, err := ip.Unmarshal(w[:2]); err != ip.ErrTruncated {
		t.Errorf("short header error = %v, want ErrTruncated", err)
	}
	opt := h.Marshal()
	opt[0] = opt[0]&^(0xf<<24) | 6<<24
	if _, err := ip.Unmarshal(opt[:]); err != ip.ErrOptions {
		t.Errorf("options header error = %v, want ErrOptions", err)
	}
}

// TestDecrementTTLIncremental checks RFC 1624 incremental update against a
// full recompute, across all TTLs.
func TestDecrementTTLIncremental(t *testing.T) {
	for ttl := 2; ttl <= 255; ttl++ {
		h := ip.Header{TotalLen: 100, TTL: uint8(ttl), Protocol: ip.ProtoUDP,
			Src: ip.AddrFrom(1, 2, 3, 4), Dst: ip.AddrFrom(5, 6, 7, 8), ID: uint16(ttl * 7)}
		w := h.Marshal()
		if err := ip.DecrementTTL(w[:]); err != nil {
			t.Fatalf("ttl %d: %v", ttl, err)
		}
		if ip.ChecksumWords(w[:]) != 0 {
			t.Fatalf("ttl %d: incremental checksum invalid", ttl)
		}
		got, err := ip.Unmarshal(w[:])
		if err != nil {
			t.Fatalf("ttl %d: %v", ttl, err)
		}
		if got.TTL != uint8(ttl-1) {
			t.Fatalf("ttl %d: decremented to %d", ttl, got.TTL)
		}
	}
}

func TestDecrementTTLExpiry(t *testing.T) {
	h := ip.Header{TotalLen: 40, TTL: 1}
	w := h.Marshal()
	if err := ip.DecrementTTL(w[:]); err != ip.ErrTTL {
		t.Fatalf("err = %v, want ErrTTL", err)
	}
}

// TestHeaderProperty quick-checks that any header round-trips and
// checksums to zero.
func TestHeaderProperty(t *testing.T) {
	f := func(tos uint8, tl, id uint16, flags uint8, fo uint16, ttl, proto uint8, src, dst uint32) bool {
		h := ip.Header{
			TOS: tos, TotalLen: tl, ID: id,
			Flags: flags & 0x7, FragOff: fo & 0x1fff,
			TTL: ttl, Protocol: proto,
			Src: ip.Addr(src), Dst: ip.Addr(dst),
		}
		w := h.Marshal()
		if ip.ChecksumWords(w[:]) != 0 {
			return false
		}
		got, err := ip.Unmarshal(w[:])
		if err != nil {
			return false
		}
		got.Checksum = 0
		want := h
		want.Checksum = 0
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	for _, size := range []int{64, 128, 256, 512, 1024} {
		p := ip.NewPacket(ip.AddrFrom(10, 0, 0, 1), ip.AddrFrom(20, 0, 0, 2), 64, size, 99)
		w := p.Words()
		if len(w) != size/4 {
			t.Fatalf("size %d: %d words on wire, want %d", size, len(w), size/4)
		}
		got, err := ip.ParsePacket(w)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if got.Header.TotalLen != uint16(size) {
			t.Fatalf("size %d: TotalLen %d", size, got.Header.TotalLen)
		}
		for i := range p.Payload {
			if got.Payload[i] != p.Payload[i] {
				t.Fatalf("size %d: payload word %d corrupted", size, i)
			}
		}
	}
}

func TestMinimumPacket(t *testing.T) {
	p := ip.NewPacket(1, 2, 3, 8, 0) // below header size: clamped
	if p.LenWords() != ip.HeaderWords {
		t.Fatalf("minimum packet is %d words, want %d", p.LenWords(), ip.HeaderWords)
	}
}

func TestAddrString(t *testing.T) {
	if s := ip.AddrFrom(192, 168, 0, 1).String(); s != "192.168.0.1" {
		t.Fatalf("got %q", s)
	}
}
