package cluster

import (
	"fmt"

	"repro/internal/trace"
)

// Deterministic whole-fabric checkpoints. One FABCKPT1 blob captures all
// N chips as a single artifact: each chip's RTRCKPT1 record-replay blob
// plus the fabric-level state that lives outside any chip — the trunk
// framers and their conservation counters, the chip lifecycle (dead
// flags, epochs, birth cycles), the scheduled-control cursor, the
// external drop counts, and the fabric event log. Restoring onto a
// freshly built fabric with the same Config and the same ApplySchedule
// calls replays every chip and adopts the fabric state; the combined run
// is bit-for-bit identical to an uninterrupted one, provided all kills
// and re-admissions were scheduled (killchip@/restorechip@), not manual.

const fabSnapMagic = "FABCKPT1"

// Snapshot serializes the whole fabric at the current cycle. Requires
// Config.Router.Checkpoint (every chip records its inputs). Call between
// Run calls only.
func (f *Fabric) Snapshot() ([]byte, error) {
	if !f.cfg.Router.Checkpoint {
		return nil, fmt.Errorf("cluster: fabric snapshot requires Config.Router.Checkpoint")
	}
	b := []byte(fabSnapMagic)
	b = fabLE64(b, uint64(f.spec.Kind))
	b = fabLE64(b, uint64(f.spec.Chips))
	b = fabLE64(b, uint64(f.spec.W))
	b = fabLE64(b, uint64(f.spec.H))
	b = fabLE64(b, uint64(f.cycle))
	b = fabLE64(b, uint64(len(f.controls)))
	b = fabLE64(b, uint64(f.nextCtl))
	for k := range f.chips {
		s := &f.chips[k]
		flags := uint64(0)
		if s.dead {
			flags = 1
		}
		b = fabLE64(b, flags)
		b = fabLE64(b, uint64(s.epoch))
		b = fabLE64(b, uint64(s.bornAt))
		chip, err := s.r.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("cluster: chip %d: %w", k, err)
		}
		b = fabLE64(b, uint64(len(chip)))
		b = append(b, chip...)
	}
	for ti := range f.trunks {
		for d := 0; d < 2; d++ {
			td := &f.trunks[ti].dir[d]
			b = fabLE64(b, uint64(td.drained))
			b = fabLE64(b, uint64(td.delivered))
			b = fabLE64(b, uint64(td.dropped))
			b = fabLE64(b, uint64(len(td.buf)))
			for _, w := range td.buf {
				b = fabLE32(b, w)
			}
		}
	}
	for _, v := range f.extDropped {
		b = fabLE64(b, uint64(v))
	}
	b = fabLE64(b, uint64(len(f.events.Events)))
	for _, e := range f.events.Events {
		b = fabLE64(b, uint64(e.Cycle))
		b = fabLE64(b, uint64(e.Port))
		b = fabLE64(b, uint64(e.Kind))
		b = fabLE64(b, uint64(len(e.Detail)))
		b = append(b, e.Detail...)
	}
	return b, nil
}

// RestoreSnapshot rebuilds the checkpointed fabric on a freshly
// constructed one. The receiver must have been built with the same
// Config (Checkpoint included, same per-chip fault schedules) and the
// same ApplySchedule calls as the run that produced the blob; chips are
// replayed individually (replacement chips are rebuilt at their
// checkpointed epoch first) and each replay fails with a divergence
// error if it does not converge to the checkpointed counters.
func (f *Fabric) RestoreSnapshot(blob []byte) error {
	if !f.cfg.Router.Checkpoint {
		return fmt.Errorf("cluster: fabric restore requires Config.Router.Checkpoint")
	}
	rd := fabReader{buf: blob}
	magic := rd.bytes(len(fabSnapMagic))
	if rd.err != nil || string(magic) != fabSnapMagic {
		return fmt.Errorf("cluster: not a fabric snapshot")
	}
	spec := Spec{
		Kind:  TopoKind(rd.u64()),
		Chips: int(rd.u64()),
		W:     int(rd.u64()),
		H:     int(rd.u64()),
	}
	if rd.err == nil && spec != f.spec {
		return fmt.Errorf("cluster: snapshot is for %s, this fabric is %s", spec, f.spec)
	}
	cycle := int64(rd.u64())
	nctls := int(rd.u64())
	nextCtl := int(rd.u64())
	if rd.err == nil && nctls != len(f.controls) {
		return fmt.Errorf("cluster: snapshot scheduled %d chip controls, this fabric %d — apply the same schedule before restoring",
			nctls, len(f.controls))
	}
	f.cycle = cycle
	f.nextCtl = nextCtl
	for k := range f.chips {
		dead := rd.u64() != 0
		epoch := int(rd.u64())
		bornAt := int64(rd.u64())
		chip := rd.bytes(int(rd.u64()))
		if rd.err != nil {
			return fmt.Errorf("cluster: truncated fabric snapshot (chip %d)", k)
		}
		if epoch != f.chips[k].epoch {
			if err := f.buildChip(k, epoch); err != nil {
				return err
			}
		}
		if err := f.chips[k].r.RestoreSnapshot(chip); err != nil {
			return fmt.Errorf("cluster: chip %d: %w", k, err)
		}
		f.chips[k].dead = dead
		f.chips[k].bornAt = bornAt
	}
	for ti := range f.trunks {
		for d := 0; d < 2; d++ {
			td := &f.trunks[ti].dir[d]
			td.drained = int64(rd.u64())
			td.delivered = int64(rd.u64())
			td.dropped = int64(rd.u64())
			td.buf = td.buf[:0]
			n := rd.u64()
			if n > uint64(len(blob)) {
				return fmt.Errorf("cluster: corrupt fabric snapshot (framer length)")
			}
			for ; n > 0 && rd.err == nil; n-- {
				td.buf = append(td.buf, rd.u32())
			}
		}
	}
	for e := range f.extDropped {
		f.extDropped[e] = int64(rd.u64())
	}
	f.events.Events = f.events.Events[:0]
	nev := rd.u64()
	if nev > uint64(len(blob)) {
		return fmt.Errorf("cluster: corrupt fabric snapshot (event count)")
	}
	for n := nev; n > 0 && rd.err == nil; n-- {
		cyc := int64(rd.u64())
		port := int(rd.u64())
		kind := trace.EventKind(rd.u64())
		detail := string(rd.bytes(int(rd.u64())))
		f.events.AddDetail(cyc, port, kind, detail)
	}
	if rd.err != nil {
		return fmt.Errorf("cluster: truncated fabric snapshot")
	}
	if rd.off != len(blob) {
		return fmt.Errorf("cluster: %d trailing bytes in fabric snapshot", len(blob)-rd.off)
	}
	return nil
}

func fabLE32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func fabLE64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// fabReader is a bounds-checked little-endian cursor; err latches.
type fabReader struct {
	buf []byte
	off int
	err error
}

func (r *fabReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("short read")
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *fabReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *fabReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
