package cluster

import (
	"fmt"

	"repro/internal/trace"
)

// Deterministic whole-fabric checkpoints. One FABCKPT1 blob captures all
// N chips as a single artifact: each chip's RTRCKPT1 record-replay blob
// plus the fabric-level state that lives outside any chip — the trunk
// framers and their conservation counters, the chip lifecycle (dead
// flags, epochs, birth cycles), the scheduled-control cursor, the
// external drop counts, the fabric event log, and the healing plane
// (ledger counters, retransmit custody, flow-sequence and egress-window
// maps). Healed route tables need no fabric-level record: each chip's
// RTRCKPT1 blob carries its table-update log and the replay re-pokes
// them, so restore re-derives the routing epoch's tables bit-for-bit and
// only recomputes the side state (reachability, partition verdict).
// Restoring onto a freshly built fabric with the same Config and the
// same ApplySchedule calls replays every chip and adopts the fabric
// state; the combined run is bit-for-bit identical to an uninterrupted
// one — mid-heal checkpoints included — provided all kills and
// re-admissions were scheduled through the fault grammar, not manual.

const fabSnapMagic = "FABCKPT1"

// Snapshot serializes the whole fabric at the current cycle. Requires
// Config.Router.Checkpoint (every chip records its inputs). Call between
// Run calls only.
func (f *Fabric) Snapshot() ([]byte, error) {
	if !f.cfg.Router.Checkpoint {
		return nil, fmt.Errorf("cluster: fabric snapshot requires Config.Router.Checkpoint")
	}
	b := []byte(fabSnapMagic)
	b = fabLE64(b, uint64(f.spec.Kind))
	b = fabLE64(b, uint64(f.spec.Chips))
	b = fabLE64(b, uint64(f.spec.W))
	b = fabLE64(b, uint64(f.spec.H))
	b = fabLE64(b, uint64(f.cycle))
	b = fabLE64(b, uint64(len(f.controls)))
	b = fabLE64(b, uint64(f.nextCtl))
	for k := range f.chips {
		s := &f.chips[k]
		flags := uint64(0)
		if s.dead {
			flags = 1
		}
		b = fabLE64(b, flags)
		b = fabLE64(b, uint64(s.epoch))
		b = fabLE64(b, uint64(s.bornAt))
		b = fabLE64(b, uint64(s.wordsIn))
		b = fabLE64(b, uint64(s.wordsOut))
		chip, err := s.r.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("cluster: chip %d: %w", k, err)
		}
		b = fabLE64(b, uint64(len(chip)))
		b = append(b, chip...)
	}
	for ti := range f.trunks {
		t := &f.trunks[ti]
		dead := uint64(0)
		if t.dead {
			dead = 1
		}
		b = fabLE64(b, dead)
		for d := 0; d < 2; d++ {
			td := &t.dir[d]
			b = fabLE64(b, uint64(td.drained))
			b = fabLE64(b, uint64(td.delivered))
			b = fabLE64(b, uint64(td.dropped))
			b = fabLE64(b, uint64(td.retrans))
			b = fabLE64(b, uint64(td.frames))
			b = fabLE64(b, uint64(td.acked))
			b = fabLE64(b, uint64(len(td.buf)))
			for _, w := range td.buf {
				b = fabLE32(b, w)
			}
		}
	}
	for _, v := range f.extDropped {
		b = fabLE64(b, uint64(v))
	}
	b = fabLE64(b, uint64(len(f.events.Events)))
	for _, e := range f.events.Events {
		b = fabLE64(b, uint64(e.Cycle))
		b = fabLE64(b, uint64(e.Port))
		b = fabLE64(b, uint64(e.Kind))
		b = fabLE64(b, uint64(len(e.Detail)))
		b = append(b, e.Detail...)
	}
	// Healing plane: the end-to-end ledger (maintained with healing on or
	// off), retransmit custody, and the flow-tagging maps (sorted by key
	// so the blob is deterministic).
	b = fabLE64(b, uint64(f.injected))
	b = fabLE64(b, uint64(f.retiredExtOut))
	b = fabLE64(b, uint64(f.dupWords))
	for c := 0; c < numDropCauses; c++ {
		b = fabLE64(b, uint64(f.droppedCause[c]))
	}
	b = fabLE64(b, uint64(f.healEpoch))
	b = fabLE64(b, uint64(f.reroutes))
	b = fabLE64(b, uint64(f.retransFrames))
	b = fabLE64(b, uint64(f.retransWords))
	b = fabLE64(b, uint64(f.arqSeq))
	b = fabLE64(b, uint64(len(f.arq)))
	for _, e := range f.arq {
		b = fabLE64(b, uint64(e.trunk))
		b = fabLE64(b, uint64(e.dir))
		b = fabLE64(b, uint64(e.src))
		b = fabLE64(b, uint64(e.port))
		b = fabLE64(b, uint64(e.dstExt))
		b = fabLE64(b, uint64(e.seq))
		b = fabLE64(b, uint64(e.attempts))
		b = fabLE64(b, uint64(e.nextTry))
		b = fabLE64(b, uint64(len(e.words)))
		for _, w := range e.words {
			b = fabLE32(b, w)
		}
	}
	b = fabLE64(b, uint64(len(f.flowSeq)))
	for _, k := range sortedFlowKeys(f.flowSeq) {
		b = fabLE64(b, uint64(k))
		b = fabLE64(b, uint64(f.flowSeq[k]))
	}
	b = fabLE64(b, uint64(len(f.egressFlows)))
	for _, k := range sortedFlowKeys(f.egressFlows) {
		fl := f.egressFlows[k]
		flags := uint64(fl.max) << 1
		if fl.init {
			flags |= 1
		}
		b = fabLE64(b, uint64(k))
		b = fabLE64(b, flags)
		for _, w := range fl.bits {
			b = fabLE64(b, w)
		}
	}
	return b, nil
}

// RestoreSnapshot rebuilds the checkpointed fabric on a freshly
// constructed one. The receiver must have been built with the same
// Config (Checkpoint included, same per-chip fault schedules) and the
// same ApplySchedule calls as the run that produced the blob; chips are
// replayed individually (replacement chips are rebuilt at their
// checkpointed epoch first) and each replay fails with a divergence
// error if it does not converge to the checkpointed counters.
func (f *Fabric) RestoreSnapshot(blob []byte) error {
	if !f.cfg.Router.Checkpoint {
		return fmt.Errorf("cluster: fabric restore requires Config.Router.Checkpoint")
	}
	rd := fabReader{buf: blob}
	magic := rd.bytes(len(fabSnapMagic))
	if rd.err != nil || string(magic) != fabSnapMagic {
		return fmt.Errorf("cluster: not a fabric snapshot")
	}
	spec := Spec{
		Kind:  TopoKind(rd.u64()),
		Chips: int(rd.u64()),
		W:     int(rd.u64()),
		H:     int(rd.u64()),
	}
	if rd.err == nil && spec != f.spec {
		return fmt.Errorf("cluster: snapshot is for %s, this fabric is %s", spec, f.spec)
	}
	cycle := int64(rd.u64())
	nctls := int(rd.u64())
	nextCtl := int(rd.u64())
	if rd.err == nil && nctls != len(f.controls) {
		return fmt.Errorf("cluster: snapshot scheduled %d chip controls, this fabric %d — apply the same schedule before restoring",
			nctls, len(f.controls))
	}
	f.cycle = cycle
	f.nextCtl = nextCtl
	for k := range f.chips {
		dead := rd.u64() != 0
		epoch := int(rd.u64())
		bornAt := int64(rd.u64())
		wordsIn := int64(rd.u64())
		wordsOut := int64(rd.u64())
		chip := rd.bytes(int(rd.u64()))
		if rd.err != nil {
			return fmt.Errorf("cluster: truncated fabric snapshot (chip %d)", k)
		}
		if epoch != f.chips[k].epoch {
			if err := f.buildChip(k, epoch); err != nil {
				return err
			}
		}
		if err := f.chips[k].r.RestoreSnapshot(chip); err != nil {
			return fmt.Errorf("cluster: chip %d: %w", k, err)
		}
		f.chips[k].dead = dead
		f.chips[k].bornAt = bornAt
		f.chips[k].wordsIn = wordsIn
		f.chips[k].wordsOut = wordsOut
	}
	for ti := range f.trunks {
		t := &f.trunks[ti]
		t.dead = rd.u64() != 0
		for d := 0; d < 2; d++ {
			td := &t.dir[d]
			td.drained = int64(rd.u64())
			td.delivered = int64(rd.u64())
			td.dropped = int64(rd.u64())
			td.retrans = int64(rd.u64())
			td.frames = int64(rd.u64())
			td.acked = int64(rd.u64())
			td.buf = td.buf[:0]
			n := rd.u64()
			if n > uint64(len(blob)) {
				return fmt.Errorf("cluster: corrupt fabric snapshot (framer length)")
			}
			for ; n > 0 && rd.err == nil; n-- {
				td.buf = append(td.buf, rd.u32())
			}
		}
	}
	for e := range f.extDropped {
		f.extDropped[e] = int64(rd.u64())
	}
	f.events.Events = f.events.Events[:0]
	nev := rd.u64()
	if nev > uint64(len(blob)) {
		return fmt.Errorf("cluster: corrupt fabric snapshot (event count)")
	}
	for n := nev; n > 0 && rd.err == nil; n-- {
		cyc := int64(rd.u64())
		port := int(rd.u64())
		kind := trace.EventKind(rd.u64())
		detail := string(rd.bytes(int(rd.u64())))
		f.events.AddDetail(cyc, port, kind, detail)
	}
	f.injected = int64(rd.u64())
	f.retiredExtOut = int64(rd.u64())
	f.dupWords = int64(rd.u64())
	for c := 0; c < numDropCauses; c++ {
		f.droppedCause[c] = int64(rd.u64())
	}
	f.healEpoch = int64(rd.u64())
	f.reroutes = int64(rd.u64())
	f.retransFrames = int64(rd.u64())
	f.retransWords = int64(rd.u64())
	f.arqSeq = int64(rd.u64())
	f.arq = f.arq[:0]
	f.arqPend = make(map[[2]int]int)
	narq := rd.u64()
	if narq > uint64(len(blob)) {
		return fmt.Errorf("cluster: corrupt fabric snapshot (ARQ count)")
	}
	for n := narq; n > 0 && rd.err == nil; n-- {
		e := arqFrame{
			trunk:   int(rd.u64()),
			dir:     int(rd.u64()),
			src:     int(rd.u64()),
			port:    int(rd.u64()),
			dstExt:  int(rd.u64()),
			seq:     int64(rd.u64()),
			attempts: int(rd.u64()),
			nextTry: int64(rd.u64()),
		}
		nw := rd.u64()
		if nw > uint64(len(blob)) {
			return fmt.Errorf("cluster: corrupt fabric snapshot (ARQ frame length)")
		}
		e.words = make([]uint32, 0, nw)
		for ; nw > 0 && rd.err == nil; nw-- {
			e.words = append(e.words, rd.u32())
		}
		if rd.err == nil {
			f.arq = append(f.arq, e)
			f.arqPend[[2]int{e.trunk, e.dir}]++
		}
	}
	f.flowSeq = make(map[uint32]uint32)
	nfs := rd.u64()
	if nfs > uint64(len(blob)) {
		return fmt.Errorf("cluster: corrupt fabric snapshot (flow count)")
	}
	for n := nfs; n > 0 && rd.err == nil; n-- {
		k := uint32(rd.u64())
		f.flowSeq[k] = uint32(rd.u64())
	}
	f.egressFlows = make(map[uint32]*egressFlow)
	nef := rd.u64()
	if nef > uint64(len(blob)) {
		return fmt.Errorf("cluster: corrupt fabric snapshot (egress flow count)")
	}
	for n := nef; n > 0 && rd.err == nil; n-- {
		k := uint32(rd.u64())
		flags := rd.u64()
		fl := &egressFlow{init: flags&1 != 0, max: uint16(flags >> 1)}
		for i := range fl.bits {
			fl.bits[i] = rd.u64()
		}
		if rd.err == nil {
			f.egressFlows[k] = fl
		}
	}
	if rd.err != nil {
		return fmt.Errorf("cluster: truncated fabric snapshot")
	}
	if rd.off != len(blob) {
		return fmt.Errorf("cluster: %d trailing bytes in fabric snapshot", len(blob)-rd.off)
	}
	// Re-derive the healing side state from the restored dead sets. The
	// healed tables themselves were re-installed by each chip's replayed
	// table-update log, so no pokes happen here — only the reachability
	// matrix, the cached next-hop assignment, and the partition verdict.
	if f.healOn() {
		f.applyHealState(false)
	} else {
		for k := range f.chips {
			f.routePorts[k] = f.staticPorts(k)
		}
		f.reach = nil
		f.partition = nil
	}
	return nil
}

func fabLE32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func fabLE64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// fabReader is a bounds-checked little-endian cursor; err latches.
type fabReader struct {
	buf []byte
	off int
	err error
}

func (r *fabReader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("short read")
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *fabReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *fabReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
