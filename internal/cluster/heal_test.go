package cluster_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/traffic"
)

// Behavior tests for the healing plane: held-frame accounting at chip
// kill, adaptive rerouting around a dead chip, trunk ARQ retransmission
// over a detour, typed partition errors, and ref/fast x worker
// conformance with healing armed. heal_internal_test.go pins the route
// math; soak_heal_test.go runs the seeded checkpoint/restore arcs.

// healFeed is the heavy antipodal workload (external e -> antipode,
// always cross-chip, fill-to-4096 like cmd/fabsim): enough in-flight
// words that a mid-run kill strands whole frames. Outputs are drained
// every round so the egress dup filter runs.
func healFeed(t *testing.T, f *cluster.Fabric, spec cluster.Spec, rounds int, id uint16) uint16 {
	t.Helper()
	ext := spec.Externals()
	for i := 0; i < rounds; i++ {
		for e := 0; e < ext; e++ {
			// Refused offers never grow the backlog; bound by attempts.
			for tries := 0; f.InputBacklogWords(e) < 4096 && tries < 64; tries++ {
				id++
				dst := (e + ext/2) % ext
				pkt := ip.NewPacket(traffic.PortAddr(e, uint32(id)),
					traffic.PortAddr(dst, uint32(id)), 64, 1024, id)
				f.OfferPacket(e, &pkt)
			}
		}
		f.Run(200)
		for e := 0; e < ext; e++ {
			if _, err := f.DrainOutput(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	return id
}

// TestKillChipAccountsHeldFrames is the conservation regression for
// kill-with-nonempty-buffers (healing off): words resident in the victim
// and stranded in its trunk framers must land in the chip-loss ledger
// counter, and the end-to-end ledger must still balance.
func TestKillChipAccountsHeldFrames(t *testing.T) {
	spec := cluster.Ring(3)
	f := mustFabric(t, spec, nil)
	healFeed(t, f, spec, 10, 0)
	const victim = 1
	if err := f.KillChip(victim); err != nil {
		t.Fatal(err)
	}
	if got := f.DroppedByCause("chip-loss"); got <= 0 {
		t.Fatalf("chip-loss drops %d after killing a loaded chip, want > 0", got)
	}
	if err := f.ConservationError(); err != nil {
		t.Fatal(err)
	}
	if err := f.DeliveryError(); err != nil {
		t.Fatal(err)
	}
	// The fabric keeps running and the ledger keeps balancing.
	healFeed(t, f, spec, 10, 10000)
	if err := f.DeliveryError(); err != nil {
		t.Fatal(err)
	}
}

// TestHealReroute kills a middle ring chip with healing armed: the next
// heal epoch must swap tables (reroutes), surviving externals must keep
// delivering over the detour, traffic for the victim's externals must be
// counted dest-dead at ingress, and the ledger must balance throughout.
func TestHealReroute(t *testing.T) {
	spec := cluster.Ring(4)
	f := mustFabric(t, spec, func(c *cluster.Config) {
		c.Heal = cluster.HealConfig{Enabled: true}
	})
	id := healFeed(t, f, spec, 10, 0)
	if err := f.KillChip(2); err != nil {
		t.Fatal(err)
	}
	before := f.ExternalWordsOut()
	healFeed(t, f, spec, 20, id)
	d := f.Delivery()
	if d.HealEpochs != 1 {
		t.Fatalf("heal epochs %d, want 1", d.HealEpochs)
	}
	if d.Reroutes == 0 {
		t.Fatal("no tables rerouted after a chip kill on a ring")
	}
	if f.ExternalWordsOut() == before {
		t.Fatal("surviving externals stopped delivering after the kill")
	}
	if f.DroppedByCause("dest-dead") == 0 {
		t.Fatal("traffic for the victim's externals not counted dest-dead")
	}
	if err := f.DeliveryError(); err != nil {
		t.Fatal(err)
	}
}

// TestTrunkARQ darkens one ring-3 trunk mid-traffic: frames stranded at
// the dark link must retransmit over the two-hop detour, the link must
// come back on restore, and the ledger must balance at quiescence with
// zero frames still pending.
func TestTrunkARQ(t *testing.T) {
	spec := cluster.Ring(3)
	f := mustFabric(t, spec, func(c *cluster.Config) {
		c.Heal = cluster.HealConfig{Enabled: true, Seed: 7}
	})
	id := healFeed(t, f, spec, 10, 0)
	if err := f.KillTrunk(0, 1); err != nil {
		t.Fatal(err)
	}
	id = healFeed(t, f, spec, 30, id)
	d := f.Delivery()
	if d.RetransFrames == 0 {
		t.Fatal("no frames retransmitted over the detour while the trunk was dark")
	}
	if err := f.DeliveryError(); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreTrunk(0, 1); err != nil {
		t.Fatal(err)
	}
	healFeed(t, f, spec, 10, id)
	// Quiesce: no new offers, long drain (max ARQ backoff is ~4k cycles).
	f.Run(12000)
	for e := 0; e < spec.Externals(); e++ {
		if _, err := f.DrainOutput(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.DeliveryError(); err != nil {
		t.Fatal(err)
	}
	if d := f.Delivery(); d.PendingFrames != 0 {
		t.Fatalf("%d frames still pending retransmit after restore and drain", d.PendingFrames)
	}
	// Double-kill and double-restore are refused, not silently absorbed.
	if err := f.RestoreTrunk(0, 1); err == nil {
		t.Fatal("restoring a live trunk succeeded")
	}
}

// TestPartitionError pins the typed failure on disconnected survivors:
// a 2-chip ring losing a chip isolates the other; a 1-wide mesh losing
// its middle chip splits in two. Both must surface *PartitionError from
// DeliveryError (with the spec's self-reported risk in the message) and
// clear it when the victim is re-admitted.
func TestPartitionError(t *testing.T) {
	cases := []struct {
		spec       cluster.Spec
		victim     int
		components int
		isolated   int
	}{
		{cluster.Ring(2), 0, 1, 1},
		{cluster.Mesh(3, 1), 1, 2, 2},
	}
	for _, c := range cases {
		f := mustFabric(t, c.spec, func(cf *cluster.Config) {
			cf.Heal = cluster.HealConfig{Enabled: true}
		})
		if risk := c.spec.PartitionRisk(); risk == "" {
			t.Fatalf("%s: spec does not self-report partition risk", c.spec)
		}
		if err := f.KillChip(c.victim); err != nil {
			t.Fatal(err)
		}
		err := f.DeliveryError()
		var pe *cluster.PartitionError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: DeliveryError = %v, want *PartitionError", c.spec, err)
		}
		if pe.Components != c.components || len(pe.Isolated) != c.isolated {
			t.Fatalf("%s: partition comps=%d isolated=%v, want comps=%d |isolated|=%d",
				c.spec, pe.Components, pe.Isolated, c.components, c.isolated)
		}
		if !strings.Contains(pe.Error(), c.spec.PartitionRisk()) {
			t.Fatalf("%s: partition message %q omits the spec risk", c.spec, pe.Error())
		}
		if err := f.RestoreChip(c.victim); err != nil {
			t.Fatal(err)
		}
		if err := f.DeliveryError(); err != nil {
			t.Fatalf("%s: partition not cleared by re-admission: %v", c.spec, err)
		}
	}
}

// TestHealConformance runs a full heal arc (trunk kill/restore, then
// chip kill/restore) with healing armed and fingerprint-diffs ref@1
// against fast@1 and fast@NumCPU: rerouting, ARQ re-drives, and flow
// tagging must be bit-for-bit engine- and worker-independent.
func TestHealConformance(t *testing.T) {
	spec := cluster.Ring(4)
	sched := fault.MustParse(
		"killtrunk@1000:c0-c1;restoretrunk@5000:c0-c1;killchip@8000:c2;restorechip@12000:c2")
	run := func(engine raw.Engine, workers int) (uint64, uint64) {
		f := mustFabric(t, spec, func(c *cluster.Config) {
			c.Router.Engine = engine
			c.Router.Workers = workers
			c.Heal = cluster.HealConfig{Enabled: true, Seed: 42}
		})
		f.ApplySchedule(sched)
		fp, dig := driveConf(t, f, spec, 16000, 0)
		if err := f.DeliveryError(); err != nil {
			t.Fatal(err)
		}
		if d := f.Delivery(); d.HealEpochs != 4 {
			t.Fatalf("heal epochs %d, want 4", d.HealEpochs)
		}
		return fp, dig
	}
	refFP, refDig := run(raw.EngineRef, 1)
	cases := []struct {
		name    string
		engine  raw.Engine
		workers int
	}{
		{"fast/w1", raw.EngineFast, 1},
		{"fast/wN", raw.EngineFast, confWorkers()},
	}
	for _, c := range cases {
		fp, dig := run(c.engine, c.workers)
		if fp != refFP {
			t.Errorf("%s: fingerprint %#x != ref/w1 %#x", c.name, fp, refFP)
		}
		if dig != refDig {
			t.Errorf("%s: output digest %#x != ref/w1 %#x", c.name, dig, refDig)
		}
	}
}
