package cluster_test

import (
	"hash/fnv"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/traffic"
)

// Cross-engine conformance suite: every topology kind must step
// bit-for-bit identically under the reference interpreter and the
// compiled fast engine, at one worker and at host parallelism, with no
// topology-specific carve-outs. Equality is checked three ways — the
// fabric Fingerprint (counters, lifecycle, trunk state), an FNV digest
// of every word drained at every external port, and (for the engine
// switch) the FABCKPT1 blob itself.

// confWorkers is "host parallelism" for the suite: NumCPU, but at least
// 2 so single-core CI machines still exercise the sharded path.
func confWorkers() int {
	if n := runtime.NumCPU(); n > 2 {
		return n
	}
	return 2
}

// confRun drives spec for cycles cycles under the given engine/worker
// pair with a deterministic all-pairs feed, folding every drained
// output word into a digest. Returns (fingerprint, output digest).
func confRun(t *testing.T, spec cluster.Spec, engine raw.Engine, workers int, cycles int64) (uint64, uint64) {
	t.Helper()
	f := mustFabric(t, spec, func(c *cluster.Config) {
		c.Router.Engine = engine
		c.Router.Workers = workers
	})
	return driveConf(t, f, spec, cycles, 0)
}

// driveConf runs the canonical conformance workload on an existing
// fabric: each external offers fixed-size packets to a rotating
// destination whenever its backlog has room, in 200-cycle rounds,
// starting the packet-id sequence at idBase (so a resumed run continues
// the exact offered stream). Every drained word is folded into the
// digest in (port, order) sequence.
func driveConf(t *testing.T, f *cluster.Fabric, spec cluster.Spec, cycles int64, idBase uint16) (uint64, uint64) {
	t.Helper()
	h := fnv.New64a()
	word := func(w uint32) {
		h.Write([]byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)})
	}
	id := idBase
	ext := spec.Externals()
	for done := int64(0); done < cycles; done += 200 {
		for src := 0; src < ext; src++ {
			if f.InputBacklogWords(src) < 2048 {
				id++
				dst := (src + int(id)) % ext
				if dst == src {
					dst = (dst + 1) % ext
				}
				pkt := ip.NewPacket(traffic.PortAddr(src, uint32(id)),
					traffic.PortAddr(dst, uint32(id)), 64, 256, id)
				f.OfferPacket(src, &pkt)
			}
		}
		f.Run(200)
		for e := 0; e < ext; e++ {
			out, err := f.DrainOutput(e)
			if err != nil {
				t.Fatal(err)
			}
			word(uint32(e))
			for _, p := range out {
				for _, w := range p.Header.Marshal() {
					word(w)
				}
				for _, w := range p.Payload {
					word(w)
				}
			}
		}
	}
	if err := f.ConservationError(); err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	return f.Fingerprint(), h.Sum64()
}

// TestEngineConformanceMatrix fingerprint-diffs ref@1 against fast@1
// and fast@NumCPU on every topology kind.
func TestEngineConformanceMatrix(t *testing.T) {
	specs := []cluster.Spec{cluster.Ring(3), cluster.Mesh(2, 2), cluster.FatTree(2)}
	for _, spec := range specs {
		const cycles = 6000
		refFP, refDig := confRun(t, spec, raw.EngineRef, 1, cycles)
		cases := []struct {
			name    string
			engine  raw.Engine
			workers int
		}{
			{"fast/w1", raw.EngineFast, 1},
			{"fast/wN", raw.EngineFast, confWorkers()},
		}
		for _, c := range cases {
			fp, dig := confRun(t, spec, c.engine, c.workers, cycles)
			if fp != refFP {
				t.Errorf("%s: %s fingerprint %#x != ref/w1 %#x", spec, c.name, fp, refFP)
			}
			if dig != refDig {
				t.Errorf("%s: %s output digest %#x != ref/w1 %#x", spec, c.name, dig, refDig)
			}
		}
	}
}

// TestMesh16ChipConformance is the acceptance-criteria case: the
// 16-chip, 64-port mesh steps bit-for-bit identically across workers
// {1, NumCPU} x engines {ref, fast}.
func TestMesh16ChipConformance(t *testing.T) {
	spec := cluster.Mesh(4, 4)
	const cycles = 4000
	refFP, refDig := confRun(t, spec, raw.EngineRef, 1, cycles)
	cases := []struct {
		name    string
		engine  raw.Engine
		workers int
	}{
		{"ref/wN", raw.EngineRef, confWorkers()},
		{"fast/w1", raw.EngineFast, 1},
		{"fast/wN", raw.EngineFast, confWorkers()},
	}
	for _, c := range cases {
		fp, dig := confRun(t, spec, c.engine, c.workers, cycles)
		if fp != refFP {
			t.Errorf("mesh-4x4 %s: fingerprint %#x != ref/w1 %#x", c.name, fp, refFP)
		}
		if dig != refDig {
			t.Errorf("mesh-4x4 %s: output digest %#x != ref/w1 %#x", c.name, dig, refDig)
		}
	}
}

// TestEngineSwitchMidRun checkpoints a ref-engine fabric mid-arc,
// restores the blob into a fast-engine fabric, and finishes the run on
// both: fingerprints, output digests, and the final FABCKPT1 blobs must
// all match — engine choice is invisible to fabric state.
func TestEngineSwitchMidRun(t *testing.T) {
	spec := cluster.Ring(3)
	build := func(engine raw.Engine) *cluster.Fabric {
		return mustFabric(t, spec, func(c *cluster.Config) {
			c.Router.Engine = engine
			c.Router.Checkpoint = true
		})
	}
	ref := build(raw.EngineRef)
	_, _ = driveConf(t, ref, spec, 3000, 0)
	blob, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fast := build(raw.EngineFast)
	if err := fast.RestoreSnapshot(blob); err != nil {
		t.Fatal(err)
	}
	// Continue both with the identical feed continuation.
	refFP, refDig := driveConf(t, ref, spec, 3000, 9000)
	fastFP, fastDig := driveConf(t, fast, spec, 3000, 9000)
	if refFP != fastFP || refDig != fastDig {
		t.Fatalf("engine switch diverged: ref (%#x, %#x) vs fast (%#x, %#x)",
			refFP, refDig, fastFP, fastDig)
	}
	refBlob, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fastBlob, err := fast.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(refBlob) != string(fastBlob) {
		t.Fatal("final FABCKPT1 blobs differ after mid-run engine switch")
	}
}
