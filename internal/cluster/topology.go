package cluster

import (
	"fmt"

	"repro/internal/lookup"
	"repro/internal/router"
)

// Topology kinds. Each kind fixes how N 4-port chips are wired together
// (which chip-local ports become inter-chip trunks and which stay
// external) and which deterministic inter-chip routing discipline the
// per-chip tables implement:
//
//   - ring: ports 0,1 of every chip are external, port 2 is the
//     clockwise trunk and port 3 the counter-clockwise one;
//     direction-optimal routing takes the shorter way around, spreading
//     ties by destination parity (the bisection-balancing trick of the
//     two-chip composition).
//   - mesh: a W x H grid with ports 0=E, 1=W, 2=N, 3=S; interior sides
//     are trunks, boundary sides are external; dimension-ordered (X then
//     Y) routing, which is deadlock-free on a mesh.
//   - fattree: L leaf chips (ports 0,1 external) under two spine chips;
//     up*/down* routing sends a remote packet up to the spine chosen by
//     destination parity and straight down to its leaf.
type TopoKind uint8

const (
	TopoRing TopoKind = iota
	TopoMesh
	TopoFatTree
)

// String returns the kind's stable name ("ring", "mesh", "fattree").
func (k TopoKind) String() string {
	switch k {
	case TopoRing:
		return "ring"
	case TopoMesh:
		return "mesh"
	case TopoFatTree:
		return "fattree"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseTopoKind maps a stable name back to its kind.
func ParseTopoKind(s string) (TopoKind, error) {
	switch s {
	case "ring":
		return TopoRing, nil
	case "mesh":
		return TopoMesh, nil
	case "fattree":
		return TopoFatTree, nil
	}
	return 0, fmt.Errorf("cluster: unknown topology %q (want ring, mesh, or fattree)", s)
}

// Spec declares an N-chip fabric: the topology is data, compiled by
// NewFabric into per-chip route tables and trunk wiring. Ring and
// fat-tree specs size themselves with Chips (fat-tree: leaves + the two
// spines) and leave W,H zero; mesh specs use W,H and leave Chips zero.
type Spec struct {
	Kind  TopoKind
	Chips int // ring: 2..32 chips; fattree: 4..6 chips (2..4 leaves + 2 spines)
	W, H  int // mesh: 1..8 each, W*H >= 2
}

// Ring returns the spec for an n-chip ring.
func Ring(n int) Spec { return Spec{Kind: TopoRing, Chips: n} }

// Mesh returns the spec for a w x h grid.
func Mesh(w, h int) Spec { return Spec{Kind: TopoMesh, W: w, H: h} }

// FatTree returns the spec for leaves leaf chips under two spines.
func FatTree(leaves int) Spec { return Spec{Kind: TopoFatTree, Chips: leaves + 2} }

// SpecFor maps a (kind, chip count) pair — the command-line surface —
// to a validated Spec. Rings take the count directly; a fat-tree's
// count includes its two spines; a mesh count is factored into the
// squarest W x H grid (16 -> 4x4, 8 -> 4x2), rejecting counts with no
// grid inside the side bounds (primes > 8).
func SpecFor(kind TopoKind, chips int) (Spec, error) {
	var s Spec
	switch kind {
	case TopoRing:
		s = Ring(chips)
	case TopoFatTree:
		s = FatTree(chips - 2)
	case TopoMesh:
		if chips < 2 {
			return Spec{}, fmt.Errorf("cluster: mesh needs at least 2 chips (got %d)", chips)
		}
		w := 0
		for d := 1; d*d <= chips; d++ {
			if chips%d == 0 && chips/d <= maxMeshSide {
				w = d
			}
		}
		if w == 0 {
			return Spec{}, fmt.Errorf("cluster: %d chips has no W x H grid with sides <= %d", chips, maxMeshSide)
		}
		s = Mesh(chips/w, w)
	default:
		return Spec{}, fmt.Errorf("cluster: unknown topology kind %d", kind)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// String names the instance ("ring-4", "mesh-4x4", "fattree-6").
func (s Spec) String() string {
	if s.Kind == TopoMesh {
		return fmt.Sprintf("mesh-%dx%d", s.W, s.H)
	}
	return fmt.Sprintf("%s-%d", s.Kind, s.Chips)
}

// Spec validation bounds. The fat-tree leaf count is capped by the spine
// chips' four ports; the ring and mesh caps keep a hostile (fuzzed) spec
// from building an unboundedly large fabric.
const (
	minRingChips    = 2
	maxRingChips    = 32
	maxMeshSide     = 8
	minFatTreeChips = 4 // 2 leaves + 2 spines
	maxFatTreeChips = 6 // 4 leaves + 2 spines
)

// PartitionRisk names the ways a single chip loss can disconnect the
// surviving topology, or returns "" for specs where any one chip can die
// without splitting the fabric. Risky specs (a 2-chip ring, a 1-wide
// mesh) still validate — they are legitimate degenerate fabrics — but a
// kill on one with healing enabled surfaces a typed PartitionError, and
// harnesses can warn up front with this string.
func (s Spec) PartitionRisk() string {
	switch s.Kind {
	case TopoRing:
		if s.Chips == 2 {
			return "partition risk: a 2-chip ring has a single neighbor per chip — losing either chip isolates the survivor"
		}
	case TopoMesh:
		if (s.W == 1 || s.H == 1) && s.NumChips() > 2 {
			return fmt.Sprintf("partition risk: a %dx%d mesh is a line — losing any interior chip splits it in two", s.W, s.H)
		}
		if s.NumChips() == 2 {
			return "partition risk: a 2-chip mesh has a single trunk — losing either chip isolates the survivor"
		}
	}
	return ""
}

// Validate checks the spec against the kind's bounds, with a precise
// error for every way a spec can be malformed. Specs whose chip loss can
// partition the fabric (2-chip ring, 1-wide mesh) are valid — see
// PartitionRisk for the loud-failure contract under healing.
func (s Spec) Validate() error {
	switch s.Kind {
	case TopoRing:
		if s.W != 0 || s.H != 0 {
			return fmt.Errorf("cluster: ring spec must leave W,H zero (got %dx%d)", s.W, s.H)
		}
		if s.Chips < minRingChips || s.Chips > maxRingChips {
			return fmt.Errorf("cluster: ring wants %d..%d chips, got %d", minRingChips, maxRingChips, s.Chips)
		}
	case TopoMesh:
		if s.Chips != 0 {
			return fmt.Errorf("cluster: mesh spec sizes itself with W,H; leave Chips zero (got %d)", s.Chips)
		}
		if s.W < 1 || s.W > maxMeshSide || s.H < 1 || s.H > maxMeshSide {
			return fmt.Errorf("cluster: mesh sides must be 1..%d, got %dx%d", maxMeshSide, s.W, s.H)
		}
		if s.W*s.H < 2 {
			return fmt.Errorf("cluster: a 1x1 mesh has no trunks; need at least 2 chips")
		}
	case TopoFatTree:
		if s.W != 0 || s.H != 0 {
			return fmt.Errorf("cluster: fattree spec must leave W,H zero (got %dx%d)", s.W, s.H)
		}
		if s.Chips < minFatTreeChips || s.Chips > maxFatTreeChips {
			return fmt.Errorf("cluster: fattree wants %d..%d chips (leaves+2 spines), got %d",
				minFatTreeChips, maxFatTreeChips, s.Chips)
		}
	default:
		return fmt.Errorf("cluster: unknown topology kind %d", uint8(s.Kind))
	}
	return nil
}

// NumChips returns the fabric's chip count.
func (s Spec) NumChips() int {
	if s.Kind == TopoMesh {
		return s.W * s.H
	}
	return s.Chips
}

// leaves returns the fat-tree leaf count; spines are chips leaves and
// leaves+1.
func (s Spec) leaves() int { return s.Chips - 2 }

// Externals returns the fabric's external (line-card-facing) port count.
// External port e owns (10+e).0.0.0/8, extending the single-chip
// canonical addressing to the whole fabric.
func (s Spec) Externals() int {
	switch s.Kind {
	case TopoRing:
		return 2 * s.Chips
	case TopoMesh:
		// Perimeter sides: every boundary side of every edge chip.
		return 2*s.W + 2*s.H
	case TopoFatTree:
		return 2 * s.leaves()
	}
	return 0
}

// meshXY returns chip c's grid coordinates.
func (s Spec) meshXY(c int) (x, y int) { return c % s.W, c / s.W }

// Mesh side roles for the four chip-local ports.
const (
	meshE = 0
	meshW = 1
	meshN = 2
	meshS = 3
)

// meshBoundary reports whether chip c's local port is a grid-boundary
// side (external) rather than a trunk to a neighbor.
func (s Spec) meshBoundary(c, local int) bool {
	x, y := s.meshXY(c)
	switch local {
	case meshE:
		return x == s.W-1
	case meshW:
		return x == 0
	case meshN:
		return y == 0
	case meshS:
		return y == s.H-1
	}
	return false
}

// ExtPort maps external port e to its (chip, chip-local port) placement.
func (s Spec) ExtPort(e int) (chip, local int) {
	switch s.Kind {
	case TopoRing, TopoFatTree:
		// Two externals per edge chip: chip c contributes ports 0 and 1.
		return e / 2, e % 2
	case TopoMesh:
		// Enumerate boundary sides in (chip, local) order.
		i := 0
		for c := 0; c < s.NumChips(); c++ {
			for l := 0; l < 4; l++ {
				if !s.meshBoundary(c, l) {
					continue
				}
				if i == e {
					return c, l
				}
				i++
			}
		}
	}
	panic(fmt.Sprintf("cluster: external port %d out of range on %s", e, s))
}

// ExternalOf is ExtPort's inverse: the external port index of a chip's
// local port, or ok=false if that side is a trunk (or a disconnected
// spine port).
func (s Spec) ExternalOf(chip, local int) (e int, ok bool) {
	for i := 0; i < s.Externals(); i++ {
		c, l := s.ExtPort(i)
		if c == chip && l == local {
			return i, true
		}
	}
	return 0, false
}

// Trunk is one bidirectional inter-chip link: chip A's local port APort
// wired pin-to-pin to chip B's local port BPort. The fabric bridges both
// directions every step slice.
type Trunk struct {
	A, APort int
	B, BPort int
}

// String names the trunk ("c0p2-c1p3").
func (t Trunk) String() string {
	return fmt.Sprintf("c%dp%d-c%dp%d", t.A, t.APort, t.B, t.BPort)
}

// Trunks enumerates the spec's inter-chip links in a deterministic
// order (ring: clockwise from chip 0; mesh: chip order, E before S;
// fattree: leaf order, spine 0 before spine 1).
func (s Spec) Trunks() []Trunk {
	var ts []Trunk
	switch s.Kind {
	case TopoRing:
		for c := 0; c < s.Chips; c++ {
			ts = append(ts, Trunk{A: c, APort: ringCW, B: (c + 1) % s.Chips, BPort: ringCCW})
		}
	case TopoMesh:
		for c := 0; c < s.NumChips(); c++ {
			x, y := s.meshXY(c)
			if x+1 < s.W {
				ts = append(ts, Trunk{A: c, APort: meshE, B: c + 1, BPort: meshW})
			}
			if y+1 < s.H {
				ts = append(ts, Trunk{A: c, APort: meshS, B: c + s.W, BPort: meshN})
			}
		}
	case TopoFatTree:
		for l := 0; l < s.leaves(); l++ {
			ts = append(ts, Trunk{A: l, APort: ftUp0, B: s.leaves(), BPort: l})
			ts = append(ts, Trunk{A: l, APort: ftUp1, B: s.leaves() + 1, BPort: l})
		}
	}
	return ts
}

// Ring and fat-tree port roles.
const (
	ringCW  = 2 // trunk toward chip (c+1) mod N
	ringCCW = 3 // trunk toward chip (c-1) mod N
	ftUp0   = 2 // leaf uplink to spine 0
	ftUp1   = 3 // leaf uplink to spine 1
)

// NextHopPort returns the chip-local port chip forwards through toward
// external port e — the inter-chip routing discipline, compiled into
// chip's route table by NewFabric. A packet repeatedly forwarded by
// NextHopPort provably reaches e's chip: ring hops shrink the
// circular distance, dimension-ordered mesh hops fix X then Y, and
// fat-tree routes are one up-hop and one down-hop.
func (s Spec) NextHopPort(chip, e int) int {
	dc, dl := s.ExtPort(e)
	if dc == chip {
		return dl
	}
	switch s.Kind {
	case TopoRing:
		// Direction-optimal: shorter way around; ties spread by
		// destination parity to balance the bisection.
		n := s.Chips
		cw := (dc - chip + n) % n
		switch {
		case cw < n-cw:
			return ringCW
		case cw > n-cw:
			return ringCCW
		case e%2 == 0:
			return ringCW
		default:
			return ringCCW
		}
	case TopoMesh:
		x, y := s.meshXY(chip)
		dx, dy := s.meshXY(dc)
		switch {
		case dx > x:
			return meshE
		case dx < x:
			return meshW
		case dy < y:
			return meshN
		default:
			return meshS
		}
	case TopoFatTree:
		if chip >= s.leaves() {
			// Spine: straight down; spine s's local port l reaches leaf l.
			return dc
		}
		// Leaf: up to the spine chosen by destination parity.
		if e%2 == 0 {
			return ftUp0
		}
		return ftUp1
	}
	panic("cluster: NextHopPort on invalid spec")
}

// chipTable compiles chip's route table: every external /8 prefix bound
// to the local port NextHopPort picks — the same shared binding helper
// the single-chip canonical table uses.
func (s Spec) chipTable(chip int) *lookup.Patricia {
	return router.BindPorts(s.Externals(), func(e int) lookup.NextHop {
		return lookup.NextHop(s.NextHopPort(chip, e))
	})
}

// lowSide reports whether chip c sits on the low side of the canonical
// bisection cut: the first half of a ring, the west half of a mesh
// (north half for 1-wide meshes), and the first half of a fat-tree's
// leaves (spines sit on the cut, so a leaf uplink crosses it exactly
// when its leaf is in the low half).
func (s Spec) lowSide(c int) bool {
	switch s.Kind {
	case TopoRing:
		return c < s.Chips/2
	case TopoMesh:
		x, y := s.meshXY(c)
		if s.W > 1 {
			return x < s.W/2
		}
		return y < s.H/2
	case TopoFatTree:
		// Spines sit on the cut; count a trunk as crossing when its leaf
		// endpoint is in the low half.
		return c < s.leaves()/2
	}
	return false
}

// BisectionTrunks returns the indices (into Trunks()) of the links that
// cross the canonical bisection cut — the links whose aggregate
// bandwidth caps all-to-all scaling.
func (s Spec) BisectionTrunks() []int {
	var out []int
	for i, t := range s.Trunks() {
		if s.lowSide(t.A) != s.lowSide(t.B) {
			out = append(out, i)
		}
	}
	return out
}
