package cluster_test

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Fabric chip-loss soak: a seeded kill -> dead-interval -> re-admission
// arc on a live fabric, with a checkpoint taken mid-arc (while the chip
// is down) and restored into a fresh fabric that must finish the run
// byte-for-byte identically. This is the cluster-scale analog of the
// single-chip degrade->restore soak in internal/fault; `make soak` runs
// both. SOAK_SEEDS widens the matrix.

func fabricSoakSeeds(t *testing.T) int {
	t.Helper()
	seeds := 2
	if v := os.Getenv("SOAK_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SOAK_SEEDS %q", v)
		}
		seeds = n
	}
	return seeds
}

// soakFeed offers seeded all-pairs traffic for rounds 200-cycle rounds.
// The offer decisions depend only on the seed and the fabric's (fully
// deterministic) backlog state, so a restored fabric re-fed with the
// same phase sequence sees the identical offered stream.
func soakFeed(f *cluster.Fabric, spec cluster.Spec, rng *traffic.RNG, rounds int) {
	ext := spec.Externals()
	for r := 0; r < rounds; r++ {
		for src := 0; src < ext; src++ {
			if f.InputBacklogWords(src) < 2048 {
				id := uint16(rng.Uint64())
				dst := int(rng.Uint64() % uint64(ext))
				if dst == src {
					dst = (dst + 1) % ext
				}
				pkt := ip.NewPacket(traffic.PortAddr(src, uint32(id)),
					traffic.PortAddr(dst, uint32(id)), 64, 256, id)
				f.OfferPacket(src, &pkt)
			}
		}
		f.Run(200)
	}
}

func TestSoakChipLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric soak skipped in -short")
	}
	spec := cluster.Ring(3)
	seeds := fabricSoakSeeds(t)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		seed := seed
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			rng := traffic.NewRNG(seed)
			victim := int(rng.Uint64() % uint64(spec.NumChips()))
			kill := int64(1500 + rng.Uint64()%1500) // fires during feed phase 1
			restore := kill + 4000 + int64(rng.Uint64()%2000)
			p1 := rng.Uint64() // feed-phase seeds, shared by both runs
			p2 := rng.Uint64()
			sched := fault.MustParse(
				"killchip@" + strconv.FormatInt(kill, 10) + ":c" + strconv.Itoa(victim) +
					";restorechip@" + strconv.FormatInt(restore, 10) + ":c" + strconv.Itoa(victim))

			build := func() *cluster.Fabric {
				f := mustFabric(t, spec, func(c *cluster.Config) {
					c.Router.Engine = raw.EngineFast
					c.Router.Checkpoint = true
				})
				f.ApplySchedule(sched)
				return f
			}

			// Uninterrupted reference: feed through the kill, checkpoint
			// mid-arc (chip down), feed through the re-admission, drain dry.
			ref := build()
			soakFeed(ref, spec, traffic.NewRNG(p1), 20) // 4000 cycles: kill has fired
			if !ref.ChipDead(victim) {
				t.Fatalf("seed %d: victim %d not dead at cycle %d (kill@%d)",
					seed, victim, ref.Cycle(), kill)
			}
			blob, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			soakFeed(ref, spec, traffic.NewRNG(p2), 30) // through the re-admission
			ref.Run(6000)                               // drain dry
			refFinal, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// The arc must actually have happened.
			ev := ref.Events().Events
			if len(ev) != 2 || ev[0].Kind != trace.EvChipKill || ev[0].Cycle != kill ||
				ev[1].Kind != trace.EvChipRestore || ev[1].Cycle != restore {
				t.Fatalf("seed %d: lifecycle log %v, want kill@%d restore@%d", seed, ev, kill, restore)
			}
			if ref.ChipDead(victim) || ref.ChipEpoch(victim) != 1 {
				t.Fatalf("seed %d: victim dead=%v epoch=%d after re-admission",
					seed, ref.ChipDead(victim), ref.ChipEpoch(victim))
			}
			if err := ref.ConservationError(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}

			// Restore the mid-arc checkpoint into a fresh fabric and finish
			// the run identically: final checkpoints must be byte-equal.
			res := build()
			if err := res.RestoreSnapshot(blob); err != nil {
				t.Fatalf("seed %d: restore: %v", seed, err)
			}
			if !res.ChipDead(victim) {
				t.Fatalf("seed %d: restored fabric lost the dead flag", seed)
			}
			soakFeed(res, spec, traffic.NewRNG(p2), 30)
			res.Run(6000)
			resFinal, err := res.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refFinal, resFinal) {
				t.Fatalf("seed %d: restored run diverged from uninterrupted run (%d vs %d bytes)",
					seed, len(refFinal), len(resFinal))
			}
			if ref.Fingerprint() != res.Fingerprint() {
				t.Fatalf("seed %d: fingerprints diverged", seed)
			}
		})
	}
}
