package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/ip"
	"repro/internal/traffic"
)

// offerPkt converts a traffic.Pkt descriptor into an on-wire packet and
// offers it at external e.
func offerPkt(f *cluster.Fabric, e int, p traffic.Pkt, id uint16) {
	pkt := ip.NewPacket(p.SrcIP, p.DstIP, 64, p.SizeBytes, id)
	f.OfferPacket(e, &pkt)
}

// TestCollectiveRingAllReduce drives the ring all-reduce schedule on
// every topology: each external rank streams to its successor. The
// per-trunk conservation identity must hold on every topology, packets
// must arrive at the successor only, and on multi-chip rings the
// pattern must actually cross trunks (it is the bisection probe).
func TestCollectiveRingAllReduce(t *testing.T) {
	for _, spec := range smallSpecs() {
		f := mustFabric(t, spec, nil)
		ext := spec.Externals()
		wl := traffic.MustBuild(traffic.Spec{Pattern: "allreduce", Ports: ext, Size: 256})
		srcs, err := wl.Sources()
		if err != nil {
			t.Fatal(err)
		}
		id := uint16(0)
		for round := 0; round < 40; round++ {
			for e := 0; e < ext; e++ {
				if f.InputBacklogWords(e) < 2048 {
					id++
					offerPkt(f, e, srcs[e].Next(), id)
				}
			}
			f.Run(200)
		}
		f.Run(4000)
		delivered := 0
		for e := 0; e < ext; e++ {
			out, err := f.DrainOutput(e)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			pred := (e - 1 + ext) % ext
			for _, p := range out {
				if got := int(uint32(p.Header.Src)>>24) - 10; got != pred {
					t.Fatalf("%s: ext %d received from rank %d, want predecessor %d", spec, e, got, pred)
				}
			}
			delivered += len(out)
		}
		if delivered == 0 {
			t.Fatalf("%s: all-reduce delivered nothing", spec)
		}
		if err := f.ConservationError(); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if spec.Kind == cluster.TopoRing && spec.NumChips() > 1 {
			snap := f.TelemetrySnapshot()
			if snap.BisectionWords == 0 {
				t.Fatalf("%s: ring all-reduce never crossed the bisection", spec)
			}
		}
	}
}

// TestCollectiveBroadcast drives the root-to-leaves broadcast on every
// topology: every non-root external receives the same stream, and the
// trunk conservation identity holds.
func TestCollectiveBroadcast(t *testing.T) {
	for _, spec := range smallSpecs() {
		f := mustFabric(t, spec, nil)
		ext := spec.Externals()
		root := 0
		wl := traffic.MustBuild(traffic.Spec{Pattern: "broadcast", Ports: ext, Size: 128})
		b, err := wl.Source(root)
		if err != nil {
			t.Fatal(err)
		}
		id := uint16(0)
		for round := 0; round < 60; round++ {
			if f.InputBacklogWords(root) < 2048 {
				id++
				offerPkt(f, root, b.Next(), id)
			}
			f.Run(200)
		}
		f.Run(4000)
		for e := 0; e < ext; e++ {
			out, err := f.DrainOutput(e)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			if e == root {
				if len(out) != 0 {
					t.Fatalf("%s: root received %d of its own broadcast packets", spec, len(out))
				}
				continue
			}
			if len(out) == 0 {
				t.Fatalf("%s: leaf %d never received the broadcast", spec, e)
			}
			for _, p := range out {
				if got := int(uint32(p.Header.Src)>>24) - 10; got != root {
					t.Fatalf("%s: leaf %d received from %d, want root", spec, e, got)
				}
			}
		}
		if err := f.ConservationError(); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}
