package cluster

import "testing"

// In-package healing-plane tests: computeRoutes properties (static
// agreement when healthy, loop-freedom under loss) and the egress
// duplicate-suppression window. The cluster_test suite covers the
// end-to-end behavior; these pin the route math itself.

func healSpecs() []Spec {
	return []Spec{
		Ring(2), Ring(3), Ring(4),
		Mesh(2, 2), Mesh(3, 1), Mesh(4, 4),
		FatTree(2), FatTree(4),
	}
}

func newHealFabric(t *testing.T, spec Spec) *Fabric {
	t.Helper()
	f, err := NewFabric(Config{Topology: spec, Heal: HealConfig{Enabled: true}})
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	return f
}

// TestComputeRoutesHealthyMatchesStatic pins the tie-break discipline:
// with nothing dead, the healed assignment must reproduce the static
// topology tables exactly on every spec kind, so arming -heal on a
// healthy fabric swaps zero tables.
func TestComputeRoutesHealthyMatchesStatic(t *testing.T) {
	for _, spec := range healSpecs() {
		f := newHealFabric(t, spec)
		ports, reach, isolated, comps := f.computeRoutes()
		if comps != 1 || len(isolated) != 0 {
			t.Errorf("%s: healthy topology reports comps=%d isolated=%v", spec, comps, isolated)
		}
		for a := range f.chips {
			for b := range f.chips {
				if !reach[a][b] {
					t.Errorf("%s: healthy c%d cannot reach c%d", spec, a, b)
				}
			}
		}
		for k := range f.chips {
			if want := f.staticPorts(k); !equalPorts(ports[k], want) {
				t.Errorf("%s: chip %d healed ports %v != static %v", spec, k, ports[k], want)
			}
		}
	}
}

// routeNextHop builds the (chip, port) -> neighbor map over live trunks.
func routeNextHop(f *Fabric) map[[2]int]int {
	next := make(map[[2]int]int)
	for ti := range f.trunks {
		tr := &f.trunks[ti]
		if tr.dead || f.chips[tr.A].dead || f.chips[tr.B].dead {
			continue
		}
		next[[2]int{tr.A, tr.APort}] = tr.B
		next[[2]int{tr.B, tr.BPort}] = tr.A
	}
	return next
}

// checkLoopFree walks every (live source, reachable external) pair's
// healed route hop by hop and fails on a loop, a dead-ended port, or a
// path longer than the chip count.
func checkLoopFree(t *testing.T, f *Fabric, spec Spec, label string) {
	t.Helper()
	ports, reach, _, _ := f.computeRoutes()
	next := routeNextHop(f)
	n := spec.NumChips()
	for e := 0; e < spec.Externals(); e++ {
		dc, _ := spec.ExtPort(e)
		if f.chips[dc].dead {
			continue
		}
		for src := 0; src < n; src++ {
			if f.chips[src].dead || !reach[src][dc] {
				continue
			}
			cur := src
			for hop := 0; cur != dc; hop++ {
				if hop > n {
					t.Fatalf("%s %s: route for ext %d loops from c%d", spec, label, e, src)
				}
				nx, ok := next[[2]int{cur, ports[cur][e]}]
				if !ok {
					t.Fatalf("%s %s: c%d routes ext %d out port %d with no live trunk",
						spec, label, cur, e, ports[cur][e])
				}
				cur = nx
			}
		}
	}
}

// TestComputeRoutesLoopFreeUnderLoss kills each single chip, then each
// single trunk, on every spec kind and checks that every surviving
// reachable route is loop-free and uses only live trunks.
func TestComputeRoutesLoopFreeUnderLoss(t *testing.T) {
	for _, spec := range healSpecs() {
		f := newHealFabric(t, spec)
		for victim := range f.chips {
			f.chips[victim].dead = true
			checkLoopFree(t, f, spec, "chip-loss")
			f.chips[victim].dead = false
		}
		for ti := range f.trunks {
			f.trunks[ti].dead = true
			checkLoopFree(t, f, spec, "trunk-loss")
			f.trunks[ti].dead = false
		}
	}
}

// TestPartitionRisk pins which specs self-report partition risk: the
// topologies where one chip loss disconnects the survivors.
func TestPartitionRisk(t *testing.T) {
	risky := []Spec{Ring(2), Mesh(3, 1), Mesh(1, 4)}
	for _, spec := range risky {
		if spec.PartitionRisk() == "" {
			t.Errorf("%s: want partition risk, got none", spec)
		}
	}
	safe := []Spec{Ring(3), Ring(4), Mesh(2, 2), Mesh(4, 4), FatTree(2), FatTree(4)}
	for _, spec := range safe {
		if risk := spec.PartitionRisk(); risk != "" {
			t.Errorf("%s: unexpected partition risk %q", spec, risk)
		}
	}
}

// TestEgressFlowDupWindow exercises the sliding dup-suppression bitmap:
// in-order, duplicate, reordered-within-window, window-slide reuse, and
// beyond-window cases.
func TestEgressFlowDupWindow(t *testing.T) {
	var fl egressFlow
	for seq := uint16(0); seq < 8; seq++ {
		if fl.dup(seq) {
			t.Fatalf("fresh seq %d flagged duplicate", seq)
		}
	}
	if !fl.dup(5) {
		t.Fatal("replayed seq 5 not flagged duplicate")
	}
	// Skip ahead within the window, then fill the reorder gap.
	if fl.dup(100) {
		t.Fatal("seq 100 flagged duplicate")
	}
	if fl.dup(50) {
		t.Fatal("reordered seq 50 flagged duplicate")
	}
	if !fl.dup(50) {
		t.Fatal("replayed seq 50 not flagged duplicate")
	}
	// Slide the window a full revolution: the old slot for 100 must be
	// cleared so the new sequence landing on the same bit is accepted.
	if fl.dup(100 + dupWindow) {
		t.Fatal("window slide: new seq on reused slot flagged duplicate")
	}
	// Too old to tell from a duplicate: suppressed.
	if !fl.dup(100) {
		t.Fatal("beyond-window stale seq not suppressed")
	}
}

// TestBackoffDelayBounded pins the retransmit delay envelope: monotone
// cap at shift 4 plus bounded jitter, never negative.
func TestBackoffDelayBounded(t *testing.T) {
	f := &Fabric{heal: HealConfig{Enabled: true, BackoffCycles: 256, Seed: 7}.withDefaults()}
	for attempt := 0; attempt < 12; attempt++ {
		for seq := int64(1); seq < 64; seq += 7 {
			d := f.backoffDelay(attempt, seq)
			shift := attempt
			if shift > 4 {
				shift = 4
			}
			base := int64(256) << shift
			if d < base || d >= base+64 {
				t.Fatalf("attempt %d seq %d: delay %d outside [%d,%d)", attempt, seq, d, base, base+64)
			}
		}
	}
}
