package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/traffic"
)

func mustCluster(t *testing.T) *cluster.TwoChip {
	t.Helper()
	c, err := cluster.NewTwoChip(router.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCrossChipPacket routes a packet from chip A's port 0 to chip B's
// port 3 (cluster numbering), across the trunk: two lookups, two crossbar
// traversals, two TTL decrements.
func TestCrossChipPacket(t *testing.T) {
	c := mustCluster(t)
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(3, 7), 64, 256, 42)
	c.OfferPacket(0, &pkt)
	delivered := func() bool {
		out := c.B.Stats().PktsOut[1] // cluster port 3 = chip B local 1
		return out >= 1
	}
	for i := 0; i < 600 && !delivered(); i++ {
		c.Run(100)
	}
	if !delivered() {
		t.Fatalf("cross-chip packet never delivered; A=%+v B=%+v", c.A.Stats(), c.B.Stats())
	}
	out, err := c.DrainOutput(3)
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%d err=%v", len(out), err)
	}
	if out[0].Header.TTL != 62 {
		t.Fatalf("TTL %d, want 62 (two chip hops)", out[0].Header.TTL)
	}
	for i, w := range pkt.Payload {
		if out[0].Payload[i] != w {
			t.Fatalf("payload word %d corrupted crossing the trunk", i)
		}
	}
	if c.TrunkWords[0] == 0 {
		t.Fatal("no words crossed the A->B trunk")
	}
}

// TestLocalPacketStaysOnChip: a same-chip packet never touches the trunk.
func TestLocalPacketStaysOnChip(t *testing.T) {
	c := mustCluster(t)
	pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(1, 7), 64, 128, 5)
	c.OfferPacket(0, &pkt)
	for i := 0; i < 200 && c.A.Stats().PktsOut[1] == 0; i++ {
		c.Run(100)
	}
	if c.A.Stats().PktsOut[1] != 1 {
		t.Fatalf("local packet not delivered; %+v", c.A.Stats())
	}
	if c.TrunkWords[0] != 0 || c.TrunkWords[1] != 0 {
		t.Fatalf("local packet crossed the trunk: %v", c.TrunkWords)
	}
}

// TestAllClusterPairs routes one packet between every external pair.
func TestAllClusterPairs(t *testing.T) {
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if src == dst {
				continue
			}
			c := mustCluster(t)
			pkt := ip.NewPacket(traffic.PortAddr(src, 1), traffic.PortAddr(dst, 9), 64, 128, 7)
			c.OfferPacket(src, &pkt)
			ok := false
			for i := 0; i < 600 && !ok; i++ {
				c.Run(100)
				out, err := c.DrainOutput(dst)
				if err != nil {
					t.Fatalf("%d->%d: %v", src, dst, err)
				}
				ok = len(out) == 1
			}
			if !ok {
				t.Fatalf("%d->%d never delivered", src, dst)
			}
		}
	}
}

// TestTrunkScaling (§8.5): with balanced remote traffic the two trunk
// links carry the two cross-chip streams per direction at full rate —
// composition preserves external bandwidth — while the second lookup and
// crossbar traversal roughly double the packet latency. That is exactly
// the glueless-composition trade the thesis sketches.
func TestTrunkScaling(t *testing.T) {
	measure := func(remote bool) float64 {
		c := mustCluster(t)
		id := uint16(0)
		feed := func() {
			for p := 0; p < 4; p++ {
				for c.InputBacklogWords(p) < 4096 {
					id++
					// Local pairs: 0<->1, 2<->3. Remote: 0->2, 1->3, 2->0, 3->1.
					dst := p ^ 1
					if remote {
						dst = (p + 2) % 4
					}
					pkt := ip.NewPacket(traffic.PortAddr(p, uint32(id)), traffic.PortAddr(dst, uint32(id)), 64, 1024, id)
					c.OfferPacket(p, &pkt)
				}
			}
		}
		for i := 0; i < 400; i++ {
			feed()
			c.Run(200)
		}
		return float64(c.ExternalWordsOut()*4*8) / (float64(c.Cycle()) / 250e6) / 1e9
	}
	local := measure(false)
	remote := measure(true)
	if local < 20 {
		t.Fatalf("local-only cluster throughput %.2f Gbps, want near single-chip peak", local)
	}
	if remote < local*0.85 {
		t.Fatalf("balanced remote traffic (%.2f Gbps) should sustain near-full rate vs local (%.2f): the 2-link trunk matches the 2 cross-chip streams", remote, local)
	}

	// Latency: one packet, local vs cross-chip.
	lat := func(dst int) int64 {
		c := mustCluster(t)
		pkt := ip.NewPacket(traffic.PortAddr(0, 1), traffic.PortAddr(dst, 7), 64, 1024, 9)
		c.OfferPacket(0, &pkt)
		chip, local := 0, 1
		if dst >= 2 {
			chip, local = 1, dst-2
		}
		for i := 0; i < 600; i++ {
			c.Run(50)
			r := c.A
			if chip == 1 {
				r = c.B
			}
			if r.Stats().PktsOut[local] >= 1 {
				return c.Cycle()
			}
		}
		t.Fatalf("latency probe to %d never delivered", dst)
		return 0
	}
	localLat := lat(1)
	remoteLat := lat(2)
	// The second traversal costs another lookup + crossbar + egress
	// pipeline (~150 cycles on top of the ~400-cycle cold-start single
	// traversal).
	if remoteLat < localLat+100 {
		t.Fatalf("cross-chip latency %d cycles should exceed local %d by a traversal (~150 cycles)", remoteLat, localLat)
	}
	t.Logf("throughput: local %.2f / remote %.2f Gbps; latency: local %d / cross-chip %d cycles",
		local, remote, localLat, remoteLat)
}
