package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/router"
	"repro/internal/traffic"
)

func mustFabric(t *testing.T, spec cluster.Spec, mut func(*cluster.Config)) *cluster.Fabric {
	t.Helper()
	cfg := cluster.Config{Topology: spec, Router: router.DefaultConfig()}
	if mut != nil {
		mut(&cfg)
	}
	f, err := cluster.NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// smallSpecs are the cheap instances behavior tests sweep (the 16-chip
// mesh is exercised by the conformance suite).
func smallSpecs() []cluster.Spec {
	return []cluster.Spec{cluster.Ring(2), cluster.Ring(3), cluster.Mesh(2, 2), cluster.FatTree(2)}
}

// TestFabricConfigRejects pins the template invariants: the fabric owns
// tables, event logs, and collectors, and the stream-rewriting extensions
// cannot cross trunks.
func TestFabricConfigRejects(t *testing.T) {
	muts := []func(*router.Config){
		func(c *router.Config) { c.Table = router.CanonicalTable() },
		func(c *router.Config) { c.Multicast = true },
		func(c *router.Config) { c.Crypto = true },
	}
	for i, mut := range muts {
		rc := router.DefaultConfig()
		mut(&rc)
		if _, err := cluster.NewFabric(cluster.Config{Topology: cluster.Ring(2), Router: rc}); err == nil {
			t.Errorf("case %d: want config rejection", i)
		}
	}
	if _, err := cluster.NewFabric(cluster.Config{Topology: cluster.Ring(1)}); err == nil {
		t.Error("invalid spec accepted")
	}
}

// TestFabricAllPairs routes one packet between every external pair of
// every small topology and checks payload integrity plus trunk
// conservation — the N-chip generalization of TestAllClusterPairs.
func TestFabricAllPairs(t *testing.T) {
	for _, spec := range smallSpecs() {
		f := mustFabric(t, spec, nil)
		next := uint16(0)
		for src := 0; src < spec.Externals(); src++ {
			for dst := 0; dst < spec.Externals(); dst++ {
				if src == dst {
					continue
				}
				next++
				pkt := ip.NewPacket(traffic.PortAddr(src, uint32(next)),
					traffic.PortAddr(dst, uint32(next)), 64, 128, next)
				f.OfferPacket(src, &pkt)
				var got []ip.Packet
				for i := 0; i < 600 && len(got) == 0; i++ {
					f.Run(100)
					out, err := f.DrainOutput(dst)
					if err != nil {
						t.Fatalf("%s: %d->%d: %v", spec, src, dst, err)
					}
					got = out
				}
				if len(got) != 1 {
					t.Fatalf("%s: %d->%d never delivered", spec, src, dst)
				}
				if got[0].Header.Dst != traffic.PortAddr(dst, uint32(next)) {
					t.Fatalf("%s: %d->%d delivered wrong packet", spec, src, dst)
				}
				for i, w := range pkt.Payload {
					if got[0].Payload[i] != w {
						t.Fatalf("%s: %d->%d payload word %d corrupted", spec, src, dst, i)
					}
				}
			}
		}
		if err := f.ConservationError(); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

// TestFabricLocalTrafficAvoidsTrunks: a same-chip packet on every
// topology never crosses a trunk.
func TestFabricLocalTrafficAvoidsTrunks(t *testing.T) {
	for _, spec := range smallSpecs() {
		chip0exts := []int{}
		for e := 0; e < spec.Externals(); e++ {
			if c, _ := spec.ExtPort(e); c == 0 {
				chip0exts = append(chip0exts, e)
			}
		}
		if len(chip0exts) < 2 {
			continue
		}
		f := mustFabric(t, spec, nil)
		src, dst := chip0exts[0], chip0exts[1]
		pkt := ip.NewPacket(traffic.PortAddr(src, 1), traffic.PortAddr(dst, 7), 64, 128, 5)
		f.OfferPacket(src, &pkt)
		ok := false
		for i := 0; i < 300 && !ok; i++ {
			f.Run(100)
			out, err := f.DrainOutput(dst)
			if err != nil {
				t.Fatal(err)
			}
			ok = len(out) == 1
		}
		if !ok {
			t.Fatalf("%s: local packet never delivered", spec)
		}
		snap := f.TelemetrySnapshot()
		for _, tr := range snap.Trunks {
			for d := 0; d < 2; d++ {
				if tr.Dir[d].Drained != 0 {
					t.Fatalf("%s: local packet crossed trunk %d", spec, tr.Trunk)
				}
			}
		}
	}
}

// TestFabricKillRestore exercises the lifecycle surface directly: kill a
// chip, watch offered traffic drop at its externals and trunk words die
// at its pins, re-admit it, and see service resume. Conservation holds
// throughout.
func TestFabricKillRestore(t *testing.T) {
	spec := cluster.Ring(3)
	f := mustFabric(t, spec, nil)
	victim := 1
	vExt, _ := spec.ExternalOf(victim, 0)

	// Cross-fabric traffic through and to the victim.
	feed := func(n int) {
		id := uint16(0)
		for i := 0; i < n; i++ {
			for src := 0; src < spec.Externals(); src++ {
				if f.InputBacklogWords(src) < 2048 && !f.ChipDead(srcChip(spec, src)) {
					id++
					dst := (src + 2) % spec.Externals()
					pkt := ip.NewPacket(traffic.PortAddr(src, uint32(id)),
						traffic.PortAddr(dst, uint32(id)), 64, 256, id)
					f.OfferPacket(src, &pkt)
				}
			}
			f.Run(200)
		}
	}
	feed(30)
	if err := f.KillChip(victim); err != nil {
		t.Fatal(err)
	}
	if err := f.KillChip(victim); err == nil {
		t.Fatal("double kill accepted")
	}
	if !f.ChipDead(victim) {
		t.Fatal("victim not dead")
	}
	pkt := ip.NewPacket(traffic.PortAddr(vExt, 1), traffic.PortAddr(0, 1), 64, 128, 9)
	f.OfferPacket(vExt, &pkt)
	if f.ExtDropped(vExt) == 0 {
		t.Fatal("offer at dead chip's external not counted dropped")
	}
	feed(30)
	if err := f.ConservationError(); err != nil {
		t.Fatal(err)
	}
	if err := f.RestoreChip(victim); err != nil {
		t.Fatal(err)
	}
	if f.ChipDead(victim) || f.ChipEpoch(victim) != 1 {
		t.Fatalf("restore left dead=%v epoch=%d", f.ChipDead(victim), f.ChipEpoch(victim))
	}
	if err := f.RestoreChip(victim); err == nil {
		t.Fatal("restore of live chip accepted")
	}
	// Replacement chip serves its external again.
	before := f.ExternalPktsOut()
	pkt2 := ip.NewPacket(traffic.PortAddr(0, 2), traffic.PortAddr(vExt, 2), 64, 128, 11)
	f.OfferPacket(0, &pkt2)
	ok := false
	for i := 0; i < 600 && !ok; i++ {
		f.Run(100)
		out, err := f.DrainOutput(vExt)
		if err != nil {
			t.Fatal(err)
		}
		ok = len(out) >= 1
	}
	if !ok {
		t.Fatalf("replacement chip never delivered (pktsOut %d -> %d)", before, f.ExternalPktsOut())
	}
	if err := f.ConservationError(); err != nil {
		t.Fatal(err)
	}
	ev := f.Events().Events
	if len(ev) != 2 || ev[0].Kind.String() != "chip-kill" || ev[1].Kind.String() != "chip-restore" {
		t.Fatalf("fabric event log %v", ev)
	}
}

func srcChip(spec cluster.Spec, ext int) int {
	c, _ := spec.ExtPort(ext)
	return c
}

// TestFabricScheduledControls drives the same lifecycle through the
// fault grammar: killchip@/restorechip@ fire exactly at their cycles for
// any Run partitioning.
func TestFabricScheduledControls(t *testing.T) {
	sched := fault.MustParse("killchip@1000:c1;restorechip@3000:c1")
	run := func(chunks []int64) *cluster.Fabric {
		f := mustFabric(t, cluster.Ring(3), nil)
		f.ApplySchedule(sched)
		for _, n := range chunks {
			f.Run(n)
		}
		return f
	}
	a := run([]int64{5000})
	b := run([]int64{999, 1, 1, 999, 1500, 1500})
	for _, f := range []*cluster.Fabric{a, b} {
		ev := f.Events().Events
		if len(ev) != 2 {
			t.Fatalf("events %v", ev)
		}
		if ev[0].Cycle != 1000 || ev[0].Kind.String() != "chip-kill" ||
			ev[1].Cycle != 3000 || ev[1].Kind.String() != "chip-restore" {
			t.Fatalf("control firing off-schedule: %v", ev)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("control firing depends on Run partitioning")
	}
}
