package cluster

import (
	"fmt"
	"hash/fnv"

	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config configures an N-chip fabric.
type Config struct {
	// Topology declares the chip count and wiring; see Spec.
	Topology Spec
	// Router is the per-chip configuration template. The fabric owns the
	// fields that cannot be shared across chips: Table is compiled per
	// chip from the topology (must be nil), and Events/Metrics templates
	// must be nil too — set Config.Metrics to arm per-chip collectors and
	// read chip planes through ChipEvents/ChipTelemetry. Multicast and
	// Crypto are rejected: both would rewrite the inter-chip word streams
	// (group fanout, payload ciphering) that trunk neighbors parse as
	// plain IP packets.
	Router router.Config
	// Metrics arms a telemetry collector on every chip.
	Metrics bool
	// Faults holds optional per-chip fault schedules, applied to chip k's
	// original incarnation (a replacement chip built by RestoreChip starts
	// fault-free — the schedule's cycle origin died with the old chip).
	// Chip-level controls (killchip@/restorechip@/killtrunk@/restoretrunk@)
	// are fabric-wide; feed them through ApplySchedule instead.
	Faults map[int]*fault.Schedule
	// Heal arms the fault-healing plane: adaptive rerouting around dead
	// chips and trunks, trunk-level retransmission, and flow-tagged
	// duplicate suppression at egress. See HealConfig.
	Heal HealConfig
}

// chipSlot is one chip position: the live router instance plus the
// fabric-level lifecycle state that survives chip replacement.
type chipSlot struct {
	r      *router.Router
	events *trace.EventLog
	dead   bool
	// epoch counts instances in this slot (0 = original); bornAt is the
	// fabric cycle the current instance was constructed at.
	epoch  int
	bornAt int64
	// wordsIn/wordsOut are the end-to-end ledger's per-instance flow
	// counts: words pushed into this instance's pins (external offers,
	// trunk deliveries, ARQ re-drives) and words drained off them toward
	// trunks. Reset with the instance on RestoreChip.
	wordsIn, wordsOut int64
}

// trunkDir is one direction of one trunk: the packet framer between the
// source chip's egress pins and the destination chip's ingress pins,
// plus the direction's conservation counters. The framer models the
// store-and-forward SERDES framing of a real chip-to-chip link: it holds
// words until a whole IP packet is buffered and delivers packets
// atomically, so a chip killed mid-stream leaves its neighbor at a clean
// packet boundary (the partial packet is dropped and counted) instead of
// desynchronizing its ingress parser.
type trunkDir struct {
	buf []uint32
	// drained counts words taken off the source pins; delivered words
	// pushed onto the destination pins; dropped words discarded (dead
	// endpoint, or a frame that failed to parse); retrans words handed to
	// the ARQ plane's custody. The direction conserves words:
	// drained == delivered + dropped + retrans + len(buf), checked by
	// ConservationError.
	drained, delivered, dropped, retrans int64
	// frames counts whole frames that left the framer (delivered or to
	// ARQ custody); acked counts frames confirmed onto destination pins
	// (direct delivery, or an ARQ re-drive after a detour).
	frames, acked int64
}

// trunkState is one trunk's two directions: dir[0] carries A->B,
// dir[1] B->A. A dead trunk carries nothing in either direction until
// RestoreTrunk re-lights it.
type trunkState struct {
	Trunk
	dead bool
	dir  [2]trunkDir
}

// sliceCycles is the lockstep granularity: every chip advances this many
// cycles, then the fabric bridges all trunk pins — the small elastic
// buffer a real inter-chip link has. Scheduled chip controls fire
// exactly at their cycle (Run caps a slice short when a control is due),
// so a run is deterministic for any Run call pattern.
const sliceCycles = 64

// Fabric is an N-chip switch: Topology-many 4-port routers wired by
// trunks, stepped in lockstep slices, presenting Externals()-many
// external ports with fabric-wide addressing (external port e owns
// (10+e).0.0.0/8). It carries the single-router operability surface
// across the chip boundary: whole-chip kill and re-admission (scheduled
// through the fault grammar), per-trunk accounting, and one checkpoint
// blob for all N chips.
type Fabric struct {
	spec   Spec
	cfg    Config
	chips  []chipSlot
	trunks []trunkState
	cycle  int64

	// Scheduled chip controls, sorted by start cycle; nextCtl is the
	// firing cursor (controls fire in order, so one index serializes the
	// fired-set in checkpoints).
	controls []fault.Event
	nextCtl  int

	// events is the fabric-level log: chip kills and re-admissions, with
	// the chip index in the Port field.
	events trace.EventLog

	// extDropped counts words offered at an external port while its chip
	// was dead — the fabric-level analog of a dead port's line drops.
	extDropped []int64

	// Healing plane (see heal.go). The ledger counters below the config
	// are maintained whether or not healing is enabled, so DeliveryError
	// audits plain runs too; rerouting, ARQ, and flow tagging engage only
	// when heal.Enabled.
	heal      HealConfig
	healEpoch int64
	reroutes  int64
	// routePorts caches each chip's installed next-hop assignment (the
	// change detector for table swaps); reach is the live-chip
	// reachability matrix of the current heal epoch.
	routePorts [][]int
	reach      [][]bool
	partition  *PartitionError

	// ARQ: frames in retransmit custody, the per-(trunk,dir) pending
	// window, and the monotone frame sequence.
	arq           []arqFrame
	arqPend       map[[2]int]int
	arqSeq        int64
	retransFrames int64
	retransWords  int64

	// End-to-end word ledger.
	injected      int64
	retiredExtOut int64 // external output words of retired (killed) chip instances
	dupWords      int64
	droppedCause  [numDropCauses]int64

	// Flow tagging: per-flow ingress sequence and egress dup windows.
	flowSeq     map[uint32]uint32
	egressFlows map[uint32]*egressFlow
}

// NewFabric validates the spec and builds the N chips, each with its
// topology-compiled route table.
func NewFabric(cfg Config) (*Fabric, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	rc := cfg.Router
	if rc.ClockHz == 0 {
		// Same convention as router.New: an unset template selects the
		// paper's configuration wholesale.
		rc = router.DefaultConfig()
		cfg.Router = rc
	}
	switch {
	case rc.Table != nil:
		return nil, fmt.Errorf("cluster: fabric compiles per-chip tables; Config.Router.Table must be nil")
	case rc.Events != nil:
		return nil, fmt.Errorf("cluster: an event log cannot be shared across chips; leave Config.Router.Events nil and use ChipEvents")
	case rc.Metrics != nil:
		return nil, fmt.Errorf("cluster: a collector cannot be shared across chips; leave Config.Router.Metrics nil and set Config.Metrics")
	case rc.Multicast:
		return nil, fmt.Errorf("cluster: fabric does not support Multicast (group fanout would corrupt trunk streams)")
	case rc.Crypto:
		return nil, fmt.Errorf("cluster: fabric does not support Crypto (ciphered payloads would corrupt trunk streams)")
	}
	f := &Fabric{
		spec:        cfg.Topology,
		cfg:         cfg,
		chips:       make([]chipSlot, cfg.Topology.NumChips()),
		extDropped:  make([]int64, cfg.Topology.Externals()),
		heal:        cfg.Heal.withDefaults(),
		arqPend:     make(map[[2]int]int),
		flowSeq:     make(map[uint32]uint32),
		egressFlows: make(map[uint32]*egressFlow),
	}
	for _, t := range cfg.Topology.Trunks() {
		f.trunks = append(f.trunks, trunkState{Trunk: t})
	}
	f.routePorts = make([][]int, len(f.chips))
	for k := range f.chips {
		if err := f.buildChip(k, 0); err != nil {
			return nil, err
		}
		f.routePorts[k] = f.staticPorts(k)
	}
	return f, nil
}

// buildChip constructs the chip for slot k (epoch 0 = original, else a
// replacement). Construction is a pure function of the fabric config, so
// a checkpoint restore rebuilds replacements identically.
func (f *Fabric) buildChip(k, epoch int) error {
	rc := f.cfg.Router
	rc.Table = f.spec.chipTable(k)
	ev := &trace.EventLog{}
	rc.Events = ev
	if f.cfg.Metrics {
		rc.Metrics = telemetry.New(telemetry.Config{})
	}
	r, err := router.New(rc)
	if err != nil {
		return fmt.Errorf("cluster: chip %d: %w", k, err)
	}
	if sched := f.cfg.Faults[k]; sched != nil && epoch == 0 {
		r.Chip.InstallFaults(fault.NewInjector(sched, r.Chip.NumTiles()))
		for _, ctl := range sched.Controls() {
			switch ctl.Kind {
			case fault.KindRestore:
				r.ScheduleRestore(ctl.Start, ctl.Tile)
			case fault.KindReprobe:
				r.ScheduleReprobe(ctl.Start, ctl.Tile)
			}
		}
	}
	f.chips[k] = chipSlot{r: r, events: ev, epoch: epoch, bornAt: f.cycle}
	return nil
}

// Spec returns the fabric's topology.
func (f *Fabric) Spec() Spec { return f.spec }

// Cycle returns the fabric cycle count (every live chip has stepped this
// many cycles since its bornAt).
func (f *Fabric) Cycle() int64 { return f.cycle }

// Chip returns slot k's current router instance (tests and telemetry;
// the instance changes when RestoreChip replaces a killed chip).
func (f *Fabric) Chip(k int) *router.Router { return f.chips[k].r }

// ChipDead reports whether slot k is currently killed.
func (f *Fabric) ChipDead(k int) bool { return f.chips[k].dead }

// ChipEpoch returns slot k's instance count (0 = original chip).
func (f *Fabric) ChipEpoch(k int) int { return f.chips[k].epoch }

// Events returns the fabric-level event log (chip kills and restores;
// the Port field carries the chip index).
func (f *Fabric) Events() *trace.EventLog { return &f.events }

// ChipEvents returns chip k's recovery event log (current instance).
func (f *Fabric) ChipEvents(k int) *trace.EventLog { return f.chips[k].events }

// ApplySchedule registers the schedule's fabric-level chip controls
// (killchip@/restorechip@). Call once, before Run; the controls fire
// exactly at their start cycles.
func (f *Fabric) ApplySchedule(s *fault.Schedule) {
	f.controls = append(f.controls, s.ChipControls()...)
}

// OfferPacket enqueues a packet at fabric external port e. Packets
// offered while e's chip is dead are dropped and counted (ExtDropped),
// exactly as a dead single-chip port drops line words. With healing
// enabled, packets to a dead or partitioned-away destination are
// refused at ingress with a counted cause, and admitted packets are
// stamped with their flow's sequence number for egress duplicate
// suppression (the caller's packet is not mutated).
func (f *Fabric) OfferPacket(e int, pkt *ip.Packet) {
	chip, local := f.spec.ExtPort(e)
	n := int64(pkt.LenWords())
	f.injected += n
	if f.chips[chip].dead {
		f.extDropped[e] += n
		f.droppedCause[dropDeadPort] += n
		return
	}
	if f.healOn() {
		if dstExt := f.extOfAddr(uint32(pkt.Header.Dst)); dstExt >= 0 {
			dc, _ := f.spec.ExtPort(dstExt)
			switch {
			case f.chips[dc].dead:
				f.droppedCause[dropDestDead] += n
				return
			case !f.reachable(chip, dc):
				f.droppedCause[dropUnreachable] += n
				return
			}
			key := flowKey(pkt.Header.Src, dstExt)
			stamped := *pkt
			stamped.Header.ID = uint16(f.flowSeq[key])
			f.flowSeq[key]++
			pkt = &stamped
		}
	}
	f.chips[chip].wordsIn += n
	f.chips[chip].r.OfferPacket(local, pkt)
}

// InputBacklogWords reports external port e's line buffer depth.
func (f *Fabric) InputBacklogWords(e int) int {
	chip, local := f.spec.ExtPort(e)
	return f.chips[chip].r.InputBacklogWords(local)
}

// DrainOutput parses packets delivered at fabric external port e. With
// healing enabled, duplicates (a frame delivered directly and again via
// retransmission) are suppressed through each flow's sliding window and
// counted, so callers observe each injected packet at most once.
func (f *Fabric) DrainOutput(e int) ([]ip.Packet, error) {
	chip, local := f.spec.ExtPort(e)
	pkts, err := f.chips[chip].r.DrainOutput(local)
	if !f.healOn() || len(pkts) == 0 {
		return pkts, err
	}
	kept := pkts[:0]
	for _, p := range pkts {
		key := flowKey(p.Header.Src, e)
		fl := f.egressFlows[key]
		if fl == nil {
			fl = &egressFlow{}
			f.egressFlows[key] = fl
		}
		if fl.dup(p.Header.ID) {
			f.dupWords += int64(p.LenWords())
			continue
		}
		kept = append(kept, p)
	}
	return kept, err
}

// OutputWords returns the words ever emitted at external port e by the
// chip's current instance.
func (f *Fabric) OutputWords(e int) int64 {
	chip, local := f.spec.ExtPort(e)
	return f.chips[chip].r.OutputWords(local)
}

// ExtDropped returns the words dropped at external port e while its chip
// was dead.
func (f *Fabric) ExtDropped(e int) int64 { return f.extDropped[e] }

// Run advances the fabric n cycles: all live chips step in lockstep
// slices, trunk pins are bridged at every slice boundary, and scheduled
// chip controls fire exactly at their start cycle (a slice is cut short
// when a control is due, so the trace is independent of how Run calls
// partition the cycles).
func (f *Fabric) Run(n int64) {
	end := f.cycle + n
	for f.cycle < end {
		f.fireControls()
		step := int64(sliceCycles)
		if end-f.cycle < step {
			step = end - f.cycle
		}
		if next := f.nextControlCycle(); next >= 0 && next-f.cycle < step {
			step = next - f.cycle
			if step == 0 {
				// A control at the current cycle already fired above.
				continue
			}
		}
		for k := range f.chips {
			if !f.chips[k].dead {
				f.chips[k].r.Run(step)
			}
		}
		f.cycle += step
		f.bridge()
		f.processARQ()
	}
	f.fireControls()
}

// nextControlCycle returns the next unfired control's start cycle, or -1.
func (f *Fabric) nextControlCycle() int64 {
	if f.nextCtl >= len(f.controls) {
		return -1
	}
	return f.controls[f.nextCtl].Start
}

// fireControls applies every scheduled control due at or before the
// current cycle. Rejected controls (killing a dead chip, restoring a
// live one) are skipped silently so a fuzzed schedule cannot wedge a run.
func (f *Fabric) fireControls() {
	for f.nextCtl < len(f.controls) && f.controls[f.nextCtl].Start <= f.cycle {
		ctl := f.controls[f.nextCtl]
		f.nextCtl++
		if ctl.Tile >= len(f.chips) {
			continue
		}
		switch ctl.Kind {
		case fault.KindKillChip:
			if !f.chips[ctl.Tile].dead {
				f.KillChip(ctl.Tile)
			}
		case fault.KindRestoreChip:
			if f.chips[ctl.Tile].dead {
				if err := f.RestoreChip(ctl.Tile); err != nil {
					panic(err) // construction from a validated config cannot fail
				}
			}
		case fault.KindKillTrunk:
			if f.findTrunk(ctl.Tile, ctl.Chip2, false) >= 0 {
				f.KillTrunk(ctl.Tile, ctl.Chip2)
			}
		case fault.KindRestoreTrunk:
			if f.findTrunk(ctl.Tile, ctl.Chip2, true) >= 0 {
				f.RestoreTrunk(ctl.Tile, ctl.Chip2)
			}
		}
	}
}

// KillChip removes chip k from the fabric: it stops stepping, its trunk
// links go silent, and its external ports drop offered traffic until
// RestoreChip. The chip's in-flight words are settled against the
// ledger, each under a counted cause: complete frames it had already
// committed to a live trunk still deliver (the link's store-and-forward
// buffer survives the card pull) or — with healing — move to retransmit
// custody; everything else (partial frames, words resident inside the
// chip) is dropped and counted as chip-loss. Direct calls between Run
// calls are honored but are not replayed by checkpoints — schedule
// killchip@ controls in runs that will be checkpointed.
func (f *Fabric) KillChip(k int) error {
	if k < 0 || k >= len(f.chips) {
		return fmt.Errorf("cluster: no chip %d", k)
	}
	if f.chips[k].dead {
		return fmt.Errorf("cluster: chip %d already dead", k)
	}
	f.chips[k].dead = true
	for ti := range f.trunks {
		t := &f.trunks[ti]
		for d := 0; d < 2; d++ {
			src, srcPort, dst, _ := t.endpoints(d)
			if src != k && dst != k {
				continue
			}
			td := &t.dir[d]
			if src == k {
				// Words the dead chip had already pushed to its egress
				// pins join the framer; complete frames still deliver to a
				// live neighbor over a live trunk, the partial tail dies
				// with its source.
				words, _ := f.chips[k].r.OutputSink(srcPort).Drain()
				td.drained += int64(len(words))
				f.chips[k].wordsOut += int64(len(words))
				for _, w := range words {
					td.buf = append(td.buf, uint32(w))
				}
				if !t.dead && !f.chips[dst].dead {
					f.pumpDir(t, d)
				}
				n := int64(len(td.buf))
				td.dropped += n
				f.droppedCause[dropChipLoss] += n
				td.buf = td.buf[:0]
			} else {
				// Frames held in the framer toward the dead chip: with
				// healing, complete frames move to retransmit custody and
				// re-deliver over the healed path (the partial tail stays
				// held until its source completes it); without healing
				// they drop, counted — not silently zeroed.
				if f.healOn() {
					f.framesToARQ(ti, t, d)
				} else {
					n := int64(len(td.buf))
					td.dropped += n
					f.droppedCause[dropChipLoss] += n
					td.buf = td.buf[:0]
				}
			}
		}
	}
	// Retire the instance against the ledger: its external deliveries
	// stand; words still inside it are lost with the chip.
	ext := f.chipExtOut(k)
	f.retiredExtOut += ext
	if res := f.chips[k].wordsIn - f.chips[k].wordsOut - ext; res > 0 {
		f.droppedCause[dropChipLoss] += res
	}
	f.events.Add(f.cycle, k, trace.EvChipKill)
	f.reheal()
	return nil
}

// RestoreChip re-admits a killed chip with a freshly constructed
// replacement (same table, same config, epoch+1). The replacement's
// counters, caches, and recovery state start cold, exactly like a field
// card swap; in-flight state of the old instance is already accounted as
// dropped.
func (f *Fabric) RestoreChip(k int) error {
	if k < 0 || k >= len(f.chips) {
		return fmt.Errorf("cluster: no chip %d", k)
	}
	if !f.chips[k].dead {
		return fmt.Errorf("cluster: chip %d is not dead", k)
	}
	if err := f.buildChip(k, f.chips[k].epoch+1); err != nil {
		return err
	}
	// The replacement carries the static table; the heal epoch below
	// re-derives and installs the healed one if the topology still has
	// other failures.
	f.routePorts[k] = f.staticPorts(k)
	f.events.Add(f.cycle, k, trace.EvChipRestore)
	f.reheal()
	return nil
}

// endpoints resolves direction d of a trunk: d=0 flows A->B, d=1 B->A.
func (t *trunkState) endpoints(d int) (src, srcPort, dst, dstPort int) {
	if d == 0 {
		return t.A, t.APort, t.B, t.BPort
	}
	return t.B, t.BPort, t.A, t.APort
}

// bridge moves trunk words after a slice: each direction drains the
// source chip's egress pins into the framer and pushes every completed
// packet into the destination chip's ingress pins.
func (f *Fabric) bridge() {
	for ti := range f.trunks {
		t := &f.trunks[ti]
		for d := 0; d < 2; d++ {
			f.bridgeDir(ti, t, d)
		}
	}
}

func (f *Fabric) bridgeDir(ti int, t *trunkState, d int) {
	src, srcPort, dst, _ := t.endpoints(d)
	td := &t.dir[d]
	if f.chips[src].dead {
		return // silenced at KillChip; nothing accumulates
	}
	words, _ := f.chips[src].r.OutputSink(srcPort).Drain()
	td.drained += int64(len(words))
	f.chips[src].wordsOut += int64(len(words))
	for _, w := range words {
		td.buf = append(td.buf, uint32(w))
	}
	if t.dead || f.chips[dst].dead {
		// A dark link or dead far end: with healing, complete frames move
		// to retransmit custody and the partial tail stays held; without
		// it, everything stranded drops, counted.
		if f.healOn() {
			f.framesToARQ(ti, t, d)
			return
		}
		n := int64(len(td.buf))
		td.dropped += n
		f.droppedCause[dropTrunkDead] += n
		td.buf = td.buf[:0]
		return
	}
	f.pumpDir(t, d)
}

// pumpDir pushes every completed frame in direction d's framer into the
// destination chip's ingress pins. Both endpoints and the trunk must be
// live.
func (f *Fabric) pumpDir(t *trunkState, d int) {
	_, _, dst, dstPort := t.endpoints(d)
	td := &t.dir[d]
	in := f.chips[dst].r.InputPins(dstPort)
	for {
		if len(td.buf) < ip.HeaderWords {
			return
		}
		h, err := ip.Unmarshal(td.buf)
		if err != nil {
			// A frame that does not parse cannot happen on a healthy
			// trunk; resynchronize by sliding one word, as a real framer
			// hunting for a start-of-packet would.
			td.buf = td.buf[1:]
			td.dropped++
			f.droppedCause[dropFrameResync]++
			continue
		}
		n := (int(h.TotalLen) + 3) / 4
		if n < ip.HeaderWords {
			n = ip.HeaderWords
		}
		if len(td.buf) < n {
			return
		}
		for _, w := range td.buf[:n] {
			in.Push(raw.Word(w))
		}
		td.delivered += int64(n)
		td.frames++
		td.acked++
		f.chips[dst].wordsIn += int64(n)
		td.buf = append(td.buf[:0], td.buf[n:]...)
	}
}

// TrunkCounters returns trunk ti's (drained, delivered, dropped,
// retrans, held) word counts for direction d (0 = A->B, 1 = B->A).
func (f *Fabric) TrunkCounters(ti, d int) (drained, delivered, dropped, retrans, held int64) {
	td := &f.trunks[ti].dir[d]
	return td.drained, td.delivered, td.dropped, td.retrans, int64(len(td.buf))
}

// ConservationError checks every trunk direction's word-conservation
// identity (drained == delivered + dropped + retrans + held) and returns
// the first violation, or nil. The identity holds at any instant, faults
// and healing included.
func (f *Fabric) ConservationError() error {
	for ti := range f.trunks {
		t := &f.trunks[ti]
		for d := 0; d < 2; d++ {
			td := &t.dir[d]
			if td.drained != td.delivered+td.dropped+td.retrans+int64(len(td.buf)) {
				return fmt.Errorf("cluster: trunk %s dir %d leaks words: drained %d != delivered %d + dropped %d + retrans %d + held %d",
					t.Trunk, d, td.drained, td.delivered, td.dropped, td.retrans, len(td.buf))
			}
		}
	}
	return nil
}

// ExternalPktsOut sums packets delivered on all external ports (current
// chip instances).
func (f *Fabric) ExternalPktsOut() int64 {
	var n int64
	for e := 0; e < f.spec.Externals(); e++ {
		chip, local := f.spec.ExtPort(e)
		n += f.chips[chip].r.Stats().PktsOut[local]
	}
	return n
}

// ExternalWordsOut sums words delivered on all external ports.
func (f *Fabric) ExternalWordsOut() int64 {
	var n int64
	for e := 0; e < f.spec.Externals(); e++ {
		n += f.OutputWords(e)
	}
	return n
}

// SetWorkers reshards every chip's stepping across n host goroutines
// (applies to live chips and future replacements). Cycle-exact at any
// count, like the single-chip knob.
func (f *Fabric) SetWorkers(n int) {
	f.cfg.Router.Workers = n
	for k := range f.chips {
		f.chips[k].r.Chip.SetWorkers(n)
	}
}

// Fingerprint digests the fabric's replay-derived state: fabric cycle,
// every chip's counters and lifecycle state, every trunk direction's
// counters and held frame bytes, and the external drop counts. Two runs
// of the same workload agree on every Fingerprint regardless of worker
// count or engine; the conformance suite additionally compares the
// delivered output words, which the fingerprint's counters only size.
func (f *Fabric) Fingerprint() uint64 {
	h := fnv.New64a()
	w64 := func(v int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(v) >> (8 * i))
		}
		h.Write(b[:])
	}
	w64(f.cycle)
	w64(int64(f.nextCtl))
	for k := range f.chips {
		s := &f.chips[k]
		flags := int64(s.epoch) << 1
		if s.dead {
			flags |= 1
		}
		w64(flags)
		w64(s.bornAt)
		w64(s.r.Chip.Cycle())
		st := s.r.Stats()
		for p := 0; p < 4; p++ {
			w64(st.Accepted[p])
			w64(st.Dropped[p])
			w64(st.PktsIn[p])
			w64(st.PktsOut[p])
			w64(st.FragsSent[p])
			w64(st.Lookups[p])
			w64(st.AbortDropped[p])
			w64(st.Underruns[p])
			w64(s.r.OutputWords(p))
		}
		w64(st.FabricLost)
		w64(int64(s.r.DeadPort()))
	}
	for ti := range f.trunks {
		t := &f.trunks[ti]
		if t.dead {
			w64(1)
		} else {
			w64(0)
		}
		for d := 0; d < 2; d++ {
			td := &t.dir[d]
			w64(td.drained)
			w64(td.delivered)
			w64(td.dropped)
			w64(td.retrans)
			w64(td.frames)
			w64(td.acked)
			w64(int64(len(td.buf)))
			for _, w := range td.buf {
				w64(int64(w))
			}
		}
	}
	for _, v := range f.extDropped {
		w64(v)
	}
	// Healing-plane state: ledger counters, ARQ custody, flow windows.
	w64(f.injected)
	w64(f.retiredExtOut)
	w64(f.dupWords)
	for c := 0; c < numDropCauses; c++ {
		w64(f.droppedCause[c])
	}
	w64(f.healEpoch)
	w64(f.reroutes)
	w64(f.retransFrames)
	w64(f.retransWords)
	w64(f.arqSeq)
	w64(int64(len(f.arq)))
	for _, e := range f.arq {
		w64(int64(e.trunk))
		w64(int64(e.dir))
		w64(int64(e.src))
		w64(int64(e.port))
		w64(int64(e.dstExt))
		w64(e.seq)
		w64(int64(e.attempts))
		w64(e.nextTry)
		w64(int64(len(e.words)))
		for _, w := range e.words {
			w64(int64(w))
		}
	}
	for _, k := range sortedFlowKeys(f.flowSeq) {
		w64(int64(k))
		w64(int64(f.flowSeq[k]))
	}
	for _, k := range sortedFlowKeys(f.egressFlows) {
		fl := f.egressFlows[k]
		w64(int64(k))
		flags := int64(fl.max) << 1
		if fl.init {
			flags |= 1
		}
		w64(flags)
		for _, b := range fl.bits {
			w64(int64(b))
		}
	}
	return h.Sum64()
}

// TelemetrySnapshot assembles the fabric-plane export: per-trunk
// per-direction accounting with utilization gauges, the bisection
// aggregate, dead chips, and the fabric event log. Chip-level planes are
// exported separately via ChipTelemetry.
func (f *Fabric) TelemetrySnapshot() telemetry.FabricSnapshot {
	s := telemetry.FabricSnapshot{
		Schema:    telemetry.SchemaVersion,
		Cycle:     f.cycle,
		Topology:  f.spec.String(),
		Chips:     len(f.chips),
		Externals: f.spec.Externals(),
	}
	for k := range f.chips {
		if f.chips[k].dead {
			s.DeadChips = append(s.DeadChips, k)
		}
	}
	for ti := range f.trunks {
		if f.trunks[ti].dead {
			s.DeadTrunks = append(s.DeadTrunks, ti)
		}
	}
	elapsed := f.cycle
	util := func(words int64) float64 {
		if elapsed <= 0 {
			return 0
		}
		return float64(words) / float64(elapsed)
	}
	for ti := range f.trunks {
		t := &f.trunks[ti]
		ts := telemetry.TrunkSample{
			Trunk: ti,
			A:     t.A, APort: t.APort,
			B: t.B, BPort: t.BPort,
		}
		for d := 0; d < 2; d++ {
			td := &t.dir[d]
			ts.Dir[d] = telemetry.TrunkDirSample{
				Drained:     td.drained,
				Delivered:   td.delivered,
				Dropped:     td.dropped,
				Retrans:     td.retrans,
				Frames:      td.frames,
				Acked:       td.acked,
				Held:        int64(len(td.buf)),
				Utilization: util(td.delivered),
			}
		}
		s.Trunks = append(s.Trunks, ts)
	}
	for _, ti := range f.spec.BisectionTrunks() {
		for d := 0; d < 2; d++ {
			s.BisectionWords += f.trunks[ti].dir[d].delivered
		}
	}
	// The cut's capacity is one word per cycle per direction per link.
	if nb := len(f.spec.BisectionTrunks()); nb > 0 && elapsed > 0 {
		s.BisectionUtilization = float64(s.BisectionWords) / float64(2*nb) / float64(elapsed)
	}
	for _, e := range f.events.Events {
		s.Events = append(s.Events, telemetry.EventRecord{
			Cycle: e.Cycle, Port: e.Port, Kind: e.Kind.String(), Detail: e.Detail,
		})
	}
	if f.healOn() {
		d := f.Delivery()
		hs := &telemetry.HealSample{
			Enabled:       true,
			Epochs:        d.HealEpochs,
			Reroutes:      d.Reroutes,
			RetransFrames: d.RetransFrames,
			RetransWords:  d.RetransWords,
			PendingFrames: d.PendingFrames,
			PendingWords:  d.Pending,
			Injected:      d.Injected,
			Delivered:     d.Delivered,
			DupWords:      d.DupWords,
			Partitioned:   d.Partitioned,
		}
		for _, c := range d.Dropped {
			hs.Dropped = append(hs.Dropped, telemetry.DropSample{Cause: c.Cause, Words: c.Words})
		}
		s.Heal = hs
	}
	return s
}

// ChipTelemetry exports chip k's telemetry snapshot (counters-only
// unless Config.Metrics armed the plane).
func (f *Fabric) ChipTelemetry(k int) telemetry.Snapshot {
	return f.chips[k].r.TelemetrySnapshot()
}
