package cluster

import (
	"fmt"
	"hash/fnv"

	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config configures an N-chip fabric.
type Config struct {
	// Topology declares the chip count and wiring; see Spec.
	Topology Spec
	// Router is the per-chip configuration template. The fabric owns the
	// fields that cannot be shared across chips: Table is compiled per
	// chip from the topology (must be nil), and Events/Metrics templates
	// must be nil too — set Config.Metrics to arm per-chip collectors and
	// read chip planes through ChipEvents/ChipTelemetry. Multicast and
	// Crypto are rejected: both would rewrite the inter-chip word streams
	// (group fanout, payload ciphering) that trunk neighbors parse as
	// plain IP packets.
	Router router.Config
	// Metrics arms a telemetry collector on every chip.
	Metrics bool
	// Faults holds optional per-chip fault schedules, applied to chip k's
	// original incarnation (a replacement chip built by RestoreChip starts
	// fault-free — the schedule's cycle origin died with the old chip).
	// Chip-level controls (killchip@/restorechip@) are fabric-wide; feed
	// them through ApplySchedule instead.
	Faults map[int]*fault.Schedule
}

// chipSlot is one chip position: the live router instance plus the
// fabric-level lifecycle state that survives chip replacement.
type chipSlot struct {
	r      *router.Router
	events *trace.EventLog
	dead   bool
	// epoch counts instances in this slot (0 = original); bornAt is the
	// fabric cycle the current instance was constructed at.
	epoch  int
	bornAt int64
}

// trunkDir is one direction of one trunk: the packet framer between the
// source chip's egress pins and the destination chip's ingress pins,
// plus the direction's conservation counters. The framer models the
// store-and-forward SERDES framing of a real chip-to-chip link: it holds
// words until a whole IP packet is buffered and delivers packets
// atomically, so a chip killed mid-stream leaves its neighbor at a clean
// packet boundary (the partial packet is dropped and counted) instead of
// desynchronizing its ingress parser.
type trunkDir struct {
	buf []uint32
	// drained counts words taken off the source pins; delivered words
	// pushed onto the destination pins; dropped words discarded (dead
	// endpoint, or a frame that failed to parse). The direction conserves
	// words: drained == delivered + dropped + len(buf), checked by
	// ConservationError.
	drained, delivered, dropped int64
}

// trunkState is one trunk's two directions: dir[0] carries A->B,
// dir[1] B->A.
type trunkState struct {
	Trunk
	dir [2]trunkDir
}

// sliceCycles is the lockstep granularity: every chip advances this many
// cycles, then the fabric bridges all trunk pins — the small elastic
// buffer a real inter-chip link has. Scheduled chip controls fire
// exactly at their cycle (Run caps a slice short when a control is due),
// so a run is deterministic for any Run call pattern.
const sliceCycles = 64

// Fabric is an N-chip switch: Topology-many 4-port routers wired by
// trunks, stepped in lockstep slices, presenting Externals()-many
// external ports with fabric-wide addressing (external port e owns
// (10+e).0.0.0/8). It carries the single-router operability surface
// across the chip boundary: whole-chip kill and re-admission (scheduled
// through the fault grammar), per-trunk accounting, and one checkpoint
// blob for all N chips.
type Fabric struct {
	spec   Spec
	cfg    Config
	chips  []chipSlot
	trunks []trunkState
	cycle  int64

	// Scheduled chip controls, sorted by start cycle; nextCtl is the
	// firing cursor (controls fire in order, so one index serializes the
	// fired-set in checkpoints).
	controls []fault.Event
	nextCtl  int

	// events is the fabric-level log: chip kills and re-admissions, with
	// the chip index in the Port field.
	events trace.EventLog

	// extDropped counts words offered at an external port while its chip
	// was dead — the fabric-level analog of a dead port's line drops.
	extDropped []int64
}

// NewFabric validates the spec and builds the N chips, each with its
// topology-compiled route table.
func NewFabric(cfg Config) (*Fabric, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	rc := cfg.Router
	if rc.ClockHz == 0 {
		// Same convention as router.New: an unset template selects the
		// paper's configuration wholesale.
		rc = router.DefaultConfig()
		cfg.Router = rc
	}
	switch {
	case rc.Table != nil:
		return nil, fmt.Errorf("cluster: fabric compiles per-chip tables; Config.Router.Table must be nil")
	case rc.Events != nil:
		return nil, fmt.Errorf("cluster: an event log cannot be shared across chips; leave Config.Router.Events nil and use ChipEvents")
	case rc.Metrics != nil:
		return nil, fmt.Errorf("cluster: a collector cannot be shared across chips; leave Config.Router.Metrics nil and set Config.Metrics")
	case rc.Multicast:
		return nil, fmt.Errorf("cluster: fabric does not support Multicast (group fanout would corrupt trunk streams)")
	case rc.Crypto:
		return nil, fmt.Errorf("cluster: fabric does not support Crypto (ciphered payloads would corrupt trunk streams)")
	}
	f := &Fabric{
		spec:       cfg.Topology,
		cfg:        cfg,
		chips:      make([]chipSlot, cfg.Topology.NumChips()),
		extDropped: make([]int64, cfg.Topology.Externals()),
	}
	for _, t := range cfg.Topology.Trunks() {
		f.trunks = append(f.trunks, trunkState{Trunk: t})
	}
	for k := range f.chips {
		if err := f.buildChip(k, 0); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// buildChip constructs the chip for slot k (epoch 0 = original, else a
// replacement). Construction is a pure function of the fabric config, so
// a checkpoint restore rebuilds replacements identically.
func (f *Fabric) buildChip(k, epoch int) error {
	rc := f.cfg.Router
	rc.Table = f.spec.chipTable(k)
	ev := &trace.EventLog{}
	rc.Events = ev
	if f.cfg.Metrics {
		rc.Metrics = telemetry.New(telemetry.Config{})
	}
	r, err := router.New(rc)
	if err != nil {
		return fmt.Errorf("cluster: chip %d: %w", k, err)
	}
	if sched := f.cfg.Faults[k]; sched != nil && epoch == 0 {
		r.Chip.InstallFaults(fault.NewInjector(sched, r.Chip.NumTiles()))
		for _, ctl := range sched.Controls() {
			switch ctl.Kind {
			case fault.KindRestore:
				r.ScheduleRestore(ctl.Start, ctl.Tile)
			case fault.KindReprobe:
				r.ScheduleReprobe(ctl.Start, ctl.Tile)
			}
		}
	}
	f.chips[k] = chipSlot{r: r, events: ev, epoch: epoch, bornAt: f.cycle}
	return nil
}

// Spec returns the fabric's topology.
func (f *Fabric) Spec() Spec { return f.spec }

// Cycle returns the fabric cycle count (every live chip has stepped this
// many cycles since its bornAt).
func (f *Fabric) Cycle() int64 { return f.cycle }

// Chip returns slot k's current router instance (tests and telemetry;
// the instance changes when RestoreChip replaces a killed chip).
func (f *Fabric) Chip(k int) *router.Router { return f.chips[k].r }

// ChipDead reports whether slot k is currently killed.
func (f *Fabric) ChipDead(k int) bool { return f.chips[k].dead }

// ChipEpoch returns slot k's instance count (0 = original chip).
func (f *Fabric) ChipEpoch(k int) int { return f.chips[k].epoch }

// Events returns the fabric-level event log (chip kills and restores;
// the Port field carries the chip index).
func (f *Fabric) Events() *trace.EventLog { return &f.events }

// ChipEvents returns chip k's recovery event log (current instance).
func (f *Fabric) ChipEvents(k int) *trace.EventLog { return f.chips[k].events }

// ApplySchedule registers the schedule's fabric-level chip controls
// (killchip@/restorechip@). Call once, before Run; the controls fire
// exactly at their start cycles.
func (f *Fabric) ApplySchedule(s *fault.Schedule) {
	f.controls = append(f.controls, s.ChipControls()...)
}

// OfferPacket enqueues a packet at fabric external port e. Packets
// offered while e's chip is dead are dropped and counted (ExtDropped),
// exactly as a dead single-chip port drops line words.
func (f *Fabric) OfferPacket(e int, pkt *ip.Packet) {
	chip, local := f.spec.ExtPort(e)
	if f.chips[chip].dead {
		f.extDropped[e] += int64(ip.HeaderWords + len(pkt.Payload))
		return
	}
	f.chips[chip].r.OfferPacket(local, pkt)
}

// InputBacklogWords reports external port e's line buffer depth.
func (f *Fabric) InputBacklogWords(e int) int {
	chip, local := f.spec.ExtPort(e)
	return f.chips[chip].r.InputBacklogWords(local)
}

// DrainOutput parses packets delivered at fabric external port e.
func (f *Fabric) DrainOutput(e int) ([]ip.Packet, error) {
	chip, local := f.spec.ExtPort(e)
	return f.chips[chip].r.DrainOutput(local)
}

// OutputWords returns the words ever emitted at external port e by the
// chip's current instance.
func (f *Fabric) OutputWords(e int) int64 {
	chip, local := f.spec.ExtPort(e)
	return f.chips[chip].r.OutputWords(local)
}

// ExtDropped returns the words dropped at external port e while its chip
// was dead.
func (f *Fabric) ExtDropped(e int) int64 { return f.extDropped[e] }

// Run advances the fabric n cycles: all live chips step in lockstep
// slices, trunk pins are bridged at every slice boundary, and scheduled
// chip controls fire exactly at their start cycle (a slice is cut short
// when a control is due, so the trace is independent of how Run calls
// partition the cycles).
func (f *Fabric) Run(n int64) {
	end := f.cycle + n
	for f.cycle < end {
		f.fireControls()
		step := int64(sliceCycles)
		if end-f.cycle < step {
			step = end - f.cycle
		}
		if next := f.nextControlCycle(); next >= 0 && next-f.cycle < step {
			step = next - f.cycle
			if step == 0 {
				// A control at the current cycle already fired above.
				continue
			}
		}
		for k := range f.chips {
			if !f.chips[k].dead {
				f.chips[k].r.Run(step)
			}
		}
		f.cycle += step
		f.bridge()
	}
	f.fireControls()
}

// nextControlCycle returns the next unfired control's start cycle, or -1.
func (f *Fabric) nextControlCycle() int64 {
	if f.nextCtl >= len(f.controls) {
		return -1
	}
	return f.controls[f.nextCtl].Start
}

// fireControls applies every scheduled control due at or before the
// current cycle. Rejected controls (killing a dead chip, restoring a
// live one) are skipped silently so a fuzzed schedule cannot wedge a run.
func (f *Fabric) fireControls() {
	for f.nextCtl < len(f.controls) && f.controls[f.nextCtl].Start <= f.cycle {
		ctl := f.controls[f.nextCtl]
		f.nextCtl++
		if ctl.Tile >= len(f.chips) {
			continue
		}
		switch ctl.Kind {
		case fault.KindKillChip:
			if !f.chips[ctl.Tile].dead {
				f.KillChip(ctl.Tile)
			}
		case fault.KindRestoreChip:
			if f.chips[ctl.Tile].dead {
				if err := f.RestoreChip(ctl.Tile); err != nil {
					panic(err) // construction from a validated config cannot fail
				}
			}
		}
	}
}

// KillChip removes chip k from the fabric: it stops stepping, its trunk
// links go silent (words already drained toward it and partial frames
// from it are dropped and counted), and its external ports drop offered
// traffic until RestoreChip. Direct calls between Run calls are honored
// but are not replayed by checkpoints — schedule killchip@ controls in
// runs that will be checkpointed.
func (f *Fabric) KillChip(k int) error {
	if k < 0 || k >= len(f.chips) {
		return fmt.Errorf("cluster: no chip %d", k)
	}
	if f.chips[k].dead {
		return fmt.Errorf("cluster: chip %d already dead", k)
	}
	f.chips[k].dead = true
	for ti := range f.trunks {
		t := &f.trunks[ti]
		for d := 0; d < 2; d++ {
			src, srcPort, dst, _ := t.endpoints(d)
			if src != k && dst != k {
				continue
			}
			// The source side's undelivered egress words and the framer's
			// partial frame die with the link.
			td := &t.dir[d]
			if src == k {
				words, _ := f.chips[k].r.OutputSink(srcPort).Drain()
				td.drained += int64(len(words))
				td.dropped += int64(len(words))
			}
			td.dropped += int64(len(td.buf))
			td.buf = td.buf[:0]
		}
	}
	f.events.Add(f.cycle, k, trace.EvChipKill)
	return nil
}

// RestoreChip re-admits a killed chip with a freshly constructed
// replacement (same table, same config, epoch+1). The replacement's
// counters, caches, and recovery state start cold, exactly like a field
// card swap; in-flight state of the old instance is already accounted as
// dropped.
func (f *Fabric) RestoreChip(k int) error {
	if k < 0 || k >= len(f.chips) {
		return fmt.Errorf("cluster: no chip %d", k)
	}
	if !f.chips[k].dead {
		return fmt.Errorf("cluster: chip %d is not dead", k)
	}
	if err := f.buildChip(k, f.chips[k].epoch+1); err != nil {
		return err
	}
	f.events.Add(f.cycle, k, trace.EvChipRestore)
	return nil
}

// endpoints resolves direction d of a trunk: d=0 flows A->B, d=1 B->A.
func (t *trunkState) endpoints(d int) (src, srcPort, dst, dstPort int) {
	if d == 0 {
		return t.A, t.APort, t.B, t.BPort
	}
	return t.B, t.BPort, t.A, t.APort
}

// bridge moves trunk words after a slice: each direction drains the
// source chip's egress pins into the framer and pushes every completed
// packet into the destination chip's ingress pins.
func (f *Fabric) bridge() {
	for ti := range f.trunks {
		t := &f.trunks[ti]
		for d := 0; d < 2; d++ {
			f.bridgeDir(t, d)
		}
	}
}

func (f *Fabric) bridgeDir(t *trunkState, d int) {
	src, srcPort, dst, dstPort := t.endpoints(d)
	td := &t.dir[d]
	if f.chips[src].dead {
		return // silenced at KillChip; nothing accumulates
	}
	words, _ := f.chips[src].r.OutputSink(srcPort).Drain()
	td.drained += int64(len(words))
	if f.chips[dst].dead {
		// Words fall on the floor at the dead chip's pins.
		td.dropped += int64(len(td.buf)) + int64(len(words))
		td.buf = td.buf[:0]
		return
	}
	for _, w := range words {
		td.buf = append(td.buf, uint32(w))
	}
	in := f.chips[dst].r.InputPins(dstPort)
	for {
		if len(td.buf) < ip.HeaderWords {
			return
		}
		h, err := ip.Unmarshal(td.buf)
		if err != nil {
			// A frame that does not parse cannot happen on a healthy
			// trunk; resynchronize by sliding one word, as a real framer
			// hunting for a start-of-packet would.
			td.buf = td.buf[1:]
			td.dropped++
			continue
		}
		n := (int(h.TotalLen) + 3) / 4
		if n < ip.HeaderWords {
			n = ip.HeaderWords
		}
		if len(td.buf) < n {
			return
		}
		for _, w := range td.buf[:n] {
			in.Push(raw.Word(w))
		}
		td.delivered += int64(n)
		td.buf = append(td.buf[:0], td.buf[n:]...)
	}
}

// TrunkCounters returns trunk ti's (drained, delivered, dropped, held)
// word counts for direction d (0 = A->B, 1 = B->A).
func (f *Fabric) TrunkCounters(ti, d int) (drained, delivered, dropped, held int64) {
	td := &f.trunks[ti].dir[d]
	return td.drained, td.delivered, td.dropped, int64(len(td.buf))
}

// ConservationError checks every trunk direction's word-conservation
// identity (drained == delivered + dropped + held) and returns the first
// violation, or nil. The identity holds at any instant, faults included.
func (f *Fabric) ConservationError() error {
	for ti := range f.trunks {
		t := &f.trunks[ti]
		for d := 0; d < 2; d++ {
			td := &t.dir[d]
			if td.drained != td.delivered+td.dropped+int64(len(td.buf)) {
				return fmt.Errorf("cluster: trunk %s dir %d leaks words: drained %d != delivered %d + dropped %d + held %d",
					t.Trunk, d, td.drained, td.delivered, td.dropped, len(td.buf))
			}
		}
	}
	return nil
}

// ExternalPktsOut sums packets delivered on all external ports (current
// chip instances).
func (f *Fabric) ExternalPktsOut() int64 {
	var n int64
	for e := 0; e < f.spec.Externals(); e++ {
		chip, local := f.spec.ExtPort(e)
		n += f.chips[chip].r.Stats().PktsOut[local]
	}
	return n
}

// ExternalWordsOut sums words delivered on all external ports.
func (f *Fabric) ExternalWordsOut() int64 {
	var n int64
	for e := 0; e < f.spec.Externals(); e++ {
		n += f.OutputWords(e)
	}
	return n
}

// SetWorkers reshards every chip's stepping across n host goroutines
// (applies to live chips and future replacements). Cycle-exact at any
// count, like the single-chip knob.
func (f *Fabric) SetWorkers(n int) {
	f.cfg.Router.Workers = n
	for k := range f.chips {
		f.chips[k].r.Chip.SetWorkers(n)
	}
}

// Fingerprint digests the fabric's replay-derived state: fabric cycle,
// every chip's counters and lifecycle state, every trunk direction's
// counters and held frame bytes, and the external drop counts. Two runs
// of the same workload agree on every Fingerprint regardless of worker
// count or engine; the conformance suite additionally compares the
// delivered output words, which the fingerprint's counters only size.
func (f *Fabric) Fingerprint() uint64 {
	h := fnv.New64a()
	w64 := func(v int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(v) >> (8 * i))
		}
		h.Write(b[:])
	}
	w64(f.cycle)
	w64(int64(f.nextCtl))
	for k := range f.chips {
		s := &f.chips[k]
		flags := int64(s.epoch) << 1
		if s.dead {
			flags |= 1
		}
		w64(flags)
		w64(s.bornAt)
		w64(s.r.Chip.Cycle())
		st := s.r.Stats()
		for p := 0; p < 4; p++ {
			w64(st.Accepted[p])
			w64(st.Dropped[p])
			w64(st.PktsIn[p])
			w64(st.PktsOut[p])
			w64(st.FragsSent[p])
			w64(st.Lookups[p])
			w64(st.AbortDropped[p])
			w64(st.Underruns[p])
			w64(s.r.OutputWords(p))
		}
		w64(st.FabricLost)
		w64(int64(s.r.DeadPort()))
	}
	for ti := range f.trunks {
		t := &f.trunks[ti]
		for d := 0; d < 2; d++ {
			td := &t.dir[d]
			w64(td.drained)
			w64(td.delivered)
			w64(td.dropped)
			w64(int64(len(td.buf)))
			for _, w := range td.buf {
				w64(int64(w))
			}
		}
	}
	for _, v := range f.extDropped {
		w64(v)
	}
	return h.Sum64()
}

// TelemetrySnapshot assembles the fabric-plane export: per-trunk
// per-direction accounting with utilization gauges, the bisection
// aggregate, dead chips, and the fabric event log. Chip-level planes are
// exported separately via ChipTelemetry.
func (f *Fabric) TelemetrySnapshot() telemetry.FabricSnapshot {
	s := telemetry.FabricSnapshot{
		Schema:    telemetry.SchemaVersion,
		Cycle:     f.cycle,
		Topology:  f.spec.String(),
		Chips:     len(f.chips),
		Externals: f.spec.Externals(),
	}
	for k := range f.chips {
		if f.chips[k].dead {
			s.DeadChips = append(s.DeadChips, k)
		}
	}
	elapsed := f.cycle
	util := func(words int64) float64 {
		if elapsed <= 0 {
			return 0
		}
		return float64(words) / float64(elapsed)
	}
	for ti := range f.trunks {
		t := &f.trunks[ti]
		ts := telemetry.TrunkSample{
			Trunk: ti,
			A:     t.A, APort: t.APort,
			B: t.B, BPort: t.BPort,
		}
		for d := 0; d < 2; d++ {
			td := &t.dir[d]
			ts.Dir[d] = telemetry.TrunkDirSample{
				Drained:     td.drained,
				Delivered:   td.delivered,
				Dropped:     td.dropped,
				Held:        int64(len(td.buf)),
				Utilization: util(td.delivered),
			}
		}
		s.Trunks = append(s.Trunks, ts)
	}
	for _, ti := range f.spec.BisectionTrunks() {
		for d := 0; d < 2; d++ {
			s.BisectionWords += f.trunks[ti].dir[d].delivered
		}
	}
	// The cut's capacity is one word per cycle per direction per link.
	if nb := len(f.spec.BisectionTrunks()); nb > 0 && elapsed > 0 {
		s.BisectionUtilization = float64(s.BisectionWords) / float64(2*nb) / float64(elapsed)
	}
	for _, e := range f.events.Events {
		s.Events = append(s.Events, telemetry.EventRecord{
			Cycle: e.Cycle, Port: e.Port, Kind: e.Kind.String(), Detail: e.Detail,
		})
	}
	return s
}

// ChipTelemetry exports chip k's telemetry snapshot (counters-only
// unless Config.Metrics armed the plane).
func (f *Fabric) ChipTelemetry(k int) telemetry.Snapshot {
	return f.chips[k].r.TelemetrySnapshot()
}
