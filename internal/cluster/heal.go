package cluster

import (
	"fmt"
	"sort"

	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/raw"
	"repro/internal/router"
	"repro/internal/trace"
)

// Fault-aware fabric healing. Three cooperating mechanisms keep an
// N-chip fabric delivering through chip and trunk loss:
//
//  1. Adaptive rerouting. Every kill/restore (chip or trunk) opens a
//     heal epoch: the fabric recomputes each chip's route table against
//     the surviving topology (BFS shortest paths over live chips and
//     live trunks, static-discipline tie-breaks) and installs changed
//     tables through Router.UpdateTable. Tables stay dense — every
//     external /8 keeps a next hop, unreachable destinations keep their
//     static one — so the compiled fast engine stays armed and the hot
//     path never consults liveness.
//  2. Trunk-level ARQ. Trunk frames are sequence-counted per direction;
//     complete frames stranded at a dark trunk or a dead endpoint move
//     into a bounded retransmit queue and are re-driven into their
//     source chip's pins under seeded exponential backoff, where the
//     healed table routes them over the detour path.
//  3. End-to-end delivery accounting. Edge ingress stamps each flow's
//     packets with a per-flow sequence (Header.ID); egress suppresses
//     duplicates through a sliding window; and a fabric-wide word
//     ledger extends trunk conservation to the end-to-end invariant
//     injected == delivered + droppedWithCause (+ in-flight terms),
//     checked by DeliveryError. A surviving topology that is
//     disconnected fails loudly with a typed PartitionError instead of
//     holding frames forever.
//
// All healing state is replay-deterministic and serialized into
// FABCKPT1 blobs; recomputed tables restore through the router's
// recorded table-update log, so a mid-heal checkpoint restores
// byte-identically.

// HealConfig arms and tunes the healing plane. The zero value disables
// it; Enabled with zero fields selects the defaults.
type HealConfig struct {
	// Enabled arms adaptive rerouting, trunk ARQ, and flow tagging.
	Enabled bool
	// WindowFrames bounds the per-trunk-direction retransmit queue;
	// frames beyond it are dropped and counted (arq-window). Default 64.
	WindowFrames int
	// MaxAttempts bounds re-drive attempts while a frame's destination
	// is unreachable; exhausted frames are dropped and counted
	// (arq-exhausted). Default 8.
	MaxAttempts int
	// BackoffCycles is the base retransmit delay; attempt k waits
	// BackoffCycles << min(k,4) plus seeded jitter. Default 256.
	BackoffCycles int64
	// Seed salts the retransmit jitter.
	Seed uint64
}

func (h HealConfig) withDefaults() HealConfig {
	if !h.Enabled {
		return h
	}
	if h.WindowFrames == 0 {
		h.WindowFrames = 64
	}
	if h.MaxAttempts == 0 {
		h.MaxAttempts = 8
	}
	if h.BackoffCycles == 0 {
		h.BackoffCycles = 256
	}
	return h
}

// Drop causes for the end-to-end ledger. Every word that enters the
// fabric and does not reach an external sink is counted under exactly
// one cause, keeping injected == delivered + droppedWithCause.
const (
	dropDeadPort     = iota // offered at a dead chip's external port
	dropDestDead            // destination external's chip is dead
	dropUnreachable         // destination partitioned away from the ingress chip
	dropChipLoss            // resident in (or committed to) a chip when it was killed
	dropTrunkDead           // dropped at a dark trunk or dead endpoint (healing off)
	dropFrameResync         // trunk framer resynchronized past unparseable words
	dropARQWindow           // retransmit window overflow
	dropARQExhausted        // retransmit attempts exhausted while unreachable
	numDropCauses
)

// DropCauseNames are the ledger's stable cause labels, in counter order.
var DropCauseNames = [numDropCauses]string{
	"dead-port", "dest-dead", "unreachable", "chip-loss",
	"trunk-dead", "frame-resync", "arq-window", "arq-exhausted",
}

// PartitionError reports a disconnected surviving topology: at least one
// pair of live chips has no live trunk path. The fabric keeps running —
// reachable traffic still delivers and unreachable offers are counted —
// but DeliveryError surfaces this error until a restore reconnects the
// fabric, so a partitioned run fails loudly instead of timing out on
// frames that can never deliver.
type PartitionError struct {
	Spec       Spec
	Epoch      int64
	DeadChips  []int
	DeadTrunks []string
	Isolated   []int // live chips with zero live trunks
	Components int   // connected components among live chips
}

func (e *PartitionError) Error() string {
	msg := fmt.Sprintf("cluster: %s partitioned at heal epoch %d: %d live components, isolated %v (dead chips %v, dead trunks %v)",
		e.Spec, e.Epoch, e.Components, e.Isolated, e.DeadChips, e.DeadTrunks)
	if risk := e.Spec.PartitionRisk(); risk != "" {
		msg += " — " + risk
	}
	return msg
}

// arqFrame is one trunk frame in retransmit custody: a whole IP packet
// stranded at a failed trunk, waiting to be re-driven into its source
// chip's pins (where the healed table routes the detour).
type arqFrame struct {
	trunk, dir int
	src, port  int // re-drive chip and chip-local port
	dstExt     int
	seq        int64
	attempts   int
	nextTry    int64
	words      []uint32
}

// dupWindow is the egress duplicate-suppression window in sequence
// numbers (per flow). Reordering beyond it is indistinguishable from a
// duplicate and is suppressed.
const dupWindow = 1024

// egressFlow is one flow's duplicate-suppression state at egress: the
// highest sequence seen and a sliding bitmap of the last dupWindow.
type egressFlow struct {
	init bool
	max  uint16
	bits [dupWindow / 64]uint64
}

func (fl *egressFlow) get(seq uint16) bool {
	i := int(seq) % dupWindow
	return fl.bits[i/64]&(1<<(i%64)) != 0
}

func (fl *egressFlow) set(seq uint16) {
	i := int(seq) % dupWindow
	fl.bits[i/64] |= 1 << (i % 64)
}

func (fl *egressFlow) clear(seq uint16) {
	i := int(seq) % dupWindow
	fl.bits[i/64] &^= 1 << (i % 64)
}

// dup records seq and reports whether it was already delivered.
func (fl *egressFlow) dup(seq uint16) bool {
	if !fl.init {
		fl.init = true
		fl.max = seq
		fl.set(seq)
		return false
	}
	d := int16(seq - fl.max)
	switch {
	case d > 0:
		if int(d) >= dupWindow {
			for i := range fl.bits {
				fl.bits[i] = 0
			}
		} else {
			for s := uint16(1); s <= uint16(d); s++ {
				fl.clear(fl.max + s)
			}
		}
		fl.max = seq
		fl.set(seq)
		return false
	case int(d) <= -dupWindow:
		return true // beyond the window: indistinguishable from a dup
	default:
		if fl.get(seq) {
			return true
		}
		fl.set(seq)
		return false
	}
}

// flowKey identifies a flow by its source /8 and destination external.
func flowKey(src ip.Addr, dstExt int) uint32 {
	return uint32(src)>>24<<16 | uint32(dstExt)&0xffff
}

// extOfAddr maps a fabric address to its external port, or -1.
func (f *Fabric) extOfAddr(a uint32) int {
	e := int(a>>24) - 10
	if e < 0 || e >= f.spec.Externals() {
		return -1
	}
	return e
}

func (f *Fabric) healOn() bool { return f.heal.Enabled }

// reachable reports whether live chip a can reach live chip b over live
// trunks (true until the first heal epoch computes the matrix).
func (f *Fabric) reachable(a, b int) bool {
	if f.reach == nil {
		return true
	}
	return f.reach[a][b]
}

// staticPorts returns chip's static (healthy-topology) next-hop ports.
func (f *Fabric) staticPorts(chip int) []int {
	ports := make([]int, f.spec.Externals())
	for e := range ports {
		ports[e] = f.spec.NextHopPort(chip, e)
	}
	return ports
}

// computeRoutes derives the healed routing state from the current dead
// sets: per-chip next-hop ports (BFS shortest paths over the surviving
// topology, preferring the static discipline's port on ties, then the
// lowest port), the live-chip reachability matrix, the live chips with
// no live trunks, and the live component count. Pure — it mutates
// nothing — so checkpoint restore re-derives identical state.
func (f *Fabric) computeRoutes() (ports [][]int, reach [][]bool, isolated []int, comps int) {
	n := len(f.chips)
	type edge struct{ to, port int }
	adj := make([][]edge, n)
	for ti := range f.trunks {
		t := &f.trunks[ti]
		if t.dead || f.chips[t.A].dead || f.chips[t.B].dead {
			continue
		}
		adj[t.A] = append(adj[t.A], edge{to: t.B, port: t.APort})
		adj[t.B] = append(adj[t.B], edge{to: t.A, port: t.BPort})
	}

	const inf = int(1) << 30
	// dist[dc][c]: live-trunk hop count from chip c to destination dc.
	dist := make([][]int, n)
	for dc := 0; dc < n; dc++ {
		d := make([]int, n)
		for i := range d {
			d[i] = inf
		}
		dist[dc] = d
		if f.chips[dc].dead {
			continue
		}
		d[dc] = 0
		queue := []int{dc}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			for _, e := range adj[c] {
				if d[e.to] == inf {
					d[e.to] = d[c] + 1
					queue = append(queue, e.to)
				}
			}
		}
	}

	reach = make([][]bool, n)
	for a := 0; a < n; a++ {
		reach[a] = make([]bool, n)
		for b := 0; b < n; b++ {
			reach[a][b] = !f.chips[a].dead && !f.chips[b].dead && dist[b][a] < inf
		}
	}

	for c := 0; c < n; c++ {
		if !f.chips[c].dead && len(adj[c]) == 0 && n > 1 {
			isolated = append(isolated, c)
		}
	}
	seen := make([]bool, n)
	for c := 0; c < n; c++ {
		if f.chips[c].dead || seen[c] {
			continue
		}
		comps++
		queue := []int{c}
		seen[c] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range adj[v] {
				if !seen[e.to] {
					seen[e.to] = true
					queue = append(queue, e.to)
				}
			}
		}
	}

	ports = make([][]int, n)
	for chip := 0; chip < n; chip++ {
		ps := make([]int, f.spec.Externals())
		for e := range ps {
			dc, dl := f.spec.ExtPort(e)
			static := f.spec.NextHopPort(chip, e)
			switch {
			case dc == chip:
				ps[e] = dl
			case f.chips[chip].dead || f.chips[dc].dead || dist[dc][chip] >= inf:
				// Keep the table dense: unreachable and dead-destination
				// prefixes retain the static next hop; the ledger counts
				// their traffic at ingress instead.
				ps[e] = static
			default:
				best, bestPort, staticOK := inf, -1, false
				for _, ed := range adj[chip] {
					switch {
					case dist[dc][ed.to] < best:
						best, bestPort, staticOK = dist[dc][ed.to], ed.port, ed.port == static
					case dist[dc][ed.to] == best:
						if ed.port == static {
							staticOK = true
						} else if ed.port < bestPort && !staticOK {
							bestPort = ed.port
						}
					}
				}
				if staticOK {
					bestPort = static
				}
				ps[e] = bestPort
			}
		}
		ports[chip] = ps
	}
	return ports, reach, isolated, comps
}

// applyHealState installs computeRoutes' result: the reachability
// matrix, the partition verdict, and — when apply is set — new route
// tables on every live chip whose next-hop assignment changed (counted
// as reroutes). Checkpoint restore calls it with apply=false: the
// replayed chips already hold the healed tables via the recorded
// table-update log, so re-poking would fork the log.
func (f *Fabric) applyHealState(apply bool) {
	ports, reach, isolated, comps := f.computeRoutes()
	f.reach = reach
	for k := range f.chips {
		changed := !equalPorts(f.routePorts[k], ports[k])
		f.routePorts[k] = ports[k]
		if !changed || f.chips[k].dead || !apply {
			continue
		}
		f.chips[k].r.UpdateTable(healedTable(f.spec, ports[k]))
		f.reroutes++
	}
	if comps > 1 || len(isolated) > 0 {
		var deadChips []int
		for k := range f.chips {
			if f.chips[k].dead {
				deadChips = append(deadChips, k)
			}
		}
		var deadTrunks []string
		for ti := range f.trunks {
			if f.trunks[ti].dead {
				deadTrunks = append(deadTrunks, f.trunks[ti].Trunk.String())
			}
		}
		f.partition = &PartitionError{
			Spec: f.spec, Epoch: f.healEpoch,
			DeadChips: deadChips, DeadTrunks: deadTrunks,
			Isolated: isolated, Components: comps,
		}
	} else {
		f.partition = nil
	}
}

// reheal opens a heal epoch after a lifecycle change: recompute routes
// against the surviving topology, swap changed tables, refresh the
// partition verdict, and log the epoch. No-op with healing disabled.
func (f *Fabric) reheal() {
	if !f.healOn() {
		return
	}
	f.healEpoch++
	wasPartitioned := f.partition != nil
	f.applyHealState(true)
	detail := fmt.Sprintf("dead chips %d, dead trunks %d", f.deadChipCount(), f.deadTrunkCount())
	f.events.AddDetail(f.cycle, int(f.healEpoch), trace.EvHealReroute, detail)
	if f.partition != nil && !wasPartitioned {
		f.events.AddDetail(f.cycle, int(f.healEpoch), trace.EvPartition,
			fmt.Sprintf("%d live components, isolated %v", f.partition.Components, f.partition.Isolated))
	}
}

func (f *Fabric) deadChipCount() int {
	n := 0
	for k := range f.chips {
		if f.chips[k].dead {
			n++
		}
	}
	return n
}

func (f *Fabric) deadTrunkCount() int {
	n := 0
	for ti := range f.trunks {
		if f.trunks[ti].dead {
			n++
		}
	}
	return n
}

func equalPorts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// healedTable compiles an explicit next-hop assignment into a route
// table (same dense /8 binding as the static chipTable).
func healedTable(s Spec, ports []int) *lookup.Patricia {
	return router.BindPorts(s.Externals(), func(e int) lookup.NextHop {
		return lookup.NextHop(ports[e])
	})
}

// findTrunk returns the first trunk between chips a and b (either
// orientation) with the wanted dead state, or -1.
func (f *Fabric) findTrunk(a, b int, dead bool) int {
	for ti := range f.trunks {
		t := &f.trunks[ti]
		if t.dead != dead {
			continue
		}
		if (t.A == a && t.B == b) || (t.A == b && t.B == a) {
			return ti
		}
	}
	return -1
}

// KillTrunk darkens the first live trunk between chips a and b: both
// chips keep running, but no words cross the link until RestoreTrunk.
// With healing enabled, frames stranded in the link's framers move to
// the retransmit queue and route tables detour around the link; without
// it, stranded words drop (counted, trunk-dead). Like KillChip, direct
// calls between Run calls are honored but not replayed by checkpoints —
// schedule killtrunk@ controls in runs that will be checkpointed.
func (f *Fabric) KillTrunk(a, b int) error {
	ti := f.findTrunk(a, b, false)
	if ti < 0 {
		return fmt.Errorf("cluster: no live trunk between c%d and c%d", a, b)
	}
	t := &f.trunks[ti]
	t.dead = true
	for d := 0; d < 2; d++ {
		src, srcPort, _, _ := t.endpoints(d)
		td := &t.dir[d]
		if !f.chips[src].dead {
			words, _ := f.chips[src].r.OutputSink(srcPort).Drain()
			td.drained += int64(len(words))
			f.chips[src].wordsOut += int64(len(words))
			for _, w := range words {
				td.buf = append(td.buf, uint32(w))
			}
		}
		if f.healOn() {
			f.framesToARQ(ti, t, d)
		} else {
			n := int64(len(td.buf))
			td.dropped += n
			f.droppedCause[dropTrunkDead] += n
			td.buf = td.buf[:0]
		}
	}
	f.events.AddDetail(f.cycle, ti, trace.EvTrunkKill, t.Trunk.String())
	f.reheal()
	return nil
}

// RestoreTrunk re-lights the first dead trunk between chips a and b.
// Frames held mid-parse in its framers resume delivery; with healing
// enabled the next heal epoch folds the link back into the route tables.
func (f *Fabric) RestoreTrunk(a, b int) error {
	ti := f.findTrunk(a, b, true)
	if ti < 0 {
		return fmt.Errorf("cluster: no dead trunk between c%d and c%d", a, b)
	}
	t := &f.trunks[ti]
	t.dead = false
	f.events.AddDetail(f.cycle, ti, trace.EvTrunkRestore, t.Trunk.String())
	f.reheal()
	return nil
}

// TrunkDead reports whether trunk ti is currently dark.
func (f *Fabric) TrunkDead(ti int) bool { return f.trunks[ti].dead }

// framesToARQ moves every complete frame in direction d's framer into
// the retransmit queue (the partial tail stays held until its words
// arrive or its source dies). Custody leaves the trunk (retrans
// counter); the ARQ plane delivers, defers, or drops each frame.
func (f *Fabric) framesToARQ(ti int, t *trunkState, d int) {
	td := &t.dir[d]
	src, srcPort, _, _ := t.endpoints(d)
	for {
		if len(td.buf) < ip.HeaderWords {
			return
		}
		h, err := ip.Unmarshal(td.buf)
		if err != nil {
			td.buf = td.buf[1:]
			td.dropped++
			f.droppedCause[dropFrameResync]++
			continue
		}
		n := (int(h.TotalLen) + 3) / 4
		if n < ip.HeaderWords {
			n = ip.HeaderWords
		}
		if len(td.buf) < n {
			return
		}
		frame := append([]uint32(nil), td.buf[:n]...)
		td.buf = append(td.buf[:0], td.buf[n:]...)
		td.retrans += int64(n)
		td.frames++
		f.arqEnqueue(ti, d, src, srcPort, uint32(h.Dst), frame)
	}
}

// arqEnqueue admits one stranded frame to the retransmit queue, or drops
// it with a counted cause (window overflow, unroutable destination).
func (f *Fabric) arqEnqueue(ti, d, src, port int, dst uint32, frame []uint32) {
	n := int64(len(frame))
	f.arqSeq++
	dstExt := f.extOfAddr(dst)
	if dstExt < 0 {
		f.droppedCause[dropFrameResync] += n
		return
	}
	key := [2]int{ti, d}
	if f.arqPend[key] >= f.heal.WindowFrames {
		f.droppedCause[dropARQWindow] += n
		return
	}
	f.arqPend[key]++
	f.arq = append(f.arq, arqFrame{
		trunk: ti, dir: d, src: src, port: port, dstExt: dstExt,
		seq: f.arqSeq, nextTry: f.cycle + f.backoffDelay(0, f.arqSeq),
		words: frame,
	})
}

// backoffDelay is attempt k's retransmit delay: base << min(k,4) plus
// seeded jitter, so retries spread deterministically without lockstep.
func (f *Fabric) backoffDelay(attempt int, seq int64) int64 {
	shift := attempt
	if shift > 4 {
		shift = 4
	}
	j := splitmix64(f.heal.Seed ^ uint64(seq)*0x9E3779B97F4A7C15 ^ uint64(attempt)<<32)
	return f.heal.BackoffCycles<<shift + int64(j&63)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// processARQ runs at every slice boundary: due frames whose destination
// chip is live and reachable re-drive into their source chip's pins
// (the healed table routes the detour); unreachable frames back off
// exponentially until attempts exhaust; frames whose destination or
// source died drop with a counted cause.
func (f *Fabric) processARQ() {
	if len(f.arq) == 0 {
		return
	}
	kept := f.arq[:0]
	for i := range f.arq {
		e := f.arq[i]
		if e.nextTry > f.cycle {
			kept = append(kept, e)
			continue
		}
		n := int64(len(e.words))
		dc, _ := f.spec.ExtPort(e.dstExt)
		key := [2]int{e.trunk, e.dir}
		switch {
		case f.chips[dc].dead:
			f.droppedCause[dropDestDead] += n
			f.arqPend[key]--
		case f.chips[e.src].dead:
			f.droppedCause[dropChipLoss] += n
			f.arqPend[key]--
		case !f.reachable(e.src, dc):
			e.attempts++
			if e.attempts >= f.heal.MaxAttempts {
				f.droppedCause[dropARQExhausted] += n
				f.arqPend[key]--
			} else {
				e.nextTry = f.cycle + f.backoffDelay(e.attempts, e.seq)
				kept = append(kept, e)
			}
		default:
			in := f.chips[e.src].r.InputPins(e.port)
			for _, w := range e.words {
				in.Push(raw.Word(w))
			}
			f.chips[e.src].wordsIn += n
			f.retransFrames++
			f.retransWords += n
			f.trunks[e.trunk].dir[e.dir].acked++
			f.arqPend[key]--
		}
	}
	f.arq = kept
}

// chipExtOut sums the words chip k's current instance delivered at its
// external ports.
func (f *Fabric) chipExtOut(k int) int64 {
	var n int64
	for e := 0; e < f.spec.Externals(); e++ {
		chip, local := f.spec.ExtPort(e)
		if chip == k {
			n += f.chips[k].r.OutputWords(local)
		}
	}
	return n
}

// DropCount is one ledger cause with its word count.
type DropCount struct {
	Cause string
	Words int64
}

// Delivery is the end-to-end ledger snapshot: every word offered at an
// external port is either delivered (uniquely), a suppressed duplicate,
// dropped under a named cause, or still in flight (resident in a chip,
// held in a trunk framer, or pending retransmit).
type Delivery struct {
	Injected  int64 // words offered at external ports (dead-port offers included)
	Delivered int64 // unique words delivered at external sinks (retired instances included)
	DupWords  int64 // duplicate words suppressed at egress
	Resident  int64 // words inside live chips
	Held      int64 // words in trunk framers
	Pending   int64 // words in the retransmit queue
	Dropped   []DropCount

	PendingFrames int64
	RetransFrames int64
	RetransWords  int64
	HealEpochs    int64
	Reroutes      int64
	Partitioned   bool
}

// DroppedTotal sums the ledger's cause counters.
func (d Delivery) DroppedTotal() int64 {
	var n int64
	for _, c := range d.Dropped {
		n += c.Words
	}
	return n
}

// Delivery assembles the end-to-end ledger (see DeliveryError for the
// invariant it must satisfy).
func (f *Fabric) Delivery() Delivery {
	d := Delivery{
		Injected:      f.injected,
		DupWords:      f.dupWords,
		PendingFrames: int64(len(f.arq)),
		RetransFrames: f.retransFrames,
		RetransWords:  f.retransWords,
		HealEpochs:    f.healEpoch,
		Reroutes:      f.reroutes,
		Partitioned:   f.partition != nil,
	}
	emitted := f.retiredExtOut
	perChipExt := make([]int64, len(f.chips))
	for e := 0; e < f.spec.Externals(); e++ {
		chip, local := f.spec.ExtPort(e)
		if !f.chips[chip].dead {
			w := f.chips[chip].r.OutputWords(local)
			emitted += w
			perChipExt[chip] += w
		}
	}
	d.Delivered = emitted - f.dupWords
	for k := range f.chips {
		if !f.chips[k].dead {
			d.Resident += f.chips[k].wordsIn - f.chips[k].wordsOut - perChipExt[k]
		}
	}
	for ti := range f.trunks {
		for dd := 0; dd < 2; dd++ {
			d.Held += int64(len(f.trunks[ti].dir[dd].buf))
		}
	}
	for _, e := range f.arq {
		d.Pending += int64(len(e.words))
	}
	for c := 0; c < numDropCauses; c++ {
		d.Dropped = append(d.Dropped, DropCount{Cause: DropCauseNames[c], Words: f.droppedCause[c]})
	}
	return d
}

// DeliveryError checks the end-to-end delivery guarantee on top of
// trunk conservation: every injected word is accounted —
//
//	injected == delivered + duplicates + droppedWithCause
//	            + resident + held + pending
//
// at any instant, for healing on or off (with healing off the in-flight
// and duplicate terms are the only paths words take besides delivery
// and counted drops). At quiescence the in-flight terms are zero and
// the invariant collapses to injected == delivered + droppedWithCause.
// While the surviving topology is partitioned it returns the typed
// *PartitionError. The ledger assumes fabric traffic (packets no larger
// than the MTU, no edge-drop faults on external ports) — the regime
// every fabric harness runs.
func (f *Fabric) DeliveryError() error {
	if err := f.ConservationError(); err != nil {
		return err
	}
	if f.partition != nil {
		return f.partition
	}
	d := f.Delivery()
	want := d.Delivered + d.DupWords + d.DroppedTotal() + d.Resident + d.Held + d.Pending
	if d.Injected != want {
		return fmt.Errorf("cluster: end-to-end ledger leaks words: injected %d != delivered %d + dup %d + dropped %d + resident %d + held %d + pending %d",
			d.Injected, d.Delivered, d.DupWords, d.DroppedTotal(), d.Resident, d.Held, d.Pending)
	}
	return nil
}

// DroppedByCause returns the ledger counter for a named cause (tests).
func (f *Fabric) DroppedByCause(cause string) int64 {
	for c := 0; c < numDropCauses; c++ {
		if DropCauseNames[c] == cause {
			return f.droppedCause[c]
		}
	}
	return 0
}

// sortedFlowKeys returns a map's keys in ascending order (deterministic
// serialization and fingerprints).
func sortedFlowKeys[V any](m map[uint32]V) []uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
