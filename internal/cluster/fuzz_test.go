package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/ip"
	"repro/internal/traffic"
)

// FuzzTopologySpec is the topology-plane contract fuzzer: any (kind,
// chips, w, h) tuple must either be rejected by Validate with a precise
// error, or build a fabric that routes traffic for 64 quanta with the
// per-trunk conservation identity intact. There is no third outcome —
// no panics, no silently-mangled shapes.
func FuzzTopologySpec(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(0), uint8(0)) // ring-4
	f.Add(uint8(1), uint8(0), uint8(2), uint8(2)) // mesh-2x2
	f.Add(uint8(2), uint8(4), uint8(0), uint8(0)) // fattree (2 leaves)
	f.Add(uint8(0), uint8(1), uint8(0), uint8(0)) // ring too small
	f.Add(uint8(1), uint8(0), uint8(9), uint8(1)) // mesh side too big
	f.Add(uint8(1), uint8(3), uint8(2), uint8(2)) // stray chip count
	f.Add(uint8(7), uint8(4), uint8(0), uint8(0)) // unknown kind
	f.Fuzz(func(t *testing.T, kind, chips, w, h uint8) {
		spec := cluster.Spec{
			Kind:  cluster.TopoKind(kind),
			Chips: int(chips),
			W:     int(w),
			H:     int(h),
		}
		err := spec.Validate()
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("%+v: empty validation error", spec)
			}
			if _, buildErr := cluster.NewFabric(cluster.Config{Topology: spec}); buildErr == nil {
				t.Fatalf("%+v: Validate rejects but NewFabric accepts", spec)
			}
			return
		}
		// Valid: the derived shape must be self-consistent even when we
		// skip the (expensive) simulation below.
		if spec.NumChips() < 1 || spec.Externals() < 1 {
			t.Fatalf("%s: degenerate valid spec", spec)
		}
		for e := 0; e < spec.Externals(); e++ {
			c, l := spec.ExtPort(e)
			if got, ok := spec.ExternalOf(c, l); !ok || got != e {
				t.Fatalf("%s: ExtPort/ExternalOf mismatch at %d", spec, e)
			}
		}
		if spec.NumChips() > 6 {
			return // shape checks only; simulation budget is for small fabrics
		}
		fab, err := cluster.NewFabric(cluster.Config{Topology: spec})
		if err != nil {
			t.Fatalf("%s: valid spec rejected by NewFabric: %v", spec, err)
		}
		ext := spec.Externals()
		id := uint16(0)
		for q := 0; q < 64; q++ {
			src := q % ext
			if fab.InputBacklogWords(src) < 2048 {
				id++
				dst := (src + 1 + q%(ext)) % ext
				if dst == src {
					dst = (dst + 1) % ext
				}
				pkt := ip.NewPacket(traffic.PortAddr(src, uint32(id)),
					traffic.PortAddr(dst, uint32(id)), 64, 128, id)
				fab.OfferPacket(src, &pkt)
			}
			fab.Run(64)
			if _, err := fab.DrainOutput(dst64(q, ext)); err != nil {
				t.Fatalf("%s: drain: %v", spec, err)
			}
		}
		if err := fab.ConservationError(); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	})
}

func dst64(q, ext int) int { return q % ext }
