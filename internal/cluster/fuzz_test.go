package cluster_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/ip"
	"repro/internal/traffic"
)

// FuzzTopologySpec is the topology-plane contract fuzzer: any (kind,
// chips, w, h) tuple must either be rejected by Validate with a precise
// error, or build a fabric that routes traffic for 64 quanta with the
// per-trunk conservation identity intact — now under a fuzzed chip/trunk
// loss-and-healing arc, with the end-to-end delivery ledger balanced at
// the end. The only tolerated failure is the typed PartitionError (a
// disconnected surviving topology fails loudly, by design). There is no
// third outcome — no panics, no silently-mangled shapes, no leaked words.
func FuzzTopologySpec(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0)) // ring-4
	f.Add(uint8(1), uint8(0), uint8(2), uint8(2), uint8(0), uint8(0), uint8(0)) // mesh-2x2
	f.Add(uint8(2), uint8(4), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0)) // fattree (2 leaves)
	f.Add(uint8(0), uint8(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0)) // ring too small
	f.Add(uint8(1), uint8(0), uint8(9), uint8(1), uint8(0), uint8(0), uint8(0)) // mesh side too big
	f.Add(uint8(1), uint8(3), uint8(2), uint8(2), uint8(0), uint8(0), uint8(0)) // stray chip count
	f.Add(uint8(7), uint8(4), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0)) // unknown kind
	f.Add(uint8(0), uint8(4), uint8(0), uint8(0), uint8(1), uint8(2), uint8(3)) // healed ring, chip+trunk arc
	f.Add(uint8(1), uint8(0), uint8(3), uint8(1), uint8(1), uint8(1), uint8(2)) // healed 1-wide mesh: partitions
	f.Add(uint8(0), uint8(2), uint8(0), uint8(0), uint8(3), uint8(0), uint8(1)) // healed ring-2 losing a chip
	f.Fuzz(func(t *testing.T, kind, chips, w, h, heal, vA, vB uint8) {
		spec := cluster.Spec{
			Kind:  cluster.TopoKind(kind),
			Chips: int(chips),
			W:     int(w),
			H:     int(h),
		}
		err := spec.Validate()
		if err != nil {
			if err.Error() == "" {
				t.Fatalf("%+v: empty validation error", spec)
			}
			if _, buildErr := cluster.NewFabric(cluster.Config{Topology: spec}); buildErr == nil {
				t.Fatalf("%+v: Validate rejects but NewFabric accepts", spec)
			}
			return
		}
		// Valid: the derived shape must be self-consistent even when we
		// skip the (expensive) simulation below.
		if spec.NumChips() < 1 || spec.Externals() < 1 {
			t.Fatalf("%s: degenerate valid spec", spec)
		}
		for e := 0; e < spec.Externals(); e++ {
			c, l := spec.ExtPort(e)
			if got, ok := spec.ExternalOf(c, l); !ok || got != e {
				t.Fatalf("%s: ExtPort/ExternalOf mismatch at %d", spec, e)
			}
		}
		if spec.NumChips() > 6 {
			return // shape checks only; simulation budget is for small fabrics
		}
		cfg := cluster.Config{Topology: spec}
		if heal&1 != 0 {
			cfg.Heal = cluster.HealConfig{Enabled: true, Seed: uint64(heal)}
		}
		fab, err := cluster.NewFabric(cfg)
		if err != nil {
			t.Fatalf("%s: valid spec rejected by NewFabric: %v", spec, err)
		}
		if heal&2 != 0 {
			// Fuzzed loss arc: a chip kill/re-admission plus a trunk
			// kill/restore between the fuzzed pair (killtrunk is skipped by
			// the control plane when no such trunk exists — that skip is
			// part of the contract under fuzz).
			n := spec.NumChips()
			a, b := int(vA)%n, int(vB)%n
			sched := fault.MustParse(fmt.Sprintf(
				"killchip@512:c%d;killtrunk@1024:c%d-c%d;restoretrunk@2048:c%d-c%d;restorechip@3072:c%d",
				a, a, b, a, b, a))
			fab.ApplySchedule(sched)
		}
		ext := spec.Externals()
		id := uint16(0)
		for q := 0; q < 64; q++ {
			src := q % ext
			if fab.InputBacklogWords(src) < 2048 {
				id++
				dst := (src + 1 + q%(ext)) % ext
				if dst == src {
					dst = (dst + 1) % ext
				}
				pkt := ip.NewPacket(traffic.PortAddr(src, uint32(id)),
					traffic.PortAddr(dst, uint32(id)), 64, 128, id)
				fab.OfferPacket(src, &pkt)
			}
			fab.Run(64)
			if _, err := fab.DrainOutput(dst64(q, ext)); err != nil {
				t.Fatalf("%s: drain: %v", spec, err)
			}
		}
		if err := fab.ConservationError(); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		// The end-to-end ledger must balance at any instant, partitioned
		// or not; DeliveryError may only be nil or the typed partition.
		d := fab.Delivery()
		if want := d.Delivered + d.DupWords + d.DroppedTotal() + d.Resident + d.Held + d.Pending; d.Injected != want {
			t.Fatalf("%s: ledger leaks words: injected %d != accounted %d (%+v)", spec, d.Injected, want, d)
		}
		if err := fab.DeliveryError(); err != nil {
			var pe *cluster.PartitionError
			if !errors.As(err, &pe) {
				t.Fatalf("%s: %v", spec, err)
			}
		}
	})
}

func dst64(q, ext int) int { return q % ext }
