// Package cluster composes multiple cycle-level 4-port Raw routers into a
// larger router — §8.5's prescription: "build a larger router out of
// multiple of these small 4-port routers", connected gluelessly at the
// pins. Two chips joined by trunk links form an 8-external-port system
// (each chip keeps two external ports and dedicates two to the trunk);
// the word streams crossing the trunk are the same pin streams a line
// card would see, so no chip is aware it is part of a cluster.
//
// The composition makes §8.5's trade measurable: a packet crossing chips
// takes two lookups and two crossbar traversals, and the trunk's two
// ports carry all inter-chip traffic — the bisection that caps scaling.
package cluster

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/router"
)

// Port identifies an external port of the cluster: 0..3, where 0,1 are
// chip A's ports 0,1 and 2,3 are chip B's ports 0,1.
// Chip-local ports 2,3 of each chip are the trunk.
const (
	// TrunkPorts are the chip-local ports wired chip-to-chip.
	trunkLo = 2
	trunkHi = 3
	// ExternalPorts is the cluster's external port count.
	ExternalPorts = 4
)

// TwoChip is a 4-external-port router built from two chips (each chip
// contributes two external ports; the other two form the inter-chip
// trunk). It demonstrates the §8.5 composition while keeping the external
// port count equal to a single chip's, so the cost of crossing the trunk
// is directly comparable.
type TwoChip struct {
	A, B *router.Router

	// Stats
	TrunkWords [2]int64 // words crossing A->B and B->A
}

// external maps a cluster port to (chip, chip-local port): ports 0,1 live
// on A, ports 2,3 on B.
func external(p int) (chip int, local int) {
	if p < 2 {
		return 0, p
	}
	return 1, p - 2
}

// NewTwoChip builds the cluster. Addressing: cluster port p owns
// (10+p).0.0.0/8, like the single-chip canonical table. Chip A's table
// sends ports 2,3's prefixes to its trunk ports; chip B symmetrically.
func NewTwoChip(cfg router.Config) (*TwoChip, error) {
	mkTable := func(chip int) *lookup.Patricia {
		return router.BindPorts(ExternalPorts, func(p int) lookup.NextHop {
			c, local := external(p)
			if c != chip {
				// Remote port: send over the trunk, spread across both
				// trunk links by parity for bisection balance.
				return lookup.NextHop(trunkLo + p%2)
			}
			return lookup.NextHop(local)
		})
	}

	cfgA := cfg
	cfgA.Table = mkTable(0)
	a, err := router.New(cfgA)
	if err != nil {
		return nil, fmt.Errorf("cluster: chip A: %w", err)
	}
	cfgB := cfg
	cfgB.Table = mkTable(1)
	b, err := router.New(cfgB)
	if err != nil {
		return nil, fmt.Errorf("cluster: chip B: %w", err)
	}
	return &TwoChip{A: a, B: b}, nil
}

// chipOf returns the router for chip index c.
func (c2 *TwoChip) chipOf(c int) *router.Router {
	if c == 0 {
		return c2.A
	}
	return c2.B
}

// OfferPacket enqueues a packet at a cluster external port.
func (c2 *TwoChip) OfferPacket(p int, pkt *ip.Packet) {
	chip, local := external(p)
	c2.chipOf(chip).OfferPacket(local, pkt)
}

// InputBacklogWords reports the external line buffer depth.
func (c2 *TwoChip) InputBacklogWords(p int) int {
	chip, local := external(p)
	return c2.chipOf(chip).InputBacklogWords(local)
}

// Run advances both chips n cycles, bridging the trunk pins every step
// slice. The bridge moves whole drained bursts; the per-slice granularity
// models the small elastic buffers real chip-to-chip links have.
func (c2 *TwoChip) Run(n int64) {
	const slice = 64
	for done := int64(0); done < n; done += slice {
		step := slice
		if n-done < slice {
			step = int(n - done)
		}
		c2.A.Run(int64(step))
		c2.B.Run(int64(step))
		c2.bridge()
	}
}

// bridge shuttles words that left one chip's trunk egress pins into the
// other chip's trunk ingress pins.
func (c2 *TwoChip) bridge() {
	for _, trunk := range []int{trunkLo, trunkHi} {
		aw, _ := c2.A.OutputSink(trunk).Drain()
		for _, w := range aw {
			c2.B.InputPins(trunk).Push(w)
		}
		c2.TrunkWords[0] += int64(len(aw))

		bw, _ := c2.B.OutputSink(trunk).Drain()
		for _, w := range bw {
			c2.A.InputPins(trunk).Push(w)
		}
		c2.TrunkWords[1] += int64(len(bw))
	}
}

// DrainOutput parses packets delivered at a cluster external port.
func (c2 *TwoChip) DrainOutput(p int) ([]ip.Packet, error) {
	chip, local := external(p)
	return c2.chipOf(chip).DrainOutput(local)
}

// Cycle returns chip A's cycle count (both chips run in lockstep slices).
func (c2 *TwoChip) Cycle() int64 { return c2.A.Cycle() }

// ExternalPktsOut sums packets delivered on external ports only.
func (c2 *TwoChip) ExternalPktsOut() int64 {
	return c2.A.Stats().PktsOut[0] + c2.A.Stats().PktsOut[1] +
		c2.B.Stats().PktsOut[0] + c2.B.Stats().PktsOut[1]
}

// ExternalWordsOut sums words delivered on external ports only.
func (c2 *TwoChip) ExternalWordsOut() int64 {
	return c2.A.OutputWords(0) + c2.A.OutputWords(1) +
		c2.B.OutputWords(0) + c2.B.OutputWords(1)
}
