package cluster

import "testing"

// testSpecs are the topology instances the suites sweep: every kind at a
// small size plus the acceptance-criteria 16-chip mesh.
func testSpecs() []Spec {
	return []Spec{
		Ring(2), Ring(3), Ring(4),
		Mesh(2, 1), Mesh(2, 2), Mesh(4, 4),
		FatTree(2), FatTree(3), FatTree(4),
	}
}

func TestSpecValidate(t *testing.T) {
	for _, s := range testSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	bad := []Spec{
		{},                // ring-0
		Ring(1), Ring(33), // out of bounds
		Mesh(0, 4), Mesh(9, 1), // bad side
		Mesh(1, 1),             // no trunks
		FatTree(1), FatTree(5), // leaf bounds
		{Kind: TopoRing, Chips: 4, W: 2},       // stray mesh dims
		{Kind: TopoMesh, Chips: 4, W: 2, H: 2}, // stray chip count
		{Kind: TopoFatTree, Chips: 4, H: 1},    // stray mesh dims
		{Kind: TopoKind(9), Chips: 4},          // unknown kind
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v: want validation error", s)
		}
	}
}

// TestSpecFor pins the flag-surface mapping from (kind, chip count) to
// an instance — notably the squarest-grid mesh factoring.
func TestSpecFor(t *testing.T) {
	good := []struct {
		kind  TopoKind
		chips int
		want  string
	}{
		{TopoRing, 2, "ring-2"}, {TopoRing, 16, "ring-16"},
		{TopoMesh, 16, "mesh-4x4"}, {TopoMesh, 8, "mesh-4x2"},
		{TopoMesh, 2, "mesh-2x1"}, {TopoMesh, 6, "mesh-3x2"},
		{TopoFatTree, 4, "fattree-4"}, {TopoFatTree, 6, "fattree-6"},
	}
	for _, c := range good {
		s, err := SpecFor(c.kind, c.chips)
		if err != nil || s.String() != c.want {
			t.Errorf("SpecFor(%v, %d) = %v, %v, want %s", c.kind, c.chips, s, err, c.want)
		}
	}
	bad := []struct {
		kind  TopoKind
		chips int
	}{
		{TopoRing, 1}, {TopoRing, 33},
		{TopoMesh, 11}, // prime > maxMeshSide: no grid
		{TopoMesh, 1},  // no trunks
		{TopoFatTree, 3},
		{TopoKind(9), 4},
	}
	for _, c := range bad {
		if _, err := SpecFor(c.kind, c.chips); err == nil {
			t.Errorf("SpecFor(%v, %d): want error", c.kind, c.chips)
		}
	}
}

// TestTopologyShape pins the derived shape of each instance: chip and
// external counts, trunk port consistency, and the documented 16-chip
// mesh accounting (64 chip ports = 48 trunk + 16 external).
func TestTopologyShape(t *testing.T) {
	for _, s := range testSpecs() {
		trunkSides := map[[2]int]bool{}
		for _, tr := range s.Trunks() {
			for _, side := range [][2]int{{tr.A, tr.APort}, {tr.B, tr.BPort}} {
				if trunkSides[side] {
					t.Fatalf("%s: chip %d port %d on two trunks", s, side[0], side[1])
				}
				trunkSides[side] = true
				if side[0] < 0 || side[0] >= s.NumChips() || side[1] < 0 || side[1] > 3 {
					t.Fatalf("%s: trunk endpoint out of range: %v", s, side)
				}
			}
		}
		for e := 0; e < s.Externals(); e++ {
			chip, local := s.ExtPort(e)
			if trunkSides[[2]int{chip, local}] {
				t.Fatalf("%s: external %d collides with a trunk at chip %d port %d", s, e, chip, local)
			}
			if got, ok := s.ExternalOf(chip, local); !ok || got != e {
				t.Fatalf("%s: ExternalOf(%d,%d) = %d,%v, want %d", s, chip, local, got, ok, e)
			}
		}
	}
	m := Mesh(4, 4)
	if m.NumChips() != 16 || m.Externals() != 16 || len(m.Trunks()) != 24 {
		t.Fatalf("mesh-4x4: chips %d externals %d trunks %d, want 16/16/24",
			m.NumChips(), m.Externals(), len(m.Trunks()))
	}
	if got := 2*len(m.Trunks()) + m.Externals(); got != 64 {
		t.Fatalf("mesh-4x4: %d chip ports accounted, want 64", got)
	}
}

// TestNextHopReaches walks every (source chip, destination external)
// pair hop by hop and asserts the route terminates at the destination
// within the fabric diameter — the routing disciplines are loop-free and
// complete on all three topologies.
func TestNextHopReaches(t *testing.T) {
	for _, s := range testSpecs() {
		// trunk peer lookup: (chip, port) -> (chip', port')
		peer := map[[2]int][2]int{}
		for _, tr := range s.Trunks() {
			peer[[2]int{tr.A, tr.APort}] = [2]int{tr.B, tr.BPort}
			peer[[2]int{tr.B, tr.BPort}] = [2]int{tr.A, tr.APort}
		}
		diameter := s.NumChips() + 2
		for e := 0; e < s.Externals(); e++ {
			dc, dl := s.ExtPort(e)
			for c := 0; c < s.NumChips(); c++ {
				cur, hops := c, 0
				for cur != dc {
					p := s.NextHopPort(cur, e)
					next, ok := peer[[2]int{cur, p}]
					if !ok {
						t.Fatalf("%s: chip %d routes ext %d to non-trunk port %d", s, cur, e, p)
					}
					cur = next[0]
					if hops++; hops > diameter {
						t.Fatalf("%s: route chip %d -> ext %d exceeds diameter", s, c, e)
					}
				}
				if p := s.NextHopPort(cur, e); p != dl {
					t.Fatalf("%s: ext %d terminates at chip %d port %d, want %d", s, e, cur, p, dl)
				}
			}
		}
	}
}

// TestBisectionTrunks pins the cut sizes: a ring is cut by 2 links, a
// W-wide mesh by H links, and a fat-tree by half its leaves' uplinks.
func TestBisectionTrunks(t *testing.T) {
	cases := []struct {
		s    Spec
		want int
	}{
		{Ring(4), 2}, {Ring(2), 2},
		{Mesh(4, 4), 4}, {Mesh(2, 2), 2}, {Mesh(2, 1), 1},
		{FatTree(4), 4}, {FatTree(2), 2},
	}
	for _, c := range cases {
		if got := len(c.s.BisectionTrunks()); got != c.want {
			t.Errorf("%s: %d bisection trunks, want %d", c.s, got, c.want)
		}
	}
}
