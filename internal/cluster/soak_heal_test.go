package cluster_test

import (
	"bytes"
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/raw"
	"repro/internal/traffic"
)

// Healing soak: a seeded trunk-loss arc followed by a chip-loss arc on a
// ring-4 fabric with the healing plane armed, checkpointed mid-heal
// (trunk dark, ARQ custody and healed tables live) and restored into a
// fresh fabric that must finish the run byte-for-byte identically, then
// drained to quiescence where the end-to-end ledger must balance with
// nothing pending. `make soak-heal` widens the matrix with SOAK_SEEDS
// under -race.

func TestSoakHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("healing soak skipped in -short")
	}
	spec := cluster.Ring(4)
	seeds := fabricSoakSeeds(t)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		seed := seed
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			rng := traffic.NewRNG(seed)
			n := spec.NumChips()
			// Non-overlapping arcs: trunk dark through the phase-1/phase-2
			// boundary (so the checkpoint lands mid-heal), then a chip kill
			// and re-admission strictly after the trunk is back. A ring
			// minus any single element stays connected, so the run never
			// partitions and every surviving flow keeps a detour.
			ta := int(rng.Uint64() % uint64(n))
			tb := (ta + 1) % n
			victim := int(rng.Uint64() % uint64(n))
			tkill := int64(1500 + rng.Uint64()%1500)        // phase 1 (cycles 0..4000)
			trestore := int64(4200 + rng.Uint64()%1200)     // phase 2
			ckill := trestore + 400 + int64(rng.Uint64()%800)
			crestore := ckill + 800 + int64(rng.Uint64()%800) // still < 10000
			p1 := rng.Uint64() // feed-phase seeds, shared by both runs
			p2 := rng.Uint64()
			sched := fault.MustParse(
				"killtrunk@" + strconv.FormatInt(tkill, 10) + ":c" + strconv.Itoa(ta) + "-c" + strconv.Itoa(tb) +
					";restoretrunk@" + strconv.FormatInt(trestore, 10) + ":c" + strconv.Itoa(ta) + "-c" + strconv.Itoa(tb) +
					";killchip@" + strconv.FormatInt(ckill, 10) + ":c" + strconv.Itoa(victim) +
					";restorechip@" + strconv.FormatInt(crestore, 10) + ":c" + strconv.Itoa(victim))

			build := func() *cluster.Fabric {
				f := mustFabric(t, spec, func(c *cluster.Config) {
					c.Router.Engine = raw.EngineFast
					c.Router.Checkpoint = true
					c.Heal = cluster.HealConfig{Enabled: true, Seed: seed}
				})
				f.ApplySchedule(sched)
				return f
			}

			// Uninterrupted reference: feed through the trunk kill,
			// checkpoint while the trunk is dark, feed through the chip arc,
			// drain past the longest ARQ backoff.
			ref := build()
			soakFeed(ref, spec, traffic.NewRNG(p1), 20) // 4000 cycles: trunk is dark
			if d := ref.Delivery(); d.HealEpochs == 0 {
				t.Fatalf("seed %d: no heal epoch by cycle %d (killtrunk@%d)", seed, ref.Cycle(), tkill)
			}
			blob, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			soakFeed(ref, spec, traffic.NewRNG(p2), 30) // through restore + chip arc
			ref.Run(12000)                              // drain dry (max backoff ~4k cycles)
			refFinal, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// The full arc must have happened and healed.
			d := ref.Delivery()
			if d.HealEpochs != 4 {
				t.Fatalf("seed %d: %d heal epochs, want 4", seed, d.HealEpochs)
			}
			if ref.ChipDead(victim) || ref.ChipEpoch(victim) != 1 {
				t.Fatalf("seed %d: victim dead=%v epoch=%d after re-admission",
					seed, ref.ChipDead(victim), ref.ChipEpoch(victim))
			}
			if err := ref.DeliveryError(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if d.PendingFrames != 0 {
				t.Fatalf("seed %d: %d frames still pending after quiescence", seed, d.PendingFrames)
			}
			if d.Injected == 0 || d.Delivered == 0 {
				t.Fatalf("seed %d: degenerate run (injected %d, delivered %d)", seed, d.Injected, d.Delivered)
			}

			// Restore the mid-heal checkpoint into a fresh fabric and finish
			// identically: byte-equal finals, equal fingerprints.
			res := build()
			if err := res.RestoreSnapshot(blob); err != nil {
				t.Fatalf("seed %d: restore: %v", seed, err)
			}
			soakFeed(res, spec, traffic.NewRNG(p2), 30)
			res.Run(12000)
			resFinal, err := res.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refFinal, resFinal) {
				t.Fatalf("seed %d: restored run diverged from uninterrupted run (%d vs %d bytes)",
					seed, len(refFinal), len(resFinal))
			}
			if ref.Fingerprint() != res.Fingerprint() {
				t.Fatalf("seed %d: fingerprints diverged", seed)
			}
			if err := res.DeliveryError(); err != nil {
				t.Fatalf("seed %d: restored fabric ledger: %v", seed, err)
			}
		})
	}
}
