package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

// sampleSnapshot builds a deterministic snapshot exercising every export
// section: counters, histograms, flight-recorder quanta, and events.
func sampleSnapshot() Snapshot {
	c := New(Config{RingQuanta: 8, RingEvents: 4})
	for q := int64(1); q <= 12; q++ {
		var s QuantumSample
		s.Quantum = q
		s.Cycle = q * 264
		s.Token = int(q % NumPorts)
		s.ReqMask = 0b1111
		s.GrantMask = uint8(1 << (q % NumPorts))
		s.FragWords[q%NumPorts] = 24
		for p := 0; p < NumPorts; p++ {
			s.Dropped[p] = q / 3
		}
		for tl := 0; tl < NumTiles; tl++ {
			s.TileBlocked[tl] = q * int64(tl)
		}
		c.RecordQuantum(s)
	}
	c.RecordEvent(trace.Event{Cycle: 500, Port: 2, Kind: trace.EvLineDown})
	c.RecordEvent(trace.Event{Cycle: 900, Port: 2, Kind: trace.EvDegrade})
	c.RecordEvent(trace.Event{Cycle: 2000, Port: 2, Kind: trace.EvFailStop,
		Detail: "probe, timeout"})

	var m Meta
	m.Cycle = 3200
	m.ClockHz = 425e6
	m.DeadPort = 2
	m.ProbationPort = -1
	m.FabricLost = 3
	for p := 0; p < NumPorts; p++ {
		m.Ports[p] = PortCounters{
			Accepted: int64(40 + p), Dropped: 4, PktsOut: int64(30 + p),
			WordsIn: 1600, WordsOut: int64(800 * (p + 1)),
		}
	}
	for tl := 0; tl < NumTiles; tl++ {
		m.Tiles[tl] = TileMeta{Tile: tl, Role: "ingress", Run: 100, Blocked: 50, Idle: 10}
	}
	return c.Snapshot(m)
}

func TestEncodeDispatch(t *testing.T) {
	s := sampleSnapshot()
	for _, f := range Formats() {
		out, err := s.Encode(f)
		if err != nil || len(out) == 0 {
			t.Errorf("Encode(%q): err=%v len=%d", f, err, len(out))
		}
	}
	if _, err := s.Encode("xml"); err == nil {
		t.Error("Encode(xml) should fail")
	}
}

func TestJSONLWellFormed(t *testing.T) {
	s := sampleSnapshot()
	out := s.JSONL()
	sc := bufio.NewScanner(bytes.NewReader(out))
	counts := map[string]int{}
	for sc.Scan() {
		var rec struct {
			Record string `json:"record"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		counts[rec.Record]++
	}
	want := map[string]int{"meta": 1, "port": NumPorts, "tile": NumTiles,
		"quantum": 8, "event": 3}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("JSONL %q lines = %d, want %d", k, counts[k], n)
		}
	}
}

func TestCSVSections(t *testing.T) {
	s := sampleSnapshot()
	out := string(s.CSV())
	for _, sec := range []string{"#meta\n", "#ports\n", "#tiles\n", "#quanta\n", "#events\n"} {
		if !strings.Contains(out, sec) {
			t.Errorf("CSV missing section %q", sec)
		}
	}
	// Commas inside event detail must be escaped so rows stay rectangular.
	if !strings.Contains(out, "fail-stop,probe; timeout") {
		t.Errorf("CSV event detail not escaped:\n%s", out)
	}
}

func TestPrometheusShape(t *testing.T) {
	s := sampleSnapshot()
	out := string(s.Prometheus())
	for _, want := range []string{
		"# TYPE raw_router_pkts_out_total counter",
		`raw_router_pkts_out_total{port="0"} 30`,
		`raw_router_link_utilization{port="0"} 0.25`,
		"# TYPE raw_router_token_wait_quanta histogram",
		`raw_router_token_wait_quanta_bucket{port="0",le="+Inf"}`,
		`raw_router_tile_cycles_total{tile="0",role="ingress",state="blocked"} 50`,
		`raw_router_recovery_events_total{kind="fail-stop"} 1`,
		"raw_router_dead_port 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	// le buckets must be cumulative: the +Inf bucket equals the count.
	if !strings.Contains(out, `raw_router_token_wait_quanta_bucket{port="0",le="+Inf"} 3`) {
		t.Errorf("cumulative +Inf bucket wrong:\n%s", out)
	}
}

// TestExportDeterminism renders the same logical snapshot twice via
// independently built collectors and demands byte-identical output in
// every format — the property the workers-1-vs-NumCPU test in
// internal/fault extends to full simulations.
func TestExportDeterminism(t *testing.T) {
	a, b := sampleSnapshot(), sampleSnapshot()
	for _, f := range Formats() {
		ea, _ := a.Encode(f)
		eb, _ := b.Encode(f)
		if !bytes.Equal(ea, eb) {
			t.Errorf("format %q not deterministic", f)
		}
	}
}
