// Package telemetry is the router's unified observability plane: a
// low-overhead, always-on counter/metrics layer spanning the raw chip,
// the rotor allocation, the router firmware, and the fault plane.
//
// The design follows the two observability lessons of the switching
// literature the reproduction leans on. The Tiny Tera work showed that
// per-port occupancy and scheduler-decision statistics are the primary
// tool for validating a crossbar design; Data Path Processing in Fast
// Programmable Routers motivates cheap always-on counters on the hot
// path. Concretely:
//
//   - Per-quantum counters: every completed quantum records which ports
//     requested, which were granted, the granted fragment words, and the
//     drops charged during that quantum — the scheduler-decision record.
//   - Histograms: token-wait (quanta between consecutive grants, per
//     port) and blocked cycles per quantum (per tile), in power-of-two
//     buckets so observation is a shift and an increment.
//   - Gauges: per-port link utilization (output words per cycle),
//     derived at snapshot time from counters the chip already keeps.
//   - Flight recorder: fixed-size rings of the last N quanta and the
//     last M typed recovery events (trace.EventKind), so a post-mortem
//     always has the final seconds of scheduler history.
//
// Cost model: a nil *Collector is the disabled plane — every router hook
// guards on it exactly like raw.FaultPlane, so disabled cost is one
// predictable branch per quantum boundary check. Enabled cost is
// amortized per quantum (hundreds of cycles), not per cycle, and
// RecordQuantum performs no allocation: the rings are preallocated and
// the histograms are fixed arrays.
//
// Determinism: the collector is fed only from the simulation's main
// goroutine (the router's cycle hook, workers parked) with values that
// are bit-for-bit identical at any worker count, so every export is too.
package telemetry

import "repro/internal/trace"

// SchemaVersion is the telemetry snapshot schema. Any change to an
// exported field name, wire name, or bucket layout bumps it.
// v2: fabric healing plane — trunk samples gained retrans/frames/acked,
// fabric snapshots gained dead_trunks and the heal record, and the
// event vocabulary gained trunk-kill/trunk-restore/heal-reroute/partition.
// v3: engine observability — snapshots carry the fast engine's
// macro-step engagement (macro_windows/macro_cycles) and the per-cause
// disarm histogram (macro_disarms). Always zero under the reference
// engine; excluded (normalized out) from cross-engine equivalence
// comparisons.
const SchemaVersion = 3

// NumPorts is the paper router's port count; the plane is sized for it.
const NumPorts = 4

// NumTiles is the 4x4 prototype's tile count.
const NumTiles = 16

// Config sizes the flight recorder.
type Config struct {
	// RingQuanta is the per-quantum flight-recorder depth (default 256
	// quanta — about one paper packet time each).
	RingQuanta int
	// RingEvents is the typed-event ring depth (default 64).
	RingEvents int
}

// QuantumSample is what the router pushes once per completed quantum:
// the scheduler decision plus cumulative counters sampled at the
// boundary. Cumulative inputs let the collector compute deltas without
// reaching back into router internals.
type QuantumSample struct {
	// Quantum is the crossbar's completed-quantum count; Cycle the chip
	// cycle the boundary was observed on.
	Quantum, Cycle int64
	// Token is the arbitration token's owner during the quantum.
	Token int
	// ReqMask/GrantMask: bit p set if port p requested / was granted.
	ReqMask, GrantMask uint8
	// FragWords is the granted fragment length per port (0 if idle).
	FragWords [NumPorts]int
	// Dropped is the cumulative per-port drop count (validation failures
	// plus robustness aborts) at the boundary.
	Dropped [NumPorts]int64
	// TileBlocked is each tile's cumulative blocked-cycle count
	// (stalled on send, receive, or cache miss) at the boundary.
	TileBlocked [NumTiles]int64
}

// QuantumRecord is one flight-recorder entry: the per-quantum deltas
// derived from consecutive samples.
type QuantumRecord struct {
	Quantum int64 `json:"q"`
	Cycle   int64 `json:"cycle"`
	Token   uint8 `json:"token"`
	// ReqMask/GrantMask: bit p set if port p requested / was granted.
	ReqMask   uint8 `json:"req"`
	GrantMask uint8 `json:"grant"`
	// Words is the granted fragment words per port this quantum.
	Words [NumPorts]int32 `json:"words"`
	// Drops is the drops charged per port during this quantum.
	Drops [NumPorts]int32 `json:"drops"`
}

// Collector accumulates the metrics plane. The zero Config is usable;
// a nil *Collector is the disabled plane (all methods nil-guard).
type Collector struct {
	cfg Config

	quanta       int64
	grants       [NumPorts]int64
	denies       [NumPorts]int64
	wordsGranted [NumPorts]int64
	tokenWait    [NumPorts]Histogram
	blocked      [NumTiles]Histogram
	lastGrantQ   [NumPorts]int64

	prev     QuantumSample
	havePrev bool

	ring      []QuantumRecord
	ringStart int
	ringLen   int

	events  []trace.Event
	evStart int
	evLen   int
	evTotal int64
}

// New builds a collector; zero Config fields select the defaults.
func New(cfg Config) *Collector {
	if cfg.RingQuanta <= 0 {
		cfg.RingQuanta = 256
	}
	if cfg.RingEvents <= 0 {
		cfg.RingEvents = 64
	}
	c := &Collector{cfg: cfg}
	c.ring = make([]QuantumRecord, cfg.RingQuanta)
	c.events = make([]trace.Event, cfg.RingEvents)
	for p := range c.lastGrantQ {
		c.lastGrantQ[p] = -1
	}
	return c
}

// Enabled reports whether the plane is collecting (false on nil).
func (c *Collector) Enabled() bool { return c != nil }

// Quanta returns the number of quantum boundaries recorded.
func (c *Collector) Quanta() int64 {
	if c == nil {
		return 0
	}
	return c.quanta
}

// RecordQuantum ingests one quantum boundary. It must be called from the
// simulation's main goroutine, with samples in quantum order. It
// performs no allocation.
func (c *Collector) RecordQuantum(s QuantumSample) {
	if c == nil {
		return
	}
	c.quanta++

	rec := QuantumRecord{
		Quantum:   s.Quantum,
		Cycle:     s.Cycle,
		Token:     uint8(s.Token),
		ReqMask:   s.ReqMask,
		GrantMask: s.GrantMask,
	}
	for p := 0; p < NumPorts; p++ {
		bit := uint8(1) << p
		if s.GrantMask&bit != 0 {
			c.grants[p]++
			c.wordsGranted[p] += int64(s.FragWords[p])
			rec.Words[p] = int32(s.FragWords[p])
			// Token wait: quanta since this port's previous grant
			// (first grant waits from quantum 0).
			wait := s.Quantum - c.lastGrantQ[p] - 1
			if c.lastGrantQ[p] < 0 {
				wait = s.Quantum - 1
				if wait < 0 {
					wait = 0
				}
			}
			c.tokenWait[p].Observe(wait)
			c.lastGrantQ[p] = s.Quantum
		} else if s.ReqMask&bit != 0 {
			c.denies[p]++
		}
		if c.havePrev {
			rec.Drops[p] = int32(s.Dropped[p] - c.prev.Dropped[p])
		} else {
			rec.Drops[p] = int32(s.Dropped[p])
		}
	}
	for t := 0; t < NumTiles; t++ {
		d := s.TileBlocked[t]
		if c.havePrev {
			d -= c.prev.TileBlocked[t]
		}
		c.blocked[t].Observe(d)
	}
	c.prev = s
	c.havePrev = true

	// Ring push (overwrite oldest when full).
	if c.ringLen < len(c.ring) {
		c.ring[(c.ringStart+c.ringLen)%len(c.ring)] = rec
		c.ringLen++
	} else {
		c.ring[c.ringStart] = rec
		c.ringStart = (c.ringStart + 1) % len(c.ring)
	}
}

// RecordEvent ingests one typed recovery event into the flight recorder.
// Nil-safe; main goroutine only.
func (c *Collector) RecordEvent(e trace.Event) {
	if c == nil {
		return
	}
	c.evTotal++
	if c.evLen < len(c.events) {
		c.events[(c.evStart+c.evLen)%len(c.events)] = e
		c.evLen++
	} else {
		c.events[c.evStart] = e
		c.evStart = (c.evStart + 1) % len(c.events)
	}
}

// RecentQuanta copies the flight-recorder ring, oldest first.
func (c *Collector) RecentQuanta() []QuantumRecord {
	if c == nil || c.ringLen == 0 {
		return nil
	}
	out := make([]QuantumRecord, c.ringLen)
	for i := 0; i < c.ringLen; i++ {
		out[i] = c.ring[(c.ringStart+i)%len(c.ring)]
	}
	return out
}

// RecentEvents copies the typed-event ring, oldest first.
func (c *Collector) RecentEvents() []trace.Event {
	if c == nil || c.evLen == 0 {
		return nil
	}
	out := make([]trace.Event, c.evLen)
	for i := 0; i < c.evLen; i++ {
		out[i] = c.events[(c.evStart+i)%len(c.events)]
	}
	return out
}
