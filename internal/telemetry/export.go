package telemetry

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Exporters. All three render the same Snapshot and are deterministic:
// fixed field order (struct-tag order for JSONL, literal headers for CSV,
// sorted-by-construction series for Prometheus), shortest-float
// formatting, no timestamps, no host identity. Two runs that simulate
// the same cycles produce byte-identical exports at any worker count.

// Formats lists the supported export format names.
func Formats() []string { return []string{"jsonl", "csv", "prom"} }

// Encode renders the snapshot in the named format ("jsonl", "csv",
// "prom").
func (s *Snapshot) Encode(format string) ([]byte, error) {
	switch format {
	case "jsonl":
		return s.JSONL(), nil
	case "csv":
		return s.CSV(), nil
	case "prom":
		return s.Prometheus(), nil
	}
	return nil, fmt.Errorf("telemetry: unknown export format %q (have %s)",
		format, strings.Join(Formats(), ", "))
}

// jsonlMeta is the first JSONL line: the snapshot scalars.
type jsonlMeta struct {
	Record        string  `json:"record"`
	Schema        int     `json:"schema"`
	Cycle         int64   `json:"cycle"`
	ClockHz       float64 `json:"clock_hz"`
	Quanta        int64   `json:"quanta"`
	DeadPort      int     `json:"dead_port"`
	ProbationPort int     `json:"probation_port"`
	Failed        bool    `json:"failed"`
	FabricLost    int64   `json:"fabric_lost"`
	MacroWindows  int64   `json:"macro_windows"`
	MacroCycles   int64   `json:"macro_cycles"`
}

type jsonlMacroDisarm struct {
	Record string `json:"record"`
	MacroDisarm
}

type jsonlPort struct {
	Record string `json:"record"`
	PortSnap
}

type jsonlTile struct {
	Record string `json:"record"`
	TileSnap
}

type jsonlQuantum struct {
	Record string `json:"record"`
	QuantumRecord
}

type jsonlEvent struct {
	Record string `json:"record"`
	EventRecord
}

// JSONL renders one JSON object per line: a meta line, one line per
// port, one per tile, one per flight-recorder quantum, one per event.
func (s *Snapshot) JSONL() []byte {
	var b strings.Builder
	line := func(v any) {
		j, err := json.Marshal(v)
		if err != nil {
			panic("telemetry: JSONL marshal: " + err.Error())
		}
		b.Write(j)
		b.WriteByte('\n')
	}
	line(jsonlMeta{
		Record: "meta", Schema: s.Schema, Cycle: s.Cycle, ClockHz: s.ClockHz,
		Quanta: s.Quanta, DeadPort: s.DeadPort, ProbationPort: s.ProbationPort,
		Failed: s.Failed, FabricLost: s.FabricLost,
		MacroWindows: s.MacroWindows, MacroCycles: s.MacroCycles,
	})
	for _, d := range s.MacroDisarms {
		line(jsonlMacroDisarm{Record: "macro_disarm", MacroDisarm: d})
	}
	for p := range s.Ports {
		line(jsonlPort{Record: "port", PortSnap: s.Ports[p]})
	}
	for t := range s.Tiles {
		line(jsonlTile{Record: "tile", TileSnap: s.Tiles[t]})
	}
	for _, q := range s.Recent {
		line(jsonlQuantum{Record: "quantum", QuantumRecord: q})
	}
	for _, e := range s.Events {
		line(jsonlEvent{Record: "event", EventRecord: e})
	}
	return []byte(b.String())
}

func csvF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// CSV renders four headed sections (#meta, #ports, #tiles, #quanta,
// #events), each a plain comma-separated table.
func (s *Snapshot) CSV() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "#meta\nschema,cycle,clock_hz,quanta,dead_port,probation_port,failed,fabric_lost,macro_windows,macro_cycles\n")
	fmt.Fprintf(&b, "%d,%d,%s,%d,%d,%d,%v,%d,%d,%d\n", s.Schema, s.Cycle, csvF(s.ClockHz),
		s.Quanta, s.DeadPort, s.ProbationPort, s.Failed, s.FabricLost,
		s.MacroWindows, s.MacroCycles)

	if len(s.MacroDisarms) > 0 {
		b.WriteString("#macro_disarms\ncause,count\n")
		for _, d := range s.MacroDisarms {
			fmt.Fprintf(&b, "%s,%d\n", d.Cause, d.Count)
		}
	}

	b.WriteString("#ports\nport,accepted,dropped,denied,frags_sent,pkts_in,pkts_out," +
		"reassembled,lookups,mcast_in,mcast_copies,abort_dropped,underruns," +
		"reprobes,recovered,flap_drops,words_in,words_out," +
		"granted_quanta,denied_quanta,words_granted,link_utilization," +
		"token_wait_count,token_wait_sum,token_wait_max\n")
	for p := range s.Ports {
		ps := &s.Ports[p]
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d\n",
			ps.Port, ps.Accepted, ps.Dropped, ps.Denied, ps.FragsSent, ps.PktsIn,
			ps.PktsOut, ps.Reassembled, ps.Lookups, ps.McastIn, ps.McastCopies,
			ps.AbortDropped, ps.Underruns, ps.Reprobes, ps.Recovered, ps.FlapDrops,
			ps.WordsIn, ps.WordsOut, ps.GrantedQuanta, ps.DeniedQuanta,
			ps.WordsGranted, csvF(ps.LinkUtilization),
			ps.TokenWait.Count, ps.TokenWait.Sum, ps.TokenWait.Max)
	}

	b.WriteString("#tiles\ntile,role,run,blocked,idle,blocked_pq_count,blocked_pq_sum,blocked_pq_max\n")
	for t := range s.Tiles {
		ts := &s.Tiles[t]
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%d,%d,%d\n", ts.Tile, ts.Role,
			ts.Run, ts.Blocked, ts.Idle,
			ts.BlockedPerQuantum.Count, ts.BlockedPerQuantum.Sum, ts.BlockedPerQuantum.Max)
	}

	b.WriteString("#quanta\nquantum,cycle,token,req_mask,grant_mask,w0,w1,w2,w3,d0,d1,d2,d3\n")
	for _, q := range s.Recent {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			q.Quantum, q.Cycle, q.Token, q.ReqMask, q.GrantMask,
			q.Words[0], q.Words[1], q.Words[2], q.Words[3],
			q.Drops[0], q.Drops[1], q.Drops[2], q.Drops[3])
	}

	b.WriteString("#events\ncycle,port,kind,detail\n")
	for _, e := range s.Events {
		fmt.Fprintf(&b, "%d,%d,%s,%s\n", e.Cycle, e.Port, e.Kind,
			strings.ReplaceAll(e.Detail, ",", ";"))
	}
	return []byte(b.String())
}

func promF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Counter series carry the _total suffix;
// histograms expose cumulative le buckets.
func (s *Snapshot) Prometheus() []byte {
	var b strings.Builder
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	gauge("raw_router_schema", "Telemetry snapshot schema version.")
	fmt.Fprintf(&b, "raw_router_schema %d\n", s.Schema)
	gauge("raw_router_cycle", "Simulated chip cycle at snapshot.")
	fmt.Fprintf(&b, "raw_router_cycle %d\n", s.Cycle)
	counter("raw_router_quanta_total", "Completed crossbar quanta observed by the collector.")
	fmt.Fprintf(&b, "raw_router_quanta_total %d\n", s.Quanta)
	gauge("raw_router_dead_port", "Masked-out port in degraded mode (-1 healthy).")
	fmt.Fprintf(&b, "raw_router_dead_port %d\n", s.DeadPort)
	gauge("raw_router_probation_port", "Re-admitted port still in probation (-1 none).")
	fmt.Fprintf(&b, "raw_router_probation_port %d\n", s.ProbationPort)
	gauge("raw_router_failed", "1 if the router fail-stopped.")
	failed := 0
	if s.Failed {
		failed = 1
	}
	fmt.Fprintf(&b, "raw_router_failed %d\n", failed)
	counter("raw_router_fabric_lost_total", "Packets lost inside the fabric by degraded-mode resets.")
	fmt.Fprintf(&b, "raw_router_fabric_lost_total %d\n", s.FabricLost)
	counter("raw_router_macro_windows_total", "Fast-engine macro-step windows executed (0 on the reference engine).")
	fmt.Fprintf(&b, "raw_router_macro_windows_total %d\n", s.MacroWindows)
	counter("raw_router_macro_cycles_total", "Cycles covered by fast-engine macro-step windows.")
	fmt.Fprintf(&b, "raw_router_macro_cycles_total %d\n", s.MacroCycles)
	if len(s.MacroDisarms) > 0 {
		counter("raw_router_macro_disarms_total", "Macro-step windows declined, by cause.")
		for _, d := range s.MacroDisarms {
			fmt.Fprintf(&b, "raw_router_macro_disarms_total{cause=\"%s\"} %d\n", d.Cause, d.Count)
		}
	}

	perPort := func(name, help, kind string, val func(p *PortSnap) string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for p := range s.Ports {
			fmt.Fprintf(&b, "%s{port=\"%d\"} %s\n", name, p, val(&s.Ports[p]))
		}
	}
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	perPort("raw_router_accepted_total", "Packets passing ingress validation.", "counter",
		func(p *PortSnap) string { return i(p.Accepted) })
	perPort("raw_router_dropped_total", "Packets failing ingress validation.", "counter",
		func(p *PortSnap) string { return i(p.Dropped) })
	perPort("raw_router_denied_total", "Quanta requested and lost to arbitration.", "counter",
		func(p *PortSnap) string { return i(p.Denied) })
	perPort("raw_router_frags_sent_total", "Fragments streamed into the crossbar.", "counter",
		func(p *PortSnap) string { return i(p.FragsSent) })
	perPort("raw_router_pkts_in_total", "Packets fully streamed in at ingress.", "counter",
		func(p *PortSnap) string { return i(p.PktsIn) })
	perPort("raw_router_pkts_out_total", "Packets delivered at egress.", "counter",
		func(p *PortSnap) string { return i(p.PktsOut) })
	perPort("raw_router_abort_dropped_total", "Packets abandoned by robustness machinery.", "counter",
		func(p *PortSnap) string { return i(p.AbortDropped) })
	perPort("raw_router_underrun_quanta_total", "Quanta an ingress idled awaiting its line card.", "counter",
		func(p *PortSnap) string { return i(p.Underruns) })
	perPort("raw_router_words_out_total", "Words emitted on the output pins.", "counter",
		func(p *PortSnap) string { return i(p.WordsOut) })
	perPort("raw_router_granted_quanta_total", "Quanta the scheduler granted this port.", "counter",
		func(p *PortSnap) string { return i(p.GrantedQuanta) })
	perPort("raw_router_denied_quanta_total", "Quanta this port requested and was not granted.", "counter",
		func(p *PortSnap) string { return i(p.DeniedQuanta) })
	perPort("raw_router_words_granted_total", "Granted fragment words.", "counter",
		func(p *PortSnap) string { return i(p.WordsGranted) })
	perPort("raw_router_link_utilization", "Output-link occupancy (words per cycle).", "gauge",
		func(p *PortSnap) string { return promF(p.LinkUtilization) })

	// Token-wait histogram per port.
	name := "raw_router_token_wait_quanta"
	fmt.Fprintf(&b, "# HELP %s Quanta a granted port waited since its previous grant.\n# TYPE %s histogram\n", name, name)
	for p := range s.Ports {
		h := &s.Ports[p].TokenWait
		var cum int64
		for bi := 0; bi < NumBuckets; bi++ {
			cum += h.Buckets[bi]
			le := "+Inf"
			if ub := BucketUpper(bi); ub >= 0 {
				le = strconv.FormatInt(ub, 10)
			}
			fmt.Fprintf(&b, "%s_bucket{port=\"%d\",le=\"%s\"} %d\n", name, p, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum{port=\"%d\"} %d\n", name, p, h.Sum)
		fmt.Fprintf(&b, "%s_count{port=\"%d\"} %d\n", name, p, h.Count)
	}

	// Per-tile activity + blocked-per-quantum histogram.
	fmt.Fprintf(&b, "# HELP raw_router_tile_cycles_total Cumulative tile cycles by state.\n# TYPE raw_router_tile_cycles_total counter\n")
	for t := range s.Tiles {
		ts := &s.Tiles[t]
		fmt.Fprintf(&b, "raw_router_tile_cycles_total{tile=\"%d\",role=\"%s\",state=\"run\"} %d\n", ts.Tile, ts.Role, ts.Run)
		fmt.Fprintf(&b, "raw_router_tile_cycles_total{tile=\"%d\",role=\"%s\",state=\"blocked\"} %d\n", ts.Tile, ts.Role, ts.Blocked)
		fmt.Fprintf(&b, "raw_router_tile_cycles_total{tile=\"%d\",role=\"%s\",state=\"idle\"} %d\n", ts.Tile, ts.Role, ts.Idle)
	}
	name = "raw_router_tile_blocked_cycles_per_quantum"
	fmt.Fprintf(&b, "# HELP %s Blocked cycles per quantum per tile.\n# TYPE %s histogram\n", name, name)
	for t := range s.Tiles {
		ts := &s.Tiles[t]
		h := &ts.BlockedPerQuantum
		var cum int64
		for bi := 0; bi < NumBuckets; bi++ {
			cum += h.Buckets[bi]
			le := "+Inf"
			if ub := BucketUpper(bi); ub >= 0 {
				le = strconv.FormatInt(ub, 10)
			}
			fmt.Fprintf(&b, "%s_bucket{tile=\"%d\",le=\"%s\"} %d\n", name, ts.Tile, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum{tile=\"%d\"} %d\n", name, ts.Tile, h.Sum)
		fmt.Fprintf(&b, "%s_count{tile=\"%d\"} %d\n", name, ts.Tile, h.Count)
	}

	counter("raw_router_recovery_events_total", "Typed recovery events by kind.")
	// Aggregate by kind in wire-name order for a deterministic series set.
	counts := map[string]int64{}
	for _, e := range s.Events {
		counts[e.Kind]++
	}
	for _, k := range []string{"line-down", "line-up", "degrade", "restore-drain",
		"restore-rejected", "readmit", "live", "fail-stop",
		"slo-violation", "slo-clear", "drain-start", "checkpoint"} {
		if n, ok := counts[k]; ok {
			fmt.Fprintf(&b, "raw_router_recovery_events_total{kind=\"%s\"} %d\n", k, n)
		}
	}
	return []byte(b.String())
}
