package telemetry

import (
	"testing"

	"repro/internal/trace"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 15, 16}, {(1 << 16) - 1, 16}, {1 << 16, 17}, {1 << 40, 17},
	}
	for _, c := range cases {
		before := h.Buckets[c.bucket]
		h.Observe(c.v)
		if h.Buckets[c.bucket] != before+1 {
			t.Errorf("Observe(%d): bucket %d not incremented", c.v, c.bucket)
		}
	}
	if h.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count, len(cases))
	}
	if h.Max != 1<<40 {
		t.Errorf("Max = %d, want %d", h.Max, int64(1)<<40)
	}
}

func TestBucketUpper(t *testing.T) {
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
	if BucketUpper(3) != 7 {
		t.Errorf("BucketUpper(3) = %d, want 7", BucketUpper(3))
	}
	if BucketUpper(NumBuckets-1) != -1 {
		t.Errorf("BucketUpper(last) = %d, want -1 (+Inf)", BucketUpper(NumBuckets-1))
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.RecordQuantum(QuantumSample{Quantum: 1})
	c.RecordEvent(trace.Event{Kind: trace.EvDegrade})
	if c.Quanta() != 0 {
		t.Fatal("nil collector counted quanta")
	}
	if c.RecentQuanta() != nil || c.RecentEvents() != nil {
		t.Fatal("nil collector returned ring contents")
	}
	s := c.Snapshot(Meta{Cycle: 100})
	if s.Cycle != 100 || s.Quanta != 0 || s.Recent != nil || s.Events != nil {
		t.Fatalf("nil-collector snapshot wrong: %+v", s)
	}
	// All three exporters must work on a counters-only snapshot.
	for _, f := range Formats() {
		if _, err := s.Encode(f); err != nil {
			t.Errorf("Encode(%q) on nil-collector snapshot: %v", f, err)
		}
	}
}

func TestRecordQuantumDeltas(t *testing.T) {
	c := New(Config{})
	c.RecordQuantum(QuantumSample{
		Quantum: 1, Cycle: 300, Token: 0,
		ReqMask: 0b0011, GrantMask: 0b0001,
		FragWords: [NumPorts]int{24, 0, 0, 0},
		Dropped:   [NumPorts]int64{2, 0, 0, 0},
	})
	c.RecordQuantum(QuantumSample{
		Quantum: 2, Cycle: 600, Token: 1,
		ReqMask: 0b0011, GrantMask: 0b0010,
		FragWords: [NumPorts]int{0, 16, 0, 0},
		Dropped:   [NumPorts]int64{5, 1, 0, 0},
	})
	if c.Quanta() != 2 {
		t.Fatalf("Quanta = %d, want 2", c.Quanta())
	}
	if c.grants[0] != 1 || c.grants[1] != 1 || c.denies[0] != 1 || c.denies[1] != 1 {
		t.Errorf("grants/denies wrong: %v %v", c.grants, c.denies)
	}
	if c.wordsGranted[0] != 24 || c.wordsGranted[1] != 16 {
		t.Errorf("wordsGranted wrong: %v", c.wordsGranted)
	}
	recent := c.RecentQuanta()
	if len(recent) != 2 {
		t.Fatalf("RecentQuanta len = %d, want 2", len(recent))
	}
	// First record's drops are the raw cumulative value; second is a delta.
	if recent[0].Drops[0] != 2 {
		t.Errorf("first record drops = %d, want 2", recent[0].Drops[0])
	}
	if recent[1].Drops[0] != 3 || recent[1].Drops[1] != 1 {
		t.Errorf("second record drops = %v, want [3 1 0 0]", recent[1].Drops)
	}
}

func TestTokenWait(t *testing.T) {
	c := New(Config{})
	grant := func(q int64, port int) {
		c.RecordQuantum(QuantumSample{
			Quantum: q, GrantMask: 1 << port, ReqMask: 1 << port,
		})
	}
	grant(1, 0) // first grant: wait 0
	grant(2, 0) // consecutive: wait 0
	grant(5, 0) // skipped 3,4: wait 2
	h := c.tokenWait[0]
	if h.Count != 3 || h.Sum != 2 || h.Max != 2 {
		t.Errorf("token-wait hist = count %d sum %d max %d, want 3 2 2", h.Count, h.Sum, h.Max)
	}
}

func TestRingWraparound(t *testing.T) {
	c := New(Config{RingQuanta: 4, RingEvents: 2})
	for q := int64(1); q <= 10; q++ {
		c.RecordQuantum(QuantumSample{Quantum: q, Cycle: q * 100})
	}
	recent := c.RecentQuanta()
	if len(recent) != 4 {
		t.Fatalf("ring len = %d, want 4", len(recent))
	}
	for i, want := range []int64{7, 8, 9, 10} {
		if recent[i].Quantum != want {
			t.Errorf("ring[%d].Quantum = %d, want %d (oldest first)", i, recent[i].Quantum, want)
		}
	}
	for i := 0; i < 5; i++ {
		c.RecordEvent(trace.Event{Cycle: int64(i), Kind: trace.EvLineDown})
	}
	evs := c.RecentEvents()
	if len(evs) != 2 || evs[0].Cycle != 3 || evs[1].Cycle != 4 {
		t.Errorf("event ring = %+v, want cycles 3,4 oldest first", evs)
	}
}

func TestSnapshotImmutable(t *testing.T) {
	c := New(Config{})
	c.RecordQuantum(QuantumSample{Quantum: 1, GrantMask: 1, ReqMask: 1,
		FragWords: [NumPorts]int{8, 0, 0, 0}})
	var m Meta
	m.Cycle = 1000
	m.Ports[0].PktsOut = 7
	m.Ports[0].WordsOut = 500
	s := c.Snapshot(m)
	if s.Ports[0].PktsOut != 7 || s.Ports[0].GrantedQuanta != 1 {
		t.Fatalf("snapshot counters wrong: %+v", s.Ports[0])
	}
	if s.Ports[0].LinkUtilization != 0.5 {
		t.Fatalf("LinkUtilization = %v, want 0.5", s.Ports[0].LinkUtilization)
	}
	// Mutating the collector after the snapshot must not change it.
	c.RecordQuantum(QuantumSample{Quantum: 2, GrantMask: 1, ReqMask: 1,
		FragWords: [NumPorts]int{8, 0, 0, 0}})
	if s.Quanta != 1 || len(s.Recent) != 1 || s.Ports[0].GrantedQuanta != 1 {
		t.Fatal("snapshot mutated by later RecordQuantum")
	}
}
