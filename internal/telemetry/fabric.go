package telemetry

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Fabric-plane telemetry: the N-chip cluster's inter-chip accounting.
// Chip-level planes stay per-chip Snapshots; the fabric contributes what
// no single chip can see — per-trunk per-direction word conservation,
// bisection-bandwidth utilization, and the chip-lifecycle event log.
// Like Snapshot, a FabricSnapshot is immutable and its exports are
// byte-identical at any worker count and under either cycle engine.

// TrunkDirSample is one direction of one trunk: conservation counters
// (Drained == Delivered + Dropped + Held at any instant) plus the
// delivered-words-per-cycle utilization gauge (1.0 = the pin limit).
type TrunkDirSample struct {
	Drained     int64   `json:"drained"`
	Delivered   int64   `json:"delivered"`
	Dropped     int64   `json:"dropped"`
	Held        int64   `json:"held"`
	Utilization float64 `json:"utilization"`
}

// TrunkSample is one inter-chip link's accounting: endpoints and both
// directions (Dir[0] = A->B, Dir[1] = B->A).
type TrunkSample struct {
	Trunk int `json:"trunk"`
	A     int `json:"a"`
	APort int `json:"a_port"`
	B     int `json:"b"`
	BPort int `json:"b_port"`

	Dir [2]TrunkDirSample `json:"dir"`
}

// FabricSnapshot is the immutable fabric-plane view.
type FabricSnapshot struct {
	Schema    int    `json:"schema"`
	Cycle     int64  `json:"cycle"`
	Topology  string `json:"topology"`
	Chips     int    `json:"chips"`
	Externals int    `json:"externals"`
	// DeadChips lists currently-killed chip slots, ascending.
	DeadChips []int `json:"dead_chips,omitempty"`

	Trunks []TrunkSample `json:"trunks"`

	// BisectionWords sums delivered words (both directions) over the
	// trunks crossing the canonical bisection cut; BisectionUtilization
	// normalizes by the cut's word-per-cycle capacity.
	BisectionWords       int64   `json:"bisection_words"`
	BisectionUtilization float64 `json:"bisection_utilization"`

	// Events is the fabric lifecycle log (chip-kill, chip-restore; Port
	// carries the chip index), oldest first.
	Events []EventRecord `json:"events"`
}

// Encode renders the snapshot in the named format ("jsonl", "csv",
// "prom") — the same format set as chip-level Snapshot.Encode.
func (s *FabricSnapshot) Encode(format string) ([]byte, error) {
	switch format {
	case "jsonl":
		return s.JSONL(), nil
	case "csv":
		return s.CSV(), nil
	case "prom":
		return s.Prometheus(), nil
	}
	return nil, fmt.Errorf("telemetry: unknown export format %q (have %s)",
		format, strings.Join(Formats(), ", "))
}

type jsonlFabricMeta struct {
	Record               string  `json:"record"`
	Schema               int     `json:"schema"`
	Cycle                int64   `json:"cycle"`
	Topology             string  `json:"topology"`
	Chips                int     `json:"chips"`
	Externals            int     `json:"externals"`
	DeadChips            []int   `json:"dead_chips,omitempty"`
	BisectionWords       int64   `json:"bisection_words"`
	BisectionUtilization float64 `json:"bisection_utilization"`
}

type jsonlTrunk struct {
	Record string `json:"record"`
	TrunkSample
}

// JSONL renders one JSON object per line: a meta line, one line per
// trunk, one per lifecycle event.
func (s *FabricSnapshot) JSONL() []byte {
	var b strings.Builder
	line := func(v any) {
		j, err := json.Marshal(v)
		if err != nil {
			panic("telemetry: fabric JSONL marshal: " + err.Error())
		}
		b.Write(j)
		b.WriteByte('\n')
	}
	line(jsonlFabricMeta{
		Record: "fabric", Schema: s.Schema, Cycle: s.Cycle, Topology: s.Topology,
		Chips: s.Chips, Externals: s.Externals, DeadChips: s.DeadChips,
		BisectionWords: s.BisectionWords, BisectionUtilization: s.BisectionUtilization,
	})
	for _, t := range s.Trunks {
		line(jsonlTrunk{Record: "trunk", TrunkSample: t})
	}
	for _, e := range s.Events {
		line(jsonlEvent{Record: "event", EventRecord: e})
	}
	return []byte(b.String())
}

// CSV renders three headed sections (#fabric, #trunks, #events).
func (s *FabricSnapshot) CSV() []byte {
	var b strings.Builder
	b.WriteString("#fabric\nschema,cycle,topology,chips,externals,dead_chips,bisection_words,bisection_utilization\n")
	dead := make([]string, len(s.DeadChips))
	for i, c := range s.DeadChips {
		dead[i] = strconv.Itoa(c)
	}
	fmt.Fprintf(&b, "%d,%d,%s,%d,%d,%s,%d,%s\n", s.Schema, s.Cycle, s.Topology,
		s.Chips, s.Externals, strings.Join(dead, ";"), s.BisectionWords,
		csvF(s.BisectionUtilization))

	b.WriteString("#trunks\ntrunk,a,a_port,b,b_port," +
		"ab_drained,ab_delivered,ab_dropped,ab_held,ab_utilization," +
		"ba_drained,ba_delivered,ba_dropped,ba_held,ba_utilization\n")
	for _, t := range s.Trunks {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d,%s\n",
			t.Trunk, t.A, t.APort, t.B, t.BPort,
			t.Dir[0].Drained, t.Dir[0].Delivered, t.Dir[0].Dropped, t.Dir[0].Held,
			csvF(t.Dir[0].Utilization),
			t.Dir[1].Drained, t.Dir[1].Delivered, t.Dir[1].Dropped, t.Dir[1].Held,
			csvF(t.Dir[1].Utilization))
	}

	b.WriteString("#events\ncycle,chip,kind,detail\n")
	for _, e := range s.Events {
		fmt.Fprintf(&b, "%d,%d,%s,%s\n", e.Cycle, e.Port, e.Kind,
			strings.ReplaceAll(e.Detail, ",", ";"))
	}
	return []byte(b.String())
}

// Prometheus renders the fabric plane in the text exposition format.
func (s *FabricSnapshot) Prometheus() []byte {
	var b strings.Builder
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge("raw_fabric_schema", "Fabric telemetry snapshot schema version.")
	fmt.Fprintf(&b, "raw_fabric_schema %d\n", s.Schema)
	gauge("raw_fabric_cycle", "Simulated fabric cycle at snapshot.")
	fmt.Fprintf(&b, "raw_fabric_cycle %d\n", s.Cycle)
	gauge("raw_fabric_chips", "Chip slots in the fabric.")
	fmt.Fprintf(&b, "raw_fabric_chips{topology=%q} %d\n", s.Topology, s.Chips)
	gauge("raw_fabric_dead_chips", "Currently-killed chip slots.")
	fmt.Fprintf(&b, "raw_fabric_dead_chips %d\n", len(s.DeadChips))
	counter("raw_fabric_bisection_words_total", "Delivered words crossing the bisection cut.")
	fmt.Fprintf(&b, "raw_fabric_bisection_words_total %d\n", s.BisectionWords)
	gauge("raw_fabric_bisection_utilization", "Bisection occupancy (delivered words per cycle per cut capacity).")
	fmt.Fprintf(&b, "raw_fabric_bisection_utilization %s\n", promF(s.BisectionUtilization))

	perDir := func(name, help string, val func(d *TrunkDirSample) string, kind string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for ti := range s.Trunks {
			t := &s.Trunks[ti]
			for d := 0; d < 2; d++ {
				dir := "ab"
				if d == 1 {
					dir = "ba"
				}
				fmt.Fprintf(&b, "%s{trunk=\"%d\",dir=\"%s\"} %s\n", name, t.Trunk, dir, val(&t.Dir[d]))
			}
		}
	}
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	perDir("raw_fabric_trunk_drained_words_total", "Words taken off the source chip's trunk pins.",
		func(d *TrunkDirSample) string { return i(d.Drained) }, "counter")
	perDir("raw_fabric_trunk_delivered_words_total", "Words delivered onto the destination chip's trunk pins.",
		func(d *TrunkDirSample) string { return i(d.Delivered) }, "counter")
	perDir("raw_fabric_trunk_dropped_words_total", "Words dropped on the trunk (dead endpoint or bad frame).",
		func(d *TrunkDirSample) string { return i(d.Dropped) }, "counter")
	perDir("raw_fabric_trunk_held_words", "Words held in the trunk framer awaiting a whole packet.",
		func(d *TrunkDirSample) string { return i(d.Held) }, "gauge")
	perDir("raw_fabric_trunk_utilization", "Trunk occupancy (delivered words per cycle).",
		func(d *TrunkDirSample) string { return promF(d.Utilization) }, "gauge")

	counter("raw_fabric_chip_events_total", "Fabric lifecycle events by kind.")
	counts := map[string]int64{}
	for _, e := range s.Events {
		counts[e.Kind]++
	}
	for _, k := range []string{"chip-kill", "chip-restore"} {
		if n, ok := counts[k]; ok {
			fmt.Fprintf(&b, "raw_fabric_chip_events_total{kind=%q} %d\n", k, n)
		}
	}
	return []byte(b.String())
}
