package telemetry

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Fabric-plane telemetry: the N-chip cluster's inter-chip accounting.
// Chip-level planes stay per-chip Snapshots; the fabric contributes what
// no single chip can see — per-trunk per-direction word conservation,
// bisection-bandwidth utilization, and the chip-lifecycle event log.
// Like Snapshot, a FabricSnapshot is immutable and its exports are
// byte-identical at any worker count and under either cycle engine.

// TrunkDirSample is one direction of one trunk: conservation counters
// (Drained == Delivered + Dropped + Retrans + Held at any instant) plus
// the delivered-words-per-cycle utilization gauge (1.0 = the pin limit)
// and the ARQ frame counters (Frames left the framer, Acked confirmed
// onto destination pins, Retrans words moved to retransmit custody).
type TrunkDirSample struct {
	Drained     int64   `json:"drained"`
	Delivered   int64   `json:"delivered"`
	Dropped     int64   `json:"dropped"`
	Retrans     int64   `json:"retrans"`
	Frames      int64   `json:"frames"`
	Acked       int64   `json:"acked"`
	Held        int64   `json:"held"`
	Utilization float64 `json:"utilization"`
}

// DropSample is one end-to-end ledger cause with its word count.
type DropSample struct {
	Cause string `json:"cause"`
	Words int64  `json:"words"`
}

// HealSample is the healing plane's aggregate view: heal epochs, table
// reroutes, ARQ retransmission, and the end-to-end delivery ledger.
// Present only when the fabric runs with healing enabled.
type HealSample struct {
	Enabled       bool         `json:"enabled"`
	Epochs        int64        `json:"epochs"`
	Reroutes      int64        `json:"reroutes"`
	RetransFrames int64        `json:"retrans_frames"`
	RetransWords  int64        `json:"retrans_words"`
	PendingFrames int64        `json:"pending_frames"`
	PendingWords  int64        `json:"pending_words"`
	Injected      int64        `json:"injected"`
	Delivered     int64        `json:"delivered"`
	DupWords      int64        `json:"dup_words"`
	Partitioned   bool         `json:"partitioned"`
	Dropped       []DropSample `json:"dropped,omitempty"`
}

// TrunkSample is one inter-chip link's accounting: endpoints and both
// directions (Dir[0] = A->B, Dir[1] = B->A).
type TrunkSample struct {
	Trunk int `json:"trunk"`
	A     int `json:"a"`
	APort int `json:"a_port"`
	B     int `json:"b"`
	BPort int `json:"b_port"`

	Dir [2]TrunkDirSample `json:"dir"`
}

// FabricSnapshot is the immutable fabric-plane view.
type FabricSnapshot struct {
	Schema    int    `json:"schema"`
	Cycle     int64  `json:"cycle"`
	Topology  string `json:"topology"`
	Chips     int    `json:"chips"`
	Externals int    `json:"externals"`
	// DeadChips lists currently-killed chip slots, ascending.
	DeadChips []int `json:"dead_chips,omitempty"`
	// DeadTrunks lists currently-dark trunk indices, ascending.
	DeadTrunks []int `json:"dead_trunks,omitempty"`

	Trunks []TrunkSample `json:"trunks"`

	// Heal carries the healing plane's aggregates when it is enabled.
	Heal *HealSample `json:"heal,omitempty"`

	// BisectionWords sums delivered words (both directions) over the
	// trunks crossing the canonical bisection cut; BisectionUtilization
	// normalizes by the cut's word-per-cycle capacity.
	BisectionWords       int64   `json:"bisection_words"`
	BisectionUtilization float64 `json:"bisection_utilization"`

	// Events is the fabric lifecycle log (chip-kill, chip-restore; Port
	// carries the chip index), oldest first.
	Events []EventRecord `json:"events"`
}

// Encode renders the snapshot in the named format ("jsonl", "csv",
// "prom") — the same format set as chip-level Snapshot.Encode.
func (s *FabricSnapshot) Encode(format string) ([]byte, error) {
	switch format {
	case "jsonl":
		return s.JSONL(), nil
	case "csv":
		return s.CSV(), nil
	case "prom":
		return s.Prometheus(), nil
	}
	return nil, fmt.Errorf("telemetry: unknown export format %q (have %s)",
		format, strings.Join(Formats(), ", "))
}

type jsonlFabricMeta struct {
	Record               string  `json:"record"`
	Schema               int     `json:"schema"`
	Cycle                int64   `json:"cycle"`
	Topology             string  `json:"topology"`
	Chips                int     `json:"chips"`
	Externals            int     `json:"externals"`
	DeadChips            []int   `json:"dead_chips,omitempty"`
	DeadTrunks           []int   `json:"dead_trunks,omitempty"`
	BisectionWords       int64   `json:"bisection_words"`
	BisectionUtilization float64 `json:"bisection_utilization"`
}

type jsonlHeal struct {
	Record string `json:"record"`
	*HealSample
}

type jsonlTrunk struct {
	Record string `json:"record"`
	TrunkSample
}

// JSONL renders one JSON object per line: a meta line, one line per
// trunk, one per lifecycle event.
func (s *FabricSnapshot) JSONL() []byte {
	var b strings.Builder
	line := func(v any) {
		j, err := json.Marshal(v)
		if err != nil {
			panic("telemetry: fabric JSONL marshal: " + err.Error())
		}
		b.Write(j)
		b.WriteByte('\n')
	}
	line(jsonlFabricMeta{
		Record: "fabric", Schema: s.Schema, Cycle: s.Cycle, Topology: s.Topology,
		Chips: s.Chips, Externals: s.Externals, DeadChips: s.DeadChips,
		DeadTrunks:     s.DeadTrunks,
		BisectionWords: s.BisectionWords, BisectionUtilization: s.BisectionUtilization,
	})
	for _, t := range s.Trunks {
		line(jsonlTrunk{Record: "trunk", TrunkSample: t})
	}
	if s.Heal != nil {
		line(jsonlHeal{Record: "heal", HealSample: s.Heal})
	}
	for _, e := range s.Events {
		line(jsonlEvent{Record: "event", EventRecord: e})
	}
	return []byte(b.String())
}

// CSV renders three headed sections (#fabric, #trunks, #events).
func (s *FabricSnapshot) CSV() []byte {
	var b strings.Builder
	b.WriteString("#fabric\nschema,cycle,topology,chips,externals,dead_chips,dead_trunks,bisection_words,bisection_utilization\n")
	ints := func(vs []int) string {
		ss := make([]string, len(vs))
		for i, v := range vs {
			ss[i] = strconv.Itoa(v)
		}
		return strings.Join(ss, ";")
	}
	fmt.Fprintf(&b, "%d,%d,%s,%d,%d,%s,%s,%d,%s\n", s.Schema, s.Cycle, s.Topology,
		s.Chips, s.Externals, ints(s.DeadChips), ints(s.DeadTrunks),
		s.BisectionWords, csvF(s.BisectionUtilization))

	b.WriteString("#trunks\ntrunk,a,a_port,b,b_port," +
		"ab_drained,ab_delivered,ab_dropped,ab_retrans,ab_frames,ab_acked,ab_held,ab_utilization," +
		"ba_drained,ba_delivered,ba_dropped,ba_retrans,ba_frames,ba_acked,ba_held,ba_utilization\n")
	for _, t := range s.Trunks {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%s\n",
			t.Trunk, t.A, t.APort, t.B, t.BPort,
			t.Dir[0].Drained, t.Dir[0].Delivered, t.Dir[0].Dropped, t.Dir[0].Retrans,
			t.Dir[0].Frames, t.Dir[0].Acked, t.Dir[0].Held,
			csvF(t.Dir[0].Utilization),
			t.Dir[1].Drained, t.Dir[1].Delivered, t.Dir[1].Dropped, t.Dir[1].Retrans,
			t.Dir[1].Frames, t.Dir[1].Acked, t.Dir[1].Held,
			csvF(t.Dir[1].Utilization))
	}

	if s.Heal != nil {
		h := s.Heal
		b.WriteString("#heal\nepochs,reroutes,retrans_frames,retrans_words,pending_frames,pending_words,injected,delivered,dup_words,partitioned\n")
		part := 0
		if h.Partitioned {
			part = 1
		}
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			h.Epochs, h.Reroutes, h.RetransFrames, h.RetransWords,
			h.PendingFrames, h.PendingWords, h.Injected, h.Delivered,
			h.DupWords, part)
		b.WriteString("#dropped\ncause,words\n")
		for _, d := range h.Dropped {
			fmt.Fprintf(&b, "%s,%d\n", d.Cause, d.Words)
		}
	}

	b.WriteString("#events\ncycle,chip,kind,detail\n")
	for _, e := range s.Events {
		fmt.Fprintf(&b, "%d,%d,%s,%s\n", e.Cycle, e.Port, e.Kind,
			strings.ReplaceAll(e.Detail, ",", ";"))
	}
	return []byte(b.String())
}

// Prometheus renders the fabric plane in the text exposition format.
func (s *FabricSnapshot) Prometheus() []byte {
	var b strings.Builder
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge("raw_fabric_schema", "Fabric telemetry snapshot schema version.")
	fmt.Fprintf(&b, "raw_fabric_schema %d\n", s.Schema)
	gauge("raw_fabric_cycle", "Simulated fabric cycle at snapshot.")
	fmt.Fprintf(&b, "raw_fabric_cycle %d\n", s.Cycle)
	gauge("raw_fabric_chips", "Chip slots in the fabric.")
	fmt.Fprintf(&b, "raw_fabric_chips{topology=%q} %d\n", s.Topology, s.Chips)
	gauge("raw_fabric_dead_chips", "Currently-killed chip slots.")
	fmt.Fprintf(&b, "raw_fabric_dead_chips %d\n", len(s.DeadChips))
	gauge("raw_fabric_dead_trunks", "Currently-dark trunks.")
	fmt.Fprintf(&b, "raw_fabric_dead_trunks %d\n", len(s.DeadTrunks))
	counter("raw_fabric_bisection_words_total", "Delivered words crossing the bisection cut.")
	fmt.Fprintf(&b, "raw_fabric_bisection_words_total %d\n", s.BisectionWords)
	gauge("raw_fabric_bisection_utilization", "Bisection occupancy (delivered words per cycle per cut capacity).")
	fmt.Fprintf(&b, "raw_fabric_bisection_utilization %s\n", promF(s.BisectionUtilization))

	perDir := func(name, help string, val func(d *TrunkDirSample) string, kind string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for ti := range s.Trunks {
			t := &s.Trunks[ti]
			for d := 0; d < 2; d++ {
				dir := "ab"
				if d == 1 {
					dir = "ba"
				}
				fmt.Fprintf(&b, "%s{trunk=\"%d\",dir=\"%s\"} %s\n", name, t.Trunk, dir, val(&t.Dir[d]))
			}
		}
	}
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	perDir("raw_fabric_trunk_drained_words_total", "Words taken off the source chip's trunk pins.",
		func(d *TrunkDirSample) string { return i(d.Drained) }, "counter")
	perDir("raw_fabric_trunk_delivered_words_total", "Words delivered onto the destination chip's trunk pins.",
		func(d *TrunkDirSample) string { return i(d.Delivered) }, "counter")
	perDir("raw_fabric_trunk_dropped_words_total", "Words dropped on the trunk (dead endpoint or bad frame).",
		func(d *TrunkDirSample) string { return i(d.Dropped) }, "counter")
	perDir("raw_fabric_trunk_retrans_words_total", "Words moved into retransmit custody.",
		func(d *TrunkDirSample) string { return i(d.Retrans) }, "counter")
	perDir("raw_fabric_trunk_held_words", "Words held in the trunk framer awaiting a whole packet.",
		func(d *TrunkDirSample) string { return i(d.Held) }, "gauge")
	perDir("raw_fabric_trunk_utilization", "Trunk occupancy (delivered words per cycle).",
		func(d *TrunkDirSample) string { return promF(d.Utilization) }, "gauge")

	counter("raw_fabric_chip_events_total", "Fabric lifecycle events by kind.")
	counts := map[string]int64{}
	for _, e := range s.Events {
		counts[e.Kind]++
	}
	for _, k := range []string{"chip-kill", "chip-restore", "trunk-kill", "trunk-restore", "heal-reroute", "partition"} {
		if n, ok := counts[k]; ok {
			fmt.Fprintf(&b, "raw_fabric_chip_events_total{kind=%q} %d\n", k, n)
		}
	}
	if h := s.Heal; h != nil {
		counter("raw_fabric_heal_epochs_total", "Heal epochs opened (route recomputations).")
		fmt.Fprintf(&b, "raw_fabric_heal_epochs_total %d\n", h.Epochs)
		counter("raw_fabric_heal_reroutes_total", "Per-chip route tables swapped by healing.")
		fmt.Fprintf(&b, "raw_fabric_heal_reroutes_total %d\n", h.Reroutes)
		counter("raw_fabric_heal_retrans_frames_total", "Frames re-driven by trunk ARQ.")
		fmt.Fprintf(&b, "raw_fabric_heal_retrans_frames_total %d\n", h.RetransFrames)
		gauge("raw_fabric_heal_pending_frames", "Frames awaiting retransmission.")
		fmt.Fprintf(&b, "raw_fabric_heal_pending_frames %d\n", h.PendingFrames)
		counter("raw_fabric_heal_injected_words_total", "Words offered at external ports.")
		fmt.Fprintf(&b, "raw_fabric_heal_injected_words_total %d\n", h.Injected)
		counter("raw_fabric_heal_delivered_words_total", "Unique words delivered at external sinks.")
		fmt.Fprintf(&b, "raw_fabric_heal_delivered_words_total %d\n", h.Delivered)
		counter("raw_fabric_heal_dup_words_total", "Duplicate words suppressed at egress.")
		fmt.Fprintf(&b, "raw_fabric_heal_dup_words_total %d\n", h.DupWords)
		gauge("raw_fabric_heal_partitioned", "1 while the surviving topology is disconnected.")
		part := 0
		if h.Partitioned {
			part = 1
		}
		fmt.Fprintf(&b, "raw_fabric_heal_partitioned %d\n", part)
		counter("raw_fabric_heal_dropped_words_total", "End-to-end ledger drops by cause.")
		for _, d := range h.Dropped {
			fmt.Fprintf(&b, "raw_fabric_heal_dropped_words_total{cause=%q} %d\n", d.Cause, d.Words)
		}
	}
	return []byte(b.String())
}
