package telemetry

import "math/bits"

// NumBuckets is the histogram bucket count: bucket 0 holds zero-valued
// observations, bucket i (1..16) holds values v with 2^(i-1) <= v < 2^i,
// and the last bucket holds everything >= 2^16. Power-of-two bucketing
// keeps Observe at a bit-length and an increment — cheap enough for the
// always-on plane — while still resolving the distributions that matter
// here (token waits of a few quanta, blocked bursts up to a quantum).
const NumBuckets = 18

// Histogram is a fixed-layout power-of-two histogram. The zero value is
// ready to use, and the layout is part of the export schema.
type Histogram struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	Buckets [NumBuckets]int64 `json:"buckets"`
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	i := bits.Len64(uint64(v))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.Buckets[i]++
}

// BucketUpper returns bucket i's inclusive upper bound, or -1 for the
// overflow bucket (rendered as +Inf by the Prometheus exporter).
func BucketUpper(i int) int64 {
	if i >= NumBuckets-1 {
		return -1
	}
	return (int64(1) << i) - 1
}

// Mean returns the observation mean (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}
