package telemetry

import "net/http"

// Snapshot-on-demand HTTP serving (serve-mode extension). The daemon's
// control plane renders a fresh Snapshot per request; these helpers keep
// the format → content-type mapping and the write path in one place so
// every endpoint serves the same deterministic bytes Encode produces.

// ContentType returns the HTTP Content-Type for an export format name.
// Unknown formats fall back to text/plain.
func ContentType(format string) string {
	switch format {
	case "prom":
		// The Prometheus text exposition format version the renderer
		// emits; scrapers negotiate on this exact value.
		return "text/plain; version=0.0.4; charset=utf-8"
	case "jsonl":
		return "application/x-ndjson"
	case "csv":
		return "text/csv; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}

// WriteHTTP renders the snapshot in the named format and writes it as an
// HTTP response with the matching Content-Type. Unknown formats produce a
// 400 with the encoder's error text.
func (s *Snapshot) WriteHTTP(w http.ResponseWriter, format string) error {
	body, err := s.Encode(format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return err
	}
	w.Header().Set("Content-Type", ContentType(format))
	w.WriteHeader(http.StatusOK)
	_, err = w.Write(body)
	return err
}
