package telemetry

// PortCounters is the per-port counter block the router samples into a
// snapshot: the firmware counters plus the pin-level word counts.
type PortCounters struct {
	Accepted     int64 `json:"accepted"`
	Dropped      int64 `json:"dropped"`
	Denied       int64 `json:"denied"`
	FragsSent    int64 `json:"frags_sent"`
	PktsIn       int64 `json:"pkts_in"`
	PktsOut      int64 `json:"pkts_out"`
	Reassembled  int64 `json:"reassembled"`
	Lookups      int64 `json:"lookups"`
	McastIn      int64 `json:"mcast_in"`
	McastCopies  int64 `json:"mcast_copies"`
	AbortDropped int64 `json:"abort_dropped"`
	Underruns    int64 `json:"underruns"`
	Reprobes     int64 `json:"reprobes"`
	Recovered    int64 `json:"recovered"`
	FlapDrops    int64 `json:"flap_drops"`
	// WordsIn / WordsOut are the words consumed from the input pins and
	// emitted on the output pins since construction.
	WordsIn  int64 `json:"words_in"`
	WordsOut int64 `json:"words_out"`
}

// TileMeta is the per-tile activity block the router samples from the
// chip's cumulative state counters.
type TileMeta struct {
	Tile    int    `json:"tile"`
	Role    string `json:"role"`
	Run     int64  `json:"run"`
	Blocked int64  `json:"blocked"`
	Idle    int64  `json:"idle"`
}

// MacroDisarm is one macro-step disarm cause and its declined-window
// count (see raw.MacroCause): the engine-side histogram explaining why
// the fast engine fell back to per-cycle stepping.
type MacroDisarm struct {
	Cause string `json:"cause"`
	Count int64  `json:"count"`
}

// Meta is everything the router contributes to a snapshot (the collector
// contributes the quantum plane). Host-side knobs like the worker count
// are deliberately absent: a snapshot — and therefore every export — is
// bit-for-bit identical at any worker count. The macro fields are the
// one deliberate exception: they describe the host engine's macro-step
// engagement (always zero under the reference engine), so equivalence
// suites normalize them out before comparing exports across engines.
type Meta struct {
	Cycle         int64
	ClockHz       float64
	DeadPort      int
	ProbationPort int
	Failed        bool
	FabricLost    int64
	MacroWindows  int64
	MacroCycles   int64
	MacroDisarms  []MacroDisarm
	Ports         [NumPorts]PortCounters
	Tiles         [NumTiles]TileMeta
}

// PortSnap is one port's full telemetry: router counters plus the
// collector's scheduler-decision statistics.
type PortSnap struct {
	Port int `json:"port"`
	PortCounters
	// GrantedQuanta / DeniedQuanta count scheduler decisions observed at
	// quantum boundaries; WordsGranted sums the granted fragment words.
	GrantedQuanta int64 `json:"granted_quanta"`
	DeniedQuanta  int64 `json:"denied_quanta"`
	WordsGranted  int64 `json:"words_granted"`
	// LinkUtilization is the output-link occupancy gauge: words emitted
	// per elapsed cycle (1.0 = a word every cycle, the pin limit).
	LinkUtilization float64 `json:"link_utilization"`
	// TokenWait is the distribution of quanta a granted port waited
	// since its previous grant.
	TokenWait Histogram `json:"token_wait"`
}

// TileSnap is one tile's activity counters plus the blocked-cycles-per-
// quantum distribution.
type TileSnap struct {
	TileMeta
	BlockedPerQuantum Histogram `json:"blocked_per_quantum"`
}

// EventRecord is a typed recovery event in export form (stable wire
// names from trace.EventKind).
type EventRecord struct {
	Cycle  int64  `json:"cycle"`
	Port   int    `json:"port"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Snapshot is an immutable, versioned view of the telemetry plane. All
// fields are values (no pointers into live state): a snapshot taken at
// cycle C never changes as the simulation advances.
type Snapshot struct {
	Schema        int     `json:"schema"`
	Cycle         int64   `json:"cycle"`
	ClockHz       float64 `json:"clock_hz"`
	Quanta        int64   `json:"quanta"`
	DeadPort      int     `json:"dead_port"`
	ProbationPort int     `json:"probation_port"`
	Failed        bool    `json:"failed"`
	FabricLost    int64   `json:"fabric_lost"`

	// MacroWindows/MacroCycles/MacroDisarms surface the fast engine's
	// macro-step engagement (zero under the reference engine). They are
	// host-engine observability: cross-engine equivalence comparisons
	// normalize them to zero/nil before encoding.
	MacroWindows int64         `json:"macro_windows"`
	MacroCycles  int64         `json:"macro_cycles"`
	MacroDisarms []MacroDisarm `json:"macro_disarms,omitempty"`

	Ports [NumPorts]PortSnap `json:"ports"`
	Tiles [NumTiles]TileSnap `json:"tiles"`

	// Recent is the per-quantum flight recorder, oldest first.
	Recent []QuantumRecord `json:"recent"`
	// Events is the typed-event flight recorder, oldest first.
	Events []EventRecord `json:"events"`
}

// Snapshot assembles an immutable snapshot from the router's meta block
// and the collector's accumulated plane. A nil collector yields a
// counters-only snapshot (empty rings, zero histograms) so the exporters
// work even with the plane disabled.
func (c *Collector) Snapshot(m Meta) Snapshot {
	s := Snapshot{
		Schema:        SchemaVersion,
		Cycle:         m.Cycle,
		ClockHz:       m.ClockHz,
		DeadPort:      m.DeadPort,
		ProbationPort: m.ProbationPort,
		Failed:        m.Failed,
		FabricLost:    m.FabricLost,
		MacroWindows:  m.MacroWindows,
		MacroCycles:   m.MacroCycles,
		MacroDisarms:  m.MacroDisarms,
	}
	for p := 0; p < NumPorts; p++ {
		s.Ports[p] = PortSnap{Port: p, PortCounters: m.Ports[p]}
		if m.Cycle > 0 {
			s.Ports[p].LinkUtilization = float64(m.Ports[p].WordsOut) / float64(m.Cycle)
		}
	}
	for t := 0; t < NumTiles; t++ {
		s.Tiles[t] = TileSnap{TileMeta: m.Tiles[t]}
	}
	if c == nil {
		return s
	}
	s.Quanta = c.quanta
	for p := 0; p < NumPorts; p++ {
		s.Ports[p].GrantedQuanta = c.grants[p]
		s.Ports[p].DeniedQuanta = c.denies[p]
		s.Ports[p].WordsGranted = c.wordsGranted[p]
		s.Ports[p].TokenWait = c.tokenWait[p]
	}
	for t := 0; t < NumTiles; t++ {
		s.Tiles[t].BlockedPerQuantum = c.blocked[t]
	}
	s.Recent = c.RecentQuanta()
	for _, e := range c.RecentEvents() {
		s.Events = append(s.Events, EventRecord{
			Cycle: e.Cycle, Port: e.Port, Kind: e.Kind.String(), Detail: e.Detail,
		})
	}
	return s
}
