package traffic

// Named workload presets — the "one spec name = one reproducible
// artifact" entry points. ParseSpec resolves these before pattern
// shorthand, so `-workload day1m` just works.

// Presets returns the named specs. The map is rebuilt per call so a
// caller mutating a spec cannot corrupt the registry.
func Presets() map[string]Spec {
	// A scaled diurnal profile: overnight trough, morning ramp, evening
	// peak. Mean level is normalized away, so Rate stays the mean load.
	diurnal := []float64{0.35, 0.55, 0.9, 1.3, 1.45, 1.1, 0.75, 0.6}
	imixSizes := []int{64, 576, 1500}
	imixWeights := []float64{7, 4, 1}
	return map[string]Spec{
		// imix: flat-rate heavy-tailed flows over the classic three-point
		// Internet mix. The quick sanity workload.
		"imix": {
			Pattern: "flows",
			Sizes:   append([]int(nil), imixSizes...),
			Weights: append([]float64(nil), imixWeights...),
		},
		// day1m: the million-flow day. A 2^27-cycle "day" with the diurnal
		// curve and two flash crowds; at the default 0.8 words/cycle/port
		// across 4 ports the bounded-Pareto flow mix yields ~1.28M flows.
		// Nothing is materialized — FlowProcess generates any slice of it
		// on demand as a pure function of this spec.
		"day1m": {
			Pattern:   "flows",
			Seed:      1,
			Rate:      0.8,
			DayCycles: 1 << 27,
			Curve:     append([]float64(nil), diurnal...),
			Surges: []Surge{
				{At: 44739242, Dur: 2097152, Mult: 3},  // mid-morning flash crowd
				{At: 100663296, Dur: 1048576, Mult: 5}, // evening spike
			},
			Sizes:   append([]int(nil), imixSizes...),
			Weights: append([]float64(nil), imixWeights...),
		},
		// daymini: the same profile scaled to a 2^18-cycle day — small
		// enough to record whole as the versioned CI trace artifact.
		"daymini": {
			Pattern:   "flows",
			Seed:      1,
			Rate:      0.8,
			DayCycles: 1 << 18,
			Curve:     append([]float64(nil), diurnal...),
			Surges: []Surge{
				{At: 87381, Dur: 4096, Mult: 3},
				{At: 196608, Dur: 2048, Mult: 5},
			},
			Sizes:   append([]int(nil), imixSizes...),
			Weights: append([]float64(nil), imixWeights...),
		},
	}
}
