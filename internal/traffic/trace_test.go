package traffic_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/traffic"
)

func testTraceSpec() traffic.Spec {
	return traffic.Spec{
		Pattern: "flows", Size: 256, Seed: 11, Rate: 0.5,
		Sizes: []int{64, 576, 1500}, Weights: []float64{7, 4, 1},
	}
}

// TestTraceRoundTrip: Encode(Parse(Encode(t))) is byte-identical, the
// file round trip preserves everything, and the re-bucketed replay
// process reproduces the recorded arrivals exactly.
func TestTraceRoundTrip(t *testing.T) {
	w := traffic.MustBuild(testTraceSpec())
	const cyc, slices = 512, 24
	tr, err := traffic.Record(w, cyc, slices)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) == 0 {
		t.Fatal("recorded nothing")
	}

	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := traffic.ParseTrace(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("trace does not re-encode byte-identically")
	}

	path := filepath.Join(t.TempDir(), "trace.traf")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := traffic.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	enc3, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc3) {
		t.Fatal("file round trip is not byte-identical")
	}

	// Replay through the trace process: every slice equals the live one.
	proc, err := w.OpenLoop(cyc)
	if err != nil {
		t.Fatal(err)
	}
	replay := loaded.Process(cyc)
	for k := int64(0); k < slices; k++ {
		live, rep := proc.Slice(k), replay.Slice(k)
		if len(live) != len(rep) {
			t.Fatalf("slice %d: %d live vs %d replayed arrivals", k, len(live), len(rep))
		}
		for i := range live {
			if live[i] != rep[i] {
				t.Fatalf("slice %d arrival %d: live %+v vs replay %+v", k, i, live[i], rep[i])
			}
		}
	}

	// DstWords matches a direct sum over arrivals.
	want := make([]int64, loaded.NumPorts)
	for _, a := range loaded.Arrivals {
		want[a.Pkt.Dst] += int64((a.Pkt.SizeBytes + 3) / 4)
	}
	got := loaded.DstWords()
	for d := range want {
		if got[d] != want[d] {
			t.Fatalf("dst %d ledger %d, want %d", d, got[d], want[d])
		}
	}
}

// TestTraceRejects: corruption, truncation, and foreign blobs all fail
// parse, loudly.
func TestTraceRejects(t *testing.T) {
	w := traffic.MustBuild(testTraceSpec())
	tr, err := traffic.Record(w, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traffic.ParseTrace(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated trace accepted")
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 1
	if _, err := traffic.ParseTrace(flipped); err == nil {
		t.Fatal("corrupted trace accepted (checksum not enforced)")
	}
	if _, err := traffic.ParseTrace([]byte("SRVCKPT1 not a trace")); err == nil {
		t.Fatal("foreign blob accepted")
	}
	if _, err := traffic.ParseTrace(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

// TestTracePattern: the "trace" registry pattern replays a recorded
// file through the ordinary Spec/Build pipeline.
func TestTracePattern(t *testing.T) {
	w := traffic.MustBuild(testTraceSpec())
	tr, err := traffic.Record(w, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "replay.traf")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	spec, err := traffic.ParseSpec("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := traffic.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := rw.OpenLoop(512)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for k := int64(0); k < 8; k++ {
		n += len(proc.Slice(k))
	}
	if n != len(tr.Arrivals) {
		t.Fatalf("trace pattern replayed %d arrivals, recorded %d", n, len(tr.Arrivals))
	}
}
