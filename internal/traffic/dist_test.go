package traffic_test

import (
	"math"
	"testing"

	"repro/internal/traffic"
)

// chiSquare sums (observed-expected)^2/expected over the buckets.
func chiSquare(obs []int, exp []float64) float64 {
	var x2 float64
	for i := range obs {
		if exp[i] <= 0 {
			continue
		}
		d := float64(obs[i]) - exp[i]
		x2 += d * d / exp[i]
	}
	return x2
}

// TestZipfShape: sampled destination frequencies match the analytic
// Zipf masses under a chi-square test. With n-1 degrees of freedom the
// 99.9th percentile is well under 2*n for the n here, so a generous
// threshold catches real shape bugs without flaking.
func TestZipfShape(t *testing.T) {
	const n, draws = 16, 200000
	z := traffic.NewZipf(n, 1.1)
	rng := traffic.NewRNG(77)
	obs := make([]int, n)
	for i := 0; i < draws; i++ {
		obs[z.Sample(rng.Float64())]++
	}
	exp := make([]float64, n)
	var mass float64
	for r := 0; r < n; r++ {
		exp[r] = z.Mass(r) * draws
		mass += z.Mass(r)
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("Zipf masses sum to %v, want 1", mass)
	}
	if obs[0] <= obs[n-1] {
		t.Fatalf("rank 0 drew %d <= rank %d's %d; no skew", obs[0], n-1, obs[n-1])
	}
	// 99.9th percentile of chi-square with 15 df ≈ 37.7.
	if x2 := chiSquare(obs, exp); x2 > 45 {
		t.Fatalf("Zipf chi-square %.1f over 15 df; distribution shape off", x2)
	}
}

// TestZipfUniformLimit: skew 0 degenerates to the uniform distribution.
func TestZipfUniformLimit(t *testing.T) {
	z := traffic.NewZipf(8, 0)
	for r := 0; r < 8; r++ {
		if math.Abs(z.Mass(r)-0.125) > 1e-9 {
			t.Fatalf("rank %d mass %v, want 1/8", r, z.Mass(r))
		}
	}
}

// TestBoundedParetoShape: samples bucketed by the analytic CDF land
// uniformly across equal-probability buckets (the probability integral
// transform), and the empirical mean tracks the analytic Mean.
func TestBoundedParetoShape(t *testing.T) {
	const alpha, lo, hi = 1.3, 1.0, 1024.0
	const draws, buckets = 200000, 20
	p := traffic.NewBoundedPareto(alpha, lo, hi)
	cdf := func(x float64) float64 {
		return (1 - math.Pow(lo/x, alpha)) / (1 - math.Pow(lo/hi, alpha))
	}
	rng := traffic.NewRNG(99)
	obs := make([]int, buckets)
	var sum float64
	for i := 0; i < draws; i++ {
		x := p.Sample(rng.Float64())
		if x < lo || x > hi {
			t.Fatalf("sample %v outside [%v, %v]", x, lo, hi)
		}
		sum += x
		b := int(cdf(x) * buckets)
		if b == buckets {
			b--
		}
		obs[b]++
	}
	exp := make([]float64, buckets)
	for i := range exp {
		exp[i] = float64(draws) / buckets
	}
	// 99.9th percentile of chi-square with 19 df ≈ 43.8.
	if x2 := chiSquare(obs, exp); x2 > 52 {
		t.Fatalf("bounded-Pareto chi-square %.1f over 19 df; inverse CDF off", x2)
	}
	mean := sum / draws
	if want := p.Mean(); math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("empirical mean %.2f vs analytic %.2f", mean, want)
	}
}

// TestBoundedParetoHeavyTail: the defining property — a small fraction
// of flows carries a large fraction of the mass (mice and elephants).
func TestBoundedParetoHeavyTail(t *testing.T) {
	p := traffic.NewBoundedPareto(1.3, 1, 1024)
	rng := traffic.NewRNG(5)
	const draws = 100000
	samples := make([]float64, draws)
	var total float64
	for i := range samples {
		samples[i] = p.Sample(rng.Float64())
		total += samples[i]
	}
	var big float64
	for _, x := range samples {
		if x >= 100 {
			big += x
		}
	}
	count := 0
	for _, x := range samples {
		if x >= 100 {
			count++
		}
	}
	// Elephants (>=100 pkts) are ~1% of flows yet carry >10% of the
	// words — the mice-and-elephants asymmetry heavy-tail workloads are
	// about.
	frac := big / total
	if frac < 0.1 {
		t.Fatalf("flows >= 100 pkts carry only %.2f of the mass; tail not heavy", frac)
	}
	if float64(count)/draws > 0.05 {
		t.Fatalf("%.3f of flows are elephants; tail too fat for alpha=1.3", float64(count)/draws)
	}
}
