package traffic_test

import (
	"math"
	"testing"

	"repro/internal/traffic"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := traffic.NewRNG(7), traffic.NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if traffic.NewRNG(1).Uint64() == traffic.NewRNG(2).Uint64() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := traffic.NewRNG(42)
	var buckets [8]int
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/8) > n/8*0.05 {
			t.Fatalf("bucket %d has %d of %d: not uniform", i, c, n)
		}
	}
}

// mustSource compiles a spec and returns one port's closed-loop source.
func mustSource(t *testing.T, s traffic.Spec, port int) traffic.Source {
	t.Helper()
	src, err := traffic.MustBuild(s).Source(port)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestUniformDestinations(t *testing.T) {
	src := mustSource(t, traffic.Spec{Pattern: "uniform", Size: 64, Seed: 9}, 1)
	var counts [4]int
	for i := 0; i < 40000; i++ {
		p := src.Next()
		if p.Dst < 0 || p.Dst > 3 {
			t.Fatalf("dst %d out of range", p.Dst)
		}
		if p.SizeBytes != 64 {
			t.Fatalf("size %d", p.SizeBytes)
		}
		counts[p.Dst]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("dst %d got %d of 40000, not uniform", d, c)
		}
	}
}

func TestPermutationConflictFree(t *testing.T) {
	perm := traffic.RotatedPerm(4, 2)
	seen := make(map[int]bool)
	wl := traffic.MustBuild(traffic.Spec{
		Pattern: "permutation", Size: 256,
		Params: map[string]float64{"offset": 2},
	})
	for i, d := range perm {
		if seen[d] {
			t.Fatalf("perm maps two inputs to output %d", d)
		}
		seen[d] = true
		src, err := wl.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			if p := src.Next(); p.Dst != d {
				t.Fatalf("input %d sent to %d, want %d", i, p.Dst, d)
			}
		}
	}
}

func TestHotspotFraction(t *testing.T) {
	src := mustSource(t, traffic.Spec{
		Pattern: "hotspot", Size: 64, Seed: 3,
		Params: map[string]float64{"hot": 2, "frac": 0.75},
	}, 0)
	hot := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if src.Next().Dst == 2 {
			hot++
		}
	}
	// 75% direct + 25%*25% uniform landing on the hotspot ≈ 81%.
	frac := float64(hot) / n
	if frac < 0.78 || frac < 0.75 {
		t.Fatalf("hotspot fraction %.3f, want ≈ 0.81", frac)
	}
}

func TestBurstyRuns(t *testing.T) {
	src := mustSource(t, traffic.Spec{
		Pattern: "bursty", Size: 64, Seed: 5,
		Params: map[string]float64{"burst": 8},
	}, 0)
	prev := -1
	runs, changes := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		d := src.Next().Dst
		if d == prev {
			runs++
		} else {
			changes++
		}
		prev = d
	}
	meanRun := float64(n) / float64(changes)
	if meanRun < 4 || meanRun > 16 {
		t.Fatalf("mean burst length %.1f, want ≈ 8", meanRun)
	}
}

func TestSizeMix(t *testing.T) {
	src := mustSource(t, traffic.Spec{
		Pattern: "uniform", Size: 64,
		Sizes: []int{64, 1024}, Weights: []float64{0.5, 0.5},
	}, 0)
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if src.Next().SizeBytes == 64 {
			small++
		}
	}
	if small < 9000 || small > 11000 {
		t.Fatalf("small fraction %d/%d, want ≈ half", small, n)
	}
}

func TestPortAddressing(t *testing.T) {
	for p := 0; p < 4; p++ {
		prefix, plen := traffic.PortPrefix(p)
		if plen != 8 {
			t.Fatalf("plen %d", plen)
		}
		a := traffic.PortAddr(p, 0x123456)
		if uint32(a)>>24 != prefix>>24 {
			t.Fatalf("addr %v outside port %d prefix", a, p)
		}
	}
}
