package traffic_test

import (
	"strings"
	"testing"

	"repro/internal/traffic"
)

// TestParseSpecShorthand: the inline grammar parses, defaults fill in,
// and String() re-renders a form that parses back to the same spec.
func TestParseSpecShorthand(t *testing.T) {
	s, err := traffic.ParseSpec("flows:alpha=1.5,ports=8,rate=0.25,sizes=64/1500,weights=3/1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Pattern != "flows" || s.Ports != 8 || s.Rate != 0.25 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Params["alpha"] != 1.5 {
		t.Fatalf("alpha = %v", s.Params["alpha"])
	}
	if len(s.Sizes) != 2 || s.Sizes[1] != 1500 || s.Weights[0] != 3 {
		t.Fatalf("sizes %v weights %v", s.Sizes, s.Weights)
	}

	w, err := traffic.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := traffic.ParseSpec(w.Spec.String())
	if err != nil {
		t.Fatalf("String() %q does not re-parse: %v", w.Spec.String(), err)
	}
	w2, err := traffic.Build(back)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Spec.String() != w.Spec.String() {
		t.Fatalf("round trip: %q vs %q", w2.Spec.String(), w.Spec.String())
	}
}

// TestParseSpecPreset: presets resolve to full specs and build.
func TestParseSpecPreset(t *testing.T) {
	for name := range traffic.Presets() {
		s, err := traffic.ParseSpec(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if _, err := traffic.Build(s); err != nil {
			t.Fatalf("preset %s does not build: %v", name, err)
		}
	}
}

// TestSpecRejects: the loud-failure cases.
func TestSpecRejects(t *testing.T) {
	bad := []string{
		"",                      // empty
		"nosuchpattern",         // unknown pattern
		"uniform:ports=1",       // too few ports
		"uniform:ports=9999",    // too many ports
		"uniform:size=4",        // below the IP header
		"uniform:rate=99",       // above line rate bound
		"uniform:bogus=1",       // unknown parameter key
		"hotspot:frac=2",        // out of range
		"flows:alpha=0",         // degenerate tail
		"flows:maxflow=0.5",     // below minflow
		"uniform:sizes=64",      // sizes without weights
		"permutation:offset=-1", // negative rotation
		"uniform:ports=abc",     // not a number
		"trace:",                // empty path
		"uniform:curve=1",       // 1-point curve (needs day too)
		"uniform:day=-5",        // negative day
		"broadcast:root=7",      // root outside default 4 ports
		"json:/nonexistent/x.json",
	}
	for _, text := range bad {
		s, err := traffic.ParseSpec(text)
		if err != nil {
			continue // rejected at parse — fine
		}
		if _, err := traffic.Build(s); err == nil {
			t.Fatalf("spec %q accepted; want rejection", text)
		}
	}
}

// TestSpecJSONUnknownField: typos in a JSON spec fail loudly.
func TestSpecJSONUnknownField(t *testing.T) {
	if _, err := traffic.ParseSpecJSON([]byte(`{"pattern":"uniform","prots":8}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
	s, err := traffic.ParseSpecJSON([]byte(`{"pattern":"flows","params":{"zipf":1.3},"rate":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Params["zipf"] != 1.3 || s.Rate != 0.5 {
		t.Fatalf("parsed %+v", s)
	}
}

// TestRegistryComplete: every pattern the redesign absorbed is
// registered, and registration is idempotent-hostile (dup panics).
func TestRegistryComplete(t *testing.T) {
	have := strings.Join(traffic.Patterns(), ",")
	for _, want := range []string{"uniform", "permutation", "hotspot", "bursty", "allreduce", "broadcast", "flows", "trace"} {
		if !strings.Contains(have, want) {
			t.Fatalf("pattern %q missing from registry (%s)", want, have)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	traffic.Register(traffic.Pattern{Name: "uniform"})
}

// FuzzWorkloadSpec: any spec text either fails to parse/build or
// yields a workload whose first open-loop slice is pure (two
// evaluations agree) and in-bounds. Run under make fuzz.
func FuzzWorkloadSpec(f *testing.F) {
	seeds := []string{
		"uniform", "imix", "daymini",
		"flows:alpha=1.3,zipf=1.1",
		"hotspot:frac=0.9,hot=1,ports=8",
		"permutation:offset=3,size=64",
		"bursty:burst=4,rate=0.1",
		"uniform:sizes=64/1500,weights=1/1",
		"uniform:day=4096,curve=0.5/1.5",
		"json:nope", "trace:nope", "x:y=z", ":", "a=b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if strings.HasPrefix(text, "json:") || strings.HasPrefix(text, "trace:") {
			return // filesystem-touching forms are exercised in unit tests
		}
		s, err := traffic.ParseSpec(text)
		if err != nil {
			return
		}
		if s.TracePath != "" {
			return
		}
		w, err := traffic.Build(s)
		if err != nil {
			return
		}
		// Bound the work: a fuzzed day length or port count can make a
		// single slice arbitrarily expensive without being a bug.
		if w.Spec.Ports > 64 || w.Spec.DayCycles > 1<<22 || w.Spec.Rate > 4 {
			return
		}
		proc, err := w.OpenLoop(256)
		if err != nil {
			t.Fatalf("built workload rejects OpenLoop: %v", err)
		}
		a, b := proc.Slice(1), proc.Slice(1)
		if len(a) != len(b) {
			t.Fatalf("Slice(1) impure: %d vs %d arrivals", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Slice(1) impure at %d", i)
			}
			if a[i].Cycle < 256 || a[i].Cycle >= 512 {
				t.Fatalf("arrival cycle %d outside slice 1", a[i].Cycle)
			}
			if a[i].Port < 0 || a[i].Port >= w.Spec.Ports || a[i].Pkt.Dst < 0 || a[i].Pkt.Dst >= w.Spec.Ports {
				t.Fatalf("arrival out of port range: %+v", a[i])
			}
		}
	})
}
