package traffic_test

import (
	"hash/fnv"
	"testing"

	"repro/internal/traffic"
)

func flowsProcess(t *testing.T, s traffic.Spec, cyc int64) *traffic.FlowProcess {
	t.Helper()
	proc, err := traffic.MustBuild(s).OpenLoop(cyc)
	if err != nil {
		t.Fatal(err)
	}
	fp, ok := proc.(*traffic.FlowProcess)
	if !ok {
		t.Fatalf("flows process is %T", proc)
	}
	return fp
}

// TestFlowsZipfSkew: with a skewed destination distribution, the hot
// destination receives the plurality of arrivals.
func TestFlowsZipfSkew(t *testing.T) {
	fp := flowsProcess(t, traffic.Spec{
		Pattern: "flows", Size: 256, Seed: 21, Rate: 0.8,
		Params: map[string]float64{"zipf": 1.4},
	}, 4096)
	counts := make([]int, 4)
	for k := int64(0); k < 64; k++ {
		for _, a := range fp.Slice(k) {
			counts[a.Pkt.Dst]++
		}
	}
	hot, hotN, total := 0, 0, 0
	for d, c := range counts {
		total += c
		if c > hotN {
			hot, hotN = d, c
		}
	}
	if total == 0 {
		t.Fatal("no arrivals")
	}
	if frac := float64(hotN) / float64(total); frac < 0.35 {
		t.Fatalf("hot dst %d carries only %.2f of arrivals; Zipf skew missing (counts %v)", hot, frac, counts)
	}
}

// TestFlowsSeqComplete: collecting a flow's arrivals across slices
// yields a gap-free Seq sequence — no packet is emitted twice or lost
// at slice boundaries.
func TestFlowsSeqComplete(t *testing.T) {
	fp := flowsProcess(t, traffic.Spec{
		Pattern: "flows", Size: 512, Seed: 33, Rate: 0.7,
		Params: map[string]float64{"maxflow": 64},
	}, 1024)
	seqs := map[uint64][]uint32{}
	for k := int64(0); k < 96; k++ {
		for _, a := range fp.Slice(k) {
			seqs[a.Flow] = append(seqs[a.Flow], a.Seq)
		}
	}
	if len(seqs) < 10 {
		t.Fatalf("only %d flows seen", len(seqs))
	}
	complete := 0
	for flow, got := range seqs {
		for i, s := range got {
			if int(s) != i {
				t.Fatalf("flow %d: seq %d at position %d (duplicate or gap)", flow, s, i)
			}
		}
		if len(got) > 1 {
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("no multi-packet flow crossed a slice boundary")
	}
}

// TestMillionFlowDay: the day1m preset is the seeded million-flow day
// of the traffic-plane design — the flow horizon lands at ~1.37M flows,
// and sampled slices from across the day are identical on independent
// process instances (including far-out-of-order evaluation), which is
// what makes the artifact a pure function of its spec.
func TestMillionFlowDay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day flow horizon in -short mode")
	}
	spec := traffic.Presets()["day1m"]
	a := flowsProcess(t, spec, 4096)
	b := flowsProcess(t, spec, 4096)

	flows := a.FlowsThrough(spec.DayCycles)
	if flows < 1_000_000 || flows > 2_000_000 {
		t.Fatalf("day1m generates %d flows over the day, want ~1.37M", flows)
	}

	// Sample slices spread across the day, reading b in reverse order.
	day := spec.DayCycles / 4096
	ks := []int64{0, 1, day / 4, day / 2, 3 * day / 4, day - 1}
	digest := func(arr []traffic.Arrival) uint64 {
		h := fnv.New64a()
		for _, x := range arr {
			var buf [8]byte
			for i, v := range []uint64{uint64(x.Cycle), uint64(x.Port), x.Flow, uint64(x.Seq),
				uint64(x.Pkt.Dst), uint64(x.Pkt.SizeBytes), uint64(x.Pkt.SrcIP), uint64(x.Pkt.DstIP)} {
				for j := 0; j < 8; j++ {
					buf[j] = byte(v >> (8 * j))
				}
				_, _ = h.Write(buf[:])
				_ = i
			}
		}
		return h.Sum64()
	}
	want := make(map[int64]uint64)
	for i := len(ks) - 1; i >= 0; i-- {
		want[ks[i]] = digest(b.Slice(ks[i]))
	}
	total := 0
	for _, k := range ks {
		arr := a.Slice(k)
		total += len(arr)
		if digest(arr) != want[k] {
			t.Fatalf("slice %d differs between instances/orders", k)
		}
	}
	if total == 0 {
		t.Fatal("sampled slices were all empty")
	}
}
