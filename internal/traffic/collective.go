package traffic

// Topology-aware collective patterns for the N-chip fabric experiments.
// Both model the communication phase of a data-parallel job mapped onto
// the fabric's external ports: RingAllReduce is the bandwidth-optimal
// all-reduce schedule (each rank streams chunks to its ring successor
// for 2(N-1) steps), Broadcast the root-to-leaves fanout. They are
// Sources like the paper's patterns, so any harness that drives Uniform
// can drive a collective.

// RingAllReduce models rank src of an N-rank ring all-reduce: every
// packet goes to the successor rank (src+1) mod N, carrying chunk
// Step/N of the reduce-scatter (steps 0..N-2) or allgather (steps
// N-1..2N-3) phase in its address salt. All ranks transmit every step,
// so offered load is uniform per port and — on a ring fabric whose
// externals are placed in ring order — every packet crosses exactly the
// trunks between adjacent chips, making the pattern a pure
// bisection-bandwidth probe.
type RingAllReduce struct {
	Ports int
	Size  int
	Src   int
	step  uint32
	n     uint32
}

// Step returns the collective step the next packet belongs to (wraps at
// 2(N-1), one full all-reduce).
func (r *RingAllReduce) Step() int {
	return int(r.step) % (2 * (r.Ports - 1))
}

// Next implements Source.
func (r *RingAllReduce) Next() Pkt {
	r.n++
	dst := (r.Src + 1) % r.Ports
	p := Pkt{
		Dst:       dst,
		SizeBytes: r.Size,
		SrcIP:     PortAddr(r.Src, r.n),
		DstIP:     PortAddr(dst, uint32(r.Step())<<16|r.n&0xffff),
	}
	r.step++
	return p
}

// Broadcast models the root port of a root-to-leaves broadcast: packets
// cycle over every non-root destination in port order, one copy per
// leaf. Only the root transmits; attach it to the root's external port
// and leave the leaves silent (or feeding acks).
type Broadcast struct {
	Ports int
	Size  int
	Root  int
	i     int
	n     uint32
}

// Next implements Source.
func (b *Broadcast) Next() Pkt {
	dst := b.i % b.Ports
	if dst == b.Root {
		b.i++
		dst = b.i % b.Ports
	}
	b.i++
	b.n++
	return Pkt{
		Dst:       dst,
		SizeBytes: b.Size,
		SrcIP:     PortAddr(b.Root, b.n),
		DstIP:     PortAddr(dst, b.n),
	}
}
