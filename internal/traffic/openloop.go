package traffic

// The open-loop arrival front-end. A Process is a deterministic marked
// point process: Slice(k) returns the timestamped arrivals of slice k
// (cycles [k*S, (k+1)*S)) as a pure function of (Spec, k) — no state
// carries across calls, so slices can be generated out of order, a
// restored run resumes the identical stream, and two processes built
// from the same Spec agree arrival for arrival.
//
// Patterns without a native process get the rate-paced adapter below:
// the offered load (Spec.Rate shaped by the diurnal curve and surges)
// is integrated in closed form to a cumulative per-port packet budget,
// and each slice's quota is drawn from a slice-derived RNG — exactly
// the discipline serve's SyntheticFeeder pioneered, now enforced here
// for every pattern.

import (
	"fmt"
	"math"
	"sort"
)

// defaultSliceCycles is the slice length used when a closed-loop view
// must adapt an open-loop pattern and no caller preference exists.
const defaultSliceCycles = 4096

// Arrival is one timestamped packet arrival at an edge port.
type Arrival struct {
	// Cycle is the arrival time.
	Cycle int64
	// Port is the ingress edge port.
	Port int
	// Flow identifies the flow the packet belongs to; Seq is the packet's
	// index within it. Patterns without flow semantics synthesize unique
	// ids per packet.
	Flow uint64
	Seq  uint32
	// Pkt is the packet descriptor.
	Pkt Pkt
}

// Process is the open-loop arrival contract.
type Process interface {
	// Slice returns the arrivals of slice k, sorted by (Cycle, Port,
	// Flow, Seq). Pure in k: same k, same arrivals, in any call order.
	Slice(k int64) []Arrival
	// SliceCycles is the slice length the process was built on.
	SliceCycles() int64
	// Ports is the port count the arrivals span.
	Ports() int
}

// loadShape integrates the offered-load profile (Rate × diurnal curve ×
// surges) to cumulative per-port offered words — the time base every
// open-loop pattern paces against. The flat profile integrates in exact
// integer fixed point (drift-free at any horizon); shaped profiles use
// closed-form float integration (evaluation, not accumulation, so the
// result is a pure function of t).
type loadShape struct {
	ratePPM int64 // offered words per cycle per port, ×1e6
	day     int64
	curve   []float64 // normalized to mean 1 over the day
	surges  []Surge
}

func newLoadShape(s *Spec) *loadShape {
	ls := &loadShape{ratePPM: int64(s.Rate*1e6 + 0.5), day: s.DayCycles, surges: s.Surges}
	if len(s.Curve) > 0 {
		mean := 0.0
		for _, lv := range s.Curve {
			mean += lv
		}
		mean /= float64(len(s.Curve))
		ls.curve = make([]float64, len(s.Curve))
		for i, lv := range s.Curve {
			ls.curve[i] = lv / mean
		}
	}
	return ls
}

// shaped reports whether the profile needs the float path.
func (ls *loadShape) shaped() bool { return len(ls.curve) > 0 || len(ls.surges) > 0 }

// curveIntegral returns ∫₀ᵗ λ(u) du for the normalized periodic curve
// (λ ≡ 1 when no curve is set), in cycles.
func (ls *loadShape) curveIntegral(t int64) float64 {
	if len(ls.curve) == 0 {
		return float64(t)
	}
	full := t / ls.day
	rem := t % ls.day
	sum := float64(full) * float64(ls.day) // mean is normalized to 1
	m := len(ls.curve)
	segLen := float64(ls.day) / float64(m)
	for i := 0; i < m && rem > 0; i++ {
		a := ls.curve[i]
		b := ls.curve[(i+1)%m]
		u0 := float64(i) * segLen
		u1 := float64(i+1) * segLen
		hi := math.Min(float64(rem), u1)
		if hi <= u0 {
			break
		}
		// Linear level a→b over [u0, u1): integrate to hi.
		x := (hi - u0) / segLen
		sum += segLen * x * (a + (b-a)*x/2)
	}
	return sum
}

// levelIntegral adds the surge episodes: each multiplies the
// instantaneous level by Mult over its window.
func (ls *loadShape) levelIntegral(t int64) float64 {
	sum := ls.curveIntegral(t)
	for _, su := range ls.surges {
		if t <= su.At {
			continue
		}
		hi := su.At + su.Dur
		if t < hi {
			hi = t
		}
		sum += (su.Mult - 1) * (ls.curveIntegral(hi) - ls.curveIntegral(su.At))
	}
	return sum
}

// wordsF is the cumulative per-port offered words through cycle t, as a
// float (for inversion).
func (ls *loadShape) wordsF(t int64) float64 {
	return ls.levelIntegral(t) * float64(ls.ratePPM) / 1e6
}

// words is the cumulative per-port offered words through cycle t.
func (ls *loadShape) words(t int64) int64 {
	if !ls.shaped() {
		return t * ls.ratePPM / 1e6 // exact fixed point, no drift
	}
	return int64(ls.wordsF(t))
}

// invert returns the smallest cycle t with wordsF(t) >= target.
func (ls *loadShape) invert(target float64) int64 {
	if target <= 0 {
		return 0
	}
	hi := int64(1)
	for ls.wordsF(hi) < target {
		hi *= 2
		if hi <= 0 { // overflow guard: load is zero or absurdly small
			return math.MaxInt64 / 4
		}
	}
	lo := hi / 2
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ls.wordsF(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sliceSeed derives the per-(slice, port) RNG stream seed.
func sliceSeed(seed uint64, k int64, port int) uint64 {
	return mix64(seed ^ uint64(k)*0x9e3779b97f4a7c15 ^ uint64(port+1)*0xbf58476d1ce4e5b9)
}

// sortArrivals is the canonical arrival order within a slice.
func sortArrivals(out []Arrival) {
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		return a.Seq < b.Seq
	})
}

// pacedProcess is the generic open-loop adapter over a closed-loop
// pattern: destinations and sizes come from a per-(slice, port) source,
// arrival times from the load shape's cumulative packet budget.
type pacedProcess struct {
	w     *Workload
	cyc   int64
	shape *loadShape
	// mw1000 is the mean on-wire words per packet ×1000 (fixed size, or
	// the weighted mean of the size mix).
	mw1000 int64
}

func newPacedProcess(w *Workload, sliceCycles int64) (*pacedProcess, error) {
	p := &pacedProcess{w: w, cyc: sliceCycles, shape: newLoadShape(&w.Spec)}
	p.mw1000 = int64(meanWordsPerPacket(&w.Spec)*1000 + 0.5)
	if p.mw1000 <= 0 {
		return nil, fmt.Errorf("traffic: workload %s has zero mean packet size", w.Spec.Pattern)
	}
	return p, nil
}

// meanWordsPerPacket returns the expected on-wire words of one packet
// under the spec's size (or size mix).
func meanWordsPerPacket(s *Spec) float64 {
	if len(s.Sizes) == 0 {
		return float64(wordsOf(s.Size))
	}
	var tot, acc float64
	for i, sz := range s.Sizes {
		tot += s.Weights[i]
		acc += s.Weights[i] * float64(wordsOf(sz))
	}
	return acc / tot
}

// wordsOf is the on-wire word count of a packet of size bytes
// (header-inclusive, word-aligned like ip.NewPacket).
func wordsOf(sizeBytes int) int {
	return (sizeBytes + 3) / 4
}

// pktsThrough is the cumulative per-port packet budget through cycle t.
func (p *pacedProcess) pktsThrough(t int64) int64 {
	return p.shape.words(t) * 1000 / p.mw1000
}

// Slice implements Process.
func (p *pacedProcess) Slice(k int64) []Arrival {
	start := k * p.cyc
	base := p.pktsThrough(start)
	n := p.pktsThrough(start+p.cyc) - base
	if n <= 0 {
		return nil
	}
	var out []Arrival
	for port := 0; port < p.w.Spec.Ports; port++ {
		rng := NewRNG(sliceSeed(p.w.Spec.Seed, k, port))
		src, err := p.w.sourceWithRNG(port, rng)
		if err != nil {
			// Builders validate at Build time; a per-slice failure would be
			// a registry bug, and an open-loop generator has no error path.
			panic(err)
		}
		for i := int64(0); i < n; i++ {
			pkt := src.Next()
			// Re-salt the addresses from the slice stream so they do not
			// repeat every slice (the source's own counter restarts here).
			salt := uint32(rng.Uint64())
			pkt.SrcIP = PortAddr(port, salt)
			pkt.DstIP = PortAddr(pkt.Dst, salt*2654435761+1)
			out = append(out, Arrival{
				Cycle: start + i*p.cyc/n,
				Port:  port,
				Flow:  uint64(k)<<24 | uint64(port)<<20 | uint64(base+i)&0xfffff,
				Seq:   0,
				Pkt:   pkt,
			})
		}
	}
	sortArrivals(out)
	return out
}

// SliceCycles implements Process.
func (p *pacedProcess) SliceCycles() int64 { return p.cyc }

// Ports implements Process.
func (p *pacedProcess) Ports() int { return p.w.Spec.Ports }

// sourceWithRNG builds the pattern source for one port over a caller-
// supplied RNG stream (the paced adapter derives one per slice).
func (w *Workload) sourceWithRNG(port int, rng *RNG) (Source, error) {
	src, err := w.pat.Source(&w.Spec, port, rng)
	if err != nil {
		return nil, err
	}
	if len(w.Spec.Sizes) > 0 {
		src = &SizeMix{Inner: src, SizesB: w.Spec.Sizes, Weights: w.Spec.Weights, rng: rng.Fork(2)}
	}
	return src, nil
}

// processSource adapts an open-loop process to the closed-loop Source
// contract: it walks the port's arrival stream in order, dropping
// timestamps. Used for patterns that only exist as arrivals (flows,
// trace replay) when a closed-loop driver asks for them.
type processSource struct {
	proc Process
	port int
	buf  []Pkt
	k    int64
}

// Next implements Source.
func (ps *processSource) Next() Pkt {
	for len(ps.buf) == 0 {
		arr := ps.proc.Slice(ps.k)
		ps.k++
		for i := range arr {
			if arr[i].Port == ps.port {
				ps.buf = append(ps.buf, arr[i].Pkt)
			}
		}
		if ps.k > 1<<40 { // a silent pattern would spin forever
			panic("traffic: open-loop pattern generated no arrivals for 2^40 slices")
		}
	}
	pkt := ps.buf[0]
	ps.buf = ps.buf[1:]
	return pkt
}
