package traffic

// Heavy-tailed building blocks of the open-loop traffic plane: a
// bounded-Pareto variate for flow sizes (the Internet's mice-and-
// elephants mix — most flows are a few packets, a heavy tail carries
// most of the bytes) and a Zipf sampler for destination popularity (a
// few ports receive most of the traffic, rank-ordered by a power law).
// Both sample by inverse CDF from one uniform draw, so a variate is a
// pure function of its input — the property the replayable arrival
// processes are built on.

import "math"

// BoundedPareto is a Pareto(alpha) distribution truncated to [lo, hi].
// Alpha in (1, 2) gives the classic heavy tail with finite mean; the
// upper bound keeps every flow's span finite, which is what lets a
// trace window be generated without unbounded look-back.
type BoundedPareto struct {
	Alpha  float64
	Lo, Hi float64
	loA    float64 // Lo^-alpha
	hiA    float64 // Hi^-alpha
}

// NewBoundedPareto builds the sampler. Requires alpha > 0 and
// 0 < lo <= hi.
func NewBoundedPareto(alpha, lo, hi float64) BoundedPareto {
	p := BoundedPareto{Alpha: alpha, Lo: lo, Hi: hi}
	p.loA = math.Pow(lo, -alpha)
	p.hiA = math.Pow(hi, -alpha)
	return p
}

// Sample maps a uniform u in [0, 1) through the inverse CDF.
func (p BoundedPareto) Sample(u float64) float64 {
	if p.Lo >= p.Hi {
		return p.Lo
	}
	return math.Pow(p.loA-u*(p.loA-p.hiA), -1/p.Alpha)
}

// Mean returns the analytic expectation E[X] of the bounded variate.
func (p BoundedPareto) Mean() float64 {
	if p.Lo >= p.Hi {
		return p.Lo
	}
	a, l, h := p.Alpha, p.Lo, p.Hi
	if a == 1 {
		return math.Log(h/l) / (1/l - 1/h)
	}
	num := a / (a - 1) * (math.Pow(l, 1-a) - math.Pow(h, 1-a))
	den := math.Pow(l, -a) - math.Pow(h, -a)
	return num / den
}

// Zipf samples ranks 0..N-1 with P(rank r) proportional to 1/(r+1)^S —
// the destination-popularity law of Internet mixes. The CDF is
// precomputed (N is a port count, always small).
type Zipf struct {
	S   float64
	cdf []float64
}

// NewZipf builds the sampler over n ranks with exponent s. s = 0 is
// uniform; larger s concentrates mass on the low ranks.
func NewZipf(n int, s float64) Zipf {
	z := Zipf{S: s, cdf: make([]float64, n)}
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		z.cdf[r] = sum
	}
	for r := range z.cdf {
		z.cdf[r] /= sum
	}
	return z
}

// Sample maps a uniform u in [0, 1) to a rank.
func (z Zipf) Sample(u float64) int {
	// Linear scan: len(cdf) is a port count (4..64), and the scan's
	// branch pattern is friendlier than binary search at that size.
	for r, c := range z.cdf {
		if u < c {
			return r
		}
	}
	return len(z.cdf) - 1
}

// Mass returns the probability of rank r (for distribution-shape tests).
func (z Zipf) Mass(r int) float64 {
	if r == 0 {
		return z.cdf[0]
	}
	return z.cdf[r] - z.cdf[r-1]
}

// mix64 is a splitmix64-style finalizer: the one-way hash behind every
// "pure function of (seed, k)" derivation in the open-loop plane.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// u01 maps a uint64 to a uniform float in [0, 1).
func u01(v uint64) float64 { return float64(v>>11) / (1 << 53) }
