package traffic

// The "flows" pattern: a native open-loop process modeling an Internet-
// like edge mix. Flows arrive at a rate that tracks the offered-load
// shape (Rate × diurnal curve × surges); each flow picks an ingress
// port uniformly, a destination by Zipf popularity, and a length in
// packets from a bounded Pareto — mice and elephants. Packets within a
// flow are paced back-to-back-ish (gap = packet words × pace cycles).
//
// Everything about flow j is derived by hashing (Seed, j), and flow
// start times come from inverting the closed-form cumulative-load
// curve, so Slice(k) enumerates only the bounded range of flows that
// can overlap slice k — no state, no scan from zero. That is what makes
// a million-flow day a pure function of its Spec.

import "fmt"

func init() {
	Register(Pattern{
		Name: "flows",
		Doc:  "heavy-tailed flows: Zipf destinations, bounded-Pareto sizes, open-loop",
		Defaults: map[string]float64{
			"alpha":   1.3,  // Pareto tail exponent of the flow length
			"minflow": 1,    // shortest flow, packets
			"maxflow": 1024, // longest flow, packets (bounds look-back)
			"zipf":    1.1,  // destination-popularity skew (0 = uniform)
			"pace":    1.0,  // intra-flow gap, multiples of the packet's words
		},
		Process: newFlowProcess,
		Check:   checkFlows,
	})
}

func checkFlows(s *Spec) error {
	alpha := s.param("alpha")
	if !(alpha > 0) || alpha > 16 {
		return fmt.Errorf("traffic: flows alpha %v out of range (0, 16]", alpha)
	}
	lo, hi := s.param("minflow"), s.param("maxflow")
	if !(lo >= 1) || lo > 1e6 {
		return fmt.Errorf("traffic: flows minflow %v out of range [1, 1e6]", lo)
	}
	if !(hi >= lo) || hi > 1e6 {
		return fmt.Errorf("traffic: flows maxflow %v out of range [minflow, 1e6]", hi)
	}
	if z := s.param("zipf"); !(z >= 0) || z > 16 {
		return fmt.Errorf("traffic: flows zipf %v out of range [0, 16]", z)
	}
	if p := s.param("pace"); !(p > 0) || p > 64 {
		return fmt.Errorf("traffic: flows pace %v out of range (0, 64]", p)
	}
	return nil
}

// FlowProcess is the native heavy-tailed arrival process. Exported so
// callers (tests, trace tooling) can query flow-level statistics.
type FlowProcess struct {
	spec  Spec
	cyc   int64
	shape *loadShape

	pareto BoundedPareto
	zipf   Zipf
	pace   float64
	// meanFlowWords is the expected on-wire words of one flow — the
	// spacing of flow starts along the cumulative-words axis.
	meanFlowWords float64
	// maxSpan bounds a flow's duration in cycles, so Slice's flow-range
	// look-back is finite.
	maxSpan int64
	// dstOff rotates the Zipf popularity ranking so the hot destination
	// is seed-dependent rather than always port 0.
	dstOff int

	// cache holds the realized flows for the contiguous index window the
	// previous Slice call enumerated, starting at cacheLo. Successive
	// slices shift the window by a handful of flows while re-reading the
	// thousands inside maxSpan, so reuse is what keeps generation free
	// next to the simulation it feeds. Every entry is a pure function of
	// (Seed, j), so the cache can never change a result — but it does
	// make Slice unsafe for concurrent use on one instance.
	cacheLo int64
	cache   []flow
}

func newFlowProcess(s *Spec, sliceCycles int64) (Process, error) {
	f := &FlowProcess{spec: *s, cyc: sliceCycles, shape: newLoadShape(s)}
	f.pareto = NewBoundedPareto(s.param("alpha"), s.param("minflow"), s.param("maxflow"))
	f.zipf = NewZipf(s.Ports, s.param("zipf"))
	f.pace = s.param("pace")
	f.meanFlowWords = f.pareto.Mean() * meanWordsPerPacket(s)
	maxWords := wordsOf(s.Size)
	for _, sz := range s.Sizes {
		if w := wordsOf(sz); w > maxWords {
			maxWords = w
		}
	}
	maxGap := int64(float64(maxWords)*f.pace) + 1
	f.maxSpan = int64(s.param("maxflow"))*maxGap + 1
	f.dstOff = int(s.Seed % uint64(s.Ports))
	return f, nil
}

// flow is one realized flow.
type flow struct {
	start int64
	port  int
	dst   int
	pkts  int
	size  int // bytes per packet
	gap   int64
	salt  uint32
}

// flowAt realizes flow j from (Seed, j) alone.
func (f *FlowProcess) flowAt(j int64) flow {
	rng := NewRNG(mix64(f.spec.Seed ^ uint64(j+1)*0x9e3779b97f4a7c15))
	var fl flow
	fl.port = rng.Intn(f.spec.Ports)
	fl.dst = (f.zipf.Sample(rng.Float64()) + f.dstOff) % f.spec.Ports
	fl.pkts = int(f.pareto.Sample(rng.Float64()) + 0.5)
	if lo := int(f.spec.param("minflow")); fl.pkts < lo {
		fl.pkts = lo
	}
	if hi := int(f.spec.param("maxflow")); fl.pkts > hi {
		fl.pkts = hi
	}
	fl.size = f.spec.Size
	if len(f.spec.Sizes) > 0 {
		// One size per flow: every packet of a flow is the same length.
		var tot float64
		for _, w := range f.spec.Weights {
			tot += w
		}
		x := rng.Float64() * tot
		fl.size = f.spec.Sizes[len(f.spec.Sizes)-1]
		for i, w := range f.spec.Weights {
			if x < w {
				fl.size = f.spec.Sizes[i]
				break
			}
			x -= w
		}
	}
	fl.gap = int64(float64(wordsOf(fl.size)) * f.pace)
	if fl.gap < 1 {
		fl.gap = 1
	}
	fl.salt = uint32(rng.Uint64())
	// Flow j starts when the aggregate offered words reach (j+φ)·mean —
	// φ jitters starts off the lattice while keeping them monotone in j.
	phi := u01(mix64(f.spec.Seed ^ uint64(j+1)*0xbf58476d1ce4e5b9))
	target := (float64(j) + phi) * f.meanFlowWords / float64(f.spec.Ports)
	fl.start = f.shape.invert(target)
	return fl
}

// FlowsThrough returns how many flows start in cycles [0, t) — the
// flow-index horizon used to bound Slice's enumeration, and the
// "million flows" of the day1m preset.
func (f *FlowProcess) FlowsThrough(t int64) int64 {
	agg := f.shape.wordsF(t) * float64(f.spec.Ports)
	return int64(agg / f.meanFlowWords)
}

// flows realizes the contiguous index window [jLo, jHi], reusing any
// overlap with the previous call's window instead of re-hashing it.
func (f *FlowProcess) flows(jLo, jHi int64) []flow {
	if jLo >= f.cacheLo && jLo <= f.cacheLo+int64(len(f.cache)) {
		// Sequential read: drop the flows that fell out of the window and
		// realize only the leading edge.
		f.cache = f.cache[jLo-f.cacheLo:]
		f.cacheLo = jLo
		for j := jLo + int64(len(f.cache)); j <= jHi; j++ {
			f.cache = append(f.cache, f.flowAt(j))
		}
	} else {
		// Out-of-order read (a restore, a sampled day): rebuild outright.
		out := make([]flow, 0, jHi-jLo+1)
		for j := jLo; j <= jHi; j++ {
			out = append(out, f.flowAt(j))
		}
		f.cacheLo, f.cache = jLo, out
	}
	return f.cache[:jHi-jLo+1]
}

// Slice implements Process.
func (f *FlowProcess) Slice(k int64) []Arrival {
	s0 := k * f.cyc
	s1 := s0 + f.cyc
	jLo := f.FlowsThrough(s0-f.maxSpan) - 1
	if jLo < 0 {
		jLo = 0
	}
	jHi := f.FlowsThrough(s1) + 1
	var out []Arrival
	for idx, fl := range f.flows(jLo, jHi) {
		j := jLo + int64(idx)
		if fl.start >= s1 {
			continue
		}
		last := fl.start + int64(fl.pkts-1)*fl.gap
		if last < s0 {
			continue
		}
		// Only the packets landing inside [s0, s1).
		i0 := int64(0)
		if fl.start < s0 {
			i0 = (s0 - fl.start + fl.gap - 1) / fl.gap
		}
		for i := i0; i < int64(fl.pkts); i++ {
			c := fl.start + i*fl.gap
			if c >= s1 {
				break
			}
			out = append(out, Arrival{
				Cycle: c,
				Port:  fl.port,
				Flow:  uint64(j),
				Seq:   uint32(i),
				Pkt: Pkt{
					Dst:       fl.dst,
					SizeBytes: fl.size,
					SrcIP:     PortAddr(fl.port, fl.salt),
					DstIP:     PortAddr(fl.dst, fl.salt*2654435761+uint32(i)),
				},
			})
		}
	}
	sortArrivals(out)
	return out
}

// SliceCycles implements Process.
func (f *FlowProcess) SliceCycles() int64 { return f.cyc }

// Ports implements Process.
func (f *FlowProcess) Ports() int { return f.spec.Ports }

// MeanFlowWords exposes the expected flow footprint (for tests and the
// bench harness).
func (f *FlowProcess) MeanFlowWords() float64 { return f.meanFlowWords }
