package traffic_test

import (
	"testing"

	"repro/internal/traffic"
)

// TestOpenLoopPurity: Slice(k) is a pure function of (Spec, k) — two
// processes agree arrival for arrival even when one is read out of
// order, for both the generic paced adapter and the native flows
// process.
func TestOpenLoopPurity(t *testing.T) {
	specs := []traffic.Spec{
		{Pattern: "uniform", Size: 512, Seed: 3, Rate: 0.7},
		{Pattern: "hotspot", Size: 256, Seed: 4, Rate: 0.5},
		{Pattern: "flows", Size: 1024, Seed: 5, Rate: 0.6},
	}
	for _, s := range specs {
		w := traffic.MustBuild(s)
		a, err := w.OpenLoop(1024)
		if err != nil {
			t.Fatal(err)
		}
		b, err := traffic.MustBuild(s).OpenLoop(1024)
		if err != nil {
			t.Fatal(err)
		}
		want17 := b.Slice(17) // out-of-order read, as a restore would
		for k := int64(0); k < 20; k++ {
			as, bs := a.Slice(k), b.Slice(k)
			if len(as) != len(bs) {
				t.Fatalf("%s slice %d: %d vs %d arrivals", s.Pattern, k, len(as), len(bs))
			}
			for i := range as {
				if as[i] != bs[i] {
					t.Fatalf("%s slice %d arrival %d differs", s.Pattern, k, i)
				}
			}
			if k == 17 && len(as) != len(want17) {
				t.Fatalf("%s: out-of-order read of slice 17 diverged", s.Pattern)
			}
		}
	}
}

// TestOpenLoopSliceBounds: every arrival lands inside its slice's cycle
// window, sorted by (Cycle, Port, Flow, Seq).
func TestOpenLoopSliceBounds(t *testing.T) {
	for _, pat := range []string{"uniform", "flows"} {
		w := traffic.MustBuild(traffic.Spec{Pattern: pat, Size: 512, Seed: 9, Rate: 0.9})
		proc, err := w.OpenLoop(2048)
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 12; k++ {
			lo, hi := k*2048, (k+1)*2048
			prev := traffic.Arrival{Cycle: -1}
			for _, a := range proc.Slice(k) {
				if a.Cycle < lo || a.Cycle >= hi {
					t.Fatalf("%s: arrival at cycle %d outside slice %d [%d, %d)", pat, a.Cycle, k, lo, hi)
				}
				if a.Cycle < prev.Cycle {
					t.Fatalf("%s: slice %d not cycle-sorted", pat, k)
				}
				if a.Pkt.Dst < 0 || a.Pkt.Dst >= 4 || a.Port < 0 || a.Port >= 4 {
					t.Fatalf("%s: port/dst out of range: %+v", pat, a)
				}
				prev = a
			}
		}
	}
}

// TestPacedBudget: the fixed-point pacer delivers the configured rate
// exactly over any horizon — per-port residue stays under one packet.
func TestPacedBudget(t *testing.T) {
	const size, cyc, slices = 1024, 4096, 64
	rate := 0.8
	w := traffic.MustBuild(traffic.Spec{Pattern: "uniform", Size: size, Seed: 1, Rate: rate})
	proc, err := w.OpenLoop(cyc)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]int64, 4)
	for k := int64(0); k < slices; k++ {
		for _, a := range proc.Slice(k) {
			words[a.Port] += int64((a.Pkt.SizeBytes + 3) / 4)
		}
	}
	budget := int64(float64(rate) * float64(cyc) * float64(slices))
	wordsPkt := int64((size + 3) / 4)
	for p, got := range words {
		if got > budget || budget-got >= wordsPkt {
			t.Fatalf("port %d delivered %d words of %d budget (residue must stay under one %d-word packet)",
				p, got, budget, wordsPkt)
		}
	}
}

// TestDiurnalCurveShapesLoad: with a low-then-high curve, the first
// half-day carries visibly less traffic than the second, and the total
// still matches the mean rate (the curve is normalized).
func TestDiurnalCurveShapesLoad(t *testing.T) {
	const day = 1 << 16
	w := traffic.MustBuild(traffic.Spec{
		Pattern: "uniform", Size: 512, Seed: 2, Rate: 0.6,
		DayCycles: day, Curve: []float64{0.25, 0.25, 1.75, 1.75},
	})
	proc, err := w.OpenLoop(1024)
	if err != nil {
		t.Fatal(err)
	}
	half := int64(day / 2 / 1024)
	var first, second int64
	for k := int64(0); k < 2*half; k++ {
		n := int64(len(proc.Slice(k)))
		if k < half {
			first += n
		} else {
			second += n
		}
	}
	if first == 0 || second == 0 {
		t.Fatal("curve starved a half-day entirely")
	}
	if ratio := float64(second) / float64(first); ratio < 1.5 {
		t.Fatalf("second half carried only %.2fx the first; curve not applied", ratio)
	}
	total := float64(first+second) / float64(2*half)
	// Total arrivals should track the flat-rate count within ~15%.
	flatW := traffic.MustBuild(traffic.Spec{Pattern: "uniform", Size: 512, Seed: 2, Rate: 0.6})
	flatP, _ := flatW.OpenLoop(1024)
	var flat int64
	for k := int64(0); k < 2*half; k++ {
		flat += int64(len(flatP.Slice(k)))
	}
	flatMean := float64(flat) / float64(2*half)
	if total < flatMean*0.85 || total > flatMean*1.15 {
		t.Fatalf("curve mean %.1f arrivals/slice vs flat %.1f; normalization broken", total, flatMean)
	}
}

// TestSurgeAddsLoad: a flash-crowd surge multiplies arrivals inside its
// window and leaves the rest of the day untouched.
func TestSurgeAddsLoad(t *testing.T) {
	base := traffic.Spec{Pattern: "uniform", Size: 512, Seed: 6, Rate: 0.4}
	surged := base
	surged.Surges = []traffic.Surge{{At: 8 * 1024, Dur: 8 * 1024, Mult: 4}}
	pb, err := traffic.MustBuild(base).OpenLoop(1024)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := traffic.MustBuild(surged).OpenLoop(1024)
	if err != nil {
		t.Fatal(err)
	}
	count := func(p traffic.Process, lo, hi int64) int64 {
		var n int64
		for k := lo; k < hi; k++ {
			n += int64(len(p.Slice(k)))
		}
		return n
	}
	before := count(ps, 0, 8)
	inside := count(ps, 8, 16)
	baseInside := count(pb, 8, 16)
	if before != count(pb, 0, 8) {
		t.Fatal("surge changed traffic before its window")
	}
	if inside < 3*baseInside {
		t.Fatalf("surge window carried %d arrivals vs %d base; want ~4x", inside, baseInside)
	}
}

// TestClosedLoopAdapter: the processSource adapter hands out exactly
// the open-loop stream's packets for its port, in order.
func TestClosedLoopAdapter(t *testing.T) {
	s := traffic.Spec{Pattern: "flows", Size: 512, Seed: 8, Rate: 0.7}
	w := traffic.MustBuild(s)
	proc, err := w.OpenLoop(4096)
	if err != nil {
		t.Fatal(err)
	}
	var want []traffic.Pkt
	for k := int64(0); k < 4 && len(want) < 50; k++ {
		for _, a := range proc.Slice(k) {
			if a.Port == 2 {
				want = append(want, a.Pkt)
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("port 2 saw no arrivals")
	}
	src, err := w.Source(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, wp := range want {
		if got := src.Next(); got != wp {
			t.Fatalf("adapter packet %d = %+v, want %+v", i, got, wp)
		}
	}
}
