package traffic

// TRAF1 — the replayable binary trace format. A trace is a recorded
// window of an open-loop arrival process: the generating Spec (as JSON,
// for provenance), the slice length it was recorded on, and every
// timestamped arrival. Encoding follows the repo's checkpoint-blob
// discipline (RTRCKPT1/SRVCKPT1/FABCKPT1): an 8-byte magic, little-
// endian u64 framing, an FNV-64a trailer over everything that precedes
// it, and a decoder that bounds-checks every read. Encode(Parse(b)) == b
// for any valid blob, so "recorded once, versioned forever" is testable
// as byte identity.
//
//	"TRAF1\x00\x00\x00"
//	u64 sliceCycles | u64 ports
//	u64 specLen | specLen bytes of Spec JSON
//	u64 count   | count × (u64 cycle, u64 flow,
//	                       u32 seq, u32 size, u32 port, u32 dst,
//	                       u32 srcIP, u32 dstIP)
//	u64 fnv64a of all preceding bytes

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"repro/internal/ip"
)

// specToJSON renders the provenance spec deterministically (struct field
// order is fixed; encoding/json sorts the Params map keys), so the same
// Trace always encodes to the same bytes.
func specToJSON(s Spec) ([]byte, error) { return json.Marshal(s) }

const traceMagic = "TRAF1\x00\x00\x00"

func init() {
	Register(Pattern{
		Name:     "trace",
		Doc:      "replay a recorded TRAF1 trace file (spec field trace=FILE)",
		Defaults: map[string]float64{},
		Process: func(s *Spec, sliceCycles int64) (Process, error) {
			tr, err := LoadTrace(s.TracePath)
			if err != nil {
				return nil, err
			}
			return tr.Process(sliceCycles), nil
		},
		Check: func(s *Spec) error {
			if s.TracePath == "" {
				return fmt.Errorf("traffic: trace pattern needs a trace file (trace:FILE)")
			}
			return nil
		},
	})
}

// Trace is a decoded TRAF1 blob.
type Trace struct {
	// Spec is the generating workload spec (provenance; replay does not
	// re-run it).
	Spec Spec
	// SliceCyclesRec is the slice length the trace was recorded on.
	SliceCyclesRec int64
	// NumPorts is the port count the arrivals span.
	NumPorts int
	// Arrivals is the full recorded stream in canonical order.
	Arrivals []Arrival
}

// Record materializes the first `slices` slices of the workload's
// open-loop process into a trace.
func Record(w *Workload, sliceCycles, slices int64) (*Trace, error) {
	proc, err := w.OpenLoop(sliceCycles)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Spec: w.Spec, SliceCyclesRec: sliceCycles, NumPorts: proc.Ports()}
	for k := int64(0); k < slices; k++ {
		tr.Arrivals = append(tr.Arrivals, proc.Slice(k)...)
	}
	return tr, nil
}

// Encode serializes the trace to a TRAF1 blob.
func (t *Trace) Encode() ([]byte, error) {
	specJSON, err := specToJSON(t.Spec)
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, 64+len(specJSON)+36*len(t.Arrivals))
	b = append(b, traceMagic...)
	b = appendU64(b, uint64(t.SliceCyclesRec))
	b = appendU64(b, uint64(t.NumPorts))
	b = appendU64(b, uint64(len(specJSON)))
	b = append(b, specJSON...)
	b = appendU64(b, uint64(len(t.Arrivals)))
	for i := range t.Arrivals {
		a := &t.Arrivals[i]
		b = appendU64(b, uint64(a.Cycle))
		b = appendU64(b, a.Flow)
		b = appendU32(b, a.Seq)
		b = appendU32(b, uint32(a.Pkt.SizeBytes))
		b = appendU32(b, uint32(a.Port))
		b = appendU32(b, uint32(a.Pkt.Dst))
		b = appendU32(b, uint32(a.Pkt.SrcIP))
		b = appendU32(b, uint32(a.Pkt.DstIP))
	}
	h := fnv.New64a()
	h.Write(b)
	b = appendU64(b, h.Sum64())
	return b, nil
}

// ParseTrace decodes a TRAF1 blob, verifying framing and checksum.
func ParseTrace(b []byte) (*Trace, error) {
	bad := func(format string, args ...any) (*Trace, error) {
		return nil, fmt.Errorf("traffic: bad TRAF1 blob: "+format, args...)
	}
	if len(b) < len(traceMagic)+8 || string(b[:len(traceMagic)]) != traceMagic {
		return bad("missing magic")
	}
	body, tail := b[:len(b)-8], b[len(b)-8:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(tail) {
		return bad("checksum mismatch")
	}
	r := &blobReader{b: body, off: len(traceMagic)}
	t := &Trace{}
	t.SliceCyclesRec = int64(r.u64())
	t.NumPorts = int(r.u64())
	specLen := r.u64()
	if specLen > uint64(len(body)) {
		return bad("spec length %d exceeds blob", specLen)
	}
	specJSON := r.bytes(int(specLen))
	count := r.u64()
	if count > uint64(len(body))/36 {
		return bad("arrival count %d exceeds blob", count)
	}
	t.Arrivals = make([]Arrival, count)
	for i := range t.Arrivals {
		a := &t.Arrivals[i]
		a.Cycle = int64(r.u64())
		a.Flow = r.u64()
		a.Seq = r.u32()
		a.Pkt.SizeBytes = int(r.u32())
		a.Port = int(r.u32())
		a.Pkt.Dst = int(r.u32())
		a.Pkt.SrcIP = ip.Addr(r.u32())
		a.Pkt.DstIP = ip.Addr(r.u32())
	}
	if r.err {
		return bad("truncated")
	}
	if r.off != len(body) {
		return bad("%d trailing bytes", len(body)-r.off)
	}
	if t.SliceCyclesRec <= 0 || t.NumPorts < 1 || t.NumPorts > 1024 {
		return bad("sliceCycles %d / ports %d out of range", t.SliceCyclesRec, t.NumPorts)
	}
	for i := range t.Arrivals {
		a := &t.Arrivals[i]
		if a.Cycle < 0 || a.Port < 0 || a.Port >= t.NumPorts ||
			a.Pkt.Dst < 0 || a.Pkt.Dst >= t.NumPorts || a.Pkt.SizeBytes < ip.HeaderBytes {
			return bad("arrival %d out of range", i)
		}
	}
	if len(specJSON) > 0 {
		s, err := ParseSpecJSON(specJSON)
		if err != nil {
			return bad("embedded spec: %v", err)
		}
		t.Spec = s
	}
	return t, nil
}

// WriteFile atomically writes the trace next to path.
func (t *Trace) WriteFile(path string) error {
	b, err := t.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadTrace reads and decodes a TRAF1 file.
func LoadTrace(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: trace file: %w", err)
	}
	return ParseTrace(b)
}

// DstWords sums on-wire words per destination port — the ledger the
// cross-engine acceptance test compares delivered words against.
func (t *Trace) DstWords() []int64 {
	out := make([]int64, t.NumPorts)
	for i := range t.Arrivals {
		a := &t.Arrivals[i]
		out[a.Pkt.Dst] += int64(wordsOf(a.Pkt.SizeBytes))
	}
	return out
}

// Process returns a replay view of the trace on the given slice length
// (re-bucketing the timestamped arrivals; the recorded slice length
// need not match).
func (t *Trace) Process(sliceCycles int64) Process {
	if sliceCycles <= 0 {
		sliceCycles = t.SliceCyclesRec
	}
	return &traceProcess{tr: t, cyc: sliceCycles}
}

type traceProcess struct {
	tr  *Trace
	cyc int64
}

// Slice implements Process: the arrivals with Cycle in [k*S, (k+1)*S).
// The stored stream is in canonical order, so a contiguous cycle range
// is a contiguous slice of it.
func (p *traceProcess) Slice(k int64) []Arrival {
	arr := p.tr.Arrivals
	lo := sort.Search(len(arr), func(i int) bool { return arr[i].Cycle >= k*p.cyc })
	hi := sort.Search(len(arr), func(i int) bool { return arr[i].Cycle >= (k+1)*p.cyc })
	if lo == hi {
		return nil
	}
	return arr[lo:hi:hi]
}

// SliceCycles implements Process.
func (p *traceProcess) SliceCycles() int64 { return p.cyc }

// Ports implements Process.
func (p *traceProcess) Ports() int { return p.tr.NumPorts }

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

type blobReader struct {
	b   []byte
	off int
	err bool
}

func (r *blobReader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *blobReader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *blobReader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.err = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}
