package traffic

// The declarative workload API. A Spec names a pattern from the
// registry plus the distributions, load curve, and seed that
// parameterize it; Build compiles the Spec into a Workload exposing the
// two driving contracts:
//
//   - closed-loop: Workload.Source(port).Next() — the caller decides
//     when the next packet is offered (saturation studies, the paper's
//     fixed sweeps);
//   - open-loop: Workload.OpenLoop(sliceCycles).Slice(k) — timestamped
//     arrivals the workload decides, a pure function of (Spec, k), so a
//     restored run resumes the identical stream and a recorded trace
//     replays byte-identically.
//
// The Spec replaces the NewUniform/NewHotspot/NewBursty/NewSizeMix/...
// constructor zoo: patterns self-register (Register) and every consumer
// — serve feeder, experiment harness, cluster collectives, the click
// and switchfab baselines, the -workload CLI flag — goes through Build.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ip"
)

// Surge is one flash-crowd episode of an open-loop load curve: offered
// load is multiplied by Mult over cycles [At, At+Dur).
type Surge struct {
	At   int64   `json:"at"`
	Dur  int64   `json:"dur"`
	Mult float64 `json:"mult"`
}

// Spec is the declarative workload description. The zero value of every
// field is a sensible default (filled by Build); Pattern is the only
// required field.
type Spec struct {
	// Pattern names a registered pattern (see Patterns()).
	Pattern string `json:"pattern"`
	// Ports is the port count the workload spans (default 4).
	Ports int `json:"ports,omitempty"`
	// Size is the fixed on-wire packet size in bytes, header included
	// (default 1024). Ignored when Sizes is set.
	Size int `json:"size,omitempty"`
	// Seed drives every random draw (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Params are pattern-specific knobs; missing keys take the pattern's
	// registered defaults (e.g. hotspot frac, Zipf skew, Pareto alpha).
	Params map[string]float64 `json:"params,omitempty"`
	// Sizes/Weights draw each packet's size from a weighted mix instead
	// of the fixed Size (flow patterns draw once per flow).
	Sizes   []int     `json:"sizes,omitempty"`
	Weights []float64 `json:"weights,omitempty"`

	// Rate is the open-loop offered load per port in words per cycle
	// (1.0 = line rate; default 0.8). Closed-loop drivers ignore it.
	Rate float64 `json:"rate,omitempty"`
	// DayCycles is the period of the diurnal load curve (0 = flat load).
	DayCycles int64 `json:"day_cycles,omitempty"`
	// Curve holds relative load levels spaced evenly over DayCycles,
	// interpolated piecewise-linearly and wrapped (a diurnal profile).
	// Empty = flat. Mean level is normalized away: Rate stays the mean.
	Curve []float64 `json:"curve,omitempty"`
	// Surges are flash crowds layered on the curve.
	Surges []Surge `json:"surges,omitempty"`
	// TracePath names a TRAF1 trace file (pattern "trace" only).
	TracePath string `json:"trace,omitempty"`
}

// Pattern is one registry entry: how to build the closed-loop sources
// and (optionally) a native open-loop process for a Spec.
type Pattern struct {
	// Name is the registry key.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Defaults are the pattern's parameter defaults; Validate rejects
	// Params keys not listed here.
	Defaults map[string]float64
	// Source builds the closed-loop source for one port. May be nil for
	// patterns that only exist as recorded arrivals (trace replay uses
	// the generic adapter instead).
	Source func(s *Spec, port int, rng *RNG) (Source, error)
	// Process builds a native open-loop arrival process. Nil = the
	// generic rate-paced adapter over Source (see openloop.go).
	Process func(s *Spec, sliceCycles int64) (Process, error)
	// Check, if non-nil, validates pattern-specific invariants beyond
	// the generic ones.
	Check func(s *Spec) error
}

var registry = map[string]*Pattern{}

// Register installs a pattern. Duplicate names panic: the registry is
// assembled from init functions and a collision is a programming error.
func Register(p Pattern) {
	if p.Name == "" {
		panic("traffic: Register with empty name")
	}
	if _, dup := registry[p.Name]; dup {
		panic("traffic: duplicate pattern " + p.Name)
	}
	registry[p.Name] = &p
}

// Patterns lists the registered pattern names, sorted.
func Patterns() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupPattern returns a registry entry.
func LookupPattern(name string) (*Pattern, bool) {
	p, ok := registry[name]
	return p, ok
}

// withDefaults fills zero fields; it leaves s.Params untouched (lookup
// goes through param()).
func (s *Spec) withDefaults() {
	if s.Ports == 0 {
		s.Ports = 4
	}
	if s.Size == 0 {
		s.Size = 1024
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Rate == 0 {
		s.Rate = 0.8
	}
}

// param resolves a knob: explicit Params value, else the pattern
// default.
func (s *Spec) param(name string) float64 {
	if v, ok := s.Params[name]; ok {
		return v
	}
	if p, ok := registry[s.Pattern]; ok {
		return p.Defaults[name]
	}
	return 0
}

// Validate checks the spec against the registry and the generic
// invariants. It does not mutate the spec.
func (s *Spec) Validate() error {
	pat, ok := registry[s.Pattern]
	if !ok {
		return fmt.Errorf("traffic: unknown pattern %q (have %s)", s.Pattern, strings.Join(Patterns(), ", "))
	}
	if s.Ports < 0 || (s.Ports != 0 && s.Ports < 2) || s.Ports > 1024 {
		return fmt.Errorf("traffic: port count %d out of range [2, 1024]", s.Ports)
	}
	if s.Size != 0 && (s.Size < ip.HeaderBytes || s.Size > 65535) {
		return fmt.Errorf("traffic: packet size %dB out of range [%d, 65535]", s.Size, ip.HeaderBytes)
	}
	if len(s.Sizes) != len(s.Weights) {
		return fmt.Errorf("traffic: %d sizes but %d weights", len(s.Sizes), len(s.Weights))
	}
	var wsum float64
	for i, sz := range s.Sizes {
		if sz < ip.HeaderBytes || sz > 65535 {
			return fmt.Errorf("traffic: size mix entry %dB out of range [%d, 65535]", sz, ip.HeaderBytes)
		}
		if !(s.Weights[i] >= 0) || s.Weights[i] > 1e9 {
			return fmt.Errorf("traffic: weight %v for size %dB out of range [0, 1e9]", s.Weights[i], sz)
		}
		wsum += s.Weights[i]
	}
	if len(s.Sizes) > 0 && wsum <= 0 {
		return fmt.Errorf("traffic: size-mix weights sum to %v; need positive mass", wsum)
	}
	if s.Rate < 0 || s.Rate > 8 {
		return fmt.Errorf("traffic: rate %v words/cycle/port out of range [0, 8]", s.Rate)
	}
	if s.DayCycles < 0 {
		return fmt.Errorf("traffic: negative day length %d", s.DayCycles)
	}
	if len(s.Curve) > 0 && s.DayCycles == 0 {
		return fmt.Errorf("traffic: a load curve needs day_cycles > 0")
	}
	if len(s.Curve) == 1 {
		return fmt.Errorf("traffic: a load curve needs at least 2 points")
	}
	if len(s.Curve) > 4096 {
		return fmt.Errorf("traffic: load curve with %d points (max 4096)", len(s.Curve))
	}
	var csum float64
	for _, lv := range s.Curve {
		if !(lv >= 0) || lv > 1e6 {
			return fmt.Errorf("traffic: curve level %v out of range [0, 1e6]", lv)
		}
		csum += lv
	}
	if len(s.Curve) > 0 && csum <= 0 {
		return fmt.Errorf("traffic: load curve is identically zero")
	}
	if len(s.Surges) > 1024 {
		return fmt.Errorf("traffic: %d surges (max 1024)", len(s.Surges))
	}
	for _, su := range s.Surges {
		if su.At < 0 || su.Dur <= 0 {
			return fmt.Errorf("traffic: surge window [%d, +%d) must have At >= 0, Dur > 0", su.At, su.Dur)
		}
		if !(su.Mult >= 0) || su.Mult > 1e6 {
			return fmt.Errorf("traffic: surge multiplier %v out of range [0, 1e6]", su.Mult)
		}
	}
	for k, v := range s.Params {
		if _, ok := pat.Defaults[k]; !ok {
			known := make([]string, 0, len(pat.Defaults))
			for d := range pat.Defaults {
				known = append(known, d)
			}
			sort.Strings(known)
			return fmt.Errorf("traffic: pattern %s has no parameter %q (have %s)", s.Pattern, k, strings.Join(known, ", "))
		}
		if v != v || v < -1e12 || v > 1e12 {
			return fmt.Errorf("traffic: parameter %s=%v out of range", k, v)
		}
	}
	if pat.Check != nil {
		if err := pat.Check(s); err != nil {
			return err
		}
	}
	return nil
}

// Workload is a compiled Spec.
type Workload struct {
	// Spec is the validated, default-filled spec the workload was built
	// from.
	Spec Spec
	pat  *Pattern
}

// Build validates the spec, fills defaults, and compiles it.
func Build(s Spec) (*Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.withDefaults()
	return &Workload{Spec: s, pat: registry[s.Pattern]}, nil
}

// MustBuild is Build for specs known good at compile time.
func MustBuild(s Spec) *Workload {
	w, err := Build(s)
	if err != nil {
		panic(err)
	}
	return w
}

// Source returns the closed-loop source for one port. Ports are
// independent streams: each gets a seed-forked RNG, so a caller driving
// a subset of ports still sees the canonical streams on those ports.
func (w *Workload) Source(port int) (Source, error) {
	if port < 0 || port >= w.Spec.Ports {
		return nil, fmt.Errorf("traffic: port %d out of range [0, %d)", port, w.Spec.Ports)
	}
	if w.pat.Source == nil {
		// Open-loop-only pattern (trace replay): adapt the arrival stream,
		// dropping timestamps.
		proc, err := w.OpenLoop(defaultSliceCycles)
		if err != nil {
			return nil, err
		}
		return &processSource{proc: proc, port: port}, nil
	}
	rng := NewRNG(mix64(w.Spec.Seed ^ uint64(port)*0x9e3779b97f4a7c15 + 1))
	src, err := w.pat.Source(&w.Spec, port, rng)
	if err != nil {
		return nil, err
	}
	if len(w.Spec.Sizes) > 0 {
		src = &SizeMix{Inner: src, SizesB: w.Spec.Sizes, Weights: w.Spec.Weights,
			rng: NewRNG(mix64(w.Spec.Seed ^ uint64(port)*0x9e3779b97f4a7c15 + 2))}
	}
	return src, nil
}

// Sources builds every port's closed-loop source.
func (w *Workload) Sources() ([]Source, error) {
	srcs := make([]Source, w.Spec.Ports)
	for p := range srcs {
		var err error
		if srcs[p], err = w.Source(p); err != nil {
			return nil, err
		}
	}
	return srcs, nil
}

// OpenLoop returns the workload's open-loop arrival process on the
// given slice length. Patterns with a native process (flows, trace) use
// it; everything else gets the generic rate-paced adapter whose
// arrivals are a pure function of (Spec, slice, port).
func (w *Workload) OpenLoop(sliceCycles int64) (Process, error) {
	if sliceCycles <= 0 {
		return nil, fmt.Errorf("traffic: open-loop slice length must be positive, got %d", sliceCycles)
	}
	if w.pat.Process != nil {
		return w.pat.Process(&w.Spec, sliceCycles)
	}
	return newPacedProcess(w, sliceCycles)
}

// ParseSpecJSON decodes a JSON spec document (unknown fields rejected,
// so a typo fails loudly instead of silently running the default).
func ParseSpecJSON(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("traffic: spec JSON: %w", err)
	}
	return s, nil
}

// LoadSpec reads a spec from a JSON file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("traffic: spec file: %w", err)
	}
	return ParseSpecJSON(data)
}

// ParseSpec parses the CLI shorthand:
//
//	NAME[:key=val,...]     inline pattern spec
//	json:FILE              JSON spec document
//	trace:FILE             TRAF1 trace replay
//	PRESET                 a named preset (see Presets)
//
// Inline keys: ports, size, seed, rate, day (DayCycles); sizes and
// weights take /-separated lists (sizes=64/1024,weights=9/1); curve
// takes /-separated levels (curve=0.2/1/0.4). Any other key must be a
// parameter of the named pattern.
func ParseSpec(text string) (Spec, error) {
	name, rest, hasRest := strings.Cut(text, ":")
	switch name {
	case "json":
		if rest == "" {
			return Spec{}, fmt.Errorf("traffic: json spec needs a file: json:FILE")
		}
		return LoadSpec(rest)
	case "trace":
		if rest == "" {
			return Spec{}, fmt.Errorf("traffic: trace spec needs a file: trace:FILE")
		}
		return Spec{Pattern: "trace", TracePath: rest}, nil
	}
	if preset, ok := Presets()[text]; ok {
		return preset, nil
	}
	s := Spec{Pattern: name}
	if !hasRest {
		return s, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("traffic: bad spec term %q (want key=val)", kv)
		}
		if err := s.setKey(key, val); err != nil {
			return Spec{}, err
		}
	}
	return s, nil
}

func (s *Spec) setKey(key, val string) error {
	badNum := func(err error) error {
		return fmt.Errorf("traffic: spec key %s=%q: %v", key, val, err)
	}
	switch key {
	case "ports", "size", "day":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return badNum(err)
		}
		switch key {
		case "ports":
			s.Ports = int(n)
		case "size":
			s.Size = int(n)
		case "day":
			s.DayCycles = n
		}
	case "seed":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return badNum(err)
		}
		s.Seed = n
	case "rate":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return badNum(err)
		}
		s.Rate = f
	case "sizes":
		for _, t := range strings.Split(val, "/") {
			n, err := strconv.ParseInt(t, 10, 32)
			if err != nil {
				return badNum(err)
			}
			s.Sizes = append(s.Sizes, int(n))
		}
	case "weights", "curve":
		var out []float64
		for _, t := range strings.Split(val, "/") {
			f, err := strconv.ParseFloat(t, 64)
			if err != nil {
				return badNum(err)
			}
			out = append(out, f)
		}
		if key == "weights" {
			s.Weights = out
		} else {
			s.Curve = out
		}
	default:
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("traffic: spec key %q is not a field or numeric parameter", key)
		}
		if s.Params == nil {
			s.Params = map[string]float64{}
		}
		s.Params[key] = f
	}
	return nil
}

// String renders the spec back in the inline shorthand (canonical key
// order), for logs and table captions.
func joinInts(v []int) string {
	parts := make([]string, len(v))
	for i, n := range v {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, "/")
}

func joinFloats(v []float64) string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strings.Join(parts, "/")
}

func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Pattern)
	var terms []string
	add := func(format string, args ...any) { terms = append(terms, fmt.Sprintf(format, args...)) }
	if s.Ports != 0 {
		add("ports=%d", s.Ports)
	}
	if s.Size != 0 {
		add("size=%d", s.Size)
	}
	if s.Seed != 0 {
		add("seed=%d", s.Seed)
	}
	if s.Rate != 0 {
		add("rate=%g", s.Rate)
	}
	if s.DayCycles != 0 {
		add("day=%d", s.DayCycles)
	}
	if len(s.Sizes) > 0 {
		add("sizes=%s", joinInts(s.Sizes))
	}
	if len(s.Weights) > 0 {
		add("weights=%s", joinFloats(s.Weights))
	}
	if len(s.Curve) > 0 {
		add("curve=%s", joinFloats(s.Curve))
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		add("%s=%g", k, s.Params[k])
	}
	if s.TracePath != "" {
		add("trace=%s", s.TracePath)
	}
	if len(terms) > 0 {
		b.WriteByte(':')
		b.WriteString(strings.Join(terms, ","))
	}
	return b.String()
}
