package traffic

// Registry entries for the closed-loop patterns: the paper's three
// sweeps (uniform, permutation, hotspot), the bursty adversary, and the
// fabric collectives. Each wraps the corresponding Source type from
// traffic.go/collective.go; the deprecated New* constructors remain as
// thin shims over these for one release.

import "fmt"

func init() {
	Register(Pattern{
		Name:     "uniform",
		Doc:      "i.i.d. uniform destinations (§7.3 average rate)",
		Defaults: map[string]float64{},
		Source: func(s *Spec, port int, rng *RNG) (Source, error) {
			return &Uniform{Ports: s.Ports, Size: s.Size, Src: port, rng: rng}, nil
		},
	})

	Register(Pattern{
		Name:     "permutation",
		Doc:      "conflict-free rotation i -> (i+offset) mod n (§7.2 peak rate)",
		Defaults: map[string]float64{"offset": 2},
		Source: func(s *Spec, port int, rng *RNG) (Source, error) {
			off := int(s.param("offset"))
			return &Permutation{Perm: RotatedPerm(s.Ports, off), Size: s.Size, Src: port}, nil
		},
		Check: func(s *Spec) error {
			off := s.param("offset")
			if off != float64(int(off)) || off < 0 {
				return fmt.Errorf("traffic: permutation offset %v must be a non-negative integer", off)
			}
			return nil
		},
	})

	Register(Pattern{
		Name:     "hotspot",
		Doc:      "fraction frac of traffic to one hot port, rest uniform",
		Defaults: map[string]float64{"frac": 0.7, "hot": 0},
		Source: func(s *Spec, port int, rng *RNG) (Source, error) {
			return &Hotspot{Ports: s.Ports, Size: s.Size, Src: port,
				Hot: int(s.param("hot")), Frac: s.param("frac"), rng: rng}, nil
		},
		Check: func(s *Spec) error {
			if f := s.param("frac"); !(f >= 0) || f > 1 {
				return fmt.Errorf("traffic: hotspot frac %v out of range [0, 1]", f)
			}
			ports := s.Ports
			if ports == 0 {
				ports = 4
			}
			if h := s.param("hot"); h != float64(int(h)) || int(h) < 0 || int(h) >= ports {
				return fmt.Errorf("traffic: hotspot port %v out of range [0, %d)", h, ports)
			}
			return nil
		},
	})

	Register(Pattern{
		Name:     "bursty",
		Doc:      "geometric ON-trains to one destination, mean length burst",
		Defaults: map[string]float64{"burst": 8},
		Source: func(s *Spec, port int, rng *RNG) (Source, error) {
			return &Bursty{Ports: s.Ports, Size: s.Size, Src: port,
				Burst: int(s.param("burst")), rng: rng}, nil
		},
		Check: func(s *Spec) error {
			if b := s.param("burst"); b != float64(int(b)) || b < 1 || b > 1e6 {
				return fmt.Errorf("traffic: burst length %v out of range [1, 1e6]", b)
			}
			return nil
		},
	})

	Register(Pattern{
		Name:     "allreduce",
		Doc:      "ring all-reduce schedule: every port streams to its successor",
		Defaults: map[string]float64{},
		Source: func(s *Spec, port int, rng *RNG) (Source, error) {
			return &RingAllReduce{Ports: s.Ports, Size: s.Size, Src: port}, nil
		},
	})

	Register(Pattern{
		Name:     "broadcast",
		Doc:      "root-to-leaves fanout; only port root transmits",
		Defaults: map[string]float64{"root": 0},
		Source: func(s *Spec, port int, rng *RNG) (Source, error) {
			root := int(s.param("root"))
			if port != root {
				// Leaves are silent; a silent closed-loop source would
				// deadlock a Next() caller, so synthesize an idle stream of
				// acks back to the root instead.
				return &Permutation{Perm: constPerm(s.Ports, root), Size: s.Size, Src: port}, nil
			}
			return &Broadcast{Ports: s.Ports, Size: s.Size, Root: root}, nil
		},
		Check: func(s *Spec) error {
			ports := s.Ports
			if ports == 0 {
				ports = 4
			}
			if r := s.param("root"); r != float64(int(r)) || int(r) < 0 || int(r) >= ports {
				return fmt.Errorf("traffic: broadcast root %v out of range [0, %d)", r, ports)
			}
			return nil
		},
	})
}

// constPerm maps every input to the same destination (leaf→root acks).
func constPerm(n, dst int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = dst
	}
	return p
}
