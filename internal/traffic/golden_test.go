package traffic_test

// The checked-in trace artifact. testdata/daymini.traf is the opening
// sixteen 4,096-cycle slices of the daymini preset — a seeded,
// diurnal-shaped heavy-tailed day at CI scale. CI regenerates the trace
// from the preset spec and byte-compares it against the artifact, so
// any drift in the RNG, the flow derivation, the load-shape inversion,
// or the TRAF1 encoder shows up as a diff, not as silently different
// experiments.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/traffic"
)

const goldenSlices = 16

func goldenEncode(t *testing.T) []byte {
	t.Helper()
	w, err := traffic.Build(traffic.Presets()["daymini"])
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.Record(w, 4096, goldenSlices)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestGoldenTraceArtifact(t *testing.T) {
	path := filepath.Join("testdata", "daymini.traf")
	enc := goldenEncode(t)
	if os.Getenv("UPDATE_TRAF") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(enc))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden artifact missing (regenerate with UPDATE_TRAF=1 go test ./internal/traffic -run TestGoldenTrace): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("regenerated daymini trace differs from %s (%d vs %d bytes): the workload is no longer a pure function of its spec, or the TRAF1 encoding changed — if intentional, refresh with UPDATE_TRAF=1",
			path, len(enc), len(want))
	}

	// The artifact must also load and replay as a first-class workload.
	tr, err := traffic.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) == 0 {
		t.Fatal("golden trace is empty")
	}
	var words int64
	for _, w := range tr.DstWords() {
		words += w
	}
	if words == 0 {
		t.Fatal("golden trace carries no words")
	}
	proc := tr.Process(4096)
	n := 0
	for k := int64(0); k < goldenSlices; k++ {
		n += len(proc.Slice(k))
	}
	if n != len(tr.Arrivals) {
		t.Fatalf("replay enumerates %d arrivals, trace holds %d", n, len(tr.Arrivals))
	}
}
