// Package traffic provides deterministic workload generation for the
// router experiments: seeded random numbers, per-port packet sources with
// the destination patterns the paper evaluates (conflict-free permutations
// for peak rate, uniform i.i.d. destinations for average rate — §7.2/§7.3
// — plus hotspot and bursty adversaries), and the canonical packet-size
// sweep {64 … 1,024} bytes of Figure 7-1.
package traffic

import "repro/internal/ip"

// Sizes is the packet-size sweep of Figure 7-1, in bytes.
var Sizes = []int{64, 128, 256, 512, 1024}

// RNG is a xorshift64* generator: tiny, fast, deterministic across runs
// and platforms.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; seed 0 is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("traffic: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent stream (for per-port generators).
func (r *RNG) Fork(salt uint64) *RNG {
	return NewRNG(r.Uint64() ^ salt*0x9e3779b97f4a7c15)
}

// Pkt describes one packet offered to an input port.
type Pkt struct {
	// Dst is the destination output port.
	Dst int
	// SizeBytes is the on-wire size including the IP header.
	SizeBytes int
	// SrcIP and DstIP are addresses consistent with Dst under the
	// experiment's route table (see PortAddr).
	SrcIP, DstIP ip.Addr
}

// Source generates the packet stream offered to one input port.
type Source interface {
	// Next returns the descriptor of the next packet.
	Next() Pkt
}

// PortPrefix returns the /8 prefix routed to output port p in the
// experiments' canonical route table: port p owns 10+p.0.0.0/8.
func PortPrefix(p int) (prefix uint32, plen int) {
	return uint32(10+p) << 24, 8
}

// PortAddr returns an address within port p's prefix, varied by salt.
func PortAddr(p int, salt uint32) ip.Addr {
	return ip.Addr(uint32(10+p)<<24 | salt&0x00ffffff)
}

// Uniform sends each packet to an independently uniform destination — the
// "complete fairness of the traffic" of §7.3.
type Uniform struct {
	Ports int
	Size  int
	Src   int
	rng   *RNG
	n     uint32
}

// Next implements Source.
func (u *Uniform) Next() Pkt {
	u.n++
	dst := u.rng.Intn(u.Ports)
	return Pkt{
		Dst:       dst,
		SizeBytes: u.Size,
		SrcIP:     PortAddr(u.Src, u.n),
		DstIP:     PortAddr(dst, u.n*2654435761),
	}
}

// Permutation sends every packet from port i to port perm[i] — the
// conflict-free pattern used for peak rate (§7.2) when perm is a
// derangement or identity-free permutation.
type Permutation struct {
	Perm []int
	Size int
	Src  int
	n    uint32
}

// RotatedPerm returns the canonical conflict-free permutation of Figure
// 5-1: input i sends to output (i+2) mod n (and for odd offsets any
// rotation works).
func RotatedPerm(n, offset int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = (i + offset) % n
	}
	return p
}

// Next implements Source.
func (p *Permutation) Next() Pkt {
	p.n++
	dst := p.Perm[p.Src]
	return Pkt{
		Dst:       dst,
		SizeBytes: p.Size,
		SrcIP:     PortAddr(p.Src, p.n),
		DstIP:     PortAddr(dst, p.n*2654435761),
	}
}

// Hotspot sends fraction Frac of traffic to port Hot and the rest
// uniformly — the classic output-contention adversary.
type Hotspot struct {
	Ports int
	Size  int
	Src   int
	Hot   int
	Frac  float64
	rng   *RNG
	n     uint32
}

// Next implements Source.
func (h *Hotspot) Next() Pkt {
	h.n++
	dst := h.Hot
	if h.rng.Float64() >= h.Frac {
		dst = h.rng.Intn(h.Ports)
	}
	return Pkt{
		Dst:       dst,
		SizeBytes: h.Size,
		SrcIP:     PortAddr(h.Src, h.n),
		DstIP:     PortAddr(dst, h.n),
	}
}

// SizeMix wraps a Source and draws each packet's size from a weighted
// mix — used for the variable-length experiments (E12).
type SizeMix struct {
	Inner   Source
	SizesB  []int
	Weights []float64
	rng     *RNG
}

// Next implements Source.
func (m *SizeMix) Next() Pkt {
	p := m.Inner.Next()
	var tot float64
	for _, w := range m.Weights {
		tot += w
	}
	x := m.rng.Float64() * tot
	for i, w := range m.Weights {
		if x < w {
			p.SizeBytes = m.SizesB[i]
			break
		}
		x -= w
	}
	return p
}

// Bursty alternates between ON periods (packets to a fixed destination)
// and per-packet re-rolls, modeling TCP-like trains of packets to one
// flow. Mean burst length is Burst packets.
type Bursty struct {
	Ports int
	Size  int
	Src   int
	Burst int
	rng   *RNG
	cur   int
	left  int
	n     uint32
}

// Next implements Source.
func (b *Bursty) Next() Pkt {
	if b.left <= 0 {
		b.cur = b.rng.Intn(b.Ports)
		b.left = 1
		for b.rng.Float64() < 1-1/float64(b.Burst) {
			b.left++
		}
	}
	b.left--
	b.n++
	return Pkt{
		Dst:       b.cur,
		SizeBytes: b.Size,
		SrcIP:     PortAddr(b.Src, b.n),
		DstIP:     PortAddr(b.cur, b.n),
	}
}
