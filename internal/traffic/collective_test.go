package traffic_test

import (
	"testing"

	"repro/internal/traffic"
)

func TestRingAllReduceSchedule(t *testing.T) {
	const ports = 4
	wl := traffic.MustBuild(traffic.Spec{Pattern: "allreduce", Ports: ports, Size: 256})
	for src := 0; src < ports; src++ {
		gen, err := wl.Source(src)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := gen.(*traffic.RingAllReduce)
		if !ok {
			t.Fatalf("allreduce source is %T, want *RingAllReduce", gen)
		}
		want := (src + 1) % ports
		for i := 0; i < 3*2*(ports-1); i++ {
			step := s.Step()
			p := s.Next()
			if p.Dst != want {
				t.Fatalf("rank %d pkt %d sent to %d, want successor %d", src, i, p.Dst, want)
			}
			if p.SizeBytes != 256 {
				t.Fatalf("size %d", p.SizeBytes)
			}
			if step != i%(2*(ports-1)) {
				t.Fatalf("rank %d pkt %d at step %d, want %d", src, i, step, i%(2*(ports-1)))
			}
		}
	}
}

func TestBroadcastLeaves(t *testing.T) {
	const ports = 5
	for root := 0; root < ports; root++ {
		wl := traffic.MustBuild(traffic.Spec{
			Pattern: "broadcast", Ports: ports, Size: 128,
			Params: map[string]float64{"root": float64(root)},
		})
		b, err := wl.Source(root)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		const rounds = 6
		for i := 0; i < rounds*(ports-1); i++ {
			p := b.Next()
			if p.Dst == root {
				t.Fatalf("root %d broadcast to itself", root)
			}
			counts[p.Dst]++
		}
		for d := 0; d < ports; d++ {
			if d == root {
				continue
			}
			if counts[d] != rounds {
				t.Fatalf("root %d: leaf %d got %d copies, want %d", root, d, counts[d], rounds)
			}
		}
		// Leaves synthesize an ack stream back to the root rather than
		// deadlocking a closed-loop caller.
		leaf, err := wl.Source((root + 1) % ports)
		if err != nil {
			t.Fatal(err)
		}
		if p := leaf.Next(); p.Dst != root {
			t.Fatalf("leaf ack went to %d, want root %d", p.Dst, root)
		}
	}
}
