package traffic_test

import (
	"testing"

	"repro/internal/traffic"
)

func TestRingAllReduceSchedule(t *testing.T) {
	const ports = 4
	for src := 0; src < ports; src++ {
		s := traffic.NewRingAllReduce(ports, 256, src)
		want := (src + 1) % ports
		for i := 0; i < 3*2*(ports-1); i++ {
			step := s.Step()
			p := s.Next()
			if p.Dst != want {
				t.Fatalf("rank %d pkt %d sent to %d, want successor %d", src, i, p.Dst, want)
			}
			if p.SizeBytes != 256 {
				t.Fatalf("size %d", p.SizeBytes)
			}
			if step != i%(2*(ports-1)) {
				t.Fatalf("rank %d pkt %d at step %d, want %d", src, i, step, i%(2*(ports-1)))
			}
		}
	}
}

func TestBroadcastLeaves(t *testing.T) {
	const ports = 5
	for root := 0; root < ports; root++ {
		b := traffic.NewBroadcast(ports, 128, root)
		counts := map[int]int{}
		const rounds = 6
		for i := 0; i < rounds*(ports-1); i++ {
			p := b.Next()
			if p.Dst == root {
				t.Fatalf("root %d broadcast to itself", root)
			}
			counts[p.Dst]++
		}
		for d := 0; d < ports; d++ {
			if d == root {
				continue
			}
			if counts[d] != rounds {
				t.Fatalf("root %d: leaf %d got %d copies, want %d", root, d, counts[d], rounds)
			}
		}
	}
}
