// Package core is the public face of the library: a Rotating Crossbar
// router on the Raw tiled architecture, runnable at two fidelity levels
// that share one allocation algorithm (internal/rotor):
//
//   - EngineCycle: the full cycle-level router of the paper — sixteen
//     simulated Raw tiles, generated static-switch programs, IP
//     validation, lookup in simulated DRAM (internal/router). Use it to
//     reproduce the paper's measured numbers.
//   - EngineFabric: a quantum-stepped model of just the switch fabric.
//     Use it for property studies, load sweeps, QoS/multicast/scaling
//     experiments, or whenever a million quanta per second matter more
//     than per-cycle truth.
//
// A minimal session:
//
//	r, _ := core.New(core.Options{})
//	r.Offer(0, core.Packet{Dst: 2, SizeBytes: 1024})
//	res := r.RunSaturated(100_000, core.UniformTraffic(1024, 1))
//	fmt.Println(res.Gbps, res.Mpps)
package core

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/raw"
	"repro/internal/rotor"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Engine selects the fidelity level.
type Engine int

// The two engines.
const (
	EngineCycle Engine = iota
	EngineFabric
)

// Options configures a router.
type Options struct {
	// Engine defaults to EngineCycle.
	Engine Engine
	// ClockHz defaults to the Raw prototype's 250 MHz.
	ClockHz float64
	// QuantumWords defaults to 256 (one 1,024-byte packet per quantum).
	QuantumWords int
	// Crypto enables the §8.3 computation-in-fabric payload cipher
	// (cycle engine only).
	Crypto    bool
	CryptoKey uint32
	// Weights, if set, are per-port token dwell counts for weighted
	// round-robin QoS (§8.7), honored by both engines.
	Weights []int
	// SecondNetwork adds the second static network (§5.3 ablation;
	// fabric engine only).
	SecondNetwork bool
	// Ports is the port count; the cycle engine supports exactly 4.
	Ports int
	// RouterConfig overrides the full cycle-engine configuration; zero
	// value uses defaults derived from the fields above.
	RouterConfig *router.Config
	// Workers shards the cycle engine's chip stepping across host
	// goroutines (0 or 1 = sequential). Results are bit-for-bit identical
	// at any worker count; only host throughput changes. Ignored by the
	// fabric engine.
	Workers int
	// ChipEngine selects the cycle engine's chip stepping strategy:
	// raw.EngineRef (the reference interpreter, the zero value) or
	// raw.EngineFast (compiled route tables). Like Workers it is purely a
	// host performance knob — results are bit-for-bit identical — and it
	// is ignored by the fabric engine. (Engine above picks the fidelity
	// level; ChipEngine picks how the cycle-true level is executed.)
	ChipEngine raw.Engine
}

// Packet is a routing request at the facade level.
type Packet struct {
	// Dst is the destination output port.
	Dst int
	// SizeBytes is the on-wire size (IP header included).
	SizeBytes int
	// SrcIP/DstIP override the synthetic addresses (cycle engine; DstIP
	// must resolve to Dst under the installed table).
	SrcIP, DstIP ip.Addr
}

// Results summarizes a run.
type Results struct {
	Cycles      int64
	Packets     int64
	Bytes       int64
	Gbps        float64
	Mpps        float64
	PerPort     []int64 // packets delivered per egress
	Denied      int64   // quanta lost to arbitration (offered load shed)
	ClockHz     float64
	Engine      Engine
	Reassembled int64
}

// Router is the façade over both engines.
type Router struct {
	opt Options

	cyc *router.Router
	fab *rotor.Fabric

	id uint16
}

// New builds a router.
func New(opt Options) (*Router, error) {
	if opt.Ports == 0 {
		opt.Ports = 4
	}
	if opt.ClockHz == 0 {
		opt.ClockHz = 250e6
	}
	if opt.QuantumWords == 0 {
		opt.QuantumWords = 256
	}
	r := &Router{opt: opt}
	switch opt.Engine {
	case EngineCycle:
		if opt.Ports != 4 {
			return nil, fmt.Errorf("core: the cycle engine implements the paper's 4-port router; got %d ports (use EngineFabric for §8.5 scaling)", opt.Ports)
		}
		cfg := router.DefaultConfig()
		if opt.RouterConfig != nil {
			cfg = *opt.RouterConfig
		}
		cfg.ClockHz = opt.ClockHz
		cfg.QuantumWords = opt.QuantumWords
		cfg.Workers = opt.Workers
		cfg.Engine = opt.ChipEngine
		cfg.Crypto = opt.Crypto
		cfg.CryptoKey = opt.CryptoKey
		cfg.Weights = opt.Weights
		cyc, err := router.New(cfg)
		if err != nil {
			return nil, err
		}
		r.cyc = cyc
	case EngineFabric:
		fcfg := rotor.DefaultFabricConfig()
		fcfg.Ports = opt.Ports
		fcfg.QuantumWords = opt.QuantumWords
		fcfg.Weights = opt.Weights
		fcfg.SecondNetwork = opt.SecondNetwork
		r.fab = rotor.NewFabric(fcfg)
	default:
		return nil, fmt.Errorf("core: unknown engine %d", opt.Engine)
	}
	return r, nil
}

// Cycle returns the underlying cycle-level router, or nil for the fabric
// engine. It exposes the full instrumented surface (tile traces, chip
// internals) for advanced use.
func (r *Router) Cycle() *router.Router { return r.cyc }

// Fabric returns the underlying quantum-stepped fabric, or nil.
func (r *Router) Fabric() *rotor.Fabric { return r.fab }

// Offer enqueues one packet at input port p.
func (r *Router) Offer(p int, pkt Packet) {
	if pkt.SizeBytes < ip.HeaderBytes {
		pkt.SizeBytes = ip.HeaderBytes
	}
	if r.fab != nil {
		r.fab.Offer(p, pkt.Dst, pkt.SizeBytes/4)
		return
	}
	r.id++
	src := pkt.SrcIP
	if src == 0 {
		src = traffic.PortAddr(p, uint32(r.id))
	}
	dst := pkt.DstIP
	if dst == 0 {
		dst = traffic.PortAddr(pkt.Dst, uint32(r.id)*2654435761)
	}
	ipPkt := ip.NewPacket(src, dst, 64, pkt.SizeBytes, r.id)
	r.cyc.OfferPacket(p, &ipPkt)
}

// TrafficGen produces the next packet for a port.
type TrafficGen func(port int) Packet

// UniformTraffic returns a generator with uniform destinations — the
// §7.3 average-rate workload.
func UniformTraffic(sizeBytes int, seed uint64) TrafficGen {
	rng := traffic.NewRNG(seed)
	return func(port int) Packet {
		return Packet{Dst: rng.Intn(4), SizeBytes: sizeBytes}
	}
}

// PermutationTraffic returns the conflict-free peak-rate workload (§7.2).
func PermutationTraffic(sizeBytes, offset int) TrafficGen {
	perm := traffic.RotatedPerm(4, offset)
	return func(port int) Packet {
		return Packet{Dst: perm[port], SizeBytes: sizeBytes}
	}
}

// RunSaturated drives every input at full backlog with gen for the given
// number of cycles and returns throughput results over those cycles.
func (r *Router) RunSaturated(cycles int64, gen TrafficGen) Results {
	return r.RunMeasured(0, cycles, gen)
}

// RunMeasured runs warmup cycles first (letting the data caches and the
// packet pipeline reach steady state) and then measures over the next
// measure cycles. All rates in the Results are for the measured window
// only.
func (r *Router) RunMeasured(warmup, measure int64, gen TrafficGen) Results {
	if r.fab != nil {
		r.runFabricFor(warmup, gen)
		before := r.snapFabric()
		r.runFabricFor(measure, gen)
		return r.fabricDelta(before)
	}
	r.runCycleFor(warmup, gen)
	before := r.snapCycle()
	r.runCycleFor(measure, gen)
	return r.cycleDelta(before)
}

type snapshot struct {
	cycles      int64
	pkts        int64
	words       int64
	perPort     []int64
	denied      int64
	reassembled int64
}

func (r *Router) runCycleFor(cycles int64, gen TrafficGen) {
	const step = 200
	for c := int64(0); c < cycles; c += step {
		for p := 0; p < 4; p++ {
			for r.cyc.InputBacklogWords(p) < 4096 {
				r.Offer(p, gen(p))
			}
		}
		r.cyc.Run(step)
	}
}

func (r *Router) snapCycle() snapshot {
	s := snapshot{cycles: r.cyc.Cycle(), pkts: r.cyc.TotalPktsOut()}
	for p := 0; p < 4; p++ {
		s.perPort = append(s.perPort, r.cyc.Stats().PktsOut[p])
		s.words += r.cyc.OutputWords(p)
		s.denied += r.cyc.Stats().Denied[p]
		s.reassembled += r.cyc.Stats().Reassembled[p]
	}
	return s
}

func (r *Router) cycleDelta(before snapshot) Results {
	now := r.snapCycle()
	cycles := now.cycles - before.cycles
	res := Results{
		Cycles:      cycles,
		Packets:     now.pkts - before.pkts,
		Bytes:       (now.words - before.words) * 4,
		Gbps:        stats.Gbps((now.words-before.words)*4, cycles, r.opt.ClockHz),
		Mpps:        stats.Mpps(now.pkts-before.pkts, cycles, r.opt.ClockHz),
		Denied:      now.denied - before.denied,
		Reassembled: now.reassembled - before.reassembled,
		ClockHz:     r.opt.ClockHz,
		Engine:      EngineCycle,
	}
	for p := 0; p < 4; p++ {
		res.PerPort = append(res.PerPort, now.perPort[p]-before.perPort[p])
	}
	return res
}

func (r *Router) runFabricFor(cycles int64, gen TrafficGen) {
	n := r.fab.Config().Ports
	end := r.fab.Cycles + cycles
	for r.fab.Cycles < end {
		for p := 0; p < n; p++ {
			for r.fab.QueueLen(p) < 4 {
				pkt := gen(p)
				r.fab.Offer(p, pkt.Dst, pkt.SizeBytes/4)
			}
		}
		r.fab.StepQuantum()
	}
}

func (r *Router) snapFabric() snapshot {
	n := r.fab.Config().Ports
	s := snapshot{cycles: r.fab.Cycles, pkts: r.fab.TotalPkts(), words: r.fab.TotalWords()}
	for p := 0; p < n; p++ {
		s.perPort = append(s.perPort, r.fab.PktsOut[p])
		s.denied += r.fab.BlockedPerInput[p]
	}
	return s
}

func (r *Router) fabricDelta(before snapshot) Results {
	now := r.snapFabric()
	n := r.fab.Config().Ports
	cycles := now.cycles - before.cycles
	res := Results{
		Cycles:  cycles,
		Packets: now.pkts - before.pkts,
		Bytes:   (now.words - before.words) * 4,
		Gbps:    stats.Gbps((now.words-before.words)*4, cycles, r.opt.ClockHz),
		Mpps:    stats.Mpps(now.pkts-before.pkts, cycles, r.opt.ClockHz),
		Denied:  now.denied - before.denied,
		ClockHz: r.opt.ClockHz,
		Engine:  EngineFabric,
	}
	for p := 0; p < n; p++ {
		res.PerPort = append(res.PerPort, now.perPort[p]-before.perPort[p])
	}
	return res
}
