package core_test

import (
	"testing"

	"repro/internal/core"
)

func TestCycleEngineQuickstart(t *testing.T) {
	r, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := r.RunSaturated(30000, core.PermutationTraffic(1024, 1))
	if res.Packets < 50 {
		t.Fatalf("only %d packets delivered", res.Packets)
	}
	if res.Gbps < 20 {
		t.Fatalf("cycle engine peak %.2f Gbps, expected ≈26", res.Gbps)
	}
	if res.Engine != core.EngineCycle {
		t.Fatal("wrong engine tag")
	}
}

func TestFabricEngineQuickstart(t *testing.T) {
	r, err := core.New(core.Options{Engine: core.EngineFabric})
	if err != nil {
		t.Fatal(err)
	}
	res := r.RunSaturated(100000, core.UniformTraffic(1024, 2))
	if res.Packets < 100 {
		t.Fatalf("only %d packets delivered", res.Packets)
	}
	if res.Gbps < 10 || res.Gbps > 32 {
		t.Fatalf("fabric engine %.2f Gbps out of range", res.Gbps)
	}
}

func TestEnginesAgreeOnShape(t *testing.T) {
	// The two fidelity levels must agree on the peak/average ratio within
	// a few points — they share the allocation algorithm.
	ratio := func(engine core.Engine) float64 {
		peakR, _ := core.New(core.Options{Engine: engine})
		peak := peakR.RunSaturated(60000, core.PermutationTraffic(256, 2)).Gbps
		avgR, _ := core.New(core.Options{Engine: engine})
		avg := avgR.RunSaturated(60000, core.UniformTraffic(256, 3)).Gbps
		return avg / peak
	}
	rc := ratio(core.EngineCycle)
	rf := ratio(core.EngineFabric)
	if d := rc - rf; d > 0.12 || d < -0.12 {
		t.Fatalf("cycle ratio %.3f vs fabric ratio %.3f: engines diverge", rc, rf)
	}
}

func TestFabricScaling8Ports(t *testing.T) {
	r, err := core.New(core.Options{Engine: core.EngineFabric, Ports: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(0)
	res := r.RunSaturated(50000, func(port int) core.Packet {
		rng = rng*6364136223846793005 + 1442695040888963407
		return core.Packet{Dst: int(rng>>33) % 8, SizeBytes: 512}
	})
	if res.Packets < 100 {
		t.Fatalf("8-port fabric delivered %d packets", res.Packets)
	}
}

func TestCycleEngineRejectsOddPorts(t *testing.T) {
	if _, err := core.New(core.Options{Ports: 8}); err == nil {
		t.Fatal("cycle engine accepted 8 ports")
	}
}

func TestWeightsBothEngines(t *testing.T) {
	// Fabric engine.
	rf, err := core.New(core.Options{Engine: core.EngineFabric, Weights: []int{3, 1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	rf.RunSaturated(200_000, func(port int) core.Packet { return core.Packet{Dst: 2, SizeBytes: 256} })
	f := rf.Fabric()
	if f.GrantsPerInput[0] < 2*f.GrantsPerInput[1] {
		t.Fatalf("fabric weights ineffective: %v", f.GrantsPerInput)
	}
	// Cycle engine accepts weights too (full check in internal/router).
	if _, err := core.New(core.Options{Weights: []int{3, 1, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.New(core.Options{Weights: []int{3, 1}}); err == nil {
		t.Fatal("bad weights accepted by cycle engine")
	}
}

func TestCryptoOptionPassthrough(t *testing.T) {
	r, err := core.New(core.Options{Crypto: true, CryptoKey: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cycle().Config().Crypto || r.Cycle().Config().CryptoKey != 5 {
		t.Fatal("crypto options not passed through")
	}
}
