package core

import "repro/internal/traffic"

// Open-loop facade helpers (serve-mode extension). Batch runs drive the
// router closed-loop — RunMeasured tops the input backlogs up from a
// generator every chunk — but a daemon admits externally arriving
// traffic and must advance the simulation whether or not new packets
// showed up. Step and DrainInFlight are that open-loop surface; the
// serve runtime layers admission queues and shedding on top.

// HotspotTraffic returns the §7.4 hotspot workload: 70% of packets target
// output 0, the rest are uniform. One shared seeded RNG serves all ports,
// matching the draw order the rawrouter CLI has always used, so existing
// seeded runs reproduce byte-for-byte.
func HotspotTraffic(sizeBytes int, seed uint64) TrafficGen {
	rng := traffic.NewRNG(seed)
	return func(port int) Packet {
		dst := 0
		if rng.Float64() >= 0.7 {
			dst = rng.Intn(4)
		}
		return Packet{Dst: dst, SizeBytes: sizeBytes}
	}
}

// WorkloadTraffic adapts a compiled traffic.Workload to the closed-loop
// TrafficGen contract: gen(port) draws the next packet from the
// workload's per-port source stream. The declarative successor to the
// UniformTraffic/PermutationTraffic/HotspotTraffic trio.
func WorkloadTraffic(w *traffic.Workload) (TrafficGen, error) {
	srcs, err := w.Sources()
	if err != nil {
		return nil, err
	}
	return func(port int) Packet {
		pkt := srcs[port].Next()
		return Packet{Dst: pkt.Dst, SizeBytes: pkt.SizeBytes, SrcIP: pkt.SrcIP, DstIP: pkt.DstIP}
	}, nil
}

// RunArrivals drives the router open-loop with a timestamped arrival
// process for the given number of slices — packets are offered at their
// arrival cycles, whether or not the router is keeping up — then drains
// in-flight work within drainBudget cycles. It returns the per-egress
// delivered words over the run and whether the drain reached
// quiescence. The arrival stream is a pure function of the process, so
// two routers driven by equal processes produce identical ledgers at
// any engine/worker setting.
func (r *Router) RunArrivals(proc traffic.Process, slices, drainBudget int64) ([]int64, bool) {
	before := r.deliveredWords()
	cyc := proc.SliceCycles()
	now := int64(0) // offset from the run's first cycle
	for k := int64(0); k < slices; k++ {
		for _, a := range proc.Slice(k) {
			if a.Cycle > now {
				r.Step(a.Cycle - now)
				now = a.Cycle
			}
			r.Offer(a.Port, Packet{Dst: a.Pkt.Dst, SizeBytes: a.Pkt.SizeBytes,
				SrcIP: a.Pkt.SrcIP, DstIP: a.Pkt.DstIP})
		}
		if end := (k + 1) * cyc; end > now {
			r.Step(end - now)
			now = end
		}
	}
	ok := r.DrainInFlight(drainBudget)
	after := r.deliveredWords()
	for p := range after {
		after[p] -= before[p]
	}
	return after, ok
}

// deliveredWords is the cumulative per-egress delivered word count.
func (r *Router) deliveredWords() []int64 {
	if r.fab != nil {
		n := r.fab.Config().Ports
		out := make([]int64, n)
		for p := 0; p < n; p++ {
			out[p] = r.fab.WordsOut[p]
		}
		return out
	}
	out := make([]int64, 4)
	for p := 0; p < 4; p++ {
		out[p] = r.cyc.OutputWords(p)
	}
	return out
}

// Step advances the simulation by at least the given number of cycles
// without offering any new traffic. The cycle engine advances exactly
// cycles; the quantum-stepped fabric engine rounds up to its next quantum
// boundary.
func (r *Router) Step(cycles int64) {
	if r.fab != nil {
		end := r.fab.Cycles + cycles
		for r.fab.Cycles < end {
			r.fab.StepQuantum()
		}
		return
	}
	r.cyc.Run(cycles)
}

// Quiescent reports whether the router holds no work at all: nothing in
// flight inside the fabric and no undelivered words waiting at the input
// pins of live ports (a masked-out dead port cannot consume its backlog,
// so it is excluded). A quiescent router can be checkpointed or shut down
// without losing admitted traffic.
func (r *Router) Quiescent() bool {
	if r.fab != nil {
		for p := 0; p < r.fab.Config().Ports; p++ {
			if r.fab.QueueLen(p) > 0 {
				return false
			}
		}
		return true
	}
	if !r.cyc.Quiescent() {
		return false
	}
	for p := 0; p < 4; p++ {
		if p != r.cyc.DeadPort() && r.cyc.InputBacklogWords(p) > 0 {
			return false
		}
	}
	return true
}

// DrainInFlight steps the simulation until Quiescent or until the cycle
// budget is exhausted, and reports whether quiescence was reached. It
// checks in coarse chunks, so the simulation may run slightly past the
// first quiescent cycle.
func (r *Router) DrainInFlight(budget int64) bool {
	const chunk = 256
	for spent := int64(0); ; {
		if r.Quiescent() {
			return true
		}
		if spent >= budget {
			return false
		}
		step := int64(chunk)
		if rem := budget - spent; rem < step {
			step = rem
		}
		r.Step(step)
		spent += step
	}
}
