package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/router"
)

// TestCycleEngineParallelEquivalence runs the full cycle-level router —
// generated switch programs, firmware, IP validation, DRAM lookups —
// under saturating uniform traffic at several worker counts and requires
// the measured results, the complete firmware counter set, and the final
// cycle to be identical to the sequential engine's.
func TestCycleEngineParallelEquivalence(t *testing.T) {
	run := func(workers int) (core.Results, router.Stats, int64) {
		r, err := core.New(core.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res := r.RunMeasured(1000, 3000, core.UniformTraffic(256, 42))
		return res, r.Cycle().Stats().Stats, r.Cycle().Cycle()
	}
	wantRes, wantStats, wantCycle := run(1)
	if wantRes.Packets == 0 {
		t.Fatal("sequential reference moved no packets; equivalence check would be vacuous")
	}
	for _, workers := range []int{2, 4} {
		res, stats, cycle := run(workers)
		if cycle != wantCycle {
			t.Errorf("workers=%d: cycle = %d, want %d", workers, cycle, wantCycle)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("workers=%d: results diverge:\n got %+v\nwant %+v", workers, res, wantRes)
		}
		if stats != wantStats {
			t.Errorf("workers=%d: firmware stats diverge:\n got %+v\nwant %+v", workers, stats, wantStats)
		}
	}
}
