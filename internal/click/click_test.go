package click_test

import (
	"testing"

	"repro/internal/click"
	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/traffic"
)

func table4(t *testing.T) *lookup.Patricia {
	t.Helper()
	var tbl lookup.Patricia
	for p := 0; p < 4; p++ {
		prefix, plen := traffic.PortPrefix(p)
		if err := tbl.Insert(prefix, plen, lookup.NextHop(p)); err != nil {
			t.Fatal(err)
		}
	}
	return &tbl
}

// TestForwardingPath checks a valid packet traverses the graph, gets its
// TTL decremented, and lands on the routed output.
func TestForwardingPath(t *testing.T) {
	r := click.NewRouter(4, table4(t))
	pkt := ip.NewPacket(ip.AddrFrom(1, 1, 1, 1), traffic.PortAddr(2, 5), 64, 128, 1)
	if !r.Push(0, pkt.Words()) {
		t.Fatal("valid packet dropped")
	}
	sent := r.PullAll()
	if len(sent) != 1 {
		t.Fatalf("%d packets sent", len(sent))
	}
	if sent[0].Out != 2 {
		t.Fatalf("routed to %d, want 2", sent[0].Out)
	}
	h, err := ip.Unmarshal(sent[0].Words)
	if err != nil {
		t.Fatal(err)
	}
	if h.TTL != 63 {
		t.Fatalf("TTL %d, want 63", h.TTL)
	}
}

// TestDropPaths checks the classifier, checksum, TTL, and no-route drops.
func TestDropPaths(t *testing.T) {
	r := click.NewRouter(4, table4(t))

	if r.Push(0, []uint32{0x60000000, 0, 0, 0, 0}) { // IPv6 version nibble
		t.Fatal("non-IPv4 accepted")
	}
	badPkt := ip.NewPacket(1, traffic.PortAddr(0, 1), 64, 64, 2)
	bad := badPkt.Words()
	bad[4] ^= 1 // corrupt destination: checksum now wrong
	if r.Push(0, bad) {
		t.Fatal("bad checksum accepted")
	}
	expired := ip.NewPacket(1, traffic.PortAddr(0, 1), 1, 64, 3)
	if r.Push(0, expired.Words()) {
		t.Fatal("TTL=1 packet accepted")
	}
	noroute := ip.NewPacket(1, ip.AddrFrom(99, 0, 0, 1), 64, 64, 4)
	if r.Push(0, noroute.Words()) {
		t.Fatal("unroutable packet accepted")
	}
	if r.Dropped != 4 {
		t.Fatalf("dropped %d, want 4", r.Dropped)
	}
}

// TestQueueOverflow checks tail drop.
func TestQueueOverflow(t *testing.T) {
	r := click.NewRouter(4, table4(t))
	pkt := ip.NewPacket(1, traffic.PortAddr(0, 1), 64, 64, 0)
	accepted := 0
	for i := 0; i < 200; i++ { // queue cap is 128
		if r.Push(0, pkt.Words()) {
			accepted++
		}
	}
	if accepted != 128 {
		t.Fatalf("accepted %d, want 128 (queue cap)", accepted)
	}
}

// TestCalibration64B: the model must land near the paper's 0.23 Gbps bar
// for minimum-size packets (CPU-bound regime).
func TestCalibration64B(t *testing.T) {
	gbps, kpps := click.MLFFR(table4(t), 4, 64, 20000)
	if gbps < 0.18 || gbps > 0.30 {
		t.Fatalf("Click 64B forwarding = %.3f Gbps, want ≈ 0.23 (Figure 7-1)", gbps)
	}
	if kpps < 350 || kpps > 600 {
		t.Fatalf("Click 64B forwarding = %.0f kpps, want ≈ 450", kpps)
	}
}

// TestBusBoundLargePackets: for 1,024-byte packets the shared bus binds,
// far below multigigabit rates — the §2.4 claim that conventional
// general-purpose processors lack I/O bandwidth.
func TestBusBoundLargePackets(t *testing.T) {
	gbps, _ := click.MLFFR(table4(t), 4, 1024, 5000)
	if gbps > 1.0 {
		t.Fatalf("Click 1024B forwarding = %.3f Gbps, should be bus-bound ≲ 0.6", gbps)
	}
	small, _ := click.MLFFR(table4(t), 4, 64, 5000)
	if gbps <= small {
		t.Fatalf("large packets (%.3f) should outrun small (%.3f) until the bus caps", gbps, small)
	}
}

// TestElementNames exercises the configuration dump strings.
func TestElementNames(t *testing.T) {
	for _, e := range []click.Element{
		&click.FromDevice{Dev: 1}, &click.Classifier{}, &click.CheckIPHeader{},
		&click.DecIPTTL{}, &click.LookupIPRoute{}, &click.Queue{Cap: 8}, &click.ToDevice{Dev: 2},
	} {
		if e.Name() == "" {
			t.Fatalf("%T has empty name", e)
		}
	}
}

// TestREDQueueBehavior: no early drops below MinThresh, ramped early drops
// in the RED band, everything dropped at the hard cap.
func TestREDQueueBehavior(t *testing.T) {
	q := click.NewREDQueue(64, 7)
	pkt := &click.Packet{}
	// Fill below MinThresh (16): no early drops.
	for i := 0; i < 12; i++ {
		if _, ok := q.Process(pkt); !ok {
			t.Fatalf("drop below MinThresh at %d", i)
		}
	}
	if q.EarlyDrop != 0 {
		t.Fatalf("early drops below MinThresh: %d", q.EarlyDrop)
	}
	// Flood into the RED band without draining.
	accepted := 12
	for i := 0; i < 500 && q.Len() < 64; i++ {
		if _, ok := q.Process(pkt); ok {
			accepted++
		}
	}
	if q.EarlyDrop == 0 {
		t.Fatal("no early drops in the RED band")
	}
	// Saturated: hard drops.
	before := q.Drops
	for i := 0; i < 10 && q.Len() >= 64; i++ {
		q.Process(pkt)
	}
	if q.Drops == before && q.Len() >= 64 {
		t.Fatal("full queue accepted a packet")
	}
	// Draining restores acceptance.
	for q.Len() > 0 {
		q.Pull()
	}
	for i := 0; i < 40; i++ { // EWMA decays over a few accepts
		q.Process(pkt)
		q.Pull()
	}
	if _, ok := q.Process(pkt); !ok {
		t.Fatal("drained queue still dropping")
	}
}
