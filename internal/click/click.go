// Package click implements a Click-style modular software router (Kohler
// et al., SOSP 1999) running on a conventional single-processor cost
// model. It is the general-purpose-CPU baseline of the paper's Figure 7-1
// ("the Click Router ... another router implemented on a general-purpose
// processor", 0.23 Gbps): every packet crosses one memory bus and one CPU,
// which is precisely the bottleneck the Raw design removes.
//
// The element graph mirrors Click's standard IP forwarding path:
//
//	FromDevice -> Classifier -> CheckIPHeader -> DecIPTTL ->
//	LookupIPRoute -> Queue -> ToDevice
//
// Each element charges a per-packet CPU cost calibrated so the pipeline
// totals ≈1,550 cycles/packet: at the 700 MHz of the era's PCs that is
// ≈450 kpps, i.e. ≈0.23 Gbps for 64-byte packets — the bar in Figure 7-1.
// Payload bytes do not touch the CPU (DMA) but cross the shared bus twice,
// so large packets are bus-bound instead (BusBytesPerSec).
package click

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/lookup"
)

// Packet is a packet traversing the element graph.
type Packet struct {
	Words []uint32
	Port  int // input port
	Out   int // output chosen by routing
}

// Element is one node of the graph.
type Element interface {
	// Name identifies the element in configuration dumps.
	Name() string
	// Process handles a packet, returning the CPU cycles consumed and
	// whether the packet continues downstream (false = dropped or
	// consumed).
	Process(p *Packet) (cycles int64, ok bool)
}

// CPU cost calibration (cycles/packet). See the package comment.
const (
	CostFromDevice  = 340
	CostClassifier  = 120
	CostCheckHeader = 200
	CostDecTTL      = 70
	CostLookupBase  = 200
	CostLookupProbe = 15
	CostQueue       = 60
	CostToDevice    = 380
)

// FromDevice models the input DMA ring service.
type FromDevice struct{ Dev int }

// Name implements Element.
func (e *FromDevice) Name() string { return fmt.Sprintf("FromDevice(eth%d)", e.Dev) }

// Process implements Element.
func (e *FromDevice) Process(p *Packet) (int64, bool) { return CostFromDevice, true }

// Classifier drops anything that is not an IPv4 packet.
type Classifier struct{ NonIP int64 }

// Name implements Element.
func (e *Classifier) Name() string { return "Classifier(12/0800)" }

// Process implements Element.
func (e *Classifier) Process(p *Packet) (int64, bool) {
	if len(p.Words) == 0 || p.Words[0]>>28 != 4 {
		e.NonIP++
		return CostClassifier, false
	}
	return CostClassifier, true
}

// CheckIPHeader validates length and checksum, as Click's element does.
type CheckIPHeader struct{ Bad int64 }

// Name implements Element.
func (e *CheckIPHeader) Name() string { return "CheckIPHeader" }

// Process implements Element.
func (e *CheckIPHeader) Process(p *Packet) (int64, bool) {
	if _, err := ip.Unmarshal(p.Words); err != nil {
		e.Bad++
		return CostCheckHeader, false
	}
	return CostCheckHeader, true
}

// DecIPTTL decrements the TTL with incremental checksum update, dropping
// expired packets.
type DecIPTTL struct{ Expired int64 }

// Name implements Element.
func (e *DecIPTTL) Name() string { return "DecIPTTL" }

// Process implements Element.
func (e *DecIPTTL) Process(p *Packet) (int64, bool) {
	if err := ip.DecrementTTL(p.Words); err != nil {
		e.Expired++
		return CostDecTTL, false
	}
	return CostDecTTL, true
}

// LookupIPRoute resolves the output port via a Patricia table.
type LookupIPRoute struct {
	Table    *lookup.Patricia
	NoRoute  int64
	ProbeSum int64
}

// Name implements Element.
func (e *LookupIPRoute) Name() string { return "LookupIPRoute" }

// Process implements Element.
func (e *LookupIPRoute) Process(p *Packet) (int64, bool) {
	h, err := ip.Unmarshal(p.Words)
	if err != nil {
		return CostLookupBase, false
	}
	nh, probes := e.Table.Lookup(uint32(h.Dst))
	e.ProbeSum += int64(probes)
	cost := int64(CostLookupBase + CostLookupProbe*probes)
	if nh == lookup.NoRoute {
		e.NoRoute++
		return cost, false
	}
	p.Out = int(nh)
	return cost, true
}

// Queue is Click's bounded push-to-pull queue; overflow drops the packet.
type Queue struct {
	Cap   int
	Drops int64
	buf   []*Packet
}

// Name implements Element.
func (e *Queue) Name() string { return fmt.Sprintf("Queue(%d)", e.Cap) }

// Process implements Element (the push side).
func (e *Queue) Process(p *Packet) (int64, bool) {
	if e.Cap > 0 && len(e.buf) >= e.Cap {
		e.Drops++
		return CostQueue, false
	}
	e.buf = append(e.buf, p)
	return CostQueue, true
}

// Pull removes the head packet (the pull side driven by ToDevice).
func (e *Queue) Pull() *Packet {
	if len(e.buf) == 0 {
		return nil
	}
	p := e.buf[0]
	e.buf = e.buf[1:]
	return p
}

// Len returns the queue occupancy.
func (e *Queue) Len() int { return len(e.buf) }

// ToDevice models the output DMA ring.
type ToDevice struct{ Dev int }

// Name implements Element.
func (e *ToDevice) Name() string { return fmt.Sprintf("ToDevice(eth%d)", e.Dev) }

// Process implements Element.
func (e *ToDevice) Process(p *Packet) (int64, bool) { return CostToDevice, true }

// REDQueue is Click's random-early-detection queue: above MinThresh the
// drop probability ramps linearly to MaxP at MaxThresh, using an EWMA of
// the occupancy — the congestion-avoidance discipline an edge router's
// output queues would run.
type REDQueue struct {
	Cap       int
	MinThresh int
	MaxThresh int
	// MaxP is the drop probability at MaxThresh, in 1/256 units.
	MaxP int

	Drops     int64
	EarlyDrop int64
	buf       []*Packet
	avg       float64 // EWMA occupancy
	rng       uint64
}

// NewREDQueue builds a RED queue with the classic 1/4–3/4 thresholds.
func NewREDQueue(capacity int, seed uint64) *REDQueue {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &REDQueue{
		Cap:       capacity,
		MinThresh: capacity / 4,
		MaxThresh: capacity * 3 / 4,
		MaxP:      64, // 25% at the knee
		rng:       seed,
	}
}

// Name implements Element.
func (e *REDQueue) Name() string { return fmt.Sprintf("REDQueue(%d)", e.Cap) }

func (e *REDQueue) rand() uint64 {
	e.rng ^= e.rng << 13
	e.rng ^= e.rng >> 7
	e.rng ^= e.rng << 17
	return e.rng
}

// Process implements Element (the push side).
func (e *REDQueue) Process(p *Packet) (int64, bool) {
	const w = 0.25 // EWMA weight
	e.avg = (1-w)*e.avg + w*float64(len(e.buf))
	switch {
	case len(e.buf) >= e.Cap:
		e.Drops++
		return CostQueue, false
	case e.avg >= float64(e.MaxThresh):
		e.Drops++
		e.EarlyDrop++
		return CostQueue, false
	case e.avg >= float64(e.MinThresh):
		ramp := (e.avg - float64(e.MinThresh)) / float64(e.MaxThresh-e.MinThresh)
		if float64(e.rand()%256) < ramp*float64(e.MaxP) {
			e.Drops++
			e.EarlyDrop++
			return CostQueue, false
		}
	}
	e.buf = append(e.buf, p)
	return CostQueue, true
}

// Pull removes the head packet.
func (e *REDQueue) Pull() *Packet {
	if len(e.buf) == 0 {
		return nil
	}
	p := e.buf[0]
	e.buf = e.buf[1:]
	return p
}

// Len returns the queue occupancy.
func (e *REDQueue) Len() int { return len(e.buf) }
