package click

import (
	"fmt"

	"repro/internal/ip"
	"repro/internal/lookup"
	"repro/internal/traffic"
)

// ReplayArrivals drives the Click baseline with an open-loop arrival
// process and returns the per-destination delivered-words ledger. The
// Click machine model has no notion of simulated arrival time — it is
// work-conserving and forwards as fast as the CPU/bus allow — so the
// replay forwards each arrival immediately (push then pull, never
// overflowing the 128-packet queues) and the ledger is exactly the
// offered traffic that survives header validation. Driving it from the
// same traffic.Process as the Raw router makes the two baselines'
// ledgers directly comparable.
func ReplayArrivals(table *lookup.Patricia, proc traffic.Process, slices int64) ([]int64, *Router, error) {
	r := NewRouter(proc.Ports(), table)
	ledger := make([]int64, proc.Ports())
	for k := int64(0); k < slices; k++ {
		for _, a := range proc.Slice(k) {
			id := uint16(a.Flow*0x9e37 + uint64(a.Seq))
			pkt := ip.NewPacket(a.Pkt.SrcIP, a.Pkt.DstIP, 64, a.Pkt.SizeBytes, id)
			if !r.Push(a.Port, pkt.Words()) {
				return nil, r, fmt.Errorf("click: dropped arrival k=%d flow=%d seq=%d (dst %v)",
					k, a.Flow, a.Seq, a.Pkt.DstIP)
			}
			for _, sent := range r.PullAll() {
				ledger[sent.Out] += int64(len(sent.Words))
			}
		}
	}
	return ledger, r, nil
}
