package click

import (
	"repro/internal/ip"
	"repro/internal/lookup"
)

// Router is an assembled Click forwarding path on a single-CPU machine
// model.
type Router struct {
	// ClockHz is the CPU clock (default 700 MHz, a Pentium III of the
	// paper's era).
	ClockHz float64
	// BusBytesPerSec caps the shared I/O bus; every forwarded packet
	// crosses it twice (NIC->memory, memory->NIC). Default models 32-bit
	// 33 MHz PCI ≈ 1 Gbps.
	BusBytesPerSec float64

	from    []*FromDevice
	class   *Classifier
	check   *CheckIPHeader
	dec     *DecIPTTL
	route   *LookupIPRoute
	queues  []*Queue
	to      []*ToDevice
	ports   int
	started bool

	// Accounting.
	CPUCycles int64
	BusBytes  int64
	Forwarded int64
	Dropped   int64
}

// NewRouter assembles an n-port IP forwarding configuration over table.
func NewRouter(n int, table *lookup.Patricia) *Router {
	r := &Router{
		ClockHz:        700e6,
		BusBytesPerSec: 133e6, // 32-bit, 33 MHz PCI
		class:          &Classifier{},
		check:          &CheckIPHeader{},
		dec:            &DecIPTTL{},
		route:          &LookupIPRoute{Table: table},
		ports:          n,
	}
	for i := 0; i < n; i++ {
		r.from = append(r.from, &FromDevice{Dev: i})
		r.queues = append(r.queues, &Queue{Cap: 128})
		r.to = append(r.to, &ToDevice{Dev: i})
	}
	return r
}

// Ports returns the port count.
func (r *Router) Ports() int { return r.ports }

// Push runs one packet through the push path (device to queue), charging
// CPU and bus costs. It reports whether the packet reached a queue.
func (r *Router) Push(inPort int, words []uint32) bool {
	p := &Packet{Words: words, Port: inPort, Out: -1}
	r.BusBytes += int64(len(words) * 4) // NIC -> memory

	chain := []Element{r.from[inPort], r.class, r.check, r.dec, r.route}
	for _, e := range chain {
		cycles, ok := e.Process(p)
		r.CPUCycles += cycles
		if !ok {
			r.Dropped++
			return false
		}
	}
	q := r.queues[p.Out]
	cycles, ok := q.Process(p)
	r.CPUCycles += cycles
	if !ok {
		r.Dropped++
		return false
	}
	return true
}

// PullAll drains every output queue through its ToDevice, charging costs,
// and returns the packets transmitted.
func (r *Router) PullAll() []*Packet {
	var sent []*Packet
	for o, q := range r.queues {
		for {
			p := q.Pull()
			if p == nil {
				break
			}
			cycles, _ := r.to[o].Process(p)
			r.CPUCycles += cycles
			r.BusBytes += int64(len(p.Words) * 4) // memory -> NIC
			r.Forwarded++
			sent = append(sent, p)
		}
	}
	return sent
}

// Forward pushes and immediately pulls one packet — the common benchmark
// loop.
func (r *Router) Forward(inPort int, words []uint32) bool {
	if !r.Push(inPort, words) {
		return false
	}
	r.PullAll()
	return true
}

// ElapsedSeconds returns the wall-clock time the run took on this machine
// model: the CPU and the bus work in parallel, so the slower one binds.
func (r *Router) ElapsedSeconds() float64 {
	cpu := float64(r.CPUCycles) / r.ClockHz
	bus := float64(r.BusBytes) / r.BusBytesPerSec
	if bus > cpu {
		return bus
	}
	return cpu
}

// ThroughputGbps returns delivered bandwidth for a run that forwarded
// packets of sizeBytes each.
func (r *Router) ThroughputGbps(sizeBytes int) float64 {
	sec := r.ElapsedSeconds()
	if sec == 0 {
		return 0
	}
	return float64(r.Forwarded) * float64(sizeBytes) * 8 / sec / 1e9
}

// Kpps returns delivered thousands of packets per second.
func (r *Router) Kpps() float64 {
	sec := r.ElapsedSeconds()
	if sec == 0 {
		return 0
	}
	return float64(r.Forwarded) / sec / 1e3
}

// MLFFR measures the maximum loss-free forwarding rate for a packet size:
// it forwards count packets with valid headers addressed round-robin
// across ports and reports throughput. (With unbounded offered load the
// Click model is work-conserving, so this is its saturation rate.)
func MLFFR(table *lookup.Patricia, ports, sizeBytes, count int) (gbps, kpps float64) {
	r := NewRouter(ports, table)
	for i := 0; i < count; i++ {
		dst := ip.Addr(uint32(10+i%ports)<<24 | uint32(i)&0xffff)
		pkt := ip.NewPacket(ip.AddrFrom(1, 2, 3, 4), dst, 64, sizeBytes, uint16(i))
		r.Forward(i%ports, pkt.Words())
	}
	return r.ThroughputGbps(sizeBytes), r.Kpps()
}
